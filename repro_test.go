package repro_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro"
)

func fastParams() repro.Params {
	p := repro.DefaultParams()
	p.LockTimeout = 20 * time.Millisecond
	p.OpCost = 0
	p.EpochPeriod = 5 * time.Millisecond
	p.DummyPeriod = 3 * time.Millisecond
	return p
}

// TestPublicAPILifecycle exercises the documented quick-start flow end to
// end through the facade only.
func TestPublicAPILifecycle(t *testing.T) {
	wl := repro.DefaultWorkload()
	wl.Sites = 4
	wl.Items = 40
	wl.TxnsPerThread = 25
	cfg := repro.ClusterConfig{
		Workload: wl,
		Protocol: repro.BackEdge,
		Params:   fastParams(),
		Latency:  100 * time.Microsecond,
		Record:   true,
	}
	c, err := repro.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	rep, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if err := c.Quiesce(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckSerializable(); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
}

// TestManualTransactionThroughFacade runs hand-written transactions on a
// hand-built placement, all through the public API.
func TestManualTransactionThroughFacade(t *testing.T) {
	p := repro.NewPlacement(2, 1)
	p.Primary[0] = 0
	p.Replicas[0] = []repro.SiteID{1}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	wl := repro.DefaultWorkload()
	wl.Sites, wl.Items, wl.TxnsPerThread = 2, 1, 0
	c, err := repro.NewCluster(repro.ClusterConfig{
		Workload:  wl,
		Protocol:  repro.DAGWT,
		Params:    fastParams(),
		Placement: p,
		Record:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	if err := c.Engine(0).Execute([]repro.Op{{Kind: repro.OpWrite, Item: 0, Value: 7}}); err != nil {
		t.Fatal(err)
	}
	if err := c.Quiesce(time.Minute); err != nil {
		t.Fatal(err)
	}
	if err := c.Engine(1).Execute([]repro.Op{{Kind: repro.OpRead, Item: 0}}); err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeHelpers(t *testing.T) {
	if p, err := repro.ParseProtocol("backedge"); err != nil || p != repro.BackEdge {
		t.Errorf("ParseProtocol: %v %v", p, err)
	}
	if len(repro.Experiments()) < 10 {
		t.Errorf("only %d experiments registered", len(repro.Experiments()))
	}
	if _, err := repro.LookupExperiment("fig2a"); err != nil {
		t.Error(err)
	}
	var buf bytes.Buffer
	repro.PrintTable1(&buf, repro.ExperimentOptions{Scale: repro.ScaleFull})
	if !strings.Contains(buf.String(), "Backedge Probability") {
		t.Error("Table 1 output incomplete")
	}
	wl := repro.DefaultWorkload()
	if wl.Sites != 9 {
		t.Error("DefaultWorkload diverges from Table 1")
	}
}
