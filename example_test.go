package repro_test

import (
	"fmt"
	"log"
	"time"

	"repro"
)

// ExampleNewCluster shows the complete lifecycle: assemble a replicated
// database with the Table 1 workload, run it, drain propagation, and
// apply the correctness checks.
func ExampleNewCluster() {
	wl := repro.DefaultWorkload()
	wl.Sites = 3
	wl.Items = 30
	wl.TxnsPerThread = 10
	wl.BackedgeProb = 0 // DAG copy graph

	params := repro.DefaultParams()
	params.OpCost = 0 // as fast as possible for this example

	c, err := repro.NewCluster(repro.ClusterConfig{
		Workload: wl,
		Protocol: repro.DAGWT,
		Params:   params,
		Latency:  100 * time.Microsecond,
		Record:   true,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	if _, err := c.Run(); err != nil {
		log.Fatal(err)
	}
	if err := c.Quiesce(time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Println("serializable:", c.CheckSerializable() == nil)
	fmt.Println("converged:", c.CheckConvergence() == nil)
	// Output:
	// serializable: true
	// converged: true
}

// ExampleCluster_Engine drives individual transactions on a hand-built
// placement: item 0 lives at site 0 and is replicated at site 1.
func ExampleCluster_Engine() {
	p := repro.NewPlacement(2, 1)
	p.Primary[0] = 0
	p.Replicas[0] = []repro.SiteID{1}
	if err := p.Finish(); err != nil {
		log.Fatal(err)
	}
	wl := repro.DefaultWorkload()
	wl.TxnsPerThread = 0
	params := repro.DefaultParams()
	params.OpCost = 0

	c, err := repro.NewCluster(repro.ClusterConfig{
		Workload:  wl,
		Protocol:  repro.DAGT,
		Params:    params,
		Placement: p,
	})
	if err != nil {
		log.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	err = c.Engine(0).Execute([]repro.Op{
		{Kind: repro.OpWrite, Item: 0, Value: 7},
	})
	fmt.Println("committed:", err == nil)
	_ = c.Quiesce(time.Minute)
	err = c.Engine(1).Execute([]repro.Op{{Kind: repro.OpRead, Item: 0}})
	fmt.Println("replica readable:", err == nil)
	// Output:
	// committed: true
	// replica readable: true
}

// ExampleParseProtocol demonstrates protocol selection by name.
func ExampleParseProtocol() {
	p, _ := repro.ParseProtocol("backedge")
	fmt.Println(p, "handles cyclic copy graphs:", p.Serializable())
	q, _ := repro.ParseProtocol("naive")
	fmt.Println(q, "is serializable:", q.Serializable())
	// Output:
	// BackEdge handles cyclic copy graphs: true
	// NaiveLazy is serializable: false
}
