// Quickstart: a three-site replicated database running the DAG(T)
// protocol. One update at the source site propagates lazily — but
// serializably — to both replicas; we watch it arrive, run the Table 1
// workload for a moment, and print the performance report.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// Data layout (Example 1.1's): item 0 ("a") lives at site 0 with
	// replicas at sites 1 and 2; item 1 ("b") lives at site 1 with a
	// replica at site 2. The copy graph is the DAG s0->s1, s0->s2, s1->s2.
	p := repro.NewPlacement(3, 2)
	p.Primary[0], p.Replicas[0] = 0, []repro.SiteID{1, 2}
	p.Primary[1], p.Replicas[1] = 1, []repro.SiteID{2}
	if err := p.Finish(); err != nil {
		log.Fatal(err)
	}

	wl := repro.DefaultWorkload()
	wl.TxnsPerThread = 0 // we drive transactions by hand below
	cfg := repro.ClusterConfig{
		Workload:         wl,
		Protocol:         repro.DAGT,
		Params:           repro.DefaultParams(),
		Latency:          150 * time.Microsecond,
		Placement:        p,
		Record:           true,
		TrackPropagation: true,
	}
	c, err := repro.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	// A transaction at site 0 updates item 0. It commits locally and
	// returns immediately — propagation is lazy.
	if err := c.Engine(0).Execute([]repro.Op{
		{Kind: repro.OpWrite, Item: 0, Value: 42},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("site 0 committed w[0]=42; waiting for the replicas...")

	if err := c.Quiesce(10 * time.Second); err != nil {
		log.Fatal(err)
	}

	// A transaction at site 2 now reads both items — serializably.
	if err := c.Engine(2).Execute([]repro.Op{
		{Kind: repro.OpRead, Item: 0},
		{Kind: repro.OpRead, Item: 1},
	}); err != nil {
		log.Fatal(err)
	}

	if err := c.CheckSerializable(); err != nil {
		log.Fatalf("serializability check failed: %v", err)
	}
	if err := c.CheckConvergence(); err != nil {
		log.Fatalf("convergence check failed: %v", err)
	}
	fmt.Println("replicas converged and the execution is serializable")
	fmt.Printf("report: %v\n", c.Metrics.Snapshot(3))
}
