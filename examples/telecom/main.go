// Telecom: the network-management scenario from the paper's introduction
// ("in telecom as well as data networks, network management applications
// require real-time dissemination of updates to replicas with strong
// consistency guarantees"). Two regional network-operation centers and a
// national center each own part of the configuration and replicate each
// other's hot state — which makes the copy graph CYCLIC, so neither DAG
// protocol applies. The BackEdge protocol handles it: updates along the
// cycle-closing edges propagate eagerly under two-phase commit, the rest
// flow lazily, and the whole execution stays serializable.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro"
)

const (
	national = repro.SiteID(0)
	nocEast  = repro.SiteID(1)
	nocWest  = repro.SiteID(2)
)

func main() {
	// 12 configuration items: 4 owned per center. National state is
	// replicated at both NOCs (DAG edges); each NOC's alarm summary is
	// replicated back at the national center (backedges), closing cycles.
	p := repro.NewPlacement(3, 12)
	for i := 0; i < 4; i++ {
		p.Primary[i] = national
		p.Replicas[i] = []repro.SiteID{nocEast, nocWest}
	}
	for i := 4; i < 8; i++ {
		p.Primary[i] = nocEast
		p.Replicas[i] = []repro.SiteID{national} // backedge east -> national
	}
	for i := 8; i < 12; i++ {
		p.Primary[i] = nocWest
		p.Replicas[i] = []repro.SiteID{national} // backedge west -> national
	}
	if err := p.Finish(); err != nil {
		log.Fatal(err)
	}

	wl := repro.DefaultWorkload()
	wl.TxnsPerThread = 0
	c, err := repro.NewCluster(repro.ClusterConfig{
		Workload:         wl,
		Protocol:         repro.BackEdge,
		Params:           repro.DefaultParams(),
		Latency:          time.Millisecond, // WAN-ish links between centers
		Placement:        p,
		Record:           true,
		TrackPropagation: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("copy graph has %d backedges: %v\n", len(c.Backedges), c.Backedges)
	c.Start()
	defer c.Stop()

	var wg sync.WaitGroup
	commits := make([]int, 3)
	aborts := make([]int, 3)
	run := func(site repro.SiteID, mkOps func(rng *rand.Rand, i int) []repro.Op) {
		defer wg.Done()
		rng := rand.New(rand.NewSource(int64(site) + 1))
		for i := 0; i < 60; i++ {
			err := c.Engine(site).Execute(mkOps(rng, i))
			switch {
			case err == nil:
				commits[site]++
			case repro.IsAbort(err):
				aborts[site]++ // deadlock victim; operators retry
			default:
				log.Fatalf("site %d: %v", site, err)
			}
		}
	}

	// National pushes policy updates (lazy fan-out to both NOCs) while
	// reading the alarm summaries replicated from the NOCs.
	wg.Add(1)
	go run(national, func(rng *rand.Rand, i int) []repro.Op {
		return []repro.Op{
			{Kind: repro.OpRead, Item: repro.ItemID(4 + rng.Intn(8))},
			{Kind: repro.OpWrite, Item: repro.ItemID(rng.Intn(4)), Value: int64(i)},
		}
	})
	// Each NOC updates its alarm summary (eager, via the backedge: the
	// national replica is updated atomically with the NOC's commit) while
	// reading the national policy replica.
	for _, noc := range []repro.SiteID{nocEast, nocWest} {
		base := 4 + 4*(int(noc)-1)
		wg.Add(1)
		go run(noc, func(rng *rand.Rand, i int) []repro.Op {
			return []repro.Op{
				{Kind: repro.OpRead, Item: repro.ItemID(rng.Intn(4))},
				{Kind: repro.OpWrite, Item: repro.ItemID(base + rng.Intn(4)), Value: int64(100*int(noc) + i)},
			}
		})
	}
	wg.Wait()

	if err := c.Quiesce(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	if err := c.CheckSerializable(); err != nil {
		log.Fatalf("serializability check failed: %v", err)
	}
	if err := c.CheckConvergence(); err != nil {
		log.Fatalf("convergence check failed: %v", err)
	}
	rep := c.Metrics.Snapshot(3)
	fmt.Println("network-management run complete on a CYCLIC copy graph:")
	for s := 0; s < 3; s++ {
		fmt.Printf("  site %d: %d committed, %d deadlock aborts\n", s, commits[s], aborts[s])
	}
	fmt.Printf("  secondaries=%d messages=%d mean response=%v\n",
		rep.Secondaries, rep.Messages, rep.MeanResponse.Round(time.Millisecond))
	fmt.Println("  execution serializable; all replicas converged")
}
