// Anomaly: a faithful replay of the paper's Example 1.1. Three sites,
// item a (primary s0, replicas s1 and s2), item b (primary s1, replica
// s2). T1 updates a at s0; T2 reads a and writes b at s1; T3 reads both
// at s2. The direct link s0->s2 is slow, so T1's update reaches s2 AFTER
// T2's — under the indiscriminate lazy propagation most commercial
// systems shipped (§1.2) this serializes T1 before T2 at s2 but T2
// before T1 at s3, and the serialization graph has a cycle. The DAG(T)
// protocol runs the identical scenario and stays serializable: T1's
// timestamp is a prefix of T2's, so s2's scheduler refuses to apply them
// out of order.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	fmt.Println("Example 1.1 under NaiveLazy (indiscriminate propagation):")
	if err := replay(repro.NaiveLazy); err != nil {
		fmt.Printf("  NON-SERIALIZABLE, as the paper predicts:\n  %v\n\n", err)
	} else {
		log.Fatal("the anomaly did not reproduce — unexpected")
	}

	fmt.Println("Example 1.1 under DAG(T) (timestamped propagation):")
	if err := replay(repro.DAGT); err != nil {
		log.Fatalf("DAG(T) must be serializable, got: %v", err)
	}
	fmt.Println("  serializable: s2 applied T1 before T2 despite the slow link")
}

// replay drives the Example 1.1 interleaving under the given protocol and
// returns the serializability checker's verdict.
func replay(proto repro.Protocol) error {
	p := repro.NewPlacement(3, 2)
	p.Primary[0], p.Replicas[0] = 0, []repro.SiteID{1, 2} // item a
	p.Primary[1], p.Replicas[1] = 1, []repro.SiteID{2}    // item b
	if err := p.Finish(); err != nil {
		return err
	}
	wl := repro.DefaultWorkload()
	wl.TxnsPerThread = 0
	c, err := repro.NewCluster(repro.ClusterConfig{
		Workload:  wl,
		Protocol:  proto,
		Params:    repro.DefaultParams(),
		Latency:   time.Millisecond,
		Placement: p,
		Record:    true,
	})
	if err != nil {
		return err
	}
	// The race of Example 1.1: the direct s0->s2 link is two orders of
	// magnitude slower than the rest.
	c.Transport().SetEdgeLatency(0, 2, 150*time.Millisecond)
	c.Start()
	defer c.Stop()

	// T1 at s0: w(a).
	if err := c.Engine(0).Execute([]repro.Op{{Kind: repro.OpWrite, Item: 0, Value: 1}}); err != nil {
		return err
	}
	// Let T1's update reach s1 (fast link), then run T2 at s1: r(a) w(b).
	time.Sleep(30 * time.Millisecond)
	if err := c.Engine(1).Execute([]repro.Op{
		{Kind: repro.OpRead, Item: 0},
		{Kind: repro.OpWrite, Item: 1, Value: 2},
	}); err != nil {
		return err
	}
	// Let T2's update reach s2 — T1's is still in flight on the slow link
	// — then run T3 at s2: r(a) r(b).
	time.Sleep(30 * time.Millisecond)
	if err := c.Engine(2).Execute([]repro.Op{
		{Kind: repro.OpRead, Item: 0},
		{Kind: repro.OpRead, Item: 1},
	}); err != nil {
		return err
	}
	if err := c.Quiesce(10 * time.Second); err != nil {
		return err
	}
	return c.CheckSerializable()
}
