// Warehouse: the distributed data-warehouse scenario the paper's
// introduction motivates — an OLTP source site feeding regional data
// marts. The copy graph is naturally a DAG (§6: "in many real life
// situations, for example, a data warehousing environment, the copy graph
// is naturally a DAG"), so the pure-lazy DAG(WT) protocol applies: every
// transaction commits locally at its site and updates flow down the
// warehouse tree serializably, with no distributed locking at all.
//
// The program models one source with 40 "fact" items, two regional marts
// each replicating half of them, and a company-wide dashboard mart
// replicating a hot subset, then runs concurrent feeds and analytics and
// verifies serializability and convergence.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	"repro"
)

const (
	source    = repro.SiteID(0) // OLTP source
	martEast  = repro.SiteID(1)
	martWest  = repro.SiteID(2)
	dashboard = repro.SiteID(3)
	items     = 40
)

func main() {
	p := repro.NewPlacement(4, items)
	for i := 0; i < items; i++ {
		p.Primary[i] = source
		switch {
		case i < items/2:
			p.Replicas[i] = []repro.SiteID{martEast}
		default:
			p.Replicas[i] = []repro.SiteID{martWest}
		}
		if i%5 == 0 { // hot items also feed the dashboard
			p.Replicas[i] = append(p.Replicas[i], dashboard)
		}
	}
	if err := p.Finish(); err != nil {
		log.Fatal(err)
	}

	wl := repro.DefaultWorkload()
	wl.TxnsPerThread = 0
	c, err := repro.NewCluster(repro.ClusterConfig{
		Workload:         wl,
		Protocol:         repro.DAGWT,
		Params:           repro.DefaultParams(),
		Latency:          150 * time.Microsecond,
		Placement:        p,
		Record:           true,
		TrackPropagation: true,
		GeneralTree:      true, // marts are siblings: no cross-forwarding
	})
	if err != nil {
		log.Fatal(err)
	}
	c.Start()
	defer c.Stop()

	var wg sync.WaitGroup
	// Feed: three loader threads at the source, each committing batches of
	// fact updates.
	for th := 0; th < 3; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(th)))
			for batch := 0; batch < 50; batch++ {
				ops := make([]repro.Op, 0, 4)
				for k := 0; k < 4; k++ {
					ops = append(ops, repro.Op{
						Kind:  repro.OpWrite,
						Item:  repro.ItemID(rng.Intn(items)),
						Value: int64(batch*100 + k),
					})
				}
				if err := c.Engine(source).Execute(ops); err != nil && !isAbort(err) {
					log.Fatalf("loader %d: %v", th, err)
				}
			}
		}(th)
	}
	// Analytics: each mart runs read-only scans concurrently with the feed.
	for _, mart := range []repro.SiteID{martEast, martWest, dashboard} {
		wg.Add(1)
		go func(mart repro.SiteID) {
			defer wg.Done()
			local := localItems(p, mart)
			rng := rand.New(rand.NewSource(int64(mart) * 77))
			for q := 0; q < 40; q++ {
				ops := make([]repro.Op, 0, 5)
				for k := 0; k < 5; k++ {
					ops = append(ops, repro.Op{Kind: repro.OpRead, Item: local[rng.Intn(len(local))]})
				}
				if err := c.Engine(mart).Execute(ops); err != nil && !isAbort(err) {
					log.Fatalf("analytics at s%d: %v", mart, err)
				}
			}
		}(mart)
	}
	wg.Wait()

	if err := c.Quiesce(30 * time.Second); err != nil {
		log.Fatal(err)
	}
	if err := c.CheckSerializable(); err != nil {
		log.Fatalf("serializability check failed: %v", err)
	}
	if err := c.CheckConvergence(); err != nil {
		log.Fatalf("convergence check failed: %v", err)
	}
	rep := c.Metrics.Snapshot(4)
	fmt.Println("warehouse feed + analytics complete:")
	fmt.Printf("  committed=%d aborted=%d secondaries=%d\n", rep.Committed, rep.Aborted, rep.Secondaries)
	fmt.Printf("  propagation delay mean=%v max=%v\n", rep.MeanPropDelay, rep.MaxPropDelay)
	fmt.Println("  every mart converged to the source and the global execution is serializable")
}

func localItems(p *repro.Placement, s repro.SiteID) []repro.ItemID {
	return p.CopiesAt(s)
}

func isAbort(err error) bool { return repro.IsAbort(err) }
