package cluster

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

// chaosSeed fixes every random choice in the chaos runs: the fault
// layer's per-edge drop/duplicate/delay streams and the generated
// partition/crash schedule. Reruns with the same seed see the same fault
// schedule byte-for-byte (asserted below).
const chaosSeed int64 = 77

func chaosFaults() fault.Faults {
	return fault.Faults{
		Drop:      0.08, // ≥5% random message loss
		Duplicate: 0.04,
		Delay:     0.05,
		DelayMin:  500 * time.Microsecond,
		DelayMax:  3 * time.Millisecond,
	}
}

// runChaos drives one protocol through a full workload on the
// engine → Reliable → fault → MemTransport stack while a seeded schedule
// cuts a partition (and heals it) and crashes a site (and restarts it).
// Every site runs over a write-ahead redo log, so the crash is honest:
// the site's heap dies with it and the restart rebuilds the engine from
// its WAL directory (snapshot + redo replay + decision inquiry). The
// reliable sublayer must make the protocol oblivious: zero
// serializability violations and, for propagating protocols, full replica
// convergence after quiescing.
func runChaos(t *testing.T, proto core.Protocol, backedgeProb float64) {
	t.Helper()
	wl := smallWorkload()
	wl.BackedgeProb = backedgeProb
	reg := obs.NewRegistry()
	c, err := New(Config{
		Workload:         wl,
		Protocol:         proto,
		Params:           fastParams(),
		Latency:          100 * time.Microsecond,
		Record:           true,
		Obs:              reg,
		Fault:            &fault.Config{Seed: chaosSeed, Faults: chaosFaults()},
		Reliable:         true,
		WALDir:           t.TempDir(),
		WALFlushInterval: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Start()
	defer c.Stop()

	// One partition-and-heal plus one crash-and-restart, deterministically
	// placed inside the run window; the same seed must reproduce the same
	// schedule byte-for-byte.
	span := 1500 * time.Millisecond
	sched := fault.Generate(chaosSeed, wl.Sites, span)
	if again := fault.Generate(chaosSeed, wl.Sites, span); again.String() != sched.String() {
		t.Fatalf("schedule not reproducible:\n%s\nvs\n%s", sched, again)
	}
	var player sync.WaitGroup
	player.Add(1)
	go func() {
		defer player.Done()
		c.Fault().Play(sched)
	}()

	rep, err := c.Run()
	if err != nil {
		t.Fatalf("Run under chaos: %v", err)
	}
	if rep.Committed == 0 {
		t.Fatalf("no transactions committed under chaos: %+v", rep)
	}
	// Let the schedule finish (partition healed, site restarted) before
	// demanding the network drain.
	player.Wait()
	if err := c.Quiesce(120 * time.Second); err != nil {
		t.Fatalf("Quiesce under chaos: %v", err)
	}

	if proto.Serializable() {
		if err := c.CheckSerializable(); err != nil {
			t.Errorf("serializability violated under chaos: %v", err)
			// Explain the cycle: every observation touching its members.
			if cyc := c.Recorder.BuildGraph().FindCycle(); cyc != nil {
				for _, line := range c.Recorder.Involving(cyc...) {
					t.Logf("  %s", line)
				}
			}
		}
	}
	if proto.Propagates() && proto.Serializable() {
		if err := c.CheckConvergence(); err != nil {
			t.Errorf("replicas diverged under chaos: %v", err)
		}
	}

	// The chaos was real and the counters saw it: faults fired, and the
	// sublayer had to retransmit to hide them.
	snap := reg.Snapshot()
	sum := func(prefix string) (n int64) {
		for k, v := range snap {
			if strings.HasPrefix(k, prefix) {
				n += v
			}
		}
		return n
	}
	if sum("repl_fault_dropped_total") == 0 {
		t.Error("no messages dropped — fault layer inert?")
	}
	if sum("repl_reliable_retransmits_total") == 0 {
		t.Error("no retransmissions — reliable sublayer inert?")
	}
	if sum("repl_fault_crashes_total") == 0 || sum("repl_fault_partition_cuts_total") == 0 {
		t.Error("schedule did not register its crash/partition")
	}
	// The crash was honest: the site logged its work, lost its heap, and
	// was rebuilt by replaying the log.
	if sum("repl_wal_appends_total") == 0 {
		t.Error("no WAL appends — redo logging inert?")
	}
	if sum("repl_fault_restarts_total") == 0 {
		t.Error("schedule did not restart the crashed site")
	}
	if sum("repl_wal_replayed_total") == 0 {
		t.Error("restart replayed no redo records — recovery inert?")
	}
	t.Logf("%v under chaos: %v; dropped=%d retransmits=%d dup_dropped=%d wal_appends=%d wal_replayed=%d",
		proto, rep, sum("repl_fault_dropped_total"),
		sum("repl_reliable_retransmits_total"), sum("repl_reliable_dup_dropped_total"),
		sum("repl_wal_appends_total"), sum("repl_wal_replayed_total"))
}

// TestChaosAllProtocols is the acceptance gate: all five engines survive
// the same seeded chaos (drops, duplicates, delays, a partition-and-heal,
// a crash-and-restart) unmodified, because the reliable sublayer
// manufactures the §1.1 network contract they assume.
func TestChaosAllProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos integration test")
	}
	protos := []struct {
		proto    core.Protocol
		backedge float64
	}{
		{core.PSL, 0.2},
		{core.DAGWT, 0},
		{core.DAGT, 0},
		{core.BackEdge, 0.2},
		{core.NaiveLazy, 0},
	}
	for _, pc := range protos {
		pc := pc
		t.Run(pc.proto.String(), func(t *testing.T) {
			t.Parallel()
			runChaos(t, pc.proto, pc.backedge)
		})
	}
}
