// Package cluster assembles a complete replicated database: it generates
// (or accepts) a data placement, derives the copy graph, the backedge set
// and the propagation tree, instantiates one protocol engine per site over
// an in-process transport, runs the client threads of §5.2, and exposes
// the correctness checks (global serializability, replica convergence)
// and the §5.3 performance report.
package cluster

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/contend"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fresh"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/watch"
	"repro/internal/workload"
)

// Config describes one experiment run.
type Config struct {
	Workload workload.Config
	Protocol core.Protocol
	Params   core.Params
	// Latency is the one-way network latency between any two sites
	// (Table 1 default: the 0.15 ms the paper measured on its ethernet).
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter) per message;
	// per-pair FIFO delivery is preserved.
	Jitter time.Duration
	// GeneralTree selects the bushy tree construction for DAG(WT) and
	// BackEdge instead of the chain the prototype used (§5.1).
	GeneralTree bool
	// MinimizeBackedges computes the backedge set with the §4.2 weighted
	// feedback-arc-set heuristic instead of taking the edges that point
	// backwards in site-ID order, minimizing how many item updates must
	// propagate eagerly. It implies GeneralTree (the chain is tied to the
	// ID order).
	MinimizeBackedges bool
	// Record enables the serializability recorder (adds overhead; tests
	// use it, benchmarks usually do not).
	Record bool
	// TrackPropagation enables propagation-delay measurement (E7).
	TrackPropagation bool
	// Placement overrides workload-based generation when non-nil (used by
	// the examples, which lay data out by hand).
	Placement *model.Placement
	// Trace, when non-nil, receives every engine's propagation lifecycle
	// events (tracing adds one branch per event site when nil).
	Trace *trace.Recorder
	// Obs, when non-nil, is the live metrics registry: engines register
	// per-site counters and queue-depth gauges, and the transport reports
	// per-edge message/byte/latency series into it.
	Obs *obs.Registry
	// Fault, when non-nil, interposes a fault-injection layer over the
	// in-process transport: seeded random drops/duplications/delays plus
	// scripted partitions and site crashes (see internal/fault). Unless the
	// faults are pure delays, combine with Reliable — the engines assume
	// the §1.1 reliable-FIFO network, and a dropped message otherwise
	// stalls quiescing forever.
	Fault *fault.Config
	// Reliable runs the exactly-once FIFO delivery sublayer (comm.Reliable)
	// on top of the (possibly faulty) transport, restoring the network
	// contract the protocols assume.
	Reliable bool
	// ReliableCfg tunes the sublayer when Reliable is set; the zero value
	// uses the defaults (20 ms initial RTO).
	ReliableCfg comm.ReliableConfig
	// Watch, when non-nil, runs the staleness/liveness watchdog
	// (internal/watch): engines register epoch/pending probes and queue
	// handles, the trace recorder's live sink feeds it, and alerts land
	// in Obs plus optional flight-recorder dumps. Requires Trace (the
	// watchdog observes the event stream); New rejects Watch without it.
	Watch *watch.Options
	// Telemetry, when non-nil, runs a telemetry publisher streaming this
	// cluster's registry deltas, span events, phase quantiles, and
	// watchdog alerts to an aggregator (internal/telemetry): the cluster
	// fills in the Obs/Watch/report wiring and hosted-site announcement.
	// Requires Trace (span events ride the live sink); New rejects
	// Telemetry without it.
	Telemetry *telemetry.Options
	// WALDir, when non-empty, gives every site a per-site write-ahead
	// redo log under WALDir/site-NN (internal/wal): commits become
	// log-then-mutate, and — when Fault is also set — site crashes tear
	// the engine down for real (fence the log, wipe the heap) and
	// restarts rebuild it from disk: snapshot load, redo replay, and
	// decision inquiry for in-doubt 2PC participants. Empty keeps the
	// legacy in-memory fail-recover mode, where a crashed site's state
	// survives the outage untouched.
	WALDir string
	// WALFlushInterval is the group-commit window (see wal.Options);
	// zero leaves single-fsync-per-Sync behaviour.
	WALFlushInterval time.Duration
}

// Cluster is a running replicated database over m in-process sites.
type Cluster struct {
	Cfg       Config
	Placement *model.Placement
	Graph     *graph.CopyGraph
	Backedges []graph.Edge
	Tree      *graph.Tree
	Recorder  *history.Recorder
	Metrics   *metrics.Collector

	transport *comm.MemTransport
	fresh     *fresh.Tracker       // always non-nil: bounded state, one sharded-lock sample per commit/apply/read
	faultTr   *fault.Transport     // non-nil iff Cfg.Fault was set
	top       comm.Transport       // the layer engines actually send through
	watchdog  *watch.Watchdog      // non-nil iff Cfg.Watch was set
	publisher *telemetry.Publisher // non-nil iff Cfg.Telemetry was set
	shared    *core.SharedConfig
	pending   sync.WaitGroup

	// engMu guards engines: restartSite swaps in a rebuilt engine while
	// client threads fetch theirs per transaction.
	engMu   sync.RWMutex
	engines []core.Engine // repl:guardedby(engMu)

	// lcMu serializes crash/restart lifecycle transitions and guards the
	// wals map they rewrite (the fault layer already excludes deliveries
	// per site; this excludes concurrent transitions of different sites).
	lcMu sync.Mutex
	wals map[model.SiteID]*wal.SiteLog // non-nil iff Cfg.WALDir was set // repl:guardedby(lcMu)

	mu        sync.Mutex
	failure   error                      // first non-abort Execute error // repl:guardedby(mu)
	downSince map[model.SiteID]time.Time // sites torn down, awaiting restart // repl:guardedby(mu)
}

// New builds (but does not start) a cluster.
//
//lint:allow guardedby construction is single-threaded; the fault hooks and client threads that contend for engines and wals only run after New returns and Start spawns the sites
func New(cfg Config) (*Cluster, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	placement := cfg.Placement
	if placement == nil {
		var err error
		placement, err = cfg.Workload.GeneratePlacement()
		if err != nil {
			return nil, err
		}
	} else {
		// Manual layout: the workload dimensions follow the placement.
		cfg.Workload.Sites = placement.NumSites
		cfg.Workload.Items = placement.NumItems
		if err := cfg.Workload.ValidateRun(); err != nil {
			return nil, err
		}
	}
	g := graph.FromPlacement(placement)
	m := placement.NumSites

	// The total order over sites is the ID order (the workload generator
	// lays data out with respect to it); edges pointing backwards in it
	// form the backedge set B, and removing them yields the DAG. With
	// MinimizeBackedges, B instead comes from the §4.2 weighted
	// feedback-arc-set heuristic, which cuts fewer (and lighter) edges.
	order := make([]model.SiteID, m)
	for i := range order {
		order[i] = model.SiteID(i)
	}
	var backs []graph.Edge
	if cfg.MinimizeBackedges {
		cfg.GeneralTree = true // the chain is meaningful only for ID order
		backs = graph.MinWeightBackedges(g)
	} else {
		backs = graph.OrderBackedges(g, order)
	}
	gdag := g.Without(backs)
	if !gdag.IsDAG() {
		return nil, fmt.Errorf("cluster: internal error: graph minus backedges is not a DAG")
	}
	switch cfg.Protocol {
	case core.DAGWT, core.DAGT:
		if len(backs) > 0 {
			return nil, fmt.Errorf("cluster: %v requires an acyclic copy graph but the placement induces %d backedges; use BackEdge or set BackedgeProb=0",
				cfg.Protocol, len(backs))
		}
	}

	var tree *graph.Tree
	if cfg.GeneralTree {
		var err error
		tree, err = graph.BuildTree(gdag)
		if err != nil {
			return nil, err
		}
	} else {
		tree = graph.BuildChain(order)
	}
	if e := graph.CheckAncestorProperty(gdag, tree); e != nil {
		return nil, fmt.Errorf("cluster: propagation tree violates the ancestor property on edge %v", *e)
	}
	// BackEdge routing additionally requires every backedge target to be a
	// tree ancestor of the origin (guaranteed for minimal backedge sets,
	// §4.1; always true for the chain).
	if cfg.Protocol == core.BackEdge {
		for _, e := range backs {
			if !tree.IsAncestor(e.To, e.From) {
				return nil, fmt.Errorf("cluster: backedge %v target is not a tree ancestor of its origin", e)
			}
		}
	}

	backSet := make(map[graph.Edge]bool, len(backs))
	for _, e := range backs {
		backSet[e] = true
	}

	c := &Cluster{
		Cfg:       cfg,
		Placement: placement,
		Graph:     g,
		Backedges: backs,
		Tree:      tree,
		Metrics:   metrics.NewCollector(cfg.TrackPropagation),
		transport: comm.NewMemTransport(cfg.Latency),
		downSince: make(map[model.SiteID]time.Time),
	}
	if cfg.Jitter > 0 {
		c.transport.SetJitter(cfg.Jitter)
	}
	if cfg.Record {
		c.Recorder = history.NewRecorder()
	}
	if cfg.Obs != nil {
		c.transport.SetStats(obs.NewCommStats(cfg.Obs))
		cfg.Obs.Gauge("repl_protocol_info",
			obs.Label{Key: "protocol", Value: cfg.Protocol.String()}).Set(1)
	}

	// Assemble the transport stack bottom-up: memory, then fault injection,
	// then the reliable-delivery sublayer that hides the faults from the
	// engines — engine → Reliable → fault → MemTransport.
	c.top = c.transport
	if cfg.Fault != nil {
		ft, err := fault.New(c.top, *cfg.Fault)
		if err != nil {
			return nil, err
		}
		if cfg.Obs != nil {
			ft.SetObs(cfg.Obs)
		}
		if cfg.Trace != nil {
			ft.SetTrace(cfg.Trace)
		}
		c.faultTr = ft
		c.top = ft
	}
	if cfg.Reliable {
		rel := comm.NewReliable(c.top, cfg.ReliableCfg)
		if cfg.Obs != nil {
			rel.SetStats(obs.NewReliableStats(cfg.Obs))
		}
		if cfg.Trace != nil {
			rel.SetTrace(cfg.Trace)
		}
		c.top = rel
	}

	if cfg.Watch != nil {
		if cfg.Trace == nil {
			return nil, fmt.Errorf("cluster: Watch requires Trace (the watchdog feeds on the live event stream)")
		}
		c.watchdog = watch.New(*cfg.Watch)
		c.watchdog.SetObs(cfg.Obs)
		c.watchdog.SetTrace(cfg.Trace)
		cfg.Trace.AddSink(c.watchdog.Ingest)
	}

	if cfg.Telemetry != nil {
		if cfg.Trace == nil {
			return nil, fmt.Errorf("cluster: Telemetry requires Trace (span events ride the live sink)")
		}
		pub, err := telemetry.NewPublisher(*cfg.Telemetry)
		if err != nil {
			return nil, err
		}
		pub.SetObs(cfg.Obs)
		pub.SetWatch(c.watchdog)
		pub.SetReport(func() metrics.Report { return c.Metrics.Snapshot(m) })
		sites := make([]model.SiteID, m)
		for s := range sites {
			sites[s] = model.SiteID(s)
		}
		pub.Announce(cfg.Protocol.String(), sites)
		cfg.Trace.AddSink(pub.Ingest)
		c.publisher = pub
	}

	// The freshness observatory is always on (docs/OBSERVABILITY.md):
	// unlike the opt-in trace/obs planes its state is bounded by
	// items×replicas and its hot-path cost is one sharded-lock sample, so
	// every run — including bench suite runs — gets staleness
	// distributions and read certificates without extra configuration.
	c.fresh = fresh.New(m)

	shared := &core.SharedConfig{
		Placement:    placement,
		Graph:        gdag, // engines see the DAG; backedges are handled eagerly
		Order:        order,
		Tree:         tree,
		SubtreeItems: graph.SubtreeCopyItems(tree, placement),
		Backedges:    backSet,
		Params:       cfg.Params,
		Recorder:     c.Recorder,
		Metrics:      c.Metrics,
		Trace:        cfg.Trace,
		Obs:          cfg.Obs,
		Watch:        c.watchdog,
		Fresh:        c.fresh,
		Pending:      &c.pending,
	}
	c.shared = shared

	if cfg.WALDir != "" {
		c.wals = make(map[model.SiteID]*wal.SiteLog, m)
		for s := 0; s < m; s++ {
			lg, err := c.openWAL(model.SiteID(s))
			if err != nil {
				return nil, err
			}
			c.wals[model.SiteID(s)] = lg
		}
		shared.WALs = c.wals
		if c.faultTr != nil {
			// Honest crashes: tear the site down (fence + halt) and
			// rebuild it from its log on restart. Both hooks run with the
			// site's delivery gate write-held.
			c.faultTr.SetLifecycle(fault.Lifecycle{
				OnCrash:   c.crashSite,
				OnRestart: c.restartSite,
			})
		}
		if c.watchdog != nil {
			for s := 0; s < m; s++ {
				site := model.SiteID(s)
				c.watchdog.RegisterRecovery(site, func() watch.RecoveryStatus {
					return c.recoveryStatus(site)
				})
			}
		}
	}

	c.engines = make([]core.Engine, m)
	for s := 0; s < m; s++ {
		e, err := core.New(cfg.Protocol, shared, model.SiteID(s), c.top)
		if err != nil {
			return nil, err
		}
		c.engines[s] = e
	}

	// Contention observatory wiring (docs/OBSERVABILITY.md): the watchdog
	// dumps a wait-for snapshot alongside its flight recording when a
	// Contention alert fires, and the publisher ships the heat table and
	// abort breakdown every cycle. Both probes fetch engines lazily, so
	// they keep working across crash-restart swaps.
	if c.watchdog != nil {
		c.watchdog.RegisterWaitGraphs(c.WaitGraphs)
	}
	if c.publisher != nil {
		c.publisher.SetContention(
			func() []contend.HeatEntry { return c.Heat(procHeatK) },
			c.AbortReasons,
		)
		c.publisher.SetFresh(c.FreshSummary)
	}
	return c, nil
}

// procHeatK bounds the heat table each publish cycle ships. Wider than
// the 10 rows repltop shows: the aggregator merges tables across
// processes, and a too-narrow per-process cut would bias the merge.
const procHeatK = 32

// openWAL opens (or re-opens, after a crash) site s's redo log.
func (c *Cluster) openWAL(s model.SiteID) (*wal.SiteLog, error) {
	return wal.Open(filepath.Join(c.Cfg.WALDir, fmt.Sprintf("site-%02d", s)), wal.Options{
		Site:          s,
		FlushInterval: c.Cfg.WALFlushInterval,
		Items:         c.Placement.CopiesAt(s),
		Obs:           c.Cfg.Obs,
		Trace:         c.Cfg.Trace,
	})
}

// crashSite is the fault layer's OnCrash hook: fence the redo log (un-
// fsynced appends are honestly lost, every later append fails) and halt
// the engine. Runs with the site's delivery gate write-held, so no
// delivery is mid-handler — everything acknowledged is on disk.
func (c *Cluster) crashSite(site model.SiteID) {
	c.mu.Lock()
	//lint:allow nodeterminism downSince only feeds the recovery-status gauge a human reads; it never orders protocol events
	c.downSince[site] = time.Now()
	c.mu.Unlock()
	c.lcMu.Lock()
	defer c.lcMu.Unlock()
	c.wals[site].Fence()
	c.engine(site).Stop()
}

// restartSite is the fault layer's OnRestart hook: re-open the site's
// log (recovery replays snapshot + redo records into a fresh state), and
// build a fresh engine over it — the constructor preloads the store,
// restores in-doubt 2PC participants, re-forwards unmarked propagation
// obligations, and re-enqueues unconsumed receipts. Registering the new
// engine replaces the dead one's handler; the reliable sublayer's ARQ
// state survives, so retransmissions of everything unacknowledged flow
// into the rebuilt site.
func (c *Cluster) restartSite(site model.SiteID) {
	//lint:allow nodeterminism start only times the recovery for the WALRecover trace duration; replay does not consume it
	start := time.Now()
	c.lcMu.Lock()
	_ = c.wals[site].Close() // fenced: flushes nothing, releases the files
	lg, err := c.openWAL(site)
	if err != nil {
		c.lcMu.Unlock()
		c.fail(fmt.Errorf("cluster: reopening WAL of s%d: %w", site, err))
		return
	}
	c.wals[site] = lg
	eng, err := core.New(c.Cfg.Protocol, c.shared, site, c.top)
	c.lcMu.Unlock()
	if err != nil {
		c.fail(fmt.Errorf("cluster: rebuilding s%d: %w", site, err))
		return
	}
	c.engMu.Lock()
	c.engines[site] = eng
	c.engMu.Unlock()
	eng.Start()
	c.mu.Lock()
	delete(c.downSince, site)
	c.mu.Unlock()
	//lint:allow nodeterminism the recovery duration is observability payload, not protocol state
	dur := time.Since(start)
	c.Cfg.Trace.RecordDur(trace.WALRecover, site, model.NoSite, model.TxnID{},
		uint8(c.Cfg.Protocol), dur)
}

func (c *Cluster) recoveryStatus(site model.SiteID) watch.RecoveryStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, down := c.downSince[site]
	return watch.RecoveryStatus{Down: down, Since: t}
}

// engine returns site s's current engine — after a crash-restart cycle,
// the rebuilt one.
func (c *Cluster) engine(s model.SiteID) core.Engine {
	c.engMu.RLock()
	defer c.engMu.RUnlock()
	return c.engines[s]
}

// Engine returns the protocol engine of site s (the current one — after
// a crash-restart cycle, the engine rebuilt from the site's WAL).
func (c *Cluster) Engine(s model.SiteID) core.Engine { return c.engine(s) }

// WAL returns site s's redo log, or nil when Config.WALDir was not set.
// After a crash-restart cycle this is the re-opened log.
func (c *Cluster) WAL(s model.SiteID) *wal.SiteLog {
	c.lcMu.Lock()
	defer c.lcMu.Unlock()
	return c.wals[s]
}

// Transport returns the in-process transport (tests use it to skew edge
// latencies).
func (c *Cluster) Transport() *comm.MemTransport { return c.transport }

// Fault returns the fault-injection layer, or nil when Config.Fault was
// not set. Tests and the chaos harness use it to cut partitions, crash
// sites, and play schedules mid-run.
func (c *Cluster) Fault() *fault.Transport { return c.faultTr }

// Watch returns the staleness/liveness watchdog, or nil when
// Config.Watch was not set.
func (c *Cluster) Watch() *watch.Watchdog { return c.watchdog }

// Publisher returns the telemetry publisher, or nil when
// Config.Telemetry was not set.
func (c *Cluster) Publisher() *telemetry.Publisher { return c.publisher }

// Fresh returns the freshness tracker (always non-nil).
func (c *Cluster) Fresh() *fresh.Tracker { return c.fresh }

// FreshSummary returns the current staleness and read-certificate
// distributions, per site plus totals.
func (c *Cluster) FreshSummary() *fresh.Summary { return c.fresh.Summarize() }

// PropEdges returns the configured propagation edges — the tree edges
// updates travel along — or nil for protocols that do not propagate
// (PSL serves reads from the primary instead). Part of the canonical
// freshness summary: topology is schedule-derived, timing is not.
func (c *Cluster) PropEdges() []fresh.Edge {
	if !c.Cfg.Protocol.Propagates() {
		return nil
	}
	var out []fresh.Edge
	for s := 0; s < c.Placement.NumSites; s++ {
		for _, child := range c.Tree.Children(model.SiteID(s)) {
			out = append(out, fresh.Edge{From: model.SiteID(s), To: child})
		}
	}
	return out
}

// Start launches every engine's background workers, the watchdog, and
// the telemetry publisher.
func (c *Cluster) Start() {
	c.engMu.RLock()
	for _, e := range c.engines {
		e.Start()
	}
	c.engMu.RUnlock()
	c.fresh.StartProbe(0)
	c.watchdog.Start()
	c.publisher.Start()
}

// Stop shuts engines, watchdog, telemetry and transport down (closing
// the top of the transport stack closes every layer beneath it), then
// closes the redo logs (a fenced log closes as a no-op).
func (c *Cluster) Stop() {
	c.engMu.RLock()
	for _, e := range c.engines {
		e.Stop()
	}
	c.engMu.RUnlock()
	c.fresh.StopProbe()
	c.watchdog.Stop()
	c.publisher.Stop()
	_ = c.top.Close()
	c.lcMu.Lock()
	for _, lg := range c.wals {
		_ = lg.Close()
	}
	c.lcMu.Unlock()
}

// Run drives the §5.2 client threads to completion and returns the
// performance report. The measured interval covers thread execution only
// (not the quiesce drain), matching the paper's primary-subtransaction
// throughput metric.
func (c *Cluster) Run() (metrics.Report, error) {
	wl := c.Cfg.Workload
	var wg sync.WaitGroup
	c.Metrics.Begin()
	for s := 0; s < wl.Sites; s++ {
		for th := 0; th < wl.ThreadsPerSite; th++ {
			wg.Add(1)
			seed := wl.Seed + int64(s)*1000 + int64(th) + 7
			go func(site model.SiteID, seed int64) {
				defer wg.Done()
				gen := workload.NewTxnGen(wl, c.Placement, site, seed)
				for i := 0; i < wl.TxnsPerThread; i++ {
					ops := gen.Next()
					// A transaction refused because its site is mid-crash
					// (fenced redo log) is resubmitted — to the rebuilt
					// engine once the restart lands — like a client
					// reconnecting after a server bounce. Bounded so a
					// schedule that never restarts the site cannot hang
					// the run.
					//lint:allow nodeterminism the deadline only bounds how long a client retries into a crashed site; timing out fails the run rather than changing its schedule
					deadline := time.Now().Add(60 * time.Second)
					for {
						err := c.engine(site).Execute(ops)
						//lint:allow nodeterminism same retry bound: the clock gates giving up, not protocol ordering
						if err != nil && errors.Is(err, wal.ErrFenced) && time.Now().Before(deadline) {
							time.Sleep(5 * time.Millisecond)
							continue
						}
						if err != nil && !errors.Is(err, txn.ErrAborted) {
							c.fail(err)
							return
						}
						break
					}
				}
			}(model.SiteID(s), seed)
		}
	}
	wg.Wait()
	c.Metrics.End()
	c.mu.Lock()
	err := c.failure
	c.mu.Unlock()
	return c.Metrics.Snapshot(wl.Sites), err
}

func (c *Cluster) fail(err error) {
	c.mu.Lock()
	if c.failure == nil {
		c.failure = err
	}
	c.mu.Unlock()
}

// Quiesce waits until every in-flight propagation message has been fully
// consumed, or the timeout expires.
func (c *Cluster) Quiesce(timeout time.Duration) error {
	done := make(chan struct{})
	go func() {
		c.pending.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
		return fmt.Errorf("cluster: propagation did not quiesce within %v", timeout)
	}
}

// CheckSerializable verifies that the recorded execution has an acyclic
// conflict graph over logical transactions. Requires Config.Record.
func (c *Cluster) CheckSerializable() error {
	if c.Recorder == nil {
		return fmt.Errorf("cluster: serializability recording was not enabled")
	}
	return c.Recorder.CheckSerializable()
}

// CheckConvergence verifies, on a quiesced cluster, that every replica
// equals its primary copy. Only meaningful for propagating protocols
// (PSL leaves replicas stale by design).
func (c *Cluster) CheckConvergence() error {
	if !c.Cfg.Protocol.Propagates() {
		return fmt.Errorf("cluster: %v does not propagate updates; convergence is undefined", c.Cfg.Protocol)
	}
	// Read the site count under engMu: restartSite swaps rebuilt engines
	// into the slice concurrently. The count itself never changes, and
	// storeSnapshot re-locks per site to fetch whatever engine is current.
	c.engMu.RLock()
	n := len(c.engines)
	c.engMu.RUnlock()
	snaps := make([]map[model.ItemID]int64, n)
	for s := 0; s < n; s++ {
		snaps[s] = c.storeSnapshot(model.SiteID(s))
	}
	for item := 0; item < c.Placement.NumItems; item++ {
		primary := c.Placement.Primary[item]
		want := snaps[primary][model.ItemID(item)]
		for _, r := range c.Placement.ReplicaSites(model.ItemID(item)) {
			if got := snaps[r][model.ItemID(item)]; got != want {
				return fmt.Errorf("cluster: item %d diverged: primary s%d=%d, replica s%d=%d",
					item, primary, want, r, got)
			}
		}
	}
	return nil
}

// contender is the contention-observatory surface every engine exposes
// through its embedded base (internal/contend).
type contender interface {
	LockHeat() []lock.ItemStats
	LockWaitGraph() []lock.WaitEdge
	AbortReasons() map[string]uint64
}

// SiteHeat returns every site's per-item lock contention accounting,
// site-ordered — the input to contend.BuildHeat.
func (c *Cluster) SiteHeat() []contend.SiteHeat {
	c.engMu.RLock()
	n := len(c.engines)
	c.engMu.RUnlock()
	out := make([]contend.SiteHeat, 0, n)
	for s := 0; s < n; s++ {
		eng := c.engine(model.SiteID(s)).(contender)
		out = append(out, contend.SiteHeat{Site: model.SiteID(s), Items: eng.LockHeat()})
	}
	return out
}

// Heat merges every site's accounting into the cluster's top-k item heat
// table, hottest first (k <= 0 unbounded).
func (c *Cluster) Heat(k int) []contend.HeatEntry {
	return contend.BuildHeat(c.SiteHeat(), k)
}

// WaitGraphs snapshots every site's current lock wait-for state,
// site-ordered. Sites with no queued waiter contribute an empty edge
// list.
func (c *Cluster) WaitGraphs() []contend.SiteWaitGraph {
	c.engMu.RLock()
	n := len(c.engines)
	c.engMu.RUnlock()
	out := make([]contend.SiteWaitGraph, 0, n)
	for s := 0; s < n; s++ {
		eng := c.engine(model.SiteID(s)).(contender)
		out = append(out, contend.SiteWaitGraph{Site: model.SiteID(s), Edges: eng.LockWaitGraph()})
	}
	return out
}

// AbortReasons sums every site's abort root-cause breakdown, reason
// name → count. Empty without Config.Obs (the per-reason counters live
// in the registry).
func (c *Cluster) AbortReasons() map[string]uint64 {
	c.engMu.RLock()
	n := len(c.engines)
	c.engMu.RUnlock()
	out := make(map[string]uint64)
	for s := 0; s < n; s++ {
		for reason, cnt := range c.engine(model.SiteID(s)).(contender).AbortReasons() {
			out[reason] += cnt
		}
	}
	return out
}

func (c *Cluster) storeSnapshot(s model.SiteID) map[model.ItemID]int64 {
	type snapshotter interface {
		Snapshot() map[model.ItemID]int64
	}
	if sn, ok := c.engine(s).(snapshotter); ok {
		return sn.Snapshot()
	}
	panic("cluster: engine does not expose Snapshot")
}
