package cluster

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
)

// familySum adds up every sample of one metric family in a registry
// snapshot (summing a counter over its label sets, e.g. over sites).
func familySum(snap map[string]int64, family string) int64 {
	var sum int64
	for k, v := range snap {
		if k == family || strings.HasPrefix(k, family+"{") {
			sum += v
		}
	}
	return sum
}

// TestTracedBackEdgeCrossCheck is the end-to-end acceptance run: a 9-site
// BackEdge cluster traced from commit to every replica application. The
// trace must survive a JSONL round trip, PathOf must reconstruct each
// committed transaction's complete propagation tree, the trace-derived
// p95 propagation delay must agree with the metrics collector's, and the
// live registry's counters must match the report exactly.
func TestTracedBackEdgeCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	wl := smallWorkload()
	wl.Sites = 9
	wl.Items = 120
	wl.BackedgeProb = 0.2

	rec := trace.NewRecorder()
	reg := obs.NewRegistry()
	c, err := New(Config{
		Workload:         wl,
		Protocol:         core.BackEdge,
		Params:           fastParams(),
		Latency:          100 * time.Microsecond,
		TrackPropagation: true,
		Trace:            rec,
		Obs:              reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Start()
	defer c.Stop()
	if _, err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	// Snapshot after the drain so the report covers the same propagation
	// work the trace and registry saw.
	rep := c.Metrics.Snapshot(wl.Sites)

	// JSONL round trip.
	var buf bytes.Buffer
	if err := rec.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	events, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if len(events) != rec.Len() {
		t.Fatalf("round trip lost events: wrote %d, read %d", rec.Len(), len(events))
	}

	// Every committed transaction's propagation tree must be complete:
	// each site that applied it appears in the reconstructed tree.
	committed := make(map[model.TxnID]bool)
	applies := make(map[model.TxnID][]model.SiteID)
	forwards := make(map[model.TxnID]int)
	for _, ev := range events {
		switch ev.Kind {
		case trace.TxnCommit:
			committed[ev.TID] = true
		case trace.SecondaryApplied:
			applies[ev.TID] = append(applies[ev.TID], ev.Site)
		case trace.SecondaryForwarded:
			forwards[ev.TID]++
		}
	}
	var propagated int
	for tid := range committed {
		if forwards[tid] == 0 {
			continue
		}
		root, err := trace.PathOf(events, tid)
		if err != nil {
			t.Fatalf("PathOf(%v): %v", tid, err)
		}
		inTree := make(map[model.SiteID]bool)
		for _, s := range root.Sites() {
			inTree[s] = true
		}
		for _, s := range applies[tid] {
			if !inTree[s] {
				t.Fatalf("PathOf(%v) tree %v misses applying site s%d\n%s", tid, root.Sites(), s, root)
			}
		}
		if len(applies[tid]) > 0 {
			propagated++
		}
	}
	if propagated == 0 {
		t.Fatal("no committed transaction propagated to any replica; workload too small to exercise tracing")
	}

	// Trace-derived p95 propagation delay must agree with the collector's
	// (both measure commit-to-apply, on independent clock reads; allow
	// scheduling noise).
	delays := trace.PropDelays(events)[uint8(core.BackEdge)]
	if len(delays) < 20 {
		t.Fatalf("only %d propagation samples in trace", len(delays))
	}
	traceP95 := trace.Quantile(delays, 0.95)
	repP95 := rep.P95PropDelay
	hi := traceP95
	if repP95 > hi {
		hi = repP95
	}
	diff := traceP95 - repP95
	if diff < 0 {
		diff = -diff
	}
	if tol := hi*2/5 + 15*time.Millisecond; diff > tol {
		t.Errorf("p95 propagation delay disagrees: trace=%v report=%v (diff %v > tol %v)",
			traceP95, repP95, diff, tol)
	}

	// The live registry and the run report count the same events.
	snap := reg.Snapshot()
	if got := familySum(snap, "repl_txn_committed_total"); got != int64(rep.Committed) {
		t.Errorf("registry committed = %d, report = %d", got, rep.Committed)
	}
	if got := familySum(snap, "repl_secondary_applied_total"); got != int64(rep.Secondaries) {
		t.Errorf("registry applied = %d, report secondaries = %d", got, rep.Secondaries)
	}
	if got := familySum(snap, "repl_queue_depth"); got != 0 {
		t.Errorf("queue depths nonzero after quiesce: %d", got)
	}
	if familySum(snap, "repl_comm_bytes_total") == 0 {
		t.Error("no communication bytes recorded")
	}
}

// TestObservedProtocolsRace drives all five protocols with the trace
// recorder and live registry attached; under -race this is the detector
// run for the whole observability path (engines, transport stats,
// recorder shards, registry handles).
func TestObservedProtocolsRace(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	protos := []struct {
		proto    core.Protocol
		backedge float64
	}{
		{core.PSL, 0.2},
		{core.DAGWT, 0},
		{core.DAGT, 0},
		{core.BackEdge, 0.2},
		{core.NaiveLazy, 0},
	}
	for _, pc := range protos {
		pc := pc
		t.Run(pc.proto.String(), func(t *testing.T) {
			t.Parallel()
			wl := smallWorkload()
			wl.ThreadsPerSite = 3
			wl.TxnsPerThread = 25
			wl.BackedgeProb = pc.backedge
			rec := trace.NewRecorder()
			reg := obs.NewRegistry()
			c, err := New(Config{
				Workload: wl,
				Protocol: pc.proto,
				Params:   fastParams(),
				Latency:  100 * time.Microsecond,
				Trace:    rec,
				Obs:      reg,
			})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			c.Start()
			defer c.Stop()
			rep, err := c.Run()
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if err := c.Quiesce(30 * time.Second); err != nil {
				t.Fatalf("Quiesce: %v", err)
			}
			if rep.Committed == 0 {
				t.Fatal("nothing committed")
			}
			if rec.Len() == 0 {
				t.Fatal("no trace events recorded")
			}
			if familySum(reg.Snapshot(), "repl_txn_committed_total") != int64(rep.Committed) {
				t.Error("registry disagrees with report on commits")
			}
		})
	}
}

// scrape fetches /metrics and returns the summed value of each family —
// what a Prometheus server would see.
func scrape(t *testing.T, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[name] += v
	}
	return out
}

// TestMetricsEndpointUnderLoad serves a live cluster's registry the way
// cmd/replnode's -obs flag does and verifies that the scraped per-site
// commit, queue-depth and communication series appear and move under
// load.
func TestMetricsEndpointUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	reg := obs.NewRegistry()
	wl := smallWorkload()
	wl.TxnsPerThread = 30
	wl.BackedgeProb = 0
	c, err := New(Config{
		Workload: wl,
		Protocol: core.DAGWT,
		Params:   fastParams(),
		Latency:  100 * time.Microsecond,
		Obs:      reg,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	before := scrape(t, srv.URL)
	if before["repl_protocol_info"] != 1 {
		t.Fatalf("repl_protocol_info = %v before load", before["repl_protocol_info"])
	}
	if before["repl_txn_committed_total"] != 0 {
		t.Fatalf("commits nonzero before load: %v", before)
	}

	c.Start()
	defer c.Stop()
	rep, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}

	after := scrape(t, srv.URL)
	if got := after["repl_txn_committed_total"]; got != float64(rep.Committed) {
		t.Errorf("scraped commits = %v, report = %d", got, rep.Committed)
	}
	if after["repl_comm_bytes_total"] <= before["repl_comm_bytes_total"] {
		t.Error("comm bytes did not grow under load")
	}
	if after["repl_comm_messages_total"] == 0 {
		t.Error("no messages scraped")
	}
	if _, ok := after["repl_queue_depth"]; !ok {
		t.Error("queue depth series missing from exposition")
	}
	if after["repl_secondary_applied_total"] == 0 {
		t.Error("no secondary applications scraped")
	}

	// The expvar endpoint serves the same registry.
	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "repl_txn_committed_total") {
		t.Error("expvar output misses the registry")
	}
}
