package cluster

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/workload"
)

// artifactDir is where chaos tests persist post-mortem artifacts —
// flight-recorder dumps, trace JSONL, Perfetto exports. CI sets
// REPRO_ARTIFACT_DIR and uploads the directory when the chaos job
// fails; unset (the local default) means keep everything in TempDirs.
func artifactDir() string {
	return os.Getenv("REPRO_ARTIFACT_DIR")
}

// saveChaosArtifacts registers a cleanup that, if the test fails and
// REPRO_ARTIFACT_DIR is set, writes the recorded event stream next to
// any flight dumps as both trace JSONL and a Perfetto trace, so a CI
// failure ships the evidence instead of just the log.
func saveChaosArtifacts(t *testing.T, rec *trace.Recorder) {
	t.Cleanup(func() {
		dir := artifactDir()
		if dir == "" || !t.Failed() {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifacts: %v", err)
			return
		}
		name := strings.ReplaceAll(t.Name(), "/", "_")
		if f, err := os.Create(filepath.Join(dir, name+".trace.jsonl")); err == nil {
			_ = rec.WriteJSONL(f)
			f.Close()
		}
		if f, err := os.Create(filepath.Join(dir, name+".perfetto.json")); err == nil {
			_ = trace.WriteChromeTrace(f, rec.Snapshot())
			f.Close()
		}
		t.Logf("artifacts: wrote %s.{trace.jsonl,perfetto.json} to %s", name, dir)
	})
}

// flightDirFor routes a test's flight-recorder dumps into the CI
// artifact directory when set, a TempDir otherwise.
func flightDirFor(t *testing.T) string {
	if dir := artifactDir(); dir != "" {
		sub := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_")+".flight")
		if err := os.MkdirAll(sub, 0o755); err == nil {
			return sub
		}
	}
	return t.TempDir()
}

// spanWorkload is a deterministic single-threaded workload: with one
// client thread per site the TxnID↔program mapping is fixed, so two
// same-seed runs produce identical writes per transaction and therefore
// identical span-tree structures for every transaction committed in
// both.
func spanWorkload() workload.Config {
	wl := smallWorkload()
	wl.ThreadsPerSite = 1
	wl.TxnsPerThread = 30
	return wl
}

// runChaosTraced is runChaos with span collection: full chaos stack
// (drops, duplicates, delays, a partition-and-heal, a crash-and-restart
// over engine → Reliable → fault → MemTransport), returning the traced
// event stream after the cluster quiesced.
func runChaosTraced(t *testing.T, proto core.Protocol, backedgeProb float64) []trace.Event {
	t.Helper()
	wl := spanWorkload()
	wl.BackedgeProb = backedgeProb
	rec := trace.NewRecorder()
	saveChaosArtifacts(t, rec)
	c, err := New(Config{
		Workload: wl,
		Protocol: proto,
		Params:   fastParams(),
		Latency:  100 * time.Microsecond,
		Trace:    rec,
		Fault:    &fault.Config{Seed: chaosSeed, Faults: chaosFaults()},
		Reliable: true,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Start()
	defer c.Stop()

	sched := fault.Generate(chaosSeed, wl.Sites, 800*time.Millisecond)
	var player sync.WaitGroup
	player.Add(1)
	go func() {
		defer player.Done()
		c.Fault().Play(sched)
	}()

	rep, err := c.Run()
	if err != nil {
		t.Fatalf("Run under chaos: %v", err)
	}
	if rep.Committed == 0 {
		t.Fatalf("no transactions committed under chaos: %+v", rep)
	}
	player.Wait()
	if err := c.Quiesce(120 * time.Second); err != nil {
		t.Fatalf("Quiesce under chaos: %v", err)
	}
	return rec.Snapshot()
}

// structures returns the Structure rendering per transaction that
// committed (has a TxnCommit event) in the stream.
func structures(events []trace.Event) map[model.TxnID]string {
	committed := make(map[model.TxnID]bool)
	for _, ev := range events {
		if ev.Kind == trace.TxnCommit {
			committed[ev.TID] = true
		}
	}
	out := make(map[model.TxnID]string)
	for tid, tr := range trace.BuildSpanTrees(events) {
		if committed[tid] {
			out[tid] = tr.Structure()
		}
	}
	return out
}

// TestChaosSpanIntegrity runs the propagating protocols under the same
// seeded chaos as TestChaosAllProtocols and asserts causal-span
// integrity: every span-carrying event — secondary applies and relays,
// retransmissions, acks, 2PC votes and decisions, fault attributions —
// resolves through recorded parents to the originating transaction's
// primary span, and the Perfetto export is valid JSON with monotone
// per-track timestamps.
func TestChaosSpanIntegrity(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos integration test")
	}
	protos := []struct {
		proto    core.Protocol
		backedge float64
	}{
		{core.DAGWT, 0},
		{core.DAGT, 0},
		{core.BackEdge, 0.2},
	}
	for _, pc := range protos {
		pc := pc
		t.Run(pc.proto.String(), func(t *testing.T) {
			t.Parallel()
			events := runChaosTraced(t, pc.proto, pc.backedge)

			if problems := trace.VerifySpans(events); len(problems) != 0 {
				max := len(problems)
				if max > 10 {
					max = 10
				}
				t.Fatalf("%d span-integrity violations, first %d:\n%v",
					len(problems), max, problems[:max])
			}

			// Every committed transaction that forwarded work has applied
			// descendants under its root, and they really descend from the
			// primary commit span.
			trees := trace.BuildSpanTrees(events)
			applied := 0
			for _, tr := range trees {
				if tr.Root == nil {
					continue
				}
				for _, n := range tr.Nodes {
					if !n.Has(trace.SecondaryApplied) && !n.Has(trace.BackedgeCommit) {
						continue
					}
					applied++
					m := n
					for m.Parent != nil {
						m = m.Parent
					}
					if m != tr.Root {
						t.Fatalf("applied span %v at site %d does not reach the root", n.ID, n.Site)
					}
				}
			}
			if applied == 0 {
				t.Fatal("no applied spans recorded under chaos")
			}

			// Under ≥5% loss the reliable sublayer retransmitted, and those
			// retransmissions were attributed to transaction spans.
			retrans := 0
			for _, ev := range events {
				if ev.Kind == trace.RelRetransmit && ev.Span != 0 {
					retrans++
				}
			}
			if retrans == 0 {
				t.Error("no span-attributed retransmissions — chaos inert or attribution lost")
			}

			// Perfetto export: valid JSON, non-empty, monotone per track.
			var buf bytes.Buffer
			if err := trace.WriteChromeTrace(&buf, events); err != nil {
				t.Fatal(err)
			}
			var out struct {
				TraceEvents []struct {
					Ph  string `json:"ph"`
					Ts  int64  `json:"ts"`
					Pid int    `json:"pid"`
					Tid int    `json:"tid"`
				} `json:"traceEvents"`
			}
			if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
				t.Fatalf("Perfetto export is not valid JSON: %v", err)
			}
			if len(out.TraceEvents) < len(events) {
				t.Fatalf("export dropped events: %d < %d", len(out.TraceEvents), len(events))
			}
			last := make(map[[2]int]int64)
			for _, ev := range out.TraceEvents {
				if ev.Ph != "i" {
					continue
				}
				key := [2]int{ev.Pid, ev.Tid}
				if ts, ok := last[key]; ok && ev.Ts < ts {
					t.Fatalf("track %v timestamps not monotone", key)
				}
				last[key] = ev.Ts
			}
		})
	}
}

// TestChaosSpanStructureStable reruns the same seeded chaos twice and
// asserts the reconstructed propagation structure is byte-identical for
// every transaction committed in both runs: span derivation depends
// only on transaction identity and routing, never on timing, retry
// counts, or which of the decision/inquiry paths delivered a 2PC
// outcome.
func TestChaosSpanStructureStable(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos integration test")
	}
	protos := []struct {
		proto    core.Protocol
		backedge float64
	}{
		{core.DAGWT, 0},
		{core.BackEdge, 0.2},
	}
	for _, pc := range protos {
		pc := pc
		t.Run(pc.proto.String(), func(t *testing.T) {
			t.Parallel()
			a := structures(runChaosTraced(t, pc.proto, pc.backedge))
			b := structures(runChaosTraced(t, pc.proto, pc.backedge))
			both := 0
			for tid, sa := range a {
				sb, ok := b[tid]
				if !ok {
					continue // committed in run A only (divergent abort timing)
				}
				both++
				if sa != sb {
					t.Fatalf("txn %v structure differs between same-seed runs:\nrun A:\n%srun B:\n%s", tid, sa, sb)
				}
			}
			if both == 0 {
				t.Fatal("no transaction committed in both runs — nothing compared")
			}
			t.Logf("%v: %d transactions committed in both runs, all structures byte-identical", pc.proto, both)
		})
	}
}
