package cluster

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/workload"
)

// fastParams returns protocol parameters scaled down for test speed while
// keeping the same relative magnitudes as Table 1.
func fastParams() core.Params {
	return core.Params{
		LockTimeout:    20 * time.Millisecond,
		PrepareTimeout: 200 * time.Millisecond,
		EpochPeriod:    5 * time.Millisecond,
		DummyPeriod:    3 * time.Millisecond,
		OpCost:         0,
		RPCTimeout:     100 * time.Millisecond,
	}
}

func smallWorkload() workload.Config {
	wl := workload.Default()
	wl.Sites = 5
	wl.Items = 60
	wl.ThreadsPerSite = 2
	wl.TxnsPerThread = 40
	return wl
}

// runAndCheck runs a full cluster lifecycle and applies the correctness
// checks appropriate for the protocol.
func runAndCheck(t *testing.T, cfg Config) {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Start()
	defer c.Stop()
	rep, err := c.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Committed == 0 {
		t.Fatalf("no transactions committed: %+v", rep)
	}
	if err := c.Quiesce(30 * time.Second); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	if cfg.Protocol.Serializable() {
		if err := c.CheckSerializable(); err != nil {
			t.Errorf("serializability violated: %v", err)
		}
	}
	if cfg.Protocol.Propagates() && cfg.Protocol.Serializable() {
		if err := c.CheckConvergence(); err != nil {
			t.Errorf("convergence violated: %v", err)
		}
	}
	t.Logf("%v: %v", cfg.Protocol, rep)
}

func TestClusterProtocolsSmallWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	protos := []struct {
		proto    core.Protocol
		backedge float64
	}{
		{core.PSL, 0.2},
		{core.DAGWT, 0},
		{core.DAGT, 0},
		{core.BackEdge, 0.2},
		{core.BackEdge, 1.0},
	}
	for _, pc := range protos {
		pc := pc
		t.Run(pc.proto.String(), func(t *testing.T) {
			t.Parallel()
			wl := smallWorkload()
			wl.BackedgeProb = pc.backedge
			runAndCheck(t, Config{
				Workload:         wl,
				Protocol:         pc.proto,
				Params:           fastParams(),
				Latency:          100 * time.Microsecond,
				Record:           true,
				TrackPropagation: true,
			})
		})
	}
}

func TestClusterDAGProtocolRejectsCyclicGraph(t *testing.T) {
	wl := smallWorkload()
	wl.BackedgeProb = 1
	wl.ReplicationProb = 1
	for _, proto := range []core.Protocol{core.DAGWT, core.DAGT} {
		if _, err := New(Config{Workload: wl, Protocol: proto, Params: fastParams()}); err == nil {
			t.Errorf("%v accepted a cyclic copy graph", proto)
		}
	}
}

func TestClusterGeneralTree(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	wl := smallWorkload()
	wl.BackedgeProb = 0
	runAndCheck(t, Config{
		Workload:    wl,
		Protocol:    core.DAGWT,
		Params:      fastParams(),
		Latency:     100 * time.Microsecond,
		GeneralTree: true,
		Record:      true,
	})
}

func TestClusterWithJitterStaysCorrect(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	wl := smallWorkload()
	wl.BackedgeProb = 0
	runAndCheck(t, Config{
		Workload: wl,
		Protocol: core.DAGT,
		Params:   fastParams(),
		Latency:  100 * time.Microsecond,
		Jitter:   2 * time.Millisecond,
		Record:   true,
	})
}

func TestClusterQuiesceTimeout(t *testing.T) {
	wl := smallWorkload()
	wl.TxnsPerThread = 0
	wl.BackedgeProb = 0
	c, err := New(Config{Workload: wl, Protocol: core.DAGWT, Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Stop()
	// Nothing in flight: quiesce must return immediately.
	if err := c.Quiesce(time.Second); err != nil {
		t.Fatalf("quiesce on idle cluster: %v", err)
	}
	// Simulate a stuck message.
	c.pending.Add(1)
	err = c.Quiesce(50 * time.Millisecond)
	if err == nil {
		t.Fatal("expected quiesce timeout")
	}
	c.pending.Done()
}

func TestClusterConvergenceUndefinedForPSL(t *testing.T) {
	wl := smallWorkload()
	wl.TxnsPerThread = 0
	c, err := New(Config{Workload: wl, Protocol: core.PSL, Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckConvergence(); err == nil {
		t.Fatal("expected convergence to be rejected for PSL")
	}
}

func TestClusterSerializabilityRequiresRecording(t *testing.T) {
	wl := smallWorkload()
	wl.TxnsPerThread = 0
	wl.BackedgeProb = 0
	c, err := New(Config{Workload: wl, Protocol: core.DAGWT, Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CheckSerializable(); err == nil {
		t.Fatal("expected an error without recording enabled")
	}
}

func TestClusterBackEdgeRejectsTreeWithoutAncestorTargets(t *testing.T) {
	// Item 0: primary s1, replica s0 — a backedge whose target s0 is not
	// reachable from anywhere in the remaining DAG. The chain makes s0 an
	// ancestor of s1 by construction, but the bushy tree leaves them in
	// separate components, which BackEdge routing cannot serve.
	p := model.NewPlacement(3, 3)
	p.Primary = []model.SiteID{1, 0, 2}
	p.Replicas = [][]model.SiteID{{0}, nil, nil}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	wl := smallWorkload()
	wl.TxnsPerThread = 0
	base := Config{Workload: wl, Protocol: core.BackEdge, Params: fastParams(), Placement: p}

	chainCfg := base
	if _, err := New(chainCfg); err != nil {
		t.Errorf("chain variant must accept this placement: %v", err)
	}
	treeCfg := base
	treeCfg.GeneralTree = true
	if _, err := New(treeCfg); err == nil {
		t.Error("bushy tree with an unroutable backedge was accepted")
	}
}

func TestClusterMinimizeBackedges(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	wl := smallWorkload()
	wl.BackedgeProb = 0.6
	wl.ReplicationProb = 0.5

	ordered, err := New(Config{Workload: wl, Protocol: core.BackEdge, Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	minimized, err := New(Config{
		Workload: wl, Protocol: core.BackEdge, Params: fastParams(),
		MinimizeBackedges: true,
		Latency:           100 * time.Microsecond,
		Record:            true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The §4.2 heuristic must never cut MORE weight than the naive
	// ID-order split.
	w := func(c *Cluster) int {
		total := 0
		for _, e := range c.Backedges {
			total += c.Graph.Weight(e)
		}
		return total
	}
	if w(minimized) > w(ordered) {
		t.Errorf("FAS heuristic cut weight %d, ID order only %d", w(minimized), w(ordered))
	}
	// And the minimized cluster still runs correctly end to end.
	minimized.Start()
	defer minimized.Stop()
	rep, err := minimized.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if err := minimized.Quiesce(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := minimized.CheckSerializable(); err != nil {
		t.Fatal(err)
	}
	if err := minimized.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	t.Logf("backedge weight: id-order=%d minimized=%d", w(ordered), w(minimized))
}

func TestClusterAccessors(t *testing.T) {
	wl := smallWorkload()
	wl.TxnsPerThread = 0
	wl.BackedgeProb = 0
	c, err := New(Config{Workload: wl, Protocol: core.DAGWT, Params: fastParams()})
	if err != nil {
		t.Fatal(err)
	}
	if c.Engine(0) == nil || c.Engine(0).Site() != 0 {
		t.Error("Engine accessor broken")
	}
	if c.Transport() == nil {
		t.Error("Transport accessor broken")
	}
	if c.Tree == nil || c.Graph == nil || c.Placement == nil {
		t.Error("derived structures not exposed")
	}
}

func TestClusterManualPlacementAdoptsDimensions(t *testing.T) {
	p := model.NewPlacement(2, 1)
	p.Primary[0] = 0
	p.Replicas[0] = []model.SiteID{1}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	wl := smallWorkload() // says 5 sites / 60 items; the placement overrides
	wl.TxnsPerThread = 0
	c, err := New(Config{Workload: wl, Protocol: core.DAGWT, Params: fastParams(), Placement: p})
	if err != nil {
		t.Fatal(err)
	}
	if c.Cfg.Workload.Sites != 2 || c.Cfg.Workload.Items != 1 {
		t.Errorf("workload dims not adopted: %d sites, %d items",
			c.Cfg.Workload.Sites, c.Cfg.Workload.Items)
	}
}

func TestClusterRunPropagatesWorkloadErrors(t *testing.T) {
	wl := smallWorkload()
	wl.Items = 2 // fewer items than sites
	if _, err := New(Config{Workload: wl, Protocol: core.DAGWT, Params: fastParams()}); err == nil {
		t.Fatal("expected workload validation error")
	}
	var cfgErr error = errors.New("x")
	_ = cfgErr
}
