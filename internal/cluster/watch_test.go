package cluster

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/watch"
)

// pollFor retries cond every millisecond until it holds or the timeout
// expires.
//
//lint:allow nodeterminism the wall clock only bounds how long the test polls; it never orders protocol events
func pollFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// findAlert returns the first active alert of the given kind.
func findAlert(w *watch.Watchdog, k watch.Kind) (watch.Alert, bool) {
	for _, a := range w.Active() {
		if a.Kind == k {
			return a, true
		}
	}
	return watch.Alert{}, false
}

// TestWatchDAGTEpochStall partitions one copy-graph edge of a DAG(T)
// cluster and asserts the watchdog raises an epoch-stall alert naming
// the starved site and the silent parent, then clears it after heal.
//
// Layout: sites 0 and 1 are sources, both replicated at site 2
// (copy-graph edges 0→2 and 1→2). Cutting 0→2 starves site 2's queue
// for parent 0 while parent 1 keeps feeding dummies, so the §3.2.2
// merge freezes — exactly the stall §3.3's dummy mechanism exists to
// prevent, reintroduced here by partitioning the dummies away.
func TestWatchDAGTEpochStall(t *testing.T) {
	if testing.Short() {
		t.Skip("watchdog integration test")
	}
	p := model.NewPlacement(3, 2)
	p.Primary = []model.SiteID{0, 1}
	p.Replicas = [][]model.SiteID{{2}, {2}}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	wl := smallWorkload()
	wl.TxnsPerThread = 0
	rec := trace.NewRecorder()
	saveChaosArtifacts(t, rec)
	c, err := New(Config{
		Workload:  wl,
		Protocol:  core.DAGT,
		Params:    fastParams(),
		Latency:   100 * time.Microsecond,
		Placement: p,
		Trace:     rec,
		Obs:       obs.NewRegistry(),
		Fault:     &fault.Config{Seed: 1}, // no random faults; partitions only
		Reliable:  true,
		Watch: &watch.Options{
			StallDeadline:     100 * time.Millisecond,
			StalenessDeadline: time.Hour, // isolate the epoch alert
			PendingDeadline:   time.Hour,
			Tick:              10 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Start()
	defer c.Stop()
	w := c.Watch()

	// Healthy cluster: give the dummy/epoch tickers a few periods and
	// verify nothing fires.
	time.Sleep(300 * time.Millisecond)
	if got := w.Active(); len(got) != 0 {
		t.Fatalf("healthy cluster raised alerts: %v", got)
	}

	c.Fault().Partition(0, 2)
	pollFor(t, 5*time.Second, func() bool {
		a, ok := findAlert(w, watch.EpochStall)
		return ok && a.Site == 2 && a.Peer == 0
	}, "EpochStall{site 2, peer 0}")

	// The stalled site never implicates the healthy parent.
	if a, _ := findAlert(w, watch.EpochStall); a.Peer == 1 {
		t.Fatalf("alert blames the healthy parent: %+v", a)
	}

	c.Fault().Heal(0, 2)
	pollFor(t, 15*time.Second, func() bool {
		_, ok := findAlert(w, watch.EpochStall)
		return !ok
	}, "epoch-stall alert to clear after heal")

	if s := w.Summarize(); s.AlertsRaised["epoch_stall"] == 0 {
		t.Errorf("summary lost the raised alert: %+v", s)
	}
	// The alert lifecycle is also visible in the trace.
	var sawAlert, sawClear bool
	for _, ev := range rec.Snapshot() {
		switch ev.Kind {
		case trace.WatchAlert:
			sawAlert = true
		case trace.WatchClear:
			sawClear = true
		}
	}
	if !sawAlert || !sawClear {
		t.Errorf("trace missing watch lifecycle: alert=%v clear=%v", sawAlert, sawClear)
	}
}

// TestWatchBackEdgePendingHang wedges a BackEdge 2PC participant in the
// prepared state — the decision message partitioned away, the decision
// inquiry's reply path cut too — and asserts the watchdog reports the
// hung participant within the configured deadline, then clears once the
// partition heals and the retransmitted decision lands.
func TestWatchBackEdgePendingHang(t *testing.T) {
	if testing.Short() {
		t.Skip("watchdog integration test")
	}
	// Item 0: primary at site 2, replica at site 0 — the copy-graph edge
	// 2→0 points backwards in the site order, so it is the backedge, and
	// site 2's updates to item 0 propagate eagerly under 2PC.
	p := model.NewPlacement(3, 1)
	p.Primary = []model.SiteID{2}
	p.Replicas = [][]model.SiteID{{0}}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	wl := smallWorkload()
	wl.TxnsPerThread = 0
	reg := obs.NewRegistry()
	flightDir := flightDirFor(t)
	rec := trace.NewRecorder()
	saveChaosArtifacts(t, rec)
	c, err := New(Config{
		Workload:  wl,
		Protocol:  core.BackEdge,
		Params:    fastParams(),
		Latency:   5 * time.Millisecond, // wide window between vote and decision
		Placement: p,
		Trace:     rec,
		Obs:       reg,
		Fault:     &fault.Config{Seed: 1},
		Reliable:  true,
		Watch: &watch.Options{
			PendingDeadline:   300 * time.Millisecond,
			StalenessDeadline: time.Hour,
			StallDeadline:     time.Hour,
			Tick:              10 * time.Millisecond,
			FlightDir:         flightDir,
			MaxDumps:          2,
		},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	c.Start()
	defer c.Stop()
	w := c.Watch()

	// Run the transaction from the origin; it commits even though the
	// decision delivery will fail (the decision is logged first, and
	// delivery errors do not unwind a decided commit).
	execDone := make(chan error, 1)
	go func() {
		execDone <- c.Engine(2).Execute([]model.Op{
			{Kind: model.OpWrite, Item: 0, Value: 42},
		})
	}()

	// The participant votes (its prepare counter moves) strictly before
	// the coordinator can have sent the decision — the yes vote still has
	// a 5 ms flight back to the origin. Cutting 2→0 in that window drops
	// exactly the decision, and keeps dropping the inquiry replies.
	pollFor(t, 5*time.Second, func() bool {
		return reg.Snapshot()[`repl_backedge_prepares_total{site="0"}`] >= 1
	}, "participant to vote")
	c.Fault().Partition(2, 0)

	if err := <-execDone; err != nil {
		t.Fatalf("origin Execute: %v", err)
	}
	pollFor(t, 5*time.Second, func() bool {
		a, ok := findAlert(w, watch.PendingTwoPC)
		return ok && a.Site == 0 && a.TID.Site == 2
	}, "PendingTwoPC{site 0, txn of site 2}")

	// The raise produced a flight-recorder dump.
	if dumps := w.Dumps(); len(dumps) == 0 {
		t.Error("no flight-recorder dump on alert")
	}

	// Heal: the reliable sublayer retransmits the decision, the
	// participant finishes, and the alert clears.
	c.Fault().Heal(2, 0)
	pollFor(t, 15*time.Second, func() bool {
		_, ok := findAlert(w, watch.PendingTwoPC)
		return !ok
	}, "pending-2PC alert to clear after heal")

	if s := w.Summarize(); s.AlertsRaised["pending_2pc"] == 0 {
		t.Errorf("summary lost the raised alert: %+v", s)
	}
}
