package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// tsFieldNames are the tuple components of a ts.Timestamp entry. Ordering
// any of them directly is only meaningful inside the algebra.
var tsFieldNames = map[string]bool{"Site": true, "LTS": true, "Epoch": true}

// NewTSCompare returns the tscompare analyzer. Timestamps in this
// protocol family are *tuples* ordered by reverse site order (paper §3.2,
// docs/DESIGN.md): Compare walks sites from highest to lowest and the
// first differing LTS decides. Any direct relational operator on
// timestamp values or their tuple fields outside internal/ts reimplements
// that rule ad hoc — and the natural-looking versions (compare LTS of the
// local site, compare tuples in ascending site order) are exactly the
// bugs the paper's Section 3 counterexamples exhibit. The analyzer flags
//
//   - ==, !=, <, <=, >, >= where either operand is a ts.Timestamp or
//     ts.Tuple value, and
//   - <, <=, >, >= where either operand selects a Site/LTS/Epoch field
//     from such a value,
//
// in every package except those named "ts" (the algebra itself defines
// Compare/Less/Equal and may touch its own representation). Use
// ts.Compare, ts.Less or ts.Equal instead; a genuinely scalar use — e.g.
// comparing one site's LTS against a remembered LTS from the same site —
// carries `//lint:allow tscompare <reason>`.
func NewTSCompare() *Analyzer {
	a := &Analyzer{
		Name: "tscompare",
		Doc:  "forbids direct relational operators on timestamp tuples outside internal/ts",
	}
	a.Run = func(pass *Pass) error {
		if pass.Pkg.Types.Name() == "ts" {
			return nil
		}
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || !relationalOp(be.Op) {
					return true
				}
				for _, operand := range []ast.Expr{be.X, be.Y} {
					if isTSValue(info, operand) {
						pass.Reportf(be.Pos(), "direct %s on timestamp tuples: ordering is reverse-site-order, use ts.Compare/ts.Less/ts.Equal", be.Op)
						return true
					}
					if be.Op != token.EQL && be.Op != token.NEQ && isTSFieldSelector(info, operand) {
						pass.Reportf(be.Pos(), "ordering a timestamp tuple field with %s bypasses reverse-site-order comparison (use ts.Compare, or annotate a genuinely scalar use)", be.Op)
						return true
					}
				}
				return true
			})
		}
		return nil
	}
	return a
}

func relationalOp(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// isTSValue reports whether e's type is ts.Timestamp or ts.Tuple
// (possibly behind pointers).
func isTSValue(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok {
		return false
	}
	return typeFrom(tv.Type, "ts", "Timestamp") || typeFrom(tv.Type, "ts", "Tuple")
}

// isTSFieldSelector reports whether e selects a Site/LTS/Epoch field from
// a timestamp tuple (x.LTS, t.Tuples[i].Site, ...).
func isTSFieldSelector(info *types.Info, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || !tsFieldNames[sel.Sel.Name] {
		return false
	}
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() || v.Pkg() == nil || v.Pkg().Name() != "ts" {
		return false
	}
	return isTSValue(info, sel.X)
}
