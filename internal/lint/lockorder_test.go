package lint

import "testing"

func TestLockOrderGolden(t *testing.T) {
	runGolden(t, NewLockOrder("lockorder_a"), "lockorder_a")
}
