package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks packages using only the standard library: the
// build list and each dependency's compiler export data come from
// `go list -deps -export -json`, target packages are parsed from source,
// and go/types checks them with the gc importer reading the export files.
// This is exactly what a build does, so it works offline, needs no
// third-party loader, and always agrees with the toolchain.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	Dir         string
	ImportPath  string
	Export      string
	Standard    bool
	Name        string
	GoFiles     []string
	TestGoFiles []string
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON stream.
func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load type-checks the packages matching patterns, resolved relative to
// dir (the module root or any directory inside it). Test files are not
// included: the analyzers enforce invariants on production code.
func Load(dir string, patterns ...string) (*Program, error) {
	return load(dir, patterns, false)
}

// LoadTests is Load with each package's in-package _test.go files
// type-checked alongside its production files, so analyzers also see
// test harness code (the chaos and bench suites lean on timing and
// randomness, where the determinism discipline matters most). External
// test packages (package foo_test) are not loaded: they are separate
// packages whose import graph would need test-variant export data, and
// this repository keeps its tests in-package.
func LoadTests(dir string, patterns ...string) (*Program, error) {
	return load(dir, patterns, true)
}

func load(dir string, patterns []string, tests bool) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// One walk for the full dependency closure with export data, one for
	// the target set. In tests mode the closure walk adds -test so the
	// extra imports test files pull in (testing, os, sibling packages)
	// have export data too.
	depsArgs := []string{"-deps", "-export", "-json=ImportPath,Export,Dir,GoFiles,Standard,Name"}
	if tests {
		depsArgs = []string{"-deps", "-test", "-export", "-json=ImportPath,Export,Dir,GoFiles,Standard,Name"}
	}
	deps, err := goList(dir, append(depsArgs, patterns...)...)
	if err != nil {
		return nil, err
	}
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,GoFiles,TestGoFiles,Name"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(deps))
	for _, p := range deps {
		// Skip the synthesized test variants ("pkg [root.test]", the
		// generated "root.test" main): imports always resolve to the
		// plain package, and a test-variant export must not shadow it.
		if strings.Contains(p.ImportPath, " [") || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(e)
	}
	fset := token.NewFileSet()
	// One shared importer so every target sees identical dependency
	// package objects.
	imp := importer.ForCompiler(fset, "gc", lookup)
	prog := &Program{Fset: fset}
	for _, t := range targets {
		files := t.GoFiles
		if tests && len(t.TestGoFiles) > 0 {
			files = append(append([]string(nil), t.GoFiles...), t.TestGoFiles...)
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, files)
		if err != nil {
			return nil, err
		}
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// LoadDirs type-checks a set of plain directories (no go.mod required) as
// packages whose import paths are the given names; dirs[i] provides the
// package imported as names[i]. Directories may import each other by name
// (resolved from source, in dependency order) and anything else resolves
// through the surrounding toolchain like Load. This is the loader the
// analysistest-style golden tests use for testdata trees.
func LoadDirs(root string, names []string) (*Program, error) {
	type src struct {
		name    string
		dir     string
		files   []*ast.File
		imports map[string]bool
	}
	fset := token.NewFileSet()
	srcs := make(map[string]*src, len(names))
	var external []string
	for _, name := range names {
		dir := filepath.Join(root, filepath.FromSlash(name))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		s := &src{name: name, dir: dir, imports: make(map[string]bool)}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			s.files = append(s.files, f)
			for _, im := range f.Imports {
				p := strings.Trim(im.Path.Value, `"`)
				s.imports[p] = true
			}
		}
		srcs[name] = s
	}
	for _, s := range srcs {
		for p := range s.imports {
			if _, local := srcs[p]; !local {
				external = append(external, p)
			}
		}
	}
	exports := make(map[string]string)
	if len(external) > 0 {
		sort.Strings(external)
		deps, err := goList(root, append([]string{"-deps", "-export", "-json=ImportPath,Export,Standard"}, external...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range deps {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	checked := make(map[string]*Package)
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(e)
	})
	imp := chainImporter{local: checked, fallback: gc}
	prog := &Program{Fset: fset}
	// Check in dependency order among the local packages.
	var order []string
	visiting := make(map[string]bool)
	var visit func(name string) error
	visit = func(name string) error {
		if checkedContains(order, name) {
			return nil
		}
		if visiting[name] {
			return fmt.Errorf("lint: import cycle through %q", name)
		}
		visiting[name] = true
		for p := range srcs[name].imports {
			if _, local := srcs[p]; local {
				if err := visit(p); err != nil {
					return err
				}
			}
		}
		visiting[name] = false
		order = append(order, name)
		return nil
	}
	for _, name := range names {
		if err := visit(name); err != nil {
			return nil, err
		}
	}
	for _, name := range order {
		s := srcs[name]
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(name, fset, s.files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %w", name, err)
		}
		pkg := &Package{Path: name, Fset: fset, Files: s.files, Types: tpkg, Info: info}
		checked[name] = pkg
		prog.Pkgs = append(prog.Pkgs, pkg)
	}
	return prog, nil
}

func checkedContains(order []string, name string) bool {
	for _, o := range order {
		if o == name {
			return true
		}
	}
	return false
}

// chainImporter resolves locally-checked packages first, then falls back
// to compiler export data.
type chainImporter struct {
	local    map[string]*Package
	fallback types.Importer
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p.Types, nil
	}
	return c.fallback.Import(path)
}
