// Package lint is a go/analysis-style static-analysis framework plus the
// repllint analyzer suite enforcing this repository's protocol invariants
// at vet-time (docs/STATIC_ANALYSIS.md). The paper's correctness argument
// (Theorems 1-3) rests on code-level disciplines the compiler cannot
// check — FIFO forwarding in commit order, reverse-site-order timestamp
// comparison, locks released only after secondaries are enqueued, and
// (since the chaos harness) byte-for-byte replayable schedules that
// forbid unseeded randomness and wall-clock reads in deterministic
// paths. Each analyzer turns one such discipline into a diagnostic.
//
// The framework deliberately mirrors the golang.org/x/tools go/analysis
// API shape (Analyzer, Pass, Reportf, analysistest-style golden files)
// so the suite can migrate onto the real multichecker wholesale if the
// dependency ever becomes available; it is built on the standard library
// alone: packages are loaded with `go list -export` and type-checked
// against compiler export data (see load.go).
//
// Diagnostics are suppressed with an explicit escape hatch:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line immediately above it; placed in a
// function's doc comment it covers the whole function body (for
// single-threaded constructors and recovery code). The reason is
// mandatory: a directive with no prose after the analyzer names is
// itself a diagnostic (analyzer name "allowreason"), because an
// unexplained suppression is indistinguishable from a silenced bug.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a single package; Finish, if
// non-nil, runs once after every package's Run and draws whole-program
// conclusions (cross-package lock graphs, unused event kinds). Analyzer
// values carry per-run state in their closures, so obtain fresh ones from
// Analyzers (or the New* constructors) for every run.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
	// Finish reports program-wide diagnostics; report may be called with
	// any position from the program's FileSet.
	Finish func(prog *Program, report func(token.Pos, string)) error
}

// Package is one type-checked package under analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the full set of packages one lint run covers.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// Pass carries one analyzer's view of one package, mirroring
// x/tools/go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	report func(token.Pos, string)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// allowRe matches the suppression directive. The reason tail is not
// interpreted, only encouraged.
var allowRe = regexp.MustCompile(`^//lint:allow\s+([A-Za-z0-9_,]+)`)

// allowKey identifies one suppressed (file, line, analyzer) site.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowRange is a function-scoped suppression: a directive in a FuncDecl
// doc comment covers every line of the function for that analyzer.
type allowRange struct {
	file       string
	start, end int
	analyzer   string
}

// allowSet is every suppression directive in a program.
type allowSet struct {
	lines  map[allowKey]bool
	ranges []allowRange
}

// collectAllows scans every comment in the program for //lint:allow
// directives. Directives inside a function's doc comment additionally
// suppress across the whole function body. A directive whose text ends
// at the analyzer names — no reason — still suppresses, but is reported
// as an "allowreason" diagnostic so it cannot land silently. (A trailing
// `// want ...` marker does not count as a reason; the golden tests for
// allowreason itself depend on that.)
func collectAllows(prog *Program) (*allowSet, []Diagnostic) {
	allows := &allowSet{lines: make(map[allowKey]bool)}
	var missing []Diagnostic
	directive := func(c *ast.Comment) []string {
		m := allowRe.FindStringSubmatch(c.Text)
		if m == nil {
			return nil
		}
		rest := strings.TrimSpace(c.Text[len(m[0]):])
		if rest == "" || strings.HasPrefix(rest, "//") {
			missing = append(missing, Diagnostic{
				Pos:      prog.Fset.Position(c.Pos()),
				Analyzer: "allowreason",
				Message:  fmt.Sprintf("lint:allow %s has no reason; write //lint:allow %s <why the invariant does not apply here>", m[1], m[1]),
			})
		}
		return strings.Split(m[1], ",")
	}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names := directive(c)
					if names == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, name := range names {
						allows.lines[allowKey{pos.Filename, pos.Line, name}] = true
					}
				}
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				for _, c := range fd.Doc.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					start := prog.Fset.Position(fd.Pos())
					end := prog.Fset.Position(fd.End())
					for _, name := range strings.Split(m[1], ",") {
						allows.ranges = append(allows.ranges, allowRange{
							file: start.Filename, start: start.Line, end: end.Line, analyzer: name,
						})
					}
				}
			}
		}
	}
	return allows, missing
}

// allowed reports whether a directive at d's line, the line above, or an
// enclosing function-scoped directive suppresses it.
func (s *allowSet) allowed(d Diagnostic) bool {
	if s.lines[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
		s.lines[allowKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}] {
		return true
	}
	for _, r := range s.ranges {
		if r.analyzer == d.Analyzer && r.file == d.Pos.Filename && r.start <= d.Pos.Line && d.Pos.Line <= r.end {
			return true
		}
	}
	return false
}

// Run executes the analyzers over the program and returns the surviving
// diagnostics sorted by position. Analyzer errors (not findings) are
// returned as an error.
func (prog *Program) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		report := func(pos token.Pos, msg string) {
			diags = append(diags, Diagnostic{
				Pos:      prog.Fset.Position(pos),
				Analyzer: a.Name,
				Message:  msg,
			})
		}
		for _, pkg := range prog.Pkgs {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, report: report}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		if a.Finish != nil {
			if err := a.Finish(prog, report); err != nil {
				return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
			}
		}
	}
	allows, missingReasons := collectAllows(prog)
	diags = append(diags, missingReasons...)
	kept := diags[:0]
	for _, d := range diags {
		if !allows.allowed(d) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return kept, nil
}

// Analyzers returns a fresh instance of the full repllint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NewNodeterminism(),
		NewLockOrder(),
		NewSendErr(),
		NewObsComplete(),
		NewTSCompare(),
		NewWaldiscipline(),
		NewGuardedBy(),
	}
}

// ---- shared type helpers used by several analyzers ----

// namedType unwraps pointers and aliases down to a *types.Named, or nil.
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// typeFrom reports whether t (possibly behind pointers) is the named type
// typeName declared in a package whose name is pkgName.
func typeFrom(t types.Type, pkgName, typeName string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == typeName
}

// pathMatches reports whether the import path equals one of the suffixes
// or ends in "/"+suffix — so "internal/core" matches both the module's
// "repro/internal/core" and a testdata package named "internal/core".
func pathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (method or package-level function), or nil for indirect calls, builtins
// and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}
