package lint

// dataflow.go is the forward must-analysis framework the flow-sensitive
// analyzers share. Facts are named strings ("a WAL append happened",
// "core.dagt.tsMu is held"); the join at block boundaries is set
// intersection, so a fact holds at a point only if it holds on EVERY
// path from the function entry — exactly the "dominated by" obligation
// waldiscipline checks and the "must hold the mutex" obligation
// guardedby checks. Iteration terminates because the first visit seeds a
// block with a finite set and joins only ever remove facts.

// FactSet is a mutable set of dataflow facts.
type FactSet map[string]bool

// NewFactSet builds a set from the given facts.
func NewFactSet(facts ...string) FactSet {
	s := make(FactSet, len(facts))
	for _, f := range facts {
		s[f] = true
	}
	return s
}

// Clone copies the set (nil clones to an empty set).
func (s FactSet) Clone() FactSet {
	c := make(FactSet, len(s))
	for k, v := range s {
		if v {
			c[k] = true
		}
	}
	return c
}

// Keys returns the facts currently in the set, unordered.
func (s FactSet) Keys() []string {
	var out []string
	for k, v := range s {
		if v {
			out = append(out, k)
		}
	}
	return out
}

// ForwardMust runs a forward must-analysis over g.
//
// entry seeds the facts at the function entry. transfer folds one event
// into the fact set, mutating it in place (add facts the event
// establishes, delete facts it kills). After the fixed point, check is
// invoked once per event in every reachable block with the facts holding
// immediately BEFORE that event executes; events in unreachable blocks
// (dead code after return/branch) are never checked. check may be nil
// when only the fixed point's side effects matter.
func ForwardMust(g *CFG, entry FactSet, transfer func(ev CFGNode, facts FactSet), check func(ev CFGNode, facts FactSet)) {
	in := make([]FactSet, len(g.Blocks))
	seen := make([]bool, len(g.Blocks))
	in[g.Entry.Index] = entry.Clone()
	seen[g.Entry.Index] = true

	worklist := []*CFGBlock{g.Entry}
	queued := make([]bool, len(g.Blocks))
	queued[g.Entry.Index] = true
	for len(worklist) > 0 {
		blk := worklist[0]
		worklist = worklist[1:]
		queued[blk.Index] = false

		facts := in[blk.Index].Clone()
		for _, ev := range blk.Nodes {
			transfer(ev, facts)
		}
		for _, succ := range blk.Succs {
			changed := false
			if !seen[succ.Index] {
				seen[succ.Index] = true
				in[succ.Index] = facts.Clone()
				changed = true
			} else {
				// Must-join: drop everything not established on this path.
				for k := range in[succ.Index] {
					if !facts[k] {
						delete(in[succ.Index], k)
						changed = true
					}
				}
			}
			if changed && !queued[succ.Index] {
				queued[succ.Index] = true
				worklist = append(worklist, succ)
			}
		}
	}

	if check == nil {
		return
	}
	for _, blk := range g.Blocks {
		if !seen[blk.Index] {
			continue
		}
		facts := in[blk.Index].Clone()
		for _, ev := range blk.Nodes {
			check(ev, facts)
			transfer(ev, facts)
		}
	}
}
