package lint

// cfg.go builds the intra-procedural control-flow graph the flow-
// sensitive analyzers (waldiscipline, guardedby) run over. Each basic
// block holds the interesting evaluation events — field selections,
// calls, function literals — in evaluation order; successor edges model
// branches, loops, switch/select dispatch, break/continue/goto, and the
// short-circuit operators (the right operand of && and || lives in its
// own conditionally-executed block). `defer` and `go` call sites are
// recorded at their syntactic position but flagged Deferred, because the
// call itself does not run at that program point; transfer functions
// must skip them (a deferred Unlock keeps the mutex held for the rest of
// the function, a deferred Sync dominates nothing).
//
// Function literal bodies are NOT traversed: a closure runs at an
// unknown time, so it is a separate function to the dataflow framework.
// The literal itself appears as one event so analyzers can find and
// queue it.

import (
	"go/ast"
	"go/token"
)

// CFGNode is one evaluation event inside a basic block.
type CFGNode struct {
	N ast.Node
	// Deferred marks `defer` and `go` call events: registered here,
	// executed elsewhere (at return, or concurrently).
	Deferred bool
}

// CFGBlock is one basic block: events in evaluation order plus edges.
type CFGBlock struct {
	Index int
	Nodes []CFGNode
	Succs []*CFGBlock
	Preds []*CFGBlock
}

// CFG is the control-flow graph of one function body. Entry has no
// predecessors; every return statement (and the fall-off-the-end path)
// edges to Exit.
type CFG struct {
	Entry  *CFGBlock
	Exit   *CFGBlock
	Blocks []*CFGBlock
}

// BuildCFG builds the control-flow graph of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}, labels: make(map[string]*CFGBlock)}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	b.edge(b.cur, b.g.Exit)
	return b.g
}

// loopTarget pairs an optional statement label with its break or
// continue destination; the innermost entry is last.
type loopTarget struct {
	label string
	block *CFGBlock
}

type cfgBuilder struct {
	g   *CFG
	cur *CFGBlock

	breaks    []loopTarget
	continues []loopTarget
	labels    map[string]*CFGBlock // goto/labeled-statement targets
	label     string               // pending label for the next loop/switch
	fall      *CFGBlock            // fallthrough target inside a switch
}

func (b *cfgBuilder) newBlock() *CFGBlock {
	blk := &CFGBlock{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *CFGBlock) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

func (b *cfgBuilder) emit(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, CFGNode{N: n})
}

// labelBlock returns (creating on demand) the block a label names, so
// forward gotos resolve before the LabeledStmt is reached.
func (b *cfgBuilder) labelBlock(name string) *CFGBlock {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// takeLabel consumes the pending statement label (set by LabeledStmt)
// for the loop or switch about to be built.
func (b *cfgBuilder) takeLabel() string {
	l := b.label
	b.label = ""
	return l
}

func findTarget(stack []loopTarget, label string) *CFGBlock {
	if label == "" {
		if len(stack) == 0 {
			return nil
		}
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label {
			return stack[i].block
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil, *ast.EmptyStmt:

	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.label = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.ExprStmt:
		b.expr(s.X)

	case *ast.SendStmt:
		b.expr(s.Chan)
		b.expr(s.Value)

	case *ast.IncDecStmt:
		b.expr(s.X)

	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			b.expr(r)
		}
		for _, l := range s.Lhs {
			b.expr(l)
		}

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						b.expr(v)
					}
				}
			}
		}

	case *ast.DeferStmt:
		b.deferredCall(s.Call)

	case *ast.GoStmt:
		b.deferredCall(s.Call)

	case *ast.ReturnStmt:
		for _, r := range s.Results {
			b.expr(r)
		}
		b.edge(b.cur, b.g.Exit)
		b.cur = b.newBlock() // anything after is unreachable

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, label); t != nil {
				b.edge(b.cur, t)
			}
		case token.CONTINUE:
			if t := findTarget(b.continues, label); t != nil {
				b.edge(b.cur, t)
			}
		case token.GOTO:
			b.edge(b.cur, b.labelBlock(label))
		case token.FALLTHROUGH:
			if b.fall != nil {
				b.edge(b.cur, b.fall)
			}
		}
		b.cur = b.newBlock()

	case *ast.IfStmt:
		b.stmt(s.Init)
		b.expr(s.Cond)
		cond := b.cur
		after := b.newBlock()
		then := b.newBlock()
		b.edge(cond, then)
		b.cur = then
		b.stmt(s.Body)
		b.edge(b.cur, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cond, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(cond, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.expr(s.Cond) // may split on short-circuit operators
		test := b.cur
		body := b.newBlock()
		after := b.newBlock()
		post := b.newBlock()
		b.edge(test, body)
		if s.Cond != nil {
			b.edge(test, after) // `for {}` exits only via break
		}
		b.breaks = append(b.breaks, loopTarget{label, after})
		b.continues = append(b.continues, loopTarget{label, post})
		b.cur = body
		b.stmt(s.Body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.edge(b.cur, post)
		b.cur = post
		b.stmt(s.Post)
		b.edge(b.cur, head)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.expr(s.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.expr(s.Key)
		b.expr(s.Value)
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, body)
		b.edge(b.cur, after)
		b.breaks = append(b.breaks, loopTarget{label, after})
		b.continues = append(b.continues, loopTarget{label, head})
		b.cur = body
		b.stmt(s.Body)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		b.expr(s.Tag)
		b.switchClauses(label, s.Body.List)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		b.stmt(s.Init)
		// The asserted operand evaluates once, whatever shape the guard
		// takes (`x.(type)` or `v := x.(type)`).
		switch a := s.Assign.(type) {
		case *ast.ExprStmt:
			b.expr(a.X)
		case *ast.AssignStmt:
			for _, r := range a.Rhs {
				b.expr(r)
			}
		}
		b.switchClauses(label, s.Body.List)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		after := b.newBlock()
		b.breaks = append(b.breaks, loopTarget{label, after})
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			body := b.newBlock()
			b.edge(head, body)
			b.cur = body
			b.stmt(cc.Comm)
			b.stmtList(cc.Body)
			b.edge(b.cur, after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		// A select with no cases blocks forever: `after` keeps zero
		// predecessors and everything following is unreachable.
		b.cur = after
	}
}

// switchClauses builds the clause bodies of a switch or type switch:
// every body is reachable from the dispatch point, a missing default
// adds a fall-past edge, and `fallthrough` edges to the next body.
func (b *cfgBuilder) switchClauses(label string, list []ast.Stmt) {
	// Case expressions evaluate on the dispatch path (approximated as
	// all-evaluated: clauses past the matching one never run, but a
	// must-analysis only gains facts from them, and case expressions
	// with side effects are vanishingly rare).
	for _, c := range list {
		if cc, ok := c.(*ast.CaseClause); ok {
			for _, e := range cc.List {
				b.expr(e)
			}
		}
	}
	test := b.cur
	after := b.newBlock()
	hasDefault := false
	bodies := make([]*CFGBlock, len(list))
	for i, c := range list {
		bodies[i] = b.newBlock()
		b.edge(test, bodies[i])
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(test, after)
	}
	b.breaks = append(b.breaks, loopTarget{label, after})
	savedFall := b.fall
	for i, c := range list {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		if i+1 < len(bodies) {
			b.fall = bodies[i+1]
		} else {
			b.fall = nil
		}
		b.cur = bodies[i]
		b.stmtList(cc.Body)
		b.edge(b.cur, after)
	}
	b.fall = savedFall
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}

// deferredCall evaluates the operands of a defer/go statement (those run
// immediately, per the spec) and records the call itself as a Deferred
// event.
func (b *cfgBuilder) deferredCall(call *ast.CallExpr) {
	b.expr(call.Fun)
	for _, a := range call.Args {
		b.expr(a)
	}
	b.cur.Nodes = append(b.cur.Nodes, CFGNode{N: call, Deferred: true})
}

// expr appends e's evaluation events to the current block in left-to-
// right order, splitting blocks at && and || so the right operand is
// conditionally executed.
func (b *cfgBuilder) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:

	case *ast.ParenExpr:
		b.expr(e.X)

	case *ast.BinaryExpr:
		if e.Op == token.LAND || e.Op == token.LOR {
			b.expr(e.X)
			after := b.newBlock()
			rhs := b.newBlock()
			b.edge(b.cur, rhs)   // operand evaluated
			b.edge(b.cur, after) // short-circuited past it
			b.cur = rhs
			b.expr(e.Y)
			b.edge(b.cur, after)
			b.cur = after
			return
		}
		b.expr(e.X)
		b.expr(e.Y)

	case *ast.UnaryExpr:
		b.expr(e.X)

	case *ast.StarExpr:
		b.expr(e.X)

	case *ast.SelectorExpr:
		b.expr(e.X)
		b.emit(e)

	case *ast.IndexExpr:
		b.expr(e.X)
		b.expr(e.Index)

	case *ast.IndexListExpr:
		b.expr(e.X)
		for _, i := range e.Indices {
			b.expr(i)
		}

	case *ast.SliceExpr:
		b.expr(e.X)
		b.expr(e.Low)
		b.expr(e.High)
		b.expr(e.Max)

	case *ast.TypeAssertExpr:
		b.expr(e.X)

	case *ast.CallExpr:
		b.expr(e.Fun)
		for _, a := range e.Args {
			b.expr(a)
		}
		b.emit(e)

	case *ast.CompositeLit:
		for _, el := range e.Elts {
			b.expr(el)
		}

	case *ast.KeyValueExpr:
		b.expr(e.Key)
		b.expr(e.Value)

	case *ast.FuncLit:
		b.emit(e) // body is a separate function; deliberately not traversed
	}
	// Identifiers, literals and type expressions produce no events.
}
