package lint

import (
	"go/ast"
	"go/types"
)

// defaultDeterministicPkgs are the packages whose behaviour must be a
// pure function of seeds and message arrivals: the protocol engines, the
// fault injector (its schedules replay byte-for-byte), and the timestamp
// algebra. docs/FAULTS.md states the contract; this analyzer enforces it.
var defaultDeterministicPkgs = []string{
	"internal/core",
	"internal/fault",
	"internal/ts",
}

// wall-clock reads that make a run irreproducible.
var wallClockFuncs = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

// math/rand package-level functions draw from the shared, unseedable (in
// tests) global stream; constructors building explicitly-seeded private
// streams are the sanctioned alternative.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// NewNodeterminism returns the nodeterminism analyzer, which flags
// nondeterminism sources inside the deterministic packages (pkgs,
// defaulting to internal/core, internal/fault and internal/ts):
//
//   - wall-clock reads: time.Now, time.Since, time.Until;
//   - draws from the global math/rand stream (rand.Intn, rand.Float64,
//     ...) — seeded private *rand.Rand streams are fine;
//   - map iteration feeding an ordered sink: inside `for range m` over a
//     map, appending to a slice declared outside the loop, sending on a
//     channel, or calling a function named Send/send. Map order is
//     random per run, so whatever consumes the sink sees a different
//     order every time — in particular, transport sends draw from the
//     seeded jitter RNG in send order, so map-ordered sends break
//     byte-for-byte schedule replay.
//
// Documented wall-clock sites (timeout machinery, metrics timing) carry
// `//lint:allow nodeterminism <reason>`.
func NewNodeterminism(pkgs ...string) *Analyzer {
	if len(pkgs) == 0 {
		pkgs = defaultDeterministicPkgs
	}
	a := &Analyzer{
		Name: "nodeterminism",
		Doc:  "flags wall-clock reads, global math/rand draws, and map-iteration-order dependence in deterministic packages",
	}
	a.Run = func(pass *Pass) error {
		if !pathMatches(pass.Pkg.Path, pkgs) {
			return nil
		}
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			sorted := collectSortedObjs(info, f)
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkNondetCall(pass, info, n)
				case *ast.RangeStmt:
					checkMapRange(pass, info, n, sorted)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// collectSortedObjs finds every variable the file passes to a sort or
// slices ordering function: accumulating map keys into a slice and
// sorting it is the canonical deterministic iteration pattern, so such
// slices are exempt from the map-range append check.
func collectSortedObjs(info *types.Info, f *ast.File) map[types.Object]bool {
	sorted := make(map[types.Object]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					sorted[obj] = true
				}
			}
		}
		return true
	})
	return sorted
}

func checkNondetCall(pass *Pass, info *types.Info, call *ast.CallExpr) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	full := fn.Pkg().Path() + "." + fn.Name()
	if wallClockFuncs[full] {
		pass.Reportf(call.Pos(), "wall-clock read %s in deterministic package %s (use logical time or annotate why real time is required)", full, pass.Pkg.Types.Name())
		return
	}
	if fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2" {
		// Package-level functions only: methods on *rand.Rand have a
		// receiver and are the seeded, reproducible alternative.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil && !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(), "draw from the global math/rand stream (%s); use a seeded *rand.Rand so runs replay", fn.Name())
		}
	}
}

// checkMapRange flags ordered sinks fed from a map-iteration body.
func checkMapRange(pass *Pass, info *types.Info, rng *ast.RangeStmt, sorted map[types.Object]bool) {
	tv, ok := info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration: receiver observes random map order (iterate a sorted copy)")
		case *ast.AssignStmt:
			checkMapRangeAppend(pass, info, rng, n, sorted)
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && (fn.Name() == "Send" || fn.Name() == "send") {
				pass.Reportf(n.Pos(), "%s call inside map iteration: messages leave in random map order, which perturbs seeded transport schedules (iterate a sorted copy)", fn.Name())
			}
		}
		return true
	})
}

// checkMapRangeAppend flags `x = append(x, ...)` where x outlives the
// range statement: the slice accumulates elements in random map order.
func checkMapRangeAppend(pass *Pass, info *types.Info, rng *ast.RangeStmt, as *ast.AssignStmt, sorted map[types.Object]bool) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "append" {
			continue
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		if i >= len(as.Lhs) {
			continue
		}
		lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.Uses[lhs]
		if obj == nil {
			obj = info.Defs[lhs]
		}
		if obj == nil || obj.Pos() == 0 {
			continue
		}
		// Declared inside the range statement → the order never escapes.
		if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
			continue
		}
		// Sorted afterwards → the map order is erased before use.
		if sorted[obj] {
			continue
		}
		pass.Reportf(as.Pos(), "append to %s inside map iteration accumulates random map order (sort the result or iterate a sorted copy)", lhs.Name)
	}
}
