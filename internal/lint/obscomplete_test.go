package lint

import "testing"

func TestObsCompleteGolden(t *testing.T) {
	runGolden(t, NewObsComplete(), "trace", "obs", "watch", "metrics", "engine", "telemetrykinds")
}
