package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// This file is the analysistest equivalent: golden tests load a testdata
// tree with LoadDirs and check the analyzer's diagnostics against
// `// want "regex"` comments placed on the offending lines. Every
// diagnostic must satisfy a want on its exact file:line, and every want
// must be hit — so the testdata encodes positives and negatives in one
// place, and a silently dead check fails its own test.

// wantRe extracts the quoted patterns of a want comment.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// quotedRe matches one Go-quoted string.
var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// collectWants scans every comment of every package in prog.
func collectWants(t *testing.T, prog *Program) []*want {
	t.Helper()
	var wants []*want
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, q := range quotedRe.FindAllString(m[1], -1) {
						pat, err := strconv.Unquote(q)
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %s: %v", pos.Filename, pos.Line, q, err)
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	return wants
}

// runGolden loads the named packages from internal/lint/testdata/src and
// checks one analyzer's diagnostics against their want comments.
func runGolden(t *testing.T, a *Analyzer, pkgs ...string) {
	t.Helper()
	prog, err := LoadDirs("testdata/src", pkgs)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := prog.Run([]*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, prog)
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var missed []string
	for _, w := range wants {
		if !w.hit {
			missed = append(missed, fmt.Sprintf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re))
		}
	}
	if len(missed) > 0 {
		t.Errorf("unmatched want comments:\n%s", strings.Join(missed, "\n"))
	}
}
