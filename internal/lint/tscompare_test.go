package lint

import "testing"

func TestTSCompareGolden(t *testing.T) {
	runGolden(t, NewTSCompare(), "ts", "tsuse")
}
