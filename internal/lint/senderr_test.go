package lint

import "testing"

func TestSendErrGolden(t *testing.T) {
	runGolden(t, NewSendErr(), "comm", "twopc", "telemetry", "wal", "senderr")
}
