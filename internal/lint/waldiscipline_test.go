package lint

import "testing"

func TestWaldisciplineGolden(t *testing.T) {
	runGolden(t, NewWaldiscipline("waldiscipline"), "waldiscipline", "wal")
}
