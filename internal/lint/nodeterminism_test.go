package lint

import "testing"

func TestNodeterminismGolden(t *testing.T) {
	runGolden(t, NewNodeterminism("nodet"), "nodet")
}
