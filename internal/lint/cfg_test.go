package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// The CFG builder is tested through a toy must-analysis over parsed (not
// type-checked) snippets: calls to mark() establish the fact, calls to
// unmark() kill it, and each probeN() call records whether the fact must
// hold at that point. This pins the graph shapes the real analyzers
// depend on — defer, loops, short-circuit, switch dispatch, goto —
// without coupling the tests to any one analyzer's semantics.

// cfgProbe parses src (a single function declaration), builds its CFG,
// and returns for every executed probe call whether the "m" fact held.
// Probes in unreachable code never execute and are absent from the map.
func cfgProbe(t *testing.T, body string) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", "package p\n\nfunc snippet() {\n"+body+"\n}", parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	g := BuildCFG(fd.Body)

	name := func(n ast.Node) string {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return ""
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return ""
		}
		return id.Name
	}
	transfer := func(ev CFGNode, facts FactSet) {
		if ev.Deferred {
			return
		}
		switch n := name(ev.N); {
		case strings.HasPrefix(n, "unmark"):
			delete(facts, "m")
		case strings.HasPrefix(n, "mark"):
			facts["m"] = true
		}
	}
	probes := make(map[string]bool)
	check := func(ev CFGNode, facts FactSet) {
		if ev.Deferred {
			return
		}
		if n := name(ev.N); strings.HasPrefix(n, "probe") {
			probes[n] = facts["m"]
		}
	}
	ForwardMust(g, NewFactSet(), transfer, check)
	return probes
}

// expectProbes asserts each probe's must-fact (or its absence when the
// expected value is omitted from want).
func expectProbes(t *testing.T, body string, want map[string]bool) {
	t.Helper()
	got := cfgProbe(t, body)
	for probe, held := range want {
		v, ok := got[probe]
		if !ok {
			t.Errorf("%s never executed (unreachable?); want fact=%v", probe, held)
			continue
		}
		if v != held {
			t.Errorf("%s: fact held = %v, want %v", probe, v, held)
		}
	}
	for probe := range got {
		if _, ok := want[probe]; !ok {
			t.Errorf("%s executed unexpectedly (expected unreachable)", probe)
		}
	}
}

func TestCFGStraightLine(t *testing.T) {
	expectProbes(t, `
	probe1()
	mark()
	probe2()
	unmark()
	probe3()
`, map[string]bool{"probe1": false, "probe2": true, "probe3": false})
}

func TestCFGDefer(t *testing.T) {
	// A deferred mark runs at return, establishing nothing mid-body; a
	// deferred unmark keeps the fact alive to the end.
	expectProbes(t, `
	defer mark()
	probe1()
	mark()
	defer unmark()
	probe2()
`, map[string]bool{"probe1": false, "probe2": true})
}

func TestCFGGoStmt(t *testing.T) {
	expectProbes(t, `
	go mark()
	probe1()
`, map[string]bool{"probe1": false})
}

func TestCFGBranches(t *testing.T) {
	// Both arms establish: the fact survives the join. One arm: it dies.
	expectProbes(t, `
	if cond() {
		mark()
	} else {
		mark()
	}
	probe1()
	if cond() {
		unmark()
	}
	probe2()
`, map[string]bool{"probe1": true, "probe2": false})
}

func TestCFGEarlyReturn(t *testing.T) {
	expectProbes(t, `
	if cond() {
		probe1()
		return
	}
	mark()
	probe2()
`, map[string]bool{"probe1": false, "probe2": true})
}

func TestCFGLoop(t *testing.T) {
	// A mark inside the loop body does not dominate the loop exit (zero
	// iterations), and an unmark inside kills the fact on the back edge.
	expectProbes(t, `
	for cond() {
		mark()
	}
	probe1()
	mark()
	for cond() {
		probe2()
		unmark()
	}
`, map[string]bool{"probe1": false, "probe2": false})
}

func TestCFGLoopCarries(t *testing.T) {
	// A fact established before the loop survives body and back edge.
	expectProbes(t, `
	mark()
	for i := 0; cond(); i++ {
		probe1()
	}
	probe2()
`, map[string]bool{"probe1": true, "probe2": true})
}

func TestCFGRange(t *testing.T) {
	expectProbes(t, `
	mark()
	for range xs() {
		probe1()
	}
	probe2()
	for range xs() {
		mark2()
	}
	for range xs() {
		unmark()
	}
	probe3()
`, map[string]bool{"probe1": true, "probe2": true, "probe3": false})
}

func TestCFGShortCircuit(t *testing.T) {
	// The right operand of && and || is conditionally executed: marks
	// there do not dominate what follows, and probes there see facts
	// from the left.
	expectProbes(t, `
	mark()
	_ = cond() && use(probe1())
	probe2()
	unmark()
	_ = cond() || markBool()
	probe3()
`, map[string]bool{"probe1": true, "probe2": true, "probe3": false})
}

func TestCFGShortCircuitMarkConditional(t *testing.T) {
	expectProbes(t, `
	_ = cond() && markBool()
	probe1()
`, map[string]bool{"probe1": false})
}

func TestCFGSwitch(t *testing.T) {
	// All arms plus default establish the fact; without a default the
	// fall-past path skips every arm.
	expectProbes(t, `
	switch k() {
	case 1:
		mark()
	default:
		mark()
	}
	probe1()
	unmark()
	switch k() {
	case 1:
		mark()
	case 2:
		mark()
	}
	probe2()
`, map[string]bool{"probe1": true, "probe2": false})
}

func TestCFGSwitchFallthrough(t *testing.T) {
	expectProbes(t, `
	switch k() {
	case 1:
		mark()
		fallthrough
	case 2:
		probe1()
	default:
		probe2()
	}
`, map[string]bool{"probe1": false, "probe2": false})
}

func TestCFGSelect(t *testing.T) {
	// Every comm arm establishes the fact, and select blocks until one
	// arm runs, so the fact holds after.
	expectProbes(t, `
	select {
	case <-ch():
		mark()
	case <-ch2():
		mark()
	}
	probe1()
`, map[string]bool{"probe1": true})
}

func TestCFGBreakContinue(t *testing.T) {
	expectProbes(t, `
	for cond() {
		if cond2() {
			break
		}
		mark()
		if cond3() {
			continue
		}
		probe1()
	}
	probe2()
`, map[string]bool{"probe1": true, "probe2": false})
}

func TestCFGGoto(t *testing.T) {
	// The goto edge joins retry with the fall-through path; the unmark
	// before the jump kills the fact at the label.
	expectProbes(t, `
	mark()
retry:
	probe1()
	if cond() {
		unmark()
		goto retry
	}
	probe2()
`, map[string]bool{"probe1": false, "probe2": false})
}

func TestCFGUnreachable(t *testing.T) {
	expectProbes(t, `
	mark()
	return
	probe1()
`, map[string]bool{})
}

func TestCFGFuncLitNotTraversed(t *testing.T) {
	// Events inside a closure body belong to the closure, not to the
	// enclosing flow: the mark inside the literal establishes nothing
	// here, and the probe inside it is never executed by this CFG.
	expectProbes(t, `
	f := func() {
		mark()
		probe1()
	}
	probe2()
	_ = f
`, map[string]bool{"probe2": false})
}
