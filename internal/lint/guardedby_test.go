package lint

import "testing"

func TestGuardedByGolden(t *testing.T) {
	runGolden(t, NewGuardedBy("guardedby"), "guardedby")
}

func TestAllowReasonGolden(t *testing.T) {
	// Any analyzer will do: the mandatory-reason diagnostic is produced
	// by Program.Run itself, independent of the suite it runs.
	runGolden(t, NewNodeterminism("allowreason"), "allowreason")
}
