package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// defaultWaldisciplinePkgs are the WAL-backed commit paths: the engines,
// which own every log-then-mutate and sync-then-externalize obligation
// (docs/DURABILITY.md).
var defaultWaldisciplinePkgs = []string{
	"internal/core",
}

// durableRe matches the sink marker in a function's doc comment:
//
//	// repl:durable        — calls must be dominated by a WAL Append
//	// repl:durable sync   — calls must be dominated by a WAL Sync
//
// The marker goes on the DECLARATION of a durable-state mutation sink
// (e.g. (*txn.Txn).Commit) or an externalization sink (e.g.
// (*comm.RPC).Reply); the analyzer then checks every call site inside
// the configured packages.
var durableRe = regexp.MustCompile(`repl:durable(\s+sync)?\b`)

// Facts tracked by the forward must-analysis.
const (
	factAppended = "wal-append"
	factSynced   = "wal-sync"
)

// durSummary says whether a function (transitively, through calls into
// analyzed source and through the bodies of its function literals)
// reaches a (*wal.SiteLog).Append or .Sync. Function literals count as
// part of their enclosing function because the armDurable idiom
// registers a closure whose append runs inside the dominated Commit.
type durSummary struct {
	appends bool
	syncs   bool
	calls   []string
}

// NewWaldiscipline returns the waldiscipline analyzer. It enforces the
// WAL's write-ahead contract on the configured packages (default:
// internal/core): every call to a sink whose declaration is marked
// `// repl:durable` must be dominated — on every control-flow path from
// the function entry, error and early-return paths included — by a call
// that reaches (*wal.SiteLog).Append, and every call to a sink marked
// `// repl:durable sync` must likewise be dominated by a call reaching
// (*wal.SiteLog).Sync. Reachability is computed as a fixed point over
// call summaries, so helper chains (armDurable → walAppendSync →
// Append+Sync) establish the fact at the helper call site. Deferred and
// `go` calls establish nothing: they do not run at their syntactic
// position.
//
// Sites where the durable record is written in a different function
// (e.g. a reply whose Prepared record was logged by the caller) carry
// `//lint:allow waldiscipline <reason>`.
func NewWaldiscipline(pkgs ...string) *Analyzer {
	if len(pkgs) == 0 {
		pkgs = defaultWaldisciplinePkgs
	}
	// sink full name -> needs Sync (false: needs Append).
	sinks := make(map[string]bool)
	summaries := make(map[string]*durSummary)
	type checkFn struct {
		pkg  *Package
		decl *ast.FuncDecl
	}
	var checks []checkFn

	a := &Analyzer{
		Name: "waldiscipline",
		Doc:  "checks that repl:durable sinks are dominated by a WAL Append, and repl:durable sync sinks by a Sync, on every path",
	}
	a.Run = func(pass *Pass) error {
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				if m := durableMarker(fd); m != markerNone {
					sinks[obj.FullName()] = m == markerSync
				}
				if fd.Body == nil {
					continue
				}
				summaries[obj.FullName()] = summarizeDurability(info, fd.Body)
				if pathMatches(pass.Pkg.Path, pkgs) {
					checks = append(checks, checkFn{pass.Pkg, fd})
				}
			}
		}
		return nil
	}
	a.Finish = func(prog *Program, report func(pos token.Pos, msg string)) error {
		// Close the summaries over the call graph.
		for changed := true; changed; {
			changed = false
			for _, s := range summaries {
				for _, callee := range s.calls {
					c, ok := summaries[callee]
					if !ok {
						continue
					}
					if c.appends && !s.appends {
						s.appends = true
						changed = true
					}
					if c.syncs && !s.syncs {
						s.syncs = true
						changed = true
					}
				}
			}
		}
		for _, cf := range checks {
			info := cf.pkg.Info
			g := BuildCFG(cf.decl.Body)
			transfer := func(ev CFGNode, facts FactSet) {
				if ev.Deferred {
					return
				}
				call, ok := ev.N.(*ast.CallExpr)
				if !ok {
					return
				}
				fn := calleeFunc(info, call)
				if fn == nil {
					return
				}
				if isSiteLogMethod(fn, "Append") {
					facts[factAppended] = true
					return
				}
				if isSiteLogMethod(fn, "Sync") {
					facts[factSynced] = true
					return
				}
				if s, ok := summaries[fn.FullName()]; ok {
					if s.appends {
						facts[factAppended] = true
					}
					if s.syncs {
						facts[factSynced] = true
					}
				}
			}
			check := func(ev CFGNode, facts FactSet) {
				if ev.Deferred {
					return
				}
				call, ok := ev.N.(*ast.CallExpr)
				if !ok {
					return
				}
				fn := calleeFunc(info, call)
				if fn == nil {
					return
				}
				needSync, isSink := sinks[fn.FullName()]
				if !isSink {
					return
				}
				if needSync && !facts[factSynced] {
					report(call.Pos(), fmt.Sprintf("call to %s is not dominated by a WAL Sync on every path (declaration is marked // repl:durable sync: the durable record must be fsynced before the transition is externalized)", fn.Name()))
				} else if !needSync && !facts[factAppended] {
					report(call.Pos(), fmt.Sprintf("call to %s is not dominated by a WAL Append on every path (declaration is marked // repl:durable: log the redo record before mutating durable state)", fn.Name()))
				}
			}
			ForwardMust(g, NewFactSet(), transfer, check)
		}
		return nil
	}
	return a
}

type durMarker int

const (
	markerNone durMarker = iota
	markerAppend
	markerSync
)

// durableMarker reads the repl:durable marker off a declaration's doc
// comment.
func durableMarker(fd *ast.FuncDecl) durMarker {
	if fd.Doc == nil {
		return markerNone
	}
	for _, c := range fd.Doc.List {
		if m := durableRe.FindStringSubmatch(c.Text); m != nil {
			if m[1] != "" {
				return markerSync
			}
			return markerAppend
		}
	}
	return markerNone
}

// isSiteLogMethod reports whether fn is the named method on wal.SiteLog
// (matching by package name so the testdata miniature counts too).
func isSiteLogMethod(fn *types.Func, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return typeFrom(sig.Recv().Type(), "wal", "SiteLog")
}

// summarizeDurability collects one function body's direct WAL calls and
// outgoing calls, descending into function literal bodies.
func summarizeDurability(info *types.Info, body *ast.BlockStmt) *durSummary {
	s := &durSummary{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		switch {
		case isSiteLogMethod(fn, "Append"):
			s.appends = true
		case isSiteLogMethod(fn, "Sync"):
			s.syncs = true
		default:
			s.calls = append(s.calls, fn.FullName())
		}
		return true
	})
	return s
}
