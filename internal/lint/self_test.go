package lint

import "testing"

// TestRepoIsClean runs the full analyzer suite over the repository's own
// packages, so a freshly introduced violation fails `go test` even before
// `make lint` runs. Legitimate exceptions belong at the offending line as
// `//lint:allow <analyzer> <reason>`, not here.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide load and type-check is not short")
	}
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := prog.Run(Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
