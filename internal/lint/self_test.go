package lint

import "testing"

// TestRepoIsClean runs the full analyzer suite over the repository's own
// packages, so a freshly introduced violation fails `go test` even before
// `make lint` runs. Legitimate exceptions belong at the offending line as
// `//lint:allow <analyzer> <reason>`, not here. The suite includes the
// flow-sensitive analyzers (waldiscipline, guardedby), so the repository's
// own WAL-domination and lock-discipline annotations are re-proved here.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide load and type-check is not short")
	}
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := prog.Run(Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestDefaultSuiteHasFlowAnalyzers pins the two flow-sensitive analyzers
// into the default suite: dropping either would silently stop enforcing
// the WAL-domination and guarded-field invariants everywhere repllint and
// TestRepoIsClean run.
func TestDefaultSuiteHasFlowAnalyzers(t *testing.T) {
	have := make(map[string]bool)
	for _, a := range Analyzers() {
		have[a.Name] = true
	}
	for _, want := range []string{"waldiscipline", "guardedby"} {
		if !have[want] {
			t.Errorf("default suite is missing analyzer %q", want)
		}
	}
}

// TestHarnessTestsAreDeterministic loads the chaos and benchmark harness
// packages with their in-package test files included and holds them to
// the nodeterminism discipline: the harness drives seeded, replayable
// schedules, so stray wall-clock reads or global rand draws in test code
// are as damaging as in the engines. Legitimate timing (poll deadlines,
// provenance stamps) carries reasoned //lint:allow directives.
func TestHarnessTestsAreDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-package load and type-check is not short")
	}
	prog, err := LoadTests("../..", "./internal/harness/...", "./internal/bench/...", "./internal/cluster/...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := prog.Run([]*Analyzer{
		NewNodeterminism("internal/harness", "internal/bench", "internal/cluster"),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
