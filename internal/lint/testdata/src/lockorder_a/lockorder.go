// Package lockorder_a exercises the lockorder analyzer: a direct
// two-mutex ordering cycle, an interprocedural cycle through a callee,
// a leaked critical section, and the clean patterns that must stay quiet.
package lockorder_a

import "sync"

func work() {}

type store struct {
	a sync.Mutex
	b sync.Mutex
	c sync.RWMutex
}

func (s *store) abOrder() {
	s.a.Lock()
	defer s.a.Unlock()
	s.b.Lock()
	defer s.b.Unlock()
	work()
}

func (s *store) baOrder() {
	s.b.Lock()
	s.a.Lock() // want "lock-order cycle"
	work()
	s.a.Unlock()
	s.b.Unlock()
}

func (s *store) leak() {
	s.a.Lock() // want "locked but never unlocked"
	work()
}

func (s *store) handoff() {
	//lint:allow lockorder returns holding the lock; the caller releases it
	s.c.Lock()
	work()
}

func (s *store) reader() {
	s.c.RLock()
	defer s.c.RUnlock()
	work()
}

type pair struct {
	x sync.Mutex
	y sync.Mutex
}

func (p *pair) lockY() {
	p.y.Lock()
	defer p.y.Unlock()
	work()
}

func (p *pair) xThenCallY() {
	p.x.Lock()
	defer p.x.Unlock()
	p.lockY() // acquires y while holding x
}

func (p *pair) yThenX() {
	p.y.Lock()
	defer p.y.Unlock()
	p.x.Lock() // want "lock-order cycle"
	work()
	p.x.Unlock()
}

type clean struct {
	mu sync.Mutex
}

func (c *clean) closureUnlock() {
	c.mu.Lock()
	defer func() {
		c.mu.Unlock()
	}()
	work()
}
