// Package trace is a miniature of the repository's event taxonomy for
// the obscomplete analyzer's cross-referencing.
package trace

// Kind identifies one lifecycle event.
type Kind uint8

const (
	TxnBegin        Kind = iota // recorded by engine
	TxnCommit                   // recorded by engine
	ReadCertificate             // recorded by engine (freshness observatory)
	Orphaned                    // want "trace event Orphaned is declared but never recorded"
)

//lint:allow obscomplete reserved for the next protocol revision
const Reserved Kind = 99
