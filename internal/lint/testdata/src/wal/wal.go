// Package wal is a miniature of the repository's write-ahead log, just
// enough surface for the senderr analyzer's type matching.
package wal

// Record is one redo-log entry.
type Record struct {
	Kind uint8
}

// SiteLog is the per-site log; Append and Sync are the durability points
// senderr watches.
type SiteLog struct{}

func (l *SiteLog) Append(rec Record) error { return nil }
func (l *SiteLog) Sync() error             { return nil }
