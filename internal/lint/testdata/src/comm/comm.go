// Package comm is a miniature of the repository's transport layer, just
// enough surface for the senderr analyzer's type matching.
package comm

type Message struct {
	From, To int
	Payload  any
}

type Transport struct{}

func (t *Transport) Send(m Message) error { return nil }

type RPC struct{}

func (r *RPC) Call(to int, m Message) (any, error)      { return nil, nil }
func (r *RPC) CallRetry(to int, m Message) (any, error) { return nil, nil }
