// Package twopc is a miniature of the repository's 2PC layer for the
// senderr analyzer's type matching.
package twopc

func Run(n int) (bool, error) { return true, nil }
