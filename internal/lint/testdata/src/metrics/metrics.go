// Package metrics is a miniature of the repository's latency-phase
// registry for the obscomplete analyzer's cross-referencing.
package metrics

// Phase identifies one latency-attribution segment.
type Phase uint8

const (
	PhaseLockWait Phase = iota // recorded by engine
	PhaseApply                 // recorded by engine
	PhaseOrphan                // want "latency phase PhaseOrphan is registered but never recorded by any engine"

	numPhases // unexported sentinel: exempt
)

//lint:allow obscomplete reserved for the next protocol revision
const PhaseReserved Phase = 99
