// Package guardedby exercises the guarded-by lock analyzer: fields
// annotated repl:guardedby(mu) may only be accessed with the named
// sibling mutex held on every path.
package guardedby

import "sync"

type counter struct {
	mu sync.Mutex
	// repl:guardedby(mu)
	n int

	wmu sync.RWMutex
	// repl:guardedby(wmu)
	vals map[string]int

	// repl:guardedby(missing)
	orphan int // want "names no sibling"
}

// inc is the straight-line good case.
func (c *counter) inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// get: a deferred Unlock keeps the mutex held to the end.
func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// read: an RLock satisfies the guard for readers.
func (c *counter) read(k string) int {
	c.wmu.RLock()
	defer c.wmu.RUnlock()
	return c.vals[k]
}

// loopHeld: the lock survives the loop back edge.
func (c *counter) loopHeld(n int) {
	c.mu.Lock()
	for i := 0; i < n; i++ {
		c.n++
	}
	c.mu.Unlock()
}

// addLocked and flushLocked are caller-holds helpers two levels deep:
// every static call site holds mu, so their entry set includes it.
func (c *counter) addLocked(d int) {
	c.n += d
}

func (c *counter) flushLocked() {
	c.addLocked(0)
}

func (c *counter) addBoth() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(1)
	c.flushLocked()
}

// Reset has no static caller, so it is an entry point with nothing held.
func (c *counter) Reset() {
	c.n = 0 // want "accessed without holding"
}

// badEarly releases before the read.
func (c *counter) badEarly() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want "accessed without holding"
}

// badBranch only locks on one path.
func (c *counter) badBranch(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want "accessed without holding"
	if b {
		c.mu.Unlock()
	}
}

// badLoop unlocks inside the loop, so the second iteration's access is
// unprotected.
func (c *counter) badLoop(n int) {
	c.mu.Lock()
	for i := 0; i < n; i++ {
		c.n++ // want "accessed without holding"
		c.mu.Unlock()
	}
}

// spawn: a goroutine body is its own entry point — the first closure
// races, the second locks properly.
func (c *counter) spawn() {
	go func() {
		c.n++ // want "accessed without holding"
	}()
	go func() {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
	}()
}

// newCounter is the sanctioned false positive: it touches guarded fields
// before the value is published, which no flow analysis over one
// function can see. The function-scoped directive covers the body.
//
//lint:allow guardedby construction precedes publication; no other goroutine holds a reference yet
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	c.vals = make(map[string]int)
	return c
}
