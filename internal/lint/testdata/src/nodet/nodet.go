// Package nodet exercises the nodeterminism analyzer: wall-clock reads,
// global math/rand draws, and map-iteration order escaping into ordered
// sinks, plus the sanctioned alternatives for each.
package nodet

import (
	"math/rand"
	"sort"
	"time"
)

func work() {}

func wallClock() time.Duration {
	start := time.Now() // want "wall-clock read time.Now"
	work()
	return time.Since(start) // want "wall-clock read time.Since"
}

func allowedClock() time.Time {
	//lint:allow nodeterminism timeout machinery needs real time
	return time.Now()
}

func globalRand() int {
	return rand.Intn(10) // want "global math/rand stream"
}

func globalFloat() float64 {
	return rand.Float64() // want "global math/rand stream"
}

func seededRand() int {
	r := rand.New(rand.NewSource(42)) // constructors are the sanctioned path
	return r.Intn(10)
}

func mapOrderEscapes(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // want "append to out inside map iteration"
	}
	return out
}

func mapOrderSorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k) // erased by the sort below
	}
	sort.Ints(out)
	return out
}

func mapOrderLocal(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...) // tmp dies with the iteration
		n += len(tmp)
	}
	return n
}

func chanSend(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want "channel send inside map iteration"
	}
}

func send(int) {}

func sendCalls(m map[int]int) {
	for k := range m {
		send(k) // want "send call inside map iteration"
	}
}

func sliceRangeIsFine(s []int, ch chan int) {
	for _, v := range s {
		ch <- v // slices iterate deterministically
	}
}
