// Package senderr exercises the senderr analyzer: every way a transport,
// RPC, or 2PC error can silently vanish, and the handled or annotated
// forms that must stay quiet.
package senderr

import (
	"comm"
	"telemetry"
	"twopc"
	"wal"
)

func drops(t *comm.Transport, m comm.Message) {
	t.Send(m)       // want "error from Transport.Send discarded"
	_ = t.Send(m)   // want "error from Transport.Send assigned to _"
	go t.Send(m)    // want "discarded by go statement"
	defer t.Send(m) // want "discarded by defer"
}

func dropsRPC(r *comm.RPC, m comm.Message) any {
	resp, _ := r.Call(1, m) // want "error from RPC.Call assigned to _"
	return resp
}

func dropsRetry(r *comm.RPC, m comm.Message) any {
	resp, _ := r.CallRetry(1, m) // want "error from RPC.CallRetry assigned to _"
	return resp
}

func dropsRun() bool {
	ok, _ := twopc.Run(3) // want "error from twopc.Run assigned to _"
	return ok
}

func checked(t *comm.Transport, m comm.Message) error {
	if err := t.Send(m); err != nil {
		return err
	}
	return nil
}

func checkedRPC(r *comm.RPC, m comm.Message) (any, error) {
	return r.Call(1, m)
}

func allowedDrop(t *comm.Transport, m comm.Message) {
	//lint:allow senderr retransmission covers the loss
	_ = t.Send(m)
}

func dropsFrame(s *telemetry.Sink, f telemetry.Frame) {
	s.SendFrame(f)     // want "error from Sink.SendFrame discarded"
	_ = s.SendFrame(f) // want "error from Sink.SendFrame assigned to _"
}

func checkedFrame(s *telemetry.Sink, f telemetry.Frame) error {
	return s.SendFrame(f)
}

func allowedFrameDrop(s *telemetry.Sink, f telemetry.Frame) {
	//lint:allow senderr best-effort final flush on shutdown
	_ = s.SendFrame(f)
}

func dropsWAL(l *wal.SiteLog, rec wal.Record) {
	l.Append(rec)     // want "error from SiteLog.Append discarded"
	_ = l.Append(rec) // want "error from SiteLog.Append assigned to _"
	l.Sync()          // want "error from SiteLog.Sync discarded"
	go l.Sync()       // want "discarded by go statement"
	defer l.Sync()    // want "discarded by defer"
}

func checkedWAL(l *wal.SiteLog, rec wal.Record) error {
	if err := l.Append(rec); err != nil {
		return err
	}
	return l.Sync()
}

func allowedWALDrop(l *wal.SiteLog, rec wal.Record) {
	//lint:allow senderr advisory record; losing it only causes a duplicate re-forward
	_ = l.Append(rec)
}
