// Package tsuse exercises the tscompare analyzer from outside the
// algebra: ad-hoc orderings that must be flagged and the scalar or
// Compare-based forms that must stay quiet.
package tsuse

import "ts"

func badTupleOrder(a, b ts.Tuple) bool {
	return a.LTS < b.LTS // want "ordering a timestamp tuple field"
}

func badTupleEq(a, b ts.Tuple) bool {
	return a == b // want "direct == on timestamp tuples"
}

func badLastOrder(t, u ts.Timestamp) bool {
	return t.Tuples[len(t.Tuples)-1].LTS > u.Tuples[len(u.Tuples)-1].LTS // want "ordering a timestamp tuple field"
}

func goodCompare(t, u ts.Timestamp) bool {
	return ts.Less(t, u)
}

func goodSiteEquality(a ts.Tuple, site int) bool {
	return a.Site == site // equality against a scalar is not an ordering
}

func allowedScalar(a, b ts.Tuple) bool {
	//lint:allow tscompare same-site LTS comparison is scalar by construction
	return a.LTS < b.LTS
}
