// Package telemetry is a miniature of the repository's telemetry plane,
// just enough surface for the senderr analyzer's type matching. It keeps
// every frame kind in use so it stays quiet under obscomplete; the
// frame-kind negatives live in the telemetrykinds fixture.
package telemetry

// FrameKind identifies one wire frame type.
type FrameKind uint8

const (
	FrameHello FrameKind = iota + 1
	FrameMetrics
)

// Frame is one telemetry wire frame.
type Frame struct {
	Kind FrameKind
	Seq  uint64
}

// Sink consumes frames; its SendFrame signature is what senderr watches.
type Sink struct{}

func (s *Sink) SendFrame(f Frame) error { return nil }

// Emit exercises both kinds and checks its own errors.
func Emit(s *Sink) error {
	if err := s.SendFrame(Frame{Kind: FrameHello}); err != nil {
		return err
	}
	return s.SendFrame(Frame{Kind: FrameMetrics})
}
