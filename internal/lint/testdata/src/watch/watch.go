// Package watch is a miniature of the repository's watchdog
// queue-liveness handles for the obscomplete analyzer's type matching.
package watch

type Progress struct{}

func (p *Progress) Push()        {}
func (p *Progress) Pop()         {}
func (p *Progress) Depth() int64 { return 0 }
