// Package engine exercises the obscomplete analyzer from the consumer
// side: handles that are updated, one that never is, a gauge that only
// rises, and the trace kinds it records.
package engine

import (
	"metrics"
	"obs"
	"trace"
	"watch"
)

type siteObs struct {
	committed *obs.Counter
	orphans   *obs.Counter // want "obs handle .*orphans is registered but never updated"
	depth     *obs.Gauge   // want "gauge .*depth only ever increments"
	inflight  *obs.Gauge
	// Handle banks: arrays/slices of handles indexed by a label enum.
	// Indexed updates count; a bank nobody indexes into is dead.
	reasons  [3]*obs.Counter
	perSite  []*obs.Histogram
	deadBank [3]*obs.Counter // want "obs handle .*deadBank is registered but never updated"
	latency   *obs.Histogram
	// Freshness observatory handles: the read-staleness certificate
	// counters and behind-histogram (repl_read_staleness_*) and the
	// commit/apply mirrors (repl_fresh_*); one left unwired to prove the
	// analyzer still sees through the bank.
	readsFresh   *obs.Counter
	readsStale   *obs.Counter
	staleBehind  *obs.Histogram
	freshCommits *obs.Counter
	freshOrphan  *obs.Counter // want "obs handle .*freshOrphan is registered but never updated"
	//lint:allow obscomplete wired up by the next engine
	reserved *obs.Counter
	fifo     *watch.Progress
	leaky    *watch.Progress // want "queue handle .*leaky is pushed but never popped"
	phantom  *watch.Progress // want "queue handle .*phantom is popped but never pushed"
	ghost    *watch.Progress // want "queue handle .*ghost is registered but never pushed or popped"
	//lint:allow obscomplete drained by a sibling engine in a later PR
	parked *watch.Progress
}

type engine struct {
	o      siteObs
	out    []trace.Kind
	phases []metrics.Phase
}

func (e *engine) run() {
	e.out = append(e.out, trace.TxnBegin, trace.TxnCommit, trace.ReadCertificate)
	e.phases = append(e.phases, metrics.PhaseLockWait, metrics.PhaseApply)
	e.o.committed.Inc()
	e.o.readsFresh.Inc()
	e.o.readsStale.Inc()
	e.o.staleBehind.Observe(3)
	e.o.freshCommits.Add(2)
	e.o.reasons[1].Inc()
	e.o.perSite[0].Observe(2)
	e.o.depth.Inc()
	e.o.inflight.Inc()
	e.o.inflight.Dec()
	e.o.latency.Observe(1)
	e.o.fifo.Push()
	e.o.fifo.Pop()
	e.o.leaky.Push()
	e.o.phantom.Pop()
	_ = e.o.fifo.Depth()
}
