// Package ts is a miniature of the repository's timestamp algebra. The
// tscompare analyzer exempts the algebra itself: these comparisons are
// the definition of the order, not a bypass of it.
package ts

// Tuple is one (site, LTS) component.
type Tuple struct {
	Site int
	LTS  uint64
}

// Timestamp is a tuple vector plus epoch, ordered by reverse site order.
type Timestamp struct {
	Tuples []Tuple
	Epoch  uint64
}

// Compare orders timestamps by reverse site order.
func Compare(a, b Timestamp) int {
	for i := len(a.Tuples) - 1; i >= 0; i-- {
		if a.Tuples[i].LTS != b.Tuples[i].LTS {
			if a.Tuples[i].LTS < b.Tuples[i].LTS {
				return -1
			}
			return 1
		}
	}
	return 0
}

func Less(a, b Timestamp) bool  { return Compare(a, b) < 0 }
func Equal(a, b Timestamp) bool { return Compare(a, b) == 0 }
