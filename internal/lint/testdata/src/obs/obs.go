// Package obs is a miniature of the repository's live-metric handles for
// the obscomplete analyzer's type matching.
package obs

type Counter struct{}

func (c *Counter) Inc()          {}
func (c *Counter) Add(n float64) {}

type Gauge struct{}

func (g *Gauge) Inc()          {}
func (g *Gauge) Dec()          {}
func (g *Gauge) Set(v float64) {}

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}
