// Package telemetry (imported as telemetrykinds) is a second miniature
// of the telemetry plane, exercising the obscomplete analyzer's
// frame-kind cross-referencing: kinds that are produced or handled
// somewhere stay quiet, a declared-but-dead wire-format entry is
// flagged, the unexported sentinel is exempt, and the allow directive
// silences a deliberate reservation.
package telemetry

// FrameKind identifies one wire frame type.
type FrameKind uint8

const (
	FrameHello  FrameKind = iota + 1 // sent by emit
	FrameSpans                       // handled by handle
	FrameFresh                       // sent by emitFresh (freshness observatory)
	FrameOrphan                      // want "telemetry frame kind FrameOrphan is declared but never sent or handled"

	frameKindEnd // unexported sentinel: exempt
)

//lint:allow obscomplete reserved for the next wire revision
const FrameReserved FrameKind = 99

// Frame is one telemetry wire frame.
type Frame struct{ Kind FrameKind }

func emit() Frame { return Frame{Kind: FrameHello} }

func emitFresh() Frame { return Frame{Kind: FrameFresh} }

func handle(f Frame) bool { return f.Kind == FrameSpans }

func valid(k FrameKind) bool { return k > 0 && k < frameKindEnd }
