// Package waldiscipline exercises the WAL durability-order analyzer:
// sinks marked repl:durable must be append-dominated, sinks marked
// repl:durable sync must be sync-dominated, on every path.
package waldiscipline

import "wal"

type txn struct {
	log *wal.SiteLog
}

// Commit installs the write set into durable state.
//
// repl:durable
func (t *txn) Commit() {}

// Reply externalizes an outcome to a peer.
//
// repl:durable sync
func (t *txn) Reply() {}

// appendSync is the walAppendSync idiom: append one record and group-
// commit it.
func (t *txn) appendSync() error {
	if err := t.log.Append(wal.Record{}); err != nil {
		return err
	}
	return t.log.Sync()
}

// arm registers the durable hook as a closure; the closure body counts
// as part of arm, so calling arm establishes both facts.
func (t *txn) arm() func() error {
	return func() error { return t.appendSync() }
}

// good: the helper chain dominates both sinks on every path, including
// the early error return.
func good(t *txn) {
	if err := t.appendSync(); err != nil {
		return
	}
	t.Commit()
	t.Reply()
}

// goodSwitch: every dispatch arm (default included) appends before the
// shared commit.
func goodSwitch(t *txn, k int) {
	switch k {
	case 0:
		_ = t.appendSync()
	default:
		_ = t.log.Append(wal.Record{})
	}
	t.Commit()
}

// bad: the arm call is conditional, so one path reaches Commit with no
// redo record logged.
func bad(t *txn, cond bool) {
	if cond {
		_ = t.arm()
	}
	t.Commit() // want "not dominated by a WAL Append"
}

// badSync: appended but never fsynced before externalizing.
func badSync(t *txn) {
	_ = t.log.Append(wal.Record{})
	t.Reply() // want "not dominated by a WAL Sync"
}

// badDeferred: a deferred Sync runs at return — it dominates nothing.
func badDeferred(t *txn) {
	defer t.log.Sync()
	t.Reply() // want "not dominated by a WAL Sync"
}

// badLoop: zero iterations is a path that skips the append.
func badLoop(t *txn, n int) {
	for i := 0; i < n; i++ {
		_ = t.log.Append(wal.Record{})
	}
	t.Commit() // want "not dominated by a WAL Append"
}

// badShortCircuit: the right operand of && only runs when the left is
// true, so the append is conditional.
func badShortCircuit(t *txn, ok bool) {
	_ = ok && t.appendSync() == nil
	t.Commit() // want "not dominated by a WAL Append"
}

// allowedCrossFunction is the sanctioned false positive: the durable
// record was written by the function that dispatched this work, which
// the intra-procedural domination check cannot see.
func allowedCrossFunction(t *txn) {
	//lint:allow waldiscipline the caller logged and synced the Prepared record before dispatch
	t.Reply()
}
