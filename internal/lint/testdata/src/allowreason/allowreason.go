// Package allowreason exercises the mandatory-reason rule: a bare
// //lint:allow still suppresses, but is itself flagged until a reason is
// written after the analyzer name.
package allowreason

import "time"

func deadlineBare() time.Time {
	//lint:allow nodeterminism // want "has no reason"
	return time.Now()
}

func deadlineExplained() time.Time {
	//lint:allow nodeterminism timeout machinery needs real time
	return time.Now()
}
