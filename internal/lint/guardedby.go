package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// defaultGuardedbyPkgs are the packages whose shared mutable state is
// annotated: the engines, the redo log, the 2PC layer, the cluster
// membrane, the telemetry plane and the watchdog.
var defaultGuardedbyPkgs = []string{
	"internal/core",
	"internal/wal",
	"internal/twopc",
	"internal/cluster",
	"internal/telemetry",
	"internal/watch",
}

// guardedbyRe matches the field annotation:
//
//	// repl:guardedby(mu)
//
// on a struct field's doc or trailing comment, naming the sibling mutex
// field that must be held (Lock or RLock) across every access.
var guardedbyRe = regexp.MustCompile(`repl:guardedby\(([A-Za-z_][A-Za-z0-9_]*)\)`)

// gbGuard is one annotated field: the canonical key of the mutex that
// guards it plus the annotation's spelling for messages.
type gbGuard struct {
	mutexKey  string
	guardName string
}

// gbFunc is one analyzed function body: a declared function or the body
// of a function literal (which runs at an unknown time, so it is its own
// entry point with nothing held).
type gbFunc struct {
	name  string
	pkg   *Package
	g     *CFG
	isLit bool
}

// NewGuardedBy returns the guardedby analyzer. Struct fields annotated
// `// repl:guardedby(mu)` must only be accessed while the named sibling
// mutex is held. The held set is tracked flow-sensitively through the
// CFG (Lock/RLock adds, Unlock/RUnlock removes, `defer mu.Unlock()`
// keeps the mutex held for the rest of the function), and a fact
// survives a join only if it holds on every incoming path. Mutexes are
// canonicalized instance-insensitively as pkg.Type.field, exactly like
// lockorder.
//
// Helpers that expect the caller to hold the lock (the *Locked naming
// convention) need no annotation: the held set at entry is the greatest
// fixed point over the static call graph — the intersection of what is
// held at every static call site, to any depth of helper nesting.
// Functions with no static caller (interface methods, exported API,
// goroutine and defer bodies) are entry points and start with nothing
// held. Single-threaded exceptions — constructors and recovery code
// that touch guarded fields before the value is published — carry a
// function-scoped `//lint:allow guardedby <reason>` in their doc
// comment.
func NewGuardedBy(pkgs ...string) *Analyzer {
	if len(pkgs) == 0 {
		pkgs = defaultGuardedbyPkgs
	}
	guards := make(map[string]gbGuard) // field key pkg.Type.field -> guard
	var funcs []*gbFunc

	a := &Analyzer{
		Name: "guardedby",
		Doc:  "checks that fields annotated repl:guardedby(mu) are only accessed with the named mutex held on every path",
	}
	a.Run = func(pass *Pass) error {
		collectGuardAnnotations(pass, guards)
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				funcs = append(funcs, &gbFunc{
					name: obj.FullName(),
					pkg:  pass.Pkg,
					g:    BuildCFG(fd.Body),
				})
				// Function literal bodies are separate functions to the
				// dataflow: they run at an unknown time with nothing held.
				base := obj.FullName()
				n := 0
				ast.Inspect(fd.Body, func(node ast.Node) bool {
					if lit, ok := node.(*ast.FuncLit); ok {
						n++
						funcs = append(funcs, &gbFunc{
							name:  fmt.Sprintf("%s$%d", base, n),
							pkg:   pass.Pkg,
							g:     BuildCFG(lit.Body),
							isLit: true,
						})
					}
					return true
				})
			}
		}
		return nil
	}
	a.Finish = func(prog *Program, report func(pos token.Pos, msg string)) error {
		if len(guards) == 0 {
			return nil
		}
		universe := NewFactSet()
		for _, g := range guards {
			universe[g.mutexKey] = true
		}

		// Greatest fixed point for held-on-entry: start every declared
		// function at "everything held" and intersect down with what its
		// static call sites actually hold; no call sites (or only
		// defer/go sites) means entry point, nothing held. Facts only
		// shrink, so this terminates.
		entry := make(map[string]FactSet, len(funcs))
		for _, f := range funcs {
			if f.isLit {
				entry[f.name] = NewFactSet()
			} else {
				entry[f.name] = universe.Clone()
			}
		}
		for changed := true; changed; {
			changed = false
			callerHeld := make(map[string]FactSet)
			for _, f := range funcs {
				info := f.pkg.Info
				transfer := lockTransfer(info, f.name)
				collect := func(ev CFGNode, facts FactSet) {
					call, ok := ev.N.(*ast.CallExpr)
					if !ok {
						return
					}
					fn := calleeFunc(info, call)
					if fn == nil {
						return
					}
					held := NewFactSet()
					if !ev.Deferred {
						held = facts.Clone()
					}
					if have, ok := callerHeld[fn.FullName()]; ok {
						for k := range have {
							if !held[k] {
								delete(have, k)
							}
						}
					} else {
						callerHeld[fn.FullName()] = held
					}
				}
				ForwardMust(f.g, entry[f.name], transfer, collect)
			}
			for _, f := range funcs {
				if f.isLit {
					continue
				}
				next, ok := callerHeld[f.name]
				if !ok {
					next = NewFactSet()
				}
				if !sameFacts(entry[f.name], next) {
					entry[f.name] = next
					changed = true
				}
			}
		}

		// Check pass over the configured packages.
		type site struct {
			file string
			line int
			key  string
		}
		seen := make(map[site]bool)
		for _, f := range funcs {
			if !pathMatches(f.pkg.Path, pkgs) {
				continue
			}
			info := f.pkg.Info
			check := func(ev CFGNode, facts FactSet) {
				sel, ok := ev.N.(*ast.SelectorExpr)
				if !ok {
					return
				}
				selection, ok := info.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return
				}
				key := fieldKey(selection)
				guard, ok := guards[key]
				if !ok || facts[guard.mutexKey] {
					return
				}
				pos := prog.Fset.Position(sel.Sel.Pos())
				s := site{pos.Filename, pos.Line, key}
				if seen[s] {
					return
				}
				seen[s] = true
				report(sel.Sel.Pos(), fmt.Sprintf("%s is annotated // repl:guardedby(%s) but accessed without holding %s on every path to this point", key, guard.guardName, guard.mutexKey))
			}
			ForwardMust(f.g, entry[f.name], lockTransfer(info, f.name), check)
		}
		return nil
	}
	return a
}

// lockTransfer folds Lock/RLock/Unlock/RUnlock calls into the held set.
// Deferred events are skipped: a deferred Unlock releases at return (the
// mutex stays held for the rest of the function), and a `go` call does
// not run here at all.
func lockTransfer(info *types.Info, fnScope string) func(ev CFGNode, facts FactSet) {
	return func(ev CFGNode, facts FactSet) {
		if ev.Deferred {
			return
		}
		call, ok := ev.N.(*ast.CallExpr)
		if !ok {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		switch {
		case lockMethods[sel.Sel.Name]:
			if key := mutexKey(info, fnScope, sel); key != "" {
				facts[key] = true
			}
		case unlockMethods[sel.Sel.Name]:
			if key := mutexKey(info, fnScope, sel); key != "" {
				delete(facts, key)
			}
		}
	}
}

// collectGuardAnnotations scans one package's struct declarations for
// repl:guardedby field annotations, validating that the named guard is a
// sibling sync.Mutex/RWMutex field.
func collectGuardAnnotations(pass *Pass, guards map[string]gbGuard) {
	pkgName := pass.Pkg.Types.Name()
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					guardName := guardDirective(field)
					if guardName == "" {
						continue
					}
					if !structHasMutex(pass, st, guardName) {
						pass.Reportf(field.Pos(), "repl:guardedby(%s) names no sibling sync.Mutex/RWMutex field in %s", guardName, ts.Name.Name)
						continue
					}
					g := gbGuard{
						mutexKey:  pkgName + "." + ts.Name.Name + "." + guardName,
						guardName: guardName,
					}
					for _, name := range field.Names {
						guards[pkgName+"."+ts.Name.Name+"."+name.Name] = g
					}
				}
			}
		}
	}
}

// guardDirective extracts the guard name from a field's doc or trailing
// comment.
func guardDirective(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := guardedbyRe.FindStringSubmatch(c.Text); m != nil {
				return m[1]
			}
		}
	}
	return ""
}

// structHasMutex reports whether the struct literally declares a mutex
// field with the given name.
func structHasMutex(pass *Pass, st *ast.StructType, name string) bool {
	for _, field := range st.Fields.List {
		for _, n := range field.Names {
			if n.Name != name {
				continue
			}
			if tv, ok := pass.Pkg.Info.Types[field.Type]; ok && isSyncMutex(tv.Type) {
				return true
			}
		}
	}
	return false
}

// fieldKey returns the canonical pkg.Type.field identity of the field a
// selection lands on, resolving promoted fields to the embedded struct
// that declares them so the key always matches the annotation site.
func fieldKey(selection *types.Selection) string {
	t := selection.Recv()
	idx := selection.Index()
	for _, i := range idx[:len(idx)-1] {
		st := structUnder(t)
		if st == nil || i >= st.NumFields() {
			return ""
		}
		t = st.Field(i).Type()
	}
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + selection.Obj().Name()
}

// structUnder unwraps pointers, aliases and named types to the struct
// beneath, or nil.
func structUnder(t types.Type) *types.Struct {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			t = u.Underlying()
		case *types.Struct:
			return u
		default:
			return nil
		}
	}
}

// sameFacts reports set equality.
func sameFacts(a, b FactSet) bool {
	if len(a) != len(b) {
		return false
	}
	ka := a.Keys()
	kb := b.Keys()
	sort.Strings(ka)
	sort.Strings(kb)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}
