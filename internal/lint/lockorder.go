package lint

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// defaultLockOrderPkgs are the packages whose mutexes guard protocol
// state: the lock manager itself, the engines, and the 2PC layer. A lock
// cycle here is a latent site-wide hang under exactly the load the paper
// measures.
var defaultLockOrderPkgs = []string{
	"internal/lock",
	"internal/core",
	"internal/twopc",
	"internal/comm",
}

// lockAcq is one Lock/RLock call inside a function.
type lockAcq struct {
	key      string // canonical mutex identity
	pos      token.Pos
	released bool // a matching Unlock/RUnlock or defer exists in the function
}

// lockCall is one function call made while mutexes are held.
type lockCall struct {
	callee string // full name of the callee
	held   []string
	pos    token.Pos
}

// lockFunc is the per-function summary the whole-program pass combines.
type lockFunc struct {
	name     string
	acquires []lockAcq
	calls    []lockCall
	edges    []lockEdge
}

type lockEdge struct {
	from, to string
	pos      token.Pos
}

// NewLockOrder returns the lockorder analyzer. It builds the
// mutex-acquisition graph of the configured packages (default:
// internal/lock, internal/core, internal/twopc, internal/comm) and
// reports
//
//   - cycles in the acquired-while-holding relation — two goroutines
//     taking the same mutexes in opposite orders deadlock under
//     contention — including edges through one level of calls (calling
//     a function that acquires B while holding A is an A→B edge);
//   - Lock/RLock calls with no matching Unlock/RUnlock or defer anywhere
//     in the same function, the classic leaked critical section.
//
// Mutexes are identified by their field path on a named type
// (pkg.Type.field), so the same field locked from different methods is
// one graph node. Functions that intentionally return holding a lock
// carry `//lint:allow lockorder <reason>`.
func NewLockOrder(pkgs ...string) *Analyzer {
	if len(pkgs) == 0 {
		pkgs = defaultLockOrderPkgs
	}
	funcs := make(map[string]*lockFunc)
	a := &Analyzer{
		Name: "lockorder",
		Doc:  "builds the mutex-acquisition graph and reports lock-order cycles and unreleased Lock calls",
	}
	a.Run = func(pass *Pass) error {
		if !pathMatches(pass.Pkg.Path, pkgs) {
			return nil
		}
		for _, f := range pass.Pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				lf := analyzeLockFunc(pass, fd, obj)
				funcs[lf.name] = lf
				for _, acq := range lf.acquires {
					if !acq.released {
						pass.Reportf(acq.pos, "%s is locked but never unlocked in this function (add a defer or an explicit Unlock on every path)", acq.key)
					}
				}
			}
		}
		return nil
	}
	a.Finish = func(prog *Program, report func(token.Pos, string)) error {
		reportLockCycles(funcs, report)
		return nil
	}
	return a
}

// mutexMethods classifies sync.Mutex/RWMutex method names.
var lockMethods = map[string]bool{"Lock": true, "RLock": true}
var unlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}

// mutexKey returns the canonical identity of the mutex a Lock/Unlock
// call targets, or "" if the receiver is not a sync mutex. For field
// selectors on named types the key is pkg.Type.field — stable across
// functions; for anything else it is scoped to the enclosing function.
func mutexKey(info *types.Info, fnName string, sel *ast.SelectorExpr) string {
	recv := ast.Unparen(sel.X)
	tv, ok := info.Types[recv]
	if !ok {
		return ""
	}
	if !isSyncMutex(tv.Type) {
		return ""
	}
	if fs, ok := recv.(*ast.SelectorExpr); ok {
		if base := namedType(typeOf(info, fs.X)); base != nil && base.Obj().Pkg() != nil {
			return base.Obj().Pkg().Name() + "." + base.Obj().Name() + "." + fs.Sel.Name
		}
	}
	var b strings.Builder
	_ = printer.Fprint(&b, token.NewFileSet(), recv)
	return fnName + "/" + b.String()
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

func isSyncMutex(t types.Type) bool {
	return typeFrom(t, "sync", "Mutex") || typeFrom(t, "sync", "RWMutex")
}

// analyzeLockFunc walks one function body in source order, tracking the
// flow-insensitive held set.
func analyzeLockFunc(pass *Pass, fd *ast.FuncDecl, obj *types.Func) *lockFunc {
	info := pass.Pkg.Info
	lf := &lockFunc{name: obj.FullName()}
	released := make(map[string]bool)
	var held []string

	heldCopy := func() []string { return append([]string(nil), held...) }
	drop := func(key string) {
		for i, h := range held {
			if h == key {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}

	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeferStmt:
				// A deferred Unlock releases at return: record the release
				// but keep the mutex in the held set for edge purposes.
				if sel, ok := ast.Unparen(n.Call.Fun).(*ast.SelectorExpr); ok && unlockMethods[sel.Sel.Name] {
					if key := mutexKey(info, lf.name, sel); key != "" {
						released[key] = true
						return false
					}
				}
				return true
			case *ast.FuncLit:
				// Closures run at an unknown time; analyze their bodies as
				// independent sequences with an empty held set — except
				// that a closure deferring an Unlock still counts as the
				// enclosing function's release (the `defer func() { ...
				// mu.Unlock() ... }()` idiom).
				save := heldCopy()
				held = nil
				walk(n.Body)
				held = save
				return false
			case *ast.CallExpr:
				sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
				if ok {
					if lockMethods[sel.Sel.Name] {
						if key := mutexKey(info, lf.name, sel); key != "" {
							for _, h := range held {
								if h != key {
									lf.edges = append(lf.edges, lockEdge{from: h, to: key, pos: n.Pos()})
								}
							}
							lf.acquires = append(lf.acquires, lockAcq{key: key, pos: n.Pos()})
							held = append(held, key)
							return false
						}
					}
					if unlockMethods[sel.Sel.Name] {
						if key := mutexKey(info, lf.name, sel); key != "" {
							released[key] = true
							drop(key)
							return false
						}
					}
				}
				if fn := calleeFunc(info, n); fn != nil && len(held) > 0 {
					lf.calls = append(lf.calls, lockCall{callee: fn.FullName(), held: heldCopy(), pos: n.Pos()})
				}
				return true
			}
			return true
		})
	}
	walk(fd.Body)

	for i := range lf.acquires {
		if released[lf.acquires[i].key] {
			lf.acquires[i].released = true
		}
	}
	return lf
}

// reportLockCycles closes the per-function summaries over the call graph
// and reports every elementary cycle once.
func reportLockCycles(funcs map[string]*lockFunc, report func(token.Pos, string)) {
	// Fixed point: the set of mutexes each function may acquire,
	// transitively through calls into analyzed code.
	acquired := make(map[string]map[string]bool, len(funcs))
	for name := range funcs {
		acquired[name] = make(map[string]bool)
	}
	for changed := true; changed; {
		changed = false
		for name, lf := range funcs {
			set := acquired[name]
			add := func(k string) {
				if !set[k] {
					set[k] = true
					changed = true
				}
			}
			for _, acq := range lf.acquires {
				add(acq.key)
			}
			for _, c := range lf.calls {
				for k := range acquired[c.callee] {
					add(k)
				}
			}
		}
	}

	type edge struct {
		to  string
		pos token.Pos
	}
	graph := make(map[string][]edge)
	addEdge := func(from, to string, pos token.Pos) {
		for _, e := range graph[from] {
			if e.to == to {
				return
			}
		}
		graph[from] = append(graph[from], edge{to, pos})
	}
	for _, lf := range funcs {
		for _, e := range lf.edges {
			addEdge(e.from, e.to, e.pos)
		}
		for _, c := range lf.calls {
			for to := range acquired[c.callee] {
				for _, from := range c.held {
					if from != to {
						addEdge(from, to, c.pos)
					}
				}
			}
		}
	}

	nodes := make([]string, 0, len(graph))
	for n := range graph {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, g := range graph {
		sort.Slice(g, func(i, j int) bool { return g[i].to < g[j].to })
	}

	reported := make(map[string]bool)
	// DFS from each node; a back edge to the DFS root is an elementary
	// cycle. Canonicalize by the sorted node set so each cycle reports
	// once.
	for _, root := range nodes {
		var stack []string
		onStack := map[string]bool{}
		var dfs func(n string) bool
		dfs = func(n string) bool {
			stack = append(stack, n)
			onStack[n] = true
			defer func() { stack = stack[:len(stack)-1]; onStack[n] = false }()
			for _, e := range graph[n] {
				if e.to == root {
					cyc := append(append([]string(nil), stack...), root)
					key := canonicalCycle(cyc)
					if !reported[key] {
						reported[key] = true
						report(e.pos, fmt.Sprintf("lock-order cycle: %s (two goroutines taking these in opposite orders deadlock)", strings.Join(cyc, " -> ")))
					}
					continue
				}
				if !onStack[e.to] {
					if dfs(e.to) {
						return true
					}
				}
			}
			return false
		}
		dfs(root)
	}
}

// canonicalCycle keys a cycle by its sorted distinct nodes.
func canonicalCycle(cyc []string) string {
	set := make(map[string]bool)
	for _, n := range cyc {
		set[n] = true
	}
	nodes := make([]string, 0, len(set))
	for n := range set {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	return strings.Join(nodes, "|")
}
