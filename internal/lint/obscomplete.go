package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// obsField is one registered metric handle: a struct field of type
// *obs.Counter, *obs.Gauge, *obs.Histogram or *watch.Progress.
type obsField struct {
	name string
	kind string // Counter, Gauge, Histogram, Progress
	pos  token.Pos
}

// obsUpdate summarizes how one handle field is mutated across the
// program.
type obsUpdate struct {
	any      bool // some updating method is called
	gaugeInc bool
	gaugeDec bool // Dec, Set or Add
	push     bool // Progress.Push
	pop      bool // Progress.Pop
}

// NewObsComplete returns the obscomplete analyzer, which keeps the
// observability layer (PR 1's guarantee) complete as the engines evolve:
//
//   - every exported trace event kind (constant of type Kind in a
//     package named "trace") must be recorded by at least one package
//     outside trace — an event that exists but is never emitted means a
//     protocol lifecycle step silently lost its instrumentation;
//   - every obs handle field (struct field of type *obs.Counter,
//     *obs.Gauge or *obs.Histogram, or an array/slice of those — a
//     label-indexed handle bank like the per-reason abort counters) must
//     be updated somewhere — a handle that is registered but never
//     Inc/Add/Observe'd exports a permanently-zero series that
//     masquerades as "nothing happened";
//   - every *obs.Gauge field that is ever Inc'd must also be Dec'd (or
//     Set/Add'd) somewhere — a level gauge that only rises, like a queue
//     depth counting arrivals but not departures, reads as an
//     ever-growing backlog;
//   - every *watch.Progress field (a queue-liveness handle from the
//     watchdog) must have both Push and Pop call sites — a half-wired
//     handle either trips the queue-stall detector permanently (Push
//     without Pop) or drives the depth negative (Pop without Push);
//   - every exported latency-attribution phase (constant of type Phase in
//     a package named "metrics") must be used by at least one package
//     outside metrics — a phase registered in the breakdown schema that
//     no engine ever records leaves a silent hole in every Report's
//     phase attribution;
//   - every exported telemetry frame kind (constant of type FrameKind in
//     a package named "telemetry") must be used somewhere beyond its
//     declaration — a frame kind in the wire schema that no publisher
//     ever sends and no aggregator ever switches on is a dead wire-format
//     entry that readers will wrongly assume can arrive.
//
// Intentional exceptions carry `//lint:allow obscomplete <reason>` on
// the constant or field declaration.
func NewObsComplete() *Analyzer {
	type kindConst struct {
		name string
		pos  token.Pos
	}
	var kinds []kindConst
	usedOutside := make(map[string]bool) // kind const name -> used outside trace
	var phases []kindConst
	phaseUsed := make(map[string]bool) // phase const name -> used outside metrics
	var frameKinds []kindConst
	frameKindUsed := make(map[string]bool) // frame kind const name -> used anywhere beyond its declaration
	fields := make(map[string]*obsField)
	updates := make(map[string]*obsUpdate)
	var fieldOrder []string

	update := func(key string) *obsUpdate {
		u, ok := updates[key]
		if !ok {
			u = &obsUpdate{}
			updates[key] = u
		}
		return u
	}

	a := &Analyzer{
		Name: "obscomplete",
		Doc:  "cross-references trace event kinds and obs metric handles against their call sites",
	}
	a.Run = func(pass *Pass) error {
		info := pass.Pkg.Info
		inTrace := pass.Pkg.Types.Name() == "trace"
		inMetrics := pass.Pkg.Types.Name() == "metrics"
		inTelemetry := pass.Pkg.Types.Name() == "telemetry"
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					if c, ok := info.Uses[n].(*types.Const); ok && isTraceKindConst(c) && !inTrace {
						usedOutside[c.Name()] = true
					}
					if inTrace {
						if c, ok := info.Defs[n].(*types.Const); ok && isTraceKindConst(c) && c.Exported() {
							kinds = append(kinds, kindConst{name: c.Name(), pos: n.Pos()})
						}
					}
					if c, ok := info.Uses[n].(*types.Const); ok && isMetricsPhaseConst(c) && !inMetrics {
						phaseUsed[c.Name()] = true
					}
					if inMetrics {
						if c, ok := info.Defs[n].(*types.Const); ok && isMetricsPhaseConst(c) && c.Exported() {
							phases = append(phases, kindConst{name: c.Name(), pos: n.Pos()})
						}
					}
					if c, ok := info.Uses[n].(*types.Const); ok && isTelemetryFrameKindConst(c) {
						frameKindUsed[c.Name()] = true
					}
					if inTelemetry {
						if c, ok := info.Defs[n].(*types.Const); ok && isTelemetryFrameKindConst(c) && c.Exported() {
							frameKinds = append(frameKinds, kindConst{name: c.Name(), pos: n.Pos()})
						}
					}
					if v, ok := info.Defs[n].(*types.Var); ok && v.IsField() {
						if kind := obsHandleKind(v.Type()); kind != "" {
							key := obsFieldKey(pass.Pkg.Path, v)
							if _, seen := fields[key]; !seen {
								fields[key] = &obsField{name: pass.Pkg.Types.Name() + "." + fieldOwner(info, n) + v.Name(), kind: kind, pos: n.Pos()}
								fieldOrder = append(fieldOrder, key)
							}
						}
					}
				case *ast.SelectorExpr:
					recordObsUpdate(pass.Pkg.Path, info, n, update)
				}
				return true
			})
		}
		return nil
	}
	a.Finish = func(prog *Program, report func(token.Pos, string)) error {
		for _, k := range kinds {
			if !usedOutside[k.name] {
				report(k.pos, fmt.Sprintf("trace event %s is declared but never recorded outside package trace: a protocol lifecycle step lost its instrumentation", k.name))
			}
		}
		for _, p := range phases {
			if !phaseUsed[p.name] {
				report(p.pos, fmt.Sprintf("latency phase %s is registered but never recorded by any engine: every Report's phase breakdown silently lacks that segment", p.name))
			}
		}
		for _, k := range frameKinds {
			if !frameKindUsed[k.name] {
				report(k.pos, fmt.Sprintf("telemetry frame kind %s is declared but never sent or handled: a dead wire-format entry that readers will wrongly assume can arrive", k.name))
			}
		}
		sort.Strings(fieldOrder)
		for _, key := range fieldOrder {
			f := fields[key]
			u := updates[key]
			switch {
			case (u == nil || !u.any) && f.kind == "Progress":
				report(f.pos, fmt.Sprintf("queue handle %s is registered but never pushed or popped: the watchdog monitors a queue that does not exist", f.name))
			case u == nil || !u.any:
				report(f.pos, fmt.Sprintf("obs handle %s is registered but never updated: it exports a permanently-zero series", f.name))
			case f.kind == "Gauge" && u.gaugeInc && !u.gaugeDec:
				report(f.pos, fmt.Sprintf("gauge %s only ever increments: a level series needs a matching Dec/Set or it reads as an ever-growing backlog", f.name))
			case f.kind == "Progress" && u.push && !u.pop:
				report(f.pos, fmt.Sprintf("queue handle %s is pushed but never popped: its depth only rises and the watchdog will report a permanent stall", f.name))
			case f.kind == "Progress" && u.pop && !u.push:
				report(f.pos, fmt.Sprintf("queue handle %s is popped but never pushed: its depth goes negative and stall detection is meaningless", f.name))
			}
		}
		return nil
	}
	return a
}

func isTraceKindConst(c *types.Const) bool {
	return c.Pkg() != nil && c.Pkg().Name() == "trace" && typeFrom(c.Type(), "trace", "Kind")
}

func isMetricsPhaseConst(c *types.Const) bool {
	return c.Pkg() != nil && c.Pkg().Name() == "metrics" && typeFrom(c.Type(), "metrics", "Phase")
}

func isTelemetryFrameKindConst(c *types.Const) bool {
	return c.Pkg() != nil && c.Pkg().Name() == "telemetry" && typeFrom(c.Type(), "telemetry", "FrameKind")
}

// obsHandleKind classifies a field type as a pointer to an obs handle or
// a watchdog queue-liveness handle. Arrays and slices of *obs.* handle
// pointers (a handle bank indexed by a label enum, like the per-reason
// abort counters) classify as their element: a bank nobody ever indexes
// into is as dead as a single unused handle. Progress collections are
// deliberately excluded — a []*watch.Progress is the watchdog's own
// monitor-side registry, which reads depths and never pushes.
func obsHandleKind(t types.Type) string {
	switch seq := t.(type) {
	case *types.Array:
		if k := obsHandleKind(seq.Elem()); k != "Progress" {
			return k
		}
		return ""
	case *types.Slice:
		if k := obsHandleKind(seq.Elem()); k != "Progress" {
			return k
		}
		return ""
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		return ""
	}
	for _, k := range []string{"Counter", "Gauge", "Histogram"} {
		if typeFrom(t, "obs", k) {
			return k
		}
	}
	if typeFrom(t, "watch", "Progress") {
		return "Progress"
	}
	return ""
}

// fieldOwner names the struct type a field identifier belongs to, for
// readable diagnostics ("siteObs."); best-effort.
func fieldOwner(info *types.Info, name *ast.Ident) string {
	// The defining ident's object has no back-pointer to the struct; the
	// diagnostic position already disambiguates, so an empty owner is
	// acceptable.
	return ""
}

// recordObsUpdate marks handle mutations of the form x.field.Method()
// and, for handle banks, x.field[i].Method().
func recordObsUpdate(pkgPath string, info *types.Info, sel *ast.SelectorExpr, update func(string) *obsUpdate) {
	switch sel.Sel.Name {
	case "Inc", "Add", "Dec", "Set", "Observe", "Push", "Pop":
	default:
		return
	}
	recv := ast.Unparen(sel.X)
	if ix, ok := recv.(*ast.IndexExpr); ok {
		recv = ast.Unparen(ix.X)
	}
	inner, ok := recv.(*ast.SelectorExpr)
	if !ok {
		return
	}
	obj, ok := info.Uses[inner.Sel].(*types.Var)
	if !ok || !obj.IsField() || obj.Pkg() == nil || obsHandleKind(obj.Type()) == "" {
		return
	}
	u := update(obsFieldKey(obj.Pkg().Path(), obj))
	u.any = true
	switch sel.Sel.Name {
	case "Inc":
		u.gaugeInc = true
	case "Dec", "Set", "Add":
		u.gaugeDec = true
	case "Push":
		u.push = true
	case "Pop":
		u.pop = true
	}
}

// obsFieldKey identifies a field across Defs and Uses by its declaration
// position, which is stable within one load.
func obsFieldKey(pkgPath string, obj *types.Var) string {
	return pkgPath + "." + obj.Name() + "@" + fmt.Sprint(int(obj.Pos()))
}
