package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// NewSendErr returns the senderr analyzer. The exactly-once contract
// (comm.Reliable, docs/FAULTS.md) is only as strong as its error
// accounting: a silently dropped error from a transport send, an RPC
// call, or a 2PC round means a message the sender believes delivered may
// be gone, with no retransmission, no counter, no trace event. The
// analyzer flags calls to the watched functions whose error result
// vanishes — used as a bare statement, in a go/defer, or assigned to the
// blank identifier.
//
// Watched callees:
//
//   - Send methods taking a comm.Message and returning error (every
//     Transport implementation: Mem, TCP, fault.Transport, Reliable);
//   - (*comm.RPC).Call and CallRetry;
//   - twopc.Run, whose error is the 2PC decision-delivery failure;
//   - SendFrame methods taking a telemetry.Frame and returning error
//     (the telemetry plane's sinks): a silently dropped frame error
//     makes the cluster console lie — the publisher must count the
//     failure and schedule the resync;
//   - (*wal.SiteLog).Append and Sync, the write-ahead log's durability
//     points: a dropped append or fsync error means the engine
//     externalizes a transition the disk never recorded, so a crash
//     silently forgets work the rest of the cluster saw acknowledged.
//
// Sites where dropping is the contract (ARQ retransmission covers the
// loss; a lost reply is indistinguishable from a lost response message)
// carry `//lint:allow senderr <reason>`.
func NewSendErr() *Analyzer {
	a := &Analyzer{
		Name: "senderr",
		Doc:  "flags dropped errors from transport sends, RPC calls, and 2PC rounds",
	}
	a.Run = func(pass *Pass) error {
		info := pass.Pkg.Info
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						reportDroppedSend(pass, info, call, "discarded")
					}
				case *ast.GoStmt:
					reportDroppedSend(pass, info, n.Call, "discarded by go statement")
				case *ast.DeferStmt:
					reportDroppedSend(pass, info, n.Call, "discarded by defer")
				case *ast.AssignStmt:
					checkBlankSend(pass, info, n)
				}
				return true
			})
		}
		return nil
	}
	return a
}

// watchedSendCall reports whether call invokes a watched callee and
// returns a short description of it.
func watchedSendCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	res := sig.Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return "", false
	}
	switch {
	case fn.Name() == "Send" && sig.Recv() != nil && sig.Params().Len() == 1 &&
		typeFrom(sig.Params().At(0).Type(), "comm", "Message"):
		return recvTypeName(sig) + ".Send", true
	case (fn.Name() == "Call" || fn.Name() == "CallRetry") && sig.Recv() != nil &&
		typeFrom(sig.Recv().Type(), "comm", "RPC"):
		return "RPC." + fn.Name(), true
	case fn.Name() == "Run" && sig.Recv() == nil && fn.Pkg().Name() == "twopc":
		return "twopc.Run", true
	case fn.Name() == "SendFrame" && sig.Recv() != nil && sig.Params().Len() == 1 &&
		typeFrom(sig.Params().At(0).Type(), "telemetry", "Frame"):
		return recvTypeName(sig) + ".SendFrame", true
	case (fn.Name() == "Append" || fn.Name() == "Sync") && sig.Recv() != nil &&
		typeFrom(sig.Recv().Type(), "wal", "SiteLog"):
		return "SiteLog." + fn.Name(), true
	}
	return "", false
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj() != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

func recvTypeName(sig *types.Signature) string {
	if n := namedType(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return "Transport"
}

func reportDroppedSend(pass *Pass, info *types.Info, call *ast.CallExpr, how string) {
	name, ok := watchedSendCall(info, call)
	if !ok {
		return
	}
	why := "a lost message breaks exactly-once accounting"
	if strings.HasPrefix(name, "SiteLog.") {
		why = "an unlogged transition silently survives no crash"
	}
	pass.Reportf(call.Pos(), "error from %s %s: %s (check it, count it, or annotate the contract)", name, how, why)
}

// checkBlankSend flags watched calls whose error lands in the blank
// identifier: `_ = tr.Send(m)` and `v, _ := rpc.Call(...)`. Deliberate
// drops must carry the allow directive so the contract is stated where
// it is relied upon.
func checkBlankSend(pass *Pass, info *types.Info, as *ast.AssignStmt) {
	// Multi-value form: one call, results spread over the LHS.
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		if last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident); ok && last.Name == "_" {
			reportDroppedSend(pass, info, call, "assigned to _")
		}
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || i >= len(as.Lhs) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			reportDroppedSend(pass, info, call, "assigned to _")
		}
	}
}
