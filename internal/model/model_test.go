package model

import "testing"

func validPlacement(t *testing.T) *Placement {
	t.Helper()
	p := NewPlacement(3, 4)
	p.Primary = []SiteID{0, 0, 1, 2}
	p.Replicas = [][]SiteID{{1, 2}, nil, {2}, {0}}
	if err := p.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return p
}

func TestPlacementIndexes(t *testing.T) {
	p := validPlacement(t)

	if got := p.PrimariesAt(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("PrimariesAt(0) = %v, want [0 1]", got)
	}
	if got := p.ReplicasAt(2); len(got) != 2 {
		t.Errorf("ReplicasAt(2) = %v, want items 0 and 2", got)
	}
	if !p.HasCopy(1, 0) || p.HasCopy(1, 3) {
		t.Errorf("HasCopy wrong: s1 holds a replica of item 0 and nothing of item 3")
	}
	if !p.IsPrimary(2, 3) || p.IsPrimary(0, 3) {
		t.Errorf("IsPrimary wrong for item 3")
	}
	if !p.IsReplicated(0) || p.IsReplicated(1) {
		t.Errorf("IsReplicated wrong: item 0 is, item 1 is not")
	}
	copies := p.CopiesAt(0)
	if len(copies) != 3 { // primaries 0,1 + replica of 3
		t.Errorf("CopiesAt(0) = %v, want 3 entries", copies)
	}
}

func TestPlacementFinishRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		mut  func(p *Placement)
	}{
		{"primary out of range", func(p *Placement) { p.Primary[0] = 9 }},
		{"negative primary", func(p *Placement) { p.Primary[0] = -1 }},
		{"replica out of range", func(p *Placement) { p.Replicas[0] = []SiteID{7} }},
		{"replica equals primary", func(p *Placement) { p.Replicas[1] = []SiteID{0} }},
		{"duplicate replica", func(p *Placement) { p.Replicas[0] = []SiteID{1, 1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPlacement(3, 4)
			p.Primary = []SiteID{0, 0, 1, 2}
			p.Replicas = [][]SiteID{{1, 2}, nil, {2}, {0}}
			tc.mut(p)
			if err := p.Finish(); err == nil {
				t.Error("Finish accepted invalid placement")
			}
		})
	}
}

func TestPlacementReplicasSorted(t *testing.T) {
	p := NewPlacement(4, 1)
	p.Primary = []SiteID{0}
	p.Replicas = [][]SiteID{{3, 1, 2}}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	r := p.ReplicaSites(0)
	for i := 1; i < len(r); i++ {
		if r[i-1] >= r[i] {
			t.Fatalf("replicas not sorted: %v", r)
		}
	}
}

func TestPlacementFinishIdempotent(t *testing.T) {
	p := validPlacement(t)
	before := len(p.PrimariesAt(0))
	if err := p.Finish(); err != nil {
		t.Fatalf("second Finish: %v", err)
	}
	if got := len(p.PrimariesAt(0)); got != before {
		t.Errorf("indexes duplicated by re-Finish: %d -> %d", before, got)
	}
}

func TestTxnIDString(t *testing.T) {
	if got := (TxnID{}).String(); got != "T<nil>" {
		t.Errorf("zero TxnID = %q", got)
	}
	if got := (TxnID{Site: 2, Seq: 7}).String(); got != "T(s2:7)" {
		t.Errorf("TxnID = %q", got)
	}
	if !(TxnID{}).Zero() || (TxnID{Site: 1}).Zero() {
		t.Error("Zero() wrong")
	}
}

func TestOpString(t *testing.T) {
	if got := (Op{Kind: OpRead, Item: 5}).String(); got != "r[5]" {
		t.Errorf("read op = %q", got)
	}
	if got := (Op{Kind: OpWrite, Item: 3}).String(); got != "w[3]" {
		t.Errorf("write op = %q", got)
	}
}
