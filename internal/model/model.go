// Package model defines the small set of identifiers and value types shared
// by every layer of the replicated database: site and item identifiers,
// global transaction identifiers, operations, and the data-placement map
// that induces the copy graph.
package model

import (
	"fmt"
	"sort"
)

// SiteID identifies a database site. Sites are numbered 0..m-1 and the
// numbering is a total order consistent with the copy-graph DAG (smaller
// IDs are "earlier"); the paper writes this order s1 < s2 < ... < sm.
type SiteID int

// NoSite is the zero-value sentinel for "no site".
const NoSite SiteID = -1

// ItemID identifies a logical data item. Each item has exactly one primary
// copy (at its primary site) and zero or more secondary copies (replicas).
type ItemID int

// TxnID is a system-wide unique identifier for a logical transaction. A
// logical transaction originates at exactly one site (its primary
// subtransaction); all of its secondary subtransactions carry the same
// TxnID so the serializability checker can attribute every physical
// operation to the logical transaction that issued it.
type TxnID struct {
	Site SiteID // originating site
	Seq  uint64 // per-site sequence number, 1-based
}

// Zero reports whether t is the zero TxnID (no transaction).
func (t TxnID) Zero() bool { return t == TxnID{} }

func (t TxnID) String() string {
	if t.Zero() {
		return "T<nil>"
	}
	return fmt.Sprintf("T(s%d:%d)", t.Site, t.Seq)
}

// OpKind distinguishes read and write operations.
type OpKind uint8

const (
	// OpRead reads an item.
	OpRead OpKind = iota
	// OpWrite writes an item.
	OpWrite
)

func (k OpKind) String() string {
	if k == OpRead {
		return "r"
	}
	return "w"
}

// Op is one operation of a transaction program. For writes, Value is the
// value to install; for reads Value is ignored.
type Op struct {
	Kind  OpKind
	Item  ItemID
	Value int64
}

func (o Op) String() string { return fmt.Sprintf("%s[%d]", o.Kind, o.Item) }

// WriteOp records one installed write, shipped to replicas inside
// secondary subtransactions.
type WriteOp struct {
	Item  ItemID
	Value int64
}

// Placement maps every item to its primary site and replica sites. It is
// the static data-distribution input from which the copy graph is derived
// (an edge si→sj exists iff some item has its primary at si and a replica
// at sj).
type Placement struct {
	NumSites int
	NumItems int

	// Primary[i] is the primary site of item i.
	Primary []SiteID
	// Replicas[i] lists the sites holding secondary copies of item i,
	// sorted ascending and never containing Primary[i].
	Replicas [][]SiteID

	// Derived indexes, built by Finish.
	primariesAt [][]ItemID // site -> items whose primary copy lives there
	replicasAt  [][]ItemID // site -> items with a secondary copy there
	hasCopy     []map[ItemID]bool
}

// NewPlacement allocates an empty placement for the given dimensions.
// Callers fill Primary and Replicas and then call Finish.
func NewPlacement(sites, items int) *Placement {
	return &Placement{
		NumSites: sites,
		NumItems: items,
		Primary:  make([]SiteID, items),
		Replicas: make([][]SiteID, items),
	}
}

// Finish validates the placement and builds the per-site indexes. It must
// be called once after Primary/Replicas are populated and before any query
// method is used.
func (p *Placement) Finish() error {
	if p.NumSites <= 0 {
		return fmt.Errorf("placement: NumSites must be positive, got %d", p.NumSites)
	}
	if len(p.Primary) != p.NumItems || len(p.Replicas) != p.NumItems {
		return fmt.Errorf("placement: Primary/Replicas length mismatch with NumItems=%d", p.NumItems)
	}
	p.primariesAt = make([][]ItemID, p.NumSites)
	p.replicasAt = make([][]ItemID, p.NumSites)
	p.hasCopy = make([]map[ItemID]bool, p.NumSites)
	for s := 0; s < p.NumSites; s++ {
		p.hasCopy[s] = make(map[ItemID]bool)
	}
	for i := 0; i < p.NumItems; i++ {
		ps := p.Primary[i]
		if ps < 0 || int(ps) >= p.NumSites {
			return fmt.Errorf("placement: item %d has invalid primary site %d", i, ps)
		}
		p.primariesAt[ps] = append(p.primariesAt[ps], ItemID(i))
		p.hasCopy[ps][ItemID(i)] = true
		reps := p.Replicas[i]
		sort.Slice(reps, func(a, b int) bool { return reps[a] < reps[b] })
		for j, r := range reps {
			if r < 0 || int(r) >= p.NumSites {
				return fmt.Errorf("placement: item %d has invalid replica site %d", i, r)
			}
			if r == ps {
				return fmt.Errorf("placement: item %d lists its primary site %d as a replica", i, r)
			}
			if j > 0 && reps[j-1] == r {
				return fmt.Errorf("placement: item %d lists replica site %d twice", i, r)
			}
			p.replicasAt[r] = append(p.replicasAt[r], ItemID(i))
			p.hasCopy[r][ItemID(i)] = true
		}
	}
	return nil
}

// PrimariesAt returns the items whose primary copy is at site s.
func (p *Placement) PrimariesAt(s SiteID) []ItemID { return p.primariesAt[s] }

// ReplicasAt returns the items with a secondary copy at site s.
func (p *Placement) ReplicasAt(s SiteID) []ItemID { return p.replicasAt[s] }

// HasCopy reports whether site s stores any copy (primary or secondary) of
// item i.
func (p *Placement) HasCopy(s SiteID, i ItemID) bool { return p.hasCopy[s][i] }

// IsPrimary reports whether site s holds the primary copy of item i.
func (p *Placement) IsPrimary(s SiteID, i ItemID) bool { return p.Primary[i] == s }

// ReplicaSites returns the secondary-copy sites of item i.
func (p *Placement) ReplicaSites(i ItemID) []SiteID { return p.Replicas[i] }

// CopiesAt returns every item stored at site s (primaries then replicas).
func (p *Placement) CopiesAt(s SiteID) []ItemID {
	out := make([]ItemID, 0, len(p.primariesAt[s])+len(p.replicasAt[s]))
	out = append(out, p.primariesAt[s]...)
	out = append(out, p.replicasAt[s]...)
	return out
}

// IsReplicated reports whether item i has at least one secondary copy.
func (p *Placement) IsReplicated(i ItemID) bool { return len(p.Replicas[i]) > 0 }
