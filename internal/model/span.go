package model

import "strconv"

// Causal span identifiers carried on the wire (docs/OBSERVABILITY.md).
//
// A span identifies one hop of one transaction's propagation through the
// copy graph. Identifiers are derived deterministically from the
// transaction id and the path taken, so two runs with the same seed (and
// two replicas reconstructing the same tree from a trace) agree on every
// id without any coordination or extra wire traffic beyond the
// SpanContext itself.

// SpanID names a single span. Zero means "no span": events recorded
// before this scheme existed, or bookkeeping events with no causal
// parent, carry SpanID(0) and serialize exactly as they did before.
type SpanID uint64

// String renders the id in hex, the form trace viewers display.
func (s SpanID) String() string { return "0x" + strconv.FormatUint(uint64(s), 16) }

// splitmix64 is the finalizer of the splitmix64 generator; it is a
// high-quality 64-bit mixer used here purely as a deterministic hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RootSpan derives the root span id of a transaction: the span under
// which the primary subtransaction executes at the origin site. It is
// never zero.
func RootSpan(tid TxnID) SpanID {
	h := splitmix64(uint64(uint32(tid.Site))<<32 | uint64(uint32(tid.Seq)))
	if h == 0 {
		h = 1
	}
	return SpanID(h)
}

// deriveSpan computes the child span id for work performed at site on
// behalf of parent. It is never zero.
func deriveSpan(parent SpanID, tid TxnID, site SiteID) SpanID {
	h := splitmix64(uint64(parent) ^ splitmix64(uint64(RootSpan(tid))+uint64(uint32(site))))
	if h == 0 {
		h = 1
	}
	return SpanID(h)
}

// AuxSpan derives a span id for auxiliary work (a retransmission, an
// ack, an injected fault) attributed to parent. salt distinguishes the
// auxiliary roles under one parent. It is never zero.
func AuxSpan(parent SpanID, salt uint64) SpanID {
	h := splitmix64(uint64(parent) + splitmix64(salt))
	if h == 0 {
		h = 1
	}
	return SpanID(h)
}

// SpanContext is the compact causal context carried in every message
// envelope: which transaction this work belongs to, the span of the
// sender's work, and how many copy-graph hops the update has taken.
type SpanContext struct {
	TID    TxnID
	Parent SpanID
	Hop    uint8
}

// Zero reports whether the context is empty (no transaction attached).
func (c SpanContext) Zero() bool { return c.TID.Zero() && c.Parent == 0 }

// SpanAt returns the span id of the work performed at site under this
// context. At the origin (Parent == 0) that is the transaction's root
// span; downstream it is a deterministic child of Parent, so the same
// code path serves both the primary and every relay.
func (c SpanContext) SpanAt(site SiteID) SpanID {
	if c.Parent == 0 {
		return RootSpan(c.TID)
	}
	return deriveSpan(c.Parent, c.TID, site)
}

// Fork returns the context to stamp on messages sent onward from site:
// the local span becomes the parent and the hop count advances.
func (c SpanContext) Fork(site SiteID) SpanContext {
	return SpanContext{TID: c.TID, Parent: c.SpanAt(site), Hop: c.Hop + 1}
}
