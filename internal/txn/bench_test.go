package txn

import (
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/model"
	"repro/internal/storage"
)

func benchManager(b *testing.B) *Manager {
	b.Helper()
	st := storage.NewStore()
	for i := 0; i < 32; i++ {
		if err := st.Create(model.ItemID(i), 0); err != nil {
			b.Fatal(err)
		}
	}
	return NewManager(0, st, lock.NewManager(false), 50*time.Millisecond, nil)
}

// BenchmarkLocalTransaction measures a full Table 1 transaction through
// the local transaction manager: 7 reads, 3 writes, commit — the
// DataBlitz-equivalent critical path under every protocol.
func BenchmarkLocalTransaction(b *testing.B) {
	m := benchManager(b)
	for i := 0; i < b.N; i++ {
		t := m.Begin(model.TxnID{Site: 0, Seq: uint64(i + 1)})
		for op := 0; op < 10; op++ {
			item := model.ItemID((i + op) % 32)
			var err error
			if op%3 == 0 {
				err = t.Write(item, int64(i))
			} else {
				_, err = t.Read(item)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		if err := t.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSecondaryApply measures the write-only install path secondary
// subtransactions take.
func BenchmarkSecondaryApply(b *testing.B) {
	m := benchManager(b)
	for i := 0; i < b.N; i++ {
		t := m.BeginSecondary(model.TxnID{Site: 1, Seq: uint64(i + 1)})
		for w := 0; w < 3; w++ {
			if err := t.Write(model.ItemID((i+w)%32), int64(i)); err != nil {
				b.Fatal(err)
			}
		}
		if err := t.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAbort(b *testing.B) {
	m := benchManager(b)
	for i := 0; i < b.N; i++ {
		t := m.Begin(model.TxnID{Site: 0, Seq: uint64(i + 1)})
		if err := t.Write(model.ItemID(i%32), 1); err != nil {
			b.Fatal(err)
		}
		t.Abort()
	}
}
