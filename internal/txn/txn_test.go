package txn

import (
	"errors"
	"testing"
	"time"

	"repro/internal/history"
	"repro/internal/lock"
	"repro/internal/model"
	"repro/internal/storage"
)

func newTestManager(t *testing.T, rec *history.Recorder) *Manager {
	t.Helper()
	st := storage.NewStore()
	for i := 0; i < 5; i++ {
		if err := st.Create(model.ItemID(i), int64(10*i)); err != nil {
			t.Fatal(err)
		}
	}
	return NewManager(0, st, lock.NewManager(false), 50*time.Millisecond, rec)
}

func txid(n uint64) model.TxnID { return model.TxnID{Site: 0, Seq: n} }

func TestReadWriteCommit(t *testing.T) {
	rec := history.NewRecorder()
	m := newTestManager(t, rec)
	tx := m.Begin(txid(1))
	v, err := tx.Read(1)
	if err != nil || v != 10 {
		t.Fatalf("read = %d, %v", v, err)
	}
	if err := tx.Write(2, 99); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ver, _ := m.Store.Read(2)
	if ver.Value != 99 || ver.Writer != txid(1) {
		t.Errorf("committed version = %+v", ver)
	}
	if m.Locks.HeldCount(txid(1)) != 0 {
		t.Error("locks not released at commit")
	}
	if rec.NumReads() != 1 {
		t.Error("read observation not flushed")
	}
}

func TestReadsOwnWrites(t *testing.T) {
	m := newTestManager(t, nil)
	tx := m.Begin(txid(1))
	_ = tx.Write(1, 77)
	v, err := tx.Read(1)
	if err != nil || v != 77 {
		t.Errorf("own write invisible: %d, %v", v, err)
	}
	// The store must still hold the old value until commit.
	ver, _ := m.Store.Read(1)
	if ver.Value != 10 {
		t.Errorf("write leaked before commit: %+v", ver)
	}
	tx.Abort()
}

func TestAbortDiscardsWritesAndObservations(t *testing.T) {
	rec := history.NewRecorder()
	m := newTestManager(t, rec)
	tx := m.Begin(txid(1))
	_, _ = tx.Read(3)
	_ = tx.Write(1, 55)
	tx.Abort()
	ver, _ := m.Store.Read(1)
	if ver.Value != 10 || ver.Num != 0 {
		t.Errorf("abort leaked a write: %+v", ver)
	}
	if m.Locks.HeldCount(txid(1)) != 0 {
		t.Error("locks not released at abort")
	}
	if rec.NumReads() != 0 {
		t.Error("aborted transaction flushed read observations")
	}
}

func TestLockConflictAbortsTransaction(t *testing.T) {
	m := newTestManager(t, nil)
	m.Timeout = 10 * time.Millisecond
	holder := m.Begin(txid(1))
	if err := holder.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	tx := m.Begin(txid(2))
	_, err := tx.Read(1)
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("want ErrAborted, got %v", err)
	}
	if !tx.Finished() {
		t.Error("transaction not marked finished after forced abort")
	}
	if m.Locks.HeldCount(txid(2)) != 0 {
		t.Error("aborted txn left locks behind")
	}
	holder.Abort()
}

func TestStrictTwoPhaseLocking(t *testing.T) {
	m := newTestManager(t, nil)
	tx := m.Begin(txid(1))
	_, _ = tx.Read(1)
	_ = tx.Write(2, 1)
	// Locks are held (not released between operations).
	if _, held := m.Locks.Holds(txid(1), 1); !held {
		t.Error("read lock released early")
	}
	if _, held := m.Locks.Holds(txid(1), 2); !held {
		t.Error("write lock released early")
	}
	_ = tx.Commit()
	if m.Locks.HeldCount(txid(1)) != 0 {
		t.Error("locks survived commit")
	}
}

func TestWriteThenReadKeepsExclusive(t *testing.T) {
	m := newTestManager(t, nil)
	tx := m.Begin(txid(1))
	_ = tx.Write(1, 5)
	_, _ = tx.Read(1)
	if mode, _ := m.Locks.Holds(txid(1), 1); mode != lock.Exclusive {
		t.Error("read after write downgraded the lock")
	}
	tx.Abort()
}

func TestUseAfterFinishRejected(t *testing.T) {
	m := newTestManager(t, nil)
	tx := m.Begin(txid(1))
	_ = tx.Commit()
	if _, err := tx.Read(1); err == nil {
		t.Error("read after commit succeeded")
	}
	if err := tx.Write(1, 1); err == nil {
		t.Error("write after commit succeeded")
	}
	if err := tx.Commit(); err == nil {
		t.Error("double commit succeeded")
	}
}

func TestAbortIdempotent(t *testing.T) {
	m := newTestManager(t, nil)
	tx := m.Begin(txid(1))
	tx.Abort()
	tx.Abort() // must not panic or error
	if !tx.Finished() {
		t.Error("not finished")
	}
}

func TestWritesReturnsWriteOrder(t *testing.T) {
	m := newTestManager(t, nil)
	tx := m.Begin(txid(1))
	_ = tx.Write(3, 30)
	_ = tx.Write(1, 11)
	_ = tx.Write(3, 33) // overwrite: order keeps first position
	ws := tx.Writes()
	if len(ws) != 2 || ws[0] != (model.WriteOp{Item: 3, Value: 33}) || ws[1] != (model.WriteOp{Item: 1, Value: 11}) {
		t.Errorf("Writes = %v", ws)
	}
	if tx.NumWrites() != 2 {
		t.Errorf("NumWrites = %d", tx.NumWrites())
	}
	tx.Abort()
}

func TestCommitObservationsMatchVersions(t *testing.T) {
	rec := history.NewRecorder()
	m := newTestManager(t, rec)
	t1 := m.Begin(txid(1))
	_ = t1.Write(1, 100)
	_ = t1.Commit()
	t2 := m.Begin(txid(2))
	v, _ := t2.Read(1)
	if v != 100 {
		t.Fatalf("read = %d", v)
	}
	_ = t2.Commit()
	// wr edge t1 -> t2 and nothing else: acyclic.
	g := rec.BuildGraph()
	if g.Edges() != 1 {
		t.Errorf("edges = %d, want 1", g.Edges())
	}
	if err := rec.CheckSerializable(); err != nil {
		t.Error(err)
	}
}

func TestObserveRemoteRead(t *testing.T) {
	rec := history.NewRecorder()
	m := newTestManager(t, rec)
	tx := m.Begin(txid(1))
	tx.ObserveRemoteRead(3, 7, 2)
	if rec.NumReads() != 0 {
		t.Error("remote observation flushed before commit")
	}
	_ = tx.Commit()
	if rec.NumReads() != 1 {
		t.Error("remote observation lost at commit")
	}
}
