// Package txn implements the local transaction manager each site runs:
// begin/read/write/commit/abort over the site's store and lock manager
// under strict two-phase locking (§1.1). Writes are buffered and installed
// at commit, so abort is trivially atomic; reads see the transaction's own
// buffered writes. Locks are held until commit or abort and then released
// in one step, which makes the local serialization order equal the local
// commit order — the property all four protocols build on.
package txn

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/history"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/storage"
)

// ErrAborted wraps lock failures that force the caller to abort.
var ErrAborted = errors.New("txn: aborted")

// Manager coordinates transactions at one site.
type Manager struct {
	Site     model.SiteID
	Store    *storage.Store
	Locks    *lock.Manager
	Timeout  time.Duration     // lock-wait timeout (the paper's 50 ms)
	Recorder *history.Recorder // nil disables observation recording

	metrics    *metrics.Collector // nil disables phase attribution
	phaseTrace func(p metrics.Phase, tid model.TxnID, d time.Duration)
}

// NewManager returns a transaction manager over the given store and lock
// manager.
func NewManager(site model.SiteID, st *storage.Store, lm *lock.Manager, timeout time.Duration, rec *history.Recorder) *Manager {
	return &Manager{Site: site, Store: st, Locks: lm, Timeout: timeout, Recorder: rec}
}

// SetMetrics installs the collector that receives lock-wait and storage-
// apply phase samples. Call before transactions run; a nil collector (the
// default) keeps both hot paths free of clock reads.
func (m *Manager) SetMetrics(c *metrics.Collector) { m.metrics = c }

// SetPhaseTrace installs fn, invoked with each lock-wait and write-apply
// segment alongside the aggregate metrics sample, carrying the owning
// transaction's id. Engines use it to emit per-transaction PhaseLatency
// trace events at the origin, which the contention observatory's
// critical-path analyzer needs to attribute commit latency (aggregate
// phase samples cannot say whose latency it was). A nil hook (the
// default) adds one branch to the instrumented paths and nothing to the
// uninstrumented ones.
func (m *Manager) SetPhaseTrace(fn func(p metrics.Phase, tid model.TxnID, d time.Duration)) {
	m.phaseTrace = fn
}

// acquire wraps Locks.AcquireEx with lock-wait phase attribution. The
// clock is read only when a collector is installed, so the default path
// costs one nil check.
func (t *Txn) acquire(item model.ItemID, mode lock.Mode) error {
	m := t.m
	if m.metrics == nil && m.phaseTrace == nil {
		return m.Locks.AcquireEx(t.ID, item, mode, m.Timeout, t.prio)
	}
	start := time.Now()
	err := m.Locks.AcquireEx(t.ID, item, mode, m.Timeout, t.prio)
	d := time.Since(start)
	m.metrics.PhaseSample(metrics.PhaseLockWait, d)
	if m.phaseTrace != nil {
		m.phaseTrace(metrics.PhaseLockWait, t.ID, d)
	}
	return err
}

// Txn is one local (sub)transaction. It is not safe for concurrent use by
// multiple goroutines; each thread owns its transaction.
type Txn struct {
	ID model.TxnID
	m  *Manager

	writes     map[model.ItemID]int64
	writeOrder []model.ItemID
	readObs    []history.ReadObs
	prio       lock.Priority
	finished   bool
	durable    func() error
}

// SetDurable installs the write-ahead hook Commit runs before any store
// mutation: typically an engine closure that appends the commit's redo
// record to the site log and waits for the group commit. If the hook
// fails (the site's log was fenced by a crash) Commit releases all locks
// and returns an error wrapping both ErrAborted and the hook's error —
// nothing was installed, exactly as if the transaction never committed.
// Conversely, once the hook returns nil the commit is durable and Commit
// always completes the in-memory installation.
func (t *Txn) SetDurable(hook func() error) { t.durable = hook }

// Begin starts a transaction with the given system-wide unique id.
func (m *Manager) Begin(id model.TxnID) *Txn {
	return &Txn{ID: id, m: m, writes: make(map[model.ItemID]int64)}
}

// BeginSecondary starts a secondary subtransaction: its lock requests
// carry Secondary priority, which wounds vulnerable lock holders
// (primaries parked on a backedge round-trip) instead of stalling behind
// them — the paper's §2 fair victim selection.
func (m *Manager) BeginSecondary(id model.TxnID) *Txn {
	return &Txn{ID: id, m: m, writes: make(map[model.ItemID]int64), prio: lock.Secondary}
}

// Read returns the current value of item, first consulting the
// transaction's own write buffer, otherwise taking a shared lock and
// reading the store. A lock timeout aborts the transaction.
func (t *Txn) Read(item model.ItemID) (int64, error) {
	v, _, _, err := t.ReadVersioned(item)
	return v, err
}

// ReadVersioned is Read plus freshness provenance: it additionally
// returns the storage version number the value came from and whether the
// read hit the store at all (false for a value served from the
// transaction's own write buffer, whose version is meaningless until
// commit). The version feeds read-freshness certificates
// (internal/fresh) without a second store access.
func (t *Txn) ReadVersioned(item model.ItemID) (int64, uint64, bool, error) {
	if t.finished {
		return 0, 0, false, fmt.Errorf("txn %v: read after finish", t.ID)
	}
	if v, ok := t.writes[item]; ok {
		return v, 0, false, nil
	}
	if err := t.acquire(item, lock.Shared); err != nil {
		t.Abort()
		// Wrap (not format) the lock error: abort classification walks the
		// chain with errors.Is to tell a timeout from a detected deadlock.
		return 0, 0, false, fmt.Errorf("%w: r[%d] at s%d: %w", ErrAborted, item, t.m.Site, err)
	}
	ver, err := t.m.Store.Read(item)
	if err != nil {
		t.Abort()
		return 0, 0, false, err
	}
	t.readObs = append(t.readObs, history.ReadObs{Site: t.m.Site, Item: item, Version: ver.Num, Reader: t.ID})
	return ver.Value, ver.Num, true, nil
}

// Write buffers a new value for item after taking the exclusive lock
// (upgrading a held shared lock if necessary). A lock timeout aborts the
// transaction.
func (t *Txn) Write(item model.ItemID, value int64) error {
	if t.finished {
		return fmt.Errorf("txn %v: write after finish", t.ID)
	}
	if err := t.acquire(item, lock.Exclusive); err != nil {
		t.Abort()
		// Wrap (not format) the lock error, as in Read, for abort
		// classification.
		return fmt.Errorf("%w: w[%d] at s%d: %w", ErrAborted, item, t.m.Site, err)
	}
	if _, ok := t.writes[item]; !ok {
		t.writeOrder = append(t.writeOrder, item)
	}
	t.writes[item] = value
	return nil
}

// Commit installs the buffered writes, flushes the read/write
// observations to the recorder, and releases all locks. Callers that need
// commit to be atomic with respect to other commits at the site (the
// critical sections of §2 and §3.2.2) serialize calls with a site-level
// commit mutex.
//
// Commit mutates durable state, so on WAL-backed paths every call must
// be dominated by arming the write-ahead hook (armDurable/SetDurable
// reaching the site log's Append); the waldiscipline analyzer enforces
// this at every call site in the engines.
//
// repl:durable
func (t *Txn) Commit() error {
	if t.finished {
		return fmt.Errorf("txn %v: double finish", t.ID)
	}
	t.finished = true
	if t.durable != nil {
		// Log then mutate: the redo record must be on disk before any
		// effect of this commit can be observed (or externalized by the
		// caller under its commit critical section).
		if err := t.durable(); err != nil {
			t.m.Locks.ReleaseAll(t.ID)
			return fmt.Errorf("txn %v: %w: %w", t.ID, ErrAborted, err)
		}
	}
	var applyStart time.Time
	if (t.m.metrics != nil || t.m.phaseTrace != nil) && len(t.writeOrder) > 0 {
		applyStart = time.Now()
	}
	for _, item := range t.writeOrder {
		ver, err := t.m.Store.Apply(item, t.writes[item], t.ID)
		if err != nil {
			// Unreachable with a correct engine: writes target local copies.
			t.m.Locks.ReleaseAll(t.ID)
			return err
		}
		t.m.Recorder.Write(t.m.Site, item, ver.Num, t.ID)
	}
	if !applyStart.IsZero() {
		d := time.Since(applyStart)
		t.m.metrics.PhaseSample(metrics.PhaseApply, d)
		if t.m.phaseTrace != nil {
			t.m.phaseTrace(metrics.PhaseApply, t.ID, d)
		}
	}
	for _, ro := range t.readObs {
		t.m.Recorder.Read(ro.Site, ro.Item, ro.Version, ro.Reader)
	}
	t.m.Locks.ReleaseAll(t.ID)
	return nil
}

// ObserveRemoteRead buffers a read observation made at another site on
// this transaction's behalf (PSL remote reads); like local reads it is
// flushed to the recorder only if the transaction commits.
func (t *Txn) ObserveRemoteRead(site model.SiteID, item model.ItemID, version uint64) {
	t.readObs = append(t.readObs, history.ReadObs{Site: site, Item: item, Version: version, Reader: t.ID})
}

// Abort discards buffered writes and releases all locks. Safe to call
// multiple times.
func (t *Txn) Abort() {
	if t.finished {
		return
	}
	t.finished = true
	t.m.Locks.ReleaseAll(t.ID)
}

// Finished reports whether the transaction has committed or aborted.
func (t *Txn) Finished() bool { return t.finished }

// Writes returns the buffered writes in write order, the payload of a
// secondary subtransaction.
func (t *Txn) Writes() []model.WriteOp {
	out := make([]model.WriteOp, 0, len(t.writeOrder))
	for _, item := range t.writeOrder {
		out = append(out, model.WriteOp{Item: item, Value: t.writes[item]})
	}
	return out
}

// NumWrites returns the number of distinct items written.
func (t *Txn) NumWrites() int { return len(t.writeOrder) }
