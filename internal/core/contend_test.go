package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/contend"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/txn"
)

// abortEvents returns the recorded TxnAbort events, which since the
// contention observatory each carry their root-cause reason in the Phase
// tag field.
func (s *system) abortEvents() []trace.Event {
	var out []trace.Event
	for _, ev := range s.tracer.Snapshot() {
		if ev.Kind == trace.TxnAbort {
			out = append(out, ev)
		}
	}
	return out
}

// assertOneClassifiedAbort checks that exactly one abort was recorded and
// that every layer agrees on its root cause: the TxnAbort trace tag, the
// per-reason obs counter, and the engine's AbortReasons breakdown.
func assertOneClassifiedAbort(t *testing.T, s *system, site model.SiteID, reason contend.AbortReason) {
	t.Helper()
	aborts := s.abortEvents()
	if len(aborts) != 1 {
		t.Fatalf("got %d TxnAbort events, want exactly 1: %+v", len(aborts), aborts)
	}
	if aborts[0].Phase != reason.String() {
		t.Errorf("abort event tagged %q, want %q", aborts[0].Phase, reason)
	}
	if aborts[0].Site != site {
		t.Errorf("abort recorded at s%d, want s%d", aborts[0].Site, site)
	}
	breakdown := s.engines[site].(interface{ AbortReasons() map[string]uint64 }).AbortReasons()
	if len(breakdown) != 1 || breakdown[reason.String()] != 1 {
		t.Errorf("AbortReasons = %v, want map[%s:1]", breakdown, reason)
	}
	if got := contend.AbortBreakdown(s.tracer.Snapshot()); contend.Unclassified(got) != 0 {
		t.Errorf("unclassified aborts in breakdown: %v", got)
	}
}

// TestForcedLockTimeoutClassifiedAbort forces the paper's suspected-
// deadlock path: a parked writer makes a second writer outwait
// LockTimeout. Exactly one abort, classified lock_timeout.
func TestForcedLockTimeoutClassifiedAbort(t *testing.T) {
	p := placement(t, 1, []model.SiteID{0}, [][]model.SiteID{{}})
	s := buildSystem(t, PSL, p, testParams(), time.Millisecond)
	e0 := s.engines[0].(*pslEngine)
	blocker := e0.tm.Begin(e0.newTxnID())
	if err := blocker.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.engines[0].Execute([]model.Op{w(0, 9)}); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("want abort, got %v", err)
	}
	blocker.Abort()
	assertOneClassifiedAbort(t, s, 0, contend.ReasonLockTimeout)
}

// TestForcedWoundClassifiedAbort forces the global-deadlock wound rule of
// §2: s1's primary parks vulnerable on its backedge round trip (the
// special is blocked at s0 by a parked reader), and a secondary arriving
// at s1 wounds it after WoundGrace. Exactly one abort, classified wound.
func TestForcedWoundClassifiedAbort(t *testing.T) {
	p := example41Placement(t)
	params := testParams()
	params.PrepareTimeout = 5 * time.Second // far away: the wound must act first
	params.WoundGrace = 10 * time.Millisecond
	s := buildSystem(t, BackEdge, p, params, time.Millisecond)

	// A parked shared lock on item 1's copy at s0 keeps s1's special (its
	// backedge write of item 1) from completing.
	e0 := s.engines[0].(*backedgeEngine)
	blocker := e0.tm.Begin(e0.newTxnID())
	if _, err := blocker.Read(1); err != nil {
		t.Fatal(err)
	}

	// s1: read item 0's local copy, write item 1 — parks vulnerable.
	done := make(chan error, 1)
	go func() { done <- s.engines[1].Execute([]model.Op{r(0), w(1, 2)}) }()
	e1 := s.engines[1].(*backedgeEngine)
	deadline := time.Now().Add(5 * time.Second)
	for {
		e1.mu.Lock()
		parked := len(e1.waiters) > 0
		e1.mu.Unlock()
		if parked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("s1's primary never parked on its backedge round trip")
		}
		time.Sleep(time.Millisecond)
	}

	// s0 commits a write of item 0; its secondary at s1 blocks behind the
	// parked primary's read lock and wounds it after WoundGrace.
	if err := s.engines[0].Execute([]model.Op{w(0, 5)}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("want wound abort, got %v", err)
	}
	blocker.Abort()
	s.quiesce(t)
	assertOneClassifiedAbort(t, s, 1, contend.ReasonWound)
	s.waitValue(t, 1, 0, 5) // the wounding secondary got through
}

// TestForced2PCNoVoteClassifiedAbort loses the 2PC prepare on the wire:
// the coordinator's vote RPC times out, the round decides abort, and the
// abort classifies as 2pc_no_vote.
func TestForced2PCNoVoteClassifiedAbort(t *testing.T) {
	p := example41Placement(t)
	drop := dropKinds(kindPrepare)
	s := buildSystemFull(t, BackEdge, p, testParams(), 0, nil,
		func(tr comm.Transport) comm.Transport {
			drop.Transport = tr
			return drop
		})
	if err := s.engines[1].Execute([]model.Op{w(1, 42)}); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("want 2PC abort, got %v", err)
	}
	s.quiesce(t)
	assertOneClassifiedAbort(t, s, 1, contend.ReasonNoVote)
}
