// Package core implements the paper's update-propagation protocols:
//
//   - DAG(WT) (§2): lazy propagation along a tree derived from the copy
//     graph, secondaries applied and forwarded in FIFO commit order;
//   - DAG(T) (§3): lazy propagation along copy-graph edges, ordered by
//     vector timestamps with epoch numbers for progress;
//   - BackEdge (§4): the hybrid protocol for cyclic copy graphs — eager,
//     two-phase-committed propagation along backedges, DAG(WT) elsewhere;
//   - PSL (§5.1): the lazy primary-site-locking baseline;
//   - NaiveLazy (§1.2): indiscriminate lazy propagation, which does NOT
//     guarantee serializability and exists to reproduce Example 1.1.
//
// One Engine instance runs per site; engines communicate only through a
// comm.Transport, so the same code drives the in-process simulation and
// the TCP multi-process deployment.
package core

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/fresh"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/ts"
	"repro/internal/wal"
	"repro/internal/watch"
)

// Protocol selects an update-propagation protocol.
type Protocol int

const (
	// PSL is the primary-site-locking baseline.
	PSL Protocol = iota
	// DAGWT is the tree-routed lazy protocol of §2.
	DAGWT
	// DAGT is the timestamp-ordered lazy protocol of §3.
	DAGT
	// BackEdge is the hybrid protocol of §4 (extension of DAG(WT)).
	BackEdge
	// NaiveLazy propagates indiscriminately and is NOT serializable; it is
	// the negative control for the serializability checker.
	NaiveLazy
)

func (p Protocol) String() string {
	switch p {
	case PSL:
		return "PSL"
	case DAGWT:
		return "DAG(WT)"
	case DAGT:
		return "DAG(T)"
	case BackEdge:
		return "BackEdge"
	case NaiveLazy:
		return "NaiveLazy"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// ParseProtocol converts a user-facing name to a Protocol.
func ParseProtocol(s string) (Protocol, error) {
	switch strings.ToLower(strings.ReplaceAll(strings.ReplaceAll(s, "(", ""), ")", "")) {
	case "psl":
		return PSL, nil
	case "dagwt", "dag-wt":
		return DAGWT, nil
	case "dagt", "dag-t":
		return DAGT, nil
	case "backedge", "be":
		return BackEdge, nil
	case "naivelazy", "naive":
		return NaiveLazy, nil
	default:
		return 0, fmt.Errorf("core: unknown protocol %q", s)
	}
}

// Propagates reports whether the protocol pushes updates to replicas (PSL
// deliberately does not: replicas are bypassed via remote reads).
func (p Protocol) Propagates() bool { return p != PSL }

// Serializable reports whether the protocol guarantees globally
// serializable executions.
func (p Protocol) Serializable() bool { return p != NaiveLazy }

// Params are the tunables shared by all protocols, mirroring Table 1.
type Params struct {
	// LockTimeout bounds every lock wait; on expiry the waiter is the
	// deadlock victim (the paper's 50 ms mechanism).
	LockTimeout time.Duration
	// PrepareTimeout bounds how long a BackEdge primary holds its locks
	// waiting for its special subtransaction to come home before treating
	// itself as globally deadlocked and aborting.
	PrepareTimeout time.Duration
	// WoundGrace is how long a parked BackEdge primary is protected from
	// being wounded by a blocking secondary subtransaction: long enough
	// for a healthy backedge round-trip to finish, short enough that a
	// genuine global deadlock (Example 4.1) resolves well before
	// PrepareTimeout.
	WoundGrace time.Duration
	// EpochPeriod is how often DAG(T) source sites advance their epoch
	// (§3.3).
	EpochPeriod time.Duration
	// DummyPeriod is the silence threshold after which a DAG(T) site sends
	// a dummy secondary subtransaction down an idle copy-graph edge (§3.3).
	DummyPeriod time.Duration
	// OpCost simulates the CPU time of one read/write operation, standing
	// in for the prototype's 1990s UltraSparc per-operation work so lock
	// contention windows resemble the paper's.
	OpCost time.Duration
	// RPCTimeout bounds request/reply calls (PSL remote reads, 2PC
	// rounds); it must exceed LockTimeout or remote lock waits are cut
	// short.
	RPCTimeout time.Duration
	// DetectDeadlocks enables the local wait-for-graph detector as an
	// alternative to pure timeouts.
	DetectDeadlocks bool
}

// DefaultParams returns the prototype's settings (Table 1).
func DefaultParams() Params {
	return Params{
		LockTimeout:    50 * time.Millisecond,
		PrepareTimeout: 500 * time.Millisecond,
		WoundGrace:     25 * time.Millisecond,
		EpochPeriod:    25 * time.Millisecond,
		DummyPeriod:    10 * time.Millisecond,
		OpCost:         200 * time.Microsecond,
		RPCTimeout:     250 * time.Millisecond,
	}
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.LockTimeout <= 0 {
		return fmt.Errorf("core: LockTimeout must be positive")
	}
	if p.RPCTimeout <= p.LockTimeout {
		return fmt.Errorf("core: RPCTimeout (%v) must exceed LockTimeout (%v)", p.RPCTimeout, p.LockTimeout)
	}
	if p.PrepareTimeout <= 0 || p.EpochPeriod <= 0 || p.DummyPeriod <= 0 {
		return fmt.Errorf("core: timeouts and periods must be positive")
	}
	if p.WoundGrace < 0 {
		return fmt.Errorf("core: WoundGrace must be non-negative")
	}
	if p.WoundGrace >= p.PrepareTimeout {
		return fmt.Errorf("core: WoundGrace (%v) must stay below PrepareTimeout (%v)", p.WoundGrace, p.PrepareTimeout)
	}
	return nil
}

// SharedConfig is the cluster-wide state every engine sees: the placement,
// the copy graph and its derived structures, and the run-wide sinks.
type SharedConfig struct {
	Placement *model.Placement
	Graph     *graph.CopyGraph
	// Order is the total order over sites consistent with the DAG (after
	// backedge removal); Order[i] is the i-th site. Timestamp site fields
	// are positions in this order.
	Order []model.SiteID
	// Tree routes DAG(WT)/BackEdge propagation and must satisfy the §2
	// ancestor property for the DAG edges of Graph.
	Tree *graph.Tree
	// SubtreeItems[s] is the set of items with a copy at s or any tree
	// descendant of s (drives DAG(WT) relevance).
	SubtreeItems []map[model.ItemID]bool
	// Backedges is the removed edge set B (§4); empty for pure-DAG runs.
	Backedges map[graph.Edge]bool

	Params   Params
	Recorder *history.Recorder  // nil disables serializability recording
	Metrics  *metrics.Collector // nil disables measurement
	// Trace receives per-transaction propagation lifecycle events; nil
	// disables tracing (engines then pay one branch per event site).
	Trace *trace.Recorder
	// Obs is the live metrics registry (counters, queue-depth gauges);
	// nil disables it — engines keep nil handles, which are no-ops.
	Obs *obs.Registry
	// Watch is the staleness/liveness watchdog; nil disables it — engines
	// then hold nil progress handles and register no probes, all no-ops.
	Watch *watch.Watchdog
	// Fresh is the freshness observatory tracker (docs/OBSERVABILITY.md):
	// engines note primary commits and secondary applies into it and
	// certify every read against it. Nil disables the observatory —
	// certificates, staleness distributions, and their metrics all become
	// one-branch no-ops.
	Fresh *fresh.Tracker
	// Pending tracks in-flight real (non-dummy) propagation messages so
	// the cluster can quiesce; nil disables tracking.
	Pending *sync.WaitGroup
	// WALs maps each site to its write-ahead redo log. Nil (or a missing
	// entry) runs the site without durability: crashes are then purely
	// in-memory. With a log present the engine recovers its store image,
	// unconsumed receipts, pending forwards, and 2PC state from it at
	// construction, and follows the log-then-externalize discipline at
	// runtime (docs/DURABILITY.md).
	WALs map[model.SiteID]*wal.SiteLog
}

// Engine is one site's protocol instance.
type Engine interface {
	// Site returns the engine's site.
	Site() model.SiteID
	// Execute runs one transaction program originating here and blocks
	// until it commits or aborts. Reads must target items with a copy at
	// this site; writes must target items whose primary is here (§1.1).
	Execute(ops []model.Op) error
	// Handle consumes one transport message; it is the comm.Handler for
	// the site and must not block indefinitely.
	Handle(msg comm.Message)
	// Start launches background workers (appliers, tickers).
	Start()
	// Stop terminates background workers. Pending queue contents are
	// dropped.
	Stop()
}

// New constructs the engine for proto at site id over tr. The transport
// handler is registered automatically.
func New(proto Protocol, cfg *SharedConfig, id model.SiteID, tr comm.Transport) (Engine, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	var e Engine
	switch proto {
	case PSL:
		e = newPSL(cfg, id, tr)
	case DAGWT:
		e = newDAGWT(cfg, id, tr)
	case DAGT:
		e = newDAGT(cfg, id, tr)
	case BackEdge:
		e = newBackEdge(cfg, id, tr)
	case NaiveLazy:
		e = newNaive(cfg, id, tr)
	default:
		return nil, fmt.Errorf("core: unknown protocol %v", proto)
	}
	tr.Register(id, e.Handle)
	return e, nil
}

// Message kinds.
const (
	kindSecondary     = iota + 1 // secondary subtransaction (DAG(WT)/DAG(T)/NaiveLazy)
	kindSpecial                  // BackEdge special secondary (uncommitted relay, §4.1 step 2)
	kindBackedgeExec             // BackEdge: origin -> farthest backedge site (§4.1 step 1)
	kindBackedgeAbort            // BackEdge: origin aborts its backedge subtransactions
	kindPrepare                  // 2PC phase 1 (RPC)
	kindDecision                 // 2PC phase 2 (RPC)
	kindPSLRead                  // PSL remote read: lock at primary + ship value (RPC)
	kindPSLRelease               // PSL commit/abort-time remote lock release
	kindInquiry                  // 2PC decision inquiry: stuck participant -> coordinator (RPC)
)

// secondaryPayload carries a committed transaction's writes to a replica
// site. TS is meaningful for DAG(T) only; Dummy marks the §3.3 heartbeat.
type secondaryPayload struct {
	TID    model.TxnID
	TS     ts.Timestamp
	Writes []model.WriteOp
	Dummy  bool
}

// WireSize implements comm.PayloadSizer for byte accounting on the
// in-process transport: TID + flags, 16 bytes per write, 16 per
// timestamp tuple plus the epoch.
func (p secondaryPayload) WireSize() int {
	return 24 + 16*len(p.Writes) + 16*len(p.TS.Tuples)
}

// specialPayload carries a BackEdge transaction's writes: directly to the
// farthest backedge site (kindBackedgeExec) and then hop-by-hop down the
// tree back to the origin (kindSpecial).
type specialPayload struct {
	TID    model.TxnID
	Origin model.SiteID
	Writes []model.WriteOp
}

// WireSize implements comm.PayloadSizer.
func (p specialPayload) WireSize() int { return 24 + 16*len(p.Writes) }

type preparePayload struct{ TID model.TxnID }

type prepareResp struct{ Vote bool }

type decisionPayload struct {
	TID    model.TxnID
	Commit bool
}

type decisionResp struct{}

type abortPayload struct{ TID model.TxnID }

type pslReadReq struct {
	TID  model.TxnID
	Item model.ItemID
}

type pslReadResp struct {
	Value   int64
	Version uint64
}

type pslReleasePayload struct{ TID model.TxnID }

// inquiryPayload asks a transaction's coordinator for its 2PC decision; a
// participant sends it when it has been prepared for suspiciously long
// (the phase-2 message was lost, or the coordinator crashed after
// deciding).
type inquiryPayload struct{ TID model.TxnID }

// inquiryResp answers a decision inquiry from the coordinator's decision
// log. Known is false while the coordinator has not decided yet — the
// participant keeps waiting (and keeps its locks, as prepared demands).
type inquiryResp struct {
	Known  bool
	Commit bool
}

// RegisterPayloads registers every protocol payload for gob encoding; TCP
// deployments must call it once at startup.
func RegisterPayloads() {
	comm.RegisterPayload(secondaryPayload{})
	comm.RegisterPayload(specialPayload{})
	comm.RegisterPayload(preparePayload{})
	comm.RegisterPayload(prepareResp{})
	comm.RegisterPayload(decisionPayload{})
	comm.RegisterPayload(decisionResp{})
	comm.RegisterPayload(abortPayload{})
	comm.RegisterPayload(pslReadReq{})
	comm.RegisterPayload(pslReadResp{})
	comm.RegisterPayload(pslReleasePayload{})
	comm.RegisterPayload(inquiryPayload{})
	comm.RegisterPayload(inquiryResp{})
	comm.RegisterPayload(comm.RemoteError{})
}
