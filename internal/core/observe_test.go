package core

import (
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

// TestDAGTQueueGaugeDrains pins the enqueue/pop balance of the DAG(T)
// timestamp-hold queue gauge: every Handle increments repl_queue_depth
// {queue="ts"} and every nextSecondary pop must decrement it, so after
// propagation quiesces the gauge returns to zero. (The pop-side decrement
// was missing — the gauge read as an ever-growing backlog — and the
// obscomplete analyzer caught it; this test keeps it fixed.)
func TestDAGTQueueGaugeDrains(t *testing.T) {
	p := placement(t, 2,
		[]model.SiteID{0},
		[][]model.SiteID{{1}})
	s := buildSystem(t, DAGT, p, testParams(), time.Millisecond)
	for i := 1; i <= 5; i++ {
		if err := s.engines[0].Execute([]model.Op{w(0, int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	s.waitValue(t, 1, 0, 5)
	s.quiesce(t)

	// Secondaries flowed, so the gauge was exercised.
	if got := s.collector.Snapshot(2).Secondaries; got == 0 {
		t.Fatal("no secondaries applied; the queue gauge was never exercised")
	}
	// Dummies keep arriving while the system idles, so the gauge can be
	// transiently positive; with a single parent every arrival is popped
	// promptly, so it must keep returning to zero.
	g := s.registry.Gauge("repl_queue_depth",
		obs.Label{Key: "site", Value: "1"},
		obs.Label{Key: "queue", Value: "ts"})
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if g.Value() == 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("ts queue gauge never drained back to zero (stuck at %d): enqueues are not balanced by pops", g.Value())
}
