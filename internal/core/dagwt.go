package core

import (
	"time"

	"repro/internal/comm"
	"repro/internal/contend"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/wal"
	"repro/internal/watch"
)

// dagwtEngine implements the DAG(WT) protocol (§2). Updates travel only
// along the edges of the tree cfg.Tree; every site has (at most) one tree
// parent, so a single FIFO queue holds the incoming secondary
// subtransactions, which are applied and forwarded in receipt order. The
// commit mutex makes "commit, then forward to relevant children" atomic,
// so the forwarding order at a site always equals its commit order.
type dagwtEngine struct {
	base
	queue chan queuedMsg
	prog  *watch.Progress
}

func newDAGWT(cfg *SharedConfig, id model.SiteID, tr comm.Transport) *dagwtEngine {
	e := &dagwtEngine{
		base:  newBase(cfg, DAGWT, id, tr),
		queue: make(chan queuedMsg, 1<<16),
		prog:  cfg.Watch.Queue(id, "fifo"),
	}
	e.recover()
	return e
}

// recover rebuilds the engine's in-flight work from the redo log: applies
// whose forwarding was not marked done are re-sent (receivers
// deduplicate), and unconsumed receipts are re-enqueued in arrival order.
// Re-forwards take fresh pending obligations; re-enqueued receipts
// inherit the ones their original deliveries left unreleased, so no
// pendAdd here.
func (e *dagwtEngine) recover() {
	if e.wal == nil {
		return
	}
	rec := e.wal.Recovered()
	for _, f := range rec.Forwards {
		forwardTree(&e.base, f.Span, f.Writes)
	}
	for _, r := range rec.Receipts {
		e.obs.fifoDepth.Inc()
		e.prog.Push()
		e.queue <- queuedMsg{msg: comm.Message{
			From: r.From, To: e.id, Kind: kindSecondary, Span: r.Span,
			Payload: secondaryPayload{TID: r.TID, TS: r.TS, Writes: r.Writes},
		}}
	}
}

func (e *dagwtEngine) Start() { go e.applier() }

func (e *dagwtEngine) Stop() { e.halt() }

// Execute runs a primary subtransaction: purely local execution under
// strict 2PL, then an atomic commit-and-forward.
func (e *dagwtEngine) Execute(ops []model.Op) error {
	//lint:allow nodeterminism commit-latency stamp for metrics; never branches protocol logic
	start := time.Now()
	tid := e.newTxnID()
	octx := model.SpanContext{TID: tid}
	e.traceCtx(trace.TxnBegin, model.NoSite, octx)
	t := e.tm.Begin(tid)
	if err := e.runLocalOps(t, ops); err != nil {
		e.recAbort(tid, contend.Classify(err))
		return err
	}
	writes := t.Writes()
	e.commitMu.Lock()
	e.armDurable(t, wal.Record{
		Kind: wal.KindApply, TID: tid, Role: wal.RoleOrigin,
		Writes: writes, Forwards: len(writes) > 0, Span: octx,
	})
	err := t.Commit()
	if err == nil {
		e.traceCtx(trace.TxnCommit, model.NoSite, octx)
		e.noteCommitted(writes)
		e.forward(octx, writes)
	}
	e.commitMu.Unlock()
	if err != nil {
		e.recAbort(tid, contend.Classify(err))
		return err
	}
	e.recCommit(tid, start)
	return nil
}

// forward schedules secondary subtransactions at the relevant tree
// children: those whose subtree holds a replica of an updated item. The
// caller holds commitMu.
func (e *dagwtEngine) forward(sc model.SpanContext, writes []model.WriteOp) {
	forwardTree(&e.base, sc, writes)
}

func (e *dagwtEngine) Handle(msg comm.Message) {
	if msg.IsResp {
		e.rpc.HandleResponse(msg)
		return
	}
	switch msg.Kind {
	case kindSecondary:
		if !e.logReceipt(msg) {
			return // fenced mid-crash: dropped unacknowledged, retransmitted
		}
		e.traceCtx(trace.SecondaryEnqueued, msg.From, msg.Span)
		e.recTransport(msg, msg.Span.TID)
		e.obs.fifoDepth.Inc()
		e.prog.Push()
		e.queue <- queuedMsg{msg: msg, at: e.phaseClock()}
	default:
		panic("core: DAG(WT) received unexpected message kind")
	}
}

// applier consumes the FIFO queue: each secondary subtransaction is
// executed to commit (resubmitting after deadlock timeouts, §2) and then
// forwarded onward, preserving receipt order.
func (e *dagwtEngine) applier() {
	for {
		select {
		case q := <-e.queue:
			e.obs.fifoDepth.Dec()
			e.prog.Pop()
			p := q.msg.Payload.(secondaryPayload)
			e.phaseSince(metrics.PhaseQueueWait, q.msg.From, p.TID, q.at)
			if e.applySecondary(p, q.msg.Span) {
				e.pendDone()
			} else {
				return // stopped mid-retry
			}
		case <-e.stop:
			return
		}
	}
}

// applySecondary retries the subtransaction until it commits; it reports
// false only if the engine stopped first. On commit the subtransaction is
// forwarded to the relevant children atomically.
func (e *dagwtEngine) applySecondary(p secondaryPayload, sc model.SpanContext) bool {
	for {
		if e.stopping() {
			return false
		}
		if e.wasApplied(p.TID) {
			// A crash-recovery re-forward duplicated this delivery:
			// consume its receipt without re-applying (exactly-once).
			return e.consumeOnly(p.TID)
		}
		t := e.tm.BeginSecondary(p.TID)
		ok := true
		for _, w := range p.Writes {
			if !e.store.Has(w.Item) {
				continue
			}
			e.simulateOp()
			if err := t.Write(w.Item, w.Value); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			e.recRetry()
			e.retryBackoff()
			continue
		}
		e.commitMu.Lock()
		e.armDurable(t, wal.Record{
			Kind: wal.KindApply, TID: p.TID, Role: wal.RoleSecondary,
			Consumes: true, Forwards: len(p.Writes) > 0,
			Writes: p.Writes, Span: sc,
		})
		err := t.Commit()
		if err == nil {
			e.forward(sc, p.Writes)
		}
		e.commitMu.Unlock()
		if err != nil {
			// A fenced redo log (crash in progress): loop back to the
			// stopping() check. Otherwise unreachable — writes target local
			// copies only.
			e.recRetry()
			e.retryBackoff()
			continue
		}
		e.noteApplied(p.Writes)
		e.recApplied(sc)
		return true
	}
}
