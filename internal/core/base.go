package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/comm"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/storage"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/wal"
)

// base carries the per-site substrate every protocol engine shares: the
// main-memory store holding the site's copies, the strict-2PL lock
// manager, the local transaction manager, the transport endpoints, and the
// commit mutex that makes commit-and-forward atomic (the critical sections
// of §2 and §3.2.2).
type base struct {
	cfg   *SharedConfig
	id    model.SiteID
	proto Protocol

	store *storage.Store
	locks *lock.Manager
	tm    *txn.Manager
	tr    comm.Transport
	rpc   *comm.RPC
	obs   siteObs

	seq atomic.Uint64
	// seqBase offsets newTxnID by the log incarnation (incarnation<<48) so
	// transaction identifiers never repeat across crash restarts.
	seqBase uint64

	// wal is the site's write-ahead redo log; nil runs without durability.
	wal *wal.SiteLog

	// commitMu serializes transaction commits with the scheduling of their
	// secondary subtransactions, so that if Ti commits before Tj at this
	// site, Ti's updates are forwarded before Tj's.
	commitMu sync.Mutex

	stop     chan struct{}
	stopOnce sync.Once
}

func newBase(cfg *SharedConfig, proto Protocol, id model.SiteID, tr comm.Transport) base {
	st := storage.NewStore()
	for _, item := range cfg.Placement.CopiesAt(id) {
		if err := st.Create(item, 0); err != nil {
			panic(fmt.Sprintf("core: duplicate copy at s%d: %v", id, err))
		}
	}
	var lg *wal.SiteLog
	var seqBase uint64
	if cfg.WALs != nil {
		lg = cfg.WALs[id]
	}
	if lg != nil {
		// Rebuild the store image the disk knows — Load installs the
		// replayed version verbatim — and carve out a fresh TxnID range for
		// this incarnation.
		for item, is := range lg.Recovered().Items {
			ver := storage.Version{Value: is.Value, Num: is.Num, Writer: is.Writer}
			if err := st.Load(item, ver); err != nil {
				panic(fmt.Sprintf("core: recovered item not placed at s%d: %v", id, err))
			}
		}
		seqBase = lg.Incarnation() << 48
	}
	lm := lock.NewManager(cfg.Params.DetectDeadlocks)
	lm.SetWoundGrace(cfg.Params.WoundGrace)
	so := newSiteObs(cfg.Obs, id)
	rpc := comm.NewRPC(id, tr)
	rpc.SetLateHook(func(model.SiteID, int) { so.rpcLate.Inc() })
	tm := txn.NewManager(id, st, lm, cfg.Params.LockTimeout, cfg.Recorder)
	tm.SetMetrics(cfg.Metrics)
	if cfg.Trace != nil {
		// Per-transaction lock-wait and apply segments for the critical-path
		// analyzer (internal/contend): the aggregate PhaseSample the manager
		// already takes cannot say whose latency it was.
		tm.SetPhaseTrace(func(p metrics.Phase, tid model.TxnID, d time.Duration) {
			cfg.Trace.RecordPhase(id, model.NoSite, tid, uint8(proto), p.String(), d)
		})
	}
	return base{
		cfg:     cfg,
		id:      id,
		proto:   proto,
		store:   st,
		locks:   lm,
		tm:      tm,
		tr:      tr,
		rpc:     rpc,
		obs:     so,
		seqBase: seqBase,
		wal:     lg,
		stop:    make(chan struct{}),
	}
}

func (b *base) Site() model.SiteID { return b.id }

// Snapshot exposes the site's store contents for convergence checks on a
// quiesced cluster.
func (b *base) Snapshot() map[model.ItemID]int64 { return b.store.Snapshot() }

// newTxnID mints a system-wide unique transaction identifier. The
// incarnation offset keeps identifiers unique across crash restarts.
func (b *base) newTxnID() model.TxnID {
	return model.TxnID{Site: b.id, Seq: b.seqBase + b.seq.Add(1)}
}

// halt closes the stop channel exactly once, so a crash (the cluster's
// OnCrash lifecycle hook) and the end-of-run Stop can both call it. The
// lock manager's counters are published on the way down — the one moment
// they are both final and still reachable.
func (b *base) halt() {
	b.stopOnce.Do(func() {
		b.flushLockStats()
		close(b.stop)
	})
}

// LockHeat returns the site's per-item lock contention accounting, for
// the cluster-wide heat table (internal/contend).
func (b *base) LockHeat() []lock.ItemStats { return b.locks.ItemStats() }

// LockWaitGraph snapshots the site's current wait-for state: every live
// queued lock request, deterministically ordered.
func (b *base) LockWaitGraph() []lock.WaitEdge { return b.locks.WaitGraph() }

// walAppendSync appends one record and waits for the group commit; nil
// without a log. A non-nil error means the record is NOT durable — the
// site is crashing — and the transition the record guards must not be
// externalized.
func (b *base) walAppendSync(rec wal.Record) error {
	if b.wal == nil {
		return nil
	}
	if err := b.wal.Append(rec); err != nil {
		return err
	}
	return b.wal.Sync()
}

// armDurable installs rec as t's log-then-mutate redo record: Commit
// appends and group-commits it before any store mutation.
func (b *base) armDurable(t *txn.Txn, rec wal.Record) {
	if b.wal == nil {
		return
	}
	t.SetDurable(func() error { return b.walAppendSync(rec) })
}

// logReceipt makes an incoming propagation message durable before the
// reliable sublayer acknowledges it (the handler returning is the ack),
// so acknowledged means durable. It reports false when the log is
// fenced: the caller must drop the message unprocessed — it was never
// acknowledged, and the sender retransmits it to the recovered engine.
func (b *base) logReceipt(msg comm.Message) bool {
	if b.wal == nil {
		return true
	}
	rec := wal.Record{Kind: wal.KindReceipt, From: msg.From, MsgKind: msg.Kind, Span: msg.Span}
	switch p := msg.Payload.(type) {
	case secondaryPayload:
		rec.TID, rec.TS, rec.Writes = p.TID, p.TS, p.Writes
	case specialPayload:
		rec.TID, rec.Origin, rec.Writes = p.TID, p.Origin, p.Writes
	}
	return b.walAppendSync(rec) == nil
}

// wasApplied reports whether a subtransaction of tid already durably
// committed here — the exactly-once dedup check for deliveries
// duplicated by crash-recovery re-forwards.
func (b *base) wasApplied(tid model.TxnID) bool {
	return b.wal != nil && b.wal.WasApplied(tid)
}

// consumeOnly durably marks one receipt of tid consumed without an
// apply (a deduplicated duplicate, a failed execution). It reports
// whether the marker is durable; on false the receipt stays unconsumed
// and recovery re-processes it, so the caller must NOT release the
// pending obligation.
func (b *base) consumeOnly(tid model.TxnID) bool {
	return b.walAppendSync(wal.Record{Kind: wal.KindConsumed, TID: tid}) == nil
}

// consumeAndDone writes the durable consumption marker for one receipt
// of tid and then releases its pending obligation. pendDone strictly
// follows durability: if the marker is lost to a fence, the obligation
// is deliberately left outstanding and inherited by recovery, which
// re-processes the receipt and releases it then.
func (b *base) consumeAndDone(tid model.TxnID) {
	if b.consumeOnly(tid) {
		b.pendDone()
	}
}

// walForwarded marks an apply's propagation obligation discharged.
// Append-only, no sync: losing the marker only causes a duplicate
// re-forward at recovery, which receivers deduplicate.
func (b *base) walForwarded(tid model.TxnID) {
	if b.wal == nil {
		return
	}
	//lint:allow senderr the forwarded marker is advisory; losing it only causes a deduplicated re-forward
	_ = b.wal.Append(wal.Record{Kind: wal.KindForwarded, TID: tid})
}

// simulateOp burns the configured per-operation CPU cost. It spins
// (yielding to the scheduler) rather than sleeping: time.Sleep has a
// millisecond-scale floor on many kernels, which would inflate a 200µs
// operation ~6x and poison every lock-contention measurement, whereas
// spinning both hits the target precisely and models what the prototype's
// CPUs actually did — execute, time-shared among the site's threads.
func (b *base) simulateOp() {
	c := b.cfg.Params.OpCost
	if c <= 0 {
		return
	}
	//lint:allow nodeterminism busy-wait simulates CPU cost; only the elapsed duration matters
	end := time.Now().Add(c)
	//lint:allow nodeterminism busy-wait simulates CPU cost; only the elapsed duration matters
	for time.Now().Before(end) {
		runtime.Gosched()
	}
}

// runLocalOps executes a transaction program against local copies under
// strict 2PL. On any failure the transaction has been aborted.
func (b *base) runLocalOps(t *txn.Txn, ops []model.Op) error {
	for _, op := range ops {
		b.simulateOp()
		switch op.Kind {
		case model.OpRead:
			if !b.store.Has(op.Item) {
				t.Abort()
				return fmt.Errorf("core: s%d has no copy of item %d to read", b.id, op.Item)
			}
			_, ver, fromStore, err := t.ReadVersioned(op.Item)
			if err != nil {
				return err
			}
			b.certifyRead(t.ID, op.Item, ver, fromStore)
		case model.OpWrite:
			if !b.cfg.Placement.IsPrimary(b.id, op.Item) {
				t.Abort()
				return fmt.Errorf("core: s%d is not the primary of item %d", b.id, op.Item)
			}
			if err := t.Write(op.Item, op.Value); err != nil {
				return err
			}
		default:
			t.Abort()
			return fmt.Errorf("core: unknown op kind %d", op.Kind)
		}
	}
	return nil
}

// forwardTree schedules secondary subtransactions at the relevant tree
// children (§2): a child is relevant iff it or one of its tree
// descendants holds a copy of an updated item, and it receives exactly
// the writes its subtree can use. The caller holds commitMu so the
// forwarding order matches the site's commit order. in is the causal
// context the forwarding work runs under (the zero-parent origin
// context at the primary, the received message's context at a relay);
// outgoing messages carry its fork, making each hop a child span.
func forwardTree(b *base, in model.SpanContext, writes []model.WriteOp) {
	if len(writes) == 0 {
		return
	}
	out := in.Fork(b.id)
	for _, c := range b.cfg.Tree.Children(b.id) {
		sub := b.cfg.SubtreeItems[c]
		var local []model.WriteOp
		for _, w := range writes {
			if sub[w.Item] {
				local = append(local, w)
			}
		}
		if len(local) == 0 {
			continue
		}
		b.pendAdd(1)
		b.obs.forwarded.Inc()
		b.traceCtx(trace.SecondaryForwarded, c, in)
		b.send(comm.Message{
			From: b.id, To: c, Kind: kindSecondary, Span: out,
			Payload: secondaryPayload{TID: in.TID, Writes: local},
		})
	}
	b.walForwarded(in.TID)
}

// send transmits a message and counts it. One-way protocol traffic is
// stamped so the receiver can attribute the transport phase; the stamp is
// observation-only and never branches protocol logic.
func (b *base) send(msg comm.Message) {
	b.cfg.Metrics.MsgSent(1)
	msg.SentAt = b.phaseClock()
	if err := b.tr.Send(msg); err != nil {
		// Shutdown race: the run is over and the transport is closed.
		return
	}
}

// queuedMsg pairs a queued message with its enqueue stamp so the applier
// that pops it can attribute the queue-wait phase.
type queuedMsg struct {
	msg comm.Message
	at  time.Time
}

// pendAdd/pendDone track in-flight propagation for cluster quiescing.
func (b *base) pendAdd(n int) {
	if b.cfg.Pending != nil {
		b.cfg.Pending.Add(n)
	}
}

func (b *base) pendDone() {
	if b.cfg.Pending != nil {
		b.cfg.Pending.Done()
	}
}

// stopping reports whether Stop was called.
func (b *base) stopping() bool {
	select {
	case <-b.stop:
		return true
	default:
		return false
	}
}

// retryBackoff sleeps briefly between secondary-subtransaction
// resubmissions so a retry storm does not starve the lock holders it
// waits for.
func (b *base) retryBackoff() {
	d := b.cfg.Params.LockTimeout / 10
	if d < 100*time.Microsecond {
		d = 100 * time.Microsecond
	}
	select {
	case <-time.After(d):
	case <-b.stop:
	}
}
