package core

import (
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/model"
)

// TestNaiveLazyDirectFanout: NaiveLazy sends one message per replica
// site, straight from the origin — no tree relays.
func TestNaiveLazyDirectFanout(t *testing.T) {
	// Item 0 primary at s0, replicas at s1 AND s2 (skipping s1 would be
	// impossible under tree routing; naive goes direct).
	p := placement(t, 3, []model.SiteID{0}, [][]model.SiteID{{1, 2}})
	s := buildSystem(t, NaiveLazy, p, testParams(), time.Millisecond)
	if err := s.engines[0].Execute([]model.Op{w(0, 9)}); err != nil {
		t.Fatal(err)
	}
	s.waitValue(t, 1, 0, 9)
	s.waitValue(t, 2, 0, 9)
	s.quiesce(t)
	rep := s.collector.Snapshot(3)
	if rep.Messages != 2 {
		t.Errorf("messages = %d, want exactly 2 (direct fan-out)", rep.Messages)
	}
}

// TestNaiveLazySecondaryRetries: like the serializable protocols, naive
// application must survive lock conflicts by resubmitting.
func TestNaiveLazySecondaryRetries(t *testing.T) {
	p := placement(t, 2, []model.SiteID{0}, [][]model.SiteID{{1}})
	s := buildSystem(t, NaiveLazy, p, testParams(), 0)
	e1 := s.engines[1].(*naiveEngine)
	blocker := e1.tm.Begin(e1.newTxnID())
	if _, err := blocker.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := s.engines[0].Execute([]model.Op{w(0, 3)}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * testParams().LockTimeout)
	if got := s.value(t, 1, 0); got != 0 {
		t.Fatalf("applied through a held lock: %d", got)
	}
	blocker.Abort()
	s.waitValue(t, 1, 0, 3)
	if rep := s.collector.Snapshot(2); rep.Retries == 0 {
		t.Error("no retries counted")
	}
}

// TestNaiveLazyUnreplicatedWriteSendsNothing: a write to a local-only
// item never touches the network.
func TestNaiveLazyUnreplicatedWriteSendsNothing(t *testing.T) {
	p := placement(t, 2, []model.SiteID{0}, [][]model.SiteID{nil})
	s := buildSystem(t, NaiveLazy, p, testParams(), 0)
	if err := s.engines[0].Execute([]model.Op{w(0, 5)}); err != nil {
		t.Fatal(err)
	}
	s.quiesce(t)
	if rep := s.collector.Snapshot(2); rep.Messages != 0 {
		t.Errorf("messages = %d, want 0", rep.Messages)
	}
}

// TestEngineSiteAccessor covers the trivial but public Site method for
// every engine type.
func TestEngineSiteAccessor(t *testing.T) {
	p := example41Placement(t)
	for _, proto := range []Protocol{PSL, BackEdge, NaiveLazy} {
		s := buildSystem(t, proto, p, testParams(), 0)
		for i, e := range s.engines {
			if e.Site() != model.SiteID(i) {
				t.Errorf("%v engine %d reports site %d", proto, i, e.Site())
			}
		}
	}
}

// TestRegisterPayloadsIsIdempotent: TCP deployments call it at startup;
// calling twice must not panic (gob re-registration of identical types).
func TestRegisterPayloadsIsIdempotent(t *testing.T) {
	RegisterPayloads()
	RegisterPayloads()
}

// TestHandlePanicsOnForeignKind: protocol engines fail loudly on message
// kinds they do not speak, instead of silently dropping them.
func TestHandlePanicsOnForeignKind(t *testing.T) {
	p := example11Placement(t)
	for _, proto := range []Protocol{DAGWT, DAGT, NaiveLazy, PSL} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			s := buildSystem(t, proto, p, testParams(), 0)
			defer func() {
				if recover() == nil {
					t.Errorf("%v accepted an unknown message kind", proto)
				}
			}()
			s.engines[0].Handle(comm.Message{From: 1, To: 0, Kind: 9999})
		})
	}
}
