package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/contend"
	"repro/internal/lock"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/watch"
)

// pslEngine implements the lazy primary-site-locking baseline of §5.1 (a
// variant of the lazy-master approach of Gray et al.): reads and updates
// of locally-primary items are handled locally; a read of a replica takes
// a shared lock on the item at its *primary* site and the current value
// is shipped back with the lock grant. Updates never propagate — a remote
// site always sees the latest value because it always reads the primary —
// and all locks (local and remote) are released at commit.
type pslEngine struct {
	base

	// reads is the site's remote-read service queue. Like the lazy
	// protocols' single secondary applier, one server goroutine works it:
	// a site is one database instance, and remote requests contend for it
	// the way they did for the prototype's DataBlitz server.
	reads chan queuedMsg

	// released tombstones transactions whose remote locks were already
	// released, so a lock granted to a late-racing read request is not
	// leaked (the release and the request travel on the same FIFO edge,
	// but the request is served asynchronously). The map grows with the
	// number of remote transactions that ever touched this site — bounded
	// by the run length, which matches the model's finite workloads; a
	// production system would age entries out.
	relMu    sync.Mutex
	released map[model.TxnID]bool // repl:guardedby(relMu)

	prog *watch.Progress
}

func newPSL(cfg *SharedConfig, id model.SiteID, tr comm.Transport) *pslEngine {
	e := &pslEngine{
		base:     newBase(cfg, PSL, id, tr),
		reads:    make(chan queuedMsg, 1<<16),
		released: make(map[model.TxnID]bool),
		prog:     cfg.Watch.Queue(id, "reads"),
	}
	e.recover()
	return e
}

// recover reinstates the remote-lock protocol state the disk knows:
// release tombstones, and the shared locks granted to still-outstanding
// remote readers — re-acquired on the fresh lock manager so a post-crash
// writer cannot slip under a reader the pre-crash primary promised.
//
//lint:allow guardedby recovery runs inside newPSL before Start; the read server that shares the released map has not been spawned
func (e *pslEngine) recover() {
	if e.wal == nil {
		return
	}
	rec := e.wal.Recovered()
	for tid := range rec.Released {
		e.released[tid] = true
	}
	for tid, items := range rec.RLocks {
		for _, it := range items {
			// Cannot fail: the manager is fresh and these are shared locks.
			_ = e.locks.Acquire(tid, it, lock.Shared, e.cfg.Params.LockTimeout)
		}
	}
}

func (e *pslEngine) Start() { go e.readServer() }

func (e *pslEngine) Stop() { e.halt() }

func (e *pslEngine) readServer() {
	for {
		select {
		case q := <-e.reads:
			e.obs.readsDepth.Dec()
			e.prog.Pop()
			e.serveRead(q.msg, q.at)
		case <-e.stop:
			return
		}
	}
}

func (e *pslEngine) Execute(ops []model.Op) error {
	//lint:allow nodeterminism commit-latency stamp for metrics; never branches protocol logic
	start := time.Now()
	tid := e.newTxnID()
	octx := model.SpanContext{TID: tid}
	e.traceCtx(trace.TxnBegin, model.NoSite, octx)
	t := e.tm.Begin(tid)
	remotes := make(map[model.SiteID]bool)

	fail := func(err error, reason contend.AbortReason) error {
		t.Abort()
		e.releaseRemotes(octx, remotes)
		e.recAbort(tid, reason)
		return err
	}

	for _, op := range ops {
		e.simulateOp()
		switch op.Kind {
		case model.OpRead:
			primary := e.cfg.Placement.Primary[op.Item]
			if primary == e.id {
				if _, err := t.Read(op.Item); err != nil {
					e.releaseRemotes(octx, remotes)
					e.recAbort(tid, contend.Classify(err))
					return err
				}
				// Local primary read: the primary copy IS the latest version.
				e.certifyPrimaryRead(tid)
				continue
			}
			// Replica read: shared lock + value ship from the primary.
			e.cfg.Metrics.RemoteRead()
			e.obs.remoteReads.Inc()
			e.traceCtx(trace.RemoteRead, primary, octx)
			resp, err := e.rpc.CallSpan(primary, kindPSLRead, pslReadReq{TID: tid, Item: op.Item}, e.cfg.Params.RPCTimeout, octx.Fork(e.id))
			if err != nil {
				// The lock may still be granted remotely after our timeout;
				// the release below cancels or undoes it.
				remotes[primary] = true
				// The remote error crossed an RPC boundary, which flattens
				// the wrapped chain: a failed remote read IS a lock wait
				// that outlasted its deadline (the primary's lock timeout
				// or the RPC timeout bounding it), so classify it here.
				return fail(fmt.Errorf("%w: remote r[%d] at s%d: %v", txn.ErrAborted, op.Item, primary, err),
					contend.ReasonLockTimeout)
			}
			remotes[primary] = true
			rr := resp.(pslReadResp)
			t.ObserveRemoteRead(primary, op.Item, rr.Version)
			// The reply shipped the primary copy's current value: fresh by
			// construction, whatever the local replica's lag.
			e.certifyPrimaryRead(tid)
		case model.OpWrite:
			if !e.cfg.Placement.IsPrimary(e.id, op.Item) {
				// Workload misconfiguration, not contention; no reason fits
				// and none should: a nonzero unknown count points here.
				return fail(fmt.Errorf("core: s%d is not the primary of item %d", e.id, op.Item),
					contend.ReasonUnknown)
			}
			if err := t.Write(op.Item, op.Value); err != nil {
				e.releaseRemotes(octx, remotes)
				e.recAbort(tid, contend.Classify(err))
				return err
			}
		}
	}
	e.armDurable(t, wal.Record{
		Kind: wal.KindApply, TID: tid, Role: wal.RoleOrigin,
		Writes: t.Writes(), Span: octx,
	})
	if err := t.Commit(); err != nil {
		e.releaseRemotes(octx, remotes)
		e.recAbort(tid, contend.Classify(err))
		return err
	}
	e.traceCtx(trace.TxnCommit, model.NoSite, octx)
	e.releaseRemotes(octx, remotes)
	e.recCommit(tid, start)
	return nil
}

func (e *pslEngine) releaseRemotes(sc model.SpanContext, remotes map[model.SiteID]bool) {
	// Release in site order: the transport draws its seeded jitter in Send
	// order, so map-ordered sends would perturb schedule replay.
	sites := make([]model.SiteID, 0, len(remotes))
	for s := range remotes {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	out := sc.Fork(e.id)
	for _, s := range sites {
		e.send(comm.Message{
			From: e.id, To: s, Kind: kindPSLRelease, Span: out,
			Payload: pslReleasePayload{TID: sc.TID},
		})
	}
}

func (e *pslEngine) Handle(msg comm.Message) {
	if msg.IsResp {
		e.rpc.HandleResponse(msg)
		return
	}
	switch msg.Kind {
	case kindPSLRead:
		// Lock waits block; serve through the site's read server, off the
		// transport goroutine.
		e.obs.readsDepth.Inc()
		e.prog.Push()
		e.reads <- queuedMsg{msg: msg, at: e.phaseClock()}
	case kindPSLRelease:
		tid := msg.Payload.(pslReleasePayload).TID
		e.recTransport(msg, tid)
		// The tombstone must be durable before this delivery is
		// acknowledged (the handler returning is the ack): a release, once
		// acked, is never retransmitted, and losing it would leak the
		// reader's shared lock at the recovered primary forever.
		if e.walAppendSync(wal.Record{Kind: wal.KindRUnlock, TID: tid}) != nil {
			return // fenced mid-crash: dropped unacknowledged, retransmitted
		}
		go e.serveRelease(tid)
	default:
		panic("core: PSL received unexpected message kind")
	}
}

// serveRead grants a shared lock on the primary copy and ships the
// current value (§5.1); enq is the request's service-queue entry stamp.
func (e *pslEngine) serveRead(msg comm.Message, enq time.Time) {
	req := msg.Payload.(pslReadReq)
	e.phaseSince(metrics.PhaseQueueWait, msg.From, req.TID, enq)
	if e.isReleased(req.TID) {
		e.rpc.ReplyError(msg, fmt.Errorf("transaction already released"))
		return
	}
	// Serving a remote read is real work at the primary (hash lookup, lock
	// management, marshaling the value for shipment): it costs one
	// operation, like the reader's own operations do.
	e.simulateOp()
	lockStart := e.phaseClock()
	err := e.locks.Acquire(req.TID, req.Item, lock.Shared, e.cfg.Params.LockTimeout)
	e.phaseSince(metrics.PhaseLockWait, msg.From, req.TID, lockStart)
	if err != nil {
		e.rpc.ReplyError(msg, err)
		return
	}
	if e.isReleased(req.TID) {
		// The caller aborted while we waited; undo the grant.
		e.locks.ReleaseAll(req.TID)
		e.rpc.ReplyError(msg, fmt.Errorf("transaction aborted during lock wait"))
		return
	}
	// The grant must be durable before the reply externalizes it, so a
	// crashed-and-recovered primary still honors the outstanding reader.
	if e.walAppendSync(wal.Record{Kind: wal.KindRLock, TID: req.TID, Item: req.Item}) != nil {
		e.locks.ReleaseAll(req.TID)
		return // fenced mid-crash: no reply; the caller times out and aborts
	}
	ver, err := e.store.Read(req.Item)
	if err != nil {
		e.locks.ReleaseAll(req.TID)
		e.rpc.ReplyError(msg, err)
		return
	}
	e.rpc.Reply(msg, pslReadResp{Value: ver.Value, Version: ver.Num})
}

func (e *pslEngine) serveRelease(tid model.TxnID) {
	e.relMu.Lock()
	e.released[tid] = true
	e.relMu.Unlock()
	e.locks.ReleaseAll(tid)
}

func (e *pslEngine) isReleased(tid model.TxnID) bool {
	e.relMu.Lock()
	defer e.relMu.Unlock()
	return e.released[tid]
}
