package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

// driveExample11 replays the interleaving of Example 1.1 against any
// protocol: T1 at s0 updates a; T2 at s1 reads a and writes b after T1's
// update reached s1; T3 at s2 reads a and b after T2's update reached s2.
// The direct edge s0→s2 is artificially slow, so an indiscriminate
// protocol delivers T2's update to s2 before T1's.
func driveExample11(t *testing.T, proto Protocol) *system {
	t.Helper()
	s := buildSystem(t, proto, example11Placement(t), testParams(), time.Millisecond)
	s.transport.SetEdgeLatency(0, 2, 120*time.Millisecond)

	// T1 at s0: w(a).
	if err := s.engines[0].Execute([]model.Op{w(0, 11)}); err != nil {
		t.Fatalf("T1: %v", err)
	}
	// Wait until s1 applied T1's update, then run T2 at s1: r(a) w(b).
	s.waitValue(t, 1, 0, 11)
	if err := s.engines[1].Execute([]model.Op{r(0), w(1, 22)}); err != nil {
		t.Fatalf("T2: %v", err)
	}
	// Wait until s2 applied T2's update to b, then run T3 at s2: r(a) r(b).
	s.waitValue(t, 2, 1, 22)
	if err := s.engines[2].Execute([]model.Op{r(0), r(1)}); err != nil {
		t.Fatalf("T3: %v", err)
	}
	s.quiesce(t)
	return s
}

// TestExample11NaiveLazyIsNotSerializable is the negative control: the
// indiscriminate lazy propagation of §1.2 serializes T1 before T2 at s2
// but T2 before T1 at s3, and the checker must catch the cycle.
func TestExample11NaiveLazyIsNotSerializable(t *testing.T) {
	s := driveExample11(t, NaiveLazy)
	if err := s.recorder.CheckSerializable(); err == nil {
		t.Fatal("NaiveLazy produced a serializable execution; the Example 1.1 anomaly did not reproduce")
	} else {
		t.Logf("anomaly reproduced: %v", err)
	}
}

// TestExample11DAGWTSerializable: DAG(WT) routes T1's update through
// s1's queue, so it reaches s2 before T2's — no anomaly (§2).
func TestExample11DAGWTSerializable(t *testing.T) {
	s := driveExample11(t, DAGWT)
	if err := s.recorder.CheckSerializable(); err != nil {
		t.Fatalf("DAG(WT) allowed the anomaly: %v", err)
	}
	// T3 must have seen BOTH updates (T1 is serialized before T2 at s2).
	if got := s.value(t, 2, 0); got != 11 {
		t.Errorf("s2 copy of a = %d, want 11", got)
	}
}

// TestExample11DAGTSerializable: DAG(T) delays T2's secondary at s2 until
// T1's (whose timestamp is a prefix of T2's) has committed (§3.2.3).
func TestExample11DAGTSerializable(t *testing.T) {
	s := driveExample11(t, DAGT)
	if err := s.recorder.CheckSerializable(); err != nil {
		t.Fatalf("DAG(T) allowed the anomaly: %v", err)
	}
	if got := s.value(t, 2, 0); got != 11 {
		t.Errorf("s2 copy of a = %d, want 11", got)
	}
}

// TestExample41BackEdgeSerializable replays the cyclic-copy-graph race of
// Example 4.1 many times: T1 at s0 reads b and writes a while T2 at s1
// reads a and writes b. Under the BackEdge protocol one of them (the one
// with a backedge subtransaction) may abort on the global deadlock, but
// the execution must never be non-serializable.
func TestExample41BackEdgeSerializable(t *testing.T) {
	p := example41Placement(t)
	params := testParams()
	params.PrepareTimeout = 120 * time.Millisecond
	s := buildSystem(t, BackEdge, p, params, 500*time.Microsecond)

	commits, aborts := 0, 0
	for round := 0; round < 15; round++ {
		var wg sync.WaitGroup
		var err0, err1 error
		wg.Add(2)
		go func() {
			defer wg.Done()
			err0 = s.engines[0].Execute([]model.Op{r(1), w(0, int64(100+round))})
		}()
		go func() {
			defer wg.Done()
			err1 = s.engines[1].Execute([]model.Op{r(0), w(1, int64(200+round))})
		}()
		wg.Wait()
		for _, err := range []error{err0, err1} {
			if err != nil {
				aborts++
			} else {
				commits++
			}
		}
	}
	s.quiesce(t)
	if err := s.recorder.CheckSerializable(); err != nil {
		t.Fatalf("BackEdge allowed a non-serializable execution: %v", err)
	}
	if commits == 0 {
		t.Error("no transaction ever committed across 15 rounds")
	}
	t.Logf("example 4.1 x15: %d commits, %d aborts", commits, aborts)
	// After quiescing, replicas converge.
	if a0, a1 := s.value(t, 0, 0), s.value(t, 1, 0); a0 != a1 {
		t.Errorf("item a diverged: s0=%d s1=%d", a0, a1)
	}
	if b0, b1 := s.value(t, 0, 1), s.value(t, 1, 1); b0 != b1 {
		t.Errorf("item b diverged: s0=%d s1=%d", b0, b1)
	}
}
