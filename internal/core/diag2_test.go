package core

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/txn"
	"repro/internal/workload"
)

func TestDiagFig3bPoint(t *testing.T) {
	wl := workload.Default()
	wl.TxnsPerThread = 40
	wl.BackedgeProb = 1
	wl.ReplicationProb = 0.5
	wl.ReadTxnProb = 0
	wl.ReadOpProb = 0.5
	p, err := wl.GeneratePlacement()
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.OpCost = 50 * time.Microsecond
	s := buildSystem(t, BackEdge, p, params, 150*time.Microsecond)

	var wg sync.WaitGroup
	var mu sync.Mutex
	kinds := map[string]int{}
	commits := 0
	for site := 0; site < wl.Sites; site++ {
		for th := 0; th < wl.ThreadsPerSite; th++ {
			wg.Add(1)
			go func(site, th int) {
				defer wg.Done()
				gen := workload.NewTxnGen(wl, p, model.SiteID(site), int64(site*100+th))
				for i := 0; i < wl.TxnsPerThread; i++ {
					err := s.engines[site].Execute(gen.Next())
					mu.Lock()
					switch {
					case err == nil:
						commits++
					case !errors.Is(err, txn.ErrAborted):
						t.Errorf("bad: %v", err)
					case strings.Contains(err.Error(), "round-trip"):
						kinds["prepare-timeout"]++
					case strings.Contains(err.Error(), "wounded"):
						kinds["wounded"]++
					case strings.Contains(err.Error(), "2PC"):
						kinds["2pc"]++
					default:
						kinds["lock-timeout"]++
					}
					mu.Unlock()
				}
			}(site, th)
		}
	}
	wg.Wait()
	s.quiesce(t)
	rep := s.collector.Snapshot(wl.Sites)
	t.Logf("commits=%d kinds=%v", commits, kinds)
	t.Logf("rep=%v prop=%v/%v retries=%d", rep, rep.MeanPropDelay, rep.MaxPropDelay, rep.Retries)
}
