package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/model"
	"repro/internal/txn"
	"repro/internal/workload"
)

// TestDiagAbortSources is a diagnostic (run with -v) that reproduces a
// harness point inside the core package so the lock-manager statistics
// are visible: it reports how many aborts are local deadlock timeouts vs
// backedge-wait timeouts.
func TestDiagAbortSources(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	wl := workload.Default()
	wl.TxnsPerThread = 25
	wl.BackedgeProb = 0.0
	p, err := wl.GeneratePlacement()
	if err != nil {
		t.Fatal(err)
	}
	params := DefaultParams()
	params.OpCost = 50 * time.Microsecond
	s := buildSystem(t, BackEdge, p, params, 150*time.Microsecond)

	var wg sync.WaitGroup
	var mu sync.Mutex
	commits, aborts, backedgeAborts := 0, 0, 0
	for site := 0; site < wl.Sites; site++ {
		for th := 0; th < wl.ThreadsPerSite; th++ {
			wg.Add(1)
			go func(site, th int) {
				defer wg.Done()
				gen := workload.NewTxnGen(wl, p, model.SiteID(site), int64(site*100+th))
				for i := 0; i < wl.TxnsPerThread; i++ {
					err := s.engines[site].Execute(gen.Next())
					mu.Lock()
					if err == nil {
						commits++
					} else if errors.Is(err, txn.ErrAborted) {
						aborts++
						if errStr := err.Error(); len(errStr) > 0 && containsStr(errStr, "backedge round-trip") {
							backedgeAborts++
						}
					}
					mu.Unlock()
				}
			}(site, th)
		}
	}
	wg.Wait()
	s.quiesce(t)
	var timeouts, waits, acquired uint64
	var waitTime time.Duration
	for _, e := range s.engines {
		var st = lockStats(e)
		timeouts += st.Timeouts
		waits += st.Waited
		acquired += st.Acquired
		waitTime += st.WaitTime
	}
	rep := s.collector.Snapshot(wl.Sites)
	t.Logf("commits=%d aborts=%d (backedge-wait=%d, lock-timeout=%d)", commits, aborts, backedgeAborts, aborts-backedgeAborts)
	t.Logf("locks: acquired=%d waits=%d timeouts=%d avgWait=%v", acquired, waits, timeouts, time.Duration(int64(waitTime)/int64(max64(waits, 1))))
	t.Logf("report: %v  prop mean/max=%v/%v retries=%d", rep, rep.MeanPropDelay, rep.MaxPropDelay, rep.Retries)
}

func lockStats(e Engine) lock.Stats {
	switch v := e.(type) {
	case *dagwtEngine:
		return v.locks.Stats()
	case *dagtEngine:
		return v.locks.Stats()
	case *backedgeEngine:
		return v.locks.Stats()
	case *pslEngine:
		return v.locks.Stats()
	case *naiveEngine:
		return v.locks.Stats()
	}
	return lock.Stats{}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
