package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/contend"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/twopc"
	"repro/internal/txn"
	"repro/internal/wal"
	"repro/internal/watch"
)

// backedgeEngine implements the BackEdge protocol (§4.1), the hybrid that
// makes arbitrary (cyclic) copy graphs serializable. It behaves exactly
// like DAG(WT) for transactions whose updates stay inside the DAG; a
// transaction that must propagate along backedges — i.e. to replica sites
// that are its tree *ancestors* — runs the eager arm:
//
//  1. keep the primary's locks; send a backedge subtransaction directly to
//     the farthest ancestor replica site si1;
//  2. si1 executes it (holding locks, not committing) and relays a
//     "special" secondary subtransaction down the tree path toward the
//     origin; every backedge site on the path executes it the same way,
//     every other path site just forwards it, all in FIFO queue order;
//  3. when the special reaches the origin behind all earlier secondaries,
//     the primary and all backedge subtransactions commit atomically via
//     two-phase commit;
//  4. only then do the remaining (descendant) replicas receive normal lazy
//     DAG(WT) secondaries.
//
// Global deadlocks (Example 4.1) surface as the origin waiting too long
// for its special to come home; after PrepareTimeout the origin aborts,
// notifying the backedge sites so they release their locks.
type backedgeEngine struct {
	base
	queue chan queuedMsg
	prog  *watch.Progress

	table *twopc.Table
	// decisions is this site's coordinator-side stable decision record:
	// every 2PC outcome (and every unilateral pre-2PC abort) for
	// transactions originating here, written before participants learn it.
	// Participants stuck in prepared after a lost decision message or a
	// coordinator crash recover by inquiring against it (§4.1 step 3's
	// atomic commitment, completed with the recovery path classic 2PC
	// requires once sites can actually crash).
	decisions *twopc.DecisionLog

	mu       sync.Mutex
	prepared map[model.TxnID]*pendingBE   // executed backedge subtxns awaiting the decision // repl:guardedby(mu)
	waiters  map[model.TxnID]*originState // origin-side transactions awaiting their special // repl:guardedby(mu)
}

// pendingBE is a participant-side executed backedge subtransaction
// holding its locks until the 2PC decision: the live transaction, the
// coordinator to ask if the decision goes missing, and when it was
// registered (to know when waiting has gone on suspiciously long).
type pendingBE struct {
	t      *txn.Txn
	origin model.SiteID
	since  time.Time
	// sc is the causal context the subtransaction executed under; the
	// decision events are attributed to it no matter which path (phase 2
	// or inquiry recovery) delivers the outcome.
	sc model.SpanContext
	// writes is the full payload write set, kept so the commit-decision
	// redo record carries what recovery needs to replay it.
	writes []model.WriteOp
}

// originState synchronizes the origin's Execute goroutine with the FIFO
// applier: the applier signals arrival of the special and then blocks
// until the origin resolves the transaction, preserving the FIFO commit
// order of §2 across the eager commit.
type originState struct {
	arrived chan struct{}
	done    chan struct{}
}

func newBackEdge(cfg *SharedConfig, id model.SiteID, tr comm.Transport) *backedgeEngine {
	e := &backedgeEngine{
		base:      newBase(cfg, BackEdge, id, tr),
		queue:     make(chan queuedMsg, 1<<16),
		prog:      cfg.Watch.Queue(id, "fifo"),
		table:     twopc.NewTable(),
		decisions: twopc.NewDecisionLog(),
		prepared:  make(map[model.TxnID]*pendingBE),
		waiters:   make(map[model.TxnID]*originState),
	}
	e.recover()
	// The watchdog's pending-2PC probe: how many executed backedge
	// subtransactions sit holding locks awaiting a decision, and the
	// oldest one (a hung decision shows up as its age climbing).
	cfg.Watch.RegisterPending(id, func() watch.PendingStatus {
		e.mu.Lock()
		defer e.mu.Unlock()
		st := watch.PendingStatus{Count: len(e.prepared)}
		first := true
		for tid, p := range e.prepared {
			if first || p.since.Before(st.OldestSince) {
				st.Oldest, st.OldestSince, first = tid, p.since, false
			}
		}
		return st
	})
	return e
}

// recover rebuilds the BackEdge protocol state the disk knows, in
// dependency order: durable decisions first (inquiries answer from
// them), then in-doubt prepared entries (re-executed holding locks,
// inheriting their pending obligations), then eager dispatches (an
// undecided one is presumed aborted — made durable so participant
// inquiries find it; a decided-commit one whose local apply is missing
// is redone), then unmarked forwards, then unconsumed receipts.
//
//lint:allow guardedby recovery runs inside newBackEdge before Start; no dispatcher or inquiry sweeper shares the prepared map yet
func (e *backedgeEngine) recover() {
	if e.wal == nil {
		return
	}
	e.decisions.SetSink(func(tid model.TxnID, commit bool) error {
		return e.walAppendSync(wal.Record{Kind: wal.KindDecision, TID: tid, Commit: commit})
	})
	rec := e.wal.Recovered()
	for tid, commit := range rec.Decisions {
		e.decisions.Seed(tid, commit)
	}
	for tid, pe := range rec.Prepared {
		t := e.tm.BeginSecondary(tid)
		held := true
		for _, w := range pe.Writes {
			if !e.store.Has(w.Item) {
				continue
			}
			if err := t.Write(w.Item, w.Value); err != nil {
				held = false // unreachable: the lock manager is fresh
				break
			}
		}
		if !held {
			t.Abort()
			continue
		}
		_ = e.table.Begin(tid)
		//lint:allow nodeterminism since drives the wall-clock inquiry sweep, not protocol ordering
		e.prepared[tid] = &pendingBE{t: t, origin: pe.Origin, since: time.Now(), sc: pe.Span, writes: pe.Writes}
		// No pendAdd: the entry inherits the pending obligation its
		// pre-crash registration took; the decision releases it.
	}
	for tid, ee := range rec.Eager {
		commit, known := rec.Decisions[tid]
		switch {
		case !known:
			// Presumed abort: the origin crashed before deciding. A sink
			// failure here can only mean the fresh log is itself broken;
			// inquiries then still see "undecided", which reads as abort.
			_ = e.decisions.Record(tid, false)
		case commit:
			e.redoEager(tid, ee)
		}
	}
	for _, f := range rec.Forwards {
		forwardTree(&e.base, f.Span, f.Writes)
	}
	for _, r := range rec.Receipts {
		switch r.MsgKind {
		case kindSecondary:
			e.obs.fifoDepth.Inc()
			e.prog.Push()
			e.queue <- queuedMsg{msg: comm.Message{
				From: r.From, To: e.id, Kind: kindSecondary, Span: r.Span,
				Payload: secondaryPayload{TID: r.TID, Writes: r.Writes},
			}}
		case kindSpecial:
			e.obs.fifoDepth.Inc()
			e.prog.Push()
			e.queue <- queuedMsg{msg: comm.Message{
				From: r.From, To: e.id, Kind: kindSpecial, Span: r.Span,
				Payload: specialPayload{TID: r.TID, Origin: r.Origin, Writes: r.Writes},
			}}
		case kindBackedgeExec:
			go e.execBackedge(specialPayload{TID: r.TID, Origin: r.Origin, Writes: r.Writes}, r.Span)
		}
	}
}

// redoEager re-runs a decided-commit eager origin commit whose local
// apply was lost with the heap: log the apply first, then install the
// writes and re-send the lazy fan-out. The participants commit their
// halves on the durable decision; this is the origin's half of that
// atomicity, finished by recovery instead of the crashed goroutine.
func (e *backedgeEngine) redoEager(tid model.TxnID, ee wal.EagerEntry) {
	rec := wal.Record{
		Kind: wal.KindApply, TID: tid, Role: wal.RoleOrigin,
		Writes: ee.Writes, Forwards: len(ee.Writes) > 0, Span: ee.Span,
	}
	if e.walAppendSync(rec) != nil {
		return
	}
	for _, w := range ee.Writes {
		if !e.store.Has(w.Item) {
			continue
		}
		ver, err := e.store.Apply(w.Item, w.Value, tid)
		if err != nil {
			continue
		}
		e.cfg.Recorder.Write(e.id, w.Item, ver.Num, tid)
	}
	forwardTree(&e.base, ee.Span, ee.Writes)
}

func (e *backedgeEngine) Start() {
	go e.applier()
	go e.inquirer()
}

func (e *backedgeEngine) Stop() { e.halt() }

// backedgeTargets returns the replica sites of the written items that are
// tree ancestors of this site — the sites si1..sij of §4.1 — ordered
// farthest-first (si1 has the smallest tree depth).
func (e *backedgeEngine) backedgeTargets(writes []model.WriteOp) []model.SiteID {
	seen := make(map[model.SiteID]bool)
	var out []model.SiteID
	for _, w := range writes {
		for _, r := range e.cfg.Placement.ReplicaSites(w.Item) {
			if !seen[r] && e.cfg.Tree.IsAncestor(r, e.id) {
				seen[r] = true
				out = append(out, r)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return e.cfg.Tree.Depth(out[i]) < e.cfg.Tree.Depth(out[j]) })
	return out
}

func (e *backedgeEngine) Execute(ops []model.Op) error {
	//lint:allow nodeterminism commit-latency stamp for metrics; never branches protocol logic
	start := time.Now()
	tid := e.newTxnID()
	octx := model.SpanContext{TID: tid}
	e.traceCtx(trace.TxnBegin, model.NoSite, octx)
	t := e.tm.Begin(tid)
	if err := e.runLocalOps(t, ops); err != nil {
		e.recAbort(tid, contend.Classify(err))
		return err
	}
	writes := t.Writes()
	targets := e.backedgeTargets(writes)
	if len(targets) == 0 {
		// Pure DAG(WT) path (§4.1: such transactions execute exactly as
		// they would under DAG(WT)).
		e.commitMu.Lock()
		e.armDurable(t, wal.Record{
			Kind: wal.KindApply, TID: tid, Role: wal.RoleOrigin,
			Writes: writes, Forwards: len(writes) > 0, Span: octx,
		})
		err := t.Commit()
		if err == nil {
			e.traceCtx(trace.TxnCommit, model.NoSite, octx)
			e.noteCommitted(writes)
			e.forward(octx, writes)
		}
		e.commitMu.Unlock()
		if err != nil {
			e.recAbort(tid, contend.Classify(err))
			return err
		}
		e.recCommit(tid, start)
		return nil
	}

	// Eager arm. The dispatch must be durable before the execute message
	// can exist: at recovery an undecided eager start is presumed aborted
	// (made durable for participant inquiries), and a decided-commit one
	// whose local apply is missing is redone from this record.
	if werr := e.walAppendSync(wal.Record{
		Kind: wal.KindEagerStart, TID: tid, Writes: writes, Span: octx,
	}); werr != nil {
		t.Abort()
		e.recAbort(tid, contend.ReasonWALFence)
		return fmt.Errorf("core: %v aborted: %w: %w", tid, txn.ErrAborted, werr)
	}

	// Register for the special's homecoming, then launch the backedge
	// subtransaction at the farthest ancestor.
	st := &originState{arrived: make(chan struct{}), done: make(chan struct{})}
	e.mu.Lock()
	e.waiters[tid] = st
	e.mu.Unlock()
	e.obs.eagerDepth.Inc()
	defer close(st.done)

	// While parked on the round-trip this transaction is the designated
	// deadlock victim: if a secondary subtransaction blocks on one of its
	// locks it is wounded and aborts instead of stalling the site's FIFO
	// queue — §2's fair victim selection, and exactly how Example 4.1
	// resolves (the waiting primary is the one aborted).
	wound := make(chan struct{}, 1)
	e.locks.SetVulnerable(tid, func() {
		select {
		case wound <- struct{}{}:
		default:
		}
	})

	e.pendAdd(1)
	e.obs.forwarded.Inc()
	e.traceCtx(trace.SecondaryForwarded, targets[0], octx)
	e.send(comm.Message{
		From: e.id, To: targets[0], Kind: kindBackedgeExec, Span: octx.Fork(e.id),
		Payload: specialPayload{TID: tid, Origin: e.id, Writes: writes},
	})

	abortEager := func(why string, reason contend.AbortReason) error {
		e.locks.ClearVulnerable(tid)
		e.mu.Lock()
		delete(e.waiters, tid)
		e.mu.Unlock()
		e.obs.eagerDepth.Dec()
		// Log the unilateral abort first: a backedge site whose abort
		// notification goes missing will inquire, and must find it. A sink
		// failure means the site is crashing — recovery then finds the
		// undecided eager start and records the same presumed abort.
		_ = e.decisions.Record(tid, false)
		t.Abort()
		e.abortBackedges(octx, targets)
		e.recAbort(tid, reason)
		return fmt.Errorf("core: %v aborted %s: %w", tid, why, txn.ErrAborted)
	}

	timer := time.NewTimer(e.cfg.Params.PrepareTimeout)
	defer timer.Stop()
	select {
	case <-st.arrived:
		e.locks.ClearVulnerable(tid)
	case <-wound:
		return abortEager("as global-deadlock victim (wounded by a secondary)", contend.ReasonWound)
	case <-timer.C:
		// Global deadlock suspicion (Example 4.1): abort and release.
		return abortEager("waiting for backedge round-trip", contend.ReasonDeadlock)
	case <-e.stop:
		e.locks.ClearVulnerable(tid)
		t.Abort()
		// The site was stopped (chaos crash or shutdown) with the txn
		// parked on its round trip — an abort with a cause of its own,
		// previously invisible to the abort accounting.
		e.recAbort(tid, contend.ReasonCrash)
		return fmt.Errorf("core: engine stopped: %w", txn.ErrAborted)
	}

	// The special is home and every earlier secondary has committed.
	// Commit the primary and all backedge subtransactions atomically.
	e.obs.bePrepares.Inc()
	e.traceCtx(trace.BackedgePrepare, targets[0], octx)
	committed, runErr := twopc.Run(tid, targets, twopc.Coordinator{
		Prepare: func(p model.SiteID, id model.TxnID, sc model.SpanContext) (bool, error) {
			voteStart := e.phaseClock()
			resp, err := e.rpc.CallSpan(p, kindPrepare, preparePayload{TID: id}, e.cfg.Params.RPCTimeout, sc)
			e.phaseSince(metrics.PhaseVote, p, id, voteStart)
			if err != nil {
				return false, err
			}
			return resp.(prepareResp).Vote, nil
		},
		Decide: func(p model.SiteID, id model.TxnID, commit bool, sc model.SpanContext) error {
			decStart := e.phaseClock()
			_, err := e.rpc.CallSpan(p, kindDecision, decisionPayload{TID: id, Commit: commit}, e.cfg.Params.RPCTimeout, sc)
			e.phaseSince(metrics.PhaseDecision, p, id, decStart)
			return err
		},
		Log: e.decisions,
	}, octx.Fork(e.id))
	e.mu.Lock()
	delete(e.waiters, tid)
	e.mu.Unlock()
	e.obs.eagerDepth.Dec()
	if runErr != nil {
		// The decision is logged and durable; only its delivery failed.
		// The participant's inquiry sweep will recover it, but the miss
		// must be visible: a climbing counter here means decision
		// deliveries are being lost, not merely delayed.
		e.obs.beDecisionErrs.Inc()
	}
	if !committed {
		t.Abort()
		e.recAbort(tid, contend.ReasonNoVote)
		return fmt.Errorf("core: %v aborted by 2PC: %w: %w", tid, twopc.ErrNoVote, txn.ErrAborted)
	}
	e.obs.beCommits.Inc()
	e.traceCtx(trace.BackedgeCommit, targets[0], octx)
	e.commitMu.Lock()
	e.armDurable(t, wal.Record{
		Kind: wal.KindApply, TID: tid, Role: wal.RoleOrigin,
		Writes: writes, Forwards: len(writes) > 0, Span: octx,
	})
	err := t.Commit()
	if err == nil {
		e.traceCtx(trace.TxnCommit, model.NoSite, octx)
		e.noteCommitted(writes)
		e.forward(octx, writes)
	}
	e.commitMu.Unlock()
	if err != nil {
		e.recAbort(tid, contend.Classify(err))
		return err
	}
	e.recCommit(tid, start)
	return nil
}

// abortBackedges tombstones the transaction at every backedge site so
// executed subtransactions roll back and late-arriving specials are
// skipped.
func (e *backedgeEngine) abortBackedges(sc model.SpanContext, targets []model.SiteID) {
	out := sc.Fork(e.id)
	for _, p := range targets {
		e.send(comm.Message{
			From: e.id, To: p, Kind: kindBackedgeAbort, Span: out,
			Payload: abortPayload{TID: sc.TID},
		})
	}
}

// forward is the DAG(WT) lazy fan-out to relevant tree children; the
// caller holds commitMu.
func (e *backedgeEngine) forward(sc model.SpanContext, writes []model.WriteOp) {
	forwardTree(&e.base, sc, writes)
}

func (e *backedgeEngine) Handle(msg comm.Message) {
	if msg.IsResp {
		e.rpc.HandleResponse(msg)
		return
	}
	switch msg.Kind {
	case kindSecondary, kindSpecial:
		if !e.logReceipt(msg) {
			return // fenced mid-crash: dropped unacknowledged, retransmitted
		}
		e.traceCtx(trace.SecondaryEnqueued, msg.From, msg.Span)
		e.recTransport(msg, msg.Span.TID)
		e.obs.fifoDepth.Inc()
		e.prog.Push()
		e.queue <- queuedMsg{msg: msg, at: e.phaseClock()}
	case kindBackedgeExec:
		// Executed immediately and concurrently (§4.1 step 1: sent
		// "directly ... to be executed"), not through the FIFO queue.
		if !e.logReceipt(msg) {
			return // fenced mid-crash: dropped unacknowledged, retransmitted
		}
		e.recTransport(msg, msg.Span.TID)
		go e.execBackedge(msg.Payload.(specialPayload), msg.Span)
	case kindBackedgeAbort:
		go e.handleAbort(msg.Payload.(abortPayload).TID)
	case kindPrepare:
		p := msg.Payload.(preparePayload)
		e.obs.bePrepares.Inc()
		e.traceCtx(trace.BackedgePrepare, msg.From, msg.Span)
		//lint:allow waldiscipline the vote's Prepared record was appended and synced by executeHolding before the special was relayed, so the coordinator can only reach this prepare after the registration is durable
		e.rpc.Reply(msg, prepareResp{Vote: e.table.Prepare(p.TID)})
	case kindDecision:
		// Decisions may take a lock-release step; keep the transport pair
		// goroutine free.
		go e.handleDecision(msg)
	case kindInquiry:
		// Coordinator side of decision recovery: answer from the stable
		// decision log. Unknown means "not decided yet" — the participant
		// keeps waiting.
		q := msg.Payload.(inquiryPayload)
		commit, known := e.decisions.Lookup(q.TID)
		//lint:allow waldiscipline inquiry answers only from the durable decision log: the Decision record was appended and synced before any participant could learn the outcome and start inquiring
		e.rpc.Reply(msg, inquiryResp{Known: known, Commit: commit})
	default:
		panic("core: BackEdge received unexpected message kind")
	}
}

// beExec classifies the outcome of executing a backedge/special
// subtransaction: relay onward, consume without relaying, or leave the
// receipt unconsumed for recovery (engine stopping or redo log fenced).
type beExec int

const (
	beExecOK      beExec = iota // executed (or pure relay): relay + consume
	beExecFailed                // aborted/duplicate: consume, no relay
	beExecStopped               // stopping/fenced: recovery inherits the receipt
)

// execBackedge runs a backedge subtransaction at the farthest ancestor
// site: execute holding locks, then relay the special down the tree. The
// delivery's pending obligation is released only once its consumption is
// durable; a stopped/fenced execution leaves it to recovery.
func (e *backedgeEngine) execBackedge(p specialPayload, sc model.SpanContext) {
	switch e.executeHolding(p, sc) {
	case beExecOK:
		e.relaySpecial(p, sc)
		e.consumeAndDone(p.TID)
	case beExecFailed:
		e.consumeAndDone(p.TID)
	case beExecStopped:
		// Receipt stays unconsumed; recovery re-processes it.
	}
}

// executeHolding acquires this site's locks for the subtransaction's
// local writes, buffering them until the 2PC decision. On beExecOK the
// caller relays onward; on beExecFailed the transaction was aborted
// (tombstoned) or already resolved and the subtransaction holds nothing;
// on beExecStopped nothing is held and nothing may be consumed.
func (e *backedgeEngine) executeHolding(p specialPayload, sc model.SpanContext) beExec {
	if e.wasApplied(p.TID) {
		// A crash-recovery re-send duplicated this delivery and the
		// subtransaction is already resolved here. The relay preceded the
		// prepare, so it already went out too: consume without relaying.
		return beExecFailed
	}
	e.mu.Lock()
	_, restored := e.prepared[p.TID]
	e.mu.Unlock()
	if restored {
		// Recovery restored the prepared entry from disk; relay again so
		// the special still comes home (downstream sites and the origin
		// deduplicate).
		return beExecOK
	}
	var local []model.WriteOp
	for _, w := range p.Writes {
		if e.store.Has(w.Item) {
			local = append(local, w)
		}
	}
	if len(local) == 0 {
		// Pure relay site (no replica of any written item): nothing to
		// execute, not a 2PC participant.
		if e.stopping() {
			return beExecStopped
		}
		return beExecOK
	}
	for {
		if e.stopping() {
			return beExecStopped
		}
		if e.table.Aborted(p.TID) {
			return beExecFailed
		}
		t := e.tm.BeginSecondary(p.TID)
		ok := true
		for _, w := range local {
			if err := t.Write(w.Item, w.Value); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			e.cfg.Metrics.Retry()
			e.retryBackoff()
			continue
		}
		// Locks held, writes buffered. Register as a live participant —
		// unless an abort raced in, in which case roll back. Registration
		// and tombstone lookup are paired under e.mu so handleAbort can
		// never miss a registered subtransaction.
		e.mu.Lock()
		err := e.table.Begin(p.TID)
		if err == nil {
			//lint:allow nodeterminism since drives the wall-clock inquiry sweep, not protocol ordering
			e.prepared[p.TID] = &pendingBE{t: t, origin: p.Origin, since: time.Now(), sc: sc, writes: p.Writes}
			// The subtransaction is in-flight propagation until its 2PC
			// decision resolves it (possibly by inquiry recovery): holding
			// a pending count here makes Quiesce wait out decision
			// delivery instead of sampling replicas mid-recovery.
			e.pendAdd(1)
		}
		e.mu.Unlock()
		if err != nil {
			t.Abort()
			return beExecFailed
		}
		// The prepared state must be durable before the relay (and later
		// the YES vote) can externalize it: a recovered participant has to
		// find the entry, re-execute it, and resolve it by inquiry. On a
		// fence, undo the registration entirely — nothing reached disk, so
		// recovery re-processes the still-unconsumed receipt from scratch.
		if e.walAppendSync(wal.Record{
			Kind: wal.KindPrepared, TID: p.TID, Origin: p.Origin,
			Writes: p.Writes, Span: sc,
		}) != nil {
			e.mu.Lock()
			delete(e.prepared, p.TID)
			e.mu.Unlock()
			e.table.Finish(p.TID, false)
			t.Abort()
			e.pendDone() // undo the registration's own pendAdd
			return beExecStopped
		}
		return beExecOK
	}
}

// relaySpecial forwards the special secondary subtransaction one hop down
// the tree toward the origin, atomically with respect to local commits so
// downstream sites see a consistent order.
func (e *backedgeEngine) relaySpecial(p specialPayload, sc model.SpanContext) {
	next := e.cfg.Tree.NextHopDown(e.id, p.Origin)
	e.commitMu.Lock()
	e.pendAdd(1)
	e.obs.forwarded.Inc()
	e.traceCtx(trace.SecondaryForwarded, next, sc)
	e.send(comm.Message{From: e.id, To: next, Kind: kindSpecial, Span: sc.Fork(e.id), Payload: p})
	e.commitMu.Unlock()
}

// handleAbort processes the origin's global-deadlock abort: mark the
// transaction aborted and roll back its executed subtransaction if any.
func (e *backedgeEngine) handleAbort(tid model.TxnID) {
	e.mu.Lock()
	e.table.Finish(tid, false)
	p := e.prepared[tid]
	delete(e.prepared, tid)
	e.mu.Unlock()
	if p != nil {
		p.t.Abort()
		// The resolution must be durable before the prepared entry's
		// pending obligation is released; on a fence recovery restores the
		// entry and resolves it again via inquiry (the origin logged the
		// abort before sending this notification).
		if e.walAppendSync(wal.Record{Kind: wal.KindResolved, TID: tid}) == nil {
			e.pendDone()
		}
	}
}

// handleDecision applies the 2PC outcome to the prepared subtransaction.
func (e *backedgeEngine) handleDecision(msg comm.Message) {
	d := msg.Payload.(decisionPayload)
	e.finishDecision(d.TID, d.Commit, msg.From)
	e.rpc.Reply(msg, decisionResp{})
}

// finishDecision resolves a prepared backedge subtransaction with the 2PC
// outcome, whether the decision arrived from the coordinator's phase 2 or
// from a recovery inquiry; the two paths can race and the second is a
// no-op (the state table is the arbiter).
func (e *backedgeEngine) finishDecision(tid model.TxnID, commit bool, from model.SiteID) {
	e.mu.Lock()
	act := e.table.Finish(tid, commit)
	p := e.prepared[tid]
	delete(e.prepared, tid)
	e.mu.Unlock()
	if p != nil {
		if act && commit {
			e.armDurable(p.t, wal.Record{
				Kind: wal.KindApply, TID: tid, Role: wal.RoleResolve,
				Writes: p.writes, Span: p.sc,
			})
			if err := p.t.Commit(); err != nil {
				// Only reachable on a fenced redo log (crash in progress):
				// the prepared entry and the coordinator's decision are both
				// durable, so recovery restores the subtransaction in doubt
				// and resolves it again by inquiry. No pendDone — the
				// obligation passes to the restored entry.
				return
			}
			e.obs.beCommits.Inc()
			e.traceCtx(trace.BackedgeCommit, from, p.sc)
			e.noteApplied(p.writes)
			e.recApplied(p.sc)
		} else {
			p.t.Abort()
			// Same fence discipline as handleAbort: the resolution must hit
			// disk before the obligation is released.
			if e.walAppendSync(wal.Record{Kind: wal.KindResolved, TID: tid}) != nil {
				return
			}
		}
		e.pendDone()
	}
	_ = e.table.Forget(tid)
}

// inquirer is the participant side of decision recovery: it periodically
// looks for subtransactions that have sat prepared past PrepareTimeout —
// meaning the phase-2 message was lost or the coordinator crashed after
// deciding — and asks each one's coordinator for the logged decision.
// Prepared means locks held, so a stuck participant blocks every
// conflicting transaction at this site until this loop resolves it.
func (e *backedgeEngine) inquirer() {
	interval := e.cfg.Params.PrepareTimeout / 2
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-e.stop:
			return
		case <-tick.C:
		}
		e.inquireStuck()
	}
}

// inquireStuck sends one decision inquiry per overdue registered
// subtransaction (every prepared-map entry holds locks: working ones
// whose prepare or abort notification was lost, prepared ones whose
// decision was lost). Inquiring about a working subtransaction is safe:
// its vote is still outstanding, so the only decision the coordinator can
// have logged is an abort. The inquiry is idempotent (the coordinator
// only reads its log), so it retries through the RPC layer and tolerates
// asking again on the next sweep — including the whole time the
// coordinator is crashed, until a restart brings its log back online.
func (e *backedgeEngine) inquireStuck() {
	//lint:allow nodeterminism the inquiry sweep is wall-clock-driven recovery by design
	cutoff := time.Now().Add(-e.cfg.Params.PrepareTimeout)
	type stuck struct {
		tid    model.TxnID
		origin model.SiteID
		sc     model.SpanContext
	}
	var overdue []stuck
	e.mu.Lock()
	for tid, p := range e.prepared {
		if p.since.Before(cutoff) {
			overdue = append(overdue, stuck{tid, p.origin, p.sc})
		}
	}
	e.mu.Unlock()
	// Inquire in TxnID order so retransmission traffic is replayable.
	sort.Slice(overdue, func(i, j int) bool {
		a, b := overdue[i].tid, overdue[j].tid
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Seq < b.Seq
	})
	for _, s := range overdue {
		if e.stopping() {
			return
		}
		e.obs.beInquiries.Inc()
		e.traceCtx(trace.DecisionInquiry, s.origin, s.sc)
		resp, err := e.rpc.CallRetrySpan(s.origin, kindInquiry, inquiryPayload{TID: s.tid}, e.cfg.Params.RPCTimeout, 2, s.sc.Fork(e.id))
		if err != nil {
			continue // coordinator unreachable; the next sweep retries
		}
		if r := resp.(inquiryResp); r.Known {
			e.finishDecision(s.tid, r.Commit, s.origin)
		}
	}
}

// applier drains the FIFO queue of normal and special secondaries.
func (e *backedgeEngine) applier() {
	for {
		var msg comm.Message
		select {
		case q := <-e.queue:
			e.obs.fifoDepth.Dec()
			e.prog.Pop()
			msg = q.msg
			e.phaseSince(metrics.PhaseQueueWait, msg.From, msg.Span.TID, q.at)
		case <-e.stop:
			return
		}
		switch msg.Kind {
		case kindSecondary:
			p := msg.Payload.(secondaryPayload)
			if !e.applySecondary(p, msg.Span) {
				return
			}
			e.pendDone()
		case kindSpecial:
			p := msg.Payload.(specialPayload)
			if p.Origin == e.id {
				e.specialHome(p)
			} else {
				// Intermediate (possibly backedge) site: execute holding
				// locks if we replicate any written item, then relay.
				e.execBackedge(p, msg.Span)
			}
		}
	}
}

// specialHome hands the arrived special to the waiting origin transaction
// and blocks until that transaction resolves, so later queue entries
// commit after it — the FIFO commit order of §2 spans the eager commit.
func (e *backedgeEngine) specialHome(p specialPayload) {
	e.mu.Lock()
	st := e.waiters[p.TID]
	// Remove the waiter on first arrival: a crash-recovery duplicate of
	// the special must not close(arrived) twice.
	delete(e.waiters, p.TID)
	e.mu.Unlock()
	if !e.consumeOnly(p.TID) {
		return // fenced: receipt unconsumed, recovery inherits the obligation
	}
	e.pendDone()
	if st == nil {
		return // origin already aborted (PrepareTimeout), or duplicate
	}
	close(st.arrived)
	select {
	case <-st.done:
	case <-e.stop:
	}
}

// applySecondary is the DAG(WT) lazy application with resubmission.
func (e *backedgeEngine) applySecondary(p secondaryPayload, sc model.SpanContext) bool {
	for {
		if e.stopping() {
			return false
		}
		if e.wasApplied(p.TID) {
			// A crash-recovery re-forward duplicated this delivery:
			// consume its receipt without re-applying (exactly-once).
			return e.consumeOnly(p.TID)
		}
		t := e.tm.BeginSecondary(p.TID)
		ok := true
		for _, w := range p.Writes {
			if !e.store.Has(w.Item) {
				continue
			}
			e.simulateOp()
			if err := t.Write(w.Item, w.Value); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			e.recRetry()
			e.retryBackoff()
			continue
		}
		e.commitMu.Lock()
		e.armDurable(t, wal.Record{
			Kind: wal.KindApply, TID: p.TID, Role: wal.RoleSecondary,
			Consumes: true, Forwards: len(p.Writes) > 0,
			Writes: p.Writes, Span: sc,
		})
		err := t.Commit()
		if err == nil {
			e.forward(sc, p.Writes)
		}
		e.commitMu.Unlock()
		if err != nil {
			// A fenced redo log (crash in progress): loop back to the
			// stopping() check. Otherwise unreachable — writes target local
			// copies only.
			e.recRetry()
			e.retryBackoff()
			continue
		}
		e.noteApplied(p.Writes)
		e.recApplied(sc)
		return true
	}
}
