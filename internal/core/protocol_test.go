package core

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/txn"
)

func TestParseProtocol(t *testing.T) {
	cases := map[string]Protocol{
		"psl": PSL, "PSL": PSL,
		"dagwt": DAGWT, "DAG(WT)": DAGWT, "dag-wt": DAGWT,
		"dagt": DAGT, "DAG(T)": DAGT,
		"backedge": BackEdge, "BE": BackEdge,
		"naive": NaiveLazy, "NaiveLazy": NaiveLazy,
	}
	for in, want := range cases {
		got, err := ParseProtocol(in)
		if err != nil || got != want {
			t.Errorf("ParseProtocol(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseProtocol("nonsense"); err == nil {
		t.Error("nonsense accepted")
	}
}

func TestProtocolStringRoundTrip(t *testing.T) {
	for _, p := range []Protocol{PSL, DAGWT, DAGT, BackEdge, NaiveLazy} {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("round trip %v: %v, %v", p, got, err)
		}
	}
	if !strings.Contains(Protocol(99).String(), "99") {
		t.Error("unknown protocol String")
	}
}

func TestProtocolClassification(t *testing.T) {
	if PSL.Propagates() {
		t.Error("PSL does not propagate")
	}
	if !BackEdge.Propagates() || !DAGWT.Propagates() || !DAGT.Propagates() {
		t.Error("lazy protocols propagate")
	}
	if NaiveLazy.Serializable() {
		t.Error("NaiveLazy is not serializable")
	}
	if !PSL.Serializable() || !BackEdge.Serializable() {
		t.Error("PSL/BackEdge are serializable")
	}
}

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Errorf("defaults invalid: %v", err)
	}
	bad := good
	bad.LockTimeout = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero LockTimeout accepted")
	}
	bad = good
	bad.RPCTimeout = good.LockTimeout / 2
	if err := bad.Validate(); err == nil {
		t.Error("RPCTimeout <= LockTimeout accepted")
	}
	bad = good
	bad.EpochPeriod = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero EpochPeriod accepted")
	}
}

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.LockTimeout != 50*time.Millisecond {
		t.Errorf("deadlock timeout = %v, Table 1 says 50ms", p.LockTimeout)
	}
}

// TestExecuteRejectsForeignWrites: a transaction may update only items
// whose primary copy lives at its origin site (§1.1).
func TestExecuteRejectsForeignWrites(t *testing.T) {
	p := example11Placement(t)
	for _, proto := range []Protocol{DAGWT, DAGT, PSL, NaiveLazy} {
		s := buildSystem(t, proto, p, testParams(), 0)
		// Item 1's primary is s1, not s0.
		err := s.engines[0].Execute([]model.Op{w(1, 5)})
		if err == nil || errors.Is(err, txn.ErrAborted) {
			t.Errorf("%v: foreign write not rejected: %v", proto, err)
		}
	}
}

// TestExecuteRejectsReadsWithoutCopy: reads must target items with a copy
// at the origin site.
func TestExecuteRejectsReadsWithoutCopy(t *testing.T) {
	p := placement(t, 2, []model.SiteID{0, 1}, [][]model.SiteID{nil, nil})
	s := buildSystem(t, DAGWT, p, testParams(), 0)
	if err := s.engines[0].Execute([]model.Op{r(1)}); err == nil {
		t.Error("read without a local copy accepted")
	}
}

// TestLocalDeadlockVictimAborts: two primaries at one site locking two
// items in opposite orders must resolve via the timeout, with at least
// one committing eventually on retry by the caller.
func TestLocalDeadlockVictimAborts(t *testing.T) {
	p := placement(t, 1, []model.SiteID{0, 0}, [][]model.SiteID{nil, nil})
	params := testParams()
	params.OpCost = 5 * time.Millisecond
	s := buildSystem(t, DAGWT, p, params, 0)

	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = s.engines[0].Execute([]model.Op{w(0, 1), w(1, 1)})
	}()
	go func() {
		defer wg.Done()
		errs[1] = s.engines[0].Execute([]model.Op{w(1, 2), w(0, 2)})
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil && !errors.Is(err, txn.ErrAborted) {
			t.Errorf("non-abort failure: %v", err)
		}
	}
	if errs[0] != nil && errs[1] != nil {
		t.Error("both transactions aborted; timeout resolution should let one win")
	}
	if err := s.recorder.CheckSerializable(); err != nil {
		t.Error(err)
	}
}

// TestAbortedPrimaryLeavesNoTrace: an aborted primary must not propagate
// anything or dirty any copy.
func TestAbortedPrimaryLeavesNoTrace(t *testing.T) {
	p := example11Placement(t)
	params := testParams()
	s := buildSystem(t, DAGWT, p, params, 0)

	// Hold an exclusive lock on item 0 at s0 via a slow conflicting txn.
	blocker := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e := s.engines[0].(*dagwtEngine)
		tx := e.tm.Begin(e.newTxnID())
		if err := tx.Write(0, 99); err != nil {
			t.Errorf("blocker write: %v", err)
		}
		<-blocker
		tx.Abort()
	}()
	time.Sleep(10 * time.Millisecond)
	err := s.engines[0].Execute([]model.Op{w(0, 1)})
	if !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("expected timeout abort, got %v", err)
	}
	close(blocker)
	wg.Wait()
	s.quiesce(t)
	if got := s.value(t, 1, 0); got != 0 {
		t.Errorf("aborted write propagated to s1: %d", got)
	}
	rep := s.collector.Snapshot(3)
	if rep.Aborted == 0 {
		t.Error("abort not counted")
	}
}
