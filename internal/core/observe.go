package core

import (
	"strconv"
	"time"

	"repro/internal/comm"
	"repro/internal/contend"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
)

// siteObs holds a site's pre-resolved live-metric handles so the hot
// paths never touch the registry. With observation disabled every handle
// is nil, and nil handles are no-ops — the same one-branch discipline as
// the nil trace recorder and nil metrics collector.
type siteObs struct {
	committed   *obs.Counter
	aborted     *obs.Counter
	applied     *obs.Counter
	forwarded   *obs.Counter
	dummies     *obs.Counter
	epochs      *obs.Counter
	remoteReads *obs.Counter
	retries     *obs.Counter
	bePrepares  *obs.Counter
	beCommits   *obs.Counter
	beInquiries *obs.Counter
	// beDecisionErrs counts 2PC rounds whose decision was logged but whose
	// delivery to some participant failed; the participant's inquiry sweep
	// recovers it, and a climbing series here says deliveries are being
	// lost rather than merely delayed.
	beDecisionErrs *obs.Counter
	rpcLate        *obs.Counter

	// abortReasons splits the aborted counter by root cause, one counter
	// per contend.AbortReason, labelled reason=<name>; every recAbort
	// increments exactly one of them (docs/OBSERVABILITY.md, contention
	// observatory).
	abortReasons [contend.NumReasons]*obs.Counter

	// Lock-manager counters (repl_lock_*_total), published from
	// lock.Manager.Stats by flushLockStats when the site halts.
	lockGrants    *obs.Counter
	lockWaits     *obs.Counter
	lockWounds    *obs.Counter
	lockTimeouts  *obs.Counter
	lockDeadlocks *obs.Counter

	// Queue-depth gauges: the DAG(WT)/BackEdge FIFO applier queue, the
	// DAG(T) timestamp-hold queues, the BackEdge origins parked on their
	// backedge round-trip, and the PSL remote-read service queue.
	fifoDepth  *obs.Gauge
	tsDepth    *obs.Gauge
	eagerDepth *obs.Gauge
	readsDepth *obs.Gauge
}

func newSiteObs(r *obs.Registry, id model.SiteID) siteObs {
	if r == nil {
		return siteObs{}
	}
	site := obs.Label{Key: "site", Value: strconv.Itoa(int(id))}
	queue := func(q string) *obs.Gauge {
		return r.Gauge("repl_queue_depth", site, obs.Label{Key: "queue", Value: q})
	}
	so := siteObs{
		committed:      r.Counter("repl_txn_committed_total", site),
		aborted:        r.Counter("repl_txn_aborted_total", site),
		applied:        r.Counter("repl_secondary_applied_total", site),
		forwarded:      r.Counter("repl_secondary_forwarded_total", site),
		dummies:        r.Counter("repl_dummy_sent_total", site),
		epochs:         r.Counter("repl_epoch_advances_total", site),
		remoteReads:    r.Counter("repl_remote_reads_total", site),
		retries:        r.Counter("repl_secondary_retries_total", site),
		bePrepares:     r.Counter("repl_backedge_prepares_total", site),
		beCommits:      r.Counter("repl_backedge_commits_total", site),
		beInquiries:    r.Counter("repl_backedge_inquiries_total", site),
		beDecisionErrs: r.Counter("repl_backedge_decision_errors_total", site),
		rpcLate:        r.Counter("repl_rpc_late_responses_total", site),
		fifoDepth:      queue("fifo"),
		tsDepth:        queue("ts"),
		eagerDepth:     queue("eager"),
		readsDepth:     queue("reads"),
		lockGrants:     r.Counter("repl_lock_grants_total", site),
		lockWaits:      r.Counter("repl_lock_waits_total", site),
		lockWounds:     r.Counter("repl_lock_wounds_total", site),
		lockTimeouts:   r.Counter("repl_lock_timeouts_total", site),
		lockDeadlocks:  r.Counter("repl_lock_deadlocks_total", site),
	}
	for _, reason := range contend.Reasons() {
		so.abortReasons[reason] = r.Counter("repl_txn_abort_reason_total",
			site, obs.Label{Key: "reason", Value: reason.String()})
	}
	return so
}

// AbortReasons returns the site's cumulative abort root-cause breakdown,
// reason name → count, zero-count reasons omitted. Backed by the
// per-reason obs counters, so it is empty when observation is disabled.
func (b *base) AbortReasons() map[string]uint64 {
	out := make(map[string]uint64)
	for _, reason := range contend.Reasons() {
		if n := b.obs.abortReasons[reason].Value(); n > 0 {
			out[reason.String()] = n
		}
	}
	return out
}

// flushLockStats publishes the lock manager's cumulative counters into the
// live registry. Called once, when the site halts, so the cumulative
// values ARE the deltas; reading Stats per grant would put a second mutex
// acquisition on the lock hot path for numbers nobody scrapes mid-run.
func (b *base) flushLockStats() {
	s := b.locks.Stats()
	b.obs.lockGrants.Add(s.Acquired)
	b.obs.lockWaits.Add(s.Waited)
	b.obs.lockWounds.Add(s.Wounds)
	b.obs.lockTimeouts.Add(s.Timeouts)
	b.obs.lockDeadlocks.Add(s.Deadlocks)
}

// traceEvent records one lifecycle event tagged with this site and
// protocol; with tracing disabled the call is one branch, no allocation.
func (b *base) traceEvent(k trace.Kind, peer model.SiteID, tid model.TxnID) {
	b.cfg.Trace.Record(k, b.id, peer, tid, uint8(b.proto))
}

// traceCtx records one lifecycle event under this site's span within the
// causal context sc: the event's span is the local work, its parent the
// sending site's span (zero at the origin, rooting the tree).
func (b *base) traceCtx(k trace.Kind, peer model.SiteID, sc model.SpanContext) {
	if b.cfg.Trace == nil {
		return
	}
	b.cfg.Trace.RecordSpan(k, b.id, peer, sc.TID, uint8(b.proto), sc.SpanAt(b.id), sc.Parent)
}

// tracing reports whether events are being recorded; call sites that
// would pay extra work just to build an event (e.g. a payload type
// assertion) gate on it.
func (b *base) tracing() bool { return b.cfg.Trace != nil }

// recCommit folds the bookkeeping for a committed primary
// subtransaction: run collector, live registry. (The TxnCommit trace
// event is recorded separately, inside the commit critical section, so
// it is ordered before the transaction's forward events.)
func (b *base) recCommit(tid model.TxnID, start time.Time) {
	//lint:allow nodeterminism latency observation only; the measured duration never branches protocol logic
	b.cfg.Metrics.TxnCommitted(tid, time.Since(start))
	b.obs.committed.Inc()
}

// recAbort folds the bookkeeping for an aborted primary subtransaction.
// Aborts happen at the origin, so the event sits on the root span. Every
// abort carries its root cause: the reason both tags the TxnAbort trace
// event and selects the per-reason counter, so no engine can abort
// without classifying (the compiler enforces what a convention could
// not).
func (b *base) recAbort(tid model.TxnID, reason contend.AbortReason) {
	b.cfg.Metrics.TxnAborted()
	b.obs.aborted.Inc()
	b.obs.abortReasons[reason].Inc()
	if b.cfg.Trace != nil {
		sc := model.SpanContext{TID: tid}
		b.cfg.Trace.RecordTag(trace.TxnAbort, b.id, model.NoSite, tid,
			uint8(b.proto), sc.SpanAt(b.id), sc.Parent, reason.String())
	}
}

// recApplied folds the bookkeeping for a committed secondary
// subtransaction, attributed to this site's span within sc.
func (b *base) recApplied(sc model.SpanContext) {
	b.cfg.Metrics.SecondaryApplied(sc.TID)
	b.obs.applied.Inc()
	b.traceCtx(trace.SecondaryApplied, model.NoSite, sc)
}

// recRetry folds the bookkeeping for a secondary resubmission.
func (b *base) recRetry() {
	b.cfg.Metrics.Retry()
	b.obs.retries.Inc()
}

// Phase-level latency attribution (docs/BENCHMARKING.md). All clock reads
// for it are confined to the three helpers below so the nodeterminism
// allowances live in one place; engines deal only in opaque stamps.

// phaseClock returns the current time when phase attribution has a sink
// (a metrics collector or a trace recorder), and the zero time otherwise,
// keeping disabled hot paths clock-free.
func (b *base) phaseClock() time.Time {
	if b.cfg.Metrics == nil && b.cfg.Trace == nil {
		return time.Time{}
	}
	//lint:allow nodeterminism latency observation only; the measured duration never branches protocol logic
	return time.Now()
}

// recPhase attributes a latency segment to phase p: one sample in the run
// collector plus, when tracing, a PhaseLatency trace event.
func (b *base) recPhase(p metrics.Phase, peer model.SiteID, tid model.TxnID, d time.Duration) {
	b.cfg.Metrics.PhaseSample(p, d)
	b.cfg.Trace.RecordPhase(b.id, peer, tid, uint8(b.proto), p.String(), d)
}

// phaseSince closes a phase segment opened at a phaseClock stamp; the
// zero stamp means attribution is off and the call is one branch.
func (b *base) phaseSince(p metrics.Phase, peer model.SiteID, tid model.TxnID, start time.Time) {
	if start.IsZero() {
		return
	}
	//lint:allow nodeterminism latency observation only; the measured duration never branches protocol logic
	b.recPhase(p, peer, tid, time.Since(start))
}

// recTransport turns a stamped incoming message into a transport-phase
// sample (one-way send-to-receipt time); unstamped messages — RPC round
// trips, which are attributed as whole vote/decision/remote-read phases —
// are ignored.
func (b *base) recTransport(msg comm.Message, tid model.TxnID) {
	b.phaseSince(metrics.PhaseTransport, msg.From, tid, msg.SentAt)
}
