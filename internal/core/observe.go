package core

import (
	"strconv"
	"time"

	"repro/internal/comm"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
)

// siteObs holds a site's pre-resolved live-metric handles so the hot
// paths never touch the registry. With observation disabled every handle
// is nil, and nil handles are no-ops — the same one-branch discipline as
// the nil trace recorder and nil metrics collector.
type siteObs struct {
	committed   *obs.Counter
	aborted     *obs.Counter
	applied     *obs.Counter
	forwarded   *obs.Counter
	dummies     *obs.Counter
	epochs      *obs.Counter
	remoteReads *obs.Counter
	retries     *obs.Counter
	bePrepares  *obs.Counter
	beCommits   *obs.Counter
	beInquiries *obs.Counter
	// beDecisionErrs counts 2PC rounds whose decision was logged but whose
	// delivery to some participant failed; the participant's inquiry sweep
	// recovers it, and a climbing series here says deliveries are being
	// lost rather than merely delayed.
	beDecisionErrs *obs.Counter
	rpcLate        *obs.Counter

	// Queue-depth gauges: the DAG(WT)/BackEdge FIFO applier queue, the
	// DAG(T) timestamp-hold queues, the BackEdge origins parked on their
	// backedge round-trip, and the PSL remote-read service queue.
	fifoDepth  *obs.Gauge
	tsDepth    *obs.Gauge
	eagerDepth *obs.Gauge
	readsDepth *obs.Gauge
}

func newSiteObs(r *obs.Registry, id model.SiteID) siteObs {
	if r == nil {
		return siteObs{}
	}
	site := obs.Label{Key: "site", Value: strconv.Itoa(int(id))}
	queue := func(q string) *obs.Gauge {
		return r.Gauge("repl_queue_depth", site, obs.Label{Key: "queue", Value: q})
	}
	return siteObs{
		committed:      r.Counter("repl_txn_committed_total", site),
		aborted:        r.Counter("repl_txn_aborted_total", site),
		applied:        r.Counter("repl_secondary_applied_total", site),
		forwarded:      r.Counter("repl_secondary_forwarded_total", site),
		dummies:        r.Counter("repl_dummy_sent_total", site),
		epochs:         r.Counter("repl_epoch_advances_total", site),
		remoteReads:    r.Counter("repl_remote_reads_total", site),
		retries:        r.Counter("repl_secondary_retries_total", site),
		bePrepares:     r.Counter("repl_backedge_prepares_total", site),
		beCommits:      r.Counter("repl_backedge_commits_total", site),
		beInquiries:    r.Counter("repl_backedge_inquiries_total", site),
		beDecisionErrs: r.Counter("repl_backedge_decision_errors_total", site),
		rpcLate:        r.Counter("repl_rpc_late_responses_total", site),
		fifoDepth:      queue("fifo"),
		tsDepth:        queue("ts"),
		eagerDepth:     queue("eager"),
		readsDepth:     queue("reads"),
	}
}

// traceEvent records one lifecycle event tagged with this site and
// protocol; with tracing disabled the call is one branch, no allocation.
func (b *base) traceEvent(k trace.Kind, peer model.SiteID, tid model.TxnID) {
	b.cfg.Trace.Record(k, b.id, peer, tid, uint8(b.proto))
}

// traceCtx records one lifecycle event under this site's span within the
// causal context sc: the event's span is the local work, its parent the
// sending site's span (zero at the origin, rooting the tree).
func (b *base) traceCtx(k trace.Kind, peer model.SiteID, sc model.SpanContext) {
	if b.cfg.Trace == nil {
		return
	}
	b.cfg.Trace.RecordSpan(k, b.id, peer, sc.TID, uint8(b.proto), sc.SpanAt(b.id), sc.Parent)
}

// tracing reports whether events are being recorded; call sites that
// would pay extra work just to build an event (e.g. a payload type
// assertion) gate on it.
func (b *base) tracing() bool { return b.cfg.Trace != nil }

// recCommit folds the bookkeeping for a committed primary
// subtransaction: run collector, live registry. (The TxnCommit trace
// event is recorded separately, inside the commit critical section, so
// it is ordered before the transaction's forward events.)
func (b *base) recCommit(tid model.TxnID, start time.Time) {
	//lint:allow nodeterminism latency observation only; the measured duration never branches protocol logic
	b.cfg.Metrics.TxnCommitted(tid, time.Since(start))
	b.obs.committed.Inc()
}

// recAbort folds the bookkeeping for an aborted primary subtransaction.
// Aborts happen at the origin, so the event sits on the root span.
func (b *base) recAbort(tid model.TxnID) {
	b.cfg.Metrics.TxnAborted()
	b.obs.aborted.Inc()
	b.traceCtx(trace.TxnAbort, model.NoSite, model.SpanContext{TID: tid})
}

// recApplied folds the bookkeeping for a committed secondary
// subtransaction, attributed to this site's span within sc.
func (b *base) recApplied(sc model.SpanContext) {
	b.cfg.Metrics.SecondaryApplied(sc.TID)
	b.obs.applied.Inc()
	b.traceCtx(trace.SecondaryApplied, model.NoSite, sc)
}

// recRetry folds the bookkeeping for a secondary resubmission.
func (b *base) recRetry() {
	b.cfg.Metrics.Retry()
	b.obs.retries.Inc()
}

// Phase-level latency attribution (docs/BENCHMARKING.md). All clock reads
// for it are confined to the three helpers below so the nodeterminism
// allowances live in one place; engines deal only in opaque stamps.

// phaseClock returns the current time when phase attribution has a sink
// (a metrics collector or a trace recorder), and the zero time otherwise,
// keeping disabled hot paths clock-free.
func (b *base) phaseClock() time.Time {
	if b.cfg.Metrics == nil && b.cfg.Trace == nil {
		return time.Time{}
	}
	//lint:allow nodeterminism latency observation only; the measured duration never branches protocol logic
	return time.Now()
}

// recPhase attributes a latency segment to phase p: one sample in the run
// collector plus, when tracing, a PhaseLatency trace event.
func (b *base) recPhase(p metrics.Phase, peer model.SiteID, tid model.TxnID, d time.Duration) {
	b.cfg.Metrics.PhaseSample(p, d)
	b.cfg.Trace.RecordPhase(b.id, peer, tid, uint8(b.proto), p.String(), d)
}

// phaseSince closes a phase segment opened at a phaseClock stamp; the
// zero stamp means attribution is off and the call is one branch.
func (b *base) phaseSince(p metrics.Phase, peer model.SiteID, tid model.TxnID, start time.Time) {
	if start.IsZero() {
		return
	}
	//lint:allow nodeterminism latency observation only; the measured duration never branches protocol logic
	b.recPhase(p, peer, tid, time.Since(start))
}

// recTransport turns a stamped incoming message into a transport-phase
// sample (one-way send-to-receipt time); unstamped messages — RPC round
// trips, which are attributed as whole vote/decision/remote-read phases —
// are ignored.
func (b *base) recTransport(msg comm.Message, tid model.TxnID) {
	b.phaseSince(metrics.PhaseTransport, msg.From, tid, msg.SentAt)
}
