package core

import (
	"strconv"
	"time"

	"repro/internal/comm"
	"repro/internal/contend"
	"repro/internal/fresh"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
)

// siteObs holds a site's pre-resolved live-metric handles so the hot
// paths never touch the registry. With observation disabled every handle
// is nil, and nil handles are no-ops — the same one-branch discipline as
// the nil trace recorder and nil metrics collector.
type siteObs struct {
	committed   *obs.Counter
	aborted     *obs.Counter
	applied     *obs.Counter
	forwarded   *obs.Counter
	dummies     *obs.Counter
	epochs      *obs.Counter
	remoteReads *obs.Counter
	retries     *obs.Counter
	bePrepares  *obs.Counter
	beCommits   *obs.Counter
	beInquiries *obs.Counter
	// beDecisionErrs counts 2PC rounds whose decision was logged but whose
	// delivery to some participant failed; the participant's inquiry sweep
	// recovers it, and a climbing series here says deliveries are being
	// lost rather than merely delayed.
	beDecisionErrs *obs.Counter
	rpcLate        *obs.Counter

	// abortReasons splits the aborted counter by root cause, one counter
	// per contend.AbortReason, labelled reason=<name>; every recAbort
	// increments exactly one of them (docs/OBSERVABILITY.md, contention
	// observatory).
	abortReasons [contend.NumReasons]*obs.Counter

	// Lock-manager counters (repl_lock_*_total), published from
	// lock.Manager.Stats by flushLockStats when the site halts.
	lockGrants    *obs.Counter
	lockWaits     *obs.Counter
	lockWounds    *obs.Counter
	lockTimeouts  *obs.Counter
	lockDeadlocks *obs.Counter

	// Queue-depth gauges: the DAG(WT)/BackEdge FIFO applier queue, the
	// DAG(T) timestamp-hold queues, the BackEdge origins parked on their
	// backedge round-trip, and the PSL remote-read service queue.
	fifoDepth  *obs.Gauge
	tsDepth    *obs.Gauge
	eagerDepth *obs.Gauge
	readsDepth *obs.Gauge

	// Freshness observatory handles (docs/OBSERVABILITY.md): every read
	// issues a certificate (reads = readsFresh + readsStale, the coverage
	// identity the freshness smoke checks), stale ones also accumulate how
	// many versions behind they were and a time-behind histogram; the
	// repl_fresh_* pair mirrors the tracker's commit/apply bookkeeping so a
	// scrape can see propagation progress without the tracker.
	reads         *obs.Counter
	readsFresh    *obs.Counter
	readsStale    *obs.Counter
	staleVersions *obs.Counter
	readBehind    *obs.Histogram
	freshCommits  *obs.Counter
	freshApplies  *obs.Counter
}

func newSiteObs(r *obs.Registry, id model.SiteID) siteObs {
	if r == nil {
		return siteObs{}
	}
	site := obs.Label{Key: "site", Value: strconv.Itoa(int(id))}
	queue := func(q string) *obs.Gauge {
		return r.Gauge("repl_queue_depth", site, obs.Label{Key: "queue", Value: q})
	}
	so := siteObs{
		committed:      r.Counter("repl_txn_committed_total", site),
		aborted:        r.Counter("repl_txn_aborted_total", site),
		applied:        r.Counter("repl_secondary_applied_total", site),
		forwarded:      r.Counter("repl_secondary_forwarded_total", site),
		dummies:        r.Counter("repl_dummy_sent_total", site),
		epochs:         r.Counter("repl_epoch_advances_total", site),
		remoteReads:    r.Counter("repl_remote_reads_total", site),
		retries:        r.Counter("repl_secondary_retries_total", site),
		bePrepares:     r.Counter("repl_backedge_prepares_total", site),
		beCommits:      r.Counter("repl_backedge_commits_total", site),
		beInquiries:    r.Counter("repl_backedge_inquiries_total", site),
		beDecisionErrs: r.Counter("repl_backedge_decision_errors_total", site),
		rpcLate:        r.Counter("repl_rpc_late_responses_total", site),
		fifoDepth:      queue("fifo"),
		tsDepth:        queue("ts"),
		eagerDepth:     queue("eager"),
		readsDepth:     queue("reads"),
		lockGrants:     r.Counter("repl_lock_grants_total", site),
		lockWaits:      r.Counter("repl_lock_waits_total", site),
		lockWounds:     r.Counter("repl_lock_wounds_total", site),
		lockTimeouts:   r.Counter("repl_lock_timeouts_total", site),
		lockDeadlocks:  r.Counter("repl_lock_deadlocks_total", site),
		reads:          r.Counter("repl_txn_reads_total", site),
		readsFresh:     r.Counter("repl_read_staleness_fresh_total", site),
		readsStale:     r.Counter("repl_read_staleness_stale_total", site),
		staleVersions:  r.Counter("repl_read_staleness_versions_total", site),
		readBehind:     r.Histogram("repl_read_staleness_behind", site),
		freshCommits:   r.Counter("repl_fresh_commits_total", site),
		freshApplies:   r.Counter("repl_fresh_applies_total", site),
	}
	for _, reason := range contend.Reasons() {
		so.abortReasons[reason] = r.Counter("repl_txn_abort_reason_total",
			site, obs.Label{Key: "reason", Value: reason.String()})
	}
	return so
}

// AbortReasons returns the site's cumulative abort root-cause breakdown,
// reason name → count, zero-count reasons omitted. Backed by the
// per-reason obs counters, so it is empty when observation is disabled.
func (b *base) AbortReasons() map[string]uint64 {
	out := make(map[string]uint64)
	for _, reason := range contend.Reasons() {
		if n := b.obs.abortReasons[reason].Value(); n > 0 {
			out[reason.String()] = n
		}
	}
	return out
}

// flushLockStats publishes the lock manager's cumulative counters into the
// live registry. Called once, when the site halts, so the cumulative
// values ARE the deltas; reading Stats per grant would put a second mutex
// acquisition on the lock hot path for numbers nobody scrapes mid-run.
func (b *base) flushLockStats() {
	s := b.locks.Stats()
	b.obs.lockGrants.Add(s.Acquired)
	b.obs.lockWaits.Add(s.Waited)
	b.obs.lockWounds.Add(s.Wounds)
	b.obs.lockTimeouts.Add(s.Timeouts)
	b.obs.lockDeadlocks.Add(s.Deadlocks)
}

// traceEvent records one lifecycle event tagged with this site and
// protocol; with tracing disabled the call is one branch, no allocation.
func (b *base) traceEvent(k trace.Kind, peer model.SiteID, tid model.TxnID) {
	b.cfg.Trace.Record(k, b.id, peer, tid, uint8(b.proto))
}

// traceCtx records one lifecycle event under this site's span within the
// causal context sc: the event's span is the local work, its parent the
// sending site's span (zero at the origin, rooting the tree).
func (b *base) traceCtx(k trace.Kind, peer model.SiteID, sc model.SpanContext) {
	if b.cfg.Trace == nil {
		return
	}
	b.cfg.Trace.RecordSpan(k, b.id, peer, sc.TID, uint8(b.proto), sc.SpanAt(b.id), sc.Parent)
}

// tracing reports whether events are being recorded; call sites that
// would pay extra work just to build an event (e.g. a payload type
// assertion) gate on it.
func (b *base) tracing() bool { return b.cfg.Trace != nil }

// recCommit folds the bookkeeping for a committed primary
// subtransaction: run collector, live registry. (The TxnCommit trace
// event is recorded separately, inside the commit critical section, so
// it is ordered before the transaction's forward events.)
func (b *base) recCommit(tid model.TxnID, start time.Time) {
	//lint:allow nodeterminism latency observation only; the measured duration never branches protocol logic
	b.cfg.Metrics.TxnCommitted(tid, time.Since(start))
	b.obs.committed.Inc()
}

// recAbort folds the bookkeeping for an aborted primary subtransaction.
// Aborts happen at the origin, so the event sits on the root span. Every
// abort carries its root cause: the reason both tags the TxnAbort trace
// event and selects the per-reason counter, so no engine can abort
// without classifying (the compiler enforces what a convention could
// not).
func (b *base) recAbort(tid model.TxnID, reason contend.AbortReason) {
	b.cfg.Metrics.TxnAborted()
	b.obs.aborted.Inc()
	b.obs.abortReasons[reason].Inc()
	if b.cfg.Trace != nil {
		sc := model.SpanContext{TID: tid}
		b.cfg.Trace.RecordTag(trace.TxnAbort, b.id, model.NoSite, tid,
			uint8(b.proto), sc.SpanAt(b.id), sc.Parent, reason.String())
	}
}

// recApplied folds the bookkeeping for a committed secondary
// subtransaction, attributed to this site's span within sc.
func (b *base) recApplied(sc model.SpanContext) {
	b.cfg.Metrics.SecondaryApplied(sc.TID)
	b.obs.applied.Inc()
	b.traceCtx(trace.SecondaryApplied, model.NoSite, sc)
}

// recRetry folds the bookkeeping for a secondary resubmission.
func (b *base) recRetry() {
	b.cfg.Metrics.Retry()
	b.obs.retries.Inc()
}

// Phase-level latency attribution (docs/BENCHMARKING.md). All clock reads
// for it are confined to the three helpers below so the nodeterminism
// allowances live in one place; engines deal only in opaque stamps.

// phaseClock returns the current time when phase attribution has a sink
// (a metrics collector or a trace recorder), and the zero time otherwise,
// keeping disabled hot paths clock-free.
func (b *base) phaseClock() time.Time {
	if b.cfg.Metrics == nil && b.cfg.Trace == nil {
		return time.Time{}
	}
	//lint:allow nodeterminism latency observation only; the measured duration never branches protocol logic
	return time.Now()
}

// recPhase attributes a latency segment to phase p: one sample in the run
// collector plus, when tracing, a PhaseLatency trace event.
func (b *base) recPhase(p metrics.Phase, peer model.SiteID, tid model.TxnID, d time.Duration) {
	b.cfg.Metrics.PhaseSample(p, d)
	b.cfg.Trace.RecordPhase(b.id, peer, tid, uint8(b.proto), p.String(), d)
}

// phaseSince closes a phase segment opened at a phaseClock stamp; the
// zero stamp means attribution is off and the call is one branch.
func (b *base) phaseSince(p metrics.Phase, peer model.SiteID, tid model.TxnID, start time.Time) {
	if start.IsZero() {
		return
	}
	//lint:allow nodeterminism latency observation only; the measured duration never branches protocol logic
	b.recPhase(p, peer, tid, time.Since(start))
}

// recTransport turns a stamped incoming message into a transport-phase
// sample (one-way send-to-receipt time); unstamped messages — RPC round
// trips, which are attributed as whole vote/decision/remote-read phases —
// are ignored.
func (b *base) recTransport(msg comm.Message, tid model.TxnID) {
	b.phaseSince(metrics.PhaseTransport, msg.From, tid, msg.SentAt)
}

// Freshness observatory hooks (docs/OBSERVABILITY.md). Like the phase
// helpers, these keep every disabled hot path down to one nil check; the
// wall-clock reads live inside internal/fresh, outside the deterministic
// core — the engines pass only item ids and version numbers.

// noteCommitted mirrors a committed primary's writes into the freshness
// tracker. Engines call it inside the commit critical section,
// immediately after Txn.Commit installed the writes, so the tracker's
// latest version for each item equals the storage version number this
// commit minted.
func (b *base) noteCommitted(writes []model.WriteOp) {
	if b.cfg.Fresh == nil || len(writes) == 0 {
		return
	}
	for _, w := range writes {
		b.cfg.Fresh.NoteCommit(w.Item)
	}
	b.obs.freshCommits.Add(uint64(len(writes)))
}

// noteApplied advances the tracker's per-(item, site) applied counters
// for a propagated update installed at this secondary, sampling the
// replica's version and time lag. Writes without a local copy are
// skipped, mirroring the appliers' own store.Has filter, so the applied
// counter only advances for versions this site actually installed.
func (b *base) noteApplied(writes []model.WriteOp) {
	if b.cfg.Fresh == nil || len(writes) == 0 {
		return
	}
	n := uint64(0)
	for _, w := range writes {
		if !b.store.Has(w.Item) {
			continue
		}
		b.cfg.Fresh.NoteApply(b.id, w.Item)
		n++
	}
	if n > 0 {
		b.obs.freshApplies.Add(n)
	}
}

// certifyRead records a read-freshness certificate for a read that
// observed the given storage version of item at this site; fromStore is
// false for reads served from the transaction's own write buffer, which
// are certified fresh (the value is newer than anything committed). The
// reads counter bumps BEFORE the tracker check, so certificate coverage
// (certificates ÷ reads) is a measured ratio, not an identity: an engine
// read path that forgets to certify shows up as coverage < 100%.
func (b *base) certifyRead(tid model.TxnID, item model.ItemID, version uint64, fromStore bool) {
	b.obs.reads.Inc()
	f := b.cfg.Fresh
	if f == nil {
		return
	}
	var c fresh.Cert
	if fromStore {
		c = f.CertifyRead(b.id, item, version)
	} else {
		c = f.CertifyFresh(b.id)
	}
	b.recCert(tid, c)
}

// certifyPrimaryRead certifies a read that observed the primary copy
// itself (PSL's local primary reads and remote-read replies): zero
// staleness by construction, counted so certificate coverage stays
// total.
func (b *base) certifyPrimaryRead(tid model.TxnID) {
	b.obs.reads.Inc()
	f := b.cfg.Fresh
	if f == nil {
		return
	}
	b.recCert(tid, f.CertifyFresh(b.id))
}

// recCert folds one certificate into the live registry and, when
// tracing, a span-less ReadCertificate event tagged fresh/stale with the
// time behind as its duration. Span-less because whether a particular
// read catches the latest version races propagation timing — hanging
// certificates off spans would make same-seed span trees diverge.
func (b *base) recCert(tid model.TxnID, c fresh.Cert) {
	tag := "fresh"
	if c.Stale() {
		tag = "stale"
		b.obs.readsStale.Inc()
		b.obs.staleVersions.Add(c.Versions)
		b.obs.readBehind.Observe(c.Behind)
	} else {
		b.obs.readsFresh.Inc()
	}
	b.cfg.Trace.RecordTagDur(trace.ReadCertificate, b.id, model.NoSite, tid, uint8(b.proto), tag, c.Behind)
}
