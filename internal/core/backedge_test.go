package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/txn"
)

// TestBackEdgeEagerCommitToAncestor: item 0's primary is at s1 with a
// replica at s0 (a backedge under the chain order s0<s1). When the
// transaction at s1 commits, the replica at s0 must ALREADY hold the new
// value — that is the eager arm's guarantee (§4.1 step 3: atomic commit
// via 2PC before the primary returns).
func TestBackEdgeEagerCommitToAncestor(t *testing.T) {
	p := placement(t, 2, []model.SiteID{1}, [][]model.SiteID{{0}})
	s := buildSystem(t, BackEdge, p, testParams(), time.Millisecond)
	if err := s.engines[1].Execute([]model.Op{w(0, 77)}); err != nil {
		t.Fatal(err)
	}
	// No quiesce, no polling: eager means it is already there.
	if got := s.value(t, 0, 0); got != 77 {
		t.Fatalf("backedge replica not updated eagerly: %d", got)
	}
}

// TestBackEdgeReducesToDAGWTWithoutBackedges: on a DAG placement the
// protocol must behave exactly lazily — the primary returns before the
// replica is updated, and propagation arrives later.
func TestBackEdgeReducesToDAGWTWithoutBackedges(t *testing.T) {
	p := example11Placement(t)
	s := buildSystem(t, BackEdge, p, testParams(), 20*time.Millisecond)
	if err := s.engines[0].Execute([]model.Op{w(0, 5)}); err != nil {
		t.Fatal(err)
	}
	// With 20ms edges the lazy secondary cannot have landed yet.
	if got := s.value(t, 1, 0); got != 0 {
		t.Log("note: secondary landed unusually fast; lazy check is advisory")
	}
	s.waitValue(t, 1, 0, 5)
	s.waitValue(t, 2, 0, 5)
	s.quiesce(t)
	if err := s.recorder.CheckSerializable(); err != nil {
		t.Error(err)
	}
}

// TestBackEdgeMultiHopSpecial exercises a three-site chain where the
// farthest backedge target is two hops up: item 0 primary at s2 with
// replicas at s0 AND s1. The special subtransaction must execute at s0,
// relay through s1 (also a participant), and 2PC-commit all three.
func TestBackEdgeMultiHopSpecial(t *testing.T) {
	p := placement(t, 3, []model.SiteID{2}, [][]model.SiteID{{0, 1}})
	s := buildSystem(t, BackEdge, p, testParams(), time.Millisecond)
	if err := s.engines[2].Execute([]model.Op{w(0, 31)}); err != nil {
		t.Fatal(err)
	}
	if got := s.value(t, 0, 0); got != 31 {
		t.Errorf("s0 (farthest backedge target) = %d", got)
	}
	if got := s.value(t, 1, 0); got != 31 {
		t.Errorf("s1 (intermediate backedge target) = %d", got)
	}
	s.quiesce(t)
	if err := s.recorder.CheckSerializable(); err != nil {
		t.Error(err)
	}
}

// TestBackEdgeGlobalDeadlockAborts constructs a guaranteed global
// deadlock: the backedge target's item is held by a local transaction
// that never finishes until the origin gives up. The origin must abort
// after PrepareTimeout and release everything.
func TestBackEdgeGlobalDeadlockAborts(t *testing.T) {
	p := placement(t, 2, []model.SiteID{1}, [][]model.SiteID{{0}})
	params := testParams()
	params.PrepareTimeout = 80 * time.Millisecond
	s := buildSystem(t, BackEdge, p, params, time.Millisecond)

	// Park an exclusive lock on item 0's replica at s0.
	e0 := s.engines[0].(*backedgeEngine)
	blocker := e0.tm.Begin(e0.newTxnID())
	if err := blocker.Write(0, 1); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	err := s.engines[1].Execute([]model.Op{w(0, 9)})
	if !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("expected abort, got %v", err)
	}
	if elapsed := time.Since(start); elapsed < params.PrepareTimeout {
		t.Errorf("gave up after %v, before PrepareTimeout", elapsed)
	}
	blocker.Abort()
	s.quiesce(t)
	// Nothing must have been installed anywhere.
	if got := s.value(t, 0, 0); got != 0 {
		t.Errorf("aborted backedge write installed at s0: %d", got)
	}
	if got := s.value(t, 1, 0); got != 0 {
		t.Errorf("aborted write installed at primary: %d", got)
	}
	// And the backedge site's locks must be free again: a fresh write
	// succeeds immediately.
	if err := s.engines[1].Execute([]model.Op{w(0, 10)}); err != nil {
		t.Fatalf("locks leaked after global abort: %v", err)
	}
	if got := s.value(t, 0, 0); got != 10 {
		t.Errorf("recovery write not propagated: %d", got)
	}
}

// TestBackEdgeMixedEagerAndLazy: one transaction writes an item whose
// replicas live both above (backedge) and below (DAG edge) the origin.
func TestBackEdgeMixedEagerAndLazy(t *testing.T) {
	// s1 is the primary; replicas at s0 (ancestor: eager) and s2
	// (descendant: lazy).
	p := placement(t, 3, []model.SiteID{1}, [][]model.SiteID{{0, 2}})
	s := buildSystem(t, BackEdge, p, testParams(), time.Millisecond)
	if err := s.engines[1].Execute([]model.Op{w(0, 55)}); err != nil {
		t.Fatal(err)
	}
	if got := s.value(t, 0, 0); got != 55 {
		t.Errorf("eager replica at s0 = %d", got)
	}
	s.waitValue(t, 2, 0, 55) // lazy replica arrives asynchronously
	s.quiesce(t)
	if err := s.recorder.CheckSerializable(); err != nil {
		t.Error(err)
	}
}

// TestBackEdgeWoundResolvesDeadlockFast builds the Example 4.1 deadlock
// and checks it resolves via the wound rule (a secondary blocking on the
// parked primary) long before the PrepareTimeout fallback: the parked
// primary is aborted as the designated victim.
func TestBackEdgeWoundResolvesDeadlockFast(t *testing.T) {
	p := example41Placement(t)
	params := testParams()
	params.PrepareTimeout = 2 * time.Second // far away: the wound must act first
	params.WoundGrace = 20 * time.Millisecond
	s := buildSystem(t, BackEdge, p, params, 500*time.Microsecond)

	var wg sync.WaitGroup
	var err0, err1 error
	start := time.Now()
	wg.Add(2)
	go func() {
		defer wg.Done()
		err0 = s.engines[0].Execute([]model.Op{r(1), w(0, 1)})
	}()
	go func() {
		defer wg.Done()
		err1 = s.engines[1].Execute([]model.Op{r(0), w(1, 2)})
	}()
	wg.Wait()
	elapsed := time.Since(start)
	// At least one commits; a genuine deadlock (if the interleaving hit
	// it) is broken well before PrepareTimeout.
	if err0 != nil && err1 != nil {
		t.Errorf("both aborted: %v / %v", err0, err1)
	}
	if elapsed >= params.PrepareTimeout {
		t.Errorf("deadlock resolution took %v, wound rule should beat PrepareTimeout", elapsed)
	}
	s.quiesce(t)
	if err := s.recorder.CheckSerializable(); err != nil {
		t.Error(err)
	}
}

// TestBackEdgeConcurrentMixedWorkload runs several threads of mixed
// read/write transactions over a cyclic placement and checks global
// serializability and convergence.
func TestBackEdgeConcurrentMixedWorkload(t *testing.T) {
	// 3 sites; 6 items spread so that both backedges and DAG edges exist.
	p := placement(t, 3,
		[]model.SiteID{0, 0, 1, 1, 2, 2},
		[][]model.SiteID{{1}, {2}, {0}, {2}, {0}, {1}})
	params := testParams()
	params.PrepareTimeout = 150 * time.Millisecond
	s := buildSystem(t, BackEdge, p, params, 300*time.Microsecond)

	var wg sync.WaitGroup
	for site := 0; site < 3; site++ {
		for th := 0; th < 2; th++ {
			wg.Add(1)
			go func(site, th int) {
				defer wg.Done()
				prims := s.placement.PrimariesAt(model.SiteID(site))
				copies := s.placement.CopiesAt(model.SiteID(site))
				for i := 0; i < 30; i++ {
					ops := []model.Op{
						r(copies[(i+th)%len(copies)]),
						w(prims[i%len(prims)], int64(site*10000+th*1000+i)),
						r(copies[(i+th+1)%len(copies)]),
					}
					if err := s.engines[site].Execute(ops); err != nil && !errors.Is(err, txn.ErrAborted) {
						t.Errorf("unexpected failure: %v", err)
						return
					}
				}
			}(site, th)
		}
	}
	wg.Wait()
	s.quiesce(t)
	if err := s.recorder.CheckSerializable(); err != nil {
		t.Fatalf("serializability: %v", err)
	}
	for item := 0; item < 6; item++ {
		primary := s.placement.Primary[item]
		want := s.value(t, primary, model.ItemID(item))
		for _, rep := range s.placement.ReplicaSites(model.ItemID(item)) {
			if got := s.value(t, rep, model.ItemID(item)); got != want {
				t.Errorf("item %d: primary=%d replica s%d=%d", item, want, rep, got)
			}
		}
	}
}
