package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/txn"
)

// randomPlacement builds an arbitrary placement: every item gets a random
// primary and a random replica set, so the copy graph can be any shape
// (cycles included).
func randomPlacement(t *testing.T, rng *rand.Rand, sites, items int, allowBackedges bool) *model.Placement {
	t.Helper()
	p := model.NewPlacement(sites, items)
	for i := 0; i < items; i++ {
		p.Primary[i] = model.SiteID(i % sites) // every site writes something
		lo := int(p.Primary[i]) + 1
		if allowBackedges && rng.Intn(2) == 0 {
			lo = 0
		}
		for s := lo; s < sites; s++ {
			if model.SiteID(s) != p.Primary[i] && rng.Float64() < 0.4 {
				p.Replicas[i] = append(p.Replicas[i], model.SiteID(s))
			}
		}
	}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	return p
}

// runRandomWorkload drives concurrent random transactions at every site
// and returns (commits, aborts).
func runRandomWorkload(t *testing.T, s *system, seed int64, txnsPerThread int) (int, int) {
	t.Helper()
	var wg sync.WaitGroup
	var mu sync.Mutex
	commits, aborts := 0, 0
	for site := 0; site < s.placement.NumSites; site++ {
		for th := 0; th < 2; th++ {
			wg.Add(1)
			go func(site, th int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(site*10+th)))
				prims := s.placement.PrimariesAt(model.SiteID(site))
				copies := s.placement.CopiesAt(model.SiteID(site))
				for i := 0; i < txnsPerThread; i++ {
					nops := 1 + rng.Intn(5)
					ops := make([]model.Op, 0, nops)
					for k := 0; k < nops; k++ {
						if rng.Float64() < 0.6 || len(prims) == 0 {
							ops = append(ops, model.Op{Kind: model.OpRead, Item: copies[rng.Intn(len(copies))]})
						} else {
							ops = append(ops, model.Op{
								Kind: model.OpWrite, Item: prims[rng.Intn(len(prims))],
								Value: rng.Int63(),
							})
						}
					}
					err := s.engines[site].Execute(ops)
					mu.Lock()
					if err == nil {
						commits++
					} else if errors.Is(err, txn.ErrAborted) {
						aborts++
					} else {
						mu.Unlock()
						t.Errorf("unexpected failure: %v", err)
						return
					}
					mu.Unlock()
				}
			}(site, th)
		}
	}
	wg.Wait()
	return commits, aborts
}

// checkConverged verifies every replica equals its primary on a quiesced
// system.
func checkConverged(t *testing.T, s *system) {
	t.Helper()
	for item := 0; item < s.placement.NumItems; item++ {
		want := s.value(t, s.placement.Primary[item], model.ItemID(item))
		for _, r := range s.placement.ReplicaSites(model.ItemID(item)) {
			if got := s.value(t, r, model.ItemID(item)); got != want {
				t.Errorf("item %d diverged: primary=%d, s%d=%d", item, want, r, got)
			}
		}
	}
}

// TestRandomizedSerializabilityDAGProtocols is the protocol-level
// property test: across random DAG placements and random concurrent
// workloads, DAG(WT) and DAG(T) always produce serializable executions
// and convergent replicas.
func TestRandomizedSerializabilityDAGProtocols(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized soak")
	}
	for _, proto := range []Protocol{DAGWT, DAGT} {
		proto := proto
		for seed := int64(0); seed < 4; seed++ {
			seed := seed
			t.Run(fmt.Sprintf("%v/seed=%d", proto, seed), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(seed))
				sites := 3 + rng.Intn(3)
				p := randomPlacement(t, rng, sites, 8*sites, false)
				s := buildSystem(t, proto, p, testParams(), 200*time.Microsecond)
				commits, _ := runRandomWorkload(t, s, seed, 20)
				if commits == 0 {
					t.Fatal("nothing committed")
				}
				s.quiesce(t)
				if err := s.recorder.CheckSerializable(); err != nil {
					t.Fatalf("%v violated serializability: %v", proto, err)
				}
				checkConverged(t, s)
			})
		}
	}
}

// TestRandomizedSerializabilityBackEdge is the same property on
// arbitrary (cyclic) placements under the BackEdge protocol.
func TestRandomizedSerializabilityBackEdge(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized soak")
	}
	for seed := int64(10); seed < 16; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			sites := 3 + rng.Intn(3)
			p := randomPlacement(t, rng, sites, 8*sites, true)
			params := testParams()
			params.PrepareTimeout = 300 * time.Millisecond
			s := buildSystem(t, BackEdge, p, params, 200*time.Microsecond)
			commits, aborts := runRandomWorkload(t, s, seed, 20)
			if commits == 0 {
				t.Fatal("nothing committed")
			}
			s.quiesce(t)
			if err := s.recorder.CheckSerializable(); err != nil {
				t.Fatalf("BackEdge violated serializability: %v", err)
			}
			checkConverged(t, s)
			t.Logf("commits=%d aborts=%d", commits, aborts)
		})
	}
}

// TestRandomizedSerializabilityPSL: PSL never propagates, but its
// executions must still be serializable under arbitrary placements.
func TestRandomizedSerializabilityPSL(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized soak")
	}
	for seed := int64(20); seed < 24; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			sites := 3 + rng.Intn(3)
			p := randomPlacement(t, rng, sites, 8*sites, true)
			s := buildSystem(t, PSL, p, testParams(), 200*time.Microsecond)
			commits, _ := runRandomWorkload(t, s, seed, 20)
			if commits == 0 {
				t.Fatal("nothing committed")
			}
			if err := s.recorder.CheckSerializable(); err != nil {
				t.Fatalf("PSL violated serializability: %v", err)
			}
		})
	}
}

// TestStopWithInFlightPropagation verifies a cluster can be torn down
// abruptly — queues full, secondaries mid-retry — without panics or
// hangs.
func TestStopWithInFlightPropagation(t *testing.T) {
	for _, proto := range []Protocol{DAGWT, DAGT, BackEdge, NaiveLazy} {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			p := randomPlacement(t, rng, 4, 24, proto == BackEdge || proto == NaiveLazy)
			s := buildSystem(t, proto, p, testParams(), 5*time.Millisecond)
			runRandomWorkload(t, s, 42, 10)
			// Deliberately NO quiesce: Stop (from t.Cleanup) races the
			// in-flight propagation. Success == no panic, no deadlock.
		})
	}
}
