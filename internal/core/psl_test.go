package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/txn"
)

// TestPSLRemoteReadShipsLatestValue: updates never propagate, but a
// replica read goes to the primary and must observe the newest value.
func TestPSLRemoteReadShipsLatestValue(t *testing.T) {
	p := placement(t, 2, []model.SiteID{0}, [][]model.SiteID{{1}})
	s := buildSystem(t, PSL, p, testParams(), time.Millisecond)
	if err := s.engines[0].Execute([]model.Op{w(0, 123)}); err != nil {
		t.Fatal(err)
	}
	// The replica at s1 is stale by design...
	if got := s.value(t, 1, 0); got != 0 {
		t.Errorf("PSL propagated an update: replica = %d", got)
	}
	// ...but a transaction at s1 still reads 123 via the primary. Drive
	// the engine directly and verify through the recorder: the read must
	// observe version 1 at site 0.
	if err := s.engines[1].Execute([]model.Op{r(0)}); err != nil {
		t.Fatal(err)
	}
	rep := s.collector.Snapshot(2)
	if rep.RemoteReads != 1 {
		t.Errorf("remote reads = %d, want 1", rep.RemoteReads)
	}
	if err := s.recorder.CheckSerializable(); err != nil {
		t.Error(err)
	}
}

// TestPSLRemoteLocksReleasedAfterCommit: after the reader commits, the
// primary's lock must be free so a writer proceeds without waiting out a
// timeout.
func TestPSLRemoteLocksReleasedAfterCommit(t *testing.T) {
	p := placement(t, 2, []model.SiteID{0}, [][]model.SiteID{{1}})
	s := buildSystem(t, PSL, p, testParams(), time.Millisecond)
	if err := s.engines[1].Execute([]model.Op{r(0)}); err != nil {
		t.Fatal(err)
	}
	// Release message is asynchronous; give it a moment.
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := s.engines[0].Execute([]model.Op{w(0, 1)})
		if err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("primary still locked long after reader committed: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPSLRemoteReaderBlocksWriter: while a remote reader's transaction is
// open, the primary's writer must wait (shared lock held at primary).
func TestPSLRemoteReaderBlocksWriter(t *testing.T) {
	p := placement(t, 2, []model.SiteID{0}, [][]model.SiteID{{1}})
	params := testParams()
	params.OpCost = 40 * time.Millisecond // reader holds its locks a while
	s := buildSystem(t, PSL, p, params, time.Millisecond)

	var wg sync.WaitGroup
	wg.Add(1)
	readerDone := make(chan time.Time, 1)
	go func() {
		defer wg.Done()
		// Two ops, 40ms each: the remote S lock is held ~40-80ms.
		if err := s.engines[1].Execute([]model.Op{r(0), r(0)}); err != nil {
			t.Errorf("reader: %v", err)
		}
		readerDone <- time.Now()
	}()
	time.Sleep(50 * time.Millisecond) // let the reader acquire the remote lock
	writerStart := time.Now()
	err := s.engines[0].Execute([]model.Op{w(0, 5)})
	writerEnd := time.Now()
	wg.Wait()
	rd := <-readerDone
	if err == nil && writerEnd.Before(rd) && writerEnd.Sub(writerStart) < 5*time.Millisecond {
		t.Error("writer proceeded instantly while remote reader held the shared lock")
	}
	s.quiesce(t)
	if serr := s.recorder.CheckSerializable(); serr != nil {
		t.Error(serr)
	}
}

// TestPSLConflictTimeoutAborts: a writer holding the primary's exclusive
// lock forces a remote reader into the timeout path and an abort.
func TestPSLConflictTimeoutAborts(t *testing.T) {
	p := placement(t, 2, []model.SiteID{0}, [][]model.SiteID{{1}})
	s := buildSystem(t, PSL, p, testParams(), time.Millisecond)
	e0 := s.engines[0].(*pslEngine)
	blocker := e0.tm.Begin(e0.newTxnID())
	if err := blocker.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	err := s.engines[1].Execute([]model.Op{r(0)})
	if !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("want abort, got %v", err)
	}
	blocker.Abort()
	// The aborted reader must not leave a lock behind at the primary:
	// a writer succeeds promptly (the release/cancel path ran).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if err := s.engines[0].Execute([]model.Op{w(0, 2)}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("aborted remote reader leaked a lock at the primary")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPSLSerializableUnderContention: concurrent writers at the primary
// and remote readers must produce a serializable execution.
func TestPSLSerializableUnderContention(t *testing.T) {
	p := placement(t, 3,
		[]model.SiteID{0, 1},
		[][]model.SiteID{{1, 2}, {0, 2}})
	s := buildSystem(t, PSL, p, testParams(), 300*time.Microsecond)
	var wg sync.WaitGroup
	for site := 0; site < 3; site++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			prims := s.placement.PrimariesAt(model.SiteID(site))
			for i := 0; i < 40; i++ {
				var ops []model.Op
				ops = append(ops, r(model.ItemID(i%2)))
				if len(prims) > 0 {
					ops = append(ops, w(prims[0], int64(site*1000+i)))
				}
				if err := s.engines[site].Execute(ops); err != nil && !errors.Is(err, txn.ErrAborted) {
					t.Errorf("s%d: %v", site, err)
					return
				}
			}
		}(site)
	}
	wg.Wait()
	if err := s.recorder.CheckSerializable(); err != nil {
		t.Fatalf("PSL produced a non-serializable execution: %v", err)
	}
}
