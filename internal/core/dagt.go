package core

import (
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/contend"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/ts"
	"repro/internal/wal"
	"repro/internal/watch"
)

// dagtEngine implements the DAG(T) protocol (§3). Updates travel directly
// along copy-graph edges; each site keeps one incoming queue per
// copy-graph parent and executes the secondary subtransaction with the
// minimum timestamp among the queue heads, but only once every queue is
// non-empty. Epoch numbers advanced by the sources, plus dummy
// subtransactions on idle edges, guarantee progress (§3.3).
type dagtEngine struct {
	base

	parents  []model.SiteID
	children []model.SiteID
	// childItems[c] is the set of items whose primary is here with a
	// replica at child c; a child is relevant for a transaction iff it
	// replicates one of the updated items (§3.2.2 step 3).
	childItems map[model.SiteID]map[model.ItemID]bool

	// tsMu guards the site timestamp state; it is the §3.2.2 critical
	// section together with commitMu.
	tsMu     sync.Mutex
	siteTS   ts.Timestamp               // repl:guardedby(tsMu)
	ltsi     uint64                     // primary subtransactions committed here (LTSi) // repl:guardedby(tsMu)
	lastSent map[model.SiteID]time.Time // repl:guardedby(tsMu)

	// qMu/qCond guard the per-parent queues.
	qMu    sync.Mutex
	qCond  *sync.Cond
	queues map[model.SiteID][]tsItem // repl:guardedby(qMu)

	prog *watch.Progress
}

// tsItem is one queued secondary subtransaction with the causal context
// it arrived under and its enqueue stamp (queue-wait attribution).
type tsItem struct {
	p  secondaryPayload
	sc model.SpanContext
	at time.Time
}

//lint:allow guardedby construction is single-threaded; the scheduler, tickers, and watchdog callback that share these fields only start in Start, after newDAGT returns
func newDAGT(cfg *SharedConfig, id model.SiteID, tr comm.Transport) *dagtEngine {
	e := &dagtEngine{
		base:       newBase(cfg, DAGT, id, tr),
		parents:    cfg.Graph.Parents(id),
		children:   cfg.Graph.Children(id),
		childItems: make(map[model.SiteID]map[model.ItemID]bool),
		siteTS:     ts.New(id),
		lastSent:   make(map[model.SiteID]time.Time),
		queues:     make(map[model.SiteID][]tsItem),
	}
	e.prog = cfg.Watch.Queue(id, "ts")
	e.qCond = sync.NewCond(&e.qMu)
	for _, c := range e.children {
		e.childItems[c] = make(map[model.ItemID]bool)
		//lint:allow nodeterminism lastSent feeds the wall-clock dummy ticker, not protocol ordering
		e.lastSent[c] = time.Now()
	}
	p := cfg.Placement
	for _, item := range p.PrimariesAt(id) {
		for _, r := range p.ReplicaSites(item) {
			if set, ok := e.childItems[r]; ok {
				set[item] = true
			}
		}
	}
	for _, par := range e.parents {
		e.queues[par] = nil
	}
	e.recoverWAL()
	// The watchdog's DAG(T) liveness probe: the site's current epoch plus
	// any parent whose empty queue is blocking the timestamp scheduler
	// while a sibling queue has work (the §3.3 stall the dummy mechanism
	// exists to prevent).
	cfg.Watch.RegisterEpoch(id, func() watch.EpochStatus {
		e.tsMu.Lock()
		st := watch.EpochStatus{Epoch: e.siteTS.Epoch}
		e.tsMu.Unlock()
		e.qMu.Lock()
		nonEmpty := false
		for _, par := range e.parents {
			if len(e.queues[par]) > 0 {
				nonEmpty = true
				break
			}
		}
		if nonEmpty {
			for _, par := range e.parents {
				if len(e.queues[par]) == 0 {
					st.Blocked = append(st.Blocked, par)
				}
			}
		}
		e.qMu.Unlock()
		return st
	})
	return e
}

func (e *dagtEngine) Start() {
	if len(e.parents) > 0 {
		go e.scheduler()
	}
	if len(e.children) > 0 {
		go e.dummyTicker()
	}
	if len(e.parents) == 0 && len(e.children) > 0 {
		go e.epochTicker()
	}
}

// recoverWAL rebuilds the timestamp state from the last durable apply,
// re-sends unmarked forwards, and re-enqueues unconsumed receipts (in
// log order, which is per-parent arrival order).
//
//lint:allow guardedby recovery runs inside newDAGT before any goroutine that shares the timestamp or queue state exists
func (e *dagtEngine) recoverWAL() {
	if e.wal == nil {
		return
	}
	rec := e.wal.Recovered()
	if rec.HasApply {
		// The last apply record fully determines the site timestamp: an
		// origin commit stamped its own clone; a secondary commit appended
		// the local tuple to the payload timestamp (advanceTS).
		if rec.LastRole == wal.RoleOrigin {
			e.siteTS = rec.LastTS.Clone()
		} else {
			e.siteTS = rec.LastTS.Append(ts.Tuple{Site: e.id, LTS: rec.LastLTSI})
		}
		e.ltsi = rec.LastLTSI
	}
	// Jump past every LTS advance the pre-crash incarnation could have
	// shipped without logging it (dummy bumps are deliberately not
	// durable): this site's own tuple must keep strictly increasing down
	// every edge. LTS is only ever compared against this site's own
	// earlier tuples, so an over-generous jump costs nothing.
	e.ltsi += 1 << 20
	e.siteTS.Tuples[len(e.siteTS.Tuples)-1].LTS = e.ltsi
	// The epoch is different: ts.Compare orders by epoch first, across
	// sites, so it must resume at *exactly* the largest epoch the disk
	// knows. Regressing (below a pre-crash shipment) breaks per-edge
	// timestamp monotonicity; overshooting (the tempting large jump)
	// makes every post-recovery timestamp dominate the cluster and
	// starves this site's entries in its children's min-timestamp head
	// selection until the sources tick their way up to it. Every
	// pre-crash shipment's epoch is durably backed — apply records carry
	// their timestamp, and source epoch ticks append KindEpoch before
	// publishing — so MaxEpoch is a tight, safe resume point.
	e.siteTS.Epoch = rec.MaxEpoch
	for _, f := range rec.Forwards {
		e.schedule(f.Span, f.TS, f.Writes)
	}
	for _, r := range rec.Receipts {
		e.obs.tsDepth.Inc()
		e.prog.Push()
		e.queues[r.From] = append(e.queues[r.From], tsItem{
			p: secondaryPayload{TID: r.TID, TS: r.TS, Writes: r.Writes}, sc: r.Span,
		})
	}
}

func (e *dagtEngine) Stop() {
	e.halt()
	e.qCond.Broadcast()
}

// Execute runs a primary subtransaction. At commit, inside the critical
// section, the site's local timestamp counter is incremented, the
// transaction takes the site timestamp, and secondary subtransactions are
// scheduled at the relevant children (§3.2.2).
func (e *dagtEngine) Execute(ops []model.Op) error {
	//lint:allow nodeterminism commit-latency stamp for metrics; never branches protocol logic
	start := time.Now()
	tid := e.newTxnID()
	octx := model.SpanContext{TID: tid}
	e.traceCtx(trace.TxnBegin, model.NoSite, octx)
	t := e.tm.Begin(tid)
	if err := e.runLocalOps(t, ops); err != nil {
		e.recAbort(tid, contend.Classify(err))
		return err
	}
	writes := t.Writes()
	e.commitMu.Lock()
	e.tsMu.Lock()
	e.ltsi++
	e.siteTS.Tuples[len(e.siteTS.Tuples)-1].LTS = e.ltsi
	tsT := e.siteTS.Clone()
	ltsi := e.ltsi
	e.tsMu.Unlock()
	e.armDurable(t, wal.Record{
		Kind: wal.KindApply, TID: tid, Role: wal.RoleOrigin,
		Writes: writes, Forwards: len(writes) > 0,
		TS: tsT, LTSI: ltsi, Span: octx,
	})
	err := t.Commit()
	if err == nil {
		e.traceCtx(trace.TxnCommit, model.NoSite, octx)
		e.noteCommitted(writes)
		e.schedule(octx, tsT, writes)
	}
	e.commitMu.Unlock()
	if err != nil {
		e.recAbort(tid, contend.Classify(err))
		return err
	}
	e.recCommit(tid, start)
	return nil
}

// schedule appends the transaction's writes to the incoming queues of the
// relevant children. The caller holds commitMu.
func (e *dagtEngine) schedule(sc model.SpanContext, tsT ts.Timestamp, writes []model.WriteOp) {
	out := sc.Fork(e.id)
	for _, c := range e.children {
		var local []model.WriteOp
		items := e.childItems[c]
		for _, w := range writes {
			if items[w.Item] {
				local = append(local, w)
			}
		}
		if len(local) == 0 {
			continue
		}
		e.tsMu.Lock()
		//lint:allow nodeterminism lastSent feeds the wall-clock dummy ticker, not protocol ordering
		e.lastSent[c] = time.Now()
		e.tsMu.Unlock()
		e.pendAdd(1)
		e.obs.forwarded.Inc()
		e.traceCtx(trace.SecondaryForwarded, c, sc)
		e.send(comm.Message{
			From: e.id, To: c, Kind: kindSecondary, Span: out,
			Payload: secondaryPayload{TID: sc.TID, TS: tsT, Writes: local},
		})
	}
	e.walForwarded(sc.TID)
}

// dummyTicker sends a dummy secondary subtransaction down any copy-graph
// edge that has been silent for DummyPeriod, pushing the site timestamp
// (and with it, epoch advances) forward so children never stall (§3.3).
func (e *dagtEngine) dummyTicker() {
	t := time.NewTicker(e.cfg.Params.DummyPeriod / 2)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-e.stop:
			return
		}
		//lint:allow nodeterminism dummy generation is wall-clock-driven by design (timeout t_w, SS3.2.2)
		now := time.Now()
		// commitMu makes the stamp-and-send atomic against Execute's
		// stamp → durable-commit → send sequence. Without it a dummy
		// stamped after a primary subtransaction can reach the wire before
		// it, inverting the edge's timestamp order — a race whose window
		// was nanoseconds in-memory but stretches to the whole group-commit
		// fsync once Commit holds commitMu across the log flush.
		e.commitMu.Lock()
		var idle []model.SiteID
		e.tsMu.Lock()
		for _, c := range e.children {
			if now.Sub(e.lastSent[c]) >= e.cfg.Params.DummyPeriod {
				idle = append(idle, c)
				e.lastSent[c] = now
			}
		}
		var tsD ts.Timestamp
		if len(idle) > 0 {
			// A dummy is a primary subtransaction with no updates: it bumps
			// LTSi so every timestamp sent down an edge is strictly larger
			// than its predecessors.
			e.ltsi++
			e.siteTS.Tuples[len(e.siteTS.Tuples)-1].LTS = e.ltsi
			tsD = e.siteTS.Clone()
		}
		e.tsMu.Unlock()
		for _, c := range idle {
			e.cfg.Metrics.Dummy()
			e.obs.dummies.Inc()
			e.traceEvent(trace.DummySent, c, model.TxnID{})
			e.send(comm.Message{
				From: e.id, To: c, Kind: kindSecondary,
				Payload: secondaryPayload{TS: tsD, Dummy: true},
			})
		}
		e.commitMu.Unlock()
	}
}

// epochTicker advances the epoch at source sites with the common period
// (§3.3); the new epoch reaches descendants through the timestamps of
// subsequent (real or dummy) secondary subtransactions.
func (e *dagtEngine) epochTicker() {
	t := time.NewTicker(e.cfg.Params.EpochPeriod)
	defer t.Stop()
	for {
		select {
		case <-t.C:
		case <-e.stop:
			return
		}
		e.tsMu.Lock()
		next := e.siteTS.Epoch + 1
		e.tsMu.Unlock()
		// The advance must be durable before any timestamp bearing it can
		// ship (a dummy may clone the site timestamp immediately after the
		// publish): recovery resumes at the largest durable epoch, and an
		// unlogged advance would let the restarted site send an edge a
		// smaller epoch than it already shipped.
		if e.walAppendSync(wal.Record{Kind: wal.KindEpoch, TS: ts.Timestamp{Epoch: next}}) != nil {
			return // fenced mid-crash: the tick never happened
		}
		// Only this goroutine writes a source's epoch (sources have no
		// parents, so advanceTS never runs here), making the blind store
		// safe.
		e.tsMu.Lock()
		e.siteTS.Epoch = next
		e.tsMu.Unlock()
		e.obs.epochs.Inc()
		e.traceEvent(trace.EpochAdvance, model.NoSite, model.TxnID{})
	}
}

func (e *dagtEngine) Handle(msg comm.Message) {
	if msg.IsResp {
		e.rpc.HandleResponse(msg)
		return
	}
	switch msg.Kind {
	case kindSecondary:
		p := msg.Payload.(secondaryPayload)
		if !p.Dummy {
			// Dummies are heartbeats — losing one to a crash costs nothing,
			// so only real secondaries are made durable before the ack.
			if !e.logReceipt(msg) {
				return // fenced mid-crash: dropped unacknowledged, retransmitted
			}
			e.traceCtx(trace.SecondaryEnqueued, msg.From, msg.Span)
			e.recTransport(msg, msg.Span.TID)
		}
		e.obs.tsDepth.Inc()
		e.prog.Push()
		e.qMu.Lock()
		e.queues[msg.From] = append(e.queues[msg.From], tsItem{p: p, sc: msg.Span, at: e.phaseClock()})
		e.qCond.Broadcast()
		e.qMu.Unlock()
	default:
		panic("core: DAG(T) received unexpected message kind")
	}
}

// nextSecondary blocks until every parent queue is non-empty (or the
// engine stops) and pops the head with the minimum timestamp (§3.2.3).
func (e *dagtEngine) nextSecondary() (tsItem, bool) {
	e.qMu.Lock()
	defer e.qMu.Unlock()
	for {
		if e.stopping() {
			return tsItem{}, false
		}
		ready := true
		var minP model.SiteID
		var minTS ts.Timestamp
		first := true
		for _, par := range e.parents {
			q := e.queues[par]
			if len(q) == 0 {
				ready = false
				break
			}
			if first || q[0].p.TS.Less(minTS) {
				minP, minTS, first = par, q[0].p.TS, false
			}
		}
		if ready {
			it := e.queues[minP][0]
			e.queues[minP] = e.queues[minP][1:]
			e.obs.tsDepth.Dec()
			e.prog.Pop()
			if !it.p.Dummy {
				e.phaseSince(metrics.PhaseQueueWait, minP, it.p.TID, it.at)
			}
			return it, true
		}
		e.qCond.Wait()
	}
}

// scheduler executes secondary subtransactions one at a time in timestamp
// order. On commit the site timestamp becomes TS(Ti)(si, LTSi) and the
// site epoch follows the subtransaction's epoch (§3.2.3, §3.3).
func (e *dagtEngine) scheduler() {
	for {
		it, ok := e.nextSecondary()
		if !ok {
			return
		}
		if it.p.Dummy {
			e.advanceTS(it.p.TS)
			continue
		}
		if !e.applySecondary(it.p, it.sc) {
			return
		}
		e.pendDone()
	}
}

// advanceTS installs the timestamp rule for a committed secondary. In
// steady state the scheduler pops in non-decreasing timestamp order, so
// following the subtransaction's epoch (§3.3) never regresses it; after
// a recovery, though, re-enqueued pre-crash receipts carry epochs below
// the restored MaxEpoch, and letting them roll the site epoch back would
// regress timestamps already shipped down an edge.
func (e *dagtEngine) advanceTS(tsT ts.Timestamp) {
	e.tsMu.Lock()
	nt := tsT.Append(ts.Tuple{Site: e.id, LTS: e.ltsi})
	//lint:allow tscompare scalar epoch max, not a tuple-order comparison
	if nt.Epoch < e.siteTS.Epoch {
		nt.Epoch = e.siteTS.Epoch
	}
	e.siteTS = nt
	e.tsMu.Unlock()
}

func (e *dagtEngine) applySecondary(p secondaryPayload, sc model.SpanContext) bool {
	for {
		if e.stopping() {
			return false
		}
		if e.wasApplied(p.TID) {
			// A crash-recovery re-forward duplicated this delivery:
			// consume its receipt without re-applying (exactly-once).
			return e.consumeOnly(p.TID)
		}
		t := e.tm.BeginSecondary(p.TID)
		ok := true
		for _, w := range p.Writes {
			if !e.store.Has(w.Item) {
				continue
			}
			e.simulateOp()
			if err := t.Write(w.Item, w.Value); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			e.recRetry()
			e.retryBackoff()
			continue
		}
		e.commitMu.Lock()
		// Arm unconditionally: armDurable is a no-op without a log, and
		// guarding it here would leave Commit undominated by the redo
		// append on the guarded path (waldiscipline).
		e.tsMu.Lock()
		ltsi := e.ltsi
		e.tsMu.Unlock()
		e.armDurable(t, wal.Record{
			Kind: wal.KindApply, TID: p.TID, Role: wal.RoleSecondary,
			Consumes: true, Writes: p.Writes,
			TS: p.TS, LTSI: ltsi, Span: sc,
		})
		err := t.Commit()
		if err == nil {
			e.advanceTS(p.TS)
		}
		e.commitMu.Unlock()
		if err != nil {
			e.recRetry()
			e.retryBackoff()
			continue
		}
		e.noteApplied(p.Writes)
		e.recApplied(sc)
		return true
	}
}
