package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/model"
	"repro/internal/txn"
)

// TestDAGWTRoutesThroughTree: with the chain s0-s1-s2, an update whose
// only replica lives at s2 still transits s1 (tree routing, §2), which we
// observe through the message counter: two hops, two messages.
func TestDAGWTRoutesThroughTree(t *testing.T) {
	p := placement(t, 3, []model.SiteID{0}, [][]model.SiteID{{2}})
	s := buildSystem(t, DAGWT, p, testParams(), time.Millisecond)
	if err := s.engines[0].Execute([]model.Op{w(0, 9)}); err != nil {
		t.Fatal(err)
	}
	s.waitValue(t, 2, 0, 9)
	s.quiesce(t)
	rep := s.collector.Snapshot(3)
	if rep.Messages != 2 {
		t.Errorf("messages = %d, want 2 (s0->s1->s2)", rep.Messages)
	}
	// s1 has no copy: the relayed subtransaction performed no update there.
	if got := s.value(t, 1, 0); got != 0 {
		t.Errorf("s1 should hold no copy of item 0; snapshot gave %d", got)
	}
}

// TestDAGWTSkipsIrrelevantSubtrees: under a general (bushy) tree, a write
// replicated only in one branch generates no traffic into the other.
func TestDAGWTSkipsIrrelevantSubtrees(t *testing.T) {
	// s0 -> s1 and s0 -> s2 in the copy graph via two items; the bushy
	// tree keeps s1 and s2 as siblings.
	p := placement(t, 3,
		[]model.SiteID{0, 0},
		[][]model.SiteID{{1}, {2}})
	g := graph.FromPlacement(p)
	tree, err := graph.BuildTree(g)
	if err != nil {
		t.Fatal(err)
	}
	if tree.Parent(1) != 0 || tree.Parent(2) != 0 {
		t.Fatalf("expected bushy tree, got parents %v %v", tree.Parent(1), tree.Parent(2))
	}
	s := buildSystemWithTree(t, DAGWT, p, testParams(), 0, tree)
	if err := s.engines[0].Execute([]model.Op{w(0, 3)}); err != nil {
		t.Fatal(err)
	}
	s.quiesce(t)
	rep := s.collector.Snapshot(3)
	if rep.Messages != 1 {
		t.Errorf("messages = %d, want 1 (only the s1 branch is relevant)", rep.Messages)
	}
	if got := s.value(t, 1, 0); got != 3 {
		t.Errorf("s1 item0 = %d", got)
	}
}

// TestDAGWTFIFOOrderPreserved: two dependent updates committed in order
// at s0 must apply in that order at every descendant.
func TestDAGWTFIFOOrderPreserved(t *testing.T) {
	p := placement(t, 3, []model.SiteID{0}, [][]model.SiteID{{1, 2}})
	s := buildSystem(t, DAGWT, p, testParams(), time.Millisecond)
	for i := 1; i <= 20; i++ {
		if err := s.engines[0].Execute([]model.Op{w(0, int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	s.quiesce(t)
	// Final value everywhere is the last committed write; intermediate
	// inversions would break version-order acyclicity, checked below.
	for _, site := range []model.SiteID{1, 2} {
		if got := s.value(t, site, 0); got != 20 {
			t.Errorf("s%d final = %d, want 20", site, got)
		}
	}
	if err := s.recorder.CheckSerializable(); err != nil {
		t.Error(err)
	}
}

// TestDAGWTSecondaryRetriesUntilCommit: a conflicting local transaction
// holds the lock for several timeout periods; the secondary
// subtransaction must keep resubmitting (§2) and eventually apply.
func TestDAGWTSecondaryRetriesUntilCommit(t *testing.T) {
	p := placement(t, 2, []model.SiteID{0}, [][]model.SiteID{{1}})
	s := buildSystem(t, DAGWT, p, testParams(), 0)

	e1 := s.engines[1].(*dagwtEngine)
	blocker := e1.tm.Begin(e1.newTxnID())
	if _, err := blocker.Read(0); err != nil { // S lock on the replica
		t.Fatal(err)
	}
	if err := s.engines[0].Execute([]model.Op{w(0, 4)}); err != nil {
		t.Fatal(err)
	}
	// Hold the lock across several LockTimeout periods.
	time.Sleep(5 * testParams().LockTimeout)
	if got := s.value(t, 1, 0); got != 0 {
		t.Fatalf("secondary applied through a held lock: %d", got)
	}
	blocker.Abort()
	s.waitValue(t, 1, 0, 4)
	rep := s.collector.Snapshot(2)
	if rep.Retries == 0 {
		t.Error("no retries counted; the blocking scenario did not engage")
	}
}

// TestDAGWTConcurrentSitesSerializable: full mesh of writers/readers on a
// DAG placement stays serializable and converges.
func TestDAGWTConcurrentSitesSerializable(t *testing.T) {
	p := placement(t, 3,
		[]model.SiteID{0, 0, 1, 2},
		[][]model.SiteID{{1, 2}, {1}, {2}, nil})
	s := buildSystem(t, DAGWT, p, testParams(), 200*time.Microsecond)
	var wg sync.WaitGroup
	for site := 0; site < 3; site++ {
		wg.Add(1)
		go func(site int) {
			defer wg.Done()
			prims := s.placement.PrimariesAt(model.SiteID(site))
			copies := s.placement.CopiesAt(model.SiteID(site))
			for i := 0; i < 40; i++ {
				ops := []model.Op{
					r(copies[i%len(copies)]),
					w(prims[i%len(prims)], int64(site*1000+i)),
				}
				if err := s.engines[site].Execute(ops); err != nil && !errors.Is(err, txn.ErrAborted) {
					t.Errorf("s%d: %v", site, err)
					return
				}
			}
		}(site)
	}
	wg.Wait()
	s.quiesce(t)
	if err := s.recorder.CheckSerializable(); err != nil {
		t.Fatal(err)
	}
	for item := 0; item < 4; item++ {
		want := s.value(t, s.placement.Primary[item], model.ItemID(item))
		for _, rep := range s.placement.ReplicaSites(model.ItemID(item)) {
			if got := s.value(t, rep, model.ItemID(item)); got != want {
				t.Errorf("item %d diverged at s%d: %d != %d", item, rep, got, want)
			}
		}
	}
}
