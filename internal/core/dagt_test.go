package core

import (
	"sort"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/ts"
)

// TestDAGTProgressWithSilentParent is the §3.3 scenario: s2 has two
// incomparable parents s0 and s1. A transaction committed at s0 must
// still execute at s2 even though s1 stays silent — epoch advancement and
// dummy subtransactions must unblock the scheduler.
func TestDAGTProgressWithSilentParent(t *testing.T) {
	p := placement(t, 3,
		[]model.SiteID{0, 1},
		[][]model.SiteID{{2}, {2}})
	s := buildSystem(t, DAGT, p, testParams(), time.Millisecond)
	if err := s.engines[0].Execute([]model.Op{w(0, 42)}); err != nil {
		t.Fatal(err)
	}
	// s1 never executes anything; the update must still land at s2.
	s.waitValue(t, 2, 0, 42)
	rep := s.collector.Snapshot(3)
	if rep.Dummies == 0 {
		t.Error("no dummy subtransactions were needed — the test did not exercise §3.3")
	}
}

// TestDAGTTimestampOrderAcrossChain verifies that a chain of dependent
// updates applies in order: T1 writes a at s0; after it lands at s1, T2
// writes b at s1; s2 (child of both) must apply a before b even when the
// s0→s2 edge is slower.
func TestDAGTTimestampOrderAcrossChain(t *testing.T) {
	p := example11Placement(t)
	s := buildSystem(t, DAGT, p, testParams(), time.Millisecond)
	s.transport.SetEdgeLatency(0, 2, 60*time.Millisecond)

	if err := s.engines[0].Execute([]model.Op{w(0, 7)}); err != nil {
		t.Fatal(err)
	}
	s.waitValue(t, 1, 0, 7)
	if err := s.engines[1].Execute([]model.Op{r(0), w(1, 8)}); err != nil {
		t.Fatal(err)
	}
	// When b appears at s2, a must already be there (T1's timestamp is a
	// prefix of T2's, so the scheduler is forced to order them).
	s.waitValue(t, 2, 1, 8)
	if got := s.value(t, 2, 0); got != 7 {
		t.Fatalf("s2 applied T2 before T1: a=%d", got)
	}
	s.quiesce(t)
	if err := s.recorder.CheckSerializable(); err != nil {
		t.Error(err)
	}
}

// TestDAGTManyWritersConverge floods one replica site from two parent
// sites and checks convergence plus serializability.
func TestDAGTManyWritersConverge(t *testing.T) {
	p := placement(t, 3,
		[]model.SiteID{0, 1},
		[][]model.SiteID{{2}, {2}})
	s := buildSystem(t, DAGT, p, testParams(), 200*time.Microsecond)
	done := make(chan error, 2)
	go func() {
		var err error
		for i := 0; i < 50 && err == nil; i++ {
			err = s.engines[0].Execute([]model.Op{w(0, int64(i))})
		}
		done <- err
	}()
	go func() {
		var err error
		for i := 0; i < 50 && err == nil; i++ {
			err = s.engines[1].Execute([]model.Op{w(1, int64(1000+i))})
		}
		done <- err
	}()
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	s.quiesce(t)
	if got := s.value(t, 2, 0); got != 49 {
		t.Errorf("item 0 at s2 = %d, want 49", got)
	}
	if got := s.value(t, 2, 1); got != 1049 {
		t.Errorf("item 1 at s2 = %d, want 1049", got)
	}
	if err := s.recorder.CheckSerializable(); err != nil {
		t.Error(err)
	}
}

// TestDAGTSecondaryCarriesOnlyRelevantWrites: DAG(T) ships a child only
// the writes it replicates (§3.2.2 schedules secondaries at *relevant*
// children).
func TestDAGTSecondaryCarriesOnlyRelevantWrites(t *testing.T) {
	// Items 0 and 1 primary at s0; item 0 replicated at s1, item 1 at s2.
	p := placement(t, 3,
		[]model.SiteID{0, 0},
		[][]model.SiteID{{1}, {2}})
	s := buildSystem(t, DAGT, p, testParams(), 0)
	if err := s.engines[0].Execute([]model.Op{w(0, 5), w(1, 6)}); err != nil {
		t.Fatal(err)
	}
	s.quiesce(t)
	if got := s.value(t, 1, 0); got != 5 {
		t.Errorf("s1 item0 = %d", got)
	}
	if got := s.value(t, 2, 1); got != 6 {
		t.Errorf("s2 item1 = %d", got)
	}
	// Exactly two real secondaries (one per replica site).
	if rep := s.collector.Snapshot(3); rep.Secondaries != 2 {
		t.Errorf("secondaries = %d, want 2", rep.Secondaries)
	}
}

// TestDAGTSchedulerPicksGlobalMinimumExhaustive unit-tests the §3.2.3
// scheduling rule directly: for EVERY way of splitting six totally
// ordered timestamps between two parent queues, popping while both
// queues are non-empty must yield the global minimum each time.
func TestDAGTSchedulerPicksGlobalMinimumExhaustive(t *testing.T) {
	// s2 has parents s0 and s1 (items replicated from both).
	p := placement(t, 3,
		[]model.SiteID{0, 1},
		[][]model.SiteID{{2}, {2}})
	base := buildSystem(t, DAGT, p, testParams(), 0)
	_ = base // built only to validate the placement wiring; the engine
	// under test below is constructed fresh and never started.

	mkTS := func(site model.SiteID, lts uint64) ts.Timestamp {
		v := ts.New(site)
		for i := uint64(0); i < lts; i++ {
			v = v.BumpLast()
		}
		return v
	}
	// Six timestamps with a known total order (alternating sites so the
	// reverse-site rule matters).
	all := []ts.Timestamp{
		mkTS(0, 1), mkTS(0, 2), mkTS(0, 3),
		mkTS(1, 1), mkTS(1, 2), mkTS(1, 3),
	}
	sorted := append([]ts.Timestamp(nil), all...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })

	shared := base.engines[2].(*dagtEngine).cfg
	for mask := 0; mask < 1<<len(all); mask++ {
		e := newDAGT(shared, 2, comm.NewMemTransport(0))
		// Distribute: bit set -> parent 0's queue, else parent 1's. Each
		// queue must stay internally sorted (per-sender FIFO), so feed
		// each queue its subsequence in sorted order.
		var qa, qb []ts.Timestamp
		for i, v := range sorted {
			if mask&(1<<i) != 0 {
				qa = append(qa, v)
			} else {
				qb = append(qb, v)
			}
		}
		for _, v := range qa {
			e.Handle(comm.Message{From: 0, To: 2, Kind: kindSecondary, Payload: secondaryPayload{TS: v, Dummy: true}})
		}
		for _, v := range qb {
			e.Handle(comm.Message{From: 1, To: 2, Kind: kindSecondary, Payload: secondaryPayload{TS: v, Dummy: true}})
		}
		// Pop while both queues are non-empty; the pops must follow the
		// global order exactly.
		pops := 0
		for len(e.queues[0]) > 0 && len(e.queues[1]) > 0 {
			got, ok := e.nextSecondary()
			if !ok {
				t.Fatal("scheduler stopped unexpectedly")
			}
			if !got.p.TS.Equal(sorted[pops]) {
				t.Fatalf("mask %06b pop %d: got %v, want %v", mask, pops, got.p.TS, sorted[pops])
			}
			pops++
		}
	}
}

// TestDAGTEpochMonotoneAtInteriorSite observes the site timestamp of a
// middle site and checks the epoch never decreases while traffic flows.
func TestDAGTEpochMonotoneAtInteriorSite(t *testing.T) {
	p := example11Placement(t)
	s := buildSystem(t, DAGT, p, testParams(), 0)
	e1 := s.engines[1].(*dagtEngine)
	var last uint64
	stop := time.After(150 * time.Millisecond)
	for {
		select {
		case <-stop:
			if last == 0 {
				t.Error("epoch never advanced at interior site s1")
			}
			return
		default:
		}
		e1.tsMu.Lock()
		cur := e1.siteTS.Epoch
		e1.tsMu.Unlock()
		if cur < last {
			t.Fatalf("epoch regressed: %d -> %d", last, cur)
		}
		last = cur
		time.Sleep(2 * time.Millisecond)
	}
}
