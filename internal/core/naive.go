package core

import (
	"sort"
	"time"

	"repro/internal/comm"
	"repro/internal/model"
	"repro/internal/trace"
)

// naiveEngine is the indiscriminate lazy propagation most commercial
// systems offered (§1, §1.2): after a transaction commits, its updates
// are shipped directly to every replica site and applied there as
// independent transactions with no ordering control beyond per-edge FIFO.
// Example 1.1 shows this is NOT serializable even on a DAG copy graph;
// the engine exists as the negative control for the serializability
// checker and the anomaly example.
type naiveEngine struct {
	base
}

func newNaive(cfg *SharedConfig, id model.SiteID, tr comm.Transport) *naiveEngine {
	return &naiveEngine{base: newBase(cfg, NaiveLazy, id, tr)}
}

func (e *naiveEngine) Start() {}

func (e *naiveEngine) Stop() { close(e.stop) }

func (e *naiveEngine) Execute(ops []model.Op) error {
	//lint:allow nodeterminism commit-latency stamp for metrics; never branches protocol logic
	start := time.Now()
	tid := e.newTxnID()
	octx := model.SpanContext{TID: tid}
	e.traceCtx(trace.TxnBegin, model.NoSite, octx)
	t := e.tm.Begin(tid)
	if err := e.runLocalOps(t, ops); err != nil {
		e.recAbort(tid)
		return err
	}
	e.commitMu.Lock()
	err := t.Commit()
	var writes []model.WriteOp
	if err == nil {
		e.traceCtx(trace.TxnCommit, model.NoSite, octx)
		writes = t.Writes()
		// Ship each replica site exactly the writes it stores.
		perSite := make(map[model.SiteID][]model.WriteOp)
		for _, w := range writes {
			for _, r := range e.cfg.Placement.ReplicaSites(w.Item) {
				perSite[r] = append(perSite[r], w)
			}
		}
		// Ship in site order, not map order: the transport draws its
		// seeded jitter in Send order, so map-ordered sends would perturb
		// schedule replay.
		sites := make([]model.SiteID, 0, len(perSite))
		for r := range perSite {
			sites = append(sites, r)
		}
		sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
		out := octx.Fork(e.id)
		for _, r := range sites {
			e.pendAdd(1)
			e.obs.forwarded.Inc()
			e.traceCtx(trace.SecondaryForwarded, r, octx)
			e.send(comm.Message{
				From: e.id, To: r, Kind: kindSecondary, Span: out,
				Payload: secondaryPayload{TID: tid, Writes: perSite[r]},
			})
		}
	}
	e.commitMu.Unlock()
	if err != nil {
		e.recAbort(tid)
		return err
	}
	e.recCommit(tid, start)
	return nil
}

func (e *naiveEngine) Handle(msg comm.Message) {
	if msg.IsResp {
		e.rpc.HandleResponse(msg)
		return
	}
	switch msg.Kind {
	case kindSecondary:
		// Applied on arrival, concurrently — this is precisely the
		// indiscriminate behaviour that loses serializability.
		e.traceCtx(trace.SecondaryEnqueued, msg.From, msg.Span)
		e.recTransport(msg, msg.Span.TID)
		go e.applySecondary(msg.Payload.(secondaryPayload), msg.Span)
	default:
		panic("core: NaiveLazy received unexpected message kind")
	}
}

func (e *naiveEngine) applySecondary(p secondaryPayload, sc model.SpanContext) {
	defer e.pendDone()
	for {
		if e.stopping() {
			return
		}
		t := e.tm.BeginSecondary(p.TID)
		ok := true
		for _, w := range p.Writes {
			if !e.store.Has(w.Item) {
				continue
			}
			e.simulateOp()
			if err := t.Write(w.Item, w.Value); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			e.recRetry()
			e.retryBackoff()
			continue
		}
		if err := t.Commit(); err != nil {
			e.recRetry()
			e.retryBackoff()
			continue
		}
		e.recApplied(sc)
		return
	}
}
