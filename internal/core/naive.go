package core

import (
	"sort"
	"time"

	"repro/internal/comm"
	"repro/internal/contend"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/wal"
)

// naiveEngine is the indiscriminate lazy propagation most commercial
// systems offered (§1, §1.2): after a transaction commits, its updates
// are shipped directly to every replica site and applied there as
// independent transactions with no ordering control beyond per-edge FIFO.
// Example 1.1 shows this is NOT serializable even on a DAG copy graph;
// the engine exists as the negative control for the serializability
// checker and the anomaly example.
type naiveEngine struct {
	base
}

func newNaive(cfg *SharedConfig, id model.SiteID, tr comm.Transport) *naiveEngine {
	e := &naiveEngine{base: newBase(cfg, NaiveLazy, id, tr)}
	e.recover()
	return e
}

// recover re-sends applies whose fan-out was not marked done (receivers
// deduplicate; fresh pending obligations) and re-processes unconsumed
// receipts (which inherit their original obligations — no pendAdd).
func (e *naiveEngine) recover() {
	if e.wal == nil {
		return
	}
	rec := e.wal.Recovered()
	for _, f := range rec.Forwards {
		e.fanOut(f.Span, f.TID, f.Writes)
	}
	for _, r := range rec.Receipts {
		go e.applySecondary(secondaryPayload{TID: r.TID, Writes: r.Writes}, r.Span)
	}
}

func (e *naiveEngine) Start() {}

func (e *naiveEngine) Stop() { e.halt() }

// fanOut ships each replica site exactly the writes it stores, then
// marks the propagation obligation discharged.
func (e *naiveEngine) fanOut(octx model.SpanContext, tid model.TxnID, writes []model.WriteOp) {
	perSite := make(map[model.SiteID][]model.WriteOp)
	for _, w := range writes {
		for _, r := range e.cfg.Placement.ReplicaSites(w.Item) {
			perSite[r] = append(perSite[r], w)
		}
	}
	// Ship in site order, not map order: the transport draws its
	// seeded jitter in Send order, so map-ordered sends would perturb
	// schedule replay.
	sites := make([]model.SiteID, 0, len(perSite))
	for r := range perSite {
		sites = append(sites, r)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	out := octx.Fork(e.id)
	for _, r := range sites {
		e.pendAdd(1)
		e.obs.forwarded.Inc()
		e.traceCtx(trace.SecondaryForwarded, r, octx)
		e.send(comm.Message{
			From: e.id, To: r, Kind: kindSecondary, Span: out,
			Payload: secondaryPayload{TID: tid, Writes: perSite[r]},
		})
	}
	e.walForwarded(tid)
}

func (e *naiveEngine) Execute(ops []model.Op) error {
	//lint:allow nodeterminism commit-latency stamp for metrics; never branches protocol logic
	start := time.Now()
	tid := e.newTxnID()
	octx := model.SpanContext{TID: tid}
	e.traceCtx(trace.TxnBegin, model.NoSite, octx)
	t := e.tm.Begin(tid)
	if err := e.runLocalOps(t, ops); err != nil {
		e.recAbort(tid, contend.Classify(err))
		return err
	}
	writes := t.Writes()
	e.commitMu.Lock()
	e.armDurable(t, wal.Record{
		Kind: wal.KindApply, TID: tid, Role: wal.RoleOrigin,
		Writes: writes, Forwards: len(writes) > 0, Span: octx,
	})
	err := t.Commit()
	if err == nil {
		e.traceCtx(trace.TxnCommit, model.NoSite, octx)
		e.noteCommitted(writes)
		if len(writes) > 0 {
			e.fanOut(octx, tid, writes)
		}
	}
	e.commitMu.Unlock()
	if err != nil {
		e.recAbort(tid, contend.Classify(err))
		return err
	}
	e.recCommit(tid, start)
	return nil
}

func (e *naiveEngine) Handle(msg comm.Message) {
	if msg.IsResp {
		e.rpc.HandleResponse(msg)
		return
	}
	switch msg.Kind {
	case kindSecondary:
		if !e.logReceipt(msg) {
			return // fenced mid-crash: dropped unacknowledged, retransmitted
		}
		// Applied on arrival, concurrently — this is precisely the
		// indiscriminate behaviour that loses serializability.
		e.traceCtx(trace.SecondaryEnqueued, msg.From, msg.Span)
		e.recTransport(msg, msg.Span.TID)
		go e.applySecondary(msg.Payload.(secondaryPayload), msg.Span)
	default:
		panic("core: NaiveLazy received unexpected message kind")
	}
}

// applySecondary retries the subtransaction to commit and releases its
// pending obligation only once the consumption is durable; a stop (or a
// fence) exits without pendDone, leaving the obligation to recovery.
func (e *naiveEngine) applySecondary(p secondaryPayload, sc model.SpanContext) {
	for {
		if e.stopping() {
			return
		}
		if e.wasApplied(p.TID) {
			// A crash-recovery re-forward duplicated this delivery:
			// consume its receipt without re-applying (exactly-once).
			e.consumeAndDone(p.TID)
			return
		}
		t := e.tm.BeginSecondary(p.TID)
		ok := true
		for _, w := range p.Writes {
			if !e.store.Has(w.Item) {
				continue
			}
			e.simulateOp()
			if err := t.Write(w.Item, w.Value); err != nil {
				ok = false
				break
			}
		}
		if !ok {
			e.recRetry()
			e.retryBackoff()
			continue
		}
		e.armDurable(t, wal.Record{
			Kind: wal.KindApply, TID: p.TID, Role: wal.RoleSecondary,
			Consumes: true, Writes: p.Writes, Span: sc,
		})
		if err := t.Commit(); err != nil {
			e.recRetry()
			e.retryBackoff()
			continue
		}
		e.noteApplied(p.Writes)
		e.recApplied(sc)
		e.pendDone()
		return
	}
}
