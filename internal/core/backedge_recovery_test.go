package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/model"
)

// dropFirstKind is a transport interposer that silently drops the first
// non-response message of each listed kind — the surgical network fault
// for recovery tests.
type dropFirstKind struct {
	comm.Transport

	mu      sync.Mutex
	pending map[int]bool // kind -> not yet dropped
}

func dropKinds(kinds ...int) *dropFirstKind {
	d := &dropFirstKind{pending: make(map[int]bool)}
	for _, k := range kinds {
		d.pending[k] = true
	}
	return d
}

func (d *dropFirstKind) Send(m comm.Message) error {
	if !m.IsResp {
		d.mu.Lock()
		hit := d.pending[m.Kind]
		if hit {
			d.pending[m.Kind] = false
		}
		d.mu.Unlock()
		if hit {
			return nil // vanished on the wire
		}
	}
	return d.Transport.Send(m)
}

// TestBackEdgeRecoversFromLostDecision loses the 2PC phase-2 message: the
// participant sits prepared, holding its locks, until its inquirer asks
// the coordinator and learns the logged commit. Before decision inquiry
// existed this hung forever — the exact "sites do not crash" assumption
// twopc.Run used to lean on.
func TestBackEdgeRecoversFromLostDecision(t *testing.T) {
	p := example41Placement(t)
	drop := dropKinds(kindDecision)
	s := buildSystemFull(t, BackEdge, p, testParams(), 0, nil,
		func(tr comm.Transport) comm.Transport {
			drop.Transport = tr
			return drop
		})

	// s1 writes item 1, replicated at its tree ancestor s0: the eager arm
	// runs, s0 executes the backedge subtransaction and prepares, and the
	// commit decision to s0 is the first kindDecision on the wire — gone.
	if err := s.engines[1].Execute([]model.Op{w(1, 42)}); err != nil {
		t.Fatalf("eager transaction: %v", err)
	}
	// Recovery: s0's inquirer notices the overdue prepared subtransaction
	// after PrepareTimeout and resolves it from s1's decision log.
	s.waitValue(t, 0, 1, 42)

	// The edge is not poisoned: a second eager transaction (decision now
	// delivered normally) completes promptly.
	if err := s.engines[1].Execute([]model.Op{w(1, 43)}); err != nil {
		t.Fatalf("follow-up transaction: %v", err)
	}
	s.waitValue(t, 0, 1, 43)
}

// TestBackEdgeRecoversFromLostAbortNotification loses both the special
// relay (so the origin times out and aborts unilaterally) and the abort
// notification (so the participant keeps holding the item's lock for a
// transaction the coordinator has written off). The participant must
// learn the abort by inquiry — abortEager logs the decision before
// notifying — and release its locks so the item is writable again.
func TestBackEdgeRecoversFromLostAbortNotification(t *testing.T) {
	p := example41Placement(t)
	drop := dropKinds(kindSpecial, kindBackedgeAbort)
	params := testParams()
	params.PrepareTimeout = 60 * time.Millisecond
	s := buildSystemFull(t, BackEdge, p, params, 0, nil,
		func(tr comm.Transport) comm.Transport {
			drop.Transport = tr
			return drop
		})

	// The special never comes home, so the origin aborts after
	// PrepareTimeout; the abort to s0 is dropped too.
	if err := s.engines[1].Execute([]model.Op{w(1, 7)}); err == nil {
		t.Fatal("eager transaction committed despite a lost special")
	}

	// s0 still holds item 1's write lock for the dead subtransaction. A
	// fresh eager transaction needs that lock; it can only commit once
	// s0's inquirer has learned the abort and rolled back. Retry like an
	// application would — with the tiny PrepareTimeout an attempt can
	// still lose the race against recovery and abort.
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := s.engines[1].Execute([]model.Op{w(1, 8)})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("participant never released its locks after a lost abort: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	s.waitValue(t, 0, 1, 8)
}
