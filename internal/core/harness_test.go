package core

import (
	"sync"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
)

// testParams are Table 1 parameters scaled for test speed.
func testParams() Params {
	return Params{
		LockTimeout:    20 * time.Millisecond,
		PrepareTimeout: 250 * time.Millisecond,
		EpochPeriod:    5 * time.Millisecond,
		DummyPeriod:    3 * time.Millisecond,
		OpCost:         0,
		RPCTimeout:     100 * time.Millisecond,
	}
}

// system is a hand-assembled mini-cluster for driving engines directly.
type system struct {
	placement *model.Placement
	engines   []Engine
	transport *comm.MemTransport
	recorder  *history.Recorder
	collector *metrics.Collector
	registry  *obs.Registry
	tracer    *trace.Recorder
	pending   sync.WaitGroup
}

// placement builds a model.Placement from primaries and replica lists.
func placement(t *testing.T, sites int, primary []model.SiteID, replicas [][]model.SiteID) *model.Placement {
	t.Helper()
	p := model.NewPlacement(sites, len(primary))
	copy(p.Primary, primary)
	for i, r := range replicas {
		p.Replicas[i] = r
	}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	return p
}

// buildSystem wires engines exactly the way the cluster package does
// (ID-order chain, order backedges) but under test control.
func buildSystem(t *testing.T, proto Protocol, p *model.Placement, params Params, latency time.Duration) *system {
	t.Helper()
	return buildSystemWithTree(t, proto, p, params, latency, nil)
}

// buildSystemWithTree is buildSystem with an explicit propagation tree
// (nil selects the ID-order chain).
func buildSystemWithTree(t *testing.T, proto Protocol, p *model.Placement, params Params, latency time.Duration, tree *graph.Tree) *system {
	t.Helper()
	return buildSystemFull(t, proto, p, params, latency, tree, nil)
}

// buildSystemFull additionally lets a test interpose on the transport the
// engines see (wrap non-nil), e.g. to drop selected messages.
func buildSystemFull(t *testing.T, proto Protocol, p *model.Placement, params Params, latency time.Duration, tree *graph.Tree, wrap func(comm.Transport) comm.Transport) *system {
	t.Helper()
	g := graph.FromPlacement(p)
	order := make([]model.SiteID, p.NumSites)
	for i := range order {
		order[i] = model.SiteID(i)
	}
	backs := graph.OrderBackedges(g, order)
	gdag := g.Without(backs)
	if tree == nil {
		tree = graph.BuildChain(order)
	}
	backSet := make(map[graph.Edge]bool)
	for _, e := range backs {
		backSet[e] = true
	}
	s := &system{
		placement: p,
		transport: comm.NewMemTransport(latency),
		recorder:  history.NewRecorder(),
		collector: metrics.NewCollector(true),
		registry:  obs.NewRegistry(),
		tracer:    trace.NewRecorder(),
	}
	shared := &SharedConfig{
		Placement:    p,
		Graph:        gdag,
		Order:        order,
		Tree:         tree,
		SubtreeItems: graph.SubtreeCopyItems(tree, p),
		Backedges:    backSet,
		Params:       params,
		Recorder:     s.recorder,
		Metrics:      s.collector,
		Obs:          s.registry,
		Trace:        s.tracer,
		Pending:      &s.pending,
	}
	s.collector.Begin()
	var tr comm.Transport = s.transport
	if wrap != nil {
		tr = wrap(s.transport)
	}
	for i := 0; i < p.NumSites; i++ {
		e, err := New(proto, shared, model.SiteID(i), tr)
		if err != nil {
			t.Fatal(err)
		}
		s.engines = append(s.engines, e)
		e.Start()
	}
	t.Cleanup(func() {
		for _, e := range s.engines {
			e.Stop()
		}
		_ = s.transport.Close()
	})
	return s
}

// quiesce waits for all in-flight propagation.
func (s *system) quiesce(t *testing.T) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		s.pending.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("propagation did not quiesce")
	}
}

// value reads the committed store value of item at site (bypassing
// concurrency control; use on quiet copies only).
func (s *system) value(t *testing.T, site model.SiteID, item model.ItemID) int64 {
	t.Helper()
	type snapshotter interface {
		Snapshot() map[model.ItemID]int64
	}
	return s.engines[site].(snapshotter).Snapshot()[item]
}

// waitValue polls until the copy of item at site reaches want.
func (s *system) waitValue(t *testing.T, site model.SiteID, item model.ItemID, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if s.value(t, site, item) == want {
			return
		}
		time.Sleep(500 * time.Microsecond)
	}
	t.Fatalf("s%d copy of item %d never reached %d (have %d)", site, item, want, s.value(t, site, item))
}

// example11Placement is the data layout of Example 1.1: item 0 ("a")
// primary at s0 with replicas at s1 and s2; item 1 ("b") primary at s1
// with a replica at s2.
func example11Placement(t *testing.T) *model.Placement {
	return placement(t, 3,
		[]model.SiteID{0, 1},
		[][]model.SiteID{{1, 2}, {2}})
}

// example41Placement is the layout of Example 4.1: item 0 ("a") primary
// at s0 replicated at s1; item 1 ("b") primary at s1 replicated at s0 —
// a two-site cycle in the copy graph.
func example41Placement(t *testing.T) *model.Placement {
	return placement(t, 2,
		[]model.SiteID{0, 1},
		[][]model.SiteID{{1}, {0}})
}

func r(item model.ItemID) model.Op { return model.Op{Kind: model.OpRead, Item: item} }
func w(item model.ItemID, v int64) model.Op {
	return model.Op{Kind: model.OpWrite, Item: item, Value: v}
}
