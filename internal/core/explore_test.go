package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/comm"
	"repro/internal/graph"
	"repro/internal/history"
	"repro/internal/metrics"
	"repro/internal/model"
)

// This file implements a bounded-exhaustive interleaving explorer: it
// replays a small scenario under EVERY schedule of primary-transaction
// executions and secondary-subtransaction applications (respecting
// per-edge FIFO), and checks the serializability verdict for each. It is
// the strongest evidence this repository offers that DAG(WT) is
// order-insensitive where it must be — and that NaiveLazy genuinely is
// not: the Example 1.1 anomaly appears in exactly the schedules the paper
// predicts.

// capturePair identifies a directed edge in the captured network.
type capturePair struct{ from, to model.SiteID }

// captureTransport records sends instead of delivering them, so a test
// controls exactly when (and in what interleaving) each message is
// consumed. FIFO per edge is inherent: messages pop from the front.
type captureTransport struct {
	mu     sync.Mutex
	queues map[capturePair][]comm.Message
}

func newCaptureTransport() *captureTransport {
	return &captureTransport{queues: make(map[capturePair][]comm.Message)}
}

func (c *captureTransport) Send(msg comm.Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := capturePair{msg.From, msg.To}
	c.queues[p] = append(c.queues[p], msg)
	return nil
}

func (c *captureTransport) Register(model.SiteID, comm.Handler) {}
func (c *captureTransport) Close() error                        { return nil }

// readyEdges lists edges with pending messages, deterministically ordered.
func (c *captureTransport) readyEdges() []capturePair {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []capturePair
	for p, q := range c.queues {
		if len(q) > 0 {
			out = append(out, p)
		}
	}
	// Deterministic order for stable schedule identification.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j], out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func less(a, b capturePair) bool {
	if a.from != b.from {
		return a.from < b.from
	}
	return a.to < b.to
}

func (c *captureTransport) pop(p capturePair) (comm.Message, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	q := c.queues[p]
	if len(q) == 0 {
		return comm.Message{}, false
	}
	c.queues[p] = q[1:]
	return q[0], true
}

// world is one freshly built scenario instance.
type world struct {
	engines  []Engine
	tr       *captureTransport
	recorder *history.Recorder
	prims    []func() error // primary transactions, executed at most once
}

// applyCaptured synchronously applies one captured secondary at its
// destination engine (DAG(WT) or NaiveLazy).
func (w *world) applyCaptured(msg comm.Message) {
	p := msg.Payload.(secondaryPayload)
	switch e := w.engines[msg.To].(type) {
	case *dagwtEngine:
		if !e.applySecondary(p, msg.Span) {
			panic("explorer: apply refused")
		}
	case *naiveEngine:
		e.applySecondary(p, msg.Span)
	default:
		panic("explorer: unsupported engine type")
	}
}

// step identifies one scheduled event: a primary index, or a message pop
// from an edge.
type step struct {
	primary int // -1 if this is a delivery
	edge    capturePair
}

func (s step) String() string {
	if s.primary >= 0 {
		return fmt.Sprintf("P%d", s.primary)
	}
	return fmt.Sprintf("d%d>%d", s.edge.from, s.edge.to)
}

// runSchedule replays the given schedule prefix on a fresh world and
// returns the world plus the set of enabled next steps.
func runSchedule(t *testing.T, mk func(t *testing.T) *world, schedule []step) (*world, []step) {
	t.Helper()
	w := mk(t)
	done := make([]bool, len(w.prims))
	for _, s := range schedule {
		if s.primary >= 0 {
			if done[s.primary] {
				t.Fatalf("schedule runs P%d twice", s.primary)
			}
			done[s.primary] = true
			if err := w.prims[s.primary](); err != nil {
				t.Fatalf("primary %d: %v", s.primary, err)
			}
		} else {
			msg, ok := w.tr.pop(s.edge)
			if !ok {
				t.Fatalf("schedule pops empty edge %v", s.edge)
			}
			w.applyCaptured(msg)
		}
	}
	var next []step
	for i, d := range done {
		if !d {
			next = append(next, step{primary: i})
		}
	}
	for _, e := range w.tr.readyEdges() {
		next = append(next, step{primary: -1, edge: e})
	}
	return w, next
}

// explore enumerates every maximal schedule and invokes check on each
// completed world. Returns the number of schedules explored.
func explore(t *testing.T, mk func(t *testing.T) *world, check func(schedule []step, w *world)) int {
	t.Helper()
	count := 0
	var rec func(prefix []step)
	rec = func(prefix []step) {
		w, next := runSchedule(t, mk, prefix)
		if len(next) == 0 {
			check(prefix, w)
			count++
			return
		}
		for _, s := range next {
			rec(append(append([]step(nil), prefix...), s))
		}
	}
	rec(nil)
	return count
}

// example11World builds the Example 1.1 scenario on unstarted engines
// over a capture transport: T1 at s0 writes a; T2 at s1 reads a, writes
// b; T3 at s2 reads a and b.
func example11World(proto Protocol) func(t *testing.T) *world {
	return func(t *testing.T) *world {
		t.Helper()
		p := example11Placement(t)
		g := graph.FromPlacement(p)
		order := []model.SiteID{0, 1, 2}
		tree := graph.BuildChain(order)
		tr := newCaptureTransport()
		rec := history.NewRecorder()
		shared := &SharedConfig{
			Placement:    p,
			Graph:        g,
			Order:        order,
			Tree:         tree,
			SubtreeItems: graph.SubtreeCopyItems(tree, p),
			Params:       testParams(),
			Recorder:     rec,
			Metrics:      metrics.NewCollector(false),
		}
		w := &world{tr: tr, recorder: rec}
		for i := 0; i < 3; i++ {
			e, err := New(proto, shared, model.SiteID(i), tr)
			if err != nil {
				t.Fatal(err)
			}
			// Deliberately NOT started: the explorer is the scheduler.
			w.engines = append(w.engines, e)
		}
		w.prims = []func() error{
			func() error { return w.engines[0].Execute([]model.Op{w1(0, 11)}) },
			func() error { return w.engines[1].Execute([]model.Op{r(0), w1(1, 22)}) },
			func() error { return w.engines[2].Execute([]model.Op{r(0), r(1)}) },
		}
		return w
	}
}

func w1(item model.ItemID, v int64) model.Op {
	return model.Op{Kind: model.OpWrite, Item: item, Value: v}
}

// TestExhaustiveExample11DAGWT: across EVERY schedule, DAG(WT) is
// serializable and, once drained, converged.
func TestExhaustiveExample11DAGWT(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration")
	}
	n := explore(t, example11World(DAGWT), func(schedule []step, w *world) {
		if err := w.recorder.CheckSerializable(); err != nil {
			t.Fatalf("DAG(WT) violated serializability under schedule %v: %v", schedule, err)
		}
		// Drained: replicas match primaries.
		type snap interface {
			Snapshot() map[model.ItemID]int64
		}
		a0 := w.engines[0].(snap).Snapshot()[0]
		for s := 1; s < 3; s++ {
			if got := w.engines[s].(snap).Snapshot()[0]; got != a0 {
				t.Fatalf("item 0 diverged under %v: s0=%d s%d=%d", schedule, a0, s, got)
			}
		}
	})
	// Tree routing serializes deliveries (s0->s1 strictly before s1->s2),
	// so DAG(WT) has fewer schedules than NaiveLazy's parallel fan-out —
	// 42 vs 120 here. That reduction in concurrency IS the protocol.
	if n < 30 {
		t.Fatalf("only %d schedules explored; the scenario should branch more", n)
	}
	t.Logf("DAG(WT): %d schedules, all serializable", n)
}

// TestExhaustiveExample11NaiveLazy: the anomaly appears in SOME schedule
// (the paper's Example 1.1 interleaving), while plenty of schedules are
// fine — indiscriminate propagation is unsafe, not always-wrong.
func TestExhaustiveExample11NaiveLazy(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive exploration")
	}
	bad, good := 0, 0
	n := explore(t, example11World(NaiveLazy), func(schedule []step, w *world) {
		if err := w.recorder.CheckSerializable(); err != nil {
			bad++
		} else {
			good++
		}
	})
	if bad == 0 {
		t.Fatalf("no schedule of %d produced the Example 1.1 anomaly", n)
	}
	if good == 0 {
		t.Fatalf("every schedule was non-serializable; the explorer is broken")
	}
	t.Logf("NaiveLazy: %d schedules, %d serializable, %d anomalous", n, good, bad)
}
