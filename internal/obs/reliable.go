package obs

import (
	"strconv"
	"sync"

	"repro/internal/model"
)

// ReliableStats adapts a Registry to the comm.ReliableStats observer,
// caching per-edge handles like CommStats does. Exported series:
//
//	repl_reliable_retransmits_total{from,to}  messages retransmitted
//	repl_reliable_dup_dropped_total{from,to}  duplicates discarded on receive
//	repl_reliable_buffered_total{from,to}     out-of-order arrivals buffered
type ReliableStats struct {
	r     *Registry
	mu    sync.RWMutex
	edges map[edgeKey]*relEdgeMetrics
}

type relEdgeMetrics struct {
	retransmits *Counter
	dups        *Counter
	buffered    *Counter
}

// NewReliableStats returns an adapter writing into r; a nil r yields an
// adapter whose updates are no-ops.
func NewReliableStats(r *Registry) *ReliableStats {
	return &ReliableStats{r: r, edges: make(map[edgeKey]*relEdgeMetrics)}
}

func (s *ReliableStats) edge(from, to model.SiteID) *relEdgeMetrics {
	k := edgeKey{from, to}
	s.mu.RLock()
	e, ok := s.edges[k]
	s.mu.RUnlock()
	if ok {
		return e
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok = s.edges[k]; ok {
		return e
	}
	lf := Label{Key: "from", Value: strconv.Itoa(int(from))}
	lt := Label{Key: "to", Value: strconv.Itoa(int(to))}
	e = &relEdgeMetrics{
		retransmits: s.r.Counter("repl_reliable_retransmits_total", lf, lt),
		dups:        s.r.Counter("repl_reliable_dup_dropped_total", lf, lt),
		buffered:    s.r.Counter("repl_reliable_buffered_total", lf, lt),
	}
	s.edges[k] = e
	return e
}

// RelRetransmit implements comm.ReliableStats.
func (s *ReliableStats) RelRetransmit(from, to model.SiteID, n int) {
	s.edge(from, to).retransmits.Add(uint64(n))
}

// RelDupDropped implements comm.ReliableStats.
func (s *ReliableStats) RelDupDropped(from, to model.SiteID) {
	s.edge(from, to).dups.Inc()
}

// RelBuffered implements comm.ReliableStats.
func (s *ReliableStats) RelBuffered(from, to model.SiteID) {
	s.edge(from, to).buffered.Inc()
}
