package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// Golden coverage for the Prometheus text exposition's edge cases: the
// quiet corners (empty registry), the quoting rules (label values with
// quotes, backslashes, newlines), and histogram extremes (zero,
// negative, and beyond-last-bucket observations landing in the +Inf
// bucket). Regenerate with:
//
//	go test ./internal/obs -run TestWritePrometheusGolden -update
var update = os.Getenv("UPDATE_GOLDEN") != ""

func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestWritePrometheusGoldenEmpty(t *testing.T) {
	var sb strings.Builder
	if err := NewRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "" {
		t.Errorf("empty registry rendered %q, want empty output", sb.String())
	}
	// A nil registry must render identically (the disabled-observation
	// contract).
	var nilReg *Registry
	sb.Reset()
	if err := nilReg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "" {
		t.Errorf("nil registry rendered %q, want empty output", sb.String())
	}
}

func TestWritePrometheusGoldenEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("repl_esc_total", Label{Key: "q", Value: `say "hi"`}).Add(1)
	r.Counter("repl_esc_total", Label{Key: "q", Value: `back\slash`}).Add(2)
	r.Counter("repl_esc_total", Label{Key: "q", Value: "line\nbreak"}).Add(3)
	r.Gauge("repl_esc_gauge", Label{Key: "a", Value: "x"}, Label{Key: "b", Value: ""}).Set(-7)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "prometheus_escaping.golden", sb.String())

	// The escaped page must survive its own parser.
	parsed, err := ParsePrometheus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParsePrometheus on escaped output: %v", err)
	}
	if got := parsed[`repl_esc_total{q="say \"hi\""}`]; got != 1 {
		t.Errorf("quoted label parsed to %d, want 1 (have keys %v)", got, keys(parsed))
	}
}

func TestWritePrometheusGoldenHistogramExtremes(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("repl_extreme_seconds", Label{Key: "site", Value: "0"})
	h.Observe(0)                // below the first bucket bound
	h.Observe(-time.Second)     // negative = "unknown": ignored by contract
	h.Observe(time.Microsecond) // exactly the first bound
	h.Observe(42 * time.Hour)   // far beyond the last bound: +Inf bucket
	h.Observe(1<<62 - 1)        // near-overflow duration, still +Inf
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	goldenCompare(t, "prometheus_histogram_extremes.golden", out)

	if !strings.Contains(out, `le="+Inf"} 4`) {
		t.Errorf("+Inf bucket must be cumulative over the 4 counted observations (negatives are ignored):\n%s", out)
	}
}

// TestParsePrometheusRoundTrip pins the contract ParsePrometheus
// documents: parsing a registry's exposition reproduces its Snapshot.
func TestParsePrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("repl_txn_committed_total", Label{Key: "site", Value: "0"}).Add(12)
	r.Counter("repl_txn_committed_total", Label{Key: "site", Value: "1"}).Add(9)
	r.Gauge("repl_queue_depth", Label{Key: "site", Value: "0"}, Label{Key: "queue", Value: "fifo"}).Set(4)
	r.Gauge("repl_protocol_info", Label{Key: "protocol", Value: "dagwt"}).Set(1)
	h := r.Histogram("repl_apply_seconds", Label{Key: "site", Value: "0"})
	h.Observe(3 * time.Millisecond)
	h.Observe(70 * time.Microsecond)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParsePrometheus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if len(parsed) != len(snap) {
		t.Fatalf("parsed %d series, snapshot has %d\nparsed: %v\nsnapshot: %v",
			len(parsed), len(snap), keys(parsed), keys(snap))
	}
	for k, want := range snap {
		got, ok := parsed[k]
		if !ok {
			t.Errorf("snapshot key %q missing from parsed page", k)
			continue
		}
		// formatSeconds keeps 9 decimal digits, so nanosecond sums
		// round-trip exactly.
		if got != want {
			t.Errorf("series %q: parsed %d, snapshot %d", k, got, want)
		}
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, page := range []string{
		"repl_x_total 5\n", // sample without # TYPE
		"# TYPE repl_x_total counter\nrepl_x_total five\n", // non-numeric value
		"# TYPE repl_x_total counter\nrepl_x_total\n",      // no value at all
	} {
		if _, err := ParsePrometheus(strings.NewReader(page)); err == nil {
			t.Errorf("ParsePrometheus accepted %q", page)
		}
	}
}

func keys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
