package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
)

// The expvar package keeps a single process-global variable namespace and
// panics on duplicate Publish, so the registry is exported through one
// published Func that reads whichever registry most recently asked to be
// exported (tests create many registries; the live binary creates one).
var (
	expvarOnce    sync.Once
	expvarCurrent atomic.Pointer[Registry]
)

func (r *Registry) publishExpvar() {
	expvarCurrent.Store(r)
	expvarOnce.Do(func() {
		expvar.Publish("repl", expvar.Func(func() any {
			return expvarCurrent.Load().Snapshot()
		}))
	})
}

// Handler returns the observability endpoint for a running node:
//
//	/metrics          Prometheus text exposition of every series
//	/debug/vars       expvar JSON (this registry under "repl", plus the
//	                  runtime's memstats/cmdline)
//	/debug/pprof/*    the standard pprof profiles
//
// Mount it on its own listener (cmd/replnode's -obs flag) or into an
// existing mux.
func (r *Registry) Handler() http.Handler {
	r.publishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
