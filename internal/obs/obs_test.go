package obs

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryAndHandlesAreNoops(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil handles")
	}
	c.Inc()
	c.Add(5)
	g.Inc()
	g.Dec()
	g.Set(9)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil handles accumulated values")
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot non-nil")
	}
}

// Disabled observation must not allocate: engines keep nil handles and
// call through them unconditionally.
func TestNilHandlesNeverAllocate(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Inc()
		g.Dec()
		h.Observe(time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("nil handles allocate %.1f per op", allocs)
	}
}

// Live updates must not allocate either — these run inside the txn hot
// path.
func TestLiveHandlesNeverAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", Label{Key: "site", Value: "0"})
	g := r.Gauge("g", Label{Key: "site", Value: "0"})
	h := r.Histogram("h_seconds")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Inc()
		g.Dec()
		h.Observe(123 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("live handles allocate %.1f per op", allocs)
	}
}

func TestHandlesAreStableAndLabelOrderInsensitive(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", Label{"a", "1"}, Label{"b", "2"})
	b := r.Counter("x_total", Label{"b", "2"}, Label{"a", "1"})
	if a != b {
		t.Fatal("label order created distinct series")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("handles not shared")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("repl_txn_committed_total", Label{"site", "0"}).Add(7)
	r.Counter("repl_txn_committed_total", Label{"site", "1"}).Add(3)
	r.Gauge("repl_queue_depth", Label{"site", "0"}, Label{"queue", "fifo"}).Set(4)
	h := r.Histogram("repl_comm_send_latency_seconds", Label{"from", "0"}, Label{"to", "1"})
	h.Observe(150 * time.Microsecond)
	h.Observe(3 * time.Second) // lands in +Inf

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE repl_txn_committed_total counter",
		`repl_txn_committed_total{site="0"} 7`,
		`repl_txn_committed_total{site="1"} 3`,
		"# TYPE repl_queue_depth gauge",
		`repl_queue_depth{queue="fifo",site="0"} 4`,
		"# TYPE repl_comm_send_latency_seconds histogram",
		`repl_comm_send_latency_seconds_bucket{from="0",to="1",le="+Inf"} 2`,
		`repl_comm_send_latency_seconds_count{from="0",to="1"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the 150µs observation appears in every
	// bucket from 256µs up.
	if !strings.Contains(out, `le="0.000256"} 1`) {
		t.Errorf("cumulative bucket missing:\n%s", out)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := &Histogram{}
	h.Observe(500 * time.Nanosecond) // below first bound -> bucket 0
	h.Observe(time.Microsecond)      // == first bound -> bucket 0
	h.Observe(3 * time.Second)       // beyond last bound -> +Inf
	h.Observe(-time.Second)          // ignored
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.counts[0].Load(); got != 2 {
		t.Fatalf("bucket0 = %d", got)
	}
	if got := h.counts[numBuckets].Load(); got != 1 {
		t.Fatalf("+Inf = %d", got)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("repl_txn_committed_total", Label{"site", "0"}).Add(2)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, `repl_txn_committed_total{site="0"} 2`) {
		t.Errorf("/metrics: %d\n%s", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "repl_txn_committed_total") {
		t.Errorf("/debug/vars: %d\n%s", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: %d\n%s", code, body)
	}
}

func TestConcurrentRegistryUse(t *testing.T) {
	r := NewRegistry()
	cs := NewCommStats(r)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("c_total", Label{"site", "0"})
			for i := 0; i < 200; i++ {
				c.Inc()
				r.Gauge("g", Label{"i", "x"}).Inc()
				cs.CommSent(0, 1, 100)
				cs.CommLatency(0, 1, time.Duration(g+1)*time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c_total", Label{"site", "0"}).Value(); got != 1600 {
		t.Fatalf("counter = %d", got)
	}
	snap := r.Snapshot()
	if snap[`repl_comm_messages_total{from="0",to="1"}`] != 1600 {
		t.Fatalf("comm messages = %v", snap)
	}
	if snap[`repl_comm_bytes_total{from="0",to="1"}`] != 160000 {
		t.Fatalf("comm bytes = %v", snap)
	}
}

func TestCommStatsWithNilRegistry(t *testing.T) {
	cs := NewCommStats(nil)
	cs.CommSent(0, 1, 10)
	cs.CommLatency(0, 1, time.Millisecond)
	cs.CommLatency(1, 0, -1) // unknown latency must be dropped, not panic
}
