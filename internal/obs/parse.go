package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ParsePrometheus parses the text exposition WritePrometheus produces
// back into the Snapshot key space: counters and gauges as values keyed
// `family{labels}`, histograms as `family{labels}:count` and
// `family{labels}:sum_ns` pairs (bucket lines are consumed and
// discarded). It exists so remote consumers — repltop's -scrape mode —
// can feed a scraped /metrics page into the same code paths an
// in-process Registry.Snapshot feeds, and it round-trips: for any
// registry r, ParsePrometheus(WritePrometheus output) == r.Snapshot().
//
// Only the subset WritePrometheus emits is supported; # TYPE comments
// are required to recognize histogram families. Unparseable sample
// lines are an error (a truncated scrape should fail loudly, not shave
// series).
func ParsePrometheus(r io.Reader) (map[string]int64, error) {
	out := make(map[string]int64)
	types := make(map[string]string)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) == 4 && fields[1] == "TYPE" {
				types[fields[2]] = fields[3]
			}
			continue
		}
		// `name{labels} value` or `name value`; the value is the final
		// space-separated token (label values are quoted, so an embedded
		// space never ends the line).
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("obs: unparseable sample line %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		name := key
		if brace := strings.IndexByte(name, '{'); brace >= 0 {
			name = name[:brace]
		}
		switch {
		case types[name] == "counter" || types[name] == "gauge":
			v, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: bad %s value %q in %q", types[name], valStr, line)
			}
			out[key] = v
		case histogramPart(name, "_bucket", types):
			// Cumulative bucket counts are not part of the Snapshot key
			// space; _sum/_count carry everything downstream consumers use.
		case histogramPart(name, "_count", types):
			v, err := strconv.ParseInt(valStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: bad histogram count %q in %q", valStr, line)
			}
			out[rekeyHistogram(key, name, "_count", ":count")] = v
		case histogramPart(name, "_sum", types):
			secs, err := strconv.ParseFloat(valStr, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: bad histogram sum %q in %q", valStr, line)
			}
			out[rekeyHistogram(key, name, "_sum", ":sum_ns")] = int64(math.Round(secs * 1e9))
		default:
			return nil, fmt.Errorf("obs: sample %q has no preceding # TYPE", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// histogramPart reports whether name is `<family><suffix>` for a family
// declared as a histogram.
func histogramPart(name, suffix string, types map[string]string) bool {
	base, ok := strings.CutSuffix(name, suffix)
	return ok && types[base] == "histogram"
}

// rekeyHistogram converts `family_sum{labels}` into the Snapshot form
// `family{labels}:sum_ns` (and likewise _count → :count).
func rekeyHistogram(key, name, suffix, tag string) string {
	family := strings.TrimSuffix(name, suffix)
	labels := key[len(name):] // "{...}" or ""
	return family + labels + tag
}
