// Package obs is the live metrics registry: lock-free atomic counters,
// gauges and duration histograms that running engines and transports
// update in place, exported on demand in Prometheus text format and as
// expvar JSON (see Handler). It complements internal/metrics — which
// summarizes a finished run — by making a *running* cluster observable:
// per-site commit/abort/apply counts, pending-secondary queue depths, and
// per-edge communication volume and latency.
//
// Handles returned by a nil *Registry are nil, and every method on a nil
// handle is a no-op, so instrumented hot paths pay exactly one branch when
// observation is disabled and never allocate.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name=value dimension of a metric series.
type Label struct{ Key, Value string }

// Counter is a monotonically-increasing atomic counter. A nil *Counter is
// a valid no-op.
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Add(1)
	}
}

// Add adds d.
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.n.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge is a valid no-op.
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() {
	if g != nil {
		g.v.Add(1)
	}
}

// Dec subtracts one.
func (g *Gauge) Dec() {
	if g != nil {
		g.v.Add(-1)
	}
}

// Add adds d (negative to subtract).
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// numBuckets exponential duration buckets: 1µs, 2µs, ... doubling to
// ~1s, plus the implicit +Inf bucket. Wide enough for everything from a
// MemTransport hop (~150µs) to a stalled propagation (seconds).
const numBuckets = 21

// bucketBounds[i] is the inclusive upper bound of bucket i, in
// nanoseconds.
var bucketBounds = func() [numBuckets]int64 {
	var b [numBuckets]int64
	bound := int64(1000) // 1µs
	for i := range b {
		b[i] = bound
		bound *= 2
	}
	return b
}()

// Histogram accumulates duration observations into exponential buckets.
// A nil *Histogram is a valid no-op.
type Histogram struct {
	counts [numBuckets + 1]atomic.Uint64 // last slot is +Inf
	sum    atomic.Int64                  // nanoseconds
	count  atomic.Uint64
}

// Observe records one duration; negative values are ignored (transports
// pass a negative latency to mean "unknown").
func (h *Histogram) Observe(d time.Duration) {
	if h == nil || d < 0 {
		return
	}
	ns := int64(d)
	i := 0
	for i < numBuckets && ns > bucketBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// series is one registered metric series: a family name plus rendered
// labels.
type series struct {
	family string
	labels string // `site="0",queue="fifo"` or ""
}

func (s series) String() string {
	if s.labels == "" {
		return s.family
	}
	return s.family + "{" + s.labels + "}"
}

// Registry holds a process's metric series. Get-or-create methods return
// stable handles that callers cache; updates through the handles are
// lock-free. A nil *Registry returns nil handles, making disabled
// observation free. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.Mutex
	counters   map[series]*Counter
	gauges     map[series]*Gauge
	histograms map[series]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[series]*Counter),
		gauges:     make(map[series]*Gauge),
		histograms: make(map[series]*Histogram),
	}
}

func makeSeries(family string, labels []Label) series {
	if len(labels) == 0 {
		return series{family: family}
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	sort.Strings(parts)
	return series{family: family, labels: strings.Join(parts, ",")}
}

// Counter returns the counter for the series, creating it if needed.
func (r *Registry) Counter(family string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	s := makeSeries(family, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[s]
	if !ok {
		c = &Counter{}
		r.counters[s] = c
	}
	return c
}

// Gauge returns the gauge for the series, creating it if needed.
func (r *Registry) Gauge(family string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	s := makeSeries(family, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[s]
	if !ok {
		g = &Gauge{}
		r.gauges[s] = g
	}
	return g
}

// Histogram returns the histogram for the series, creating it if needed.
func (r *Registry) Histogram(family string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	s := makeSeries(family, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[s]
	if !ok {
		h = &Histogram{}
		r.histograms[s] = h
	}
	return h
}

// WritePrometheus renders every series in the Prometheus text exposition
// format (version 0.0.4), sorted for stable scrapes. Durations are
// exported in seconds, following the Prometheus convention.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	counters := make(map[series]uint64, len(r.counters))
	for s, c := range r.counters {
		counters[s] = c.Value()
	}
	gauges := make(map[series]int64, len(r.gauges))
	for s, g := range r.gauges {
		gauges[s] = g.Value()
	}
	type histSnap struct {
		counts [numBuckets + 1]uint64
		sum    int64
		count  uint64
	}
	hists := make(map[series]histSnap, len(r.histograms))
	for s, h := range r.histograms {
		var snap histSnap
		for i := range h.counts {
			snap.counts[i] = h.counts[i].Load()
		}
		snap.sum, snap.count = h.sum.Load(), h.count.Load()
		hists[s] = snap
	}
	r.mu.Unlock()

	var b strings.Builder
	writeFamily := func(kind string, all []series, emit func(series)) {
		sort.Slice(all, func(i, j int) bool {
			if all[i].family != all[j].family {
				return all[i].family < all[j].family
			}
			return all[i].labels < all[j].labels
		})
		last := ""
		for _, s := range all {
			if s.family != last {
				fmt.Fprintf(&b, "# TYPE %s %s\n", s.family, kind)
				last = s.family
			}
			emit(s)
		}
	}

	cs := make([]series, 0, len(counters))
	for s := range counters {
		cs = append(cs, s)
	}
	writeFamily("counter", cs, func(s series) {
		fmt.Fprintf(&b, "%s %d\n", s, counters[s])
	})

	gs := make([]series, 0, len(gauges))
	for s := range gauges {
		gs = append(gs, s)
	}
	writeFamily("gauge", gs, func(s series) {
		fmt.Fprintf(&b, "%s %d\n", s, gauges[s])
	})

	hs := make([]series, 0, len(hists))
	for s := range hists {
		hs = append(hs, s)
	}
	writeFamily("histogram", hs, func(s series) {
		snap := hists[s]
		cum := uint64(0)
		for i, n := range snap.counts {
			cum += n
			le := "+Inf"
			if i < numBuckets {
				le = formatSeconds(bucketBounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{%sle=%q} %d\n", s.family, labelPrefix(s), le, cum)
		}
		fmt.Fprintf(&b, "%s %s\n", seriesName(s.family+"_sum", s.labels), formatSeconds(snap.sum))
		fmt.Fprintf(&b, "%s %d\n", seriesName(s.family+"_count", s.labels), snap.count)
	})

	_, err := io.WriteString(w, b.String())
	return err
}

func labelPrefix(s series) string {
	if s.labels == "" {
		return ""
	}
	return s.labels + ","
}

func seriesName(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

func formatSeconds(ns int64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", float64(ns)/1e9), "0"), ".")
}

// Snapshot returns every scalar series (counters and gauges as values,
// histograms as count/sum pairs) keyed by rendered series name — the
// expvar export and a convenient assertion surface for tests.
func (r *Registry) Snapshot() map[string]int64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges)+2*len(r.histograms))
	for s, c := range r.counters {
		out[s.String()] = int64(c.Value())
	}
	for s, g := range r.gauges {
		out[s.String()] = g.Value()
	}
	for s, h := range r.histograms {
		out[s.String()+":count"] = int64(h.Count())
		out[s.String()+":sum_ns"] = int64(h.Sum())
	}
	return out
}
