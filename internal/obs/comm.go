package obs

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/model"
)

// CommStats adapts a Registry to the comm.Stats observer interface,
// caching the per-edge metric handles so the transport hot path performs
// two atomic adds instead of registry lookups. Exported series:
//
//	repl_comm_messages_total{from,to}        messages sent per directed edge
//	repl_comm_bytes_total{from,to}           (approximate) wire bytes sent
//	repl_comm_send_latency_seconds{from,to}  per-edge latency histogram:
//	                                         transit latency on the
//	                                         in-process transport, local
//	                                         send latency on TCP
//	repl_comm_reconnects_total{from,to}      broken connections re-dialed
//	                                         (TCP only)
type CommStats struct {
	r     *Registry
	mu    sync.RWMutex
	edges map[edgeKey]*edgeMetrics
}

type edgeKey struct{ from, to model.SiteID }

type edgeMetrics struct {
	msgs    *Counter
	bytes   *Counter
	lat     *Histogram
	reconns *Counter
}

// NewCommStats returns an adapter writing into r; a nil r yields an
// adapter whose updates are no-ops.
func NewCommStats(r *Registry) *CommStats {
	return &CommStats{r: r, edges: make(map[edgeKey]*edgeMetrics)}
}

func (s *CommStats) edge(from, to model.SiteID) *edgeMetrics {
	k := edgeKey{from, to}
	s.mu.RLock()
	e, ok := s.edges[k]
	s.mu.RUnlock()
	if ok {
		return e
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok = s.edges[k]; ok {
		return e
	}
	lf := Label{Key: "from", Value: strconv.Itoa(int(from))}
	lt := Label{Key: "to", Value: strconv.Itoa(int(to))}
	e = &edgeMetrics{
		msgs:    s.r.Counter("repl_comm_messages_total", lf, lt),
		bytes:   s.r.Counter("repl_comm_bytes_total", lf, lt),
		lat:     s.r.Histogram("repl_comm_send_latency_seconds", lf, lt),
		reconns: s.r.Counter("repl_comm_reconnects_total", lf, lt),
	}
	s.edges[k] = e
	return e
}

// CommSent implements comm.Stats.
func (s *CommStats) CommSent(from, to model.SiteID, bytes int) {
	e := s.edge(from, to)
	e.msgs.Inc()
	e.bytes.Add(uint64(bytes))
}

// CommLatency implements comm.Stats; negative durations (unknown) are
// dropped by the histogram.
func (s *CommStats) CommLatency(from, to model.SiteID, d time.Duration) {
	s.edge(from, to).lat.Observe(d)
}

// CommReconnect implements comm.ReconnectStats.
func (s *CommStats) CommReconnect(from, to model.SiteID) {
	s.edge(from, to).reconns.Inc()
}
