package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/model"
)

// synthTxn records a synthetic two-hop propagation: the primary at site 0
// commits and forwards to site 1, which applies and forwards to site 2,
// which applies. Returns the events and the transaction id.
func synthTxn(t *testing.T, seq uint64) ([]Event, model.TxnID) {
	t.Helper()
	tid := model.TxnID{Site: 0, Seq: seq}
	octx := model.SpanContext{TID: tid}
	hop1 := octx.Fork(0)
	hop2 := hop1.Fork(1)
	rec := NewRecorder()
	recCtx := func(k Kind, site, peer model.SiteID, sc model.SpanContext) {
		rec.RecordSpan(k, site, peer, sc.TID, 1, sc.SpanAt(site), sc.Parent)
	}
	recCtx(TxnBegin, 0, model.NoSite, octx)
	recCtx(TxnCommit, 0, model.NoSite, octx)
	recCtx(SecondaryForwarded, 0, 1, octx)
	recCtx(SecondaryEnqueued, 1, 0, hop1)
	recCtx(SecondaryApplied, 1, model.NoSite, hop1)
	recCtx(SecondaryForwarded, 1, 2, hop1)
	recCtx(SecondaryEnqueued, 2, 1, hop2)
	recCtx(SecondaryApplied, 2, model.NoSite, hop2)
	return rec.Snapshot(), tid
}

func TestBuildSpanTreesReconstructsChain(t *testing.T) {
	events, tid := synthTxn(t, 1)
	trees := BuildSpanTrees(events)
	tr := trees[tid]
	if tr == nil {
		t.Fatal("no tree for the transaction")
	}
	if tr.Root == nil || tr.Root.ID != model.RootSpan(tid) {
		t.Fatalf("root span missing or wrong: %+v", tr.Root)
	}
	if len(tr.Orphans) != 0 {
		t.Fatalf("unexpected orphans: %v", tr.Orphans)
	}
	if len(tr.Nodes) != 3 {
		t.Fatalf("want 3 spans (one per site), got %d", len(tr.Nodes))
	}
	if len(tr.Root.Children) != 1 || tr.Root.Children[0].Site != 1 {
		t.Fatalf("root should have exactly the site-1 child, got %+v", tr.Root.Children)
	}
	mid := tr.Root.Children[0]
	if !mid.Has(SecondaryApplied) {
		t.Error("site-1 span lost its applied event")
	}
	if len(mid.Children) != 1 || mid.Children[0].Site != 2 {
		t.Fatalf("site-1 span should parent the site-2 span, got %+v", mid.Children)
	}
	if got := VerifySpans(events); len(got) != 0 {
		t.Fatalf("VerifySpans on a well-formed stream: %v", got)
	}
}

func TestBuildSpanTreesSkipsUnattributed(t *testing.T) {
	rec := NewRecorder()
	rec.Record(DummySent, 0, 1, model.TxnID{}, 2)                 // zero TID
	rec.Record(TxnBegin, 0, model.NoSite, model.TxnID{Seq: 1}, 2) // zero span
	if got := BuildSpanTrees(rec.Snapshot()); len(got) != 0 {
		t.Fatalf("unattributed events must not build trees: %v", got)
	}
}

func TestVerifySpansReportsOrphanAndMissingRoot(t *testing.T) {
	tid := model.TxnID{Site: 3, Seq: 9}
	rec := NewRecorder()
	// An applied event whose parent span was never recorded, for a
	// transaction with no root span at all.
	rec.RecordSpan(SecondaryApplied, 1, model.NoSite, tid, 1, model.SpanID(42), model.SpanID(41))
	problems := VerifySpans(rec.Snapshot())
	if len(problems) != 2 {
		t.Fatalf("want no-root + orphan problems, got %v", problems)
	}
	joined := strings.Join(problems, "\n")
	if !strings.Contains(joined, "no root span") || !strings.Contains(joined, "unresolved parent") {
		t.Fatalf("problem text missing expected descriptions: %v", problems)
	}
}

func TestStructureIsStableAndFiltersNonApplied(t *testing.T) {
	events, tid := synthTxn(t, 1)
	// Add an aux child (a retransmission) under the root: it must not
	// appear in the structure.
	root := model.RootSpan(tid)
	rec := NewRecorder()
	rec.RecordSpan(RelRetransmit, 0, 1, tid, 0, model.AuxSpan(root, 7), root)
	events = append(events, rec.Snapshot()...)

	tr := BuildSpanTrees(events)[tid]
	want := "site=0\n  site=1 applied\n    site=2 applied\n"
	if got := tr.Structure(); got != want {
		t.Fatalf("Structure:\n%s\nwant:\n%s", got, want)
	}

	// Same logical run, different wall clock: byte-identical structure.
	events2, _ := synthTxn(t, 1)
	if got := BuildSpanTrees(events2)[tid].Structure(); got != want {
		t.Fatalf("Structure not stable across runs:\n%s", got)
	}
}

func TestWriteChromeTraceShape(t *testing.T) {
	events, _ := synthTxn(t, 1)
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Pid  int    `json:"pid"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("empty export")
	}
	meta, inst := 0, 0
	last := make(map[[2]int]int64)
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "i":
			inst++
			key := [2]int{ev.Pid, ev.Tid}
			if ts, ok := last[key]; ok && ev.Ts < ts {
				t.Fatalf("track %v timestamps not monotone: %d after %d", key, ev.Ts, ts)
			}
			last[key] = ev.Ts
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 3 {
		t.Errorf("want one process_name metadata per site (3), got %d", meta)
	}
	if inst != len(events) {
		t.Errorf("want %d instant events, got %d", len(events), inst)
	}
}
