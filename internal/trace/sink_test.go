package trace

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/model"
)

// TestSinkFanOut verifies that every registered sink observes every
// event, in registration order.
func TestSinkFanOut(t *testing.T) {
	r := NewRecorder()
	var order []int
	r.AddSink(func(Event) { order = append(order, 1) })
	r.AddSink(func(Event) { order = append(order, 2) })
	r.Record(TxnCommit, 0, model.NoSite, model.TxnID{Site: 0, Seq: 1}, 0)
	if want := []int{1, 2}; len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("sink invocation order = %v, want %v", order, want)
	}
}

// TestSetSinkReplaces verifies SetSink's replace-all semantics: it
// discards sinks added before it, and nil clears the set.
func TestSetSinkReplaces(t *testing.T) {
	r := NewRecorder()
	var a, b atomic.Int64
	r.AddSink(func(Event) { a.Add(1) })
	r.SetSink(func(Event) { b.Add(1) })
	r.Record(TxnCommit, 0, model.NoSite, model.TxnID{Site: 0, Seq: 1}, 0)
	if a.Load() != 0 || b.Load() != 1 {
		t.Fatalf("after SetSink: a=%d b=%d, want 0/1", a.Load(), b.Load())
	}
	r.SetSink(nil)
	r.Record(TxnCommit, 0, model.NoSite, model.TxnID{Site: 0, Seq: 2}, 0)
	if b.Load() != 1 {
		t.Fatalf("after SetSink(nil): b=%d, want 1", b.Load())
	}
}

// TestAddSinkConcurrentWithRecording registers sinks while many
// goroutines record — the scenario the watchdog-plus-telemetry wiring
// creates. Run under -race this pins the copy-on-write registration as
// data-race free; the counts assert that a sink registered before any
// traffic misses nothing.
func TestAddSinkConcurrentWithRecording(t *testing.T) {
	const (
		writers   = 8
		perWriter = 500
		lateSinks = 16
	)
	r := NewRecorder()
	var first atomic.Int64
	r.AddSink(func(Event) { first.Add(1) })

	var wg sync.WaitGroup
	start := make(chan struct{})
	counts := make([]atomic.Int64, lateSinks)
	for i := 0; i < lateSinks; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			r.AddSink(func(Event) { counts[i].Add(1) })
		}(i)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				tid := model.TxnID{Site: model.SiteID(w), Seq: uint64(i + 1)}
				r.RecordSpan(TxnCommit, model.SiteID(w), model.NoSite, tid, 0, model.RootSpan(tid), 0)
			}
		}(w)
	}
	close(start)
	wg.Wait()

	total := int64(writers * perWriter)
	if got := first.Load(); got != total {
		t.Fatalf("sink registered before traffic saw %d events, want %d", got, total)
	}
	if got := int64(r.Len()); got != total {
		t.Fatalf("recorder holds %d events, want %d", got, total)
	}
	for i := range counts {
		if got := counts[i].Load(); got > total {
			t.Fatalf("late sink %d saw %d events, more than the %d recorded", i, got, total)
		}
	}
}
