// Package trace records structured per-transaction lifecycle events as
// they flow through the propagation protocols: primary begin/commit/abort,
// secondary subtransactions enqueued, applied and forwarded site-to-site,
// DAG(T) dummies and epoch advances, BackEdge 2PC rounds, and PSL remote
// reads. Each event is tagged with the site, the logical transaction id,
// the protocol, and a monotonic timestamp, so a run's full propagation
// behaviour — the subject of the paper's Figures 5–9 — can be replayed
// offline: see PathOf for per-transaction propagation trees and PropDelays
// for commit-to-replica delay distributions.
//
// The recorder is lock-sharded by site so concurrent engines rarely
// contend, and a nil *Recorder is a true no-op: disabled tracing costs the
// hot paths exactly one nil check and zero allocations.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
)

// Kind enumerates the event taxonomy.
type Kind uint8

const (
	// TxnBegin marks the start of a primary subtransaction at its origin.
	TxnBegin Kind = iota + 1
	// TxnCommit marks a committed primary subtransaction.
	TxnCommit
	// TxnAbort marks an aborted primary subtransaction.
	TxnAbort
	// SecondaryEnqueued marks a secondary subtransaction entering a site's
	// incoming queue; Peer is the sending site.
	SecondaryEnqueued
	// SecondaryApplied marks a secondary subtransaction committing at a
	// replica site.
	SecondaryApplied
	// SecondaryForwarded marks a site shipping a secondary subtransaction
	// to Peer (tree child, copy-graph child, or backedge target).
	SecondaryForwarded
	// DummySent marks a DAG(T) dummy subtransaction sent down an idle edge
	// to Peer (§3.3); its TID is zero.
	DummySent
	// EpochAdvance marks a DAG(T) source site advancing its epoch (§3.3).
	EpochAdvance
	// BackedgePrepare marks a 2PC prepare: at the origin when the round
	// starts, at a participant when it votes.
	BackedgePrepare
	// BackedgeCommit marks a 2PC commit decision: at the origin when the
	// round succeeds, at a participant when it applies the decision.
	BackedgeCommit
	// RemoteRead marks a PSL remote read issued to the primary site Peer.
	RemoteRead
	// FaultDrop marks the fault injector discarding a message on the
	// Site→Peer edge (seeded loss, a partition, or a crashed endpoint).
	FaultDrop
	// FaultDuplicate marks the fault injector delivering an extra copy of a
	// message on the Site→Peer edge.
	FaultDuplicate
	// FaultDelay marks the fault injector holding a message on the
	// Site→Peer edge beyond the transport's own latency.
	FaultDelay
	// SiteCrash marks a whole-site crash injected at Site: the site stops
	// sending and receiving until SiteRestart.
	SiteCrash
	// SiteRestart marks a crashed Site coming back.
	SiteRestart
	// PartitionCut marks the directed Site→Peer edge being partitioned.
	PartitionCut
	// PartitionHeal marks the directed Site→Peer edge healing.
	PartitionHeal
	// DecisionInquiry marks 2PC decision recovery: at a participant when it
	// asks the coordinator Peer for a missed decision, at the coordinator
	// when it answers one.
	DecisionInquiry
	// RelRetransmit marks the reliable-delivery sublayer resending an
	// unacknowledged envelope to Peer (docs/FAULTS.md).
	RelRetransmit
	// RelAck marks the reliable-delivery sublayer acknowledging delivered
	// data back to Peer.
	RelAck
	// WatchAlert marks the watchdog raising a liveness/staleness alert at
	// Site (docs/OBSERVABILITY.md); Peer is the implicated edge endpoint
	// or model.NoSite.
	WatchAlert
	// WatchClear marks a previously raised watchdog alert clearing.
	WatchClear
	// PhaseLatency attributes a latency segment (Event.Phase names it,
	// Event.Dur holds nanoseconds) to the transaction at Site; recorded
	// span-less so wall-clock durations never perturb span-tree structure.
	PhaseLatency
	// WALSnapshot marks Site's write-ahead log serializing a storage
	// snapshot and truncating the segments it covers (docs/DURABILITY.md).
	WALSnapshot
	// WALRecover marks Site finishing crash recovery: snapshot load, redo
	// replay, and engine rebuild from its WAL directory; Event.Dur holds
	// the recovery latency in nanoseconds.
	WALRecover
	// ReadCertificate marks a read-freshness certificate at Site: the
	// Phase tag says "fresh" or "stale" and Event.Dur holds how long (ns)
	// behind the primary the observed value was. Recorded span-less, like
	// PhaseLatency, because the fresh/stale outcome races propagation
	// timing and must never perturb byte-stable span-tree structure.
	ReadCertificate

	kindEnd
)

var kindNames = [kindEnd]string{
	TxnBegin:           "TxnBegin",
	TxnCommit:          "TxnCommit",
	TxnAbort:           "TxnAbort",
	SecondaryEnqueued:  "SecondaryEnqueued",
	SecondaryApplied:   "SecondaryApplied",
	SecondaryForwarded: "SecondaryForwarded",
	DummySent:          "DummySent",
	EpochAdvance:       "EpochAdvance",
	BackedgePrepare:    "BackedgePrepare",
	BackedgeCommit:     "BackedgeCommit",
	RemoteRead:         "RemoteRead",
	FaultDrop:          "FaultDrop",
	FaultDuplicate:     "FaultDuplicate",
	FaultDelay:         "FaultDelay",
	SiteCrash:          "SiteCrash",
	SiteRestart:        "SiteRestart",
	PartitionCut:       "PartitionCut",
	PartitionHeal:      "PartitionHeal",
	DecisionInquiry:    "DecisionInquiry",
	RelRetransmit:      "RelRetransmit",
	RelAck:             "RelAck",
	WatchAlert:         "WatchAlert",
	WatchClear:         "WatchClear",
	PhaseLatency:       "PhaseLatency",
	WALSnapshot:        "WALSnapshot",
	WALRecover:         "WALRecover",
	ReadCertificate:    "ReadCertificate",
}

func (k Kind) String() string {
	if k > 0 && k < kindEnd {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// MarshalText renders the kind name, making JSONL human-readable.
func (k Kind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses a kind name.
func (k *Kind) UnmarshalText(b []byte) error {
	s := string(b)
	for i := Kind(1); i < kindEnd; i++ {
		if kindNames[i] == s {
			*k = i
			return nil
		}
	}
	return fmt.Errorf("trace: unknown event kind %q", s)
}

// Event is one recorded lifecycle event. T is nanoseconds since the
// recorder was created (monotonic); Peer is the counterpart site of the
// event (sender, receiver, or remote-read primary) or model.NoSite.
type Event struct {
	T    int64        `json:"t"`
	Kind Kind         `json:"kind"`
	Site model.SiteID `json:"site"`
	Peer model.SiteID `json:"peer"`
	TID  model.TxnID  `json:"-"`
	// Span is the causal span this event belongs to and Parent the span
	// it descends from (model.RootSpan(TID) roots each transaction's
	// tree); both are zero for events recorded without span context.
	Span   model.SpanID `json:"span,omitempty"`
	Parent model.SpanID `json:"parent,omitempty"`
	Proto  uint8        `json:"proto"`
	// Phase and Dur carry latency attribution for PhaseLatency events:
	// the metrics.Phase name and the segment's duration in nanoseconds.
	Phase string `json:"phase,omitempty"`
	Dur   int64  `json:"dur,omitempty"`
}

// jsonEvent flattens TID so each JSONL line is a single small object.
type jsonEvent struct {
	T      int64        `json:"t"`
	Kind   Kind         `json:"kind"`
	Site   model.SiteID `json:"site"`
	Peer   model.SiteID `json:"peer"`
	TSite  model.SiteID `json:"tsite"`
	TSeq   uint64       `json:"tseq"`
	Span   model.SpanID `json:"span,omitempty"`
	Parent model.SpanID `json:"parent,omitempty"`
	Proto  uint8        `json:"proto"`
	Phase  string       `json:"phase,omitempty"`
	Dur    int64        `json:"dur,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonEvent{
		T: e.T, Kind: e.Kind, Site: e.Site, Peer: e.Peer,
		TSite: e.TID.Site, TSeq: e.TID.Seq,
		Span: e.Span, Parent: e.Parent, Proto: e.Proto,
		Phase: e.Phase, Dur: e.Dur,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *Event) UnmarshalJSON(b []byte) error {
	var j jsonEvent
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	*e = Event{
		T: j.T, Kind: j.Kind, Site: j.Site, Peer: j.Peer,
		TID:  model.TxnID{Site: j.TSite, Seq: j.TSeq},
		Span: j.Span, Parent: j.Parent, Proto: j.Proto,
		Phase: j.Phase, Dur: j.Dur,
	}
	return nil
}

// shardCount trades memory for contention; sharding is by site, so any
// power of two comfortably above the typical site count works.
const shardCount = 32

type shard struct {
	mu     sync.Mutex
	events []Event
	// pad shards apart so neighbouring locks do not share a cache line.
	_ [40]byte
}

// Recorder accumulates events from concurrently-running engines. All
// methods are safe for concurrent use; a nil *Recorder is a valid no-op
// sink whose Record costs one branch and never allocates.
type Recorder struct {
	start time.Time
	// sinks is a copy-on-write slice behind an atomic pointer, so the
	// record path reads it with one load and registration is safe even
	// while traffic flows; sinkMu serializes registrations only.
	sinks  atomic.Pointer[[]func(Event)]
	sinkMu sync.Mutex
	shards [shardCount]shard
}

// NewRecorder returns an empty recorder; its creation time is the zero
// point of every event timestamp.
func NewRecorder() *Recorder { return &Recorder{start: time.Now()} }

// SetSink installs fn as the only live tap, replacing any sinks added
// before it (nil clears them all). Taps run synchronously on the
// recording goroutine, outside the shard lock. Kept for single-consumer
// callers; anything sharing a recorder (watchdog plus telemetry
// publisher) registers with AddSink instead.
func (r *Recorder) SetSink(fn func(Event)) {
	if r == nil {
		return
	}
	r.sinkMu.Lock()
	defer r.sinkMu.Unlock()
	if fn == nil {
		r.sinks.Store(nil)
		return
	}
	s := []func(Event){fn}
	r.sinks.Store(&s)
}

// AddSink registers an additional live tap invoked synchronously (in
// registration order, after earlier sinks) for every recorded event.
// Safe to call concurrently with recording: events recorded before the
// registration completes may or may not reach fn, but none are torn.
func (r *Recorder) AddSink(fn func(Event)) {
	if r == nil || fn == nil {
		return
	}
	r.sinkMu.Lock()
	defer r.sinkMu.Unlock()
	var next []func(Event)
	if cur := r.sinks.Load(); cur != nil {
		next = append(next, *cur...)
	}
	next = append(next, fn)
	r.sinks.Store(&next)
}

// emit fans one event out to every registered sink.
func (r *Recorder) emit(ev Event) {
	if sinks := r.sinks.Load(); sinks != nil {
		for _, fn := range *sinks {
			fn(ev)
		}
	}
}

// Record appends one event. All arguments are scalars so the disabled
// (nil-recorder) path performs no interface boxing and no allocation.
func (r *Recorder) Record(k Kind, site, peer model.SiteID, tid model.TxnID, proto uint8) {
	r.RecordSpan(k, site, peer, tid, proto, 0, 0)
}

// RecordSpan appends one event carrying causal span attribution.
func (r *Recorder) RecordSpan(k Kind, site, peer model.SiteID, tid model.TxnID, proto uint8, span, parent model.SpanID) {
	if r == nil {
		return
	}
	ev := Event{
		T: int64(time.Since(r.start)), Kind: k, Site: site, Peer: peer,
		TID: tid, Span: span, Parent: parent, Proto: proto,
	}
	s := &r.shards[uint(site)%shardCount]
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
	r.emit(ev)
}

// RecordTag appends one span-attributed event carrying a short string
// tag in the Phase field — e.g. the abort root cause on TxnAbort events
// (docs/OBSERVABILITY.md, contention observatory). The tag rides the
// existing phase wire field, so older readers simply ignore it, and it
// must be seed-stable (a classification, never a duration or count) so
// tagged streams stay byte-comparable across same-seed runs.
func (r *Recorder) RecordTag(k Kind, site, peer model.SiteID, tid model.TxnID, proto uint8, span, parent model.SpanID, tag string) {
	if r == nil {
		return
	}
	ev := Event{
		T: int64(time.Since(r.start)), Kind: k, Site: site, Peer: peer,
		TID: tid, Span: span, Parent: parent, Proto: proto, Phase: tag,
	}
	s := &r.shards[uint(site)%shardCount]
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
	r.emit(ev)
}

// RecordDur appends one event carrying a wall-clock duration (e.g.
// WALRecover's recovery latency). Span-less like RecordPhase: durations
// vary between same-seed runs and must not perturb span-tree structure.
func (r *Recorder) RecordDur(k Kind, site, peer model.SiteID, tid model.TxnID, proto uint8, d time.Duration) {
	if r == nil {
		return
	}
	ev := Event{
		T: int64(time.Since(r.start)), Kind: k, Site: site, Peer: peer,
		TID: tid, Proto: proto, Dur: int64(d),
	}
	s := &r.shards[uint(site)%shardCount]
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
	r.emit(ev)
}

// RecordTagDur appends one span-less event carrying both a short string
// tag (in the Phase field) and a wall-clock duration — the shape of a
// read-freshness certificate, whose fresh/stale outcome and lag both
// depend on propagation timing. Span-less for the same reason RecordPhase
// is: timing-dependent payloads must never perturb span-tree structure.
func (r *Recorder) RecordTagDur(k Kind, site, peer model.SiteID, tid model.TxnID, proto uint8, tag string, d time.Duration) {
	if r == nil {
		return
	}
	ev := Event{
		T: int64(time.Since(r.start)), Kind: k, Site: site, Peer: peer,
		TID: tid, Proto: proto, Phase: tag, Dur: int64(d),
	}
	s := &r.shards[uint(site)%shardCount]
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
	r.emit(ev)
}

// RecordPhase appends a PhaseLatency event attributing d of the
// transaction's latency to the named phase. Deliberately span-less
// (Span==0): durations are wall-clock and vary between same-seed runs, so
// keeping them out of the span trees preserves byte-stable Structure.
func (r *Recorder) RecordPhase(site, peer model.SiteID, tid model.TxnID, proto uint8, phase string, d time.Duration) {
	if r == nil {
		return
	}
	ev := Event{
		T: int64(time.Since(r.start)), Kind: PhaseLatency, Site: site, Peer: peer,
		TID: tid, Proto: proto, Phase: phase, Dur: int64(d),
	}
	s := &r.shards[uint(site)%shardCount]
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
	r.emit(ev)
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		n += len(s.events)
		s.mu.Unlock()
	}
	return n
}

// Snapshot returns every recorded event, sorted by timestamp. It may be
// called while engines are still recording.
func (r *Recorder) Snapshot() []Event {
	if r == nil {
		return nil
	}
	var out []Event
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		out = append(out, s.events...)
		s.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}

// WriteJSONL writes the sorted event stream as one JSON object per line.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	return WriteJSONL(w, r.Snapshot())
}

// WriteJSONL writes events as one JSON object per line.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadJSONL parses an event stream produced by WriteJSONL. Blank lines are
// skipped, so concatenated trace files parse cleanly.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(b, &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
