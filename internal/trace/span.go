package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
)

// Span-tree reconstruction (docs/OBSERVABILITY.md). Every span-carrying
// event names its span and its causal parent, so rebuilding the tree of
// one transaction is exact bookkeeping — unlike the heuristic PathOf,
// which infers edges from event timing and site adjacency.

// SpanNode is one node of a reconstructed span tree: one site's work on
// behalf of one transaction, plus any auxiliary spans (retransmissions,
// acks, fault attributions) hanging off it.
type SpanNode struct {
	ID       model.SpanID
	Site     model.SiteID
	Parent   *SpanNode
	Children []*SpanNode
	Events   []Event // this span's events in recording order
}

// Has reports whether any event of kind k was recorded under the node.
func (n *SpanNode) Has(k Kind) bool {
	for _, ev := range n.Events {
		if ev.Kind == k {
			return true
		}
	}
	return false
}

// SpanTree is the reconstructed causal tree of one transaction.
type SpanTree struct {
	TID   model.TxnID
	Root  *SpanNode
	Nodes map[model.SpanID]*SpanNode
	// Orphans are events whose parent span never appeared in the stream
	// — broken causality, or a trace truncated mid-flight.
	Orphans []Event
}

// BuildSpanTrees reconstructs one tree per transaction from an event
// stream. Events without span attribution (Span == 0) and events with a
// zero TID (dummies, partitions, watchdog alerts) are ignored.
func BuildSpanTrees(events []Event) map[model.TxnID]*SpanTree {
	trees := make(map[model.TxnID]*SpanTree)
	for _, ev := range events {
		if ev.Span == 0 || ev.TID.Zero() {
			continue
		}
		tr := trees[ev.TID]
		if tr == nil {
			tr = &SpanTree{TID: ev.TID, Nodes: make(map[model.SpanID]*SpanNode)}
			trees[ev.TID] = tr
		}
		n := tr.Nodes[ev.Span]
		if n == nil {
			n = &SpanNode{ID: ev.Span, Site: ev.Site}
			tr.Nodes[ev.Span] = n
		}
		n.Events = append(n.Events, ev)
	}
	for _, tr := range trees {
		root := model.RootSpan(tr.TID)
		tr.Root = tr.Nodes[root]
		for _, n := range tr.Nodes {
			if n.ID == root {
				continue
			}
			p := tr.Nodes[n.Events[0].Parent]
			if p == nil {
				tr.Orphans = append(tr.Orphans, n.Events...)
				continue
			}
			n.Parent = p
			p.Children = append(p.Children, n)
		}
		for _, n := range tr.Nodes {
			sort.Slice(n.Children, func(i, j int) bool {
				a, b := n.Children[i], n.Children[j]
				if a.Site != b.Site {
					return a.Site < b.Site
				}
				return a.ID < b.ID
			})
		}
	}
	return trees
}

// VerifySpans checks causal integrity over a whole stream: every
// span-carrying event must belong to a tree whose root is the
// transaction's primary span, and every non-root span's parent must
// resolve to a recorded span. It returns a description per violation.
func VerifySpans(events []Event) []string {
	var problems []string
	for tid, tr := range BuildSpanTrees(events) {
		if tr.Root == nil {
			problems = append(problems, fmt.Sprintf("txn %v: no root span (primary never recorded)", tid))
		}
		for _, ev := range tr.Orphans {
			problems = append(problems, fmt.Sprintf(
				"txn %v: %v at site %d span %d has unresolved parent %d",
				tid, ev.Kind, ev.Site, ev.Span, ev.Parent))
		}
	}
	sort.Strings(problems)
	return problems
}

// Structure renders the propagation skeleton of the tree as a
// deterministic multi-line string: the root plus every span that
// applied the update (SecondaryApplied or BackedgeCommit) and the relay
// spans on the way there, children ordered by site then id. Timestamps,
// retransmissions, acks, and 2PC vote traffic are deliberately
// excluded, so two runs with the same seed render byte-identical
// structures even though their clocks and retransmit counts differ.
func (t *SpanTree) Structure() string {
	if t.Root == nil {
		return ""
	}
	keep := make(map[model.SpanID]bool)
	for _, n := range t.Nodes {
		if n.Has(SecondaryApplied) || n.Has(BackedgeCommit) {
			for m := n; m != nil; m = m.Parent {
				keep[m.ID] = true
			}
		}
	}
	keep[t.Root.ID] = true
	var b strings.Builder
	var walk func(n *SpanNode, depth int)
	walk = func(n *SpanNode, depth int) {
		fmt.Fprintf(&b, "%ssite=%d", strings.Repeat("  ", depth), n.Site)
		if n.Has(SecondaryApplied) || n.Has(BackedgeCommit) {
			b.WriteString(" applied")
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			if keep[c.ID] {
				walk(c, depth+1)
			}
		}
	}
	walk(t.Root, 0)
	return b.String()
}
