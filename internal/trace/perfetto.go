package trace

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"

	"repro/internal/model"
)

// Chrome/Perfetto trace-event JSON export (docs/OBSERVABILITY.md). Each
// site becomes a process; each causal span at a site becomes a compact
// thread-track within it, so a whole chaos run opens in ui.perfetto.dev
// with one lane per in-flight transaction hop. Track ids are small
// per-site ordinals rather than raw 64-bit span ids: trace-event JSON
// readers parse tids as doubles, which cannot represent all uint64s.

type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// WriteChromeTrace writes events in Chrome trace-event JSON format.
// Output is sorted by timestamp, so per-track timestamps are monotone.
func WriteChromeTrace(w io.Writer, events []Event) error {
	sorted := append([]Event(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].T < sorted[j].T })

	var out chromeTrace
	sites := make(map[model.SiteID]bool)
	// tracks maps (site, span) to a compact per-site ordinal; span 0
	// (unattributed events) shares track 0 at each site.
	type trackKey struct {
		site model.SiteID
		span model.SpanID
	}
	tracks := make(map[trackKey]int)
	nextTrack := make(map[model.SiteID]int)
	for _, ev := range sorted {
		if !sites[ev.Site] {
			sites[ev.Site] = true
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", Pid: int(ev.Site),
				Args: map[string]any{"name": siteName(ev.Site)},
			})
			tracks[trackKey{ev.Site, 0}] = 0
			nextTrack[ev.Site] = 1
		}
		key := trackKey{ev.Site, ev.Span}
		tid, ok := tracks[key]
		if !ok {
			tid = nextTrack[ev.Site]
			nextTrack[ev.Site] = tid + 1
			tracks[key] = tid
		}
		args := map[string]any{"proto": ev.Proto}
		if !ev.TID.Zero() {
			args["txn"] = ev.TID.String()
		}
		if ev.Span != 0 {
			args["span"] = ev.Span.String()
			args["parent"] = ev.Parent.String()
		}
		if ev.Peer != model.NoSite {
			args["peer"] = int(ev.Peer)
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: ev.Kind.String(), Ph: "i", Ts: ev.T / 1000,
			Pid: int(ev.Site), Tid: tid, S: "t", Args: args,
		})
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return err
	}
	return bw.Flush()
}

func siteName(s model.SiteID) string {
	if s == model.NoSite {
		return "cluster"
	}
	return "site " + strconv.Itoa(int(s))
}
