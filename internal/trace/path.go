package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/model"
)

// PathNode is one site in a transaction's propagation tree. At is the
// event time at the site (the primary commit for the root, the secondary
// application — or, for a pure relay site, the onward forward — below it);
// Hop is the latency from the parent's forward to this site's event.
type PathNode struct {
	Site model.SiteID
	// At is nanoseconds since trace start.
	At time.Duration
	// Hop is the per-hop propagation latency; zero at the root.
	Hop time.Duration
	// Applied reports whether a secondary subtransaction committed here
	// (false for the root and for relay-only sites).
	Applied  bool
	Children []*PathNode
}

// PathOf reconstructs the complete propagation tree of one committed
// transaction from an event stream: the root is the origin site's primary
// commit, edges are SecondaryForwarded events, and each reached site is
// stamped with its SecondaryApplied time. Events from multiple protocols
// may share TIDs across runs; filter by Event.Proto first if the stream
// mixes runs.
//
// Deprecated: PathOf infers edges heuristically from event timing and is
// kept only for traces recorded without span context. New traces carry
// exact causal attribution on every event; use BuildSpanTrees instead.
func PathOf(events []Event, tid model.TxnID) (*PathNode, error) {
	if tid.Zero() {
		return nil, fmt.Errorf("trace: cannot reconstruct the path of the zero TxnID")
	}
	type hop struct {
		to model.SiteID
		t  int64
	}
	var (
		commitT  int64 = -1
		origin   model.SiteID
		forwards = make(map[model.SiteID][]hop)
		applies  = make(map[model.SiteID]int64)
	)
	for _, ev := range events {
		if ev.TID != tid {
			continue
		}
		switch ev.Kind {
		case TxnCommit:
			if commitT < 0 {
				commitT, origin = ev.T, ev.Site
			}
		case SecondaryForwarded:
			forwards[ev.Site] = append(forwards[ev.Site], hop{to: ev.Peer, t: ev.T})
		case SecondaryApplied:
			if _, ok := applies[ev.Site]; !ok {
				applies[ev.Site] = ev.T
			}
		}
	}
	if commitT < 0 {
		return nil, fmt.Errorf("trace: no TxnCommit event for %v", tid)
	}

	visited := map[model.SiteID]bool{origin: true}
	var build func(site model.SiteID, at int64) *PathNode
	build = func(site model.SiteID, at int64) *PathNode {
		n := &PathNode{Site: site, At: time.Duration(at)}
		for _, h := range forwards[site] {
			if visited[h.to] {
				continue
			}
			visited[h.to] = true
			childAt, applied := applies[h.to]
			if !applied {
				// Relay-only site: its first onward forward stands in for
				// the (nonexistent) application time.
				childAt = h.t
				if fs := forwards[h.to]; len(fs) > 0 {
					childAt = fs[0].t
				}
			}
			c := build(h.to, childAt)
			c.Hop = time.Duration(childAt - h.t)
			c.Applied = applied
			n.Children = append(n.Children, c)
		}
		sort.Slice(n.Children, func(i, j int) bool { return n.Children[i].Site < n.Children[j].Site })
		return n
	}
	root := build(origin, commitT)

	// Applications not reachable through forward edges (possible only if
	// the forwarding site's events were lost) hang off the root so the
	// tree still accounts for every replica that applied the transaction.
	var orphans []model.SiteID
	for s := range applies {
		if !visited[s] {
			orphans = append(orphans, s)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i] < orphans[j] })
	for _, s := range orphans {
		root.Children = append(root.Children, &PathNode{
			Site: s, At: time.Duration(applies[s]),
			Hop: time.Duration(applies[s] - commitT), Applied: true,
		})
	}
	return root, nil
}

// Sites returns every site in the tree, root first (preorder).
func (n *PathNode) Sites() []model.SiteID {
	if n == nil {
		return nil
	}
	out := []model.SiteID{n.Site}
	for _, c := range n.Children {
		out = append(out, c.Sites()...)
	}
	return out
}

// String renders the tree one site per line, indented by depth, with
// per-hop latencies — the worked-example format of docs/OBSERVABILITY.md.
func (n *PathNode) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *PathNode) render(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	switch {
	case depth == 0:
		fmt.Fprintf(b, "s%d commit @ %v\n", n.Site, n.At.Round(time.Microsecond))
	case n.Applied:
		fmt.Fprintf(b, "└─ s%d applied @ %v (+%v)\n", n.Site, n.At.Round(time.Microsecond), n.Hop.Round(time.Microsecond))
	default:
		fmt.Fprintf(b, "└─ s%d relayed @ %v (+%v)\n", n.Site, n.At.Round(time.Microsecond), n.Hop.Round(time.Microsecond))
	}
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

// PropDelays extracts the commit-to-replica propagation-delay samples
// from an event stream, grouped by protocol: every SecondaryApplied
// contributes (apply time − commit time) of its transaction. Commits and
// applies are matched per (protocol, TID) so concatenated traces from
// different runs do not cross-contaminate.
func PropDelays(events []Event) map[uint8][]time.Duration {
	type key struct {
		proto uint8
		tid   model.TxnID
	}
	commits := make(map[key]int64)
	for _, ev := range events {
		if ev.Kind == TxnCommit && !ev.TID.Zero() {
			if _, ok := commits[key{ev.Proto, ev.TID}]; !ok {
				commits[key{ev.Proto, ev.TID}] = ev.T
			}
		}
	}
	out := make(map[uint8][]time.Duration)
	for _, ev := range events {
		if ev.Kind != SecondaryApplied || ev.TID.Zero() {
			continue
		}
		if ct, ok := commits[key{ev.Proto, ev.TID}]; ok && ev.T >= ct {
			out[ev.Proto] = append(out[ev.Proto], time.Duration(ev.T-ct))
		}
	}
	return out
}

// Quantile returns the q-quantile (0 < q ≤ 1) of the samples; 0 for an
// empty set. The single-sample case returns that sample for every q.
func Quantile(ds []time.Duration, q float64) time.Duration {
	switch len(ds) {
	case 0:
		return 0
	case 1:
		return ds[0]
	}
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(float64(len(s))*q+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
