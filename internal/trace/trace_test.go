package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

func tid(site, seq int) model.TxnID {
	return model.TxnID{Site: model.SiteID(site), Seq: uint64(seq)}
}

func TestNilRecorderIsNoop(t *testing.T) {
	var r *Recorder
	r.Record(TxnCommit, 0, model.NoSite, tid(0, 1), 1)
	if r.Len() != 0 {
		t.Fatalf("nil recorder Len = %d", r.Len())
	}
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil recorder Snapshot = %v", got)
	}
}

// The disabled-tracing hot path must never allocate: engines call Record
// unconditionally and rely on the nil check being free.
func TestNilRecorderNeverAllocates(t *testing.T) {
	var r *Recorder
	id := tid(3, 7)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Record(SecondaryApplied, 3, 1, id, 2)
	})
	if allocs != 0 {
		t.Fatalf("nil Record allocates %.1f per call", allocs)
	}
}

func TestRecordAndSnapshotSorted(t *testing.T) {
	r := NewRecorder()
	r.Record(TxnBegin, 0, model.NoSite, tid(0, 1), 1)
	r.Record(TxnCommit, 0, model.NoSite, tid(0, 1), 1)
	r.Record(SecondaryApplied, 5, 0, tid(0, 1), 1)
	evs := r.Snapshot()
	if len(evs) != 3 || r.Len() != 3 {
		t.Fatalf("got %d events, Len %d", len(evs), r.Len())
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].T < evs[i-1].T {
			t.Fatalf("events not sorted: %v before %v", evs[i-1], evs[i])
		}
	}
	if evs[0].Kind != TxnBegin || evs[2].Site != 5 || evs[2].Peer != 0 {
		t.Fatalf("unexpected events %v", evs)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder()
	const goroutines, per = 16, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Record(SecondaryApplied, model.SiteID(g), model.NoSite, tid(g, i+1), 1)
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != goroutines*per {
		t.Fatalf("lost events: %d != %d", r.Len(), goroutines*per)
	}
}

func TestJSONLRoundtrip(t *testing.T) {
	r := NewRecorder()
	r.Record(TxnCommit, 2, model.NoSite, tid(2, 9), 3)
	r.Record(SecondaryForwarded, 2, 4, tid(2, 9), 3)
	r.Record(DummySent, 1, 3, model.TxnID{}, 2)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"kind":"SecondaryForwarded"`) {
		t.Fatalf("JSONL lacks readable kind names:\n%s", buf.String())
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Snapshot()
	if len(got) != len(want) {
		t.Fatalf("roundtrip length %d != %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONLSkipsBlankLinesAndRejectsGarbage(t *testing.T) {
	evs, err := ReadJSONL(strings.NewReader("\n{\"t\":5,\"kind\":\"TxnCommit\",\"site\":1,\"peer\":-1,\"tsite\":1,\"tseq\":2,\"proto\":0}\n\n"))
	if err != nil || len(evs) != 1 || evs[0].TID != tid(1, 2) {
		t.Fatalf("evs=%v err=%v", evs, err)
	}
	if _, err := ReadJSONL(strings.NewReader("{nope}\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadJSONL(strings.NewReader(`{"t":1,"kind":"NoSuchKind","site":0,"peer":0,"tsite":0,"tseq":1,"proto":0}` + "\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

// Synthetic three-hop chain: s0 commits, forwards to s1; s1 applies and
// forwards to s2; s2 applies. PathOf must rebuild the chain with the
// per-hop latencies.
func TestPathOfChain(t *testing.T) {
	id := tid(0, 1)
	events := []Event{
		{T: 100, Kind: TxnCommit, Site: 0, Peer: model.NoSite, TID: id},
		{T: 110, Kind: SecondaryForwarded, Site: 0, Peer: 1, TID: id},
		{T: 150, Kind: SecondaryEnqueued, Site: 1, Peer: 0, TID: id},
		{T: 200, Kind: SecondaryApplied, Site: 1, Peer: model.NoSite, TID: id},
		{T: 210, Kind: SecondaryForwarded, Site: 1, Peer: 2, TID: id},
		{T: 400, Kind: SecondaryApplied, Site: 2, Peer: model.NoSite, TID: id},
	}
	root, err := PathOf(events, id)
	if err != nil {
		t.Fatal(err)
	}
	if root.Site != 0 || root.At != 100 || len(root.Children) != 1 {
		t.Fatalf("root = %+v", root)
	}
	c1 := root.Children[0]
	if c1.Site != 1 || !c1.Applied || c1.Hop != 90*time.Nanosecond {
		t.Fatalf("hop1 = %+v", c1)
	}
	if len(c1.Children) != 1 || c1.Children[0].Site != 2 || c1.Children[0].Hop != 190*time.Nanosecond {
		t.Fatalf("hop2 = %+v", c1.Children)
	}
	sites := root.Sites()
	if len(sites) != 3 || sites[0] != 0 || sites[1] != 1 || sites[2] != 2 {
		t.Fatalf("Sites = %v", sites)
	}
	if s := root.String(); !strings.Contains(s, "s2 applied") {
		t.Fatalf("render:\n%s", s)
	}
}

// A relay site that forwards without applying must still appear in the
// tree, marked not-applied.
func TestPathOfRelaySite(t *testing.T) {
	id := tid(3, 4)
	events := []Event{
		{T: 0, Kind: TxnCommit, Site: 3, TID: id},
		{T: 10, Kind: SecondaryForwarded, Site: 3, Peer: 1, TID: id},
		{T: 50, Kind: SecondaryForwarded, Site: 1, Peer: 0, TID: id}, // relay, no apply at s1
		{T: 90, Kind: SecondaryApplied, Site: 0, TID: id},
	}
	root, err := PathOf(events, id)
	if err != nil {
		t.Fatal(err)
	}
	if len(root.Children) != 1 || root.Children[0].Site != 1 || root.Children[0].Applied {
		t.Fatalf("relay child = %+v", root.Children)
	}
	leaf := root.Children[0].Children
	if len(leaf) != 1 || leaf[0].Site != 0 || !leaf[0].Applied || leaf[0].Hop != 40*time.Nanosecond {
		t.Fatalf("leaf = %+v", leaf)
	}
}

func TestPathOfErrors(t *testing.T) {
	if _, err := PathOf(nil, model.TxnID{}); err == nil {
		t.Fatal("zero TID accepted")
	}
	if _, err := PathOf(nil, tid(0, 1)); err == nil {
		t.Fatal("missing commit accepted")
	}
}

func TestPropDelaysAndQuantile(t *testing.T) {
	id1, id2 := tid(0, 1), tid(1, 1)
	events := []Event{
		{T: 100, Kind: TxnCommit, Site: 0, TID: id1, Proto: 1},
		{T: 300, Kind: SecondaryApplied, Site: 2, TID: id1, Proto: 1},
		{T: 700, Kind: SecondaryApplied, Site: 3, TID: id1, Proto: 1},
		{T: 50, Kind: TxnCommit, Site: 1, TID: id2, Proto: 2},
		{T: 150, Kind: SecondaryApplied, Site: 0, TID: id2, Proto: 2},
		// Same TID under a different protocol must not match proto 1's commit.
		{T: 500, Kind: SecondaryApplied, Site: 4, TID: id1, Proto: 9},
	}
	d := PropDelays(events)
	if len(d[1]) != 2 || d[1][0] != 200 || d[1][1] != 600 {
		t.Fatalf("proto1 delays = %v", d[1])
	}
	if len(d[2]) != 1 || d[2][0] != 100 {
		t.Fatalf("proto2 delays = %v", d[2])
	}
	if len(d[9]) != 0 {
		t.Fatalf("cross-protocol contamination: %v", d[9])
	}
	if q := Quantile(nil, 0.95); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	if q := Quantile([]time.Duration{42}, 0.5); q != 42 {
		t.Fatalf("single-sample quantile = %v", q)
	}
	ds := []time.Duration{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	if q := Quantile(ds, 0.5); q != 50 {
		t.Fatalf("p50 = %v", q)
	}
	if q := Quantile(ds, 1.0); q != 100 {
		t.Fatalf("p100 = %v", q)
	}
}

// TestRecordPhaseRoundtrip covers the latency-attribution events: the
// phase name and duration survive the JSONL round trip, and — because
// PhaseLatency events are span-less — they never show up in span trees,
// so wall-clock durations cannot perturb the byte-stable span structure
// the chaos tests pin.
func TestRecordPhaseRoundtrip(t *testing.T) {
	r := NewRecorder()
	r.RecordSpan(TxnCommit, 2, model.NoSite, tid(2, 9), 3, 1, 0)
	r.RecordPhase(2, 4, tid(2, 9), 3, "queue_wait", 1500*time.Microsecond)
	var buf bytes.Buffer
	if err := r.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"phase":"queue_wait"`) {
		t.Fatalf("JSONL lacks the phase name:\n%s", buf.String())
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	found := false
	for _, e := range got {
		if e.Kind == PhaseLatency {
			ev, found = e, true
		}
	}
	if !found {
		t.Fatal("PhaseLatency event lost in round trip")
	}
	if ev.Phase != "queue_wait" || ev.Dur != int64(1500*time.Microsecond) {
		t.Errorf("phase fields lost: phase=%q dur=%d", ev.Phase, ev.Dur)
	}
	if ev.Span != 0 || ev.Parent != 0 {
		t.Errorf("phase events must be span-less, got span=%d parent=%d", ev.Span, ev.Parent)
	}
	trees := BuildSpanTrees(got)
	tree, ok := trees[tid(2, 9)]
	if !ok {
		t.Fatal("span tree for the commit missing")
	}
	for _, n := range tree.Nodes {
		if n.Has(PhaseLatency) {
			t.Error("PhaseLatency event leaked into a span tree")
		}
	}
	for _, ev := range tree.Orphans {
		if ev.Kind == PhaseLatency {
			t.Error("PhaseLatency event counted as a span orphan")
		}
	}

	var nilR *Recorder
	nilR.RecordPhase(0, 0, tid(0, 0), 0, "apply", time.Millisecond) // must not panic
}
