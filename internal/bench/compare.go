package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// Thresholds configures the regression gate. Percentages are relative
// headroom per metric family; AbortPts is absolute percentage points
// (abort rates near zero make relative comparison meaningless).
type Thresholds struct {
	// ThroughputPct fails a protocol whose throughput fell by more than
	// this percentage.
	ThroughputPct float64
	// LatencyPct fails a latency metric (p50/p95/p99 response, p95
	// propagation) that grew by more than this percentage.
	LatencyPct float64
	// AllocPct fails allocs-per-txn or bytes-per-txn growth beyond this
	// percentage.
	AllocPct float64
	// AbortPts fails an abort rate that grew by more than this many
	// absolute percentage points.
	AbortPts float64
	// StalePts fails a stale-read rate (freshness block, schema v3) that
	// grew by more than this many absolute percentage points. Absolute
	// like AbortPts and for the same reason: the interesting baselines sit
	// near zero (PSL is structurally 0%), where relative change is noise.
	StalePts float64
}

// DefaultThresholds is tuned for same-machine comparisons: latency and
// allocation get more headroom than throughput because their tails are
// noisier at smoke-suite sample counts.
func DefaultThresholds() Thresholds {
	return Thresholds{ThroughputPct: 10, LatencyPct: 30, AllocPct: 50, AbortPts: 5, StalePts: 5}
}

// Delta is one compared metric for one protocol. Pct is the relative
// change in the metric's bad direction (positive = worse); for the abort
// rate it holds the absolute point change instead.
type Delta struct {
	Protocol   string
	Metric     string
	Old, New   float64
	Pct        float64
	Regression bool
}

// direction says which way a metric gets worse.
type direction int

const (
	higherIsBetter direction = iota // throughput
	lowerIsBetter                   // latency, allocations
)

// Compare diffs new against old per protocol and metric, returning every
// delta (regressions and not) and the regression count. Protocols present
// in only one snapshot are skipped: the gate compares like with like, and
// adding or retiring an engine is a schema-visible change reviewed on its
// own. Metrics whose old value is zero are reported but never failed —
// there is no baseline to regress from.
func Compare(oldSnap, newSnap *Snapshot, th Thresholds) ([]Delta, int) {
	var deltas []Delta
	regressions := 0
	for _, np := range newSnap.Protocols {
		op, ok := oldSnap.Result(np.Protocol)
		if !ok {
			continue
		}
		add := func(metric string, o, n, pctLimit float64, dir direction) {
			d := Delta{Protocol: np.Protocol, Metric: metric, Old: o, New: n}
			if o > 0 {
				if dir == higherIsBetter {
					d.Pct = (o - n) / o * 100 // positive = slower
				} else {
					d.Pct = (n - o) / o * 100 // positive = worse
				}
				d.Regression = pctLimit > 0 && d.Pct > pctLimit
			}
			if d.Regression {
				regressions++
			}
			deltas = append(deltas, d)
		}
		add("throughput_per_site", op.ThroughputPerSite, np.ThroughputPerSite, th.ThroughputPct, higherIsBetter)
		add("p50_response_us", op.P50ResponseUS, np.P50ResponseUS, th.LatencyPct, lowerIsBetter)
		add("p95_response_us", op.P95ResponseUS, np.P95ResponseUS, th.LatencyPct, lowerIsBetter)
		add("p99_response_us", op.P99ResponseUS, np.P99ResponseUS, th.LatencyPct, lowerIsBetter)
		add("p95_prop_us", op.P95PropUS, np.P95PropUS, th.LatencyPct, lowerIsBetter)
		add("allocs_per_txn", op.AllocsPerTxn, np.AllocsPerTxn, th.AllocPct, lowerIsBetter)
		add("bytes_per_txn", op.BytesPerTxn, np.BytesPerTxn, th.AllocPct, lowerIsBetter)

		// Abort rate: absolute points, not relative (0.1% → 0.3% is a
		// 200% relative jump but means nothing at smoke sample sizes).
		ad := Delta{
			Protocol: np.Protocol, Metric: "abort_rate_pct",
			Old: op.AbortRatePct, New: np.AbortRatePct,
			Pct: np.AbortRatePct - op.AbortRatePct,
		}
		ad.Regression = th.AbortPts > 0 && ad.Pct > th.AbortPts
		if ad.Regression {
			regressions++
		}
		deltas = append(deltas, ad)

		// Freshness (schema v3): skipped entirely when either snapshot
		// lacks the block, so v2 baselines stay comparable.
		if op.Freshness != nil && np.Freshness != nil {
			of, nf := op.Freshness, np.Freshness
			sd := Delta{
				Protocol: np.Protocol, Metric: "stale_read_pct",
				Old: of.StaleReadPct, New: nf.StaleReadPct,
				Pct: nf.StaleReadPct - of.StaleReadPct,
			}
			sd.Regression = th.StalePts > 0 && sd.Pct > th.StalePts
			if sd.Regression {
				regressions++
			}
			deltas = append(deltas, sd)
			add("p95_read_lag_us", of.P95ReadLagUS, nf.P95ReadLagUS, th.LatencyPct, lowerIsBetter)
			add("p95_apply_lag_us", of.P95ApplyLagUS, nf.P95ApplyLagUS, th.LatencyPct, lowerIsBetter)
		}
	}
	return deltas, regressions
}

// WriteDiff renders the comparison as a human-readable table, regressions
// marked. With onlyChanged, metrics that moved less than 1% (or 0.1 abort
// points) are suppressed.
func WriteDiff(w io.Writer, deltas []Delta, onlyChanged bool) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "protocol\tmetric\told\tnew\tchange\t")
	for _, d := range deltas {
		if onlyChanged && !d.Regression {
			if d.Metric == "abort_rate_pct" || d.Metric == "stale_read_pct" {
				if d.Pct > -0.1 && d.Pct < 0.1 {
					continue
				}
			} else if d.Pct > -1 && d.Pct < 1 {
				continue
			}
		}
		mark := ""
		if d.Regression {
			mark = "REGRESSION"
		}
		// Pct is normalized to "positive = worse"; display the natural
		// sign (a throughput drop reads as a minus).
		natural := d.Pct
		if d.Metric == "throughput_per_site" {
			natural = -natural
		}
		change := fmt.Sprintf("%+.1f%%", natural)
		if d.Metric == "abort_rate_pct" || d.Metric == "stale_read_pct" {
			change = fmt.Sprintf("%+.2f pts", natural)
		} else if d.Old == 0 {
			change = "n/a (no baseline)"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.2f\t%s\t%s\n", d.Protocol, d.Metric, d.Old, d.New, change, mark)
	}
	tw.Flush()
}
