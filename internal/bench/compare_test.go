package bench

import (
	"bytes"
	"strings"
	"testing"
)

func baselineSnap() *Snapshot {
	return &Snapshot{
		SchemaVersion: 1,
		Label:         "base",
		Suite:         "smoke",
		Protocols: []ProtocolResult{
			{
				Protocol: "PSL", ThroughputPerSite: 100, AbortRatePct: 1,
				P50ResponseUS: 400, P95ResponseUS: 900, P99ResponseUS: 1200,
				P95PropUS: 0, AllocsPerTxn: 500, BytesPerTxn: 40000,
			},
			{
				Protocol: "BackEdge", ThroughputPerSite: 80, AbortRatePct: 2,
				P50ResponseUS: 500, P95ResponseUS: 1100, P99ResponseUS: 1500,
				P95PropUS: 700, AllocsPerTxn: 600, BytesPerTxn: 50000,
			},
		},
	}
}

// TestCompareSelfIsClean is the gate's identity property: a snapshot
// compared against itself regresses nothing.
func TestCompareSelfIsClean(t *testing.T) {
	s := baselineSnap()
	deltas, regressions := Compare(s, s, DefaultThresholds())
	if regressions != 0 {
		t.Fatalf("self-compare found %d regressions: %+v", regressions, deltas)
	}
	if len(deltas) == 0 {
		t.Fatal("self-compare produced no deltas at all")
	}
	for _, d := range deltas {
		if d.Pct != 0 || d.Regression {
			t.Errorf("self-compare delta not zero: %+v", d)
		}
	}
}

// TestCompareCatchesThroughputDrop is the acceptance check: a doctored 20%
// throughput drop must trip the default 10% gate.
func TestCompareCatchesThroughputDrop(t *testing.T) {
	oldSnap, newSnap := baselineSnap(), baselineSnap()
	newSnap.Protocols[0].ThroughputPerSite = 80 // PSL: 100 → 80, -20%
	deltas, regressions := Compare(oldSnap, newSnap, DefaultThresholds())
	if regressions != 1 {
		t.Fatalf("want exactly 1 regression, got %d: %+v", regressions, deltas)
	}
	for _, d := range deltas {
		want := d.Protocol == "PSL" && d.Metric == "throughput_per_site"
		if d.Regression != want {
			t.Errorf("regression flag wrong on %+v", d)
		}
		if want && d.Pct != 20 {
			t.Errorf("throughput drop Pct = %v, want 20 (positive = worse)", d.Pct)
		}
	}
}

// TestCompareDirectionAware checks that improvements never trip the gate
// and each metric family regresses in its own bad direction.
func TestCompareDirectionAware(t *testing.T) {
	oldSnap, newSnap := baselineSnap(), baselineSnap()
	newSnap.Protocols[0].ThroughputPerSite = 200 // 2× faster: fine
	newSnap.Protocols[0].P95ResponseUS = 450     // halved latency: fine
	newSnap.Protocols[0].AllocsPerTxn = 100      // fewer allocs: fine
	if _, regressions := Compare(oldSnap, newSnap, DefaultThresholds()); regressions != 0 {
		t.Errorf("improvements counted as regressions: %d", regressions)
	}

	newSnap = baselineSnap()
	newSnap.Protocols[1].P95ResponseUS = 1100 * 1.5 // +50% latency > 30% gate
	newSnap.Protocols[1].AllocsPerTxn = 600 * 1.6   // +60% allocs > 50% gate
	newSnap.Protocols[1].AbortRatePct = 9           // +7 pts > 5 pt gate
	_, regressions := Compare(oldSnap, newSnap, DefaultThresholds())
	if regressions != 3 {
		t.Errorf("want 3 regressions (latency, allocs, abort pts), got %d", regressions)
	}
}

// TestCompareZeroBaselineNeverFails: a metric with no old value cannot
// regress (PSL has P95PropUS == 0 in the baseline).
func TestCompareZeroBaselineNeverFails(t *testing.T) {
	oldSnap, newSnap := baselineSnap(), baselineSnap()
	newSnap.Protocols[0].P95PropUS = 99999
	deltas, regressions := Compare(oldSnap, newSnap, DefaultThresholds())
	if regressions != 0 {
		t.Errorf("zero-baseline metric regressed: %+v", deltas)
	}
}

// TestCompareSkipsUnmatchedProtocols: engines present in only one
// snapshot are not compared.
func TestCompareSkipsUnmatchedProtocols(t *testing.T) {
	oldSnap, newSnap := baselineSnap(), baselineSnap()
	newSnap.Protocols = append(newSnap.Protocols, ProtocolResult{Protocol: "DAG(T)", ThroughputPerSite: 1})
	deltas, _ := Compare(oldSnap, newSnap, DefaultThresholds())
	for _, d := range deltas {
		if d.Protocol == "DAG(T)" {
			t.Errorf("unmatched protocol compared: %+v", d)
		}
	}
}

// TestCompareDisabledThreshold: a zero threshold disables that family's
// gate rather than making it infinitely strict.
func TestCompareDisabledThreshold(t *testing.T) {
	oldSnap, newSnap := baselineSnap(), baselineSnap()
	newSnap.Protocols[0].ThroughputPerSite = 1 // -99%
	th := DefaultThresholds()
	th.ThroughputPct = 0
	if _, regressions := Compare(oldSnap, newSnap, th); regressions != 0 {
		t.Errorf("disabled throughput gate still fired: %d", regressions)
	}
}

func TestWriteDiff(t *testing.T) {
	oldSnap, newSnap := baselineSnap(), baselineSnap()
	newSnap.Protocols[0].ThroughputPerSite = 80
	newSnap.Protocols[0].P95PropUS = 500 // old == 0
	deltas, _ := Compare(oldSnap, newSnap, DefaultThresholds())

	var buf bytes.Buffer
	WriteDiff(&buf, deltas, false)
	out := buf.String()
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("diff table missing REGRESSION mark:\n%s", out)
	}
	if !strings.Contains(out, "-20.0%") {
		t.Errorf("throughput drop should display with natural minus sign:\n%s", out)
	}
	if !strings.Contains(out, "n/a (no baseline)") {
		t.Errorf("zero-baseline metric should display as n/a:\n%s", out)
	}

	buf.Reset()
	WriteDiff(&buf, deltas, true)
	if out := buf.String(); strings.Contains(out, "BackEdge") {
		t.Errorf("onlyChanged diff should suppress BackEdge's unchanged rows:\n%s", out)
	}
}
