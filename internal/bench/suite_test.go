package bench

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
)

func TestSuiteNames(t *testing.T) {
	for _, name := range []string{"smoke", "medium", "full"} {
		cfg, err := Suite(name)
		if err != nil {
			t.Errorf("Suite(%q): %v", name, err)
		}
		if cfg.TxnsPerThread <= 0 || cfg.OpCost <= 0 || len(cfg.Protocols) != 5 {
			t.Errorf("Suite(%q) underspecified: %+v", name, cfg)
		}
	}
	if _, err := Suite("bogus"); err == nil {
		t.Error("unknown suite accepted")
	}
}

// TestRunSuiteSmall runs a shrunken suite end to end across all five
// engines and checks the acceptance properties of a snapshot: every
// protocol commits work, carries a non-zero phase breakdown, allocation
// accounting is populated, pprof profiles land in the artifact dir, and
// the result self-compares clean.
func TestRunSuiteSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs five cluster lifecycles")
	}
	// Long enough that the seed-1 workload reliably routes some BackEdge
	// transactions through backedges (and so through 2PC); a 6-txn run
	// can finish without a single one.
	cfg := SuiteConfig{
		Name:          "test",
		TxnsPerThread: 30,
		OpCost:        20 * time.Microsecond,
		Seed:          1,
		Protocols:     AllProtocols(),
	}
	profDir := filepath.Join(t.TempDir(), "pprof")
	var progress int
	snap, err := RunSuite(cfg, RunOptions{Label: "small", ProfileDir: profDir, Progress: func(string) { progress++ }})
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	if snap.SchemaVersion != SchemaVersion || snap.Label != "small" || snap.Suite != "test" || snap.Seed != 1 {
		t.Errorf("snapshot header wrong: %+v", snap)
	}
	if snap.CreatedAt == "" {
		t.Error("CreatedAt not stamped")
	} else if _, err := time.Parse(time.RFC3339, snap.CreatedAt); err != nil {
		t.Errorf("CreatedAt not RFC 3339: %v", err)
	}
	if progress != len(cfg.Protocols) {
		t.Errorf("progress callback fired %d times, want %d", progress, len(cfg.Protocols))
	}
	if len(snap.Protocols) != 5 {
		t.Fatalf("snapshot has %d protocols, want 5", len(snap.Protocols))
	}

	for _, proto := range AllProtocols() {
		pr, ok := snap.Result(proto.String())
		if !ok {
			t.Errorf("%v missing from snapshot", proto)
			continue
		}
		if pr.Committed == 0 || pr.ThroughputPerSite <= 0 {
			t.Errorf("%v: no committed work: %+v", proto, pr)
		}
		if pr.AllocsPerTxn <= 0 || pr.BytesPerTxn <= 0 {
			t.Errorf("%v: allocation accounting empty: allocs=%v bytes=%v", proto, pr.AllocsPerTxn, pr.BytesPerTxn)
		}
		if len(pr.Phases) == 0 {
			t.Errorf("%v: phase breakdown empty — the engine lost its attribution hooks", proto)
			continue
		}
		// Every engine commits through the txn manager, so these two
		// phases must always be present.
		for _, phase := range []string{"lock_wait", "apply"} {
			if ph := pr.Phases[phase]; ph.Count == 0 {
				t.Errorf("%v: phase %s has no samples", proto, phase)
			}
		}
		// Propagating engines must attribute transport time.
		if proto.Propagates() {
			if ph := pr.Phases["transport"]; ph.Count == 0 {
				t.Errorf("%v: propagating protocol recorded no transport samples", proto)
			}
		}
		// Only the 2PC protocol has vote/decision legs.
		_, hasVote := pr.Phases["2pc_vote"]
		if hasVote != (proto == core.BackEdge) {
			t.Errorf("%v: 2pc_vote present=%v, want %v", proto, hasVote, proto == core.BackEdge)
		}
	}

	for _, name := range []string{"cpu.pprof", "heap.pprof", "mutex.pprof", "block.pprof"} {
		fi, err := os.Stat(filepath.Join(profDir, name))
		if err != nil {
			t.Errorf("profile %s not written: %v", name, err)
		} else if fi.Size() == 0 {
			t.Errorf("profile %s is empty", name)
		}
	}

	if _, regressions := Compare(snap, snap, DefaultThresholds()); regressions != 0 {
		t.Errorf("fresh snapshot does not self-compare clean: %d regressions", regressions)
	}
}
