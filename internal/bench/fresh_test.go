package bench

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/workload"
)

// freshPoint runs one small seeded cluster with the trace recorder and
// registry attached and returns the three freshness surfaces the
// observatory must keep in agreement: the ReadCertificate trace tags,
// the repl_read_staleness_* registry counters, and the bench snapshot's
// freshness block.
func freshPoint(t *testing.T, proto core.Protocol, seed int64) (freshTags, staleTags uint64, snap map[string]int64, fr *Freshness) {
	t.Helper()
	wl := workload.Default()
	wl.TxnsPerThread = 40
	wl.Seed = seed
	if !proto.Propagates() || proto == core.DAGWT || proto == core.DAGT {
		wl.BackedgeProb = 0
	}
	params := core.DefaultParams()
	params.OpCost = 20 * time.Microsecond
	rec := trace.NewRecorder()
	registry := obs.NewRegistry()
	c, err := cluster.New(cluster.Config{
		Workload:         wl,
		Protocol:         proto,
		Params:           params,
		Latency:          time.Millisecond,
		TrackPropagation: true,
		Trace:            rec,
		Obs:              registry,
	})
	if err != nil {
		t.Fatalf("New(%v): %v", proto, err)
	}
	c.Start()
	defer c.Stop()
	if _, err := c.Run(); err != nil {
		t.Fatalf("Run(%v): %v", proto, err)
	}
	if err := c.Quiesce(time.Minute); err != nil {
		t.Fatalf("Quiesce(%v): %v", proto, err)
	}
	for _, ev := range rec.Snapshot() {
		if ev.Kind != trace.ReadCertificate {
			continue
		}
		if ev.Phase == "stale" {
			staleTags++
		} else {
			freshTags++
		}
	}
	snap = registry.Snapshot()
	fr = FreshnessFromSummary(c.FreshSummary(), countReads(registry))
	return freshTags, staleTags, snap, fr
}

// counterSum adds up one metric family across its label sets (sites).
func counterSum(snap map[string]int64, family string) uint64 {
	var sum int64
	for k, v := range snap {
		if k == family || strings.HasPrefix(k, family+"{") {
			sum += v
		}
	}
	return uint64(sum)
}

// TestEagerVsLazyReadStaleness is the observatory's ground-truth check,
// one seed, two engines: PSL reads observe the primary copy by
// construction, so every surface must report zero read staleness; DAG(WT)
// reads observe replicas that lag the primary, so under the same seed
// every surface must report some — and all three surfaces must agree
// with each other exactly.
func TestEagerVsLazyReadStaleness(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	const seed = 7

	freshTags, staleTags, snap, fr := freshPoint(t, core.PSL, seed)
	if freshTags == 0 {
		t.Fatal("PSL: no fresh read certificates in the trace")
	}
	if staleTags != 0 {
		t.Errorf("PSL: %d stale certificates in trace, want 0 (reads observe the primary)", staleTags)
	}
	if got := counterSum(snap, "repl_read_staleness_stale_total"); got != 0 {
		t.Errorf("PSL: repl_read_staleness_stale_total = %d, want 0", got)
	}
	if got := counterSum(snap, "repl_read_staleness_fresh_total"); got == 0 {
		t.Error("PSL: repl_read_staleness_fresh_total is 0; certificates not wired")
	}
	if fr == nil {
		t.Fatal("PSL: no freshness block")
	}
	if fr.StaleReadPct != 0 || fr.ReadsStale != 0 {
		t.Errorf("PSL: bench block reports staleness: %+v", fr)
	}
	if fr.Reads == 0 || fr.CoveragePct < 95 {
		t.Errorf("PSL: coverage %.1f%% of %d reads, want >=95%%", fr.CoveragePct, fr.Reads)
	}

	freshTags, staleTags, snap, fr = freshPoint(t, core.DAGWT, seed)
	if staleTags == 0 {
		t.Fatal("DAG(WT): no stale read certificates in trace under 1ms propagation latency")
	}
	staleCtr := counterSum(snap, "repl_read_staleness_stale_total")
	if staleCtr == 0 {
		t.Error("DAG(WT): repl_read_staleness_stale_total is 0")
	}
	if fr == nil {
		t.Fatal("DAG(WT): no freshness block")
	}
	if fr.StaleReadPct == 0 || fr.ReadsStale == 0 {
		t.Errorf("DAG(WT): bench block reports zero staleness: %+v", fr)
	}
	// The three surfaces count the same certificates.
	if staleTags != staleCtr || staleCtr != fr.ReadsStale {
		t.Errorf("stale counts disagree: trace=%d obs=%d bench=%d", staleTags, staleCtr, fr.ReadsStale)
	}
	if fresh := counterSum(snap, "repl_read_staleness_fresh_total"); freshTags != fresh || fresh != fr.ReadsFresh {
		t.Errorf("fresh counts disagree: trace=%d obs=%d bench=%d", freshTags, fresh, fr.ReadsFresh)
	}
	if fr.CoveragePct < 95 {
		t.Errorf("DAG(WT): coverage %.1f%%, want >=95%%", fr.CoveragePct)
	}
	if fr.Applies == 0 || fr.P95VersionLag == 0 {
		t.Errorf("DAG(WT): replica staleness distribution empty: %+v", fr)
	}
}
