// Package bench is the repo's benchmark observatory: it runs the five
// protocol engines through fixed suites, condenses each run into a
// versioned, machine-readable BenchSnapshot (throughput, response and
// propagation percentiles, per-phase latency attribution, abort rate,
// allocation accounting, environment), captures pprof profiles alongside,
// and diffs two snapshots through a direction-aware regression gate.
//
// The JSON field names below are a compatibility contract: BENCH_*.json
// files accumulate across PRs as the perf trajectory (docs/BENCHMARKING.md),
// so fields may be added but never renamed or removed. SchemaVersion moves
// only when that contract has to break.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/fresh"
	"repro/internal/metrics"
)

// SchemaVersion is the BenchSnapshot schema generation. Bump only on an
// incompatible change (rename/removal/semantic change of a field) or
// when consumers must be able to rely on a new field's presence.
// History: v1 the original contract; v2 added the per-reason abort
// breakdown (abort_reasons — the contention observatory taxonomy); v3
// added the per-protocol freshness block (freshness — the freshness
// observatory's read-certificate and staleness rollup).
// Readers accept older generations; only newer ones are rejected.
const SchemaVersion = 3

// Environment pins the machine context a snapshot was measured in, so a
// regression diff can tell a code change from a hardware change.
type Environment struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
}

// CaptureEnvironment fills an Environment from the running process.
func CaptureEnvironment() Environment {
	return Environment{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		CPUModel:   cpuModel(),
	}
}

// cpuModel best-effort reads the CPU model name; empty when unknown.
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(b), "\n") {
		if k, v, ok := strings.Cut(line, ":"); ok && strings.TrimSpace(k) == "model name" {
			return strings.TrimSpace(v)
		}
	}
	return ""
}

// PhaseBreakdown is one phase's latency summary in microseconds (floats,
// so sub-microsecond segments are not rounded away).
type PhaseBreakdown struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

// ProtocolResult is one protocol's measured point within a suite run.
type ProtocolResult struct {
	Protocol          string  `json:"protocol"`
	ThroughputPerSite float64 `json:"throughput_per_site"`
	AbortRatePct      float64 `json:"abort_rate_pct"`
	Committed         uint64  `json:"committed"`
	Aborted           uint64  `json:"aborted"`
	// AbortReasons splits Aborted by root cause, keyed by the stable
	// contend.AbortReason names (lock_timeout, deadlock, wound,
	// 2pc_no_vote, wal_fence, crash, unknown). The legacy total stays:
	// v1 consumers keep reading it, and the two must agree (the reasons
	// sum to Aborted when every abort was classified). Since schema v2.
	AbortReasons map[string]uint64 `json:"abort_reasons,omitempty"`

	MeanResponseUS float64 `json:"mean_response_us"`
	P50ResponseUS  float64 `json:"p50_response_us"`
	P95ResponseUS  float64 `json:"p95_response_us"`
	P99ResponseUS  float64 `json:"p99_response_us"`
	MaxResponseUS  float64 `json:"max_response_us"`

	// MeanPropUS/P95PropUS/MaxPropUS measure commit-to-replica-apply
	// propagation delay. They are structurally zero for PSL — the one
	// protocol with Propagates() == false: PSL reads non-local items at
	// their primary site (remote_reads below) instead of propagating
	// updates to replicas, so no secondary subtransaction ever exists to
	// time. A zero here for any *other* protocol is a red flag.
	MeanPropUS float64 `json:"mean_prop_us"`
	P95PropUS  float64 `json:"p95_prop_us"`
	MaxPropUS  float64 `json:"max_prop_us"`

	Messages    uint64 `json:"messages"`
	RemoteReads uint64 `json:"remote_reads"`
	// Secondaries counts applied secondary subtransactions; structurally
	// zero for PSL for the same reason as the prop latencies.
	Secondaries uint64 `json:"secondaries"`
	Dummies     uint64 `json:"dummies"`
	Retries     uint64 `json:"retries"`

	// Phases is the per-phase latency attribution keyed by
	// metrics.Phase.String names (lock_wait, apply, queue_wait,
	// transport, 2pc_vote, 2pc_decision).
	Phases map[string]PhaseBreakdown `json:"phases,omitempty"`

	// AllocsPerTxn/BytesPerTxn are testing.B-style allocation accounting:
	// heap allocations (count and bytes) during the run divided by
	// committed primary subtransactions.
	AllocsPerTxn float64 `json:"allocs_per_txn"`
	BytesPerTxn  float64 `json:"bytes_per_txn"`

	ElapsedMS float64 `json:"elapsed_ms"`

	// Counters carries the run's repl_fault_* / repl_reliable_* live
	// counters (empty on a fault-free suite run), plus telemetry_frames
	// and telemetry_events when the suite ran with the telemetry plane
	// attached. Informational — the regression gate compares the
	// latency/throughput metrics, not these.
	Counters map[string]int64 `json:"counters,omitempty"`

	// Freshness is the run's freshness-observatory rollup: certificate
	// coverage, stale-read rate, and staleness percentiles. Since schema
	// v3; the gate's freshness checks skip when either side lacks it (v2
	// files stay comparable).
	Freshness *Freshness `json:"freshness,omitempty"`
}

// Freshness condenses a fresh.Summary (plus the independently counted
// read total) into the snapshot's flat, unit-suffixed form.
type Freshness struct {
	// Reads counts read operations (repl_txn_reads_total, summed);
	// ReadsFresh+ReadsStale counts certificates. CoveragePct is their
	// ratio — 100 means every read issued a certificate.
	Reads       uint64  `json:"reads"`
	ReadsFresh  uint64  `json:"reads_fresh"`
	ReadsStale  uint64  `json:"reads_stale"`
	CoveragePct float64 `json:"coverage_pct"`
	// StaleReadPct is the share of certified reads that observed a
	// non-latest version. Structurally zero for PSL (every read observes
	// the primary copy); the gate treats an increase as a regression.
	StaleReadPct float64 `json:"stale_read_pct"`
	// Read-staleness distribution: versions and µs behind the primary at
	// read time (bucket-upper-bound percentiles, conservative within 2×).
	P95ReadLagVersions uint64  `json:"p95_read_lag_versions"`
	P95ReadLagUS       float64 `json:"p95_read_lag_us"`
	MaxReadLagUS       float64 `json:"max_read_lag_us"`
	// Replica-staleness distribution, sampled on every secondary apply
	// and by the periodic probe. Applies is structurally zero for PSL.
	Applies       uint64  `json:"applies"`
	P95VersionLag uint64  `json:"p95_version_lag"`
	P95ApplyLagUS float64 `json:"p95_apply_lag_us"`
	MaxApplyLagUS float64 `json:"max_apply_lag_us"`
}

// FreshnessFromSummary flattens a tracker summary into the snapshot
// block; reads is the independently counted read-operation total the
// coverage ratio is measured against (pass the certificate count when no
// independent counter is available).
func FreshnessFromSummary(s *fresh.Summary, reads uint64) *Freshness {
	if s == nil {
		return nil
	}
	f := &Freshness{
		Reads:              reads,
		ReadsFresh:         s.ReadsFresh,
		ReadsStale:         s.ReadsStale,
		StaleReadPct:       s.StaleReadPct(),
		P95ReadLagVersions: s.ReadVersionLag.P95,
		P95ReadLagUS:       float64(s.ReadTimeLagUS.P95),
		MaxReadLagUS:       float64(s.ReadTimeLagUS.Max),
		Applies:            s.Applies,
		P95VersionLag:      s.VersionLag.P95,
		P95ApplyLagUS:      float64(s.TimeLagUS.P95),
		MaxApplyLagUS:      float64(s.TimeLagUS.Max),
	}
	if reads > 0 {
		f.CoveragePct = 100 * float64(s.Reads()) / float64(reads)
	}
	return f
}

// Snapshot is one suite run's complete record — the unit of the repo's
// perf trajectory.
type Snapshot struct {
	SchemaVersion int              `json:"schema_version"`
	Label         string           `json:"label"`
	Suite         string           `json:"suite"`
	Seed          int64            `json:"seed"`
	CreatedAt     string           `json:"created_at,omitempty"` // RFC 3339
	Environment   Environment      `json:"environment"`
	Protocols     []ProtocolResult `json:"protocols"`
}

// Result returns the protocol's entry, if present.
func (s *Snapshot) Result(protocol string) (ProtocolResult, bool) {
	for _, p := range s.Protocols {
		if p.Protocol == protocol {
			return p, true
		}
	}
	return ProtocolResult{}, false
}

// WriteJSON writes the snapshot as indented JSON with a trailing newline.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// WriteFile writes the snapshot to path.
func (s *Snapshot) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSnapshot parses one snapshot.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, err
	}
	if s.SchemaVersion == 0 {
		return nil, fmt.Errorf("bench: not a BenchSnapshot (schema_version missing)")
	}
	if s.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("bench: snapshot schema_version %d is newer than this binary's %d", s.SchemaVersion, SchemaVersion)
	}
	return &s, nil
}

// ReadSnapshotFile parses the snapshot at path.
func ReadSnapshotFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	s, err := ReadSnapshot(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

// resultFromReport converts a run report into the snapshot's flat,
// unit-suffixed form.
func resultFromReport(protocol string, rep metrics.Report) ProtocolResult {
	pr := ProtocolResult{
		Protocol:          protocol,
		ThroughputPerSite: rep.ThroughputPerSite,
		AbortRatePct:      rep.AbortRate,
		Committed:         rep.Committed,
		Aborted:           rep.Aborted,
		MeanResponseUS:    us(rep.MeanResponse),
		P50ResponseUS:     us(rep.P50Response),
		P95ResponseUS:     us(rep.P95Response),
		P99ResponseUS:     us(rep.P99Response),
		MaxResponseUS:     us(rep.MaxResponse),
		MeanPropUS:        us(rep.MeanPropDelay),
		P95PropUS:         us(rep.P95PropDelay),
		MaxPropUS:         us(rep.MaxPropDelay),
		Messages:          rep.Messages,
		RemoteReads:       rep.RemoteReads,
		Secondaries:       rep.Secondaries,
		Dummies:           rep.Dummies,
		Retries:           rep.Retries,
		ElapsedMS:         float64(rep.Elapsed) / float64(time.Millisecond),
	}
	if len(rep.Phases) > 0 {
		pr.Phases = make(map[string]PhaseBreakdown, len(rep.Phases))
		for name, ps := range rep.Phases {
			pr.Phases[name] = PhaseBreakdown{
				Count:  ps.Count,
				MeanUS: us(ps.Mean),
				P50US:  us(ps.P50),
				P95US:  us(ps.P95),
				P99US:  us(ps.P99),
				MaxUS:  us(ps.Max),
			}
		}
	}
	return pr
}
