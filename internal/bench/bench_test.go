package bench

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

// goldenSnapshot is a fully-populated snapshot with deterministic values;
// its serialized form is pinned by testdata/golden_snapshot.json.
func goldenSnapshot() *Snapshot {
	return &Snapshot{
		SchemaVersion: 2,
		Label:         "golden",
		Suite:         "smoke",
		Seed:          1,
		CreatedAt:     "2026-01-02T03:04:05Z",
		Environment: Environment{
			GoVersion:  "go1.23.0",
			GOOS:       "linux",
			GOARCH:     "amd64",
			GOMAXPROCS: 4,
			NumCPU:     4,
			CPUModel:   "Golden CPU @ 1.00GHz",
		},
		Protocols: []ProtocolResult{
			{
				Protocol:          "BackEdge",
				ThroughputPerSite: 123.45,
				AbortRatePct:      1.5,
				Committed:         810,
				Aborted:           12,
				AbortReasons: map[string]uint64{
					"lock_timeout": 7,
					"deadlock":     2,
					"2pc_no_vote":  3,
				},
				MeanResponseUS: 420.5,
				P50ResponseUS:  400,
				P95ResponseUS:  900,
				P99ResponseUS:  1200,
				MaxResponseUS:  2500,
				MeanPropUS:     300,
				P95PropUS:      750,
				MaxPropUS:      1800,
				Messages:       4096,
				RemoteReads:    64,
				Secondaries:    1500,
				Dummies:        20,
				Retries:        3,
				Phases: map[string]PhaseBreakdown{
					"lock_wait":    {Count: 810, MeanUS: 10.5, P50US: 8, P95US: 40, P99US: 70, MaxUS: 150},
					"apply":        {Count: 810, MeanUS: 5.25, P50US: 4, P95US: 12, P99US: 20, MaxUS: 33},
					"queue_wait":   {Count: 1500, MeanUS: 55, P50US: 40, P95US: 160, P99US: 250, MaxUS: 600},
					"transport":    {Count: 4000, MeanUS: 151, P50US: 150, P95US: 170, P99US: 190, MaxUS: 400},
					"2pc_vote":     {Count: 120, MeanUS: 310, P50US: 300, P95US: 420, P99US: 500, MaxUS: 700},
					"2pc_decision": {Count: 120, MeanUS: 290, P50US: 280, P95US: 390, P99US: 450, MaxUS: 650},
				},
				AllocsPerTxn: 512.5,
				BytesPerTxn:  40960.25,
				ElapsedMS:    1234.5,
				Counters: map[string]int64{
					"repl_fault_drops_total":        2,
					"repl_reliable_retransmissions": 5,
				},
			},
			{
				Protocol:          "PSL",
				ThroughputPerSite: 98.7,
				Committed:         810,
				MeanResponseUS:    500,
				P50ResponseUS:     480,
				P95ResponseUS:     1000,
				P99ResponseUS:     1300,
				MaxResponseUS:     2000,
				Messages:          900,
				RemoteReads:       900,
				AllocsPerTxn:      300,
				BytesPerTxn:       20000,
				ElapsedMS:         1500,
			},
		},
	}
}

// TestSnapshotGoldenRoundTrip pins the BenchSnapshot wire format: the
// serialized golden snapshot must match testdata/golden_snapshot.json
// byte for byte, and reading that file back must reproduce the value.
// Renaming or removing a JSON field breaks every committed BENCH_*.json;
// run with UPDATE_BENCH_GOLDEN=1 only for an intentional, additive change.
func TestSnapshotGoldenRoundTrip(t *testing.T) {
	golden := filepath.Join("testdata", "golden_snapshot.json")
	var buf bytes.Buffer
	if err := goldenSnapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if os.Getenv("UPDATE_BENCH_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with UPDATE_BENCH_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("serialized snapshot diverged from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	back, err := ReadSnapshotFile(golden)
	if err != nil {
		t.Fatalf("ReadSnapshotFile: %v", err)
	}
	if !reflect.DeepEqual(back, goldenSnapshot()) {
		t.Errorf("round trip lost data:\ngot  %+v\nwant %+v", back, goldenSnapshot())
	}
	if _, ok := back.Result("PSL"); !ok {
		t.Error("Result(PSL) not found after round trip")
	}
	if _, ok := back.Result("DAG(T)"); ok {
		t.Error("Result(DAG(T)) found but not in snapshot")
	}
}

func TestReadSnapshotRejectsForeignJSON(t *testing.T) {
	if _, err := ReadSnapshot(strings.NewReader(`{"label":"x"}`)); err == nil || !strings.Contains(err.Error(), "schema_version") {
		t.Errorf("missing schema_version accepted: %v", err)
	}
	if _, err := ReadSnapshot(strings.NewReader(`{"schema_version":99}`)); err == nil || !strings.Contains(err.Error(), "newer") {
		t.Errorf("future schema_version accepted: %v", err)
	}
}

func TestResultFromReport(t *testing.T) {
	rep := metrics.Report{
		Elapsed:           2 * time.Second,
		Committed:         100,
		Aborted:           5,
		ThroughputPerSite: 50,
		AbortRate:         4.76,
		MeanResponse:      1500 * time.Microsecond,
		P95Response:       3 * time.Millisecond,
		Phases: map[string]metrics.PhaseStats{
			"lock_wait": {Count: 100, Mean: 10 * time.Microsecond, P95: 25 * time.Microsecond, Max: 80 * time.Microsecond},
		},
	}
	pr := resultFromReport("PSL", rep)
	if pr.Protocol != "PSL" || pr.Committed != 100 || pr.AbortRatePct != 4.76 {
		t.Errorf("scalar fields wrong: %+v", pr)
	}
	if pr.MeanResponseUS != 1500 || pr.P95ResponseUS != 3000 {
		t.Errorf("µs conversion wrong: mean=%v p95=%v", pr.MeanResponseUS, pr.P95ResponseUS)
	}
	if pr.ElapsedMS != 2000 {
		t.Errorf("ElapsedMS = %v, want 2000", pr.ElapsedMS)
	}
	ph, ok := pr.Phases["lock_wait"]
	if !ok || ph.Count != 100 || ph.MeanUS != 10 || ph.P95US != 25 || ph.MaxUS != 80 {
		t.Errorf("phase conversion wrong: %+v (ok=%v)", ph, ok)
	}
}

func TestCaptureEnvironment(t *testing.T) {
	env := CaptureEnvironment()
	if env.GoVersion == "" || env.GOOS == "" || env.GOARCH == "" {
		t.Errorf("environment missing toolchain identity: %+v", env)
	}
	if env.GOMAXPROCS < 1 || env.NumCPU < 1 {
		t.Errorf("implausible CPU counts: %+v", env)
	}
}
