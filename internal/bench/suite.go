package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SuiteConfig selects how much of the Table 1 workload a suite point
// runs. Suite(name) returns the three standard sizes; tests shrink them
// further.
type SuiteConfig struct {
	Name          string
	TxnsPerThread int
	OpCost        time.Duration
	Seed          int64
	Protocols     []core.Protocol
}

// AllProtocols is the default suite coverage: every engine, including the
// non-serializable NaiveLazy control.
func AllProtocols() []core.Protocol {
	return []core.Protocol{core.PSL, core.DAGWT, core.DAGT, core.BackEdge, core.NaiveLazy}
}

// Suite returns the named standard suite: smoke (CI-sized, seconds),
// medium (interactive), full (the paper's Table 1 run lengths).
func Suite(name string) (SuiteConfig, error) {
	cfg := SuiteConfig{Name: name, Seed: 1, Protocols: AllProtocols()}
	switch name {
	case "smoke":
		cfg.TxnsPerThread = 30
		cfg.OpCost = 50 * time.Microsecond
	case "medium":
		cfg.TxnsPerThread = 120
		cfg.OpCost = 100 * time.Microsecond
	case "full":
		cfg.TxnsPerThread = 1000
		cfg.OpCost = 200 * time.Microsecond
	default:
		return SuiteConfig{}, fmt.Errorf("bench: unknown suite %q (smoke|medium|full)", name)
	}
	return cfg, nil
}

// RunOptions adjusts a suite run.
type RunOptions struct {
	// Label names the snapshot (defaults to the suite name).
	Label string
	// ProfileDir, when set, receives cpu/heap/mutex/block pprof profiles
	// covering the whole suite run.
	ProfileDir string
	// Progress, when non-nil, receives one line per completed protocol.
	Progress func(string)
	// Telemetry runs each protocol point with the full telemetry plane
	// attached — trace recorder, publisher, in-process aggregator — so
	// the regression gate also prices the plane's overhead. The
	// aggregator's received-frame count lands in the result counters.
	Telemetry bool
	// WAL runs every site over a per-site write-ahead redo log in a
	// temporary directory (docs/DURABILITY.md), so the gate prices
	// group-committed durability: every commit pays an append plus its
	// share of a batched fsync. The repl_wal_* counters land in the
	// result counters.
	WAL bool
}

// RunSuite executes every protocol in the suite through the standard
// cluster lifecycle (harness.RunPoint: start, run, quiesce) and returns
// the snapshot. Workload and parameters are Table 1 at the suite's run
// length, the same shape the experiment sweeps use.
func RunSuite(cfg SuiteConfig, opts RunOptions) (*Snapshot, error) {
	label := opts.Label
	if label == "" {
		label = cfg.Name
	}
	snap := &Snapshot{
		SchemaVersion: SchemaVersion,
		Label:         label,
		Suite:         cfg.Name,
		Seed:          cfg.Seed,
		//lint:allow nodeterminism the snapshot's creation stamp is provenance metadata; comparisons key on seed and counts
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		Environment: CaptureEnvironment(),
	}
	prof, err := startProfiles(opts.ProfileDir)
	if err != nil {
		return nil, err
	}
	defer prof.stop()
	for _, proto := range cfg.Protocols {
		pr, err := runProtocol(cfg, proto, opts.Telemetry, opts.WAL)
		if err != nil {
			return nil, fmt.Errorf("bench: suite %s, protocol %v: %w", cfg.Name, proto, err)
		}
		snap.Protocols = append(snap.Protocols, pr)
		if opts.Progress != nil {
			opts.Progress(fmt.Sprintf("%-9s thr/site=%.2f tps  p95=%.0fµs  aborts=%.1f%%",
				proto, pr.ThroughputPerSite, pr.P95ResponseUS, pr.AbortRatePct))
		}
	}
	if err := prof.stop(); err != nil {
		return nil, err
	}
	return snap, nil
}

// runProtocol measures one protocol point, bracketing the run with
// allocation accounting.
func runProtocol(cfg SuiteConfig, proto core.Protocol, withTelemetry, withWAL bool) (ProtocolResult, error) {
	wl := workload.Default()
	wl.TxnsPerThread = cfg.TxnsPerThread
	if cfg.Seed != 0 {
		wl.Seed = cfg.Seed
	}
	if !proto.Propagates() || proto == core.DAGWT || proto == core.DAGT {
		// The Table 1 placement induces backedges; the DAG-only protocols
		// need them gone (same adjustment the traced runs make).
		wl.BackedgeProb = 0
	}
	params := core.DefaultParams()
	params.OpCost = cfg.OpCost
	registry := obs.NewRegistry()

	// testing.B-style accounting: settle the heap, then attribute the
	// run's allocation deltas to its committed transactions. The cluster
	// is the only allocator between the two reads, so the deltas are the
	// run's own (modulo background runtime noise, which GC settling keeps
	// small relative to a whole suite point).
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	clusterCfg := cluster.Config{
		Workload:         wl,
		Protocol:         proto,
		Params:           params,
		Latency:          150 * time.Microsecond,
		TrackPropagation: true,
		Obs:              registry,
	}
	if withWAL {
		dir, err := os.MkdirTemp("", "bench-wal-")
		if err != nil {
			return ProtocolResult{}, err
		}
		defer os.RemoveAll(dir)
		clusterCfg.WALDir = dir
		clusterCfg.WALFlushInterval = 500 * time.Microsecond
	}
	var agg *telemetry.Aggregator
	if withTelemetry {
		// The full plane, in-process: recorder → publisher → aggregator,
		// so the gate prices span recording, delta encoding, and frame
		// delivery without sockets adding scheduler noise.
		agg = telemetry.NewAggregator()
		clusterCfg.Trace = trace.NewRecorder()
		clusterCfg.Telemetry = &telemetry.Options{
			Proc:       "bench-" + proto.String(),
			Sink:       agg,
			Interval:   100 * time.Millisecond,
			SpanBuffer: 1 << 16,
		}
	}
	rep, freshSum, err := harness.RunPointFresh(clusterCfg)
	if err != nil {
		return ProtocolResult{}, err
	}
	runtime.ReadMemStats(&after)

	pr := resultFromReport(proto.String(), rep)
	pr.Freshness = FreshnessFromSummary(freshSum, countReads(registry))
	if rep.Committed > 0 {
		pr.AllocsPerTxn = float64(after.Mallocs-before.Mallocs) / float64(rep.Committed)
		pr.BytesPerTxn = float64(after.TotalAlloc-before.TotalAlloc) / float64(rep.Committed)
	}
	for k, v := range registry.Snapshot() {
		if strings.HasPrefix(k, "repl_fault_") || strings.HasPrefix(k, "repl_reliable_") ||
			strings.HasPrefix(k, "repl_wal_") || strings.HasPrefix(k, "repl_lock_") {
			if pr.Counters == nil {
				pr.Counters = make(map[string]int64)
			}
			pr.Counters[k] = v
		}
		// The abort taxonomy sums across sites into the per-reason
		// breakdown (schema v2); the legacy aborted total stays beside it.
		if reason, ok := abortReasonLabel(k); ok && v > 0 {
			if pr.AbortReasons == nil {
				pr.AbortReasons = make(map[string]uint64)
			}
			pr.AbortReasons[reason] += uint64(v)
		}
	}
	if agg != nil {
		var frames uint64
		for _, pi := range agg.Snapshot().Procs {
			frames += pi.Frames
		}
		if pr.Counters == nil {
			pr.Counters = make(map[string]int64)
		}
		pr.Counters["telemetry_frames"] = int64(frames)
		pr.Counters["telemetry_events"] = int64(len(agg.Events()))
	}
	return pr, nil
}

// countReads sums the repl_txn_reads_total series across sites: the
// independently counted denominator of the freshness block's coverage
// ratio.
func countReads(r *obs.Registry) uint64 {
	var total uint64
	for k, v := range r.Snapshot() {
		if strings.HasPrefix(k, "repl_txn_reads_total") && v > 0 {
			total += uint64(v)
		}
	}
	return total
}

// abortReasonLabel extracts the reason label from a rendered
// repl_txn_abort_reason_total series key
// (`repl_txn_abort_reason_total{reason="lock_timeout",site="0"}`, the
// obs.Registry.Snapshot form).
func abortReasonLabel(key string) (string, bool) {
	const family = "repl_txn_abort_reason_total{"
	rest, ok := strings.CutPrefix(key, family)
	if !ok {
		return "", false
	}
	for _, part := range strings.Split(strings.TrimSuffix(rest, "}"), ",") {
		if v, ok := strings.CutPrefix(part, "reason="); ok {
			return strings.Trim(v, `"`), true
		}
	}
	return "", false
}

// profiles owns the pprof capture of one suite run: a CPU profile spanning
// it, heap/mutex/block snapshots written when it finishes.
type profiles struct {
	dir     string
	cpu     *os.File
	stopped bool
}

func startProfiles(dir string) (*profiles, error) {
	if dir == "" {
		return &profiles{stopped: true}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	// Sampling rates: mutex events 1-in-5, every blocking event above
	// 10µs. Cheap enough to leave on for a whole suite, fine-grained
	// enough to attribute lock contention between the engines.
	runtime.SetMutexProfileFraction(5)
	runtime.SetBlockProfileRate(int(10 * time.Microsecond))
	f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return &profiles{dir: dir, cpu: f}, nil
}

// stop finishes the capture; safe to call twice (the deferred call after
// an explicit one is a no-op).
func (p *profiles) stop() error {
	if p.stopped {
		return nil
	}
	p.stopped = true
	pprof.StopCPUProfile()
	runtime.SetMutexProfileFraction(0)
	runtime.SetBlockProfileRate(0)
	err := p.cpu.Close()
	for _, name := range []string{"heap", "mutex", "block"} {
		prof := pprof.Lookup(name)
		if prof == nil {
			continue
		}
		f, ferr := os.Create(filepath.Join(p.dir, name+".pprof"))
		if ferr != nil {
			if err == nil {
				err = ferr
			}
			continue
		}
		if name == "heap" {
			runtime.GC() // profile live objects, not garbage
		}
		if werr := prof.WriteTo(f, 0); werr != nil && err == nil {
			err = werr
		}
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}
