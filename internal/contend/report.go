// The observatory's bundled output: what replbench -contend embeds in its
// JSON, what replexplain prints, and what the contention smoke asserts
// over.
package contend

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

// Report bundles one run's contention observatory output.
type Report struct {
	// Heat is the cluster-wide top-K item heat table, hottest first.
	Heat []HeatEntry `json:"heat"`
	// WaitGraphs is the final wait-for snapshot (usually empty on a
	// quiesced cluster; non-empty means the run ended with waiters parked).
	WaitGraphs []SiteWaitGraph `json:"wait_for,omitempty"`
	// Aborts counts classified aborts by reason name.
	Aborts map[string]uint64 `json:"aborts,omitempty"`
	// Paths is the per-protocol critical-path profile.
	Paths []*PathProfile `json:"critical_paths,omitempty"`
}

// AbortBreakdown counts TxnAbort events by their classified reason tag.
// Events recorded before classification existed (or by an engine with a
// gap) carry no tag and count as "unknown" — visible, not dropped.
func AbortBreakdown(events []trace.Event) map[string]uint64 {
	out := make(map[string]uint64)
	for _, ev := range events {
		if ev.Kind != trace.TxnAbort {
			continue
		}
		reason := ev.Phase
		if reason == "" {
			reason = ReasonUnknown.String()
		}
		out[reason]++
	}
	return out
}

// Unclassified returns the number of aborts in a breakdown that carry no
// known root cause; zero means the taxonomy covered every abort.
func Unclassified(aborts map[string]uint64) uint64 {
	return aborts[ReasonUnknown.String()]
}

// FormatAborts renders a breakdown one reason per line, descending count
// then name, e.g. "lock_timeout  42".
func FormatAborts(aborts map[string]uint64) []string {
	type rc struct {
		reason string
		n      uint64
	}
	rows := make([]rc, 0, len(aborts))
	for r, n := range aborts {
		rows = append(rows, rc{r, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].reason < rows[j].reason
	})
	lines := make([]string, len(rows))
	for i, r := range rows {
		lines[i] = fmt.Sprintf("%-14s %d", r.reason, r.n)
	}
	return lines
}

// FormatHeat renders the heat table for consoles, hottest first.
func FormatHeat(heat []HeatEntry) []string {
	lines := make([]string, 0, len(heat)+1)
	lines = append(lines, "item      wait_total   wait_max  waited  acq    t/o  ddl  wnd  qpeak  sites")
	for _, h := range heat {
		lines = append(lines, fmt.Sprintf("%-8d %10s %10s  %6d  %-5d %4d %4d %4d  %5d  %5d",
			h.Item,
			time.Duration(h.WaitNS).Round(time.Microsecond),
			time.Duration(h.MaxWaitNS).Round(time.Microsecond),
			h.Waited, h.Acquired, h.Timeouts, h.Deadlocks, h.Wounds, h.QueuePeak, h.Sites))
	}
	return lines
}

// FormatProfile renders one critical-path profile for consoles: coverage,
// segments hottest-first, then the chains.
func FormatProfile(p *PathProfile) []string {
	name := p.Protocol
	if name == "" {
		name = fmt.Sprintf("proto(%d)", p.Proto)
	}
	var lines []string
	lines = append(lines, fmt.Sprintf(
		"%s: %d committed, end-to-end %s, attributed %.1f%% (overlap %s)",
		name, p.Committed, time.Duration(p.EndToEndNS).Round(time.Microsecond),
		p.CoveragePct(), time.Duration(p.OverlapNS).Round(time.Microsecond)))
	segs := append([]Segment(nil), p.Segments...)
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].TotalNS != segs[j].TotalNS {
			return segs[i].TotalNS > segs[j].TotalNS
		}
		if segs[i].Site != segs[j].Site {
			return segs[i].Site < segs[j].Site
		}
		return segs[i].Phase < segs[j].Phase
	})
	for _, s := range segs {
		pct := 0.0
		if p.EndToEndNS > 0 {
			pct = 100 * float64(s.TotalNS) / float64(p.EndToEndNS)
		}
		lines = append(lines, fmt.Sprintf("  %-13s s%-3d %10s  %5.1f%%  (%d samples)",
			s.Phase, s.Site, time.Duration(s.TotalNS).Round(time.Microsecond), pct, s.Count))
	}
	for _, c := range p.Chains {
		lines = append(lines, fmt.Sprintf("  chain %s x%d", c.Path, c.Count))
	}
	return lines
}

// String renders the whole report for consoles.
func (r *Report) String() string {
	var b strings.Builder
	b.WriteString("== contention: item heat (top-K) ==\n")
	if len(r.Heat) == 0 {
		b.WriteString("(no contended items)\n")
	} else {
		for _, l := range FormatHeat(r.Heat) {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	if len(r.Aborts) > 0 {
		b.WriteString("== contention: aborts by root cause ==\n")
		for _, l := range FormatAborts(r.Aborts) {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	if !EmptyWaitGraphs(r.WaitGraphs) {
		b.WriteString("== contention: final wait-for snapshot ==\n")
		for _, l := range FormatWaitGraphs(r.WaitGraphs) {
			b.WriteString(l)
			b.WriteByte('\n')
		}
	}
	if len(r.Paths) > 0 {
		b.WriteString("== contention: critical paths ==\n")
		for _, p := range r.Paths {
			for _, l := range FormatProfile(p) {
				b.WriteString(l)
				b.WriteByte('\n')
			}
		}
	}
	return b.String()
}
