// The critical-path analyzer: for each committed transaction it measures
// end-to-end commit latency from the TxnBegin/TxnCommit pair at the
// origin, attributes it to named (phase, site) segments from the
// PhaseLatency events inside that window, charges whatever no phase
// claims to an explicit "execute" residual at the origin (simulated op
// cost plus scheduling), and walks the deterministic span tree for the
// longest causal chain. Aggregated per protocol, the result says where a
// protocol's commit latency actually goes — the evidence base the
// ROADMAP-1 batching work is judged against.
package contend

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/trace"
)

// PhaseExecute names the residual segment: commit latency not claimed by
// any recorded phase — the simulated operation cost plus scheduling.
const PhaseExecute = "execute"

// Segment is one (phase, site) slice of a protocol's aggregate commit
// latency.
type Segment struct {
	Phase string       `json:"phase"`
	Site  model.SiteID `json:"site"`
	// Count is the number of samples (per-op for lock_wait, per-txn for
	// execute) and TotalNS their summed duration over all committed txns.
	Count   uint64 `json:"count"`
	TotalNS int64  `json:"total_ns"`
}

// Chain is one critical-chain shape ("s0 -> s2 -> s5": the deepest
// root-to-leaf path of a committed transaction's span tree) and how many
// committed transactions propagated that way.
type Chain struct {
	Path  string `json:"path"`
	Count int    `json:"count"`
}

// PathProfile is one protocol's aggregated critical-path profile.
type PathProfile struct {
	Proto uint8 `json:"proto"`
	// Protocol is the display name; the analyzer leaves it empty (contend
	// cannot depend on core's enum) and callers that know the mapping fill
	// it in.
	Protocol  string `json:"protocol,omitempty"`
	Committed int    `json:"committed"`
	// EndToEndNS sums measured begin-to-commit latency over the committed
	// transactions; AttributedNS is the part the segments account for
	// (equal unless phases overlapped, see OverlapNS).
	EndToEndNS   int64 `json:"end_to_end_ns"`
	AttributedNS int64 `json:"attributed_ns"`
	// OverlapNS is phase time in excess of wall-clock latency: segments
	// that ran concurrently (parallel 2PC votes) double-charge the window.
	// The excess is reported, not hidden, so coverage stays honest.
	OverlapNS int64     `json:"overlap_ns,omitempty"`
	Segments  []Segment `json:"segments"`
	Chains    []Chain   `json:"chains"`
}

// CoveragePct is the percentage of measured end-to-end latency the
// segments attribute — 100 when every nanosecond is claimed exactly once.
func (p *PathProfile) CoveragePct() float64 {
	if p.EndToEndNS == 0 {
		return 100
	}
	return 100 * float64(p.AttributedNS) / float64(p.EndToEndNS)
}

// StructureString renders the seed-stable part of the profile — the
// protocol and its critical chains with counts, no durations — so two
// same-seed runs can be compared byte-for-byte.
func (p *PathProfile) StructureString() string {
	var b strings.Builder
	fmt.Fprintf(&b, "proto=%d committed=%d\n", p.Proto, p.Committed)
	for _, c := range p.Chains {
		fmt.Fprintf(&b, "  %s x%d\n", c.Path, c.Count)
	}
	return b.String()
}

// AnalyzeCriticalPaths builds one profile per protocol present in the
// event stream. A transaction counts as committed when its origin site
// recorded both TxnBegin and TxnCommit; its attribution window is the
// span between those two timestamps, so post-commit propagation (lazy
// secondary applies) never pollutes commit-latency segments.
func AnalyzeCriticalPaths(events []trace.Event) []*PathProfile {
	byProto := make(map[uint8][]trace.Event)
	for _, ev := range events {
		byProto[ev.Proto] = append(byProto[ev.Proto], ev)
	}
	protos := make([]uint8, 0, len(byProto))
	for p := range byProto {
		protos = append(protos, p)
	}
	sort.Slice(protos, func(i, j int) bool { return protos[i] < protos[j] })
	var out []*PathProfile
	for _, proto := range protos {
		if prof := analyzeProto(proto, byProto[proto]); prof != nil {
			out = append(out, prof)
		}
	}
	return out
}

type window struct{ begin, commit int64 }

type segKey struct {
	phase string
	site  model.SiteID
}

func analyzeProto(proto uint8, events []trace.Event) *PathProfile {
	// Commit windows, from the begin/commit pair at each origin.
	begins := make(map[model.TxnID]int64)
	for _, ev := range events {
		if ev.Kind == trace.TxnBegin && ev.Site == ev.TID.Site {
			begins[ev.TID] = ev.T
		}
	}
	windows := make(map[model.TxnID]window)
	for _, ev := range events {
		if ev.Kind == trace.TxnCommit && ev.Site == ev.TID.Site {
			if b, ok := begins[ev.TID]; ok {
				windows[ev.TID] = window{begin: b, commit: ev.T}
			}
		}
	}
	if len(windows) == 0 {
		return nil
	}
	p := &PathProfile{Proto: proto, Committed: len(windows)}

	// Phase segments inside each commit window. PhaseLatency events are
	// stamped at segment end, so "T within the window" keeps pre-commit
	// work (including work other sites did on the txn's behalf: PSL remote
	// reads, 2PC votes, the backedge round trip) and drops post-commit
	// propagation.
	segs := make(map[segKey]*Segment)
	attributed := make(map[model.TxnID]int64)
	for _, ev := range events {
		if ev.Kind != trace.PhaseLatency {
			continue
		}
		w, ok := windows[ev.TID]
		if !ok || ev.T < w.begin || ev.T > w.commit {
			continue
		}
		k := segKey{phase: ev.Phase, site: ev.Site}
		s := segs[k]
		if s == nil {
			s = &Segment{Phase: k.phase, Site: k.site}
			segs[k] = s
		}
		s.Count++
		s.TotalNS += ev.Dur
		attributed[ev.TID] += ev.Dur
	}

	// The execute residual, per transaction: what the window measured but
	// no phase claimed. A negative residual means phases overlapped
	// (parallel votes); the excess is reported as overlap.
	for tid, w := range windows {
		e2e := w.commit - w.begin
		p.EndToEndNS += e2e
		got := attributed[tid]
		if resid := e2e - got; resid >= 0 {
			k := segKey{phase: PhaseExecute, site: tid.Site}
			s := segs[k]
			if s == nil {
				s = &Segment{Phase: PhaseExecute, Site: tid.Site}
				segs[k] = s
			}
			s.Count++
			s.TotalNS += resid
			p.AttributedNS += e2e
		} else {
			// Phases overlapped (parallel 2PC votes): they claim more than
			// the wall clock. The window is fully covered; the excess is
			// reported as overlap rather than inflating attribution.
			p.AttributedNS += e2e
			p.OverlapNS += -resid
		}
	}

	p.Segments = make([]Segment, 0, len(segs))
	for _, s := range segs {
		p.Segments = append(p.Segments, *s)
	}
	sort.Slice(p.Segments, func(i, j int) bool {
		a, b := p.Segments[i], p.Segments[j]
		if a.Site != b.Site {
			return a.Site < b.Site
		}
		return a.Phase < b.Phase
	})

	// Critical chains from the span trees: the deepest root-to-leaf path,
	// deterministic because children are ordered and ties keep the first.
	chains := make(map[string]int)
	for tid, tr := range trace.BuildSpanTrees(events) {
		if _, ok := windows[tid]; !ok {
			continue
		}
		if tr.Root == nil {
			continue
		}
		chains[chainOf(tr.Root)]++
	}
	p.Chains = make([]Chain, 0, len(chains))
	for path, n := range chains {
		p.Chains = append(p.Chains, Chain{Path: path, Count: n})
	}
	sort.Slice(p.Chains, func(i, j int) bool { return p.Chains[i].Path < p.Chains[j].Path })
	return p
}

// chainOf renders the deepest root-to-leaf site path of a span tree.
func chainOf(root *trace.SpanNode) string {
	var b strings.Builder
	n := root
	for {
		if b.Len() > 0 {
			b.WriteString(" -> ")
		}
		fmt.Fprintf(&b, "s%d", n.Site)
		var next *trace.SpanNode
		best := -1
		for _, c := range n.Children {
			if d := depthOf(c); d > best {
				best = d
				next = c
			}
		}
		if next == nil {
			return b.String()
		}
		n = next
	}
}

func depthOf(n *trace.SpanNode) int {
	best := 0
	for _, c := range n.Children {
		if d := depthOf(c); d > best {
			best = d
		}
	}
	return best + 1
}
