// Wait-for graph snapshots: the cluster's who-waits-on-whom-for-what
// state at one instant, serialized as JSONL next to the watchdog flight
// recorder. The serialized form is structure-only (lock.WaitEdge excludes
// wait ages from JSON), so the same captured state always produces the
// same bytes — the property the same-seed snapshot test pins.
package contend

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/lock"
	"repro/internal/model"
)

// SiteWaitGraph is one site's wait-for snapshot: every live queued lock
// request at that site, in the lock manager's deterministic order.
type SiteWaitGraph struct {
	Site  model.SiteID    `json:"site"`
	Edges []lock.WaitEdge `json:"edges"`
}

// EmptyWaitGraphs reports whether nothing was waiting in the snapshot.
func EmptyWaitGraphs(gs []SiteWaitGraph) bool {
	for _, g := range gs {
		if len(g.Edges) > 0 {
			return false
		}
	}
	return true
}

// SortWaitGraphs orders a snapshot by site, the canonical dump order.
func SortWaitGraphs(gs []SiteWaitGraph) {
	sort.Slice(gs, func(i, j int) bool { return gs[i].Site < gs[j].Site })
}

// WriteWaitGraphs writes a cluster snapshot as JSONL, one site per line,
// sites in ascending order. Sites with no waiters are skipped, so an
// all-quiet snapshot writes nothing.
func WriteWaitGraphs(w io.Writer, gs []SiteWaitGraph) error {
	sorted := append([]SiteWaitGraph(nil), gs...)
	SortWaitGraphs(sorted)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, g := range sorted {
		if len(g.Edges) == 0 {
			continue
		}
		if err := enc.Encode(g); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadWaitGraphs parses a snapshot produced by WriteWaitGraphs. Blank
// lines are skipped, so concatenated dumps parse cleanly.
func ReadWaitGraphs(r io.Reader) ([]SiteWaitGraph, error) {
	var out []SiteWaitGraph
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var g SiteWaitGraph
		if err := json.Unmarshal(b, &g); err != nil {
			return nil, fmt.Errorf("contend: wait-for line %d: %w", line, err)
		}
		out = append(out, g)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// FormatWaitGraphs renders a snapshot for consoles: one line per edge,
// "s2: T(s0:7) waits X[17] pos=0 behind T(s1:3)(X)".
func FormatWaitGraphs(gs []SiteWaitGraph) []string {
	sorted := append([]SiteWaitGraph(nil), gs...)
	SortWaitGraphs(sorted)
	var lines []string
	for _, g := range sorted {
		for _, e := range g.Edges {
			holders := ""
			for i, h := range e.Holders {
				if i > 0 {
					holders += ","
				}
				holders += fmt.Sprintf("%v(%s)", h.Owner, h.Mode)
			}
			if holders == "" {
				holders = "-"
			}
			up := ""
			if e.Upgrade {
				up = " upgrade"
			}
			lines = append(lines, fmt.Sprintf("s%d: %v waits %s[%d]%s pos=%d behind %s",
				g.Site, e.Waiter, e.Mode, e.Item, up, e.Pos, holders))
		}
	}
	return lines
}
