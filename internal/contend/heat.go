// The item heat table: per-site lock.ItemStats merged across the cluster
// and cut down to the K hottest items, so a run with a million items
// reports a bounded, ranked table of where the lock manager actually hurt.
package contend

import (
	"sort"

	"repro/internal/lock"
	"repro/internal/model"
)

// SiteHeat is one site's per-item contention accounting, as returned by
// lock.Manager.ItemStats.
type SiteHeat struct {
	Site  model.SiteID     `json:"site"`
	Items []lock.ItemStats `json:"items"`
}

// HeatEntry is one item's cluster-wide contention heat: the per-site
// counters summed, plus how many sites saw any contention on it.
type HeatEntry struct {
	Item      model.ItemID `json:"item"`
	Acquired  uint64       `json:"acquired"`
	Waited    uint64       `json:"waited"`
	Timeouts  uint64       `json:"timeouts"`
	Deadlocks uint64       `json:"deadlocks"`
	Wounds    uint64       `json:"wounds"`
	WaitNS    int64        `json:"wait_ns"`
	MaxWaitNS int64        `json:"max_wait_ns"`
	QueuePeak int          `json:"queue_peak"`
	// Sites is the number of sites on which the item made some request
	// wait or fail (not merely sites that touched it).
	Sites int `json:"sites"`
}

// Failures is the number of requests the item killed outright.
func (h HeatEntry) Failures() uint64 { return h.Timeouts + h.Deadlocks + h.Wounds }

// hotter ranks heat entries: total wait time first (the quantity the
// ROADMAP says the engines are bound on), then failures, then waits, then
// item id — a strict order, so the table is deterministic for any input.
func hotter(a, b HeatEntry) bool {
	if a.WaitNS != b.WaitNS {
		return a.WaitNS > b.WaitNS
	}
	if af, bf := a.Failures(), b.Failures(); af != bf {
		return af > bf
	}
	if a.Waited != b.Waited {
		return a.Waited > b.Waited
	}
	return a.Item < b.Item
}

// BuildHeat merges per-site item stats into the top-K heat table, hottest
// first. Items that never made any request wait or fail are excluded —
// uncontended acquisition is the normal case, not heat — so an empty
// table means the run was contention-free. k <= 0 means no bound.
func BuildHeat(sites []SiteHeat, k int) []HeatEntry {
	merged := make(map[model.ItemID]*HeatEntry)
	for _, sh := range sites {
		for _, s := range sh.Items {
			if !s.Contended() {
				continue
			}
			h := merged[s.Item]
			if h == nil {
				h = &HeatEntry{Item: s.Item}
				merged[s.Item] = h
			}
			h.Acquired += s.Acquired
			h.Waited += s.Waited
			h.Timeouts += s.Timeouts
			h.Deadlocks += s.Deadlocks
			h.Wounds += s.Wounds
			h.WaitNS += s.WaitNS
			if s.MaxWaitNS > h.MaxWaitNS {
				h.MaxWaitNS = s.MaxWaitNS
			}
			if s.QueuePeak > h.QueuePeak {
				h.QueuePeak = s.QueuePeak
			}
			h.Sites++
		}
	}
	out := make([]HeatEntry, 0, len(merged))
	for _, h := range merged {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool { return hotter(out[i], out[j]) })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// MergeHeat folds already-built heat tables (one per process) into one
// cluster-wide top-K table, hottest first: counters and Sites sum, the
// maxima take the max. Used by the telemetry aggregator, where each
// process ships its own BuildHeat output.
func MergeHeat(tables [][]HeatEntry, k int) []HeatEntry {
	merged := make(map[model.ItemID]*HeatEntry)
	for _, t := range tables {
		for _, e := range t {
			h := merged[e.Item]
			if h == nil {
				c := e
				merged[e.Item] = &c
				continue
			}
			h.Acquired += e.Acquired
			h.Waited += e.Waited
			h.Timeouts += e.Timeouts
			h.Deadlocks += e.Deadlocks
			h.Wounds += e.Wounds
			h.WaitNS += e.WaitNS
			if e.MaxWaitNS > h.MaxWaitNS {
				h.MaxWaitNS = e.MaxWaitNS
			}
			if e.QueuePeak > h.QueuePeak {
				h.QueuePeak = e.QueuePeak
			}
			h.Sites += e.Sites
		}
	}
	out := make([]HeatEntry, 0, len(merged))
	for _, h := range merged {
		out = append(out, *h)
	}
	sort.Slice(out, func(i, j int) bool { return hotter(out[i], out[j]) })
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
