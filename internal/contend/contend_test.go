package contend

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/twopc"
	"repro/internal/wal"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want AbortReason
	}{
		{nil, ReasonUnknown},
		{errors.New("opaque"), ReasonUnknown},
		{lock.ErrTimeout, ReasonLockTimeout},
		{lock.ErrDeadlock, ReasonDeadlock},
		{twopc.ErrNoVote, ReasonNoVote},
		{wal.ErrFenced, ReasonWALFence},
		// Wrapped the way the layers actually wrap: txn wraps lock,
		// engines wrap txn. Classification must survive the chain.
		{fmt.Errorf("txn: %w", fmt.Errorf("lock: %w", lock.ErrTimeout)), ReasonLockTimeout},
		{fmt.Errorf("core: aborted by 2PC: %w", twopc.ErrNoVote), ReasonNoVote},
		{fmt.Errorf("core: commit: %w", wal.ErrFenced), ReasonWALFence},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestReasonNamesRoundTrip(t *testing.T) {
	seen := make(map[string]bool)
	for _, r := range Reasons() {
		name := r.String()
		if seen[name] {
			t.Errorf("duplicate reason name %q", name)
		}
		seen[name] = true
		var back AbortReason
		if err := back.UnmarshalText([]byte(name)); err != nil {
			t.Errorf("UnmarshalText(%q): %v", name, err)
		} else if back != r {
			t.Errorf("round trip %v -> %q -> %v", r, name, back)
		}
	}
	var r AbortReason
	if err := r.UnmarshalText([]byte("definitely-not-a-reason")); err == nil {
		t.Error("unknown reason name parsed without error")
	}
}

func TestBuildHeatMergesRanksAndBounds(t *testing.T) {
	sites := []SiteHeat{
		{Site: 0, Items: []lock.ItemStats{
			{Item: 1, Acquired: 10, Waited: 2, WaitNS: 100},
			{Item: 2, Acquired: 50}, // uncontended: must not appear
			{Item: 3, Acquired: 5, Timeouts: 1, WaitNS: 500, MaxWaitNS: 500, QueuePeak: 2},
		}},
		{Site: 1, Items: []lock.ItemStats{
			{Item: 1, Acquired: 4, Waited: 1, WaitNS: 700, MaxWaitNS: 650, QueuePeak: 3},
			{Item: 9, Acquired: 1, Wounds: 1},
		}},
	}
	heat := BuildHeat(sites, 0)
	if len(heat) != 3 {
		t.Fatalf("got %d entries, want 3 (uncontended item 2 excluded): %+v", len(heat), heat)
	}
	// Item 1: WaitNS 800 summed across two sites — hottest.
	if heat[0].Item != 1 || heat[0].WaitNS != 800 || heat[0].Sites != 2 ||
		heat[0].Acquired != 14 || heat[0].Waited != 3 ||
		heat[0].MaxWaitNS != 650 || heat[0].QueuePeak != 3 {
		t.Errorf("hottest entry wrong: %+v", heat[0])
	}
	if heat[1].Item != 3 || heat[2].Item != 9 {
		t.Errorf("rank order wrong: %v, %v", heat[1].Item, heat[2].Item)
	}
	if top := BuildHeat(sites, 1); len(top) != 1 || top[0].Item != 1 {
		t.Errorf("k=1 cut wrong: %+v", top)
	}
}

func TestMergeHeatFoldsTables(t *testing.T) {
	a := []HeatEntry{{Item: 7, Acquired: 3, Waited: 1, WaitNS: 40, MaxWaitNS: 40, QueuePeak: 1, Sites: 1}}
	b := []HeatEntry{
		{Item: 7, Acquired: 2, Waited: 2, WaitNS: 60, MaxWaitNS: 55, QueuePeak: 4, Sites: 2},
		{Item: 8, Timeouts: 1, WaitNS: 10, Sites: 1},
	}
	merged := MergeHeat([][]HeatEntry{a, b}, 0)
	if len(merged) != 2 || merged[0].Item != 7 {
		t.Fatalf("merge wrong: %+v", merged)
	}
	got := merged[0]
	want := HeatEntry{Item: 7, Acquired: 5, Waited: 3, WaitNS: 100, MaxWaitNS: 55, QueuePeak: 4, Sites: 3}
	if got != want {
		t.Errorf("folded entry = %+v, want %+v", got, want)
	}
	if top := MergeHeat([][]HeatEntry{a, b}, 1); len(top) != 1 {
		t.Errorf("k=1 cut wrong: %+v", top)
	}
}

// park blocks a goroutine acquiring item for owner and returns once the
// request is visibly queued in the manager's wait graph.
func park(t *testing.T, m *lock.Manager, owner model.TxnID, item model.ItemID, wantEdges int) chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- m.Acquire(owner, item, lock.Exclusive, 5*time.Second) }()
	deadline := time.Now().Add(5 * time.Second)
	for len(m.WaitGraph()) < wantEdges {
		if time.Now().After(deadline) {
			t.Fatalf("request %v never queued", owner)
		}
		time.Sleep(time.Millisecond)
	}
	return done
}

// TestWaitGraphDumpDeterministic pins the satellite requirement that the
// same captured wait-for state always serializes to the same bytes, and
// that the dump round-trips.
func TestWaitGraphDumpDeterministic(t *testing.T) {
	m := lock.NewManager(false)
	holder := model.TxnID{Site: 0, Seq: 1}
	if err := m.Acquire(holder, 5, lock.Exclusive, time.Second); err != nil {
		t.Fatal(err)
	}
	w1 := park(t, m, model.TxnID{Site: 1, Seq: 2}, 5, 1)
	w2 := park(t, m, model.TxnID{Site: 2, Seq: 3}, 5, 2)

	snap := []SiteWaitGraph{
		{Site: 3, Edges: nil}, // quiet site: must not appear in the dump
		{Site: 0, Edges: m.WaitGraph()},
	}
	var buf1, buf2 bytes.Buffer
	if err := WriteWaitGraphs(&buf1, snap); err != nil {
		t.Fatal(err)
	}
	if err := WriteWaitGraphs(&buf2, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Errorf("same state serialized differently:\n%s\n---\n%s", buf1.Bytes(), buf2.Bytes())
	}

	back, err := ReadWaitGraphs(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Site != 0 || len(back[0].Edges) != 2 {
		t.Fatalf("round trip wrong: %+v", back)
	}
	// AgeNS is capture-time wall clock, deliberately excluded from the
	// serialization; everything structural must survive.
	wantEdges := append([]lock.WaitEdge(nil), snap[1].Edges...)
	for i := range wantEdges {
		wantEdges[i].AgeNS = 0
	}
	if !reflect.DeepEqual(back[0].Edges, wantEdges) {
		t.Errorf("edges round trip:\ngot  %+v\nwant %+v", back[0].Edges, wantEdges)
	}
	if back[0].Edges[0].Waiter != (model.TxnID{Site: 1, Seq: 2}) || back[0].Edges[0].Pos != 0 {
		t.Errorf("queue order lost: %+v", back[0].Edges)
	}

	m.ReleaseAll(holder)
	for i, done := range []chan error{w1, w2} {
		if err := <-done; err != nil {
			t.Errorf("waiter %d: %v", i, err)
		}
		m.ReleaseAll(model.TxnID{Site: model.SiteID(i + 1), Seq: uint64(i + 2)})
	}
}

// synthetic trace events for one committed txn: begin at t0, commit at
// t0+e2e, with the given (phase, site, dur) samples inside the window.
func committedTxn(tid model.TxnID, proto uint8, t0, e2e int64, samples ...trace.Event) []trace.Event {
	evs := []trace.Event{
		{T: t0, Kind: trace.TxnBegin, Site: tid.Site, Peer: model.NoSite, TID: tid, Proto: proto},
	}
	evs = append(evs, samples...)
	evs = append(evs, trace.Event{T: t0 + e2e, Kind: trace.TxnCommit, Site: tid.Site, Peer: model.NoSite, TID: tid, Proto: proto})
	return evs
}

func phaseEv(tid model.TxnID, proto uint8, at int64, phase string, site model.SiteID, dur int64) trace.Event {
	return trace.Event{T: at, Kind: trace.PhaseLatency, Site: site, Peer: model.NoSite,
		TID: tid, Proto: proto, Phase: phase, Dur: dur}
}

func TestAnalyzeCriticalPathsAttribution(t *testing.T) {
	a := model.TxnID{Site: 0, Seq: 1}
	b := model.TxnID{Site: 0, Seq: 2}
	aborted := model.TxnID{Site: 0, Seq: 3}
	var events []trace.Event
	// Txn a: 100ns window, 40ns lock_wait at the origin, 60ns residual.
	events = append(events, committedTxn(a, 1, 0, 100,
		phaseEv(a, 1, 50, "lock_wait", 0, 40))...)
	// Txn b: 100ns window, two phases claiming 130ns — 30ns overlap.
	events = append(events, committedTxn(b, 1, 1000, 100,
		phaseEv(b, 1, 1050, "lock_wait", 0, 80),
		phaseEv(b, 1, 1090, "2pc_vote", 1, 50))...)
	// An aborted txn and an out-of-window phase sample: both ignored.
	events = append(events,
		trace.Event{T: 2000, Kind: trace.TxnBegin, Site: 0, TID: aborted, Proto: 1},
		trace.Event{T: 2010, Kind: trace.TxnAbort, Site: 0, TID: aborted, Proto: 1, Phase: "lock_timeout"},
		phaseEv(a, 1, 5000, "apply", 2, 999))

	profiles := AnalyzeCriticalPaths(events)
	if len(profiles) != 1 {
		t.Fatalf("got %d profiles, want 1", len(profiles))
	}
	p := profiles[0]
	if p.Proto != 1 || p.Committed != 2 {
		t.Fatalf("profile header wrong: %+v", p)
	}
	if p.EndToEndNS != 200 || p.AttributedNS != 200 || p.OverlapNS != 30 {
		t.Errorf("e2e=%d attributed=%d overlap=%d, want 200/200/30",
			p.EndToEndNS, p.AttributedNS, p.OverlapNS)
	}
	if got := p.CoveragePct(); got != 100 {
		t.Errorf("CoveragePct = %v, want 100", got)
	}
	want := []Segment{
		{Phase: PhaseExecute, Site: 0, Count: 1, TotalNS: 60},
		{Phase: "lock_wait", Site: 0, Count: 2, TotalNS: 120},
		{Phase: "2pc_vote", Site: 1, Count: 1, TotalNS: 50},
	}
	if !reflect.DeepEqual(p.Segments, want) {
		t.Errorf("segments:\ngot  %+v\nwant %+v", p.Segments, want)
	}
}

// TestAnalyzeCriticalPathsDeterministic pins the acceptance criterion
// that the profile structure is identical across same-seed runs: the
// analyzer must be a pure function of the event multiset, independent of
// interleaving-dependent event order.
func TestAnalyzeCriticalPathsDeterministic(t *testing.T) {
	a := model.TxnID{Site: 0, Seq: 1}
	b := model.TxnID{Site: 1, Seq: 1}
	events := append(
		committedTxn(a, 3, 0, 100, phaseEv(a, 3, 10, "lock_wait", 0, 30)),
		committedTxn(b, 3, 50, 200, phaseEv(b, 3, 80, "transport", 2, 90))...)
	reversed := make([]trace.Event, len(events))
	for i, ev := range events {
		reversed[len(events)-1-i] = ev
	}
	p1 := AnalyzeCriticalPaths(events)
	p2 := AnalyzeCriticalPaths(reversed)
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("profile depends on event order:\n%+v\n---\n%+v", p1, p2)
	}
	if p1[0].StructureString() != p2[0].StructureString() {
		t.Errorf("structure strings differ: %q vs %q",
			p1[0].StructureString(), p2[0].StructureString())
	}
}

func TestAbortBreakdownAndUnclassified(t *testing.T) {
	tid := model.TxnID{Site: 0, Seq: 1}
	events := []trace.Event{
		{Kind: trace.TxnAbort, Site: 0, TID: tid, Phase: "lock_timeout"},
		{Kind: trace.TxnAbort, Site: 0, TID: tid, Phase: "lock_timeout"},
		{Kind: trace.TxnAbort, Site: 1, TID: tid, Phase: "wound"},
		{Kind: trace.TxnAbort, Site: 1, TID: tid}, // legacy event, no tag
		{Kind: trace.TxnCommit, Site: 0, TID: tid},
	}
	got := AbortBreakdown(events)
	want := map[string]uint64{"lock_timeout": 2, "wound": 1, "unknown": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("breakdown = %v, want %v", got, want)
	}
	if Unclassified(got) != 1 {
		t.Errorf("Unclassified = %d, want 1", Unclassified(got))
	}
}
