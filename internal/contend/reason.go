// Package contend is the contention observatory (docs/OBSERVABILITY.md):
// it turns the raw signals the locking and commit layers already expose —
// per-item lock accounting, the wait-for queue state, abort errors, span
// trees and phase-latency events — into the four instruments the
// batching/contention work is judged against: a top-K item heat table,
// wait-for graph snapshots, an abort root-cause taxonomy, and per-protocol
// critical-path profiles.
//
// The package sits below the engines: core, watch, telemetry, bench and
// the CLIs import contend; contend imports only the leaf layers it
// classifies (lock, txn, twopc, wal, trace, model).
package contend

import (
	"errors"
	"fmt"

	"repro/internal/lock"
	"repro/internal/twopc"
	"repro/internal/wal"
)

// AbortReason is the root cause of one primary-subtransaction abort.
// Every abort an engine records is classified into exactly one reason;
// ReasonUnknown surviving into a report means a classification gap, which
// the contention smoke treats as a failure.
type AbortReason uint8

const (
	// ReasonUnknown is the zero value: an abort whose error chain matched
	// no known cause. Kept first so an unset tag reads as unclassified.
	ReasonUnknown AbortReason = iota
	// ReasonLockTimeout is a lock request that outwaited the paper's 50 ms
	// timeout (lock.ErrTimeout) — the suspected-deadlock abort of §1.1.
	ReasonLockTimeout
	// ReasonDeadlock is a lock request refused by the local wait-for cycle
	// detector (lock.ErrDeadlock), distinct from a timeout suspicion.
	ReasonDeadlock
	// ReasonWound is a primary killed as a global-deadlock victim: a
	// Secondary-priority request wounded it while it was parked vulnerable
	// on a backedge round trip (§2 fair victim selection).
	ReasonWound
	// ReasonNoVote is a BackEdge 2PC round that decided abort because a
	// participant voted no or its vote was lost (twopc.ErrNoVote).
	ReasonNoVote
	// ReasonWALFence is a commit refused because the site's write-ahead
	// log was fenced by a crash (wal.ErrFenced): the redo record could not
	// be made durable, so the commit never happened.
	ReasonWALFence
	// ReasonCrash is a transaction abandoned because its site was stopped
	// mid-flight (chaos crash or shutdown), not because of any conflict.
	ReasonCrash

	numReasons // sentinel; keep last
)

// NumReasons is the number of defined abort reasons, for callers that
// index per-reason instrument arrays.
const NumReasons = int(numReasons)

var reasonNames = [numReasons]string{
	ReasonUnknown:     "unknown",
	ReasonLockTimeout: "lock_timeout",
	ReasonDeadlock:    "deadlock",
	ReasonWound:       "wound",
	ReasonNoVote:      "2pc_no_vote",
	ReasonWALFence:    "wal_fence",
	ReasonCrash:       "crash",
}

// String returns the stable snake_case name used as the obs counter label,
// the TxnAbort trace tag, and the bench JSON map key.
func (r AbortReason) String() string {
	if r < numReasons {
		return reasonNames[r]
	}
	return fmt.Sprintf("reason(%d)", uint8(r))
}

// MarshalText renders the reason name, making JSON dumps human-readable.
func (r AbortReason) MarshalText() ([]byte, error) { return []byte(r.String()), nil }

// UnmarshalText parses a reason name.
func (r *AbortReason) UnmarshalText(b []byte) error {
	s := string(b)
	for i := AbortReason(0); i < numReasons; i++ {
		if reasonNames[i] == s {
			*r = i
			return nil
		}
	}
	return fmt.Errorf("contend: unknown abort reason %q", s)
}

// Reasons lists every defined reason in declaration order, for callers
// that register one instrument per reason.
func Reasons() []AbortReason {
	out := make([]AbortReason, numReasons)
	for i := range out {
		out[i] = AbortReason(i)
	}
	return out
}

// Classify maps an abort error to its root cause by walking the wrapped
// chain, so it works through every layer that wraps with %w (txn wraps
// lock errors, engines wrap txn and twopc errors). Wounds and crashes are
// not error-chain-visible — they arrive at the engine out of band (a
// wound channel, a stop signal) — so those call sites pass ReasonWound /
// ReasonCrash explicitly instead of calling Classify. Errors that reach
// the engines without a recognizable cause classify as ReasonUnknown,
// which downstream consumers surface loudly rather than hiding.
func Classify(err error) AbortReason {
	switch {
	case err == nil:
		return ReasonUnknown
	case errors.Is(err, lock.ErrDeadlock):
		return ReasonDeadlock
	case errors.Is(err, lock.ErrTimeout):
		return ReasonLockTimeout
	case errors.Is(err, twopc.ErrNoVote):
		return ReasonNoVote
	case errors.Is(err, wal.ErrFenced):
		return ReasonWALFence
	default:
		return ReasonUnknown
	}
}
