package fresh

import (
	"math"
	"math/bits"
	"sort"

	"repro/internal/model"
)

// histBuckets bounds every histogram: bucket 0 counts exact zeros and
// bucket i counts values whose bit length is i (i.e. [2^(i-1), 2^i)).
// 48 buckets cover ~8.9 years in microseconds, far beyond any lag a run
// can accumulate.
const histBuckets = 48

// hist is a bounded log2 histogram — the "distribution, not a running
// max" the observatory is built on. Fixed size regardless of sample
// count; percentiles resolve to the matched bucket's upper bound (capped
// by the exact max), so they are conservative within a factor of two.
type hist struct {
	count   uint64
	sum     uint64
	max     uint64
	buckets [histBuckets]uint64
}

func (h *hist) add(v uint64) {
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
	b := bits.Len64(v)
	if b >= histBuckets {
		b = histBuckets - 1
	}
	h.buckets[b]++
}

// merge folds o into h bucket-wise.
func (h *hist) merge(o *hist) {
	h.count += o.count
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// percentile returns the nearest-rank p-quantile's bucket upper bound,
// capped by the exact maximum. Zero samples yield zero.
func (h *hist) percentile(p float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= rank {
			if i == 0 {
				return 0
			}
			up := uint64(1)<<uint(i) - 1
			if up > h.max {
				up = h.max
			}
			return up
		}
	}
	return h.max
}

func (h *hist) dist() Dist {
	d := Dist{
		Count: h.count,
		P50:   h.percentile(0.50),
		P95:   h.percentile(0.95),
		P99:   h.percentile(0.99),
		Max:   h.max,
	}
	if h.count > 0 {
		d.Mean = float64(h.sum) / float64(h.count)
	}
	return d
}

// Dist summarizes one bounded histogram. P50/P95/P99 are bucket upper
// bounds (conservative within 2×); Mean and Max are exact.
type Dist struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   uint64  `json:"p50"`
	P95   uint64  `json:"p95"`
	P99   uint64  `json:"p99"`
	Max   uint64  `json:"max"`
}

// SiteFreshness is one site's staleness and read-certificate view.
type SiteFreshness struct {
	Site model.SiteID `json:"site"`
	// Applies counts propagated updates applied here; VersionLag and
	// TimeLagUS are the replica staleness distributions sampled on each
	// apply and by the periodic probe.
	Applies    uint64 `json:"applies"`
	VersionLag Dist   `json:"version_lag"`
	TimeLagUS  Dist   `json:"time_lag_us"`
	// ReadsFresh/ReadsStale count read certificates; ReadVersionLag and
	// ReadTimeLagUS distribute how far behind the primary reads were.
	ReadsFresh     uint64 `json:"reads_fresh"`
	ReadsStale     uint64 `json:"reads_stale"`
	ReadVersionLag Dist   `json:"read_version_lag"`
	ReadTimeLagUS  Dist   `json:"read_time_lag_us"`
}

// Summary is a point-in-time rollup of a Tracker: per-site rows plus
// cluster totals. It is the freshness document every surface shares —
// replbench -json, the bench snapshot's per-protocol block, and the
// FrameFresh telemetry frame.
type Summary struct {
	Sites []SiteFreshness `json:"sites"`

	// Totals across sites.
	Applies        uint64 `json:"applies"`
	VersionLag     Dist   `json:"version_lag"`
	TimeLagUS      Dist   `json:"time_lag_us"`
	ReadsFresh     uint64 `json:"reads_fresh"`
	ReadsStale     uint64 `json:"reads_stale"`
	ReadVersionLag Dist   `json:"read_version_lag"`
	ReadTimeLagUS  Dist   `json:"read_time_lag_us"`
}

// Reads returns the total certificate count.
func (s *Summary) Reads() uint64 {
	if s == nil {
		return 0
	}
	return s.ReadsFresh + s.ReadsStale
}

// StaleReadPct returns the percentage of certified reads that were
// stale; zero when no reads were certified.
func (s *Summary) StaleReadPct() float64 {
	if n := s.Reads(); n > 0 {
		return 100 * float64(s.ReadsStale) / float64(n)
	}
	return 0
}

// Summarize rolls the tracker's current state into a Summary. Sites that
// recorded nothing are omitted; rows come out sorted by site id.
func (t *Tracker) Summarize() *Summary {
	if t == nil {
		return nil
	}
	t.siteMu.RLock()
	sites := append([]*siteStat(nil), t.sites...)
	t.siteMu.RUnlock()

	out := &Summary{}
	var vl, tl, rvl, rtl hist
	for id, ss := range sites {
		ss.mu.Lock()
		row := SiteFreshness{
			Site:           model.SiteID(id),
			Applies:        ss.applies,
			VersionLag:     ss.versionLag.dist(),
			TimeLagUS:      ss.timeLagUS.dist(),
			ReadsFresh:     ss.readsFresh,
			ReadsStale:     ss.readsStale,
			ReadVersionLag: ss.readVerLag.dist(),
			ReadTimeLagUS:  ss.readLagUS.dist(),
		}
		vl.merge(&ss.versionLag)
		tl.merge(&ss.timeLagUS)
		rvl.merge(&ss.readVerLag)
		rtl.merge(&ss.readLagUS)
		ss.mu.Unlock()
		if row.Applies == 0 && row.ReadsFresh == 0 && row.ReadsStale == 0 && row.VersionLag.Count == 0 {
			continue
		}
		out.Sites = append(out.Sites, row)
		out.Applies += row.Applies
		out.ReadsFresh += row.ReadsFresh
		out.ReadsStale += row.ReadsStale
	}
	sort.Slice(out.Sites, func(i, j int) bool { return out.Sites[i].Site < out.Sites[j].Site })
	out.VersionLag = vl.dist()
	out.TimeLagUS = tl.dist()
	out.ReadVersionLag = rvl.dist()
	out.ReadTimeLagUS = rtl.dist()
	return out
}
