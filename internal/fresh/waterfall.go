package fresh

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/model"
	"repro/internal/trace"
)

// SegmentNames are the per-hop segments a propagation waterfall
// attributes commit→apply delay to, in causal order:
//
//	enqueue    commit (or receipt at a relay) → the update leaves the site
//	wire       sender's forward → receiver's queue (transport)
//	queue_wait sitting in the receiver's service queue
//	lock_wait  the applier blocked in the receiver's lock manager
//	apply      installing the writes into the receiver's storage
//
// The names are part of the canonical freshness summary, so they must
// stay stable.
var SegmentNames = []string{"enqueue", "wire", "queue_wait", "lock_wait", "apply"}

// Segment is one named hop segment's latency distribution in µs.
type Segment struct {
	Name string `json:"name"`
	US   Dist   `json:"us"`
}

// Waterfall aggregates the propagation waterfalls of one (protocol,
// edge): every joined commit's delay at the edge's receiver, attributed
// to per-hop segments with bounded-histogram percentiles.
type Waterfall struct {
	Proto uint8 `json:"proto"`
	// Protocol is the display name; BuildWaterfalls leaves it empty (the
	// proto byte → name mapping lives in internal/core, which this
	// package must not import) and callers fill it in.
	Protocol string       `json:"protocol,omitempty"`
	From     model.SiteID `json:"from"`
	To       model.SiteID `json:"to"`
	// Count is the number of commits joined across the edge (forward and
	// matching receipt both present in the trace).
	Count    uint64    `json:"count"`
	Segments []Segment `json:"segments"`
}

// wfKey identifies one aggregation bucket.
type wfKey struct {
	proto    uint8
	from, to model.SiteID
}

// wfAgg accumulates one bucket's per-segment histograms.
type wfAgg struct {
	count uint64
	segs  [5]hist // indexed like SegmentNames
}

// siteTID keys per-(transaction, site) lookups.
type siteTID struct {
	tid  model.TxnID
	site model.SiteID
}

// BuildWaterfalls joins a recorded trace into propagation waterfalls: it
// matches each commit's SecondaryForwarded/SecondaryEnqueued pairs into
// edges and attributes the receiver-side remainder using the span-less
// PhaseLatency events the engines already emit (queue_wait, lock_wait,
// apply, keyed by transaction and site). Works on any JSONL trace —
// live recorder snapshot, replbench -trace output, or a flight dump.
func BuildWaterfalls(events []trace.Event) []*Waterfall {
	commitAt := make(map[model.TxnID]int64)
	commitSite := make(map[model.TxnID]model.SiteID)
	enqueuedAt := make(map[siteTID]int64)
	phaseSum := make(map[siteTID][3]int64) // queue_wait, lock_wait, apply
	for _, ev := range events {
		switch ev.Kind {
		case trace.TxnCommit:
			if _, ok := commitAt[ev.TID]; !ok {
				commitAt[ev.TID] = ev.T
				commitSite[ev.TID] = ev.Site
			}
		case trace.SecondaryEnqueued:
			key := siteTID{ev.TID, ev.Site}
			if _, ok := enqueuedAt[key]; !ok {
				enqueuedAt[key] = ev.T
			}
		case trace.PhaseLatency:
			var idx int
			switch ev.Phase {
			case "queue_wait":
				idx = 0
			case "lock_wait":
				idx = 1
			case "apply":
				idx = 2
			default:
				continue
			}
			key := siteTID{ev.TID, ev.Site}
			s := phaseSum[key]
			s[idx] += ev.Dur
			phaseSum[key] = s
		}
	}

	aggs := make(map[wfKey]*wfAgg)
	for _, ev := range events {
		if ev.Kind != trace.SecondaryForwarded || ev.Peer == model.NoSite {
			continue
		}
		recvKey := siteTID{ev.TID, ev.Peer}
		recvT, joined := enqueuedAt[recvKey]
		if !joined {
			continue // dropped, still in flight, or truncated trace
		}
		key := wfKey{proto: ev.Proto, from: ev.Site, to: ev.Peer}
		a := aggs[key]
		if a == nil {
			a = &wfAgg{}
			aggs[key] = a
		}
		a.count++

		// enqueue: from the commit (at the origin) or the local receipt
		// (at a relay) to the moment the forward left.
		start, haveStart := commitAt[ev.TID], false
		if commitSite[ev.TID] == ev.Site {
			_, haveStart = commitAt[ev.TID]
		} else if t, ok := enqueuedAt[siteTID{ev.TID, ev.Site}]; ok {
			start, haveStart = t, true
		}
		if haveStart {
			a.segs[0].add(clampNStoUS(ev.T - start))
		}
		a.segs[1].add(clampNStoUS(recvT - ev.T)) // wire
		sums := phaseSum[recvKey]
		a.segs[2].add(clampNStoUS(sums[0])) // queue_wait
		a.segs[3].add(clampNStoUS(sums[1])) // lock_wait
		a.segs[4].add(clampNStoUS(sums[2])) // apply
	}

	out := make([]*Waterfall, 0, len(aggs))
	for key, a := range aggs {
		wf := &Waterfall{Proto: key.proto, From: key.from, To: key.to, Count: a.count}
		for i, name := range SegmentNames {
			wf.Segments = append(wf.Segments, Segment{Name: name, US: a.segs[i].dist()})
		}
		out = append(out, wf)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Proto != b.Proto {
			return a.Proto < b.Proto
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
	return out
}

// FormatWaterfalls renders waterfalls as fixed-width table lines (header
// first), one row per edge with each segment's p95.
func FormatWaterfalls(wfs []*Waterfall) []string {
	if len(wfs) == 0 {
		return nil
	}
	lines := []string{fmt.Sprintf("%-10s %-10s %7s %12s %12s %12s %12s %12s",
		"protocol", "edge", "joined", "enqueue", "wire", "queue_wait", "lock_wait", "apply")}
	for _, wf := range wfs {
		name := wf.Protocol
		if name == "" {
			name = fmt.Sprintf("proto(%d)", wf.Proto)
		}
		row := fmt.Sprintf("%-10s s%d->s%-4d %7d", name, wf.From, wf.To, wf.Count)
		for _, seg := range wf.Segments {
			row += fmt.Sprintf(" %12s", usString(seg.US.P95))
		}
		lines = append(lines, row)
	}
	return lines
}

func usString(us uint64) string {
	return (time.Duration(us) * time.Microsecond).Round(time.Microsecond).String()
}

func clampNStoUS(ns int64) uint64 {
	if ns <= 0 {
		return 0
	}
	return uint64(ns / int64(time.Microsecond))
}
