// Package fresh is the freshness observatory (docs/OBSERVABILITY.md):
// the measurement layer that turns "how stale are the replicas?" — the
// paper's whole subject, update propagation — from a single worst-case
// watchdog alert into distributions. It has three instruments:
//
//   - read-freshness certificates: every read is certified with how many
//     versions (and how long) behind the primary the value it observed
//     was, via Tracker.CertifyRead;
//   - continuous staleness distributions: per-replica version lag and
//     time lag sampled on every secondary apply (Tracker.NoteApply) and
//     by a low-overhead periodic probe, kept as bounded log2 histograms
//     rather than a running max;
//   - propagation waterfalls: per-commit commit→apply delay attributed
//     to per-hop segments by joining the trace's lifecycle and
//     phase-latency events offline (BuildWaterfalls, waterfall.go).
//
// The Tracker mirrors the primary version counter of every item: each
// primary commit calls NoteCommit once per written item inside the
// engine's commit critical section, so the tracker's "latest" for an
// item equals the storage version number the commit installed. Secondary
// applies advance a per-(item, site) applied counter the same way —
// propagated updates apply exactly once per site, in primary-commit
// order — so version lag is a subtraction away and no storage reads are
// needed on any hot path.
//
// All wall-clock reads live in this package, outside the deterministic
// core (the engines pass only item ids and version numbers), and a nil
// *Tracker is a valid no-op costing one branch, matching the repo's
// nil-handle discipline for trace.Recorder and obs handles.
package fresh

import (
	"sync"
	"time"

	"repro/internal/model"
)

// shardCount spreads item state across locks; any power of two
// comfortably above the hot-item count works.
const shardCount = 64

// ringSize is how many recent commit stamps each item keeps for time-lag
// lookup. A reader further behind than the ring remembers gets the
// oldest retained stamp — a lower bound on its true staleness, which is
// the honest direction to err (never overstating freshness).
const ringSize = 32

// stamp records when one version of an item committed at its primary.
type stamp struct {
	num uint64
	at  time.Time
}

// itemState is one item's freshness bookkeeping.
type itemState struct {
	latest  uint64 // primary commits seen (mirrors the primary version counter)
	ring    [ringSize]stamp
	applied map[model.SiteID]uint64 // per-site propagated-apply counter
}

// stampAt returns the commit time of version num, or the oldest retained
// stamp as a lower bound when num has been evicted from the ring.
func (st *itemState) stampAt(num uint64) (time.Time, bool) {
	if num == 0 || num > st.latest {
		return time.Time{}, false
	}
	if s := st.ring[num%ringSize]; s.num == num {
		return s.at, true
	}
	// Evicted: the oldest stamp still in the ring lower-bounds it.
	var oldest stamp
	for _, s := range st.ring {
		if s.num != 0 && (oldest.num == 0 || s.num < oldest.num) {
			oldest = s
		}
	}
	if oldest.num == 0 {
		return time.Time{}, false
	}
	return oldest.at, true
}

type shard struct {
	mu    sync.Mutex
	items map[model.ItemID]*itemState
}

func (s *shard) item(id model.ItemID) *itemState {
	st := s.items[id]
	if st == nil {
		st = &itemState{applied: make(map[model.SiteID]uint64)}
		s.items[id] = st
	}
	return st
}

// siteStat accumulates one site's staleness and certificate
// distributions. Bounded by construction: four fixed-size histograms and
// a handful of counters, regardless of run length.
type siteStat struct {
	mu         sync.Mutex
	applies    uint64
	versionLag hist // replica version lag, sampled on apply and by the probe
	timeLagUS  hist // replica time lag in µs, ditto
	readsFresh uint64
	readsStale uint64
	readVerLag hist // versions behind at read time
	readLagUS  hist // µs behind at read time
}

// Cert is one read-freshness certificate: how far behind the primary the
// observed value was at read time.
type Cert struct {
	// Versions is the number of primary commits the read missed.
	Versions uint64
	// Behind is (a lower bound on) how long ago the oldest missed commit
	// happened; zero when Versions is zero.
	Behind time.Duration
}

// Stale reports whether the read observed anything but the latest
// committed version.
func (c Cert) Stale() bool { return c.Versions > 0 }

// Tracker is the run-time half of the freshness observatory. All methods
// are safe for concurrent use; a nil *Tracker is a valid no-op.
type Tracker struct {
	shards [shardCount]shard

	siteMu sync.RWMutex
	sites  []*siteStat // indexed by SiteID, grown on demand

	probeStop chan struct{}
	probeDone chan struct{}
}

// New returns a tracker pre-sized for the given site count (sites beyond
// it are still accepted and grow the table).
func New(sites int) *Tracker {
	t := &Tracker{}
	t.siteMu.Lock()
	t.grow(sites)
	t.siteMu.Unlock()
	return t
}

// grow extends the site table to n entries; caller holds siteMu.
func (t *Tracker) grow(n int) {
	for len(t.sites) < n {
		t.sites = append(t.sites, &siteStat{})
	}
}

func (t *Tracker) site(id model.SiteID) *siteStat {
	if id < 0 {
		id = 0
	}
	t.siteMu.RLock()
	if int(id) < len(t.sites) {
		s := t.sites[id]
		t.siteMu.RUnlock()
		return s
	}
	t.siteMu.RUnlock()
	t.siteMu.Lock()
	t.grow(int(id) + 1)
	s := t.sites[id]
	t.siteMu.Unlock()
	return s
}

// lock returns item's shard with its mutex held and the item table
// allocated; the caller unlocks.
func (t *Tracker) lock(item model.ItemID) *shard {
	s := &t.shards[uint(item)%shardCount]
	s.mu.Lock()
	if s.items == nil {
		s.items = make(map[model.ItemID]*itemState)
	}
	return s
}

// NoteCommit records one primary commit of item: the engines call it
// once per written item inside the commit critical section, immediately
// after the storage apply, so the tracker's latest version mirrors the
// primary's version counter.
func (t *Tracker) NoteCommit(item model.ItemID) {
	if t == nil {
		return
	}
	now := time.Now()
	s := t.lock(item)
	st := s.item(item)
	st.latest++
	st.ring[st.latest%ringSize] = stamp{num: st.latest, at: now}
	s.mu.Unlock()
}

// NoteApply records one propagated update applying at a secondary:
// site's applied counter for item advances by one (propagated updates
// apply exactly once per site, in primary-commit order), and the
// replica's version lag and commit→apply time lag are sampled into its
// bounded histograms.
func (t *Tracker) NoteApply(site model.SiteID, item model.ItemID) {
	if t == nil {
		return
	}
	now := time.Now()
	s := t.lock(item)
	st := s.item(item)
	ap := st.applied[site] + 1
	st.applied[site] = ap
	lag := uint64(0)
	if st.latest > ap {
		lag = st.latest - ap
	}
	var behind time.Duration
	if at, ok := st.stampAt(ap); ok {
		behind = now.Sub(at)
	}
	s.mu.Unlock()

	ss := t.site(site)
	ss.mu.Lock()
	ss.applies++
	ss.versionLag.add(lag)
	ss.timeLagUS.add(clampUS(behind))
	ss.mu.Unlock()
}

// CertifyRead certifies a read of item at site that observed the given
// storage version number: the certificate says how many primary commits
// the value missed and for how long the oldest of them had been
// committed. The sample also feeds the site's read-staleness
// distributions.
func (t *Tracker) CertifyRead(site model.SiteID, item model.ItemID, version uint64) Cert {
	if t == nil {
		return Cert{}
	}
	now := time.Now()
	var c Cert
	s := t.lock(item)
	if st := s.items[item]; st != nil && st.latest > version {
		c.Versions = st.latest - version
		if at, ok := st.stampAt(version + 1); ok {
			c.Behind = now.Sub(at)
		}
	}
	s.mu.Unlock()
	t.recordCert(site, c)
	return c
}

// CertifyFresh certifies a read that observed the primary copy itself
// (PSL's local and remote primary reads): zero staleness by
// construction, counted so certificate coverage stays total.
func (t *Tracker) CertifyFresh(site model.SiteID) Cert {
	if t == nil {
		return Cert{}
	}
	t.recordCert(site, Cert{})
	return Cert{}
}

func (t *Tracker) recordCert(site model.SiteID, c Cert) {
	ss := t.site(site)
	ss.mu.Lock()
	if c.Stale() {
		ss.readsStale++
	} else {
		ss.readsFresh++
	}
	ss.readVerLag.add(c.Versions)
	ss.readLagUS.add(clampUS(c.Behind))
	ss.mu.Unlock()
}

// StartProbe launches the periodic staleness probe: every interval it
// walks the item table and samples each lagging replica's current
// version and time lag into the same per-site histograms the applies
// feed — so a replica that stops receiving updates shows growing time
// lag instead of a frozen last-apply sample. One pass is O(items×replicas)
// map walks with no storage access; 100ms is a sensible default.
func (t *Tracker) StartProbe(every time.Duration) {
	if t == nil || t.probeStop != nil {
		return
	}
	if every <= 0 {
		every = 100 * time.Millisecond
	}
	t.probeStop = make(chan struct{})
	t.probeDone = make(chan struct{})
	go func() {
		defer close(t.probeDone)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				t.probe()
			case <-t.probeStop:
				return
			}
		}
	}()
}

// StopProbe stops a running probe; safe to call when none runs.
func (t *Tracker) StopProbe() {
	if t == nil || t.probeStop == nil {
		return
	}
	close(t.probeStop)
	<-t.probeDone
	t.probeStop = nil
	t.probeDone = nil
}

// probeSample is one lagging replica observed during a probe pass.
type probeSample struct {
	site   model.SiteID
	lag    uint64
	behind time.Duration
}

func (t *Tracker) probe() {
	now := time.Now()
	var samples []probeSample
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for _, st := range s.items {
			for site, ap := range st.applied {
				if st.latest <= ap {
					continue
				}
				ps := probeSample{site: site, lag: st.latest - ap}
				if at, ok := st.stampAt(ap + 1); ok {
					ps.behind = now.Sub(at)
				}
				samples = append(samples, ps)
			}
		}
		s.mu.Unlock()
	}
	for _, ps := range samples {
		ss := t.site(ps.site)
		ss.mu.Lock()
		ss.versionLag.add(ps.lag)
		ss.timeLagUS.add(clampUS(ps.behind))
		ss.mu.Unlock()
	}
}

// clampUS converts a duration to non-negative microseconds.
func clampUS(d time.Duration) uint64 {
	if d <= 0 {
		return 0
	}
	return uint64(d / time.Microsecond)
}
