package fresh

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/model"
)

// Edge is one configured propagation edge.
type Edge struct {
	From, To model.SiteID
}

// Canonical is the determinism-safe freshness summary: two same-seed
// runs must produce byte-identical Canonical documents, so it carries
// only schedule-derived facts — the protocol, the seed, the configured
// propagation topology, the fixed segment schema, and the certificate
// coverage (100 by construction: every read path issues a certificate).
// Timing distributions deliberately live elsewhere (Summary): wall-clock
// durations vary between same-seed runs and would break the byte
// comparison the freshness smoke performs.
type Canonical struct {
	Protocol string `json:"protocol"`
	Seed     int64  `json:"seed"`
	Sites    int    `json:"sites"`
	// Eager marks protocols whose reads observe the primary copy by
	// construction (zero read staleness, e.g. PSL).
	Eager    bool     `json:"eager"`
	Segments []string `json:"segments"`
	// Edges lists the configured propagation edges as "s<from>->s<to>",
	// sorted — the topology updates travel, independent of timing.
	Edges       []string `json:"edges"`
	CoveragePct float64  `json:"coverage_pct"`
}

// NewCanonical assembles the canonical summary from schedule-derived
// inputs.
func NewCanonical(protocol string, seed int64, sites int, eager bool, edges []Edge, coveragePct float64) Canonical {
	c := Canonical{
		Protocol:    protocol,
		Seed:        seed,
		Sites:       sites,
		Eager:       eager,
		Segments:    append([]string(nil), SegmentNames...),
		CoveragePct: coveragePct,
	}
	sorted := append([]Edge(nil), edges...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].From != sorted[j].From {
			return sorted[i].From < sorted[j].From
		}
		return sorted[i].To < sorted[j].To
	})
	for _, e := range sorted {
		c.Edges = append(c.Edges, fmt.Sprintf("s%d->s%d", e.From, e.To))
	}
	return c
}

// Encode writes the canonical summary as stable indented JSON followed
// by a newline; same inputs always give the same bytes. HTML escaping is
// off so the edges read as written ("s0->s1", no > escapes).
func (c Canonical) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}
