package fresh

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/trace"
)

func TestNilTrackerIsNoOp(t *testing.T) {
	var tr *Tracker
	tr.NoteCommit(1)
	tr.NoteApply(0, 1)
	if c := tr.CertifyRead(0, 1, 0); c.Stale() {
		t.Fatalf("nil tracker certified a stale read: %+v", c)
	}
	if c := tr.CertifyFresh(0); c.Stale() {
		t.Fatalf("nil tracker CertifyFresh returned stale: %+v", c)
	}
	tr.StartProbe(time.Millisecond)
	tr.StopProbe()
	if s := tr.Summarize(); s != nil {
		t.Fatalf("nil tracker summarized to %+v, want nil", s)
	}
}

func TestCertifyReadVersionLag(t *testing.T) {
	tr := New(2)
	item := model.ItemID(7)
	tr.NoteCommit(item)
	tr.NoteCommit(item)
	tr.NoteCommit(item)

	c := tr.CertifyRead(1, item, 1)
	if c.Versions != 2 {
		t.Fatalf("read of v1 with latest=3: Versions=%d, want 2", c.Versions)
	}
	if !c.Stale() {
		t.Fatal("2 versions behind but Stale()=false")
	}
	if c.Behind < 0 {
		t.Fatalf("negative Behind %v", c.Behind)
	}
	if c := tr.CertifyRead(1, item, 3); c.Stale() {
		t.Fatalf("read of the latest version certified stale: %+v", c)
	}
	// Unknown item: nothing committed, nothing to be behind.
	if c := tr.CertifyRead(1, model.ItemID(99), 0); c.Stale() {
		t.Fatalf("read of an uncommitted item certified stale: %+v", c)
	}
}

func TestNoteApplySamplesVersionLag(t *testing.T) {
	tr := New(2)
	item := model.ItemID(3)
	tr.NoteCommit(item)
	tr.NoteCommit(item)
	tr.NoteCommit(item)
	tr.NoteApply(1, item) // applied counter 1, latest 3 → lag 2

	s := tr.Summarize()
	if s.Applies != 1 {
		t.Fatalf("Applies=%d, want 1", s.Applies)
	}
	if got := s.VersionLag.Max; got != 2 {
		t.Fatalf("VersionLag.Max=%d, want 2", got)
	}
	// Two more applies catch the replica up: lag samples 1 then 0.
	tr.NoteApply(1, item)
	tr.NoteApply(1, item)
	s = tr.Summarize()
	if s.Applies != 3 || s.VersionLag.Count != 3 {
		t.Fatalf("after catch-up: applies=%d lagSamples=%d, want 3/3", s.Applies, s.VersionLag.Count)
	}
}

func TestSummaryRollsUpSitesAndRates(t *testing.T) {
	tr := New(3)
	item := model.ItemID(1)
	tr.NoteCommit(item)
	tr.NoteCommit(item)
	tr.CertifyFresh(0)
	tr.CertifyFresh(0)
	tr.CertifyRead(2, item, 1) // one version behind → stale

	s := tr.Summarize()
	if s.Reads() != 3 {
		t.Fatalf("Reads()=%d, want 3", s.Reads())
	}
	if s.ReadsFresh != 2 || s.ReadsStale != 1 {
		t.Fatalf("fresh/stale=%d/%d, want 2/1", s.ReadsFresh, s.ReadsStale)
	}
	if pct := s.StaleReadPct(); pct < 33.2 || pct > 33.4 {
		t.Fatalf("StaleReadPct=%f, want ~33.3", pct)
	}
	if len(s.Sites) != 2 {
		t.Fatalf("%d site rows, want 2 (silent site omitted): %+v", len(s.Sites), s.Sites)
	}
	if s.Sites[0].Site != 0 || s.Sites[1].Site != 2 {
		t.Fatalf("site rows out of order: %+v", s.Sites)
	}
	var empty *Summary
	if empty.Reads() != 0 || empty.StaleReadPct() != 0 {
		t.Fatal("nil summary accessors must return zero")
	}
}

func TestProbeSamplesLaggingReplicas(t *testing.T) {
	tr := New(2)
	item := model.ItemID(5)
	tr.NoteCommit(item)
	tr.NoteCommit(item)
	tr.NoteApply(1, item) // behind by one from here on
	before := tr.Summarize().VersionLag.Count
	tr.probe()
	after := tr.Summarize().VersionLag.Count
	if after != before+1 {
		t.Fatalf("probe added %d lag samples, want 1", after-before)
	}
}

func TestHistPercentileBounds(t *testing.T) {
	var h hist
	if got := h.percentile(0.95); got != 0 {
		t.Fatalf("empty hist p95=%d, want 0", got)
	}
	for i := 0; i < 99; i++ {
		h.add(10)
	}
	h.add(1000)
	d := h.dist()
	if d.Count != 100 || d.Max != 1000 {
		t.Fatalf("count/max=%d/%d, want 100/1000", d.Count, d.Max)
	}
	// p50 lands in 10's bucket [8,16): upper bound 15. Conservative
	// within 2×, never below the true value.
	if d.P50 < 10 || d.P50 > 15 {
		t.Fatalf("p50=%d, want in [10,15]", d.P50)
	}
	// p99.. rank 100 hits the max sample's bucket, capped by exact max.
	if d.P99 > 1000 {
		t.Fatalf("p99=%d exceeds exact max", d.P99)
	}
	var m hist
	m.merge(&h)
	if m.dist() != d {
		t.Fatal("merge into empty hist changed the distribution")
	}
}

func TestBuildWaterfallsJoinsSegments(t *testing.T) {
	tid := model.TxnID{Site: 0, Seq: 1}
	us := int64(time.Microsecond)
	events := []trace.Event{
		{T: 0, Kind: trace.TxnCommit, Site: 0, TID: tid, Proto: 1},
		// Origin hop: commit at 0, forwarded at 100µs, enqueued at s1 at 150µs.
		{T: 100 * us, Kind: trace.SecondaryForwarded, Site: 0, Peer: 1, TID: tid, Proto: 1},
		{T: 150 * us, Kind: trace.SecondaryEnqueued, Site: 1, Peer: 0, TID: tid, Proto: 1},
		{Kind: trace.PhaseLatency, Site: 1, TID: tid, Proto: 1, Phase: "queue_wait", Dur: 30 * us},
		{Kind: trace.PhaseLatency, Site: 1, TID: tid, Proto: 1, Phase: "lock_wait", Dur: 20 * us},
		{Kind: trace.PhaseLatency, Site: 1, TID: tid, Proto: 1, Phase: "apply", Dur: 10 * us},
		// Relay hop: s1 forwards at 400µs (enqueue = 400-150 = 250µs),
		// enqueued at s2 at 500µs (wire 100µs).
		{T: 400 * us, Kind: trace.SecondaryForwarded, Site: 1, Peer: 2, TID: tid, Proto: 1},
		{T: 500 * us, Kind: trace.SecondaryEnqueued, Site: 2, Peer: 1, TID: tid, Proto: 1},
		// A forward whose receipt never arrived must not join.
		{T: 600 * us, Kind: trace.SecondaryForwarded, Site: 2, Peer: 3, TID: tid, Proto: 1},
	}
	wfs := BuildWaterfalls(events)
	if len(wfs) != 2 {
		t.Fatalf("%d waterfalls, want 2 (unreceived forward dropped): %+v", len(wfs), wfs)
	}
	first := wfs[0]
	if first.From != 0 || first.To != 1 || first.Count != 1 {
		t.Fatalf("first edge = s%d->s%d count=%d, want s0->s1 count=1", first.From, first.To, first.Count)
	}
	want := map[string]uint64{"enqueue": 100, "wire": 50, "queue_wait": 30, "lock_wait": 20, "apply": 10}
	for _, seg := range first.Segments {
		if got := seg.US.Max; got != want[seg.Name] {
			t.Fatalf("s0->s1 %s = %dµs, want %d", seg.Name, got, want[seg.Name])
		}
	}
	relay := wfs[1]
	if relay.From != 1 || relay.To != 2 {
		t.Fatalf("second edge = s%d->s%d, want s1->s2", relay.From, relay.To)
	}
	if got := relay.Segments[0].US.Max; got != 250 {
		t.Fatalf("relay enqueue = %dµs, want 250 (receipt→forward)", got)
	}
	if got := relay.Segments[1].US.Max; got != 100 {
		t.Fatalf("relay wire = %dµs, want 100", got)
	}

	lines := FormatWaterfalls(wfs)
	if len(lines) != 3 {
		t.Fatalf("%d table lines, want header + 2 rows", len(lines))
	}
	if !strings.Contains(lines[0], "queue_wait") || !strings.Contains(lines[1], "s0->s1") {
		t.Fatalf("unexpected table:\n%s", strings.Join(lines, "\n"))
	}
	if FormatWaterfalls(nil) != nil {
		t.Fatal("formatting no waterfalls must yield no lines")
	}
}

func TestCanonicalEncodeIsByteStable(t *testing.T) {
	edges := []Edge{{From: 2, To: 3}, {From: 0, To: 1}, {From: 1, To: 2}}
	c := NewCanonical("DAG(WT)", 7, 4, false, edges, 100)
	if c.Edges[0] != "s0->s1" || c.Edges[2] != "s2->s3" {
		t.Fatalf("edges not sorted: %v", c.Edges)
	}
	var a, b bytes.Buffer
	if err := c.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := NewCanonical("DAG(WT)", 7, 4, false, edges, 100).Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("same inputs, different bytes:\n%s\n----\n%s", a.String(), b.String())
	}
	if !bytes.HasSuffix(a.Bytes(), []byte("\n")) {
		t.Fatal("canonical document must end in a newline")
	}
}
