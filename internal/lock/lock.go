// Package lock implements the strict two-phase-locking lock manager every
// site runs (§1.1 of the paper): shared/exclusive item locks with FIFO
// wait queues, lock upgrade, and the two deadlock-handling policies the
// paper discusses — lock-request timeouts (the prototype's mechanism,
// default 50 ms, handling both local and global deadlocks) and an optional
// local wait-for-graph detector.
//
// "Strict" 2PL here means callers hold every lock until commit/abort and
// then call ReleaseAll; the manager itself never releases early.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
)

// Mode is a lock mode.
type Mode uint8

const (
	// Shared permits concurrent readers.
	Shared Mode = iota
	// Exclusive permits a single writer.
	Exclusive
)

func (m Mode) String() string {
	if m == Shared {
		return "S"
	}
	return "X"
}

// ErrTimeout is returned when a lock request waits longer than its
// timeout; the caller is expected to treat itself as the deadlock victim
// and abort.
var ErrTimeout = errors.New("lock: request timed out (deadlock victim)")

// ErrDeadlock is returned when the wait-for-graph detector (if enabled)
// proves that blocking this request would close a waits-for cycle.
var ErrDeadlock = errors.New("lock: wait-for cycle detected")

// Stats counts lock-manager events; read them with Manager.Stats.
type Stats struct {
	Acquired  uint64
	Waited    uint64
	Timeouts  uint64
	Deadlocks uint64 // detector-resolved
	Wounds    uint64 // vulnerable holders wounded by blocking secondaries
	WaitTime  time.Duration
}

type waiter struct {
	owner   model.TxnID
	item    model.ItemID
	mode    Mode
	upgrade bool
	since   time.Time  // when the request queued (wait-age observation only)
	granted chan error // buffered(1); nil error = granted
	dead    bool       // timed out / cancelled; skip when granting
}

type entry struct {
	holders map[model.TxnID]Mode
	queue   []*waiter
	// stats is the item's contention accounting (contention.go); kept in
	// the entry so the hot paths never pay a second map lookup. Its Item
	// field is filled in at snapshot time.
	stats ItemStats
}

// Priority marks a lock request made on behalf of a secondary
// subtransaction. Secondaries must eventually succeed (§2 of the paper:
// they are resubmitted until they commit), so when one blocks on a holder
// that has declared itself vulnerable — a primary parked on its backedge
// round-trip — the holder is wounded: its registered callback fires and
// it aborts, implementing the paper's fair victim selection ("the
// transaction which arrived at the site the latest").
type Priority bool

// Priority levels for AcquireEx.
const (
	// Normal requests never wound anybody.
	Normal Priority = false
	// Secondary requests wound vulnerable holders they block on.
	Secondary Priority = true
)

// Manager is one site's lock table. All methods are safe for concurrent
// use.
type Manager struct {
	mu         sync.Mutex
	items      map[model.ItemID]*entry
	held       map[model.TxnID]map[model.ItemID]Mode
	waits      map[model.TxnID]model.ItemID // owner -> item it is queued on
	vulnerable map[model.TxnID]*vulnState   // owner -> wound state
	grace      time.Duration
	detect     bool
	stats      Stats
}

// vulnState tracks one vulnerable owner: when it became vulnerable and
// what to call to wound it.
type vulnState struct {
	since time.Time
	fn    func()
}

// NewManager returns an empty lock manager. If detectDeadlocks is true,
// requests that would close a local waits-for cycle fail fast with
// ErrDeadlock instead of waiting for the timeout.
func NewManager(detectDeadlocks bool) *Manager {
	return &Manager{
		items:      make(map[model.ItemID]*entry),
		held:       make(map[model.TxnID]map[model.ItemID]Mode),
		waits:      make(map[model.TxnID]model.ItemID),
		vulnerable: make(map[model.TxnID]*vulnState),
		detect:     detectDeadlocks,
	}
}

// Acquire obtains a lock on item for owner in the given mode, waiting at
// most timeout. Re-acquiring an already-held lock (same or weaker mode) is
// a no-op; holding Shared and requesting Exclusive performs an upgrade.
// A timeout of zero or less means "do not wait": fail immediately if the
// lock cannot be granted.
func (m *Manager) Acquire(owner model.TxnID, item model.ItemID, mode Mode, timeout time.Duration) error {
	return m.AcquireEx(owner, item, mode, timeout, Normal)
}

// SetVulnerable registers owner as woundable: if a Secondary-priority
// request blocks on one of owner's locks after the wound grace period
// (see SetWoundGrace) has elapsed, fn runs (once, from the requester's
// goroutine, without the manager lock held). The owner is expected to
// abort promptly. ClearVulnerable must be called when the vulnerable
// phase ends.
func (m *Manager) SetVulnerable(owner model.TxnID, fn func()) {
	m.mu.Lock()
	m.vulnerable[owner] = &vulnState{since: time.Now(), fn: fn}
	m.mu.Unlock()
}

// SetWoundGrace sets how long an owner may stay vulnerable before a
// blocking secondary actually wounds it. A grace of zero (the default)
// wounds immediately; a positive grace lets short backedge round-trips
// finish instead of being killed by the first passing secondary, at the
// cost of stalling that secondary's queue for up to the grace period.
func (m *Manager) SetWoundGrace(d time.Duration) {
	m.mu.Lock()
	m.grace = d
	m.mu.Unlock()
}

// ClearVulnerable removes owner's wound callback.
func (m *Manager) ClearVulnerable(owner model.TxnID) {
	m.mu.Lock()
	delete(m.vulnerable, owner)
	m.mu.Unlock()
}

// AcquireEx is Acquire with an explicit priority class.
func (m *Manager) AcquireEx(owner model.TxnID, item model.ItemID, mode Mode, timeout time.Duration, prio Priority) error {
	m.mu.Lock()
	e := m.items[item]
	if e == nil {
		e = &entry{holders: make(map[model.TxnID]Mode)}
		m.items[item] = e
	}
	if cur, ok := e.holders[owner]; ok && (cur == Exclusive || mode == Shared) {
		m.mu.Unlock()
		return nil // already held strongly enough
	}
	_, upgrading := e.holders[owner]

	if m.canGrant(e, owner, mode) {
		m.grantLocked(e, owner, item, mode)
		m.stats.Acquired++
		e.stats.Acquired++
		m.mu.Unlock()
		return nil
	}
	if timeout <= 0 {
		m.mu.Unlock()
		return ErrTimeout
	}
	if m.detect && m.wouldDeadlock(owner, e) {
		m.stats.Deadlocks++
		e.stats.Deadlocks++
		m.mu.Unlock()
		return ErrDeadlock
	}
	// A blocking secondary wounds vulnerable holders in its way — those
	// already past the grace period now, the rest when their grace runs
	// out (woundAt).
	wounds, woundAt := m.collectWoundsLocked(e, owner, mode, prio)
	m.stats.Wounds += uint64(len(wounds))
	e.stats.Wounds += uint64(len(wounds))
	start := time.Now()
	w := &waiter{owner: owner, item: item, mode: mode, upgrade: upgrading, since: start, granted: make(chan error, 1)}
	if upgrading {
		// Upgraders jump the queue: they already hold Shared, so making
		// them wait behind queued writers guarantees deadlock.
		e.queue = append([]*waiter{w}, e.queue...)
	} else {
		e.queue = append(e.queue, w)
	}
	m.waits[owner] = item
	m.stats.Waited++
	e.stats.Waited++
	if live := liveWaiters(e); live > e.stats.QueuePeak {
		e.stats.QueuePeak = live
	}
	m.mu.Unlock()

	for _, fn := range wounds {
		fn()
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	for {
		var wt *time.Timer
		var woundTimer <-chan time.Time
		if !woundAt.IsZero() {
			wt = time.NewTimer(time.Until(woundAt))
			woundTimer = wt.C
		}
		select {
		case err := <-w.granted:
			if wt != nil {
				wt.Stop()
			}
			m.mu.Lock()
			delete(m.waits, owner)
			m.noteWaitLocked(e, time.Since(start))
			m.mu.Unlock()
			return err
		case <-woundTimer:
			// Grace expired for at least one vulnerable holder; wound the
			// ones still in the way and keep waiting.
			m.mu.Lock()
			wounds, woundAt = m.collectWoundsLocked(e, owner, mode, prio)
			m.stats.Wounds += uint64(len(wounds))
			e.stats.Wounds += uint64(len(wounds))
			m.mu.Unlock()
			for _, fn := range wounds {
				fn()
			}
		case <-timer.C:
			if wt != nil {
				wt.Stop()
			}
			m.mu.Lock()
			defer m.mu.Unlock()
			select {
			case err := <-w.granted:
				// Granted in the race window; keep the lock.
				delete(m.waits, owner)
				m.noteWaitLocked(e, time.Since(start))
				return err
			default:
			}
			w.dead = true
			delete(m.waits, owner)
			m.stats.Timeouts++
			e.stats.Timeouts++
			m.noteWaitLocked(e, time.Since(start))
			m.sweepLocked(e)
			return ErrTimeout
		}
	}
}

// noteWaitLocked folds one finished wait into the manager-wide and
// per-item accounting. Caller holds m.mu.
func (m *Manager) noteWaitLocked(e *entry, d time.Duration) {
	m.stats.WaitTime += d
	e.stats.WaitNS += int64(d)
	if int64(d) > e.stats.MaxWaitNS {
		e.stats.MaxWaitNS = int64(d)
	}
}

// liveWaiters counts the non-dead queued requests on e.
func liveWaiters(e *entry) int {
	n := 0
	for _, w := range e.queue {
		if !w.dead {
			n++
		}
	}
	return n
}

// collectWoundsLocked gathers the wound callbacks of vulnerable holders
// blocking the (owner, mode) request whose grace has expired, removing
// them from the vulnerable set, and returns the earliest future instant
// at which another blocking holder becomes woundable (zero if none).
// Non-secondary requests never wound. Caller holds m.mu.
func (m *Manager) collectWoundsLocked(e *entry, owner model.TxnID, mode Mode, prio Priority) ([]func(), time.Time) {
	if prio != Secondary {
		return nil, time.Time{}
	}
	now := time.Now()
	var wounds []func()
	var woundAt time.Time
	for h, hm := range e.holders {
		if h == owner || (mode == Shared && hm == Shared) {
			continue
		}
		vs, ok := m.vulnerable[h]
		if !ok {
			continue
		}
		if now.Sub(vs.since) >= m.grace {
			wounds = append(wounds, vs.fn)
			delete(m.vulnerable, h)
		} else if due := vs.since.Add(m.grace); woundAt.IsZero() || due.Before(woundAt) {
			woundAt = due
		}
	}
	return wounds, woundAt
}

// canGrant reports whether owner may take item in mode right now,
// respecting FIFO fairness: a Shared request does not overtake queued
// waiters (unless it is an upgrade, which bypasses the queue).
func (m *Manager) canGrant(e *entry, owner model.TxnID, mode Mode) bool {
	live := 0
	for _, w := range e.queue {
		if !w.dead {
			live++
		}
	}
	if mode == Shared {
		if live > 0 {
			return false
		}
		for _, hm := range e.holders {
			if hm == Exclusive {
				return false
			}
		}
		return true
	}
	// Exclusive: must be sole holder (upgrade) or no holders, and no live
	// queue ahead.
	if live > 0 {
		return false
	}
	for h, hm := range e.holders {
		if h != owner || hm == Exclusive {
			return false
		}
	}
	return true
}

func (m *Manager) grantLocked(e *entry, owner model.TxnID, item model.ItemID, mode Mode) {
	e.holders[owner] = mode
	hm := m.held[owner]
	if hm == nil {
		hm = make(map[model.ItemID]Mode)
		m.held[owner] = hm
	}
	hm[item] = mode
}

// sweepLocked grants as many queued waiters as compatibility allows, in
// FIFO order, skipping dead waiters.
func (m *Manager) sweepLocked(e *entry) {
	for len(e.queue) > 0 {
		w := e.queue[0]
		if w.dead {
			e.queue = e.queue[1:]
			continue
		}
		ok := false
		if w.mode == Shared {
			ok = true
			for _, hm := range e.holders {
				if hm == Exclusive {
					ok = false
				}
			}
		} else {
			ok = true
			for h, hm := range e.holders {
				if h != w.owner || hm == Exclusive {
					ok = false
				}
			}
		}
		if !ok {
			return
		}
		e.queue = e.queue[1:]
		m.grantLocked(e, w.owner, w.item, w.mode)
		m.stats.Acquired++
		e.stats.Acquired++
		w.granted <- nil
		if w.mode == Exclusive {
			return
		}
		// A granted Shared lock may be followed by more compatible
		// Shared grants; keep sweeping.
	}
}

// wouldDeadlock reports whether making owner wait on entry e closes a
// cycle in the local waits-for graph.
func (m *Manager) wouldDeadlock(owner model.TxnID, e *entry) bool {
	// Build blockers of a waiter: holders of the item it waits on plus
	// live waiters queued ahead of it. For the probe we only need "waits
	// on item" -> holders, iterated transitively.
	visited := map[model.TxnID]bool{}
	var blocked func(t model.TxnID) bool // true if t transitively waits on owner
	blocked = func(t model.TxnID) bool {
		if t == owner {
			return true
		}
		if visited[t] {
			return false
		}
		visited[t] = true
		it, waiting := m.waits[t]
		if !waiting {
			return false
		}
		ent := m.items[it]
		if ent == nil {
			return false
		}
		for h := range ent.holders {
			if h != t && blocked(h) {
				return true
			}
		}
		return false
	}
	for h := range e.holders {
		if h != owner && blocked(h) {
			return true
		}
	}
	return false
}

// ReleaseAll drops every lock held by owner and wakes compatible waiters.
// It is the commit/abort-time release of strict 2PL.
func (m *Manager) ReleaseAll(owner model.TxnID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.vulnerable, owner)
	for item := range m.held[owner] {
		e := m.items[item]
		delete(e.holders, owner)
		m.sweepLocked(e)
	}
	delete(m.held, owner)
}

// Release drops owner's lock on a single item (used by protocols that
// release remote read locks individually).
func (m *Manager) Release(owner model.TxnID, item model.ItemID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if hm := m.held[owner]; hm != nil {
		delete(hm, item)
		if len(hm) == 0 {
			delete(m.held, owner)
		}
	}
	if e := m.items[item]; e != nil {
		delete(e.holders, owner)
		m.sweepLocked(e)
	}
}

// Holds reports the mode owner currently holds on item, if any.
func (m *Manager) Holds(owner model.TxnID, item model.ItemID) (Mode, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	mode, ok := m.held[owner][item]
	return mode, ok
}

// HeldCount returns the number of locks owner holds.
func (m *Manager) HeldCount(owner model.TxnID) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.held[owner])
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// String renders the lock table; for debugging deadlocks in tests.
func (m *Manager) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := ""
	for item, e := range m.items {
		if len(e.holders) == 0 && len(e.queue) == 0 {
			continue
		}
		s += fmt.Sprintf("item %d: holders=%v queue=%d\n", item, e.holders, len(e.queue))
	}
	return s
}
