package lock

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestSecondaryWoundsVulnerableHolder(t *testing.T) {
	m := NewManager(false)
	holder, sec := tid(1), tid(2)
	if err := m.Acquire(holder, 1, Exclusive, wait); err != nil {
		t.Fatal(err)
	}
	var wounded atomic.Bool
	m.SetVulnerable(holder, func() { wounded.Store(true) })

	done := make(chan error, 1)
	go func() { done <- m.AcquireEx(sec, 1, Exclusive, 200*time.Millisecond, Secondary) }()
	// The wound fires immediately (zero grace); the holder "aborts".
	deadline := time.Now().Add(time.Second)
	for !wounded.Load() {
		if time.Now().After(deadline) {
			t.Fatal("vulnerable holder never wounded")
		}
		time.Sleep(time.Millisecond)
	}
	m.ReleaseAll(holder) // the wounded holder aborts
	if err := <-done; err != nil {
		t.Fatalf("secondary not granted after wound: %v", err)
	}
}

func TestNormalRequestNeverWounds(t *testing.T) {
	m := NewManager(false)
	holder := tid(1)
	_ = m.Acquire(holder, 1, Exclusive, wait)
	var wounded atomic.Bool
	m.SetVulnerable(holder, func() { wounded.Store(true) })
	_ = m.Acquire(tid(2), 1, Exclusive, 30*time.Millisecond) // Normal priority, times out
	if wounded.Load() {
		t.Fatal("normal-priority request wounded a holder")
	}
	m.ClearVulnerable(holder)
	m.ReleaseAll(holder)
}

func TestSharedSecondaryDoesNotWoundSharedHolder(t *testing.T) {
	m := NewManager(false)
	holder := tid(1)
	_ = m.Acquire(holder, 1, Shared, wait)
	var wounded atomic.Bool
	m.SetVulnerable(holder, func() { wounded.Store(true) })
	// S-S is compatible: the secondary is granted without wounding anyone.
	if err := m.AcquireEx(tid(2), 1, Shared, wait, Secondary); err != nil {
		t.Fatal(err)
	}
	if wounded.Load() {
		t.Fatal("compatible request wounded the holder")
	}
}

func TestWoundGraceDelaysWound(t *testing.T) {
	m := NewManager(false)
	m.SetWoundGrace(60 * time.Millisecond)
	holder, sec := tid(1), tid(2)
	_ = m.Acquire(holder, 1, Exclusive, wait)
	woundAt := make(chan time.Time, 1)
	start := time.Now()
	m.SetVulnerable(holder, func() { woundAt <- time.Now() })

	done := make(chan error, 1)
	go func() { done <- m.AcquireEx(sec, 1, Exclusive, time.Second, Secondary) }()
	select {
	case at := <-woundAt:
		if d := at.Sub(start); d < 50*time.Millisecond {
			t.Errorf("wounded after %v, before the 60ms grace", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("wound never fired after grace")
	}
	m.ReleaseAll(holder)
	if err := <-done; err != nil {
		t.Fatalf("secondary not granted: %v", err)
	}
}

func TestWoundSkippedWhenHolderFinishesWithinGrace(t *testing.T) {
	m := NewManager(false)
	m.SetWoundGrace(150 * time.Millisecond)
	holder, sec := tid(1), tid(2)
	_ = m.Acquire(holder, 1, Exclusive, wait)
	var wounded atomic.Bool
	m.SetVulnerable(holder, func() { wounded.Store(true) })

	done := make(chan error, 1)
	go func() { done <- m.AcquireEx(sec, 1, Exclusive, time.Second, Secondary) }()
	time.Sleep(30 * time.Millisecond)
	// Holder completes (commit) well inside the grace: no wound.
	m.ReleaseAll(holder)
	if err := <-done; err != nil {
		t.Fatalf("secondary: %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if wounded.Load() {
		t.Fatal("holder was wounded despite finishing within the grace period")
	}
}

func TestWoundFiresOnce(t *testing.T) {
	m := NewManager(false)
	holder := tid(1)
	_ = m.Acquire(holder, 1, Exclusive, wait)
	_ = m.Acquire(holder, 2, Exclusive, wait)
	var count atomic.Int64
	m.SetVulnerable(holder, func() { count.Add(1) })
	// Two secondaries block on two different items of the same holder.
	go m.AcquireEx(tid(2), 1, Exclusive, 50*time.Millisecond, Secondary)
	go m.AcquireEx(tid(3), 2, Exclusive, 50*time.Millisecond, Secondary)
	time.Sleep(100 * time.Millisecond)
	if n := count.Load(); n != 1 {
		t.Fatalf("wound callback fired %d times, want exactly 1", n)
	}
	m.ReleaseAll(holder)
}

func TestClearVulnerablePreventsWound(t *testing.T) {
	m := NewManager(false)
	holder := tid(1)
	_ = m.Acquire(holder, 1, Exclusive, wait)
	var wounded atomic.Bool
	m.SetVulnerable(holder, func() { wounded.Store(true) })
	m.ClearVulnerable(holder)
	_ = m.AcquireEx(tid(2), 1, Exclusive, 30*time.Millisecond, Secondary)
	if wounded.Load() {
		t.Fatal("cleared vulnerability still wounded")
	}
	m.ReleaseAll(holder)
}

func TestReleaseAllClearsVulnerability(t *testing.T) {
	m := NewManager(false)
	holder := tid(1)
	_ = m.Acquire(holder, 1, Exclusive, wait)
	var wounded atomic.Bool
	m.SetVulnerable(holder, func() { wounded.Store(true) })
	m.ReleaseAll(holder)
	// New life for the same item; a blocking secondary must not wound the
	// finished holder.
	_ = m.Acquire(tid(9), 1, Exclusive, wait)
	_ = m.AcquireEx(tid(2), 1, Exclusive, 30*time.Millisecond, Secondary)
	if wounded.Load() {
		t.Fatal("released holder still wounded")
	}
}
