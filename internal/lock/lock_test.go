package lock

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

func tid(n uint64) model.TxnID { return model.TxnID{Site: 0, Seq: n} }

const wait = 200 * time.Millisecond

func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager(false)
	for i := uint64(1); i <= 3; i++ {
		if err := m.Acquire(tid(i), 1, Shared, wait); err != nil {
			t.Fatalf("S lock %d: %v", i, err)
		}
	}
	if n := m.HeldCount(tid(1)); n != 1 {
		t.Errorf("HeldCount = %d", n)
	}
}

func TestExclusiveExcludes(t *testing.T) {
	m := NewManager(false)
	if err := m.Acquire(tid(1), 1, Exclusive, wait); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(tid(2), 1, Shared, 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("S behind X should time out, got %v", err)
	}
	if err := m.Acquire(tid(2), 1, Exclusive, 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Errorf("X behind X should time out, got %v", err)
	}
}

func TestReacquireIsNoop(t *testing.T) {
	m := NewManager(false)
	if err := m.Acquire(tid(1), 1, Exclusive, wait); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(tid(1), 1, Exclusive, wait); err != nil {
		t.Errorf("reacquire X: %v", err)
	}
	if err := m.Acquire(tid(1), 1, Shared, wait); err != nil {
		t.Errorf("weaker reacquire: %v", err)
	}
	if mode, ok := m.Holds(tid(1), 1); !ok || mode != Exclusive {
		t.Errorf("lock downgraded: %v %v", mode, ok)
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	m := NewManager(false)
	if err := m.Acquire(tid(1), 1, Shared, wait); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(tid(1), 1, Exclusive, wait); err != nil {
		t.Errorf("upgrade as sole holder: %v", err)
	}
	if mode, _ := m.Holds(tid(1), 1); mode != Exclusive {
		t.Error("mode not upgraded")
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	m := NewManager(false)
	if err := m.Acquire(tid(1), 1, Shared, wait); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(tid(2), 1, Shared, wait); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(tid(1), 1, Exclusive, wait) }()
	time.Sleep(20 * time.Millisecond)
	select {
	case err := <-done:
		t.Fatalf("upgrade granted while another reader holds: %v", err)
	default:
	}
	m.ReleaseAll(tid(2))
	if err := <-done; err != nil {
		t.Fatalf("upgrade after release: %v", err)
	}
}

func TestUpgradeDeadlockBetweenTwoReadersTimesOut(t *testing.T) {
	m := NewManager(false)
	_ = m.Acquire(tid(1), 1, Shared, wait)
	_ = m.Acquire(tid(2), 1, Shared, wait)
	errs := make(chan error, 2)
	go func() { errs <- m.Acquire(tid(1), 1, Exclusive, 50*time.Millisecond) }()
	go func() { errs <- m.Acquire(tid(2), 1, Exclusive, 50*time.Millisecond) }()
	e1, e2 := <-errs, <-errs
	if !errors.Is(e1, ErrTimeout) && !errors.Is(e2, ErrTimeout) {
		t.Errorf("classic upgrade deadlock must time out at least one: %v %v", e1, e2)
	}
}

func TestFIFOWritersBeforeLateReaders(t *testing.T) {
	// Holder: S by t1. Queue: X by t2, then S by t3. t3 must not overtake
	// t2 even though it is compatible with the current holder.
	m := NewManager(false)
	_ = m.Acquire(tid(1), 1, Shared, wait)
	var order []uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := m.Acquire(tid(2), 1, Exclusive, time.Second); err == nil {
			mu.Lock()
			order = append(order, 2)
			mu.Unlock()
			time.Sleep(10 * time.Millisecond)
			m.ReleaseAll(tid(2))
		}
	}()
	time.Sleep(20 * time.Millisecond) // ensure t2 queues first
	go func() {
		defer wg.Done()
		if err := m.Acquire(tid(3), 1, Shared, time.Second); err == nil {
			mu.Lock()
			order = append(order, 3)
			mu.Unlock()
		}
	}()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(tid(1))
	wg.Wait()
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Errorf("grant order = %v, want [2 3]", order)
	}
}

func TestReleaseAllWakesWaiters(t *testing.T) {
	m := NewManager(false)
	_ = m.Acquire(tid(1), 1, Exclusive, wait)
	_ = m.Acquire(tid(1), 2, Exclusive, wait)
	got := make(chan error, 2)
	go func() { got <- m.Acquire(tid(2), 1, Exclusive, time.Second) }()
	go func() { got <- m.Acquire(tid(3), 2, Shared, time.Second) }()
	time.Sleep(20 * time.Millisecond)
	m.ReleaseAll(tid(1))
	if err := <-got; err != nil {
		t.Errorf("waiter 1: %v", err)
	}
	if err := <-got; err != nil {
		t.Errorf("waiter 2: %v", err)
	}
}

func TestReleaseSingleItem(t *testing.T) {
	m := NewManager(false)
	_ = m.Acquire(tid(1), 1, Exclusive, wait)
	_ = m.Acquire(tid(1), 2, Exclusive, wait)
	m.Release(tid(1), 1)
	if _, held := m.Holds(tid(1), 1); held {
		t.Error("item 1 still held")
	}
	if _, held := m.Holds(tid(1), 2); !held {
		t.Error("item 2 should still be held")
	}
	if err := m.Acquire(tid(2), 1, Exclusive, 10*time.Millisecond); err != nil {
		t.Errorf("released lock not grantable: %v", err)
	}
}

func TestZeroTimeoutFailsFast(t *testing.T) {
	m := NewManager(false)
	_ = m.Acquire(tid(1), 1, Exclusive, wait)
	start := time.Now()
	err := m.Acquire(tid(2), 1, Shared, 0)
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("want immediate timeout, got %v", err)
	}
	if time.Since(start) > 20*time.Millisecond {
		t.Error("zero timeout should not wait")
	}
}

func TestDeadlockDetector(t *testing.T) {
	m := NewManager(true)
	_ = m.Acquire(tid(1), 1, Exclusive, wait)
	_ = m.Acquire(tid(2), 2, Exclusive, wait)
	// t1 waits for item 2 (held by t2) in the background...
	bg := make(chan error, 1)
	go func() { bg <- m.Acquire(tid(1), 2, Exclusive, 5*time.Second) }()
	time.Sleep(30 * time.Millisecond)
	// ...so t2 requesting item 1 would close the cycle; the detector must
	// refuse immediately.
	start := time.Now()
	err := m.Acquire(tid(2), 1, Exclusive, 5*time.Second)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Error("detector should fail fast, not wait for the timeout")
	}
	m.ReleaseAll(tid(2))
	if err := <-bg; err != nil {
		t.Errorf("victim released, waiter should proceed: %v", err)
	}
	if m.Stats().Deadlocks == 0 {
		t.Error("deadlock counter not bumped")
	}
}

func TestStatsCounters(t *testing.T) {
	m := NewManager(false)
	_ = m.Acquire(tid(1), 1, Exclusive, wait)
	_ = m.Acquire(tid(2), 1, Exclusive, 10*time.Millisecond) // timeout
	s := m.Stats()
	if s.Acquired != 1 || s.Timeouts != 1 || s.Waited != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.WaitTime <= 0 {
		t.Error("wait time not accumulated")
	}
}

// TestNoConflictingGrantsUnderStress hammers the manager from many
// goroutines and asserts the core safety invariant: an exclusive holder is
// always alone on its item.
func TestNoConflictingGrantsUnderStress(t *testing.T) {
	m := NewManager(false)
	const items = 8
	var holders [items]atomic.Int64 // +1000 for X, +1 per S
	var violations atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 300; i++ {
				owner := model.TxnID{Site: model.SiteID(g), Seq: uint64(i + 1)}
				item := model.ItemID(rng.Intn(items))
				mode := Shared
				if rng.Intn(2) == 0 {
					mode = Exclusive
				}
				if err := m.Acquire(owner, item, mode, 30*time.Millisecond); err != nil {
					continue
				}
				if mode == Exclusive {
					if v := holders[item].Add(1000); v != 1000 {
						violations.Add(1)
					}
					holders[item].Add(-1000)
				} else {
					v := holders[item].Add(1)
					if v >= 1000 {
						violations.Add(1)
					}
					holders[item].Add(-1)
				}
				m.ReleaseAll(owner)
			}
		}(g)
	}
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Fatalf("%d conflicting grants observed", n)
	}
}
