// Per-item contention accounting and wait-for graph capture: the lock
// manager already owns everything the contention observatory needs — who
// holds what, who waits behind whom, and how each request resolved — so
// both instruments live here, under the same mutex, and cost the grant
// fast path one counter increment.
package lock

import (
	"sort"
	"time"

	"repro/internal/model"
)

// ItemStats is one item's contention accounting at one site: how its lock
// requests resolved, how long waiters sat, and how deep its queue got.
// Counts mirror the manager-wide Stats (an event increments an item
// counter exactly where it increments the global one).
type ItemStats struct {
	Item      model.ItemID `json:"item"`
	Acquired  uint64       `json:"acquired"`
	Waited    uint64       `json:"waited"`
	Timeouts  uint64       `json:"timeouts"`
	Deadlocks uint64       `json:"deadlocks"`
	Wounds    uint64       `json:"wounds"`
	// WaitNS/MaxWaitNS total and peak the time requests spent queued on
	// this item (wall clock; observation only).
	WaitNS    int64 `json:"wait_ns"`
	MaxWaitNS int64 `json:"max_wait_ns"`
	// QueuePeak is the deepest the item's live waiter queue ever got.
	QueuePeak int `json:"queue_peak"`
}

// Contended reports whether the item ever made a request wait or fail.
func (s ItemStats) Contended() bool {
	return s.Waited > 0 || s.Timeouts > 0 || s.Deadlocks > 0 || s.Wounds > 0
}

// ItemStats returns the per-item accounting for every item whose lock was
// ever requested here, sorted by item id.
func (m *Manager) ItemStats() []ItemStats {
	m.mu.Lock()
	out := make([]ItemStats, 0, len(m.items))
	for item, e := range m.items {
		s := e.stats
		s.Item = item
		out = append(out, s)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Item < out[j].Item })
	return out
}

// Hold is one current lock holder in a wait-for snapshot.
type Hold struct {
	Owner model.TxnID `json:"owner"`
	Mode  string      `json:"mode"`
}

// WaitEdge is one waiting lock request in a wait-for graph snapshot:
// who waits, on which item, in what mode, behind which holders. The
// holders it waits for plus the live waiters queued ahead of it (Pos)
// are exactly the blockers the deadlock detector would chase.
type WaitEdge struct {
	Item    model.ItemID `json:"item"`
	Waiter  model.TxnID  `json:"waiter"`
	Mode    string       `json:"mode"`
	Upgrade bool         `json:"upgrade,omitempty"`
	// Pos is the request's position among the item's live waiters (0 is
	// next in line).
	Pos     int    `json:"pos"`
	Holders []Hold `json:"holders"`
	// AgeNS is the wall-clock time the request had been waiting at
	// capture. Deliberately excluded from the JSON serialization: dump
	// bytes must depend only on the captured structure, so same-seed
	// snapshots of the same state stay byte-identical.
	AgeNS int64 `json:"-"`
}

// WaitGraph snapshots the manager's current wait-for state: one edge per
// live queued waiter, deterministically ordered by (item, queue
// position), holders sorted by owner. An empty slice means nobody is
// waiting.
func (m *Manager) WaitGraph() []WaitEdge {
	now := time.Now()
	m.mu.Lock()
	items := make([]model.ItemID, 0)
	for item, e := range m.items {
		if len(e.queue) > 0 {
			items = append(items, item)
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	var out []WaitEdge
	for _, item := range items {
		e := m.items[item]
		holders := make([]Hold, 0, len(e.holders))
		for h, hm := range e.holders {
			holders = append(holders, Hold{Owner: h, Mode: hm.String()})
		}
		sort.Slice(holders, func(i, j int) bool { return txnLess(holders[i].Owner, holders[j].Owner) })
		pos := 0
		for _, w := range e.queue {
			if w.dead {
				continue
			}
			out = append(out, WaitEdge{
				Item: item, Waiter: w.owner, Mode: w.mode.String(),
				Upgrade: w.upgrade, Pos: pos, Holders: holders,
				AgeNS: int64(now.Sub(w.since)),
			})
			pos++
		}
	}
	m.mu.Unlock()
	return out
}

func txnLess(a, b model.TxnID) bool {
	if a.Site != b.Site {
		return a.Site < b.Site
	}
	return a.Seq < b.Seq
}
