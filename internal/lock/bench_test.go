package lock

import (
	"testing"
	"time"

	"repro/internal/model"
)

func BenchmarkAcquireReleaseUncontended(b *testing.B) {
	m := NewManager(false)
	owner := model.TxnID{Site: 0, Seq: 1}
	for i := 0; i < b.N; i++ {
		if err := m.Acquire(owner, 1, Exclusive, time.Second); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(owner)
	}
}

func BenchmarkAcquireSharedFanIn(b *testing.B) {
	// Many readers on one item: the common read-heavy pattern of the
	// paper's workload (read-op probability 0.7).
	m := NewManager(false)
	b.RunParallel(func(pb *testing.PB) {
		seq := uint64(0)
		for pb.Next() {
			seq++
			owner := model.TxnID{Site: 1, Seq: seq}
			if err := m.Acquire(owner, 1, Shared, time.Second); err != nil {
				b.Fatal(err)
			}
			m.ReleaseAll(owner)
		}
	})
}

func BenchmarkStrict2PLTenItems(b *testing.B) {
	// A full Table 1 transaction's lock footprint: 10 items, held, then
	// released together.
	m := NewManager(false)
	for i := 0; i < b.N; i++ {
		owner := model.TxnID{Site: 0, Seq: uint64(i + 1)}
		for item := 0; item < 10; item++ {
			mode := Shared
			if item%3 == 0 {
				mode = Exclusive
			}
			if err := m.Acquire(owner, model.ItemID(item), mode, time.Second); err != nil {
				b.Fatal(err)
			}
		}
		m.ReleaseAll(owner)
	}
}
