// Package metrics collects the performance measures of §5.3: average
// per-site throughput of primary subtransactions, abort rate, response
// times (§5.3.4), and update-propagation delay (§5.3.4), plus message
// counters used to explain the PSL-vs-BackEdge communication trade-off.
package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
)

// Phase identifies one segment of a transaction's lifetime for latency
// attribution. A response time decomposes into where it was spent: waiting
// for locks, applying writes to storage, sitting in a propagation queue,
// crossing the transport, or blocked on a 2PC round trip.
type Phase uint8

const (
	// PhaseLockWait is time blocked in the lock manager (Acquire/AcquireEx).
	PhaseLockWait Phase = iota
	// PhaseApply is time installing buffered writes into storage at commit.
	PhaseApply
	// PhaseQueueWait is time a propagated update sat in a secondary's
	// service queue before an applier picked it up.
	PhaseQueueWait
	// PhaseTransport is one-way network time of a propagation message,
	// measured from the sender's stamp to receipt.
	PhaseTransport
	// PhaseVote is the 2PC prepare round trip seen by a BackEdge
	// coordinator per participant.
	PhaseVote
	// PhaseDecision is the 2PC decision delivery round trip per
	// participant.
	PhaseDecision

	numPhases // sentinel; keep last
)

var phaseNames = [numPhases]string{
	PhaseLockWait:  "lock_wait",
	PhaseApply:     "apply",
	PhaseQueueWait: "queue_wait",
	PhaseTransport: "transport",
	PhaseVote:      "2pc_vote",
	PhaseDecision:  "2pc_decision",
}

// String returns the stable snake_case name used as the Report.Phases map
// key and in trace events.
func (p Phase) String() string {
	if p < numPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Phases lists every registered phase in declaration order. The lint
// analyzer obscomplete cross-references this registry against engine
// recording sites.
func Phases() []Phase {
	out := make([]Phase, numPhases)
	for i := range out {
		out[i] = Phase(i)
	}
	return out
}

// Collector accumulates one run's measurements. All methods are safe for
// concurrent use; a nil *Collector is a valid no-op sink.
type Collector struct {
	start atomic.Int64 // unix nanos
	end   atomic.Int64

	committed atomic.Uint64
	aborted   atomic.Uint64

	messages    atomic.Uint64
	remoteReads atomic.Uint64
	secondaries atomic.Uint64
	dummies     atomic.Uint64
	retries     atomic.Uint64 // secondary subtransaction re-submissions

	mu        sync.Mutex
	resp      durStats
	prop      durStats
	phases    [numPhases]durStats
	commitAt  map[model.TxnID]time.Time
	keepTimes bool
}

type durStats struct {
	count   uint64
	sum     time.Duration
	max     time.Duration
	samples []time.Duration // capped reservoir for percentiles
}

const maxSamples = 1 << 16

func (d *durStats) add(v time.Duration) {
	d.count++
	d.sum += v
	if v > d.max {
		d.max = v
	}
	if len(d.samples) < maxSamples {
		d.samples = append(d.samples, v)
	}
}

func (d *durStats) mean() time.Duration {
	if d.count == 0 {
		return 0
	}
	return time.Duration(int64(d.sum) / int64(d.count))
}

// percentile returns the p-quantile (nearest-rank) of the reservoir.
// Edge cases are pinned down explicitly: no samples yields zero (there is
// no meaningful percentile of an empty run), a single sample IS every
// percentile, and p outside (0, 1] clamps to the extremes rather than
// indexing out of range.
func (d *durStats) percentile(p float64) time.Duration {
	switch len(d.samples) {
	case 0:
		return 0
	case 1:
		return d.samples[0]
	}
	s := append([]time.Duration(nil), d.samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// NewCollector returns a collector. If trackPropagation is true it keeps a
// per-transaction commit-time map so replica applications can be turned
// into propagation-delay samples (E7).
func NewCollector(trackPropagation bool) *Collector {
	c := &Collector{keepTimes: trackPropagation}
	if trackPropagation {
		c.commitAt = make(map[model.TxnID]time.Time)
	}
	return c
}

// Begin marks the start of the measured interval.
func (c *Collector) Begin() {
	if c == nil {
		return
	}
	c.start.Store(time.Now().UnixNano())
}

// End marks the end of the measured interval.
func (c *Collector) End() {
	if c == nil {
		return
	}
	c.end.Store(time.Now().UnixNano())
}

// TxnCommitted records a committed primary subtransaction and its
// response time.
func (c *Collector) TxnCommitted(tid model.TxnID, resp time.Duration) {
	if c == nil {
		return
	}
	c.committed.Add(1)
	c.mu.Lock()
	c.resp.add(resp)
	if c.keepTimes {
		c.commitAt[tid] = time.Now()
	}
	c.mu.Unlock()
}

// TxnAborted records an aborted primary subtransaction.
func (c *Collector) TxnAborted() {
	if c == nil {
		return
	}
	c.aborted.Add(1)
}

// SecondaryApplied records a committed secondary subtransaction; the
// elapsed time since the primary's commit becomes a propagation-delay
// sample when tracking is enabled.
func (c *Collector) SecondaryApplied(tid model.TxnID) {
	if c == nil {
		return
	}
	c.secondaries.Add(1)
	if !c.keepTimes {
		return
	}
	c.mu.Lock()
	if at, ok := c.commitAt[tid]; ok {
		c.prop.add(time.Since(at))
	}
	c.mu.Unlock()
}

// PhaseSample records one latency-attribution sample for phase p.
// Unknown phases are dropped rather than panicking so wire-derived values
// stay safe.
func (c *Collector) PhaseSample(p Phase, d time.Duration) {
	if c == nil || p >= numPhases {
		return
	}
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	c.phases[p].add(d)
	c.mu.Unlock()
}

// MsgSent counts protocol messages.
func (c *Collector) MsgSent(n int) {
	if c == nil {
		return
	}
	c.messages.Add(uint64(n))
}

// RemoteRead counts a PSL remote read.
func (c *Collector) RemoteRead() {
	if c == nil {
		return
	}
	c.remoteReads.Add(1)
}

// Dummy counts a DAG(T) dummy subtransaction.
func (c *Collector) Dummy() {
	if c == nil {
		return
	}
	c.dummies.Add(1)
}

// Retry counts a secondary subtransaction resubmission after a local
// deadlock timeout (§2).
func (c *Collector) Retry() {
	if c == nil {
		return
	}
	c.retries.Add(1)
}

// PhaseStats summarizes one phase's latency-attribution samples.
type PhaseStats struct {
	Count uint64
	Total time.Duration
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Report is an immutable summary of a run.
//
// The exported field names are a compatibility contract: Report.JSON uses
// the default encoder, so renaming a field breaks every consumer of
// replbench output. Additions are fine; renames and removals are not
// (pinned by TestReportJSONFieldNamesFrozen).
type Report struct {
	Elapsed time.Duration

	Committed uint64
	Aborted   uint64

	// ThroughputPerSite is the paper's "average throughput": committed
	// primary subtransactions per second, averaged over the sites.
	ThroughputPerSite float64
	// AbortRate is the percentage of primary subtransactions that
	// aborted.
	AbortRate float64

	MeanResponse, P50Response, P95Response, MaxResponse time.Duration
	MeanPropDelay, P95PropDelay, MaxPropDelay           time.Duration

	// P99Response tails the response distribution; added alongside the
	// phase breakdown (omitted from String to keep the one-liner short).
	P99Response time.Duration

	Messages    uint64
	RemoteReads uint64
	Secondaries uint64
	Dummies     uint64
	Retries     uint64

	// Phases maps phase name (Phase.String) to its latency breakdown.
	// Only phases that recorded at least one sample appear, so protocols
	// without a 2PC leg simply lack those keys.
	Phases map[string]PhaseStats `json:",omitempty"`
}

// Snapshot computes the report for a run over m sites. Call End first (or
// Snapshot uses the current time).
func (c *Collector) Snapshot(m int) Report {
	if c == nil {
		return Report{}
	}
	endNs := c.end.Load()
	if endNs == 0 {
		endNs = time.Now().UnixNano()
	}
	elapsed := time.Duration(endNs - c.start.Load())
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	committed := c.committed.Load()
	aborted := c.aborted.Load()
	r := Report{
		Elapsed:       elapsed,
		Committed:     committed,
		Aborted:       aborted,
		MeanResponse:  c.resp.mean(),
		P50Response:   c.resp.percentile(0.50),
		P95Response:   c.resp.percentile(0.95),
		P99Response:   c.resp.percentile(0.99),
		MaxResponse:   c.resp.max,
		MeanPropDelay: c.prop.mean(),
		P95PropDelay:  c.prop.percentile(0.95),
		MaxPropDelay:  c.prop.max,
		Messages:      c.messages.Load(),
		RemoteReads:   c.remoteReads.Load(),
		Secondaries:   c.secondaries.Load(),
		Dummies:       c.dummies.Load(),
		Retries:       c.retries.Load(),
	}
	if m > 0 {
		r.ThroughputPerSite = float64(committed) / elapsed.Seconds() / float64(m)
	}
	if committed+aborted > 0 {
		r.AbortRate = 100 * float64(aborted) / float64(committed+aborted)
	}
	for i := range c.phases {
		d := &c.phases[i]
		if d.count == 0 {
			continue
		}
		if r.Phases == nil {
			r.Phases = make(map[string]PhaseStats)
		}
		r.Phases[Phase(i).String()] = PhaseStats{
			Count: d.count,
			Total: d.sum,
			Mean:  d.mean(),
			P50:   d.percentile(0.50),
			P95:   d.percentile(0.95),
			P99:   d.percentile(0.99),
			Max:   d.max,
		}
	}
	return r
}

// JSON renders the report as machine-readable JSON (durations in
// nanoseconds, the encoding/json default for time.Duration), for tooling
// that consumes replbench output.
func (r Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

func (r Report) String() string {
	return fmt.Sprintf(
		"thr/site=%.2f tps  aborts=%.1f%%  resp(mean/p95)=%s/%s  prop(mean/max)=%s/%s  msgs=%d remoteReads=%d secondaries=%d",
		r.ThroughputPerSite, r.AbortRate,
		r.MeanResponse.Round(time.Microsecond), r.P95Response.Round(time.Microsecond),
		r.MeanPropDelay.Round(time.Microsecond), r.MaxPropDelay.Round(time.Microsecond),
		r.Messages, r.RemoteReads, r.Secondaries)
}
