package metrics

import (
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

func txid(n uint64) model.TxnID { return model.TxnID{Site: 0, Seq: n} }

func TestThroughputAndAbortRate(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	for i := 0; i < 30; i++ {
		c.TxnCommitted(txid(uint64(i+1)), time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		c.TxnAborted()
	}
	time.Sleep(20 * time.Millisecond)
	c.End()
	r := c.Snapshot(3)
	if r.Committed != 30 || r.Aborted != 10 {
		t.Errorf("counts = %d/%d", r.Committed, r.Aborted)
	}
	if r.AbortRate != 25 {
		t.Errorf("abort rate = %v, want 25%%", r.AbortRate)
	}
	wantTPS := float64(30) / r.Elapsed.Seconds() / 3
	if diff := r.ThroughputPerSite - wantTPS; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("throughput = %v, want %v", r.ThroughputPerSite, wantTPS)
	}
}

func TestResponseStats(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	for i := 1; i <= 100; i++ {
		c.TxnCommitted(txid(uint64(i)), time.Duration(i)*time.Millisecond)
	}
	r := c.Snapshot(1)
	if r.MeanResponse != 50500*time.Microsecond {
		t.Errorf("mean = %v", r.MeanResponse)
	}
	if r.P50Response != 50*time.Millisecond {
		t.Errorf("p50 = %v", r.P50Response)
	}
	if r.P95Response != 95*time.Millisecond {
		t.Errorf("p95 = %v", r.P95Response)
	}
	if r.MaxResponse != 100*time.Millisecond {
		t.Errorf("max = %v", r.MaxResponse)
	}
}

func TestPropagationDelay(t *testing.T) {
	c := NewCollector(true)
	c.Begin()
	c.TxnCommitted(txid(1), time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	c.SecondaryApplied(txid(1))
	c.SecondaryApplied(txid(99)) // unknown primary: no sample
	r := c.Snapshot(1)
	if r.Secondaries != 2 {
		t.Errorf("secondaries = %d", r.Secondaries)
	}
	if r.MeanPropDelay < 8*time.Millisecond {
		t.Errorf("prop delay = %v, want ~10ms", r.MeanPropDelay)
	}
}

func TestPropagationDisabled(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	c.TxnCommitted(txid(1), time.Millisecond)
	c.SecondaryApplied(txid(1))
	if r := c.Snapshot(1); r.MeanPropDelay != 0 {
		t.Errorf("prop delay tracked while disabled: %v", r.MeanPropDelay)
	}
}

func TestCounters(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	c.MsgSent(3)
	c.MsgSent(2)
	c.RemoteRead()
	c.Dummy()
	c.Retry()
	r := c.Snapshot(1)
	if r.Messages != 5 || r.RemoteReads != 1 || r.Dummies != 1 || r.Retries != 1 {
		t.Errorf("counters = %+v", r)
	}
}

func TestNilCollectorIsNoop(t *testing.T) {
	var c *Collector
	c.Begin()
	c.TxnCommitted(txid(1), time.Second)
	c.TxnAborted()
	c.SecondaryApplied(txid(1))
	c.MsgSent(1)
	c.RemoteRead()
	c.Dummy()
	c.Retry()
	c.End()
	if r := c.Snapshot(9); r.Committed != 0 {
		t.Errorf("nil collector recorded: %+v", r)
	}
}

func TestSnapshotWithoutEndUsesNow(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	c.TxnCommitted(txid(1), time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	r := c.Snapshot(1)
	if r.Elapsed < 4*time.Millisecond {
		t.Errorf("elapsed = %v", r.Elapsed)
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := NewCollector(true)
	c.Begin()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := model.TxnID{Site: model.SiteID(g), Seq: uint64(i + 1)}
				c.TxnCommitted(id, time.Microsecond)
				c.SecondaryApplied(id)
				c.MsgSent(1)
			}
		}(g)
	}
	wg.Wait()
	r := c.Snapshot(8)
	if r.Committed != 1600 || r.Messages != 1600 || r.Secondaries != 1600 {
		t.Errorf("lost updates: %+v", r)
	}
}

func TestReportString(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	c.TxnCommitted(txid(1), time.Millisecond)
	s := c.Snapshot(1).String()
	if s == "" {
		t.Error("empty report string")
	}
}
