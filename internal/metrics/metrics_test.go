package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

func txid(n uint64) model.TxnID { return model.TxnID{Site: 0, Seq: n} }

func TestThroughputAndAbortRate(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	for i := 0; i < 30; i++ {
		c.TxnCommitted(txid(uint64(i+1)), time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		c.TxnAborted()
	}
	time.Sleep(20 * time.Millisecond)
	c.End()
	r := c.Snapshot(3)
	if r.Committed != 30 || r.Aborted != 10 {
		t.Errorf("counts = %d/%d", r.Committed, r.Aborted)
	}
	if r.AbortRate != 25 {
		t.Errorf("abort rate = %v, want 25%%", r.AbortRate)
	}
	wantTPS := float64(30) / r.Elapsed.Seconds() / 3
	if diff := r.ThroughputPerSite - wantTPS; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("throughput = %v, want %v", r.ThroughputPerSite, wantTPS)
	}
}

func TestResponseStats(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	for i := 1; i <= 100; i++ {
		c.TxnCommitted(txid(uint64(i)), time.Duration(i)*time.Millisecond)
	}
	r := c.Snapshot(1)
	if r.MeanResponse != 50500*time.Microsecond {
		t.Errorf("mean = %v", r.MeanResponse)
	}
	if r.P50Response != 50*time.Millisecond {
		t.Errorf("p50 = %v", r.P50Response)
	}
	if r.P95Response != 95*time.Millisecond {
		t.Errorf("p95 = %v", r.P95Response)
	}
	if r.MaxResponse != 100*time.Millisecond {
		t.Errorf("max = %v", r.MaxResponse)
	}
}

func TestPropagationDelay(t *testing.T) {
	c := NewCollector(true)
	c.Begin()
	c.TxnCommitted(txid(1), time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	c.SecondaryApplied(txid(1))
	c.SecondaryApplied(txid(99)) // unknown primary: no sample
	r := c.Snapshot(1)
	if r.Secondaries != 2 {
		t.Errorf("secondaries = %d", r.Secondaries)
	}
	if r.MeanPropDelay < 8*time.Millisecond {
		t.Errorf("prop delay = %v, want ~10ms", r.MeanPropDelay)
	}
}

func TestPropagationDisabled(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	c.TxnCommitted(txid(1), time.Millisecond)
	c.SecondaryApplied(txid(1))
	if r := c.Snapshot(1); r.MeanPropDelay != 0 {
		t.Errorf("prop delay tracked while disabled: %v", r.MeanPropDelay)
	}
}

func TestCounters(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	c.MsgSent(3)
	c.MsgSent(2)
	c.RemoteRead()
	c.Dummy()
	c.Retry()
	r := c.Snapshot(1)
	if r.Messages != 5 || r.RemoteReads != 1 || r.Dummies != 1 || r.Retries != 1 {
		t.Errorf("counters = %+v", r)
	}
}

func TestNilCollectorIsNoop(t *testing.T) {
	var c *Collector
	c.Begin()
	c.TxnCommitted(txid(1), time.Second)
	c.TxnAborted()
	c.SecondaryApplied(txid(1))
	c.MsgSent(1)
	c.RemoteRead()
	c.Dummy()
	c.Retry()
	c.End()
	if r := c.Snapshot(9); r.Committed != 0 {
		t.Errorf("nil collector recorded: %+v", r)
	}
}

func TestSnapshotWithoutEndUsesNow(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	c.TxnCommitted(txid(1), time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	r := c.Snapshot(1)
	if r.Elapsed < 4*time.Millisecond {
		t.Errorf("elapsed = %v", r.Elapsed)
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := NewCollector(true)
	c.Begin()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := model.TxnID{Site: model.SiteID(g), Seq: uint64(i + 1)}
				c.TxnCommitted(id, time.Microsecond)
				c.SecondaryApplied(id)
				c.MsgSent(1)
			}
		}(g)
	}
	wg.Wait()
	r := c.Snapshot(8)
	if r.Committed != 1600 || r.Messages != 1600 || r.Secondaries != 1600 {
		t.Errorf("lost updates: %+v", r)
	}
}

func TestReportString(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	c.TxnCommitted(txid(1), time.Millisecond)
	s := c.Snapshot(1).String()
	if s == "" {
		t.Error("empty report string")
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	var d durStats
	if got := d.percentile(0.95); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	d.add(7 * time.Millisecond)
	for _, p := range []float64{-1, 0, 0.5, 0.95, 1, 2} {
		if got := d.percentile(p); got != 7*time.Millisecond {
			t.Errorf("single-sample percentile(%v) = %v, want the sample", p, got)
		}
	}
	d.add(1 * time.Millisecond)
	d.add(3 * time.Millisecond)
	if got := d.percentile(-1); got != time.Millisecond {
		t.Errorf("percentile(-1) = %v, want the minimum", got)
	}
	if got := d.percentile(2); got != 7*time.Millisecond {
		t.Errorf("percentile(2) = %v, want the maximum", got)
	}
	if got := d.percentile(0.5); got != 3*time.Millisecond {
		t.Errorf("percentile(0.5) = %v, want the median", got)
	}
}

func TestSnapshotSingleSample(t *testing.T) {
	c := NewCollector(true)
	c.Begin()
	c.TxnCommitted(txid(1), 5*time.Millisecond)
	c.SecondaryApplied(txid(1))
	c.End()
	r := c.Snapshot(1)
	if r.P50Response != 5*time.Millisecond || r.P95Response != 5*time.Millisecond {
		t.Errorf("single-sample response percentiles = %v/%v, want the sample", r.P50Response, r.P95Response)
	}
	if r.P95PropDelay == 0 || r.P95PropDelay != r.MaxPropDelay {
		t.Errorf("single-sample propagation p95 = %v, max = %v", r.P95PropDelay, r.MaxPropDelay)
	}
}

func TestReportJSON(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	c.TxnCommitted(txid(1), time.Millisecond)
	c.TxnAborted()
	c.End()
	b, err := c.Snapshot(1).JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Committed != 1 || back.Aborted != 1 || back.MeanResponse != time.Millisecond {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

// TestReportJSONFieldNamesFrozen pins the Report JSON schema: BENCH_*.json
// snapshots, the replwatch HTTP export, and downstream tooling all parse
// these keys, so removing or renaming one is a breaking change. New fields
// may be appended; add them to the frozen list here when they land.
func TestReportJSONFieldNamesFrozen(t *testing.T) {
	frozen := []string{
		"Elapsed", "Committed", "Aborted", "ThroughputPerSite", "AbortRate",
		"MeanResponse", "P50Response", "P95Response", "MaxResponse",
		"MeanPropDelay", "P95PropDelay", "MaxPropDelay", "P99Response",
		"Messages", "RemoteReads", "Secondaries", "Dummies", "Retries",
		"Phases",
	}
	r := Report{Phases: map[string]PhaseStats{PhaseLockWait.String(): {Count: 1}}}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(b, &keys); err != nil {
		t.Fatalf("unmarshal keys: %v", err)
	}
	for _, name := range frozen {
		if _, ok := keys[name]; !ok {
			t.Errorf("Report JSON lost frozen field %q: renaming or removing it breaks consumers of the snapshot schema", name)
		}
		delete(keys, name)
	}
	for name := range keys {
		t.Errorf("Report JSON gained field %q: append it to the frozen list to pin it", name)
	}
}

// TestPhaseSample exercises the phase-attribution path: samples land in
// the right bucket, negative durations are clamped, unknown phases and
// nil collectors are dropped, and Snapshot exposes only non-empty phases.
func TestPhaseSample(t *testing.T) {
	var nilC *Collector
	nilC.PhaseSample(PhaseLockWait, time.Millisecond) // must not panic

	c := NewCollector(false)
	c.Begin()
	c.PhaseSample(PhaseLockWait, 2*time.Millisecond)
	c.PhaseSample(PhaseLockWait, 4*time.Millisecond)
	c.PhaseSample(PhaseApply, -time.Second) // clamps to 0
	c.PhaseSample(Phase(250), time.Second)  // out of range: dropped
	c.End()
	r := c.Snapshot(1)

	lw, ok := r.Phases[PhaseLockWait.String()]
	if !ok || lw.Count != 2 {
		t.Fatalf("lock_wait phase = %+v, ok=%v; want 2 samples", lw, ok)
	}
	if lw.Max != 4*time.Millisecond || lw.Total != 6*time.Millisecond {
		t.Errorf("lock_wait max/total = %v/%v, want 4ms/6ms", lw.Max, lw.Total)
	}
	if ap := r.Phases[PhaseApply.String()]; ap.Count != 1 || ap.Max != 0 {
		t.Errorf("apply phase = %+v, want one clamped-to-zero sample", ap)
	}
	if _, ok := r.Phases[PhaseQueueWait.String()]; ok {
		t.Errorf("empty phase %s should be omitted from the report", PhaseQueueWait)
	}
	for _, p := range Phases() {
		if p.String() == "" {
			t.Errorf("phase %d has no name", p)
		}
	}
}
