package metrics

import (
	"encoding/json"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

func txid(n uint64) model.TxnID { return model.TxnID{Site: 0, Seq: n} }

func TestThroughputAndAbortRate(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	for i := 0; i < 30; i++ {
		c.TxnCommitted(txid(uint64(i+1)), time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		c.TxnAborted()
	}
	time.Sleep(20 * time.Millisecond)
	c.End()
	r := c.Snapshot(3)
	if r.Committed != 30 || r.Aborted != 10 {
		t.Errorf("counts = %d/%d", r.Committed, r.Aborted)
	}
	if r.AbortRate != 25 {
		t.Errorf("abort rate = %v, want 25%%", r.AbortRate)
	}
	wantTPS := float64(30) / r.Elapsed.Seconds() / 3
	if diff := r.ThroughputPerSite - wantTPS; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("throughput = %v, want %v", r.ThroughputPerSite, wantTPS)
	}
}

func TestResponseStats(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	for i := 1; i <= 100; i++ {
		c.TxnCommitted(txid(uint64(i)), time.Duration(i)*time.Millisecond)
	}
	r := c.Snapshot(1)
	if r.MeanResponse != 50500*time.Microsecond {
		t.Errorf("mean = %v", r.MeanResponse)
	}
	if r.P50Response != 50*time.Millisecond {
		t.Errorf("p50 = %v", r.P50Response)
	}
	if r.P95Response != 95*time.Millisecond {
		t.Errorf("p95 = %v", r.P95Response)
	}
	if r.MaxResponse != 100*time.Millisecond {
		t.Errorf("max = %v", r.MaxResponse)
	}
}

func TestPropagationDelay(t *testing.T) {
	c := NewCollector(true)
	c.Begin()
	c.TxnCommitted(txid(1), time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	c.SecondaryApplied(txid(1))
	c.SecondaryApplied(txid(99)) // unknown primary: no sample
	r := c.Snapshot(1)
	if r.Secondaries != 2 {
		t.Errorf("secondaries = %d", r.Secondaries)
	}
	if r.MeanPropDelay < 8*time.Millisecond {
		t.Errorf("prop delay = %v, want ~10ms", r.MeanPropDelay)
	}
}

func TestPropagationDisabled(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	c.TxnCommitted(txid(1), time.Millisecond)
	c.SecondaryApplied(txid(1))
	if r := c.Snapshot(1); r.MeanPropDelay != 0 {
		t.Errorf("prop delay tracked while disabled: %v", r.MeanPropDelay)
	}
}

func TestCounters(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	c.MsgSent(3)
	c.MsgSent(2)
	c.RemoteRead()
	c.Dummy()
	c.Retry()
	r := c.Snapshot(1)
	if r.Messages != 5 || r.RemoteReads != 1 || r.Dummies != 1 || r.Retries != 1 {
		t.Errorf("counters = %+v", r)
	}
}

func TestNilCollectorIsNoop(t *testing.T) {
	var c *Collector
	c.Begin()
	c.TxnCommitted(txid(1), time.Second)
	c.TxnAborted()
	c.SecondaryApplied(txid(1))
	c.MsgSent(1)
	c.RemoteRead()
	c.Dummy()
	c.Retry()
	c.End()
	if r := c.Snapshot(9); r.Committed != 0 {
		t.Errorf("nil collector recorded: %+v", r)
	}
}

func TestSnapshotWithoutEndUsesNow(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	c.TxnCommitted(txid(1), time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	r := c.Snapshot(1)
	if r.Elapsed < 4*time.Millisecond {
		t.Errorf("elapsed = %v", r.Elapsed)
	}
}

func TestConcurrentRecording(t *testing.T) {
	c := NewCollector(true)
	c.Begin()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := model.TxnID{Site: model.SiteID(g), Seq: uint64(i + 1)}
				c.TxnCommitted(id, time.Microsecond)
				c.SecondaryApplied(id)
				c.MsgSent(1)
			}
		}(g)
	}
	wg.Wait()
	r := c.Snapshot(8)
	if r.Committed != 1600 || r.Messages != 1600 || r.Secondaries != 1600 {
		t.Errorf("lost updates: %+v", r)
	}
}

func TestReportString(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	c.TxnCommitted(txid(1), time.Millisecond)
	s := c.Snapshot(1).String()
	if s == "" {
		t.Error("empty report string")
	}
}

func TestPercentileEdgeCases(t *testing.T) {
	var d durStats
	if got := d.percentile(0.95); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
	d.add(7 * time.Millisecond)
	for _, p := range []float64{-1, 0, 0.5, 0.95, 1, 2} {
		if got := d.percentile(p); got != 7*time.Millisecond {
			t.Errorf("single-sample percentile(%v) = %v, want the sample", p, got)
		}
	}
	d.add(1 * time.Millisecond)
	d.add(3 * time.Millisecond)
	if got := d.percentile(-1); got != time.Millisecond {
		t.Errorf("percentile(-1) = %v, want the minimum", got)
	}
	if got := d.percentile(2); got != 7*time.Millisecond {
		t.Errorf("percentile(2) = %v, want the maximum", got)
	}
	if got := d.percentile(0.5); got != 3*time.Millisecond {
		t.Errorf("percentile(0.5) = %v, want the median", got)
	}
}

func TestSnapshotSingleSample(t *testing.T) {
	c := NewCollector(true)
	c.Begin()
	c.TxnCommitted(txid(1), 5*time.Millisecond)
	c.SecondaryApplied(txid(1))
	c.End()
	r := c.Snapshot(1)
	if r.P50Response != 5*time.Millisecond || r.P95Response != 5*time.Millisecond {
		t.Errorf("single-sample response percentiles = %v/%v, want the sample", r.P50Response, r.P95Response)
	}
	if r.P95PropDelay == 0 || r.P95PropDelay != r.MaxPropDelay {
		t.Errorf("single-sample propagation p95 = %v, max = %v", r.P95PropDelay, r.MaxPropDelay)
	}
}

func TestReportJSON(t *testing.T) {
	c := NewCollector(false)
	c.Begin()
	c.TxnCommitted(txid(1), time.Millisecond)
	c.TxnAborted()
	c.End()
	b, err := c.Snapshot(1).JSON()
	if err != nil {
		t.Fatalf("JSON: %v", err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Committed != 1 || back.Aborted != 1 || back.MeanResponse != time.Millisecond {
		t.Errorf("round trip lost fields: %+v", back)
	}
}
