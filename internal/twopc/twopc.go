// Package twopc implements the distributed atomic-commit protocol the
// BackEdge protocol uses in step 3 of §4.1: a primary subtransaction and
// its backedge subtransactions, spread over several sites and all holding
// their locks, must commit atomically. The coordinator (the transaction's
// origin site) runs classic two-phase commit; participants are the
// backedge sites, which have already executed and therefore vote yes
// unless they were aborted in the meantime.
//
// The package is transport-agnostic: the engine supplies Prepare/Decide
// callbacks that speak its RPC layer. A participant-side state table
// enforces the legal transitions and is shared by tests.
package twopc

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/model"
)

// ErrNoVote marks an atomic-commit round that decided abort because some
// participant voted no (or its vote was lost and counted as no). Engines
// wrap it into the abort error they surface, so the contention
// observatory's root-cause taxonomy can tell a 2PC abort from a lock
// timeout without parsing message text.
var ErrNoVote = errors.New("twopc: participant voted no")

// Coordinator supplies the per-participant communication callbacks. The
// span context of the coordinating work is passed through to each
// callback so every vote and decision message joins the originating
// transaction's causal tree.
type Coordinator struct {
	// Prepare asks a participant to prepare tid and returns its vote.
	// An error (timeout, site unreachable) counts as a no vote.
	Prepare func(p model.SiteID, tid model.TxnID, sc model.SpanContext) (bool, error)
	// Decide delivers the decision to a participant and waits for its ack.
	Decide func(p model.SiteID, tid model.TxnID, commit bool, sc model.SpanContext) error
	// Log, if non-nil, durably records the decision before phase 2 begins,
	// so participants that miss the decision can recover by inquiry.
	Log *DecisionLog
}

// DecisionLog is the coordinator's stable decision record: the commit or
// abort outcome of every transaction it has decided, written before any
// participant learns it. A participant stuck in the prepared state after
// losing the phase-2 message (network fault, coordinator crash between
// the decision and its delivery) resolves by asking the coordinator,
// which answers from this log. The in-process heap stands in for the
// coordinator's disk: a crashed site keeps its log across restart, which
// is exactly the durability classic 2PC requires of the decision record.
//
// Entries are retained for the life of the log: the coordinator can never
// know that no participant will inquire again, and a missing entry must
// keep meaning "not decided yet", never "decided and forgotten".
type DecisionLog struct {
	mu   sync.Mutex
	m    map[model.TxnID]bool                     // repl:guardedby(mu)
	sink func(tid model.TxnID, commit bool) error // repl:guardedby(mu)
}

// NewDecisionLog returns an empty decision log.
func NewDecisionLog() *DecisionLog {
	return &DecisionLog{m: make(map[model.TxnID]bool)}
}

// SetSink installs the persistence hook Record drives: typically a
// closure appending the decision to the site's write-ahead log and
// waiting for the group commit. With a sink installed, the in-memory map
// caches what the sink made durable; without one the map itself is the
// log (the pre-WAL in-process stand-in).
func (l *DecisionLog) SetSink(sink func(tid model.TxnID, commit bool) error) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = sink
	l.mu.Unlock()
}

// Seed pre-loads a recovered decision without driving the sink — it is
// already durable; that is where it was recovered from.
func (l *DecisionLog) Seed(tid model.TxnID, commit bool) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if _, ok := l.m[tid]; !ok {
		l.m[tid] = commit
	}
	l.mu.Unlock()
}

// Record writes tid's decision, driving the persistence sink first when
// one is installed. The first successful record wins; a decision, once
// logged, never changes. An error means the decision is NOT durable and
// must not be acted on (the coordinator's site is crashing).
func (l *DecisionLog) Record(tid model.TxnID, commit bool) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.m[tid]; ok {
		return nil
	}
	if l.sink != nil {
		if err := l.sink(tid, commit); err != nil {
			return err
		}
	}
	l.m[tid] = commit
	return nil
}

// Lookup returns tid's decision and whether one has been recorded.
func (l *DecisionLog) Lookup(tid model.TxnID) (commit, known bool) {
	if l == nil {
		return false, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	commit, known = l.m[tid]
	return commit, known
}

// Run executes two-phase commit for tid over the participants, stamping
// sc on every callback. It returns whether the transaction committed,
// plus the first decision-delivery error. The decision itself stands
// regardless of delivery errors: it is recorded in c.Log before phase 2
// starts, and a participant that missed it recovers by asking the
// coordinator, which answers from that log (see DecisionLog).
func Run(tid model.TxnID, participants []model.SiteID, c Coordinator, sc model.SpanContext) (bool, error) {
	if len(participants) == 0 {
		return true, nil
	}
	// Phase 1: collect votes in parallel.
	votes := make([]bool, len(participants))
	var wg sync.WaitGroup
	for i, p := range participants {
		wg.Add(1)
		go func(i int, p model.SiteID) {
			defer wg.Done()
			ok, err := c.Prepare(p, tid, sc)
			votes[i] = ok && err == nil
		}(i, p)
	}
	wg.Wait()
	commit := true
	for _, v := range votes {
		if !v {
			commit = false
			break
		}
	}
	// The decision point: log it before any participant can learn it, so
	// an inquiry after a lost phase-2 message (or a coordinator crash and
	// restart) always finds the recorded outcome. If the record cannot be
	// made durable the decision never happened — report abort and skip
	// phase 2; participants resolve by inquiry, which finds no decision
	// and presumes abort.
	if err := c.Log.Record(tid, commit); err != nil {
		return false, fmt.Errorf("twopc: decision record: %w", err)
	}
	// Phase 2: deliver the decision in parallel.
	errs := make([]error, len(participants))
	for i, p := range participants {
		wg.Add(1)
		go func(i int, p model.SiteID) {
			defer wg.Done()
			errs[i] = c.Decide(p, tid, commit, sc)
		}(i, p)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return commit, fmt.Errorf("twopc: decision delivery: %w", err)
		}
	}
	return commit, nil
}

// State is a participant-side transaction state.
type State int

const (
	// StateWorking means the subtransaction is executing (locks being
	// acquired, writes buffered).
	StateWorking State = iota
	// StatePrepared means the participant voted yes and awaits a decision.
	StatePrepared
	// StateCommitted is terminal.
	StateCommitted
	// StateAborted is terminal.
	StateAborted
)

func (s State) String() string {
	switch s {
	case StateWorking:
		return "working"
	case StatePrepared:
		return "prepared"
	case StateCommitted:
		return "committed"
	default:
		return "aborted"
	}
}

// Table tracks participant-side transaction states and validates
// transitions. All methods are safe for concurrent use.
type Table struct {
	mu sync.Mutex
	m  map[model.TxnID]State // repl:guardedby(mu)
}

// NewTable returns an empty state table.
func NewTable() *Table {
	return &Table{m: make(map[model.TxnID]State)}
}

// Begin registers tid as working. Registering a known tid is an error.
func (t *Table) Begin(tid model.TxnID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.m[tid]; ok {
		return fmt.Errorf("twopc: %v already %v", tid, s)
	}
	t.m[tid] = StateWorking
	return nil
}

// Prepare moves tid from working to prepared and returns the yes vote;
// if tid was already aborted (a racing abort won) — or was never
// registered at all, which after a participant crash means its execution
// was wiped with the heap — the vote is no. Voting yes for an unknown
// tid would promise an installation this site cannot deliver.
func (t *Table) Prepare(tid model.TxnID) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[tid]
	if !ok {
		return false
	}
	switch s {
	case StateWorking:
		t.m[tid] = StatePrepared
		return true
	default:
		return false
	}
}

// Finish moves tid to its terminal state and reports whether the caller
// should act (install or roll back); a second Finish is a no-op.
func (t *Table) Finish(tid model.TxnID, commit bool) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := t.m[tid]
	if s == StateCommitted || s == StateAborted {
		return false
	}
	if commit {
		t.m[tid] = StateCommitted
	} else {
		t.m[tid] = StateAborted
	}
	return true
}

// State returns tid's current state and whether it is known.
func (t *Table) State(tid model.TxnID) (State, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[tid]
	return s, ok
}

// Aborted reports whether tid has been aborted.
func (t *Table) Aborted(tid model.TxnID) bool {
	s, ok := t.State(tid)
	return ok && s == StateAborted
}

// Forget drops a terminal tid from the table (bounding memory in long
// runs). Forgetting a live transaction is an error.
func (t *Table) Forget(tid model.TxnID) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	switch t.m[tid] {
	case StateCommitted, StateAborted:
		delete(t.m, tid)
		return nil
	default:
		return fmt.Errorf("twopc: cannot forget live %v", tid)
	}
}
