package twopc

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/model"
)

func txid(n uint64) model.TxnID { return model.TxnID{Site: 0, Seq: n} }

// fakeParticipants simulates a set of participant sites with scripted
// votes.
type fakeParticipants struct {
	mu       sync.Mutex
	votes    map[model.SiteID]bool
	prepared map[model.SiteID]bool
	decided  map[model.SiteID]bool
	decision map[model.SiteID]bool
}

func newFake(votes map[model.SiteID]bool) *fakeParticipants {
	return &fakeParticipants{
		votes:    votes,
		prepared: make(map[model.SiteID]bool),
		decided:  make(map[model.SiteID]bool),
		decision: make(map[model.SiteID]bool),
	}
}

func (f *fakeParticipants) coordinator() Coordinator {
	return Coordinator{
		Prepare: func(p model.SiteID, _ model.TxnID, _ model.SpanContext) (bool, error) {
			f.mu.Lock()
			defer f.mu.Unlock()
			f.prepared[p] = true
			return f.votes[p], nil
		},
		Decide: func(p model.SiteID, _ model.TxnID, commit bool, _ model.SpanContext) error {
			f.mu.Lock()
			defer f.mu.Unlock()
			f.decided[p] = true
			f.decision[p] = commit
			return nil
		},
	}
}

func TestRunCommitsOnUnanimousYes(t *testing.T) {
	parts := []model.SiteID{1, 2, 3}
	f := newFake(map[model.SiteID]bool{1: true, 2: true, 3: true})
	committed, err := Run(txid(1), parts, f.coordinator(), model.SpanContext{})
	if err != nil || !committed {
		t.Fatalf("committed=%v err=%v", committed, err)
	}
	for _, p := range parts {
		if !f.prepared[p] || !f.decided[p] || !f.decision[p] {
			t.Errorf("participant %d: prepared=%v decided=%v decision=%v",
				p, f.prepared[p], f.decided[p], f.decision[p])
		}
	}
}

func TestRunAbortsOnAnyNo(t *testing.T) {
	parts := []model.SiteID{1, 2}
	f := newFake(map[model.SiteID]bool{1: true, 2: false})
	committed, err := Run(txid(1), parts, f.coordinator(), model.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("committed despite a no vote")
	}
	// Every participant still receives the (abort) decision.
	for _, p := range parts {
		if !f.decided[p] || f.decision[p] {
			t.Errorf("participant %d missing abort decision", p)
		}
	}
}

func TestRunAbortsOnPrepareError(t *testing.T) {
	c := Coordinator{
		Prepare: func(p model.SiteID, _ model.TxnID, _ model.SpanContext) (bool, error) {
			if p == 2 {
				return true, errors.New("unreachable")
			}
			return true, nil
		},
		Decide: func(model.SiteID, model.TxnID, bool, model.SpanContext) error { return nil },
	}
	committed, err := Run(txid(1), []model.SiteID{1, 2}, c, model.SpanContext{})
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("a prepare error must count as a no vote")
	}
}

func TestRunNoParticipantsCommits(t *testing.T) {
	committed, err := Run(txid(1), nil, Coordinator{}, model.SpanContext{})
	if err != nil || !committed {
		t.Fatalf("empty participant set: committed=%v err=%v", committed, err)
	}
}

func TestRunReportsDecisionDeliveryError(t *testing.T) {
	c := Coordinator{
		Prepare: func(model.SiteID, model.TxnID, model.SpanContext) (bool, error) { return true, nil },
		Decide:  func(model.SiteID, model.TxnID, bool, model.SpanContext) error { return errors.New("lost") },
	}
	committed, err := Run(txid(1), []model.SiteID{1}, c, model.SpanContext{})
	if !committed {
		t.Fatal("the decision stands even if delivery fails")
	}
	if err == nil {
		t.Fatal("delivery failure not reported")
	}
}

func TestTableLifecycle(t *testing.T) {
	tb := NewTable()
	id := txid(1)
	if err := tb.Begin(id); err != nil {
		t.Fatal(err)
	}
	if err := tb.Begin(id); err == nil {
		t.Error("double Begin accepted")
	}
	if !tb.Prepare(id) {
		t.Error("Prepare of working txn voted no")
	}
	if s, _ := tb.State(id); s != StatePrepared {
		t.Errorf("state = %v", s)
	}
	if !tb.Finish(id, true) {
		t.Error("Finish reported no action")
	}
	if tb.Finish(id, true) {
		t.Error("second Finish reported action")
	}
	if s, _ := tb.State(id); s != StateCommitted {
		t.Errorf("state = %v", s)
	}
	if err := tb.Forget(id); err != nil {
		t.Errorf("Forget: %v", err)
	}
	if _, known := tb.State(id); known {
		t.Error("forgotten txn still known")
	}
}

func TestTableAbortTombstone(t *testing.T) {
	tb := NewTable()
	id := txid(2)
	// Abort arrives before the subtransaction ever begins.
	if !tb.Finish(id, false) {
		t.Fatal("tombstoning unknown txn reported no action")
	}
	if !tb.Aborted(id) {
		t.Fatal("tombstone not visible")
	}
	if err := tb.Begin(id); err == nil {
		t.Error("Begin after tombstone accepted")
	}
	if tb.Prepare(id) {
		t.Error("Prepare after abort voted yes")
	}
}

func TestTableForgetLiveRejected(t *testing.T) {
	tb := NewTable()
	id := txid(3)
	_ = tb.Begin(id)
	if err := tb.Forget(id); err == nil {
		t.Error("Forget of a live txn accepted")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateWorking: "working", StatePrepared: "prepared",
		StateCommitted: "committed", StateAborted: "aborted",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}

func TestDecisionLogFirstRecordWins(t *testing.T) {
	l := NewDecisionLog()
	if _, known := l.Lookup(txid(1)); known {
		t.Fatal("empty log knows a decision")
	}
	l.Record(txid(1), true)
	l.Record(txid(1), false) // must not overwrite
	commit, known := l.Lookup(txid(1))
	if !known || !commit {
		t.Fatalf("got commit=%v known=%v, want commit recorded once", commit, known)
	}
}

func TestDecisionLogNilSafe(t *testing.T) {
	var l *DecisionLog
	l.Record(txid(1), true)
	if _, known := l.Lookup(txid(1)); known {
		t.Fatal("nil log knows a decision")
	}
}

// TestRunLogsDecisionBeforeDelivery pins the recovery invariant: by the
// time any participant receives the phase-2 message, the decision is
// already in the coordinator's log — so a participant that misses the
// message can always find it by inquiry.
func TestRunLogsDecisionBeforeDelivery(t *testing.T) {
	log := NewDecisionLog()
	var missed atomic.Bool
	c := Coordinator{
		Prepare: func(model.SiteID, model.TxnID, model.SpanContext) (bool, error) { return true, nil },
		Decide: func(_ model.SiteID, tid model.TxnID, commit bool, _ model.SpanContext) error {
			got, known := log.Lookup(tid)
			if !known || got != commit {
				missed.Store(true)
			}
			return nil
		},
		Log: log,
	}
	commit, err := Run(txid(9), []model.SiteID{1, 2}, c, model.SpanContext{})
	if err != nil || !commit {
		t.Fatalf("commit=%v err=%v", commit, err)
	}
	if missed.Load() {
		t.Fatal("a participant saw the decision before it was logged")
	}
	if got, known := log.Lookup(txid(9)); !known || !got {
		t.Fatal("decision missing from the log after Run")
	}
}

// TestRunLogsAbortDecision covers the no-vote path.
func TestRunLogsAbortDecision(t *testing.T) {
	log := NewDecisionLog()
	f := newFake(map[model.SiteID]bool{1: true, 2: false})
	c := f.coordinator()
	c.Log = log
	commit, err := Run(txid(3), []model.SiteID{1, 2}, c, model.SpanContext{})
	if err != nil || commit {
		t.Fatalf("commit=%v err=%v, want abort", commit, err)
	}
	if got, known := log.Lookup(txid(3)); !known || got {
		t.Fatalf("abort not logged (known=%v commit=%v)", known, got)
	}
}
