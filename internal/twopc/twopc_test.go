package twopc

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/model"
)

func txid(n uint64) model.TxnID { return model.TxnID{Site: 0, Seq: n} }

// fakeParticipants simulates a set of participant sites with scripted
// votes.
type fakeParticipants struct {
	mu       sync.Mutex
	votes    map[model.SiteID]bool
	prepared map[model.SiteID]bool
	decided  map[model.SiteID]bool
	decision map[model.SiteID]bool
}

func newFake(votes map[model.SiteID]bool) *fakeParticipants {
	return &fakeParticipants{
		votes:    votes,
		prepared: make(map[model.SiteID]bool),
		decided:  make(map[model.SiteID]bool),
		decision: make(map[model.SiteID]bool),
	}
}

func (f *fakeParticipants) coordinator() Coordinator {
	return Coordinator{
		Prepare: func(p model.SiteID, _ model.TxnID) (bool, error) {
			f.mu.Lock()
			defer f.mu.Unlock()
			f.prepared[p] = true
			return f.votes[p], nil
		},
		Decide: func(p model.SiteID, _ model.TxnID, commit bool) error {
			f.mu.Lock()
			defer f.mu.Unlock()
			f.decided[p] = true
			f.decision[p] = commit
			return nil
		},
	}
}

func TestRunCommitsOnUnanimousYes(t *testing.T) {
	parts := []model.SiteID{1, 2, 3}
	f := newFake(map[model.SiteID]bool{1: true, 2: true, 3: true})
	committed, err := Run(txid(1), parts, f.coordinator())
	if err != nil || !committed {
		t.Fatalf("committed=%v err=%v", committed, err)
	}
	for _, p := range parts {
		if !f.prepared[p] || !f.decided[p] || !f.decision[p] {
			t.Errorf("participant %d: prepared=%v decided=%v decision=%v",
				p, f.prepared[p], f.decided[p], f.decision[p])
		}
	}
}

func TestRunAbortsOnAnyNo(t *testing.T) {
	parts := []model.SiteID{1, 2}
	f := newFake(map[model.SiteID]bool{1: true, 2: false})
	committed, err := Run(txid(1), parts, f.coordinator())
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("committed despite a no vote")
	}
	// Every participant still receives the (abort) decision.
	for _, p := range parts {
		if !f.decided[p] || f.decision[p] {
			t.Errorf("participant %d missing abort decision", p)
		}
	}
}

func TestRunAbortsOnPrepareError(t *testing.T) {
	c := Coordinator{
		Prepare: func(p model.SiteID, _ model.TxnID) (bool, error) {
			if p == 2 {
				return true, errors.New("unreachable")
			}
			return true, nil
		},
		Decide: func(model.SiteID, model.TxnID, bool) error { return nil },
	}
	committed, err := Run(txid(1), []model.SiteID{1, 2}, c)
	if err != nil {
		t.Fatal(err)
	}
	if committed {
		t.Fatal("a prepare error must count as a no vote")
	}
}

func TestRunNoParticipantsCommits(t *testing.T) {
	committed, err := Run(txid(1), nil, Coordinator{})
	if err != nil || !committed {
		t.Fatalf("empty participant set: committed=%v err=%v", committed, err)
	}
}

func TestRunReportsDecisionDeliveryError(t *testing.T) {
	c := Coordinator{
		Prepare: func(model.SiteID, model.TxnID) (bool, error) { return true, nil },
		Decide:  func(model.SiteID, model.TxnID, bool) error { return errors.New("lost") },
	}
	committed, err := Run(txid(1), []model.SiteID{1}, c)
	if !committed {
		t.Fatal("the decision stands even if delivery fails")
	}
	if err == nil {
		t.Fatal("delivery failure not reported")
	}
}

func TestTableLifecycle(t *testing.T) {
	tb := NewTable()
	id := txid(1)
	if err := tb.Begin(id); err != nil {
		t.Fatal(err)
	}
	if err := tb.Begin(id); err == nil {
		t.Error("double Begin accepted")
	}
	if !tb.Prepare(id) {
		t.Error("Prepare of working txn voted no")
	}
	if s, _ := tb.State(id); s != StatePrepared {
		t.Errorf("state = %v", s)
	}
	if !tb.Finish(id, true) {
		t.Error("Finish reported no action")
	}
	if tb.Finish(id, true) {
		t.Error("second Finish reported action")
	}
	if s, _ := tb.State(id); s != StateCommitted {
		t.Errorf("state = %v", s)
	}
	if err := tb.Forget(id); err != nil {
		t.Errorf("Forget: %v", err)
	}
	if _, known := tb.State(id); known {
		t.Error("forgotten txn still known")
	}
}

func TestTableAbortTombstone(t *testing.T) {
	tb := NewTable()
	id := txid(2)
	// Abort arrives before the subtransaction ever begins.
	if !tb.Finish(id, false) {
		t.Fatal("tombstoning unknown txn reported no action")
	}
	if !tb.Aborted(id) {
		t.Fatal("tombstone not visible")
	}
	if err := tb.Begin(id); err == nil {
		t.Error("Begin after tombstone accepted")
	}
	if tb.Prepare(id) {
		t.Error("Prepare after abort voted yes")
	}
}

func TestTableForgetLiveRejected(t *testing.T) {
	tb := NewTable()
	id := txid(3)
	_ = tb.Begin(id)
	if err := tb.Forget(id); err == nil {
		t.Error("Forget of a live txn accepted")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{
		StateWorking: "working", StatePrepared: "prepared",
		StateCommitted: "committed", StateAborted: "aborted",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q", s, s.String())
		}
	}
}
