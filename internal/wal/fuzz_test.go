package wal

import (
	"bytes"
	"testing"

	"repro/internal/model"
	"repro/internal/ts"
)

// FuzzWALDecode holds ReadRecords to its contract on arbitrary bytes: it
// never panics, every record it does return round-trips its frame
// checksum, and decoding stops cleanly at the first torn or corrupt
// frame — truncating or bit-flipping a valid log yields a prefix of the
// original record sequence, never garbage records.
func FuzzWALDecode(f *testing.F) {
	// Seed with a realistic log so mutations explore framed space, not
	// just noise.
	var valid []byte
	recs := []Record{
		{Kind: KindBoot, Incarnation: 3},
		{Kind: KindReceipt, TID: model.TxnID{Site: 1, Seq: 9}, From: 2, MsgKind: 1,
			Writes: []model.WriteOp{{Item: 4, Value: -7}}, TS: ts.New(1)},
		{Kind: KindApply, TID: model.TxnID{Site: 1, Seq: 9}, Role: RoleSecondary,
			Consumes: true, Forwards: true,
			Writes: []model.WriteOp{{Item: 4, Value: -7}, {Item: 5, Value: 12}}},
		{Kind: KindDecision, TID: model.TxnID{Site: 0, Seq: 2}, Commit: true},
		{Kind: KindRLock, TID: model.TxnID{Site: 2, Seq: 1}, Item: 8},
	}
	for i := range recs {
		var err error
		valid, err = encodeFrame(valid, &recs[i])
		if err != nil {
			f.Fatal(err)
		}
	}
	f.Add(valid)
	for cut := 1; cut < len(valid); cut += 13 {
		f.Add(valid[:cut]) // torn tails at assorted offsets
	}
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/2] ^= 0x40
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}) // implausible length

	f.Fuzz(func(t *testing.T, data []byte) {
		out := ReadRecords(bytes.NewReader(data)) // must not panic
		for i := range out {
			if _, known := kindNames[out[i].Kind]; !known {
				t.Fatalf("record %d has unknown kind %d", i, out[i].Kind)
			}
		}
		// Truncation yields a prefix: parsing a shortened input can never
		// produce more records than the full input did.
		if len(data) > 0 {
			shorter := ReadRecords(bytes.NewReader(data[:len(data)-1]))
			if len(shorter) > len(out) {
				t.Fatalf("truncated input decoded %d records, full input %d", len(shorter), len(out))
			}
		}
		// Folding whatever decoded must not panic either: recovery runs
		// this exact loop on real crash artifacts.
		st := newState([]model.ItemID{4})
		for i := range out {
			st.apply(&out[i])
		}
	})
}
