package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/ts"
)

func openT(t *testing.T, dir string, opts Options) *SiteLog {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendSync(t *testing.T, l *SiteLog, rec Record) {
	t.Helper()
	if err := l.Append(rec); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
}

func TestRoundTripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	items := []model.ItemID{1, 2, 9}
	l := openT(t, dir, Options{Items: items})
	if got := l.Incarnation(); got != 1 {
		t.Fatalf("first incarnation = %d, want 1", got)
	}
	tid := model.TxnID{Site: 0, Seq: 7}
	appendSync(t, l, Record{Kind: KindReceipt, TID: tid, From: 2, MsgKind: 1,
		Writes: []model.WriteOp{{Item: 1, Value: 10}}, TS: ts.New(2)})
	appendSync(t, l, Record{
		Kind: KindApply, TID: tid, Role: RoleSecondary, Consumes: true, Forwards: true,
		Writes: []model.WriteOp{{Item: 1, Value: 10}, {Item: 5, Value: 3}}, // 5 not placed here
	})
	tid2 := model.TxnID{Site: 1, Seq: 1}
	appendSync(t, l, Record{Kind: KindReceipt, TID: tid2, From: 3, MsgKind: 1})
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := openT(t, dir, Options{Items: items})
	defer l2.Close()
	st := l2.Recovered()
	if l2.Incarnation() != 2 {
		t.Fatalf("second incarnation = %d, want 2", l2.Incarnation())
	}
	if got := st.Items[1]; got != (ItemState{Value: 10, Num: 1, Writer: tid}) {
		t.Fatalf("item 1 state = %+v", got)
	}
	if _, ok := st.Items[5]; ok {
		t.Fatalf("item 5 leaked into a site that does not place it")
	}
	if !st.Applied[tid] {
		t.Fatalf("tid not in applied set")
	}
	// The apply consumed the first receipt; the second is still pending.
	if len(st.Receipts) != 1 || st.Receipts[0].TID != tid2 {
		t.Fatalf("receipts = %+v, want only %v", st.Receipts, tid2)
	}
	if len(st.Forwards) != 1 || st.Forwards[0].TID != tid {
		t.Fatalf("forwards = %+v", st.Forwards)
	}
	if !l2.WasApplied(tid) || l2.WasApplied(tid2) {
		t.Fatalf("WasApplied wrong: %v %v", l2.WasApplied(tid), l2.WasApplied(tid2))
	}
}

func TestFenceDiscardsUnsynced(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	tid := model.TxnID{Site: 0, Seq: 1}
	appendSync(t, l, Record{Kind: KindReceipt, TID: tid, From: 1, MsgKind: 1})
	// Buffered but never synced: must be lost at the fence.
	if err := l.Append(Record{Kind: KindConsumed, TID: tid}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	l.Fence()
	if err := l.Append(Record{Kind: KindConsumed, TID: tid}); err != ErrFenced {
		t.Fatalf("Append after fence = %v, want ErrFenced", err)
	}
	if err := l.Sync(); err != ErrFenced {
		t.Fatalf("Sync after fence = %v, want ErrFenced", err)
	}

	l2 := openT(t, dir, Options{})
	defer l2.Close()
	st := l2.Recovered()
	if len(st.Receipts) != 1 {
		t.Fatalf("receipt count = %d, want 1 (unsynced consumption must be lost)", len(st.Receipts))
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	// A wide flush window so every writer's records land in the same
	// group commit, deterministically.
	l := openT(t, dir, Options{FlushInterval: 50 * time.Millisecond, Obs: reg})
	defer l.Close()
	const writers, per = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tid := model.TxnID{Site: model.SiteID(w), Seq: uint64(i + 1)}
				if err := l.Append(Record{Kind: KindReceipt, TID: tid, MsgKind: 1}); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
			if err := l.Sync(); err != nil {
				t.Errorf("Sync: %v", err)
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	var appends, fsyncs int64
	for k, v := range snap {
		if strings.HasPrefix(k, "repl_wal_appends_total") {
			appends += v
		}
		if strings.HasPrefix(k, "repl_wal_fsyncs_total") {
			fsyncs += v
		}
	}
	if appends != writers*per+1 { // +1 boot record
		t.Fatalf("appends = %d, want %d", appends, writers*per+1)
	}
	// One inline boot flush plus a handful of ticks, not one per record.
	if fsyncs > 10 {
		t.Fatalf("group commit did not batch: %d fsyncs for %d appends", fsyncs, appends)
	}
}

func TestSnapshotTruncatesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	items := []model.ItemID{0, 1, 2, 3}
	l := openT(t, dir, Options{Items: items, SnapshotBytes: 2 << 10})
	var lastTID model.TxnID
	for i := 1; i <= 200; i++ {
		lastTID = model.TxnID{Site: 0, Seq: uint64(i)}
		appendSync(t, l, Record{Kind: KindApply, TID: lastTID, Role: RoleOrigin,
			Writes: []model.WriteOp{{Item: model.ItemID(i % 4), Value: int64(i)}}})
	}
	segs, snaps, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		t.Fatalf("no snapshot written after %d applies", 200)
	}
	if len(segs) > 2 {
		t.Fatalf("truncation left %d segments: %v", len(segs), segs)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, dir, Options{Items: items})
	defer l2.Close()
	st := l2.Recovered()
	if got := st.Items[0].Value; got != 200 {
		t.Fatalf("item 0 = %d, want 200", got)
	}
	if got := st.Items[0].Num; got != 50 {
		t.Fatalf("item 0 version = %d, want 50", got)
	}
	if !st.Applied[lastTID] {
		t.Fatalf("last apply missing from recovered state")
	}
}

func TestTornTailStopsCleanly(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	for i := 1; i <= 5; i++ {
		appendSync(t, l, Record{Kind: KindReceipt, TID: model.TxnID{Site: 0, Seq: uint64(i)}, MsgKind: 1})
	}
	l.Close()
	segs, _, err := scanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "wal-00000001.log")
	if len(segs) != 1 || segs[0] != 1 {
		t.Fatalf("segments = %v", segs)
	}
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear mid-record: drop the last 3 bytes.
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	recs := ReadRecords(bytes.NewReader(data[:len(data)-3]))
	if len(recs) != 5 { // boot + 4 whole receipts
		t.Fatalf("torn replay got %d records, want 5", len(recs))
	}
	l2 := openT(t, dir, Options{})
	defer l2.Close()
	if got := len(l2.Recovered().Receipts); got != 4 {
		t.Fatalf("recovered %d receipts from torn log, want 4", got)
	}
}

func TestDecisionFirstWriteWins(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	defer l.Close()
	tid := model.TxnID{Site: 2, Seq: 4}
	appendSync(t, l, Record{Kind: KindDecision, TID: tid, Commit: true})
	appendSync(t, l, Record{Kind: KindDecision, TID: tid, Commit: false})
	commit, known := l.Decision(tid)
	if !known || !commit {
		t.Fatalf("decision = (%v, %v), want first-write-wins commit", commit, known)
	}
}

func TestRLockReleaseRace(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{})
	tid := model.TxnID{Site: 1, Seq: 2}
	// Release recorded before a racing grant: the grant must not
	// resurrect the lock at recovery.
	appendSync(t, l, Record{Kind: KindRUnlock, TID: tid})
	appendSync(t, l, Record{Kind: KindRLock, TID: tid, Item: 3})
	l.Close()
	l2 := openT(t, dir, Options{})
	defer l2.Close()
	st := l2.Recovered()
	if len(st.RLocks[tid]) != 0 {
		t.Fatalf("released txn still holds %v", st.RLocks[tid])
	}
	if !st.Released[tid] {
		t.Fatalf("tombstone lost")
	}
}
