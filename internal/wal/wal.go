package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
)

// ErrFenced is returned by Append/Sync after the log has been fenced: a
// crash (simulated or real I/O failure) cut it off, buffered-but-unsynced
// records are gone, and the site must be rebuilt from disk.
var ErrFenced = errors.New("wal: log fenced")

// Options configures a site's log.
type Options struct {
	// Site labels metrics and trace events.
	Site model.SiteID

	// FlushInterval is the group-commit window: concurrent Sync callers
	// share the one fsync the background flusher issues per window. Zero
	// or negative means every Sync flushes inline (still batching every
	// record appended since the last flush into one fsync).
	FlushInterval time.Duration

	// SnapshotBytes triggers a snapshot + log truncation after this many
	// log bytes since the last snapshot (default 256 KiB; negative
	// disables snapshotting).
	SnapshotBytes int64

	// Items is the static placement at this site; the state tracker
	// filters payload writes with it exactly as the live store does.
	Items []model.ItemID

	// Obs, when set, receives the repl_wal_* counters.
	Obs *obs.Registry

	// Trace, when set, receives WALSnapshot events.
	Trace *trace.Recorder
}

const defaultSnapshotBytes = 256 << 10

// SiteLog is one site's write-ahead redo log: an append buffer group-
// committed into CRC-framed segment files, a durable-prefix state
// tracker, and periodic snapshots that truncate the segments they cover.
type SiteLog struct {
	dir  string
	opts Options

	mu   sync.Mutex
	cond *sync.Cond
	f    *os.File // repl:guardedby(mu)
	seg  uint64   // active segment index // repl:guardedby(mu)

	buf      []byte   // frames appended since the last flush // repl:guardedby(mu)
	staged   []Record // the records in buf, folded into state on flush // repl:guardedby(mu)
	appended uint64   // records appended (generation numbers) // repl:guardedby(mu)
	durable  uint64   // records fsynced // repl:guardedby(mu)
	fenced   bool     // repl:guardedby(mu)
	fenceErr error    // repl:guardedby(mu)

	// state advances only at flush: always equals disk replay.
	state *State // repl:guardedby(mu)
	// recovered is the frozen image from Open, consumed by the engine;
	// immutable after construction, so it needs no guard.
	recovered *State
	sinceSnap int64 // repl:guardedby(mu)

	done    chan struct{} // stops the flusher
	flusher sync.WaitGroup

	appends, fsyncs, bytes, replayed, truncations, snapshots *obs.Counter
}

// Open replays the newest valid snapshot plus every later segment in dir
// (creating it as needed), then starts a new log generation: a fresh
// active segment opened with a durable boot record carrying the next
// incarnation number. The recovered logical state is frozen in
// Recovered() for the engine to rebuild from.
//
//lint:allow guardedby Open constructs the log single-threaded; no other goroutine holds a reference until it returns, and the flusher it starts last takes mu before touching anything
func Open(dir string, opts Options) (*SiteLog, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l := &SiteLog{dir: dir, opts: opts, done: make(chan struct{})}
	l.cond = sync.NewCond(&l.mu)
	if opts.SnapshotBytes == 0 {
		l.opts.SnapshotBytes = defaultSnapshotBytes
	}
	if r := opts.Obs; r != nil {
		site := obs.Label{Key: "site", Value: strconv.Itoa(int(opts.Site))}
		l.appends = r.Counter("repl_wal_appends_total", site)
		l.fsyncs = r.Counter("repl_wal_fsyncs_total", site)
		l.bytes = r.Counter("repl_wal_bytes_total", site)
		l.replayed = r.Counter("repl_wal_replayed_total", site)
		l.truncations = r.Counter("repl_wal_truncations_total", site)
		l.snapshots = r.Counter("repl_wal_snapshots_total", site)
	}

	segs, snaps, err := scanDir(dir)
	if err != nil {
		return nil, err
	}
	l.state, err = l.replay(segs, snaps)
	if err != nil {
		return nil, err
	}
	l.recovered = l.state.clone()

	// New generation: never append into a possibly-torn tail.
	l.seg = 1
	if n := len(segs); n > 0 && segs[n-1] >= l.seg {
		l.seg = segs[n-1] + 1
	}
	if n := len(snaps); n > 0 && snaps[n-1] >= l.seg {
		l.seg = snaps[n-1] + 1
	}
	l.f, err = os.OpenFile(l.segPath(l.seg), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	l.mu.Lock()
	err = l.appendLocked(Record{Kind: KindBoot, Incarnation: l.state.Incarnation + 1})
	if err == nil {
		err = l.flushLocked()
	}
	l.mu.Unlock()
	if err != nil {
		l.f.Close()
		return nil, err
	}
	if opts.FlushInterval > 0 {
		l.flusher.Add(1)
		go l.flushLoop()
	}
	return l, nil
}

// replay folds the newest decodable snapshot and every later segment's
// valid record prefix into a fresh state.
func (l *SiteLog) replay(segs, snaps []uint64) (*State, error) {
	state := newState(l.opts.Items)
	from := uint64(0)
	for i := len(snaps) - 1; i >= 0; i-- {
		data, err := os.ReadFile(l.snapPath(snaps[i]))
		if err != nil {
			continue
		}
		if s, ok := decodeState(data, l.opts.Items); ok {
			state, from = s, snaps[i]
			break
		}
	}
	n := 0
	for _, seg := range segs {
		if seg <= from {
			continue
		}
		f, err := os.Open(l.segPath(seg))
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		recs := ReadRecords(f)
		f.Close()
		for i := range recs {
			state.apply(&recs[i])
		}
		n += len(recs)
	}
	l.replayed.Add(uint64(n))
	return state, nil
}

// Recovered returns the frozen logical state as of Open: the store
// image, unconsumed receipts, pending forwards, in-doubt prepared
// entries, decisions, and lock grants the rebuilt engine starts from.
func (l *SiteLog) Recovered() *State { return l.recovered }

// Incarnation returns this log generation's boot incarnation (1 for a
// fresh directory). Engines fold it into their TxnID sequence space so
// identifiers never repeat across restarts.
func (l *SiteLog) Incarnation() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state.Incarnation
}

// Append buffers one record for the next group commit. It does not make
// the record durable: externalize nothing until Sync returns nil.
func (l *SiteLog) Append(rec Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.appendLocked(rec)
}

func (l *SiteLog) appendLocked(rec Record) error {
	if l.fenced {
		return l.fenceErr
	}
	var err error
	n := len(l.buf)
	l.buf, err = encodeFrame(l.buf, &rec)
	if err != nil {
		return err
	}
	l.staged = append(l.staged, rec)
	l.appended++
	l.appends.Inc()
	l.bytes.Add(uint64(len(l.buf) - n))
	return nil
}

// Sync blocks until every record appended before the call is durable
// (group commit: one fsync covers every concurrent caller in the flush
// window) or the log is fenced.
func (l *SiteLog) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	target := l.appended
	if l.opts.FlushInterval <= 0 {
		if l.durable < target && !l.fenced {
			return l.flushLocked()
		}
		if l.fenced && l.durable < target {
			return l.fenceErr
		}
		return nil
	}
	for l.durable < target && !l.fenced {
		l.cond.Wait()
	}
	if l.durable < target {
		return l.fenceErr
	}
	return nil
}

// flushLocked writes and fsyncs the append buffer, folds the staged
// records into the durable-prefix state, wakes group-commit waiters, and
// triggers a snapshot when due. An I/O error fences the log.
func (l *SiteLog) flushLocked() error {
	if l.fenced {
		return l.fenceErr
	}
	if len(l.buf) == 0 {
		return nil
	}
	n := len(l.buf)
	if _, err := l.f.Write(l.buf); err != nil {
		l.fenceLocked(fmt.Errorf("wal: segment write: %w", err))
		return l.fenceErr
	}
	if err := l.f.Sync(); err != nil {
		l.fenceLocked(fmt.Errorf("wal: fsync: %w", err))
		return l.fenceErr
	}
	l.fsyncs.Inc()
	for i := range l.staged {
		l.state.apply(&l.staged[i])
	}
	l.durable += uint64(len(l.staged))
	l.buf = l.buf[:0]
	l.staged = l.staged[:0]
	l.sinceSnap += int64(n)
	l.cond.Broadcast()
	if l.opts.SnapshotBytes > 0 && l.sinceSnap >= l.opts.SnapshotBytes {
		l.snapshotLocked()
	}
	return nil
}

// snapshotLocked serializes the durable-prefix state to a snapshot file
// covering every segment so far, rotates to a fresh segment, and deletes
// the covered files. Failures are non-fatal: the log simply keeps its
// longer tail.
func (l *SiteLog) snapshotLocked() {
	data, err := encodeState(l.state)
	if err != nil {
		return
	}
	covered := l.seg
	tmp := l.snapPath(covered) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	if err := os.Rename(tmp, l.snapPath(covered)); err != nil {
		os.Remove(tmp)
		return
	}
	next, err := os.OpenFile(l.segPath(covered+1), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return // keep appending to the old segment; the snapshot still stands
	}
	old := l.f
	l.f, l.seg = next, covered+1
	old.Close()
	l.snapshots.Inc()
	l.sinceSnap = 0
	if l.opts.Trace != nil {
		l.opts.Trace.Record(trace.WALSnapshot, l.opts.Site, model.NoSite, model.TxnID{}, 0)
	}
	// Truncate: everything at or before the covered segment is subsumed.
	segs, snaps, err := scanDir(l.dir)
	if err != nil {
		return
	}
	for _, s := range segs {
		if s <= covered {
			if os.Remove(l.segPath(s)) == nil {
				l.truncations.Inc()
			}
		}
	}
	for _, s := range snaps {
		if s < covered {
			os.Remove(l.snapPath(s))
		}
	}
}

// Snapshot forces a flush and an immediate snapshot+truncation (tests
// and orderly shutdowns; the byte-threshold path is the normal trigger).
func (l *SiteLog) Snapshot() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.flushLocked(); err != nil {
		return err
	}
	if l.fenced {
		return l.fenceErr
	}
	l.snapshotLocked()
	return nil
}

// WasApplied reports whether a subtransaction of tid has durably
// committed at this site — the exactly-once check for replayed or
// duplicated deliveries.
func (l *SiteLog) WasApplied(tid model.TxnID) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state.Applied[tid]
}

// Decision looks up a durable 2PC decision.
func (l *SiteLog) Decision(tid model.TxnID) (commit, known bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	commit, known = l.state.Decisions[tid]
	return commit, known
}

// Fence simulates (or finalizes) a crash: buffered-but-unsynced records
// are discarded — honestly lost — and every current and future
// Append/Sync fails with ErrFenced. The durable on-disk prefix is left
// exactly as the last fsync made it, ready for the next Open.
func (l *SiteLog) Fence() {
	l.mu.Lock()
	l.fenceLocked(ErrFenced)
	l.mu.Unlock()
	l.flusher.Wait()
}

func (l *SiteLog) fenceLocked(err error) {
	if l.fenced {
		return
	}
	l.fenced = true
	l.fenceErr = err
	l.buf = nil
	l.staged = nil
	l.f.Close()
	select {
	case <-l.done:
	default:
		close(l.done)
	}
	l.cond.Broadcast()
}

// Close flushes what is buffered and shuts the log down cleanly. A
// fenced log closes without error: its durable prefix is already final.
func (l *SiteLog) Close() error {
	l.mu.Lock()
	fenced := l.fenced
	var err error
	if !fenced {
		err = l.flushLocked()
		l.fenceLocked(ErrFenced)
	}
	l.mu.Unlock()
	l.flusher.Wait()
	if fenced {
		return nil
	}
	return err
}

// flushLoop is the group-commit flusher: one fsync per interval while
// records are buffered.
func (l *SiteLog) flushLoop() {
	defer l.flusher.Done()
	ticker := time.NewTicker(l.opts.FlushInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-ticker.C:
		}
		l.mu.Lock()
		// A flush error fences the log; Sync callers observe it there.
		_ = l.flushLocked()
		l.mu.Unlock()
	}
}

func (l *SiteLog) segPath(i uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("wal-%08d.log", i))
}

func (l *SiteLog) snapPath(i uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("snap-%08d.snap", i))
}

// scanDir lists the segment and snapshot indexes present, ascending.
func scanDir(dir string) (segs, snaps []uint64, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			if i, perr := strconv.ParseUint(name[4:len(name)-4], 10, 64); perr == nil {
				segs = append(segs, i)
			}
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			if i, perr := strconv.ParseUint(name[5:len(name)-5], 10, 64); perr == nil {
				snaps = append(snaps, i)
			}
		}
	}
	sort.Slice(segs, func(a, b int) bool { return segs[a] < segs[b] })
	sort.Slice(snaps, func(a, b int) bool { return snaps[a] < snaps[b] })
	return segs, snaps, nil
}
