// Package wal is the per-site write-ahead redo log (docs/DURABILITY.md).
//
// Every state transition a site must survive a crash with — message
// receipts, committed applies, propagation obligations, 2PC registrations
// and decisions, remote read-lock grants — is appended as one framed
// record and made durable with a group-committed fsync *before* the
// transition is externalized (before the transport acknowledges, before a
// reply is sent, before the cluster's pending-work accounting is
// released). Recovery is then a pure fold over the durable prefix: load
// the newest snapshot, replay the records after it, and hand the engine a
// State describing exactly what the disk knows.
//
// The log is honest about loss: records buffered but not yet fsynced at
// crash time are gone, and everything that depended on them (an
// unacknowledged message, an unreleased pending obligation) is redone by
// the sender's retransmission or by recovery replay — never silently
// resurrected.
package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/model"
	"repro/internal/ts"
)

// Kind enumerates the redo-record taxonomy. The set is closed: recovery
// is a switch over these, and an unknown kind in a log is corruption.
type Kind uint8

const (
	// KindBoot opens every log generation: it carries the incarnation
	// number the booting engine must use to keep its TxnIDs unique across
	// restarts.
	KindBoot Kind = iota + 1
	// KindReceipt records a propagation message (secondary, special, or
	// backedge-execute) the moment it is received, before the reliable
	// sublayer acknowledges it: acked means durable. An unconsumed receipt
	// at recovery is re-enqueued for processing.
	KindReceipt
	// KindApply records a transaction's writes committing at this site,
	// appended inside the commit critical section before the store
	// mutates (log-then-mutate). Its Role says what the apply resolves.
	KindApply
	// KindConsumed marks one receipt of TID as fully processed without an
	// apply (a deduplicated duplicate, a special arriving home). Exactly
	// one consumption marker — an apply with Consumes set, or this —
	// eventually matches every receipt.
	KindConsumed
	// KindForwarded marks an apply's propagation obligation discharged
	// (children were sent their secondaries). It may be appended without
	// an fsync: losing it only causes a duplicate re-forward, which
	// receivers deduplicate.
	KindForwarded
	// KindPrepared records a backedge participant registering an eagerly
	// executed subtransaction, before it relays the special onward. At
	// recovery these are the in-doubt transactions resolved by 2PC
	// decision inquiry.
	KindPrepared
	// KindResolved marks an in-doubt prepared entry resolved by an abort
	// decision. (A commit decision resolves it through the KindApply
	// record with RoleResolve.)
	KindResolved
	// KindDecision records a 2PC coordinator decision, replacing the
	// ad-hoc in-memory decision side log: it must be durable before any
	// participant learns the outcome.
	KindDecision
	// KindEagerStart records a backedge origin dispatching an eager
	// subtransaction, before the execute message is sent. At recovery an
	// undecided eager start is presumed aborted; a decided-commit one
	// whose local apply is missing is redone.
	KindEagerStart
	// KindRLock records a PSL primary granting a remote read lock, before
	// the grant reply is sent; recovery re-acquires it so a post-crash
	// writer cannot slip under a still-outstanding remote reader.
	KindRLock
	// KindRUnlock records a PSL remote transaction releasing its read
	// locks (and tombstoning the TID), before the locks are dropped.
	KindRUnlock
	// KindEpoch records a DAG(T) source site advancing its epoch counter
	// (TS.Epoch carries the new value), before any timestamp bearing that
	// epoch is shipped. Epochs are compared first and cross-site
	// (ts.Compare), so a recovered site must resume at exactly the largest
	// epoch it ever shipped: regressing breaks per-edge timestamp
	// monotonicity, and overshooting starves its entries in every child's
	// min-timestamp head selection until the other sources catch up.
	KindEpoch
)

var kindNames = map[Kind]string{
	KindBoot: "boot", KindReceipt: "receipt", KindApply: "apply",
	KindConsumed: "consumed", KindForwarded: "forwarded",
	KindPrepared: "prepared", KindResolved: "resolved",
	KindDecision: "decision", KindEagerStart: "eagerstart",
	KindRLock: "rlock", KindRUnlock: "runlock", KindEpoch: "epoch",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Role says what a KindApply record resolves besides installing writes.
type Role uint8

const (
	// RoleOrigin is a primary subtransaction committing at its origin.
	RoleOrigin Role = iota
	// RoleSecondary is a propagated subtransaction committing at a
	// replica; it consumes one receipt of its TID.
	RoleSecondary
	// RoleResolve is an in-doubt prepared backedge subtransaction
	// committing on a 2PC commit decision; it resolves the prepared
	// entry (its receipt was consumed when the special was relayed).
	RoleResolve
)

// Record is the single schema every log entry shares; which fields are
// meaningful depends on Kind (see the constants above). One flat struct
// keeps the codec trivial and the fuzz surface small.
type Record struct {
	Kind Kind
	TID  model.TxnID

	// Receipt fields: the sending site and the engine message kind, so
	// recovery can re-enqueue an equivalent message.
	From    model.SiteID
	MsgKind int

	// Origin site of a special/eager subtransaction (Prepared, EagerStart,
	// and Receipt records for special payloads).
	Origin model.SiteID

	// Writes carried: the full payload write set for receipts and applies
	// (applies keep the payload, not the locally filtered subset, so
	// recovery can re-forward), the local write set for EagerStart.
	Writes []model.WriteOp

	// Span is the causal context the work ran under, so recovery-time
	// re-forwards keep the deterministic span tree intact.
	Span model.SpanContext

	// DAG(T) ordering state: the timestamp carried by the payload or
	// stamped at commit, and the committing site's LTS counter at that
	// moment. The last apply record fully determines the site timestamp.
	TS   ts.Timestamp
	LTSI uint64

	Role     Role
	Consumes bool // apply doubles as the receipt-consumption marker
	Forwards bool // apply leaves a propagation obligation behind

	Commit      bool // decision outcome
	Item        model.ItemID
	Incarnation uint64 // boot
}

// Frame layout: u32 little-endian body length, u32 IEEE CRC of the body,
// then the gob-encoded Record. Each frame is independently decodable so
// a torn tail never poisons the prefix before it.
const (
	frameHeader  = 8
	maxFrameBody = 16 << 20
)

// appendRawFrame appends one length+CRC framed body to dst.
func appendRawFrame(dst, body []byte) []byte {
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(body))
	dst = append(dst, hdr[:]...)
	return append(dst, body...)
}

// takeRawFrame extracts the first frame's body from data; ok is false on
// a torn or corrupt frame.
func takeRawFrame(data []byte) ([]byte, bool) {
	if len(data) < frameHeader {
		return nil, false
	}
	n := binary.LittleEndian.Uint32(data[0:4])
	sum := binary.LittleEndian.Uint32(data[4:8])
	if n > maxFrameBody || len(data) < frameHeader+int(n) {
		return nil, false
	}
	body := data[frameHeader : frameHeader+int(n)]
	if crc32.ChecksumIEEE(body) != sum {
		return nil, false
	}
	return body, true
}

// encodeFrame appends the framed encoding of rec to dst and returns the
// extended slice.
func encodeFrame(dst []byte, rec *Record) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(rec); err != nil {
		return dst, fmt.Errorf("wal: encode %v record: %w", rec.Kind, err)
	}
	return appendRawFrame(dst, body.Bytes()), nil
}

// ReadRecords decodes every whole, checksum-valid record from r, stopping
// cleanly at the first torn or corrupt frame — the bytes past a crash
// point are garbage by contract, not an error. It never panics on any
// input (FuzzWALDecode holds it to that).
func ReadRecords(r io.Reader) []Record {
	var out []Record
	br := newByteReader(r)
	for {
		hdr, ok := br.take(frameHeader)
		if !ok {
			return out
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxFrameBody {
			return out // implausible length: torn or corrupt header
		}
		body, ok := br.take(int(n))
		if !ok {
			return out // torn tail
		}
		if crc32.ChecksumIEEE(body) != sum {
			return out // bit rot or a partially written frame
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
			return out // checksummed garbage (e.g. a schema from the future)
		}
		if _, known := kindNames[rec.Kind]; !known {
			return out
		}
		out = append(out, rec)
	}
}

// byteReader accumulates reads so take never over-reads past what it
// hands out.
type byteReader struct {
	r   io.Reader
	buf []byte
	off int
	eof bool
}

func newByteReader(r io.Reader) *byteReader { return &byteReader{r: r} }

// take returns the next n bytes, reading more as needed; ok is false at
// a clean or torn end.
func (b *byteReader) take(n int) ([]byte, bool) {
	for len(b.buf)-b.off < n && !b.eof {
		chunk := make([]byte, 64<<10)
		m, err := b.r.Read(chunk)
		if m > 0 {
			b.buf = append(b.buf, chunk[:m]...)
		}
		if err != nil {
			b.eof = true
		}
	}
	if len(b.buf)-b.off < n {
		return nil, false
	}
	out := b.buf[b.off : b.off+n]
	b.off += n
	return out, true
}
