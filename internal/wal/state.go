package wal

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/model"
	"repro/internal/ts"
)

// ItemState is the recovered version of one item copy.
type ItemState struct {
	Value  int64
	Num    uint64
	Writer model.TxnID
}

// Receipt is one received-but-unconsumed propagation message: recovery
// re-enqueues an equivalent message into the rebuilt engine, which will
// process it and write the consumption marker the original never got.
type Receipt struct {
	From    model.SiteID
	MsgKind int
	TID     model.TxnID
	Origin  model.SiteID
	Writes  []model.WriteOp
	TS      ts.Timestamp
	Span    model.SpanContext
}

// PendingForward is a committed apply whose propagation to children was
// not marked done; recovery re-sends it (receivers deduplicate).
type PendingForward struct {
	TID    model.TxnID
	Writes []model.WriteOp
	TS     ts.Timestamp
	LTSI   uint64
	Span   model.SpanContext
}

// PreparedEntry is an in-doubt backedge subtransaction: executed and
// registered here, outcome unknown. Recovery re-registers it and lets
// the decision (delivered or inquired) resolve it.
type PreparedEntry struct {
	Origin model.SiteID
	Writes []model.WriteOp
	Span   model.SpanContext
}

// EagerEntry is a backedge origin's dispatched eager subtransaction.
// Undecided at recovery ⇒ presumed abort; decided-commit with no local
// apply ⇒ redo.
type EagerEntry struct {
	Writes []model.WriteOp
	Span   model.SpanContext
}

// State is the logical fold of the durable log prefix: what an engine
// needs to rebuild itself exactly as the disk knows it. It advances only
// when records become durable (at fsync, not at append), so a snapshot
// of it is always equal to what crash recovery from the file would
// reconstruct.
type State struct {
	Incarnation uint64

	// Items is the recovered store image; version numbers replay
	// deterministically because commit order equals log order.
	Items map[model.ItemID]ItemState

	// Applied holds every TID whose subtransaction committed here —
	// the exactly-once dedup set for replayed/duplicated deliveries.
	Applied map[model.TxnID]bool

	// Receipts lists unconsumed receipts in arrival order.
	Receipts []Receipt

	// Forwards lists applies whose propagation was not marked done.
	Forwards []PendingForward

	// Prepared maps in-doubt backedge TIDs to their registration.
	Prepared map[model.TxnID]PreparedEntry

	// Decisions is the durable 2PC decision log (true = commit).
	Decisions map[model.TxnID]bool

	// Eager maps dispatched-and-unresolved eager TIDs at an origin.
	Eager map[model.TxnID]EagerEntry

	// RLocks maps remote reader TIDs to the items they hold shared locks
	// on at this primary; Released tombstones TIDs whose locks are gone.
	RLocks   map[model.TxnID][]model.ItemID
	Released map[model.TxnID]bool

	// Last apply's DAG(T) ordering state; the site timestamp is a pure
	// function of it (see dagt recovery).
	LastTS   ts.Timestamp
	LastLTSI uint64
	LastRole Role
	HasApply bool

	// MaxEpoch is the largest epoch this site durably shipped or applied
	// (the max over apply-record timestamps and source epoch-tick records).
	// Recovery resumes the site timestamp at exactly this epoch: every
	// pre-crash shipment carried an epoch backed by one of these records,
	// so the recovered site neither regresses (which would break per-edge
	// timestamp monotonicity) nor overshoots (which would starve its
	// entries in min-timestamp scheduling until other sources catch up).
	MaxEpoch uint64

	// copies is the static placement at this site, used to filter payload
	// writes exactly as the live store does. Not serialized: re-derived
	// from Options on every Open.
	copies map[model.ItemID]bool
}

func newState(items []model.ItemID) *State {
	s := &State{
		Items:     make(map[model.ItemID]ItemState),
		Applied:   make(map[model.TxnID]bool),
		Prepared:  make(map[model.TxnID]PreparedEntry),
		Decisions: make(map[model.TxnID]bool),
		Eager:     make(map[model.TxnID]EagerEntry),
		RLocks:    make(map[model.TxnID][]model.ItemID),
		Released:  make(map[model.TxnID]bool),
		copies:    make(map[model.ItemID]bool, len(items)),
	}
	for _, it := range items {
		s.copies[it] = true
	}
	return s
}

// apply folds one durable record into the state. The switch is total
// over the Kind set; the codec already rejected unknown kinds.
func (s *State) apply(rec *Record) {
	switch rec.Kind {
	case KindBoot:
		s.Incarnation = rec.Incarnation
	case KindReceipt:
		s.Receipts = append(s.Receipts, Receipt{
			From: rec.From, MsgKind: rec.MsgKind, TID: rec.TID,
			Origin: rec.Origin, Writes: rec.Writes, TS: rec.TS, Span: rec.Span,
		})
	case KindApply:
		for _, w := range rec.Writes {
			if !s.copies[w.Item] {
				continue
			}
			cur := s.Items[w.Item]
			s.Items[w.Item] = ItemState{Value: w.Value, Num: cur.Num + 1, Writer: rec.TID}
		}
		s.Applied[rec.TID] = true
		if rec.Consumes {
			s.consumeReceipt(rec.TID)
		}
		switch rec.Role {
		case RoleOrigin:
			delete(s.Eager, rec.TID)
		case RoleResolve:
			delete(s.Prepared, rec.TID)
		}
		if rec.Forwards {
			s.Forwards = append(s.Forwards, PendingForward{
				TID: rec.TID, Writes: rec.Writes, TS: rec.TS, LTSI: rec.LTSI, Span: rec.Span,
			})
		}
		s.LastTS, s.LastLTSI, s.LastRole, s.HasApply = rec.TS, rec.LTSI, rec.Role, true
		//lint:allow tscompare scalar epoch max over durable records, not a tuple-order comparison
		if rec.TS.Epoch > s.MaxEpoch {
			s.MaxEpoch = rec.TS.Epoch
		}
	case KindConsumed:
		s.consumeReceipt(rec.TID)
	case KindForwarded:
		for i := range s.Forwards {
			if s.Forwards[i].TID == rec.TID {
				s.Forwards = append(s.Forwards[:i], s.Forwards[i+1:]...)
				break
			}
		}
	case KindPrepared:
		s.Prepared[rec.TID] = PreparedEntry{Origin: rec.Origin, Writes: rec.Writes, Span: rec.Span}
	case KindResolved:
		delete(s.Prepared, rec.TID)
	case KindDecision:
		if _, dup := s.Decisions[rec.TID]; !dup {
			s.Decisions[rec.TID] = rec.Commit
		}
		if !rec.Commit {
			delete(s.Eager, rec.TID)
		}
	case KindEagerStart:
		s.Eager[rec.TID] = EagerEntry{Writes: rec.Writes, Span: rec.Span}
	case KindRLock:
		// A release that raced the grant wins: never resurrect a lock for
		// a tombstoned transaction.
		if !s.Released[rec.TID] {
			s.RLocks[rec.TID] = append(s.RLocks[rec.TID], rec.Item)
		}
	case KindRUnlock:
		s.Released[rec.TID] = true
		delete(s.RLocks, rec.TID)
	case KindEpoch:
		//lint:allow tscompare scalar epoch max over durable records, not a tuple-order comparison
		if rec.TS.Epoch > s.MaxEpoch {
			s.MaxEpoch = rec.TS.Epoch
		}
	}
}

// consumeReceipt removes the first unconsumed receipt with the given
// TID. Matching is positional and count-based: a duplicated delivery
// produces two receipts, and each needs its own consumption marker.
func (s *State) consumeReceipt(tid model.TxnID) {
	for i := range s.Receipts {
		if s.Receipts[i].TID == tid {
			s.Receipts = append(s.Receipts[:i], s.Receipts[i+1:]...)
			return
		}
	}
}

// clone deep-copies the state so the recovered image handed to an engine
// stays frozen while the live tracker keeps folding new records.
func (s *State) clone() *State {
	c := &State{
		Incarnation: s.Incarnation,
		Items:       make(map[model.ItemID]ItemState, len(s.Items)),
		Applied:     make(map[model.TxnID]bool, len(s.Applied)),
		Receipts:    append([]Receipt(nil), s.Receipts...),
		Forwards:    append([]PendingForward(nil), s.Forwards...),
		Prepared:    make(map[model.TxnID]PreparedEntry, len(s.Prepared)),
		Decisions:   make(map[model.TxnID]bool, len(s.Decisions)),
		Eager:       make(map[model.TxnID]EagerEntry, len(s.Eager)),
		RLocks:      make(map[model.TxnID][]model.ItemID, len(s.RLocks)),
		Released:    make(map[model.TxnID]bool, len(s.Released)),
		LastTS:      s.LastTS.Clone(),
		LastLTSI:    s.LastLTSI,
		LastRole:    s.LastRole,
		HasApply:    s.HasApply,
		MaxEpoch:    s.MaxEpoch,
		copies:      s.copies,
	}
	for k, v := range s.Items {
		c.Items[k] = v
	}
	for k, v := range s.Applied {
		c.Applied[k] = v
	}
	for k, v := range s.Prepared {
		c.Prepared[k] = v
	}
	for k, v := range s.Decisions {
		c.Decisions[k] = v
	}
	for k, v := range s.Eager {
		c.Eager[k] = v
	}
	for k, v := range s.RLocks {
		c.RLocks[k] = append([]model.ItemID(nil), v...)
	}
	for k, v := range s.Released {
		c.Released[k] = v
	}
	return c
}

// encodeState serializes the state as one CRC-framed gob blob — the
// snapshot file format (same framing as log records, so the same torn-
// tail rules apply).
func encodeState(s *State) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(s); err != nil {
		return nil, fmt.Errorf("wal: encode snapshot: %w", err)
	}
	return appendRawFrame(nil, body.Bytes()), nil
}

// decodeState parses a snapshot file; ok is false when the file is torn
// or corrupt (the previous snapshot, if any, should be used instead).
func decodeState(data []byte, items []model.ItemID) (*State, bool) {
	body, ok := takeRawFrame(data)
	if !ok {
		return nil, false
	}
	s := newState(items)
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(s); err != nil {
		return nil, false
	}
	// Gob skips nil maps; normalize so recovery code can index freely.
	fresh := newState(items)
	if s.Items == nil {
		s.Items = fresh.Items
	}
	if s.Applied == nil {
		s.Applied = fresh.Applied
	}
	if s.Prepared == nil {
		s.Prepared = fresh.Prepared
	}
	if s.Decisions == nil {
		s.Decisions = fresh.Decisions
	}
	if s.Eager == nil {
		s.Eager = fresh.Eager
	}
	if s.RLocks == nil {
		s.RLocks = fresh.RLocks
	}
	if s.Released == nil {
		s.Released = fresh.Released
	}
	s.copies = fresh.copies
	return s, true
}
