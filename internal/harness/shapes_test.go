package harness

import (
	"os"
	"testing"
	"time"

	"repro/internal/core"
)

// TestPaperShapes asserts the qualitative claims of §5.3 against a
// medium-scale run. It takes several minutes, so it only runs when
// REPRO_SHAPES=1 — it is the executable form of EXPERIMENTS.md.
func TestPaperShapes(t *testing.T) {
	if os.Getenv("REPRO_SHAPES") == "" {
		t.Skip("set REPRO_SHAPES=1 to run the medium-scale shape assertions")
	}
	o := Options{Scale: Medium, Latency: 150 * time.Microsecond}

	t.Run("fig2a", func(t *testing.T) {
		res, err := Fig2a(o)
		if err != nil {
			t.Fatal(err)
		}
		be0, _ := res.Get(0, core.BackEdge)
		psl0, _ := res.Get(0, core.PSL)
		be1, _ := res.Get(1, core.BackEdge)
		psl1, _ := res.Get(1, core.PSL)
		// §5.3.1: BackEdge performs best at b=0, well above PSL.
		if be0.ThroughputPerSite < 1.3*psl0.ThroughputPerSite {
			t.Errorf("b=0: BackEdge %.1f not clearly above PSL %.1f", be0.ThroughputPerSite, psl0.ThroughputPerSite)
		}
		// BackEdge degrades as b grows; abort rate rises.
		if be1.ThroughputPerSite >= be0.ThroughputPerSite {
			t.Errorf("BackEdge throughput did not fall from b=0 (%.1f) to b=1 (%.1f)", be0.ThroughputPerSite, be1.ThroughputPerSite)
		}
		if be1.AbortRate <= be0.AbortRate {
			t.Errorf("BackEdge abort rate did not rise with b: %.1f%% -> %.1f%%", be0.AbortRate, be1.AbortRate)
		}
		// Even at b=1 BackEdge stays in PSL's neighbourhood (paper: above).
		if be1.ThroughputPerSite < 0.7*psl1.ThroughputPerSite {
			t.Errorf("b=1: BackEdge %.1f collapsed far below PSL %.1f", be1.ThroughputPerSite, psl1.ThroughputPerSite)
		}
	})

	t.Run("fig2b", func(t *testing.T) {
		res, err := Fig2b(o)
		if err != nil {
			t.Fatal(err)
		}
		// §5.3.2: BackEdge ≈ 2x PSL for every r except 0; both decline.
		for _, r := range []float64{0.2, 0.6, 1.0} {
			be, _ := res.Get(r, core.BackEdge)
			psl, _ := res.Get(r, core.PSL)
			if be.ThroughputPerSite < 1.3*psl.ThroughputPerSite {
				t.Errorf("r=%.1f: BackEdge %.1f not clearly above PSL %.1f", r, be.ThroughputPerSite, psl.ThroughputPerSite)
			}
		}
		psl0, _ := res.Get(0, core.PSL)
		psl1, _ := res.Get(1, core.PSL)
		if psl1.ThroughputPerSite >= psl0.ThroughputPerSite {
			t.Errorf("PSL did not decline with replication: %.1f -> %.1f", psl0.ThroughputPerSite, psl1.ThroughputPerSite)
		}
	})

	t.Run("fig3a", func(t *testing.T) {
		res, err := Fig3a(o)
		if err != nil {
			t.Fatal(err)
		}
		// §5.3.3 (b=0): BackEdge rises monotonically with the read share
		// and dominates decisively in the read-heavy half.
		var prev float64
		for _, x := range []float64{0.25, 0.5, 0.75, 1.0} {
			be, _ := res.Get(x, core.BackEdge)
			if be.ThroughputPerSite < prev*0.8 {
				t.Errorf("BackEdge not (weakly) rising at readOp=%.2f: %.1f after %.1f", x, be.ThroughputPerSite, prev)
			}
			prev = be.ThroughputPerSite
		}
		be75, _ := res.Get(0.75, core.BackEdge)
		psl75, _ := res.Get(0.75, core.PSL)
		if be75.ThroughputPerSite < 2*psl75.ThroughputPerSite {
			t.Errorf("readOp=0.75: BackEdge %.1f not >> PSL %.1f", be75.ThroughputPerSite, psl75.ThroughputPerSite)
		}
	})

	t.Run("fig3b", func(t *testing.T) {
		res, err := Fig3b(o)
		if err != nil {
			t.Fatal(err)
		}
		// §5.3.3 (b=1): BackEdge does not win at the update-only end, but
		// crosses above PSL once reads dominate.
		be0, _ := res.Get(0, core.BackEdge)
		psl0, _ := res.Get(0, core.PSL)
		if be0.ThroughputPerSite > 1.5*psl0.ThroughputPerSite {
			t.Errorf("readOp=0 at b=1: BackEdge %.1f should not dominate PSL %.1f", be0.ThroughputPerSite, psl0.ThroughputPerSite)
		}
		be9, _ := res.Get(0.9, core.BackEdge)
		psl9, _ := res.Get(0.9, core.PSL)
		if be9.ThroughputPerSite < psl9.ThroughputPerSite {
			t.Errorf("readOp=0.9 at b=1: BackEdge %.1f below PSL %.1f — the crossover did not happen", be9.ThroughputPerSite, psl9.ThroughputPerSite)
		}
	})

	t.Run("responsetime", func(t *testing.T) {
		res, err := ResponseTime(o)
		if err != nil {
			t.Fatal(err)
		}
		be, _ := res.Get(0, core.BackEdge)
		psl, _ := res.Get(0, core.PSL)
		// §5.3.4: BackEdge responses are shorter at the default setting.
		if be.MeanResponse >= psl.MeanResponse {
			t.Errorf("BackEdge response %v not below PSL %v", be.MeanResponse, psl.MeanResponse)
		}
	})
}
