package harness

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
)

func plotResult() Result {
	res := Result{Name: "t", Title: "Test Figure", XLabel: "b"}
	for i, thr := range []float64{30, 20, 10} {
		res.Points = append(res.Points,
			Point{X: float64(i), Protocol: core.BackEdge, Report: metrics.Report{ThroughputPerSite: thr}},
			Point{X: float64(i), Protocol: core.PSL, Report: metrics.Report{ThroughputPerSite: thr / 2}},
		)
	}
	return res
}

func TestPlotASCIIRendersSeries(t *testing.T) {
	var buf bytes.Buffer
	plotResult().PlotASCII(&buf, 40, 10)
	out := buf.String()
	for _, want := range []string{"Test Figure", "B=BackEdge", "P=PSL", "30.0", "0.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	// Both glyphs must appear in the grid.
	if !strings.Contains(out, "B") || !strings.Contains(out, "P") {
		t.Errorf("glyphs missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+10+2+1 { // title + grid + axis rows + legend
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
}

func TestPlotASCIIHandlesEmptyAndDegenerate(t *testing.T) {
	var buf bytes.Buffer
	(Result{}).PlotASCII(&buf, 40, 10)
	if !strings.Contains(buf.String(), "no data") {
		t.Error("empty result not handled")
	}
	// Single point, zero throughput: must not divide by zero.
	buf.Reset()
	res := Result{Title: "one", XLabel: "x",
		Points: []Point{{X: 5, Protocol: core.PSL}}}
	res.PlotASCII(&buf, 0, 0) // also exercises the minimum-size clamps
	if buf.Len() == 0 {
		t.Error("degenerate plot produced nothing")
	}
}

func TestPlotASCIIMarksOverlap(t *testing.T) {
	res := Result{Title: "o", XLabel: "x"}
	res.Points = append(res.Points,
		Point{X: 0, Protocol: core.BackEdge, Report: metrics.Report{ThroughputPerSite: 10}},
		Point{X: 0, Protocol: core.PSL, Report: metrics.Report{ThroughputPerSite: 10}},
	)
	var buf bytes.Buffer
	res.PlotASCII(&buf, 40, 10)
	if !strings.Contains(buf.String(), "*") {
		t.Errorf("overlapping points not marked:\n%s", buf.String())
	}
}
