package harness

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

// Experiment is a named, runnable reproduction of one paper artifact.
type Experiment struct {
	Name  string
	Paper string // which table/figure/§ it regenerates
	Run   func(o Options) (Result, error)
}

// Experiments returns the registry, ordered as in DESIGN.md's
// per-experiment index.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Table 1 (parameter settings)", runTable1},
		{"fig2a", "Figure 2(a): throughput vs backedge probability", Fig2a},
		{"fig2b", "Figure 2(b): throughput vs replication probability", Fig2b},
		{"fig3a", "Figure 3(a): throughput vs read-op probability, b=0", Fig3a},
		{"fig3b", "Figure 3(b): throughput vs read-op probability, b=1", Fig3b},
		{"responsetime", "§5.3.4 response times at the default setting", ResponseTime},
		{"propdelay", "§5.3.4 propagation delay at the default setting", PropDelay},
		{"sites", "§5.2 range: sites 3–15", Sites},
		{"threads", "§5.2 range: threads/site 1–5", Threads},
		{"latency", "§5.2 range: network latency 0.15–100 ms", Latency},
		{"dagablation", "ablation: DAG(WT) chain vs tree vs DAG(T) vs BackEdge vs PSL on a DAG", DAGAblation},
		{"deadlocks", "ablation: timeout (the paper's 50 ms) vs wait-for-graph deadlock handling", DeadlockAblation},
		{"skew", "extension: throughput vs Zipf access skew (the paper's workload is uniform)", Skew},
		{"fas", "ablation: §4.2 minimized backedge set vs the prototype's site-order split", FASAblation},
	}
}

// Lookup finds an experiment by name.
func Lookup(name string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.Name == name {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", name)
}

var mainProtos = []core.Protocol{core.BackEdge, core.PSL}

// Fig2a sweeps the backedge probability b from 0 to 1 (Figure 2(a)).
func Fig2a(o Options) (Result, error) {
	return o.sweep("fig2a", "Throughput vs Backedge Probability", "b",
		mainProtos, []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0},
		func(wl *workload.Config, x float64) { wl.BackedgeProb = x })
}

// Fig2b sweeps the replication probability r from 0 to 1 (Figure 2(b)).
func Fig2b(o Options) (Result, error) {
	return o.sweep("fig2b", "Throughput vs Replication Probability", "r",
		mainProtos, []float64{0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0},
		func(wl *workload.Config, x float64) { wl.ReplicationProb = x })
}

// fig3 is the extreme setting of §5.3.3: r=0.5, no read-only
// transactions, sweeping the read-operation probability.
func fig3(o Options, name, title string, b float64) (Result, error) {
	return o.sweep(name, title, "readOp",
		mainProtos, []float64{0, 0.25, 0.5, 0.75, 0.9, 1.0},
		func(wl *workload.Config, x float64) {
			wl.BackedgeProb = b
			wl.ReplicationProb = 0.5
			wl.ReadTxnProb = 0
			wl.ReadOpProb = x
		})
}

// Fig3a is Figure 3(a): backedge probability 0.
func Fig3a(o Options) (Result, error) {
	return fig3(o, "fig3a", "Throughput vs Read Operation Probability (b=0)", 0)
}

// Fig3b is Figure 3(b): backedge probability 1.
func Fig3b(o Options) (Result, error) {
	return fig3(o, "fig3b", "Throughput vs Read Operation Probability (b=1)", 1)
}

// ResponseTime measures mean response times at the default setting
// (§5.3.4 reports ~180 ms for BackEdge vs ~260 ms for PSL).
func ResponseTime(o Options) (Result, error) {
	return o.sweep("responsetime", "Mean Response Time (default setting)", "default",
		mainProtos, []float64{0}, func(*workload.Config, float64) {})
}

// PropDelay measures the time from a primary's commit until each replica
// applies its secondary subtransaction (§5.3.4: a few hundred ms).
func PropDelay(o Options) (Result, error) {
	return o.sweep("propdelay", "Update Propagation Delay (default setting)", "default",
		[]core.Protocol{core.BackEdge}, []float64{0}, func(*workload.Config, float64) {})
}

// Sites sweeps the number of sites over the §5.2 range 3–15.
func Sites(o Options) (Result, error) {
	return o.sweep("sites", "Throughput vs Number of Sites", "m",
		mainProtos, []float64{3, 6, 9, 12, 15},
		func(wl *workload.Config, x float64) { wl.Sites = int(x) })
}

// Threads sweeps the multiprogramming level over the §5.2 range 1–5.
func Threads(o Options) (Result, error) {
	return o.sweep("threads", "Throughput vs Threads per Site", "threads",
		mainProtos, []float64{1, 2, 3, 4, 5},
		func(wl *workload.Config, x float64) { wl.ThreadsPerSite = int(x) })
}

// Latency sweeps the network latency over the §5.2 range 0.15–100 ms.
func Latency(o Options) (Result, error) {
	res := Result{Name: "latency", Title: "Throughput vs Network Latency", XLabel: "ms"}
	for _, ms := range []float64{0.15, 1, 10, 100} {
		for _, proto := range mainProtos {
			wl := o.baseWorkload()
			if o.tweak != nil {
				o.tweak(&wl)
			}
			rep, err := RunPoint(cluster.Config{
				Workload:         wl,
				Protocol:         proto,
				Params:           o.params(),
				Latency:          time.Duration(ms * float64(time.Millisecond)),
				GeneralTree:      o.GeneralTree,
				Record:           o.Verify,
				TrackPropagation: true,
			})
			if err != nil {
				return res, err
			}
			res.Points = append(res.Points, Point{X: ms, Protocol: proto, Report: rep})
		}
	}
	return res, nil
}

// DAGAblation compares every protocol (and both tree shapes for DAG(WT))
// on the default workload restricted to a DAG (b=0) — the §3 trade-off
// between tree routing and direct timestamped delivery, plus the §5.1
// chain-vs-tree design choice.
func DAGAblation(o Options) (Result, error) {
	res := Result{Name: "dagablation", Title: "Protocols on a DAG copy graph (b=0)", XLabel: "variant"}
	type variant struct {
		proto core.Protocol
		tree  bool
		x     float64
	}
	variants := []variant{
		{core.DAGWT, false, 0}, // chain
		{core.DAGWT, true, 1},  // bushy tree
		{core.DAGT, false, 2},
		{core.BackEdge, false, 3},
		{core.PSL, false, 4},
	}
	for _, v := range variants {
		wl := o.baseWorkload()
		wl.BackedgeProb = 0
		if o.tweak != nil {
			o.tweak(&wl)
		}
		rep, err := RunPoint(cluster.Config{
			Workload:         wl,
			Protocol:         v.proto,
			Params:           o.params(),
			Latency:          o.latency(),
			GeneralTree:      v.tree,
			Record:           o.Verify,
			TrackPropagation: true,
		})
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, Point{X: v.x, Protocol: v.proto, Report: rep})
	}
	return res, nil
}

// Skew sweeps an item-access Zipf parameter over the default workload —
// an extension beyond the paper, whose §5.2 generator is uniform
// (x = 0 means uniform; larger x concentrates traffic on hot items and
// amplifies every contention effect the paper studies).
func Skew(o Options) (Result, error) {
	return o.sweep("skew", "Throughput vs Access Skew (Zipf s; 0 = uniform)", "s",
		mainProtos, []float64{0, 1.2, 1.5, 2.0},
		func(wl *workload.Config, x float64) { wl.Skew = x })
}

// FASAblation compares BackEdge with the prototype's site-order backedge
// split (x=0) against the §4.2 weighted feedback-arc-set heuristic over a
// general tree (x=1), at an elevated backedge probability where the cut
// actually matters.
func FASAblation(o Options) (Result, error) {
	res := Result{Name: "fas", Title: "BackEdge: site-order backedges vs §4.2 minimized set (b=0.6)", XLabel: "minimized"}
	for _, min := range []bool{false, true} {
		oo := o
		oo.MinimizeBackedges = min
		x := 0.0
		if min {
			x = 1.0
		}
		wl := oo.baseWorkload()
		wl.BackedgeProb = 0.6
		if oo.tweak != nil {
			oo.tweak(&wl)
		}
		rep, err := RunPoint(cluster.Config{
			Workload:          wl,
			Protocol:          core.BackEdge,
			Params:            oo.params(),
			Latency:           oo.latency(),
			MinimizeBackedges: min,
			Record:            oo.Verify,
			TrackPropagation:  true,
		})
		if err != nil {
			return res, err
		}
		res.Points = append(res.Points, Point{X: x, Protocol: core.BackEdge, Report: rep})
	}
	return res, nil
}

// DeadlockAblation compares the paper's deadlock-handling choice (pure
// 50 ms lock timeouts, §5) against a local wait-for-graph detector on the
// default workload: x=0 is timeout-only, x=1 adds the detector. Only
// local deadlocks are detectable locally, so BackEdge keeps its
// PrepareTimeout either way.
func DeadlockAblation(o Options) (Result, error) {
	res := Result{Name: "deadlocks", Title: "Deadlock handling: timeout vs wait-for-graph detector", XLabel: "detector"}
	for _, detect := range []bool{false, true} {
		oo := o
		oo.Detect = detect
		x := 0.0
		if detect {
			x = 1.0
		}
		for _, proto := range mainProtos {
			wl := oo.baseWorkload()
			if oo.tweak != nil {
				oo.tweak(&wl)
			}
			rep, err := RunPoint(cluster.Config{
				Workload:         wl,
				Protocol:         proto,
				Params:           oo.params(),
				Latency:          oo.latency(),
				GeneralTree:      oo.GeneralTree,
				Record:           oo.Verify,
				TrackPropagation: true,
			})
			if err != nil {
				return res, err
			}
			res.Points = append(res.Points, Point{X: x, Protocol: proto, Report: rep})
		}
	}
	return res, nil
}

// runTable1 does not measure anything: it prints the Table 1 parameter
// settings in force for the given options, as a Result with no points.
func runTable1(o Options) (Result, error) {
	return Result{Name: "table1", Title: "Parameter Settings (Table 1)", XLabel: ""}, nil
}

// PrintTable1 renders Table 1 with the effective values.
func PrintTable1(w io.Writer, o Options) {
	wl := o.baseWorkload()
	p := o.params()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Parameter\tSymbol\tValue\tPaper default")
	rows := [][4]string{
		{"Number of Sites", "m", fmt.Sprint(wl.Sites), "9"},
		{"Number of Items", "n", fmt.Sprint(wl.Items), "200"},
		{"Replication Probability", "r", fmt.Sprint(wl.ReplicationProb), "0.2"},
		{"Site Probability", "s", fmt.Sprint(wl.SiteProb), "0.5"},
		{"Backedge Probability", "b", fmt.Sprint(wl.BackedgeProb), "0.2"},
		{"Operations/Transaction", "", fmt.Sprint(wl.OpsPerTxn), "10"},
		{"Threads/Site", "", fmt.Sprint(wl.ThreadsPerSite), "3"},
		{"Transactions/Thread", "", fmt.Sprint(wl.TxnsPerThread), "1000"},
		{"Read Operation Probability", "", fmt.Sprint(wl.ReadOpProb), "0.7"},
		{"Read Transaction Probability", "", fmt.Sprint(wl.ReadTxnProb), "0.5"},
		{"Network Latency", "", o.latency().String(), "~0.15ms"},
		{"Deadlock Timeout Interval", "", p.LockTimeout.String(), "50ms"},
		{"Per-Operation CPU Cost (sim)", "", p.OpCost.String(), "n/a (real HW)"},
	}
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", r[0], r[1], r[2], r[3])
	}
	tw.Flush()
}

// Names returns the registered experiment names, sorted.
func Names() []string {
	var out []string
	for _, e := range Experiments() {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}
