package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
)

// PlotASCII renders the experiment's throughput series as an ASCII chart
// shaped like the paper's figures: x axis = swept parameter, y axis =
// average throughput per site, one glyph per protocol. It is deliberately
// coarse — the point is eyeballing the shapes (who wins, where curves
// cross) straight from a terminal.
func (r Result) PlotASCII(w io.Writer, width, height int) {
	if len(r.Points) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}

	glyphs := []byte{'B', 'P', 'W', 'T', 'N', '#'}
	var protos []core.Protocol
	seen := map[core.Protocol]int{}
	for _, p := range r.Points {
		if _, ok := seen[p.Protocol]; !ok {
			seen[p.Protocol] = len(protos)
			protos = append(protos, p.Protocol)
		}
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := 0.0
	for _, p := range r.Points {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Report.ThroughputPerSite)
	}
	if maxY == 0 {
		maxY = 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, g byte) {
		col := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		row := height - 1 - int(math.Round(y/maxY*float64(height-1)))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		if grid[row][col] == ' ' {
			grid[row][col] = g
		} else if grid[row][col] != g {
			grid[row][col] = '*' // overlapping protocols
		}
	}
	// Sort points by x per protocol so markers line up predictably.
	byProto := map[core.Protocol][]Point{}
	for _, p := range r.Points {
		byProto[p.Protocol] = append(byProto[p.Protocol], p)
	}
	for proto, pts := range byProto {
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		g := glyphs[seen[proto]%len(glyphs)]
		for _, p := range pts {
			plot(p.X, p.Report.ThroughputPerSite, g)
		}
	}

	fmt.Fprintf(w, "%s — throughput/site vs %s\n", r.Title, r.XLabel)
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.1f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.1f ", 0.0)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "         %-8.2f%s%8.2f\n", minX, strings.Repeat(" ", width-16), maxX)
	var legend []string
	for _, proto := range protos {
		legend = append(legend, fmt.Sprintf("%c=%v", glyphs[seen[proto]%len(glyphs)], proto))
	}
	fmt.Fprintf(w, "         legend: %s (*=overlap)\n", strings.Join(legend, "  "))
}
