package harness

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"repro/internal/core"
)

// PlotASCII renders the experiment's throughput series as an ASCII chart
// shaped like the paper's figures: x axis = swept parameter, y axis =
// average throughput per site, one glyph per protocol. It is deliberately
// coarse — the point is eyeballing the shapes (who wins, where curves
// cross) straight from a terminal.
func (r Result) PlotASCII(w io.Writer, width, height int) {
	r.PlotSeriesASCII(w, width, height, "throughput/site",
		func(p Point) float64 { return p.Report.ThroughputPerSite })
}

// PlotSeriesASCII is PlotASCII generalized over the y axis: yLabel names
// the charted quantity and y extracts it from each point. The perf
// trajectory charts (replplot over BENCH_*.json snapshots) use it to plot
// p95 latency with the same renderer as throughput.
func (r Result) PlotSeriesASCII(w io.Writer, width, height int, yLabel string, y func(Point) float64) {
	if len(r.Points) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}

	// Glyphs key on protocol identity (PSL..NaiveLazy in declaration
	// order), so 'B' is BackEdge in every chart regardless of which
	// protocol a result happens to list first.
	glyphs := []byte{'P', 'W', 'T', 'B', 'N', '#'}
	glyph := func(p core.Protocol) byte { return glyphs[int(p)%len(glyphs)] }
	var protos []core.Protocol
	seen := map[core.Protocol]int{}
	for _, p := range r.Points {
		if _, ok := seen[p.Protocol]; !ok {
			seen[p.Protocol] = len(protos)
			protos = append(protos, p.Protocol)
		}
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	maxY := 0.0
	for _, p := range r.Points {
		minX = math.Min(minX, p.X)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, y(p))
	}
	if maxY == 0 {
		maxY = 1
	}
	if maxX == minX {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, g byte) {
		col := int(math.Round((x - minX) / (maxX - minX) * float64(width-1)))
		row := height - 1 - int(math.Round(y/maxY*float64(height-1)))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		if grid[row][col] == ' ' {
			grid[row][col] = g
		} else if grid[row][col] != g {
			grid[row][col] = '*' // overlapping protocols
		}
	}
	// Sort points by x per protocol so markers line up predictably.
	byProto := map[core.Protocol][]Point{}
	for _, p := range r.Points {
		byProto[p.Protocol] = append(byProto[p.Protocol], p)
	}
	for proto, pts := range byProto {
		sort.Slice(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
		g := glyph(proto)
		for _, p := range pts {
			plot(p.X, y(p), g)
		}
	}

	fmt.Fprintf(w, "%s — %s vs %s\n", r.Title, yLabel, r.XLabel)
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.1f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.1f ", 0.0)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(w, "        +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "         %-8.2f%s%8.2f\n", minX, strings.Repeat(" ", width-16), maxX)
	var legend []string
	for _, proto := range protos {
		legend = append(legend, fmt.Sprintf("%c=%v", glyph(proto), proto))
	}
	fmt.Fprintf(w, "         legend: %s (*=overlap)\n", strings.Join(legend, "  "))
}
