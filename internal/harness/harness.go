// Package harness regenerates the paper's evaluation (§5): every figure
// and reported metric has a named experiment that sweeps the same
// parameter, runs the same protocols, and prints the series the paper
// plots. Absolute numbers differ from the 1999 testbed; the shapes (who
// wins, by what factor, where the crossovers fall) are the reproduction
// target — see EXPERIMENTS.md.
package harness

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fresh"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// Scale selects how much of the paper-sized workload to run.
type Scale int

const (
	// Quick runs in seconds per point (CI-sized).
	Quick Scale = iota
	// Medium is the default for interactive use.
	Medium
	// Full is the paper's Table 1 workload (1000 txns/thread).
	Full
)

// ParseScale converts a flag value.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "quick":
		return Quick, nil
	case "medium":
		return Medium, nil
	case "full":
		return Full, nil
	default:
		return 0, fmt.Errorf("harness: unknown scale %q (quick|medium|full)", s)
	}
}

func (s Scale) txnsPerThread() int {
	switch s {
	case Full:
		return 1000
	case Medium:
		return 120
	default:
		return 25
	}
}

func (s Scale) opCost() time.Duration {
	// The prototype's per-operation work on a 296 MHz UltraSparc; scaled
	// down off Full so sweeps finish quickly while contention dynamics
	// survive.
	switch s {
	case Full:
		return 200 * time.Microsecond
	case Medium:
		return 100 * time.Microsecond
	default:
		return 50 * time.Microsecond
	}
}

// Options configures an experiment run.
type Options struct {
	Scale Scale
	// Latency overrides the Table 1 default (0.15 ms) when nonzero.
	Latency time.Duration
	// Seed overrides the workload seed when nonzero.
	Seed int64
	// GeneralTree selects the bushy propagation tree instead of the chain.
	GeneralTree bool
	// Jitter adds uniform random per-message delay in [0, Jitter).
	Jitter time.Duration
	// MinimizeBackedges selects the §4.2 weighted feedback-arc-set
	// heuristic for the backedge set (implies the general tree).
	MinimizeBackedges bool
	// Detect replaces pure timeout deadlock handling with the local
	// wait-for-graph detector (the X5 ablation).
	Detect bool
	// Verify additionally records and checks serializability and replica
	// convergence for every point (slower; used by tests).
	Verify bool

	// tweak, when set (tests only), adjusts every point's workload after
	// the experiment's own mutation — used to shrink sweeps to unit-test
	// size.
	tweak func(*workload.Config)
}

func (o Options) latency() time.Duration {
	if o.Latency > 0 {
		return o.Latency
	}
	return 150 * time.Microsecond
}

// baseWorkload is Table 1 adjusted for the run scale.
func (o Options) baseWorkload() workload.Config {
	wl := workload.Default()
	wl.TxnsPerThread = o.Scale.txnsPerThread()
	if o.Seed != 0 {
		wl.Seed = o.Seed
	}
	return wl
}

func (o Options) params() core.Params {
	p := core.DefaultParams()
	p.OpCost = o.Scale.opCost()
	p.DetectDeadlocks = o.Detect
	return p
}

// Point is one measured configuration.
type Point struct {
	X        float64
	Protocol core.Protocol
	Report   metrics.Report
}

// Result is a completed experiment.
type Result struct {
	Name   string
	Title  string
	XLabel string
	Points []Point
}

// RunPoint executes one cluster configuration through its full lifecycle
// and returns the report.
func RunPoint(cfg cluster.Config) (metrics.Report, error) {
	rep, _, err := RunPointFresh(cfg)
	return rep, err
}

// RunPointFresh is RunPoint plus the run's freshness summary
// (cluster.FreshSummary), captured after the quiesce drain — so every
// propagated update has been applied and the staleness distributions
// cover the whole run, not a mid-flight cut.
func RunPointFresh(cfg cluster.Config) (metrics.Report, *fresh.Summary, error) {
	c, err := cluster.New(cfg)
	if err != nil {
		return metrics.Report{}, nil, err
	}
	c.Start()
	defer c.Stop()
	rep, err := c.Run()
	if err != nil {
		return rep, c.FreshSummary(), err
	}
	if qerr := c.Quiesce(2 * time.Minute); qerr != nil {
		return rep, c.FreshSummary(), qerr
	}
	if cfg.Record && cfg.Protocol.Serializable() {
		if serr := c.CheckSerializable(); serr != nil {
			return rep, c.FreshSummary(), fmt.Errorf("harness: %v claimed serializability but: %w", cfg.Protocol, serr)
		}
		if cfg.Protocol.Propagates() {
			if cerr := c.CheckConvergence(); cerr != nil {
				return rep, c.FreshSummary(), fmt.Errorf("harness: %v replicas diverged: %w", cfg.Protocol, cerr)
			}
		}
	}
	return rep, c.FreshSummary(), nil
}

// sweep runs protocols × xs, mutating the workload per x.
func (o Options) sweep(name, title, xlabel string, protos []core.Protocol,
	xs []float64, mut func(*workload.Config, float64)) (Result, error) {
	res := Result{Name: name, Title: title, XLabel: xlabel}
	for _, x := range xs {
		for _, proto := range protos {
			wl := o.baseWorkload()
			mut(&wl, x)
			if o.tweak != nil {
				o.tweak(&wl)
			}
			rep, err := RunPoint(cluster.Config{
				Workload:          wl,
				Protocol:          proto,
				Params:            o.params(),
				Latency:           o.latency(),
				Jitter:            o.Jitter,
				GeneralTree:       o.GeneralTree,
				MinimizeBackedges: o.MinimizeBackedges,
				Record:            o.Verify,
				TrackPropagation:  true,
			})
			if err != nil {
				return res, fmt.Errorf("%s at %s=%.2f (%v): %w", name, xlabel, x, proto, err)
			}
			res.Points = append(res.Points, Point{X: x, Protocol: proto, Report: rep})
		}
	}
	return res, nil
}

// Print renders the result as the rows/series the paper's figure plots:
// one row per x value, throughput and abort-rate columns per protocol.
func (r Result) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", r.Name, r.Title)
	// Collect protocol order as first encountered.
	var protos []core.Protocol
	seen := map[core.Protocol]bool{}
	for _, p := range r.Points {
		if !seen[p.Protocol] {
			seen[p.Protocol] = true
			protos = append(protos, p.Protocol)
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", r.XLabel)
	for _, p := range protos {
		fmt.Fprintf(tw, "\t%s thr\t%s abort%%\t%s resp", p, p, p)
	}
	fmt.Fprintln(tw)
	byX := map[float64]map[core.Protocol]metrics.Report{}
	var xs []float64
	for _, p := range r.Points {
		if byX[p.X] == nil {
			byX[p.X] = map[core.Protocol]metrics.Report{}
			xs = append(xs, p.X)
		}
		byX[p.X][p.Protocol] = p.Report
	}
	for _, x := range xs {
		fmt.Fprintf(tw, "%.2f", x)
		for _, proto := range protos {
			rep := byX[x][proto]
			fmt.Fprintf(tw, "\t%.2f\t%.1f\t%s", rep.ThroughputPerSite, rep.AbortRate,
				rep.MeanResponse.Round(time.Millisecond))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// CSVHeader is the column row matching WriteCSVRows.
const CSVHeader = "experiment,x,protocol,throughput_per_site,abort_rate_pct,mean_response_ms,p95_response_ms,mean_prop_ms,messages,remote_reads,secondaries"

// PrintCSV emits the result for external plotting, header included.
func (r Result) PrintCSV(w io.Writer) {
	fmt.Fprintln(w, CSVHeader)
	r.WriteCSVRows(w)
}

// WriteCSVRows emits the data rows only, for concatenating experiments
// under a single header.
func (r Result) WriteCSVRows(w io.Writer) {
	for _, p := range r.Points {
		rep := p.Report
		fmt.Fprintf(w, "%s,%.3f,%s,%.3f,%.2f,%.3f,%.3f,%.3f,%d,%d,%d\n",
			r.Name, p.X, p.Protocol,
			rep.ThroughputPerSite, rep.AbortRate,
			float64(rep.MeanResponse)/1e6, float64(rep.P95Response)/1e6,
			float64(rep.MeanPropDelay)/1e6,
			rep.Messages, rep.RemoteReads, rep.Secondaries)
	}
}

// Get looks up the report for (x, protocol).
func (r Result) Get(x float64, proto core.Protocol) (metrics.Report, bool) {
	for _, p := range r.Points {
		if p.X == x && p.Protocol == proto {
			return p.Report, true
		}
	}
	return metrics.Report{}, false
}
