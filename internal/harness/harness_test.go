package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

func quickOpts() Options {
	return Options{Scale: Quick, Latency: 100 * time.Microsecond}
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{"quick": Quick, "medium": Medium, "full": Full} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bad scale accepted")
	}
}

func TestScaleKnobs(t *testing.T) {
	if Full.txnsPerThread() != 1000 {
		t.Error("Full must run the paper's 1000 txns/thread")
	}
	if Quick.txnsPerThread() >= Medium.txnsPerThread() {
		t.Error("Quick must be smaller than Medium")
	}
}

func TestLookupAndNames(t *testing.T) {
	for _, name := range Names() {
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown experiment accepted")
	}
	// The DESIGN.md index: every paper artifact has an experiment.
	want := []string{"table1", "fig2a", "fig2b", "fig3a", "fig3b",
		"responsetime", "propdelay", "sites", "threads", "latency", "dagablation", "deadlocks", "skew", "fas"}
	names := Names()
	for _, w := range want {
		found := false
		for _, n := range names {
			if n == w {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q missing from registry", w)
		}
	}
}

func TestRunPointExecutesAndVerifies(t *testing.T) {
	wl := workload.Default()
	wl.Sites = 3
	wl.Items = 30
	wl.TxnsPerThread = 15
	wl.BackedgeProb = 0
	rep, err := RunPoint(cluster.Config{
		Workload: wl,
		Protocol: core.DAGWT,
		Params:   quickParams(),
		Latency:  50 * time.Microsecond,
		Record:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Committed == 0 {
		t.Error("nothing committed")
	}
}

func quickParams() core.Params {
	p := core.DefaultParams()
	p.LockTimeout = 20 * time.Millisecond
	p.OpCost = 0
	p.EpochPeriod = 5 * time.Millisecond
	p.DummyPeriod = 3 * time.Millisecond
	return p
}

// TestFig2aQuickShape runs a reduced Figure 2(a) and checks the headline
// shape claims of §5.3.1 that survive a tiny workload: at b=0 the
// BackEdge protocol beats PSL.
func TestFig2aQuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	o := quickOpts()
	res, err := o.sweep("fig2a", "t", "b", mainProtos, []float64{0},
		func(wl *workload.Config, x float64) { wl.BackedgeProb = x })
	if err != nil {
		t.Fatal(err)
	}
	be, _ := res.Get(0, core.BackEdge)
	psl, _ := res.Get(0, core.PSL)
	if be.ThroughputPerSite <= psl.ThroughputPerSite {
		t.Errorf("at b=0 BackEdge (%.1f) should beat PSL (%.1f)",
			be.ThroughputPerSite, psl.ThroughputPerSite)
	}
}

func TestResultPrintFormats(t *testing.T) {
	res := Result{Name: "x", Title: "T", XLabel: "b"}
	res.Points = append(res.Points, Point{X: 0.5, Protocol: core.PSL})
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "PSL") || !strings.Contains(buf.String(), "0.50") {
		t.Errorf("Print output missing data:\n%s", buf.String())
	}
	buf.Reset()
	res.PrintCSV(&buf)
	if !strings.Contains(buf.String(), "x,0.500,PSL") {
		t.Errorf("CSV output wrong:\n%s", buf.String())
	}
}

func TestResultGet(t *testing.T) {
	res := Result{Points: []Point{{X: 1, Protocol: core.PSL}}}
	if _, ok := res.Get(1, core.PSL); !ok {
		t.Error("Get missed an existing point")
	}
	if _, ok := res.Get(2, core.PSL); ok {
		t.Error("Get found a missing point")
	}
}

func TestPrintTable1(t *testing.T) {
	var buf bytes.Buffer
	PrintTable1(&buf, Options{Scale: Full})
	out := buf.String()
	for _, want := range []string{"Number of Sites", "9", "Deadlock Timeout", "50ms", "1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

// tiny shrinks any experiment point to unit-test size: 3 sites, few
// transactions, fast clocks.
func tiny() Options {
	return Options{
		Scale:   Quick,
		Latency: 100 * time.Microsecond,
		tweak: func(wl *workload.Config) {
			wl.Sites = 3
			wl.Items = 30
			wl.ThreadsPerSite = 2
			wl.TxnsPerThread = 6
		},
	}
}

// TestEveryExperimentRunsTiny executes every registered experiment at
// microscopic scale: the registry stays runnable end to end and each
// produces the expected series shape (every x has every protocol).
func TestEveryExperimentRunsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every sweep")
	}
	for _, e := range Experiments() {
		e := e
		if e.Name == "latency" && testing.Short() {
			continue
		}
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(tiny())
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if e.Name == "table1" {
				return // prints only
			}
			if len(res.Points) == 0 {
				t.Fatalf("%s produced no points", e.Name)
			}
			perX := map[float64]int{}
			for _, p := range res.Points {
				perX[p.X]++
				if p.Report.Committed == 0 {
					t.Errorf("%s x=%v %v: nothing committed", e.Name, p.X, p.Protocol)
				}
			}
			want := perX[res.Points[0].X]
			for x, n := range perX {
				if n != want {
					t.Errorf("%s: x=%v has %d protocols, others have %d", e.Name, x, n, want)
				}
			}
		})
	}
}

// TestPropDelayExperimentQuick checks E7 wiring: the propagation-delay
// experiment produces nonzero samples.
func TestPropDelayExperimentQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	o := Options{Scale: Quick, Latency: 200 * time.Microsecond}
	res, err := PropDelay(o)
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := res.Get(0, core.BackEdge)
	if !ok {
		t.Fatal("missing point")
	}
	if rep.Secondaries == 0 || rep.MeanPropDelay == 0 {
		t.Errorf("no propagation measured: %+v", rep)
	}
}
