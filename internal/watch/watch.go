// Package watch is the staleness/liveness watchdog: an online monitor
// fed by the trace recorder's live sink and by probes the engines
// register, detecting the conditions a quiesced-run report can only
// confirm after the fact — a replica falling behind (unapplied commits
// aging out), a DAG(T) site whose epoch stops advancing while its
// siblings' do, an applier queue that holds depth without draining, and
// a BackEdge participant stuck in the prepared state awaiting a 2PC
// decision. Alerts are exported through the live obs registry, recorded
// as trace events, and trigger a bounded flight-recorder dump: the ring
// of most recent trace events written as JSONL for offline replay.
//
// A nil *Watchdog (and the nil *Progress handles it hands out) is a
// valid no-op, costing instrumented paths one branch — the same
// discipline as the nil trace recorder and nil obs registry. The
// package deliberately sits outside the deterministic-replay lint scope
// (internal/core, internal/fault, internal/ts): it observes wall-clock
// liveness, so it reads wall clocks freely and never feeds back into
// protocol decisions.
package watch

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/contend"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
)

// lockWaitRing bounds the recent lock_wait samples the contention check
// computes its p99 over; small enough to sort every tick, large enough
// that one quiet burst cannot wash out a hot tail.
const lockWaitRing = 4096

// contentionMinSamples gates the checks so a handful of early samples
// cannot fire an alert: the p99 needs this many lock waits, the abort
// rate this many finished transactions.
const contentionMinSamples = 32

// Kind enumerates the alert taxonomy.
type Kind uint8

const (
	// StaleReplica means a forwarded secondary subtransaction has stayed
	// unapplied at its destination beyond StalenessDeadline.
	StaleReplica Kind = iota + 1
	// EpochStall means a DAG(T) site's epoch stopped advancing beyond
	// StallDeadline while the cluster-wide maximum kept moving.
	EpochStall
	// QueueStall means an engine queue held depth without a single pop
	// for longer than StallDeadline.
	QueueStall
	// PendingTwoPC means a BackEdge participant has been prepared —
	// holding locks, awaiting the coordinator's decision — beyond
	// PendingDeadline.
	PendingTwoPC
	// RecoveryStall means a crashed site has been down — torn down but
	// not yet rebuilt from its write-ahead log — beyond StallDeadline.
	RecoveryStall
	// Contention means the cluster crossed a contention threshold: the
	// live lock_wait p99 exceeded LockWaitP99, or the abort rate exceeded
	// AbortRatePct. Raising it triggers a wait-for graph dump when a
	// wait-graph probe is registered (docs/OBSERVABILITY.md, contention
	// observatory).
	Contention
)

func (k Kind) String() string {
	switch k {
	case StaleReplica:
		return "stale_replica"
	case EpochStall:
		return "epoch_stall"
	case QueueStall:
		return "queue_stall"
	case PendingTwoPC:
		return "pending_2pc"
	case RecoveryStall:
		return "recovery_stall"
	case Contention:
		return "contention"
	default:
		return fmt.Sprintf("watch.Kind(%d)", uint8(k))
	}
}

// Alert is one raised watchdog condition. Site is the afflicted site;
// Peer the implicated counterpart (the forwarder whose update is stuck,
// the parent whose edge went quiet) or model.NoSite; TID the oldest
// implicated transaction or zero.
type Alert struct {
	Kind   Kind          `json:"kind"`
	Site   model.SiteID  `json:"site"`
	Peer   model.SiteID  `json:"peer"`
	TID    model.TxnID   `json:"tid"`
	Detail string        `json:"detail,omitempty"`
	Age    time.Duration `json:"age"`
	Raised time.Time     `json:"raised"`
	// Cleared is zero while the condition persists.
	Cleared time.Time `json:"cleared,omitempty"`
}

// EpochStatus is a DAG(T) engine's answer to the epoch probe: its
// current epoch and the copy-graph parents it is currently blocked on
// (a parent whose timestamp-hold queue is empty while a sibling's is
// not — the §3.2.2 merge cannot advance past the silent edge).
type EpochStatus struct {
	Epoch   uint64
	Blocked []model.SiteID
}

// PendingStatus is a BackEdge engine's answer to the pending-2PC probe:
// how many subtransactions sit prepared awaiting a decision, and the
// oldest of them.
type PendingStatus struct {
	Count       int
	Oldest      model.TxnID
	OldestSince time.Time
}

// RecoveryStatus is a cluster's answer to the crash-recovery probe for
// one site: whether it is currently down (crashed, not yet rebuilt from
// its write-ahead log) and since when.
type RecoveryStatus struct {
	Down  bool
	Since time.Time
}

// Progress is a queue's liveness handle: engines Push on enqueue and
// Pop on dequeue; the watchdog flags depth held without pops. A nil
// *Progress is a valid no-op.
type Progress struct {
	site  model.SiteID
	name  string
	depth atomic.Int64
	pops  atomic.Uint64
}

// Push notes one element entering the queue.
func (p *Progress) Push() {
	if p != nil {
		p.depth.Add(1)
	}
}

// Pop notes one element leaving the queue.
func (p *Progress) Pop() {
	if p != nil {
		p.depth.Add(-1)
		p.pops.Add(1)
	}
}

// Depth returns the current queue depth.
func (p *Progress) Depth() int64 {
	if p == nil {
		return 0
	}
	return p.depth.Load()
}

// Options tune the watchdog. Zero fields take the defaults.
type Options struct {
	// StalenessDeadline is the maximum age of a forwarded-but-unapplied
	// secondary subtransaction before StaleReplica fires.
	StalenessDeadline time.Duration
	// StallDeadline bounds epoch and queue quiet periods.
	StallDeadline time.Duration
	// PendingDeadline is the maximum age of a prepared 2PC participant
	// before PendingTwoPC fires.
	PendingDeadline time.Duration
	// Tick is the evaluation period.
	Tick time.Duration
	// FlightSize caps the flight-recorder ring (most recent trace
	// events); 0 takes the default, negative disables the ring.
	FlightSize int
	// FlightDir, when non-empty, is where alert-triggered dumps are
	// written as JSONL; empty disables dumping.
	FlightDir string
	// MaxDumps caps dumps per run so a flapping alert cannot fill a disk.
	MaxDumps int
	// LockWaitP99 is the live lock_wait p99 (over the recent-sample ring)
	// above which Contention fires; 0 takes the default, negative
	// disables the check.
	LockWaitP99 time.Duration
	// AbortRatePct is the cumulative abort percentage above which
	// Contention fires; 0 takes the default, negative disables the check.
	AbortRatePct float64
}

// DefaultOptions returns deadlines suited to the in-process simulation,
// where healthy propagation completes in single-digit milliseconds.
func DefaultOptions() Options {
	return Options{
		StalenessDeadline: 250 * time.Millisecond,
		StallDeadline:     200 * time.Millisecond,
		PendingDeadline:   250 * time.Millisecond,
		Tick:              25 * time.Millisecond,
		FlightSize:        4096,
		MaxDumps:          3,
		// Just under the paper's 50 ms lock timeout: a p99 here means the
		// tail of lock waits is being resolved by the timeout, not by
		// grants.
		LockWaitP99:  45 * time.Millisecond,
		AbortRatePct: 50,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.StalenessDeadline <= 0 {
		o.StalenessDeadline = d.StalenessDeadline
	}
	if o.StallDeadline <= 0 {
		o.StallDeadline = d.StallDeadline
	}
	if o.PendingDeadline <= 0 {
		o.PendingDeadline = d.PendingDeadline
	}
	if o.Tick <= 0 {
		o.Tick = d.Tick
	}
	if o.FlightSize == 0 {
		o.FlightSize = d.FlightSize
	}
	if o.MaxDumps <= 0 {
		o.MaxDumps = d.MaxDumps
	}
	if o.LockWaitP99 == 0 {
		o.LockWaitP99 = d.LockWaitP99
	}
	if o.AbortRatePct == 0 {
		o.AbortRatePct = d.AbortRatePct
	}
	return o
}

// watchObs holds the watchdog's pre-resolved live-metric handles.
type watchObs struct {
	active *obs.Gauge   // repl_watch_alerts_active
	dumps  *obs.Counter // repl_watch_flight_dumps_total
}

// outEntry is one forwarded-but-unapplied secondary subtransaction.
type outEntry struct {
	from  model.SiteID
	since time.Time
}

// alertKey identifies a condition across ticks so it raises once and
// clears once.
type alertKey struct {
	kind Kind
	site model.SiteID
	peer model.SiteID
	name string
}

// queueSample is the watchdog's per-queue memory between ticks.
type queueSample struct {
	pops  uint64
	since time.Time
}

// Watchdog is the monitor. Construct with New, wire with SetObs /
// SetTrace / the engine-side Register* and Queue calls, feed with
// Ingest (typically via trace.Recorder.SetSink), then Start.
type Watchdog struct {
	opts Options

	mu       sync.Mutex
	reg      *obs.Registry                          // repl:guardedby(mu)
	tr       *trace.Recorder                        // repl:guardedby(mu)
	obs      watchObs                               // repl:guardedby(mu)
	queues   []*Progress                            // repl:guardedby(mu)
	qs       map[*Progress]queueSample              // repl:guardedby(mu)
	epochs   map[model.SiteID]func() EpochStatus    // repl:guardedby(mu)
	epochAt  map[model.SiteID]queueSample           // pops field reused as the epoch // repl:guardedby(mu)
	pending  map[model.SiteID]func() PendingStatus  // repl:guardedby(mu)
	recovery map[model.SiteID]func() RecoveryStatus // repl:guardedby(mu)

	// outstanding[dest][tid] tracks forwarded-but-unapplied secondary
	// subtransactions, fed from the trace sink.
	outstanding map[model.SiteID]map[model.TxnID]outEntry // repl:guardedby(mu)

	// flight is the ring of most recent trace events.
	flight    []trace.Event // repl:guardedby(mu)
	flightIdx int           // repl:guardedby(mu)
	flightN   int           // repl:guardedby(mu)

	// Contention watch state: a ring of recent lock_wait durations (fed
	// from PhaseLatency events) and the cumulative commit/abort tally,
	// compared against LockWaitP99 / AbortRatePct each tick.
	lockWaits   [lockWaitRing]int64 // repl:guardedby(mu)
	lockWaitIdx int                 // repl:guardedby(mu)
	lockWaitN   int                 // repl:guardedby(mu)
	commits     uint64              // repl:guardedby(mu)
	aborts      uint64              // repl:guardedby(mu)
	waitGraphs  func() []contend.SiteWaitGraph // repl:guardedby(mu)
	waitDumps   []string                       // repl:guardedby(mu)

	active   map[alertKey]*Alert // repl:guardedby(mu)
	history  []*Alert            // repl:guardedby(mu)
	dumps    []string            // repl:guardedby(mu)
	raised   map[Kind]int        // repl:guardedby(mu)
	maxStale time.Duration       // repl:guardedby(mu)
	// staleBySite keeps the worst unapplied age per replica, so the
	// summary can say WHICH replica went stale, not just that one did.
	staleBySite map[model.SiteID]time.Duration // repl:guardedby(mu)

	stop chan struct{}
	done chan struct{}
}

// New returns a stopped watchdog.
//
//lint:allow guardedby construction is single-threaded; the tick loop and trace sink that share this state only run after Start
func New(o Options) *Watchdog {
	o = o.withDefaults()
	w := &Watchdog{
		opts:        o,
		qs:          make(map[*Progress]queueSample),
		epochs:      make(map[model.SiteID]func() EpochStatus),
		epochAt:     make(map[model.SiteID]queueSample),
		pending:     make(map[model.SiteID]func() PendingStatus),
		recovery:    make(map[model.SiteID]func() RecoveryStatus),
		outstanding: make(map[model.SiteID]map[model.TxnID]outEntry),
		active:      make(map[alertKey]*Alert),
		raised:      make(map[Kind]int),
		staleBySite: make(map[model.SiteID]time.Duration),
	}
	if o.FlightSize > 0 {
		w.flight = make([]trace.Event, o.FlightSize)
	}
	return w
}

// SetObs installs the live registry alert series are exported to; call
// before Start.
func (w *Watchdog) SetObs(r *obs.Registry) {
	if w == nil || r == nil {
		return
	}
	w.mu.Lock()
	w.reg = r
	w.obs = watchObs{
		active: r.Gauge("repl_watch_alerts_active"),
		dumps:  r.Counter("repl_watch_flight_dumps_total"),
	}
	w.mu.Unlock()
}

// SetTrace installs the recorder WatchAlert/WatchClear events are
// written to; call before Start.
func (w *Watchdog) SetTrace(tr *trace.Recorder) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.tr = tr
	w.mu.Unlock()
}

// Queue returns a liveness handle for the named queue at site; the
// watchdog flags it when it holds depth without popping. On a nil
// watchdog the returned handle is nil (and therefore a no-op).
func (w *Watchdog) Queue(site model.SiteID, name string) *Progress {
	if w == nil {
		return nil
	}
	p := &Progress{site: site, name: name}
	w.mu.Lock()
	w.queues = append(w.queues, p)
	w.mu.Unlock()
	return p
}

// RegisterEpoch installs a DAG(T) site's epoch probe.
func (w *Watchdog) RegisterEpoch(site model.SiteID, probe func() EpochStatus) {
	if w == nil || probe == nil {
		return
	}
	w.mu.Lock()
	w.epochs[site] = probe
	w.mu.Unlock()
}

// RegisterPending installs a BackEdge site's pending-2PC probe.
func (w *Watchdog) RegisterPending(site model.SiteID, probe func() PendingStatus) {
	if w == nil || probe == nil {
		return
	}
	w.mu.Lock()
	w.pending[site] = probe
	w.mu.Unlock()
}

// RegisterRecovery installs a site's crash-recovery probe: the watchdog
// flags a site that stays down past StallDeadline — a recovery that hung
// replaying its log, or a crash the harness forgot to restart.
func (w *Watchdog) RegisterRecovery(site model.SiteID, probe func() RecoveryStatus) {
	if w == nil || probe == nil {
		return
	}
	w.mu.Lock()
	w.recovery[site] = probe
	w.mu.Unlock()
}

// RegisterWaitGraphs installs the cluster's wait-for snapshot probe.
// When a Contention alert is raised the watchdog calls it (outside its
// own lock) and writes the snapshot as a waitfor-*.jsonl dump next to
// the flight recorder, so the post-mortem has the who-waits-on-whom
// state from the moment the threshold was crossed.
func (w *Watchdog) RegisterWaitGraphs(probe func() []contend.SiteWaitGraph) {
	if w == nil || probe == nil {
		return
	}
	w.mu.Lock()
	w.waitGraphs = probe
	w.mu.Unlock()
}

// Ingest consumes one live trace event: it maintains the
// forwarded-but-unapplied bookkeeping behind the staleness alert and
// appends to the flight-recorder ring. Install it as the recorder's
// sink: rec.SetSink(w.Ingest). Safe for concurrent use.
func (w *Watchdog) Ingest(ev trace.Event) {
	if w == nil {
		return
	}
	now := time.Now()
	w.mu.Lock()
	if w.flight != nil {
		w.flight[w.flightIdx] = ev
		w.flightIdx = (w.flightIdx + 1) % len(w.flight)
		if w.flightN < len(w.flight) {
			w.flightN++
		}
	}
	switch ev.Kind {
	case trace.SecondaryForwarded:
		if !ev.TID.Zero() {
			m := w.outstanding[ev.Peer]
			if m == nil {
				m = make(map[model.TxnID]outEntry)
				w.outstanding[ev.Peer] = m
			}
			m[ev.TID] = outEntry{from: ev.Site, since: now}
		}
	case trace.SecondaryApplied, trace.BackedgeCommit:
		delete(w.outstanding[ev.Site], ev.TID)
	case trace.TxnAbort:
		// An aborted BackEdge transaction's eagerly-shipped
		// subtransactions will never apply; drop them everywhere.
		for _, m := range w.outstanding {
			delete(m, ev.TID)
		}
		w.aborts++
	case trace.TxnCommit:
		w.commits++
	case trace.PhaseLatency:
		if ev.Phase == lockWaitPhase {
			w.lockWaits[w.lockWaitIdx] = ev.Dur
			w.lockWaitIdx = (w.lockWaitIdx + 1) % lockWaitRing
			if w.lockWaitN < lockWaitRing {
				w.lockWaitN++
			}
		}
	}
	w.mu.Unlock()
}

// lockWaitPhase is the PhaseLatency tag the contention check watches.
var lockWaitPhase = metrics.PhaseLockWait.String()

// Start launches the evaluation loop.
func (w *Watchdog) Start() {
	if w == nil || w.stop != nil {
		return
	}
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go w.loop()
}

// Stop terminates the evaluation loop after one final evaluation (so a
// condition that arose just before shutdown is still reported).
func (w *Watchdog) Stop() {
	if w == nil || w.stop == nil {
		return
	}
	close(w.stop)
	<-w.done
	w.stop = nil
}

func (w *Watchdog) loop() {
	defer close(w.done)
	t := time.NewTicker(w.opts.Tick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.tick()
		case <-w.stop:
			w.tick()
			return
		}
	}
}

// tick evaluates every condition once. It computes under w.mu but
// records trace events and writes dumps after releasing it: the
// recorder's sink is w.Ingest, so recording under w.mu would deadlock.
func (w *Watchdog) tick() {
	now := time.Now()
	w.mu.Lock()
	want := make(map[alertKey]*Alert)

	// Staleness: oldest forwarded-but-unapplied secondary per replica.
	for site, m := range w.outstanding {
		var oldest outEntry
		var tid model.TxnID
		for id, e := range m {
			if oldest.since.IsZero() || e.since.Before(oldest.since) {
				oldest, tid = e, id
			}
		}
		if oldest.since.IsZero() {
			continue
		}
		age := now.Sub(oldest.since)
		if age > w.maxStale {
			w.maxStale = age
		}
		if age > w.staleBySite[site] {
			w.staleBySite[site] = age
		}
		if age > w.opts.StalenessDeadline {
			k := alertKey{kind: StaleReplica, site: site, peer: oldest.from}
			want[k] = &Alert{
				Kind: StaleReplica, Site: site, Peer: oldest.from, TID: tid, Age: age,
				Detail: fmt.Sprintf("%d unapplied, oldest %v", len(m), tid),
			}
		}
		if w.reg != nil {
			lag := obs.Label{Key: "site", Value: fmt.Sprint(site)}
			w.reg.Gauge("repl_watch_version_lag", lag).Set(int64(len(m)))
			w.reg.Gauge("repl_watch_oldest_unapplied_ms", lag).Set(age.Milliseconds())
		}
	}

	// Per-edge in-flight depth, derived from the same bookkeeping.
	if w.reg != nil {
		edges := make(map[[2]model.SiteID]int64)
		for site, m := range w.outstanding {
			for _, e := range m {
				edges[[2]model.SiteID{e.from, site}]++
			}
		}
		for e, n := range edges {
			w.reg.Gauge("repl_watch_edge_inflight",
				obs.Label{Key: "from", Value: fmt.Sprint(e[0])},
				obs.Label{Key: "to", Value: fmt.Sprint(e[1])}).Set(n)
		}
	}

	// Epoch progress: a site is stalled when its epoch has not moved
	// for StallDeadline while the cluster-wide maximum has —
	// distinguishing a partitioned edge from a globally idle cluster.
	var maxEpoch uint64
	stats := make(map[model.SiteID]EpochStatus, len(w.epochs))
	for site, probe := range w.epochs {
		st := probe()
		stats[site] = st
		if st.Epoch > maxEpoch {
			maxEpoch = st.Epoch
		}
		s, ok := w.epochAt[site]
		if !ok || s.pops != st.Epoch {
			w.epochAt[site] = queueSample{pops: st.Epoch, since: now}
		}
	}
	for site, st := range stats {
		s := w.epochAt[site]
		if st.Epoch >= maxEpoch || now.Sub(s.since) <= w.opts.StallDeadline {
			continue
		}
		peer := model.NoSite
		if len(st.Blocked) > 0 {
			peer = st.Blocked[0]
		}
		k := alertKey{kind: EpochStall, site: site, peer: peer}
		want[k] = &Alert{
			Kind: EpochStall, Site: site, Peer: peer, Age: now.Sub(s.since),
			Detail: fmt.Sprintf("epoch %d, cluster max %d, blocked on %v", st.Epoch, maxEpoch, st.Blocked),
		}
	}

	// Queue progress: depth held with no pops for StallDeadline.
	for _, p := range w.queues {
		depth, pops := p.depth.Load(), p.pops.Load()
		s, ok := w.qs[p]
		if !ok || s.pops != pops || depth == 0 {
			w.qs[p] = queueSample{pops: pops, since: now}
			continue
		}
		if age := now.Sub(s.since); age > w.opts.StallDeadline {
			k := alertKey{kind: QueueStall, site: p.site, peer: model.NoSite, name: p.name}
			want[k] = &Alert{
				Kind: QueueStall, Site: p.site, Peer: model.NoSite, Age: age,
				Detail: fmt.Sprintf("queue %q depth %d undrained", p.name, depth),
			}
		}
	}

	// Pending 2PC participants.
	for site, probe := range w.pending {
		st := probe()
		if st.Count == 0 || st.OldestSince.IsZero() {
			continue
		}
		age := now.Sub(st.OldestSince)
		if age > w.opts.PendingDeadline {
			k := alertKey{kind: PendingTwoPC, site: site, peer: st.Oldest.Site}
			want[k] = &Alert{
				Kind: PendingTwoPC, Site: site, Peer: st.Oldest.Site, TID: st.Oldest, Age: age,
				Detail: fmt.Sprintf("%d prepared, oldest %v", st.Count, st.Oldest),
			}
		}
	}

	// Crashed sites that have stayed down suspiciously long.
	for site, probe := range w.recovery {
		st := probe()
		if !st.Down || st.Since.IsZero() {
			continue
		}
		if age := now.Sub(st.Since); age > w.opts.StallDeadline {
			k := alertKey{kind: RecoveryStall, site: site, peer: model.NoSite}
			want[k] = &Alert{
				Kind: RecoveryStall, Site: site, Peer: model.NoSite, Age: age,
				Detail: fmt.Sprintf("site down %v without completing recovery", age.Round(time.Millisecond)),
			}
		}
	}

	// Contention thresholds: the lock_wait p99 over the recent ring, and
	// the cumulative abort rate. Site-less — the thresholds are cluster
	// conditions; the dump that follows says where the waiting is.
	if w.opts.LockWaitP99 > 0 && w.lockWaitN >= contentionMinSamples {
		s := make([]int64, w.lockWaitN)
		copy(s, w.lockWaits[:w.lockWaitN])
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		p99 := time.Duration(s[(99*len(s)+99)/100-1])
		if p99 > w.opts.LockWaitP99 {
			k := alertKey{kind: Contention, site: model.NoSite, peer: model.NoSite, name: "lock_wait_p99"}
			want[k] = &Alert{
				Kind: Contention, Site: model.NoSite, Peer: model.NoSite,
				Detail: fmt.Sprintf("lock_wait p99 %v over %d recent samples (threshold %v)",
					p99.Round(time.Microsecond), len(s), w.opts.LockWaitP99),
			}
		}
	}
	if w.opts.AbortRatePct > 0 {
		if done := w.commits + w.aborts; done >= contentionMinSamples {
			rate := 100 * float64(w.aborts) / float64(done)
			if rate > w.opts.AbortRatePct {
				k := alertKey{kind: Contention, site: model.NoSite, peer: model.NoSite, name: "abort_rate"}
				want[k] = &Alert{
					Kind: Contention, Site: model.NoSite, Peer: model.NoSite,
					Detail: fmt.Sprintf("abort rate %.1f%% (%d of %d, threshold %.1f%%)",
						rate, w.aborts, done, w.opts.AbortRatePct),
				}
			}
		}
	}

	// Diff against the active set.
	var newly, cleared []*Alert
	for k, a := range want {
		if cur, ok := w.active[k]; ok {
			cur.Age = a.Age
			continue
		}
		a.Raised = now
		w.active[k] = a
		w.history = append(w.history, a)
		w.raised[a.Kind]++
		if w.reg != nil {
			w.reg.Counter("repl_watch_alerts_total",
				obs.Label{Key: "kind", Value: a.Kind.String()}).Inc()
		}
		newly = append(newly, a)
	}
	for k, a := range w.active {
		if _, ok := want[k]; !ok {
			a.Cleared = now
			delete(w.active, k)
			cleared = append(cleared, a)
		}
	}
	w.obs.active.Set(int64(len(w.active)))

	tr := w.tr
	var dump []trace.Event
	if len(newly) > 0 && w.opts.FlightDir != "" && len(w.dumps) < w.opts.MaxDumps && w.flightN > 0 {
		dump = make([]trace.Event, 0, w.flightN)
		start := 0
		if w.flightN == len(w.flight) {
			start = w.flightIdx
		}
		for i := 0; i < w.flightN; i++ {
			dump = append(dump, w.flight[(start+i)%len(w.flight)])
		}
		w.dumps = append(w.dumps, "") // reserve the slot; path filled below
	}
	dumpSlot := len(w.dumps) - 1

	// A newly raised Contention alert additionally snapshots the wait-for
	// graphs. The probe reaches into the engines' lock managers, so it
	// runs after w.mu is released (same discipline as the trace records).
	var waitProbe func() []contend.SiteWaitGraph
	for _, a := range newly {
		if a.Kind == Contention && w.waitGraphs != nil &&
			w.opts.FlightDir != "" && len(w.waitDumps) < w.opts.MaxDumps {
			waitProbe = w.waitGraphs
			w.waitDumps = append(w.waitDumps, "") // reserve; path filled below
			break
		}
	}
	waitSlot := len(w.waitDumps) - 1
	w.mu.Unlock()

	// Outside the lock: trace events and the flight dump.
	for _, a := range newly {
		tr.Record(trace.WatchAlert, a.Site, a.Peer, a.TID, 0)
	}
	for _, a := range cleared {
		tr.Record(trace.WatchClear, a.Site, a.Peer, a.TID, 0)
	}
	if dump != nil {
		path := filepath.Join(w.opts.FlightDir,
			fmt.Sprintf("flight-%03d-%s.jsonl", dumpSlot+1, newly[0].Kind))
		if err := w.writeDump(path, dump); err != nil {
			path = ""
		}
		w.mu.Lock()
		w.dumps[dumpSlot] = path
		if path != "" {
			w.obs.dumps.Inc()
		}
		w.mu.Unlock()
	}
	if waitProbe != nil {
		gs := waitProbe()
		path := filepath.Join(w.opts.FlightDir, fmt.Sprintf("waitfor-%03d.jsonl", waitSlot+1))
		if err := w.writeWaitDump(path, gs); err != nil {
			path = ""
		}
		w.mu.Lock()
		w.waitDumps[waitSlot] = path
		if path != "" {
			w.obs.dumps.Inc()
		}
		w.mu.Unlock()
	}
}

// writeWaitDump writes a wait-for snapshot as JSONL.
func (w *Watchdog) writeWaitDump(path string, gs []contend.SiteWaitGraph) error {
	if err := os.MkdirAll(w.opts.FlightDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := contend.WriteWaitGraphs(f, gs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeDump writes the flight ring as JSONL.
func (w *Watchdog) writeDump(path string, events []trace.Event) error {
	if err := os.MkdirAll(w.opts.FlightDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteJSONL(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Active returns the currently-raised alerts, sorted for stable output.
func (w *Watchdog) Active() []Alert {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	out := make([]Alert, 0, len(w.active))
	for _, a := range w.active {
		out = append(out, *a)
	}
	w.mu.Unlock()
	sortAlerts(out)
	return out
}

// History returns every alert raised so far, cleared ones included, in
// raise order.
func (w *Watchdog) History() []Alert {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	out := make([]Alert, len(w.history))
	for i, a := range w.history {
		out[i] = *a
	}
	w.mu.Unlock()
	return out
}

// WaitDumps returns the wait-for snapshot dump paths written so far.
func (w *Watchdog) WaitDumps() []string {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []string
	for _, p := range w.waitDumps {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Dumps returns the flight-recorder dump paths written so far.
func (w *Watchdog) Dumps() []string {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []string
	for _, p := range w.dumps {
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

func sortAlerts(a []Alert) {
	sort.Slice(a, func(i, j int) bool {
		if a[i].Kind != a[j].Kind {
			return a[i].Kind < a[j].Kind
		}
		if a[i].Site != a[j].Site {
			return a[i].Site < a[j].Site
		}
		return a[i].Peer < a[j].Peer
	})
}

// Summary condenses a run's watchdog activity for machine-readable
// benchmark output.
type Summary struct {
	// AlertsRaised counts raised alerts by kind name.
	AlertsRaised map[string]int `json:"alerts_raised,omitempty"`
	// ActiveAlerts is the number of alerts still raised.
	ActiveAlerts int `json:"active_alerts"`
	// MaxStalenessMs is the worst forwarded-but-unapplied age observed.
	MaxStalenessMs int64 `json:"max_staleness_ms"`
	// MaxStalenessBySiteMs breaks MaxStalenessMs down per replica: the
	// worst unapplied age each site accumulated. MaxStalenessMs stays for
	// compatibility (it equals this map's maximum).
	MaxStalenessBySiteMs map[model.SiteID]int64 `json:"max_staleness_by_site_ms,omitempty"`
	// FlightDumps lists the flight-recorder dumps written.
	FlightDumps []string `json:"flight_dumps,omitempty"`
	// WaitGraphDumps lists the wait-for snapshots written on Contention
	// alerts.
	WaitGraphDumps []string `json:"waitfor_dumps,omitempty"`
}

// Summarize returns the run-so-far summary.
func (w *Watchdog) Summarize() Summary {
	if w == nil {
		return Summary{}
	}
	w.mu.Lock()
	s := Summary{
		ActiveAlerts:   len(w.active),
		MaxStalenessMs: w.maxStale.Milliseconds(),
	}
	if len(w.staleBySite) > 0 {
		s.MaxStalenessBySiteMs = make(map[model.SiteID]int64, len(w.staleBySite))
		for site, d := range w.staleBySite {
			s.MaxStalenessBySiteMs[site] = d.Milliseconds()
		}
	}
	if len(w.raised) > 0 {
		s.AlertsRaised = make(map[string]int, len(w.raised))
		for k, n := range w.raised {
			s.AlertsRaised[k.String()] = n
		}
	}
	for _, p := range w.dumps {
		if p != "" {
			s.FlightDumps = append(s.FlightDumps, p)
		}
	}
	for _, p := range w.waitDumps {
		if p != "" {
			s.WaitGraphDumps = append(s.WaitGraphDumps, p)
		}
	}
	w.mu.Unlock()
	return s
}
