package watch

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
)

// testOptions returns deadlines short enough that tests can cross them
// with small sleeps. Tick is irrelevant: tests call tick() directly.
func testOptions() Options {
	return Options{
		StalenessDeadline: 5 * time.Millisecond,
		StallDeadline:     5 * time.Millisecond,
		PendingDeadline:   5 * time.Millisecond,
		Tick:              time.Hour,
		FlightSize:        16,
		MaxDumps:          2,
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var w *Watchdog
	w.SetObs(obs.NewRegistry())
	w.SetTrace(trace.NewRecorder())
	w.Ingest(trace.Event{})
	w.RegisterEpoch(0, func() EpochStatus { return EpochStatus{} })
	w.RegisterPending(0, func() PendingStatus { return PendingStatus{} })
	w.Start()
	w.Stop()
	if got := w.Active(); got != nil {
		t.Fatalf("nil watchdog Active = %v", got)
	}
	if s := w.Summarize(); s.ActiveAlerts != 0 {
		t.Fatalf("nil watchdog Summarize = %+v", s)
	}
	p := w.Queue(1, "fifo")
	if p != nil {
		t.Fatal("nil watchdog must hand out nil Progress")
	}
	p.Push()
	p.Pop()
	if p.Depth() != 0 {
		t.Fatal("nil Progress must be a no-op")
	}
}

func TestQueueStallRaisesAndClears(t *testing.T) {
	w := New(testOptions())
	p := w.Queue(3, "fifo")
	p.Push()
	w.tick() // samples the queue
	time.Sleep(10 * time.Millisecond)
	w.tick()
	active := w.Active()
	if len(active) != 1 || active[0].Kind != QueueStall || active[0].Site != 3 {
		t.Fatalf("want one QueueStall at site 3, got %v", active)
	}
	p.Pop()
	w.tick()
	if got := w.Active(); len(got) != 0 {
		t.Fatalf("alert should clear after the queue drains, got %v", got)
	}
	hist := w.History()
	if len(hist) != 1 || hist[0].Cleared.IsZero() {
		t.Fatalf("history should show one cleared alert, got %+v", hist)
	}
}

func TestEpochStallNeedsClusterProgress(t *testing.T) {
	w := New(testOptions())
	stuck, moving := uint64(7), uint64(7)
	w.RegisterEpoch(2, func() EpochStatus {
		return EpochStatus{Epoch: stuck, Blocked: []model.SiteID{0}}
	})
	w.RegisterEpoch(1, func() EpochStatus { return EpochStatus{Epoch: moving} })

	// Whole cluster quiet: no site is ahead, so nothing is stalled.
	w.tick()
	time.Sleep(10 * time.Millisecond)
	w.tick()
	if got := w.Active(); len(got) != 0 {
		t.Fatalf("globally idle cluster must not alert, got %v", got)
	}

	// Site 1 advances while site 2 does not: site 2 is stalled, and the
	// alert names the blocked-on parent as the peer.
	moving = 9
	w.tick()
	time.Sleep(10 * time.Millisecond)
	moving = 11
	w.tick()
	active := w.Active()
	if len(active) != 1 || active[0].Kind != EpochStall || active[0].Site != 2 || active[0].Peer != 0 {
		t.Fatalf("want EpochStall{site 2, peer 0}, got %v", active)
	}

	// Site 2 catches up: cleared.
	stuck = 11
	w.tick()
	if got := w.Active(); len(got) != 0 {
		t.Fatalf("alert should clear once the epoch advances, got %v", got)
	}
}

func TestPendingTwoPCAlert(t *testing.T) {
	w := New(testOptions())
	tid := model.TxnID{Site: 2, Seq: 5}
	st := PendingStatus{Count: 1, Oldest: tid, OldestSince: time.Now()}
	w.RegisterPending(0, func() PendingStatus { return st })
	w.tick()
	if got := w.Active(); len(got) != 0 {
		t.Fatalf("fresh prepared entry must not alert, got %v", got)
	}
	time.Sleep(10 * time.Millisecond)
	w.tick()
	active := w.Active()
	if len(active) != 1 || active[0].Kind != PendingTwoPC || active[0].Site != 0 || active[0].TID != tid {
		t.Fatalf("want PendingTwoPC{site 0, %v}, got %v", tid, active)
	}
	st = PendingStatus{}
	w.tick()
	if got := w.Active(); len(got) != 0 {
		t.Fatalf("alert should clear once the decision lands, got %v", got)
	}
}

func TestStalenessFromIngestAndFlightDump(t *testing.T) {
	opts := testOptions()
	opts.FlightDir = t.TempDir()
	w := New(opts)
	reg := obs.NewRegistry()
	w.SetObs(reg)
	rec := trace.NewRecorder()
	rec.SetSink(w.Ingest)
	w.SetTrace(rec)

	tid := model.TxnID{Site: 0, Seq: 1}
	octx := model.SpanContext{TID: tid}
	rec.RecordSpan(trace.SecondaryForwarded, 0, 1, tid, 1, octx.SpanAt(0), 0)
	time.Sleep(10 * time.Millisecond)
	w.tick()
	active := w.Active()
	if len(active) != 1 || active[0].Kind != StaleReplica || active[0].Site != 1 || active[0].Peer != 0 {
		t.Fatalf("want StaleReplica{site 1, peer 0}, got %v", active)
	}

	// The raise wrote a flight dump whose JSONL round-trips, and recorded
	// a WatchAlert trace event.
	dumps := w.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("want one flight dump, got %v", dumps)
	}
	f, err := os.Open(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatalf("dump is not valid JSONL: %v", err)
	}
	if len(events) == 0 || events[0].Kind != trace.SecondaryForwarded {
		t.Fatalf("dump missing the ring contents: %v", events)
	}
	sawAlert := false
	for _, ev := range rec.Snapshot() {
		if ev.Kind == trace.WatchAlert && ev.Site == 1 {
			sawAlert = true
		}
	}
	if !sawAlert {
		t.Error("no WatchAlert trace event recorded")
	}

	// The applied event clears the bookkeeping and the alert; the clear
	// is also traced.
	rec.RecordSpan(trace.SecondaryApplied, 1, model.NoSite, tid, 1, octx.Fork(0).SpanAt(1), octx.SpanAt(0))
	w.tick()
	if got := w.Active(); len(got) != 0 {
		t.Fatalf("alert should clear after apply, got %v", got)
	}
	sawClear := false
	for _, ev := range rec.Snapshot() {
		if ev.Kind == trace.WatchClear {
			sawClear = true
		}
	}
	if !sawClear {
		t.Error("no WatchClear trace event recorded")
	}

	s := w.Summarize()
	if s.AlertsRaised["stale_replica"] != 1 || s.MaxStalenessMs < 5 || len(s.FlightDumps) != 1 {
		t.Fatalf("summary mismatch: %+v", s)
	}
	snap := reg.Snapshot()
	if snap[`repl_watch_alerts_total{kind="stale_replica"}`] != 1 {
		t.Fatalf("alert counter missing from registry: %v", snap)
	}
	if snap["repl_watch_flight_dumps_total"] != 1 {
		t.Fatalf("dump counter missing from registry: %v", snap)
	}
}

func TestFlightDumpCaps(t *testing.T) {
	opts := testOptions()
	opts.FlightSize = 4
	opts.MaxDumps = 1
	opts.FlightDir = t.TempDir()
	w := New(opts)
	rec := trace.NewRecorder()
	rec.SetSink(w.Ingest)
	w.SetTrace(rec)

	// Overfill the ring, then trigger two distinct alerts in two ticks.
	for i := 0; i < 10; i++ {
		tid := model.TxnID{Site: 0, Seq: uint64(i + 1)}
		rec.RecordSpan(trace.SecondaryForwarded, 0, 1, tid, 1, model.RootSpan(tid), 0)
	}
	time.Sleep(10 * time.Millisecond)
	w.tick()
	p := w.Queue(2, "fifo")
	p.Push()
	w.tick()
	time.Sleep(10 * time.Millisecond)
	w.tick()
	if len(w.Active()) != 2 {
		t.Fatalf("want two active alerts, got %v", w.Active())
	}

	dumps := w.Dumps()
	if len(dumps) != 1 {
		t.Fatalf("MaxDumps=1 must cap dumps, got %v", dumps)
	}
	f, err := os.Open(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadJSONL(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("FlightSize=4 must cap the ring, dump has %d events", len(events))
	}
	// The ring keeps the MOST RECENT events.
	if events[len(events)-1].TID.Seq != 10 {
		t.Fatalf("ring lost the newest event: %+v", events)
	}
	entries, err := os.ReadDir(filepath.Dir(dumps[0]))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("dump dir should hold exactly one file, got %d", len(entries))
	}
}
