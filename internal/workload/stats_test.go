package workload

import (
	"strings"
	"testing"

	"repro/internal/model"
)

func TestStatsHandBuilt(t *testing.T) {
	p := model.NewPlacement(3, 4)
	p.Primary = []model.SiteID{0, 0, 1, 2}
	p.Replicas = [][]model.SiteID{{1, 2}, nil, {2}, {0}} // s2->s0 is a backedge
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	st := Stats(p)
	if st.Items != 4 || st.ReplicatedItems != 3 || st.Replicas != 4 {
		t.Errorf("stats = %+v", st)
	}
	if st.Backedges != 1 || st.BackedgeWeight != 1 {
		t.Errorf("backedges = %d (w=%d), want 1 (w=1)", st.Backedges, st.BackedgeWeight)
	}
	if st.CopyEdges != 4 {
		t.Errorf("copy edges = %d, want 4", st.CopyEdges)
	}
	// Per-site replica fractions: s0: 1/3, s1: 1/2, s2: 2/3 -> avg 0.5.
	if st.RemoteReadFrac < 0.49 || st.RemoteReadFrac > 0.51 {
		t.Errorf("remote read frac = %v, want 0.5", st.RemoteReadFrac)
	}
	if !strings.Contains(st.String(), "backedges=1") {
		t.Errorf("String() = %q", st.String())
	}
}

func TestStatsAtR1MatchPaperReplicaCount(t *testing.T) {
	// §5.3.2: "at r = 1, there are almost 500 replicas in the system"
	// for the default 200 items, 9 sites, s=0.5, b=0.2.
	c := Default()
	c.ReplicationProb = 1
	p, err := c.GeneratePlacement()
	if err != nil {
		t.Fatal(err)
	}
	st := Stats(p)
	if st.Replicas < 350 || st.Replicas > 650 {
		t.Errorf("replicas at r=1: %d, paper reports ~500", st.Replicas)
	}
}

func TestStatsBackedgeWeightZeroAtBZero(t *testing.T) {
	c := Default()
	c.BackedgeProb = 0
	p, err := c.GeneratePlacement()
	if err != nil {
		t.Fatal(err)
	}
	if st := Stats(p); st.Backedges != 0 {
		t.Errorf("b=0 placement has backedges: %+v", st)
	}
}
