// Package workload implements the data-distribution and
// transaction-generation schemes of §5.2 and the parameter space of
// Table 1. Data placement assigns primary copies uniformly over the sites
// and replicates a fraction r of each site's primaries; replica sites are
// drawn with probability s from either all sites (with probability b,
// creating backedges with respect to the total site order) or only from
// the sites that follow the primary in the order. Transactions are
// fixed-length read/write programs parameterized by the read-transaction
// and read-operation probabilities.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// Config is the full experiment parameter set of Table 1.
type Config struct {
	Sites           int     // m: number of sites (default 9, range 3–15)
	Items           int     // n: number of distinct items (default 200)
	ReplicationProb float64 // r: fraction of primaries that are replicated (default 0.2)
	SiteProb        float64 // s: probability a candidate site receives a replica (default 0.5)
	BackedgeProb    float64 // b: probability an item's replicas may precede its primary (default 0.2)
	OpsPerTxn       int     // operations per transaction (default 10)
	ThreadsPerSite  int     // concurrent client threads per site (default 3, range 1–5)
	TxnsPerThread   int     // transactions issued per thread (default 1000)
	ReadOpProb      float64 // fraction of reads in an update transaction (default 0.7)
	ReadTxnProb     float64 // probability a transaction is read-only (default 0.5)
	Seed            int64   // RNG seed; same seed, same placement and programs

	// Skew selects the item-access distribution within a site. 0 (the
	// paper's setting) is uniform; a value > 1 draws items from a Zipf
	// distribution with parameter s=Skew, concentrating traffic on a hot
	// subset — an extension ablation beyond the paper's workload.
	Skew float64
}

// Default returns the default parameter settings of Table 1.
func Default() Config {
	return Config{
		Sites:           9,
		Items:           200,
		ReplicationProb: 0.2,
		SiteProb:        0.5,
		BackedgeProb:    0.2,
		OpsPerTxn:       10,
		ThreadsPerSite:  3,
		TxnsPerThread:   1000,
		ReadOpProb:      0.7,
		ReadTxnProb:     0.5,
		Seed:            1,
	}
}

// Validate checks the configuration for placement generation: in addition
// to ValidateRun it requires enough items for every site to hold some.
func (c Config) Validate() error {
	if c.Items < c.Sites {
		return fmt.Errorf("workload: need at least as many items (%d) as sites (%d)", c.Items, c.Sites)
	}
	return c.ValidateRun()
}

// ValidateRun checks the parameters needed to drive client threads; it is
// sufficient when the data placement is supplied externally.
func (c Config) ValidateRun() error {
	if c.Sites < 1 {
		return fmt.Errorf("workload: need at least 1 site, got %d", c.Sites)
	}
	if c.OpsPerTxn < 1 || c.ThreadsPerSite < 1 || c.TxnsPerThread < 0 {
		return fmt.Errorf("workload: OpsPerTxn/ThreadsPerSite/TxnsPerThread out of range")
	}
	if c.Skew != 0 && c.Skew <= 1 {
		return fmt.Errorf("workload: Skew must be 0 (uniform) or > 1 (Zipf s), got %v", c.Skew)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ReplicationProb", c.ReplicationProb},
		{"SiteProb", c.SiteProb},
		{"BackedgeProb", c.BackedgeProb},
		{"ReadOpProb", c.ReadOpProb},
		{"ReadTxnProb", c.ReadTxnProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("workload: %s=%v outside [0,1]", p.name, p.v)
		}
	}
	return nil
}

// GeneratePlacement builds a data placement according to §5.2. The total
// site order used to distinguish DAG edges from backedges is the site ID
// order s0 < s1 < ... (the chain the BackEdge prototype propagates
// along); an edge si→sj with j < i is a backedge.
func (c Config) GeneratePlacement() (*model.Placement, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	p := model.NewPlacement(c.Sites, c.Items)

	// Uniform primaries: a shuffled round-robin gives every site
	// approximately n/m primaries without tying item IDs to sites.
	perm := rng.Perm(c.Items)
	for i, item := range perm {
		p.Primary[item] = model.SiteID(i % c.Sites)
	}

	for item := 0; item < c.Items; item++ {
		if rng.Float64() >= c.ReplicationProb {
			continue // local (unreplicated) item
		}
		primary := p.Primary[item]
		var candidates []model.SiteID
		if rng.Float64() < c.BackedgeProb {
			// All sites are candidates; replicas before the primary in the
			// order induce backedges.
			for s := 0; s < c.Sites; s++ {
				if model.SiteID(s) != primary {
					candidates = append(candidates, model.SiteID(s))
				}
			}
		} else {
			for s := int(primary) + 1; s < c.Sites; s++ {
				candidates = append(candidates, model.SiteID(s))
			}
		}
		for _, cand := range candidates {
			if rng.Float64() < c.SiteProb {
				p.Replicas[item] = append(p.Replicas[item], cand)
			}
		}
	}
	if err := p.Finish(); err != nil {
		return nil, err
	}
	return p, nil
}

// TxnGen deterministically generates the transaction programs of one
// client thread (§5.2: a sequence of OpsPerTxn read/write operations;
// reads draw uniformly from the copies stored at the thread's site,
// writes from the primaries there).
type TxnGen struct {
	cfg   Config
	rng   *rand.Rand
	reads []model.ItemID // items readable at the site
	prims []model.ItemID // items writable at the site

	readZipf, primZipf *rand.Zipf // nil when Skew == 0
}

// NewTxnGen returns a generator for a thread at the given site. Distinct
// (site, thread) pairs should use distinct seeds.
func NewTxnGen(cfg Config, p *model.Placement, site model.SiteID, seed int64) *TxnGen {
	g := &TxnGen{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(seed)),
		reads: p.CopiesAt(site),
		prims: p.PrimariesAt(site),
	}
	if cfg.Skew > 1 {
		if len(g.reads) > 0 {
			g.readZipf = rand.NewZipf(g.rng, cfg.Skew, 1, uint64(len(g.reads)-1))
		}
		if len(g.prims) > 0 {
			g.primZipf = rand.NewZipf(g.rng, cfg.Skew, 1, uint64(len(g.prims)-1))
		}
	}
	return g
}

func (g *TxnGen) pickRead() model.ItemID {
	if g.readZipf != nil {
		return g.reads[g.readZipf.Uint64()]
	}
	return g.reads[g.rng.Intn(len(g.reads))]
}

func (g *TxnGen) pickWrite() model.ItemID {
	if g.primZipf != nil {
		return g.prims[g.primZipf.Uint64()]
	}
	return g.prims[g.rng.Intn(len(g.prims))]
}

// Next generates one transaction program.
func (g *TxnGen) Next() []model.Op {
	readOnly := g.rng.Float64() < g.cfg.ReadTxnProb
	ops := make([]model.Op, 0, g.cfg.OpsPerTxn)
	for i := 0; i < g.cfg.OpsPerTxn; i++ {
		isRead := readOnly || g.rng.Float64() < g.cfg.ReadOpProb
		if !isRead && len(g.prims) == 0 {
			isRead = true // a site with no primaries can only read
		}
		if isRead {
			ops = append(ops, model.Op{Kind: model.OpRead, Item: g.pickRead()})
		} else {
			ops = append(ops, model.Op{Kind: model.OpWrite, Item: g.pickWrite(), Value: g.rng.Int63()})
		}
	}
	return ops
}
