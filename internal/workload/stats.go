package workload

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/model"
)

// PlacementStats summarizes a data placement the way the paper reasons
// about it in §5.3: how many items are replicated, how many physical
// replicas exist (at r=1 the paper notes "almost 500 replicas"), and how
// heavy the backedge side of the copy graph is.
type PlacementStats struct {
	Items           int
	ReplicatedItems int
	Replicas        int     // physical secondary copies
	CopyEdges       int     // distinct copy-graph edges
	Backedges       int     // distinct edges pointing backwards in site order
	BackedgeWeight  int     // items inducing backedges
	RemoteReadFrac  float64 // fraction of a uniform site-local read that hits a replica
}

// Stats computes placement statistics with respect to the site-ID order.
func Stats(p *model.Placement) PlacementStats {
	st := PlacementStats{Items: p.NumItems}
	for i := 0; i < p.NumItems; i++ {
		reps := p.ReplicaSites(model.ItemID(i))
		if len(reps) > 0 {
			st.ReplicatedItems++
		}
		st.Replicas += len(reps)
	}
	g := graph.FromPlacement(p)
	st.CopyEdges = g.NumEdges()
	order := make([]model.SiteID, p.NumSites)
	for i := range order {
		order[i] = model.SiteID(i)
	}
	backs := graph.OrderBackedges(g, order)
	st.Backedges = len(backs)
	st.BackedgeWeight = graph.TotalWeight(g, backs)

	// Average, over sites, of replicas/(replicas+primaries): the chance a
	// uniformly chosen readable item at a site is a secondary copy — which
	// under PSL is exactly the remote-read probability.
	var acc float64
	for s := 0; s < p.NumSites; s++ {
		prim := len(p.PrimariesAt(model.SiteID(s)))
		repl := len(p.ReplicasAt(model.SiteID(s)))
		if prim+repl > 0 {
			acc += float64(repl) / float64(prim+repl)
		}
	}
	st.RemoteReadFrac = acc / float64(p.NumSites)
	return st
}

func (st PlacementStats) String() string {
	return fmt.Sprintf("items=%d replicated=%d replicas=%d edges=%d backedges=%d(w=%d) remoteReadFrac=%.2f",
		st.Items, st.ReplicatedItems, st.Replicas, st.CopyEdges, st.Backedges, st.BackedgeWeight, st.RemoteReadFrac)
}
