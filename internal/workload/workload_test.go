package workload

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/model"
)

func TestDefaultMatchesTable1(t *testing.T) {
	c := Default()
	if c.Sites != 9 || c.Items != 200 || c.ReplicationProb != 0.2 ||
		c.SiteProb != 0.5 || c.BackedgeProb != 0.2 || c.OpsPerTxn != 10 ||
		c.ThreadsPerSite != 3 || c.TxnsPerThread != 1000 ||
		c.ReadOpProb != 0.7 || c.ReadTxnProb != 0.5 {
		t.Errorf("defaults diverge from Table 1: %+v", c)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Sites = 0 },
		func(c *Config) { c.Items = c.Sites - 1 },
		func(c *Config) { c.OpsPerTxn = 0 },
		func(c *Config) { c.ThreadsPerSite = 0 },
		func(c *Config) { c.ReplicationProb = 1.5 },
		func(c *Config) { c.BackedgeProb = -0.1 },
		func(c *Config) { c.ReadOpProb = 2 },
	}
	for i, mut := range cases {
		c := Default()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestPlacementDeterministicPerSeed(t *testing.T) {
	c := Default()
	p1, err := c.GeneratePlacement()
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := c.GeneratePlacement()
	for i := 0; i < c.Items; i++ {
		if p1.Primary[i] != p2.Primary[i] || len(p1.Replicas[i]) != len(p2.Replicas[i]) {
			t.Fatalf("placement not deterministic at item %d", i)
		}
	}
	c.Seed = 2
	p3, _ := c.GeneratePlacement()
	same := true
	for i := 0; i < c.Items; i++ {
		if p1.Primary[i] != p3.Primary[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical primaries")
	}
}

func TestPrimariesUniform(t *testing.T) {
	c := Default()
	p, err := c.GeneratePlacement()
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < c.Sites; s++ {
		n := len(p.PrimariesAt(model.SiteID(s)))
		// 200 items over 9 sites: every site gets 22 or 23 primaries.
		if n < c.Items/c.Sites || n > c.Items/c.Sites+1 {
			t.Errorf("site %d has %d primaries, want ~%d", s, n, c.Items/c.Sites)
		}
	}
}

func TestReplicationFractionTracksR(t *testing.T) {
	c := Default()
	c.Items = 4000
	c.ReplicationProb = 0.3
	c.BackedgeProb = 1 // every replicated item draws from all sites
	p, err := c.GeneratePlacement()
	if err != nil {
		t.Fatal(err)
	}
	replicated := 0
	for i := 0; i < c.Items; i++ {
		if p.IsReplicated(model.ItemID(i)) {
			replicated++
		}
	}
	frac := float64(replicated) / float64(c.Items)
	// With s=0.5 over 8 candidates, nearly every selected item gets >= 1
	// replica, so frac ~ r. Allow generous sampling slack.
	if frac < 0.25 || frac > 0.35 {
		t.Errorf("replicated fraction = %.3f, want ~0.30", frac)
	}
}

func TestBackedgeProbZeroYieldsDAG(t *testing.T) {
	c := Default()
	c.BackedgeProb = 0
	c.ReplicationProb = 1
	p, err := c.GeneratePlacement()
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromPlacement(p)
	order := make([]model.SiteID, c.Sites)
	for i := range order {
		order[i] = model.SiteID(i)
	}
	if backs := graph.OrderBackedges(g, order); len(backs) != 0 {
		t.Errorf("b=0 produced backedges %v", backs)
	}
	if !g.IsDAG() {
		t.Error("b=0 copy graph not a DAG")
	}
}

func TestBackedgeProbOneProducesBackedges(t *testing.T) {
	c := Default()
	c.BackedgeProb = 1
	c.ReplicationProb = 1
	p, err := c.GeneratePlacement()
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromPlacement(p)
	order := make([]model.SiteID, c.Sites)
	for i := range order {
		order[i] = model.SiteID(i)
	}
	if backs := graph.OrderBackedges(g, order); len(backs) == 0 {
		t.Error("b=1, r=1 produced no backedges")
	}
}

func TestBackedgeCountGrowsWithB(t *testing.T) {
	count := func(b float64) int {
		c := Default()
		c.Items = 2000
		c.ReplicationProb = 0.5
		c.BackedgeProb = b
		p, err := c.GeneratePlacement()
		if err != nil {
			t.Fatal(err)
		}
		g := graph.FromPlacement(p)
		order := make([]model.SiteID, c.Sites)
		for i := range order {
			order[i] = model.SiteID(i)
		}
		total := 0
		for _, e := range graph.OrderBackedges(g, order) {
			total += g.Weight(e)
		}
		return total
	}
	if !(count(0) < count(0.5) && count(0.5) < count(1)) {
		t.Errorf("backedge weight not increasing in b: %d %d %d", count(0), count(0.5), count(1))
	}
}

func TestTxnGenShapes(t *testing.T) {
	c := Default()
	p, err := c.GeneratePlacement()
	if err != nil {
		t.Fatal(err)
	}
	g := NewTxnGen(c, p, 0, 99)
	reads, writes, txns, readOnly := 0, 0, 2000, 0
	for i := 0; i < txns; i++ {
		ops := g.Next()
		if len(ops) != c.OpsPerTxn {
			t.Fatalf("txn has %d ops", len(ops))
		}
		ro := true
		for _, op := range ops {
			switch op.Kind {
			case model.OpRead:
				reads++
				if !p.HasCopy(0, op.Item) {
					t.Fatalf("read of item %d with no copy at s0", op.Item)
				}
			case model.OpWrite:
				writes++
				ro = false
				if !p.IsPrimary(0, op.Item) {
					t.Fatalf("write of item %d not primary at s0", op.Item)
				}
			}
		}
		if ro {
			readOnly++
		}
	}
	// Expected read fraction: readTxn 0.5 contributes all-reads; update
	// txns contribute 0.7 reads. Overall ~0.85.
	frac := float64(reads) / float64(reads+writes)
	if frac < 0.82 || frac > 0.88 {
		t.Errorf("read fraction = %.3f, want ~0.85", frac)
	}
	roFrac := float64(readOnly) / float64(txns)
	// All-read update transactions (0.7^10 ~ 2.8%) inflate this above 0.5.
	if roFrac < 0.45 || roFrac > 0.60 {
		t.Errorf("read-only fraction = %.3f, want ~0.51", roFrac)
	}
}

func TestTxnGenDeterministic(t *testing.T) {
	c := Default()
	p, _ := c.GeneratePlacement()
	g1 := NewTxnGen(c, p, 3, 7)
	g2 := NewTxnGen(c, p, 3, 7)
	for i := 0; i < 50; i++ {
		a, b := g1.Next(), g2.Next()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("txn %d differs at op %d", i, j)
			}
		}
	}
}

func TestSkewValidation(t *testing.T) {
	c := Default()
	c.Skew = 0.5 // must be 0 or > 1
	if err := c.Validate(); err == nil {
		t.Error("Skew in (0,1] accepted")
	}
	c.Skew = 1.5
	if err := c.Validate(); err != nil {
		t.Errorf("valid skew rejected: %v", err)
	}
}

func TestSkewConcentratesAccess(t *testing.T) {
	c := Default()
	p, err := c.GeneratePlacement()
	if err != nil {
		t.Fatal(err)
	}
	topShare := func(skew float64) float64 {
		cc := c
		cc.Skew = skew
		g := NewTxnGen(cc, p, 0, 5)
		counts := map[model.ItemID]int{}
		total := 0
		for i := 0; i < 500; i++ {
			for _, op := range g.Next() {
				counts[op.Item]++
				total++
			}
		}
		max := 0
		for _, n := range counts {
			if n > max {
				max = n
			}
		}
		return float64(max) / float64(total)
	}
	uniform, skewed := topShare(0), topShare(2.0)
	if skewed < 2*uniform {
		t.Errorf("Zipf skew did not concentrate access: top item share %v (uniform) vs %v (s=2)", uniform, skewed)
	}
}

func TestSkewDeterministic(t *testing.T) {
	c := Default()
	c.Skew = 1.5
	p, _ := c.GeneratePlacement()
	g1 := NewTxnGen(c, p, 2, 9)
	g2 := NewTxnGen(c, p, 2, 9)
	for i := 0; i < 20; i++ {
		a, b := g1.Next(), g2.Next()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("skewed generator not deterministic at txn %d op %d", i, j)
			}
		}
	}
}

func TestTxnGenSiteWithoutPrimariesFallsBackToReads(t *testing.T) {
	// Hand-build a placement where site 1 has no primaries but holds a
	// replica.
	p := model.NewPlacement(2, 2)
	p.Primary = []model.SiteID{0, 0}
	p.Replicas = [][]model.SiteID{{1}, nil}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	c := Default()
	c.Sites, c.Items = 2, 2
	c.ReadTxnProb, c.ReadOpProb = 0, 0 // would be all writes
	g := NewTxnGen(c, p, 1, 1)
	for i := 0; i < 20; i++ {
		for _, op := range g.Next() {
			if op.Kind != model.OpRead {
				t.Fatal("site without primaries generated a write")
			}
		}
	}
}
