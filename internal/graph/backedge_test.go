package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestDFSBackedgesBreaksAllCycles(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0) // cycle 0-1-2
	g.AddEdge(2, 3)
	g.AddEdge(3, 2) // cycle 2-3
	backs := DFSBackedges(g)
	if g.Without(backs).IsDAG() == false {
		t.Fatalf("removing %v does not yield a DAG", backs)
	}
	if len(backs) != 2 {
		t.Errorf("expected 2 backedges, got %v", backs)
	}
}

func TestDFSBackedgesEmptyOnDAG(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	if backs := DFSBackedges(g); len(backs) != 0 {
		t.Errorf("DAG produced backedges %v", backs)
	}
}

// isMinimal reports whether reinserting any member of backs recreates a
// cycle (the §4 minimality requirement).
func isMinimal(g *CopyGraph, backs []Edge) bool {
	for i := range backs {
		trial := make([]Edge, 0, len(backs)-1)
		trial = append(trial, backs[:i]...)
		trial = append(trial, backs[i+1:]...)
		if g.Without(trial).IsDAG() {
			return false
		}
	}
	return true
}

func TestDFSBackedgesMinimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 10)
		backs := DFSBackedges(g)
		return g.Without(backs).IsDAG() && isMinimal(g, backs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOrderBackedges(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(2, 1) // backward w.r.t. order 0<1<2
	g.AddEdge(1, 2)
	order := []model.SiteID{0, 1, 2}
	backs := OrderBackedges(g, order)
	if len(backs) != 1 || backs[0] != (Edge{2, 1}) {
		t.Errorf("backs = %v, want [s2->s1]", backs)
	}
	if !g.Without(backs).IsDAG() {
		t.Error("removal must yield a DAG")
	}
}

func TestOrderBackedgesAlwaysYieldsDAGProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 12)
		order := make([]model.SiteID, g.N)
		for i := range order {
			order[i] = model.SiteID(i)
		}
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		return g.Without(OrderBackedges(g, order)).IsDAG()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGreedyFASOrderCoversAllSites(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 12)
		order := GreedyFAS(g)
		if len(order) != g.N {
			return false
		}
		seen := make(map[model.SiteID]bool)
		for _, s := range order {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGreedyFASNoLeftEdgesOnDAG(t *testing.T) {
	// On a DAG the heuristic must find a perfect (zero-weight) order.
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 3)
	g.AddEdge(3, 4)
	g.AddEdge(2, 4)
	order := GreedyFAS(g)
	if backs := OrderBackedges(g, order); len(backs) != 0 {
		t.Errorf("DAG got leftward edges %v under order %v", backs, order)
	}
}

func TestMinWeightBackedgesPrefersLightEdges(t *testing.T) {
	// Cycle 0->1->0 where 0->1 carries weight 5 and 1->0 weight 1: the
	// heuristic should cut the light edge.
	g := New(2)
	for i := 0; i < 5; i++ {
		g.AddEdge(0, 1)
	}
	g.AddEdge(1, 0)
	backs := MinWeightBackedges(g)
	if len(backs) != 1 || backs[0] != (Edge{1, 0}) {
		t.Errorf("backs = %v, want the weight-1 edge s1->s0", backs)
	}
	if TotalWeight(g, backs) != 1 {
		t.Errorf("total weight = %d, want 1", TotalWeight(g, backs))
	}
}

func TestMinWeightBackedgesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 10)
		backs := MinWeightBackedges(g)
		return g.Without(backs).IsDAG() && isMinimal(g, backs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinimalizePrunesRedundantEdges(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	// The whole edge set is a (non-minimal) feedback arc set.
	backs := Minimalize(g, g.Edges())
	if len(backs) != 1 {
		t.Errorf("minimal set for a single 3-cycle is 1 edge, got %v", backs)
	}
	if !g.Without(backs).IsDAG() {
		t.Error("pruned set no longer breaks the cycle")
	}
}
