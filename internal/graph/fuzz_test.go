package graph

import (
	"testing"

	"repro/internal/model"
)

// decodeGraph turns fuzz bytes into a directed graph over ≤ 8 sites.
func decodeGraph(data []byte) *CopyGraph {
	n := 2
	if len(data) > 0 {
		n = 2 + int(data[0]%7)
		data = data[1:]
	}
	g := New(n)
	for i := 0; i+1 < len(data) && i < 64; i += 2 {
		g.AddEdge(model.SiteID(int(data[i])%n), model.SiteID(int(data[i+1])%n))
	}
	return g
}

// FuzzBackedgeComputation checks on arbitrary graphs that both backedge
// algorithms produce feedback arc sets whose removal yields a DAG, that
// the DFS set is minimal, and that tree construction over the resulting
// DAG preserves the §2 ancestor property.
func FuzzBackedgeComputation(f *testing.F) {
	f.Add([]byte{3, 0, 1, 1, 2, 2, 0})
	f.Add([]byte{5, 0, 1, 1, 2, 2, 3, 3, 4, 4, 0, 1, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := decodeGraph(data)

		dfs := DFSBackedges(g)
		gdag := g.Without(dfs)
		if !gdag.IsDAG() {
			t.Fatalf("DFS backedges %v leave a cycle", dfs)
		}
		if !isMinimal(g, dfs) {
			t.Fatalf("DFS backedge set %v not minimal", dfs)
		}

		mw := MinWeightBackedges(g)
		if !g.Without(mw).IsDAG() {
			t.Fatalf("greedy FAS backedges %v leave a cycle", mw)
		}

		tree, err := BuildTree(gdag)
		if err != nil {
			t.Fatalf("BuildTree on DAG: %v", err)
		}
		if e := CheckAncestorProperty(gdag, tree); e != nil {
			t.Fatalf("ancestor property violated on %v", *e)
		}
		// Minimality of dfs implies every backedge target is a tree
		// ancestor of its origin (§4.1) — verify the property BackEdge
		// routing depends on.
		for _, e := range dfs {
			if !tree.IsAncestor(e.To, e.From) {
				t.Fatalf("backedge %v target not a tree ancestor", e)
			}
		}
	})
}
