package graph

import (
	"math/rand"
	"testing"

	"repro/internal/model"
)

// benchPlacement builds a random placement resembling the §5.2 scheme
// without importing the workload package (which itself imports graph).
func benchPlacement(b *testing.B, sites, items int, backedgeProb float64) *model.Placement {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	p := model.NewPlacement(sites, items)
	for i := 0; i < items; i++ {
		p.Primary[i] = model.SiteID(i % sites)
		if rng.Float64() >= 0.5 {
			continue
		}
		lo := int(p.Primary[i]) + 1
		if rng.Float64() < backedgeProb {
			lo = 0
		}
		for s := lo; s < sites; s++ {
			if model.SiteID(s) != p.Primary[i] && rng.Float64() < 0.5 {
				p.Replicas[i] = append(p.Replicas[i], model.SiteID(s))
			}
		}
	}
	if err := p.Finish(); err != nil {
		b.Fatal(err)
	}
	return p
}

func benchGraph(b *testing.B, backedgeProb float64) *CopyGraph {
	b.Helper()
	return FromPlacement(benchPlacement(b, 15, 500, backedgeProb))
}

func BenchmarkFromPlacement(b *testing.B) {
	p := benchPlacement(b, 9, 200, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FromPlacement(p)
	}
}

func BenchmarkDFSBackedges(b *testing.B) {
	g := benchGraph(b, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = DFSBackedges(g)
	}
}

func BenchmarkGreedyFAS(b *testing.B) {
	g := benchGraph(b, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GreedyFAS(g)
	}
}

func BenchmarkMinWeightBackedges(b *testing.B) {
	g := benchGraph(b, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MinWeightBackedges(g)
	}
}

func BenchmarkBuildTree(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	n := 15
	g := New(n)
	for i := 0; i < 4*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u < v {
			g.AddEdge(model.SiteID(u), model.SiteID(v))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildTree(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopoOrder(b *testing.B) {
	g := benchGraph(b, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.TopoOrder(); !ok {
			b.Fatal("not a DAG")
		}
	}
}
