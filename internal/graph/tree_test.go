package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestBuildChain(t *testing.T) {
	order := []model.SiteID{2, 0, 1}
	tr := BuildChain(order)
	if tr.Parent(2) != model.NoSite {
		t.Error("first site in order must be the root")
	}
	if tr.Parent(0) != 2 || tr.Parent(1) != 0 {
		t.Errorf("chain parents wrong: %v %v", tr.Parent(0), tr.Parent(1))
	}
	if tr.Depth(1) != 2 {
		t.Errorf("depth(1) = %d, want 2", tr.Depth(1))
	}
	if !tr.IsAncestor(2, 1) || tr.IsAncestor(1, 2) || tr.IsAncestor(1, 1) {
		t.Error("IsAncestor wrong on chain")
	}
}

func TestChainSatisfiesAncestorProperty(t *testing.T) {
	g, _ := paperGraph(t)
	order, _ := g.TopoOrder()
	tr := BuildChain(order)
	if e := CheckAncestorProperty(g, tr); e != nil {
		t.Errorf("chain violates ancestor property on %v", *e)
	}
}

func TestBuildTreePaperExample(t *testing.T) {
	// Example 1.1's graph: s0->s1, s0->s2, s1->s2. The only valid tree is
	// the chain s0-s1-s2 (§2 discusses exactly this).
	g, _ := paperGraph(t)
	tr, err := BuildTree(g)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Parent(1) != 0 || tr.Parent(2) != 1 {
		t.Errorf("tree = parents[%v %v %v], want chain s0-s1-s2",
			tr.Parent(0), tr.Parent(1), tr.Parent(2))
	}
}

func TestBuildTreeKeepsIndependentBranchesApart(t *testing.T) {
	// s0->s1 and s0->s2 with no s1/s2 relation: a bushy tree keeps s1 and
	// s2 as siblings so neither forwards the other's traffic.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	tr, err := BuildTree(g)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Parent(1) != 0 || tr.Parent(2) != 0 {
		t.Errorf("want s1,s2 both children of s0; got parents %v %v", tr.Parent(1), tr.Parent(2))
	}
}

func TestBuildTreeDiamondForcesSerialization(t *testing.T) {
	// Diamond: s0->s1, s0->s2, s1->s3, s2->s3. s3 needs both s1 and s2 as
	// ancestors, so the construction must serialize them onto one path.
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	tr, err := BuildTree(g)
	if err != nil {
		t.Fatal(err)
	}
	if e := CheckAncestorProperty(g, tr); e != nil {
		t.Fatalf("ancestor property violated on %v", *e)
	}
	if !tr.IsAncestor(1, 3) || !tr.IsAncestor(2, 3) {
		t.Error("s1 and s2 must both be ancestors of s3")
	}
}

func TestBuildTreeRejectsCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, err := BuildTree(g); err == nil {
		t.Error("BuildTree accepted a cyclic graph")
	}
}

func TestBuildTreeAncestorPropertyOnRandomDAGs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u < v {
				g.AddEdge(model.SiteID(u), model.SiteID(v))
			}
		}
		tr, err := BuildTree(g)
		if err != nil {
			return false
		}
		if CheckAncestorProperty(g, tr) != nil {
			return false
		}
		// Structural sanity: every non-root has a valid parent, depths
		// consistent.
		for v := 0; v < n; v++ {
			if p := tr.Parent(model.SiteID(v)); p != model.NoSite {
				if tr.Depth(model.SiteID(v)) != tr.Depth(p)+1 {
					return false
				}
			} else if tr.Depth(model.SiteID(v)) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestNextHopDownAndPathDown(t *testing.T) {
	tr := BuildChain([]model.SiteID{0, 1, 2, 3})
	if hop := tr.NextHopDown(0, 3); hop != 1 {
		t.Errorf("NextHopDown(0,3) = %v, want 1", hop)
	}
	if hop := tr.NextHopDown(2, 3); hop != 3 {
		t.Errorf("NextHopDown(2,3) = %v, want 3", hop)
	}
	path := tr.PathDown(0, 3)
	want := []model.SiteID{1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("PathDown = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("PathDown = %v, want %v", path, want)
		}
	}
}

func TestNextHopDownPanicsOnNonAncestor(t *testing.T) {
	tr := BuildChain([]model.SiteID{0, 1})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tr.NextHopDown(1, 0)
}

func TestSubtreeCopyItems(t *testing.T) {
	_, p := paperGraph(t)
	tr := BuildChain([]model.SiteID{0, 1, 2})
	sub := SubtreeCopyItems(tr, p)
	// s2 (leaf) stores replicas of items 0 and 1.
	if !sub[2][0] || !sub[2][1] {
		t.Errorf("subtree items of s2 = %v", sub[2])
	}
	// s1's subtree covers everything s1 and s2 store.
	if !sub[1][0] || !sub[1][1] {
		t.Errorf("subtree items of s1 = %v", sub[1])
	}
	// The root's subtree covers all copies.
	if len(sub[0]) != 2 {
		t.Errorf("subtree items of s0 = %v", sub[0])
	}
}

func TestTreeRoots(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	// s2, s3 isolated: forest with three roots.
	tr, err := BuildTree(g)
	if err != nil {
		t.Fatal(err)
	}
	if roots := tr.Roots(); len(roots) != 3 {
		t.Errorf("roots = %v, want 3 of them", roots)
	}
}
