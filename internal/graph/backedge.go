package graph

import (
	"sort"

	"repro/internal/model"
)

// DFSBackedges computes a minimal set of backedges B using depth-first
// search, as suggested in §4: the DFS back edges (edges into a vertex
// currently on the recursion stack) break every cycle, and each of them
// closes a cycle with the surviving tree path, so B is minimal — inserting
// any member back into Gdag recreates a cycle.
//
// The DFS roots and neighbour order are taken smallest-site-first so the
// result is deterministic.
func DFSBackedges(g *CopyGraph) []Edge {
	const (
		white = iota // unvisited
		grey         // on stack
		black        // done
	)
	color := make([]int, g.N)
	var backs []Edge

	var visit func(u model.SiteID)
	visit = func(u model.SiteID) {
		color[u] = grey
		for _, v := range g.Children(u) {
			switch color[v] {
			case white:
				visit(v)
			case grey:
				backs = append(backs, Edge{u, v})
			}
		}
		color[u] = black
	}
	for u := 0; u < g.N; u++ {
		if color[u] == white {
			visit(model.SiteID(u))
		}
	}
	return backs
}

// OrderBackedges returns the edges of g that go "backwards" with respect
// to a total order on the sites: edge u→v is a backedge iff v precedes u.
// This is the backedge notion used by the prototype's data-distribution
// scheme (§5.2), where the total order is also the propagation chain.
// Removing them always yields a DAG because every surviving edge goes
// strictly forward in the order.
func OrderBackedges(g *CopyGraph, order []model.SiteID) []Edge {
	pos := make([]int, g.N)
	for i, s := range order {
		pos[s] = i
	}
	var backs []Edge
	for _, e := range g.Edges() {
		if pos[e.To] < pos[e.From] {
			backs = append(backs, e)
		}
	}
	return backs
}

// GreedyFAS computes a vertex sequence using the Eades–Lin–Smyth greedy
// heuristic for the (weighted) minimum feedback arc set problem, which the
// paper points at in §4.2 (the exact problem is NP-hard [GJ79]). The edges
// pointing leftward in the returned sequence form a feedback arc set whose
// total weight the heuristic keeps small.
//
// The returned order lists sinks last and sources first; ties are broken
// by weighted (out-in) degree difference, then by site ID for determinism.
func GreedyFAS(g *CopyGraph) []model.SiteID {
	type vert struct {
		id      model.SiteID
		outW    int
		inW     int
		removed bool
	}
	verts := make([]*vert, g.N)
	for v := 0; v < g.N; v++ {
		verts[v] = &vert{id: model.SiteID(v)}
	}
	for e, w := range g.weight {
		verts[e.From].outW += w
		verts[e.To].inW += w
	}
	// Live adjacency for degree maintenance.
	out := make([]map[model.SiteID]int, g.N)
	in := make([]map[model.SiteID]int, g.N)
	for v := 0; v < g.N; v++ {
		out[v] = make(map[model.SiteID]int)
		in[v] = make(map[model.SiteID]int)
	}
	for e, w := range g.weight {
		out[e.From][e.To] = w
		in[e.To][e.From] = w
	}

	var left, right []model.SiteID // s1 built left-to-right, s2 right-to-left
	remaining := g.N

	remove := func(v *vert) {
		v.removed = true
		remaining--
		for u, w := range out[v.id] {
			verts[u].inW -= w
			delete(in[u], v.id)
		}
		for u, w := range in[v.id] {
			verts[u].outW -= w
			delete(out[u], v.id)
		}
	}

	for remaining > 0 {
		// Strip sinks.
		progress := true
		for progress {
			progress = false
			for _, v := range verts {
				if !v.removed && v.outW == 0 {
					right = append(right, v.id)
					remove(v)
					progress = true
				}
			}
			// Strip sources.
			for _, v := range verts {
				if !v.removed && v.inW == 0 && v.outW > 0 {
					left = append(left, v.id)
					remove(v)
					progress = true
				}
			}
		}
		if remaining == 0 {
			break
		}
		// Pick the vertex maximizing outW-inW (weighted ELS rule).
		var best *vert
		for _, v := range verts {
			if v.removed {
				continue
			}
			if best == nil || v.outW-v.inW > best.outW-best.inW ||
				(v.outW-v.inW == best.outW-best.inW && v.id < best.id) {
				best = v
			}
		}
		left = append(left, best.id)
		remove(best)
	}
	// right was collected sinks-first; reverse it.
	for i, j := 0, len(right)-1; i < j; i, j = i+1, j-1 {
		right[i], right[j] = right[j], right[i]
	}
	return append(left, right...)
}

// MinWeightBackedges returns a feedback arc set for g computed by running
// GreedyFAS and taking the edges that point leftward in the resulting
// sequence, then pruning it to a minimal set (dropping any member whose
// reinsertion leaves the graph acyclic). The result removal always yields
// a DAG and the set is minimal in the §4 sense.
func MinWeightBackedges(g *CopyGraph) []Edge {
	order := GreedyFAS(g)
	backs := OrderBackedges(g, order)
	return Minimalize(g, backs)
}

// Minimalize prunes a feedback arc set to a minimal one: it repeatedly
// reinserts edges whose return does not recreate a cycle. The input set
// must itself be a feedback arc set (g.Without(backs) acyclic); the output
// is a subset with the same property such that reinserting any member
// creates a cycle. Heavier edges are considered for reinsertion first so
// the pruned set tends to be light.
func Minimalize(g *CopyGraph, backs []Edge) []Edge {
	kept := append([]Edge(nil), backs...)
	sort.Slice(kept, func(i, j int) bool {
		if g.Weight(kept[i]) != g.Weight(kept[j]) {
			return g.Weight(kept[i]) > g.Weight(kept[j])
		}
		if kept[i].From != kept[j].From {
			return kept[i].From < kept[j].From
		}
		return kept[i].To < kept[j].To
	})
	out := append([]Edge(nil), kept...)
	for _, cand := range kept {
		// Try putting cand back: remove it from the removal set.
		trial := out[:0:0]
		for _, e := range out {
			if e != cand {
				trial = append(trial, e)
			}
		}
		if g.Without(trial).IsDAG() {
			out = trial
		}
	}
	return out
}

// TotalWeight sums the weights of the given edges in g.
func TotalWeight(g *CopyGraph, edges []Edge) int {
	total := 0
	for _, e := range edges {
		total += g.Weight(e)
	}
	return total
}
