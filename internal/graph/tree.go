package graph

import (
	"fmt"

	"repro/internal/model"
)

// Tree is a rooted forest over the sites, used by the DAG(WT) protocol to
// route secondary subtransactions. It must satisfy the §2 ancestor
// property with respect to the copy graph: if sj is a child of si in the
// copy graph, then sj is a descendant of si in the tree.
type Tree struct {
	N      int
	parent []model.SiteID // model.NoSite for roots
	child  [][]model.SiteID
	depth  []int
}

func newTree(n int) *Tree {
	t := &Tree{N: n, parent: make([]model.SiteID, n), depth: make([]int, n)}
	for i := range t.parent {
		t.parent[i] = model.NoSite
	}
	return t
}

// rebuild recomputes children lists and depths from the parent array.
func (t *Tree) rebuild() {
	t.child = make([][]model.SiteID, t.N)
	for v := 0; v < t.N; v++ {
		if p := t.parent[v]; p != model.NoSite {
			t.child[p] = append(t.child[p], model.SiteID(v))
		}
	}
	for v := 0; v < t.N; v++ {
		t.depth[v] = -1
	}
	var dep func(v model.SiteID) int
	dep = func(v model.SiteID) int {
		if t.depth[v] >= 0 {
			return t.depth[v]
		}
		if t.parent[v] == model.NoSite {
			t.depth[v] = 0
		} else {
			t.depth[v] = dep(t.parent[v]) + 1
		}
		return t.depth[v]
	}
	for v := 0; v < t.N; v++ {
		dep(model.SiteID(v))
	}
}

// Parent returns the tree parent of s, or model.NoSite for a root.
func (t *Tree) Parent(s model.SiteID) model.SiteID { return t.parent[s] }

// Children returns the tree children of s.
func (t *Tree) Children(s model.SiteID) []model.SiteID { return t.child[s] }

// Depth returns the depth of s (0 for roots).
func (t *Tree) Depth(s model.SiteID) int { return t.depth[s] }

// Roots returns the roots of the forest.
func (t *Tree) Roots() []model.SiteID {
	var out []model.SiteID
	for v := 0; v < t.N; v++ {
		if t.parent[v] == model.NoSite {
			out = append(out, model.SiteID(v))
		}
	}
	return out
}

// IsAncestor reports whether a is a proper ancestor of d in the tree.
func (t *Tree) IsAncestor(a, d model.SiteID) bool {
	if a == d {
		return false
	}
	for v := t.parent[d]; v != model.NoSite; v = t.parent[v] {
		if v == a {
			return true
		}
	}
	return false
}

// NextHopDown returns the child of anc on the tree path toward its
// descendant desc. It panics if anc is not a proper ancestor of desc.
func (t *Tree) NextHopDown(anc, desc model.SiteID) model.SiteID {
	v := desc
	for t.parent[v] != model.NoSite {
		if t.parent[v] == anc {
			return v
		}
		v = t.parent[v]
	}
	panic(fmt.Sprintf("graph: s%d is not an ancestor of s%d", anc, desc))
}

// PathDown returns the tree path from anc (exclusive) to desc (inclusive).
func (t *Tree) PathDown(anc, desc model.SiteID) []model.SiteID {
	var rev []model.SiteID
	v := desc
	for v != anc {
		rev = append(rev, v)
		v = t.parent[v]
		if v == model.NoSite {
			panic(fmt.Sprintf("graph: s%d is not an ancestor of s%d", anc, desc))
		}
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// pathSet returns s plus all its tree ancestors.
func (t *Tree) pathSet(s model.SiteID) map[model.SiteID]bool {
	set := map[model.SiteID]bool{s: true}
	for v := t.parent[s]; v != model.NoSite; v = t.parent[v] {
		set[v] = true
	}
	return set
}

// BuildChain builds the chain tree used by the prototype (§5.1): sites are
// linked in the given total order (which must be consistent with the DAG),
// so every later site is a descendant of every earlier one and the §2
// ancestor property holds trivially.
func BuildChain(order []model.SiteID) *Tree {
	t := newTree(len(order))
	for i := 1; i < len(order); i++ {
		t.parent[order[i]] = order[i-1]
	}
	t.rebuild()
	return t
}

// BuildTree constructs a tree with the §2 ancestor property from an
// acyclic copy graph, preferring bushy shapes over the chain so that
// unrelated branches of the DAG do not forward each other's traffic. The
// construction (sketched in the [BKRSS98] technical report) processes
// sites in topological order and attaches each under the deepest of its
// copy-graph ancestors; when those ancestors straddle several branches the
// branches are serialized by re-parenting — which only ever moves a
// subtree deeper, so previously established ancestor relations survive.
//
// BuildTree returns an error if g is not a DAG.
func BuildTree(g *CopyGraph) (*Tree, error) {
	order, ok := g.TopoOrder()
	if !ok {
		return nil, fmt.Errorf("graph: copy graph has a cycle; remove backedges first")
	}
	anc := g.Ancestors()
	t := newTree(g.N)
	t.rebuild()

	for _, v := range order {
		a := anc[v]
		if len(a) == 0 {
			continue // root of the forest
		}
		for iter := 0; ; iter++ {
			if iter > 2*g.N {
				return nil, fmt.Errorf("graph: tree construction failed to converge at s%d", v)
			}
			d := deepestOf(t, a)
			path := t.pathSet(d)
			stray := model.NoSite
			for u := range a {
				if !path[u] && (stray == model.NoSite || betterStray(t, u, stray)) {
					stray = u
				}
			}
			if stray == model.NoSite {
				t.parent[v] = d
				t.rebuild()
				break
			}
			mergeBranches(t, stray, d)
		}
	}
	return t, nil
}

func deepestOf(t *Tree, set map[model.SiteID]bool) model.SiteID {
	best := model.NoSite
	for u := range set {
		if best == model.NoSite || t.depth[u] > t.depth[best] ||
			(t.depth[u] == t.depth[best] && u < best) {
			best = u
		}
	}
	return best
}

func betterStray(t *Tree, a, b model.SiteID) bool {
	if t.depth[a] != t.depth[b] {
		return t.depth[a] > t.depth[b]
	}
	return a < b
}

// mergeBranches re-parents the branch containing stray so that stray
// becomes a descendant of d. The subtree that moves keeps all of its old
// ancestors (its new position is strictly deeper under a descendant of its
// old parent, or under d when the two were in different trees of the
// forest), so the ancestor property is preserved for every already-placed
// site.
func mergeBranches(t *Tree, stray, d model.SiteID) {
	// Find the lowest common ancestor of stray and d, if any.
	dPath := t.pathSet(d)
	v := stray
	for v != model.NoSite && !dPath[v] {
		if t.parent[v] == model.NoSite {
			// Different trees: move stray's whole tree under d.
			t.parent[v] = d
			t.rebuild()
			return
		}
		if dPath[t.parent[v]] {
			// parent(v) is the LCA; v is the branch top on stray's side.
			t.parent[v] = d
			t.rebuild()
			return
		}
		v = t.parent[v]
	}
	panic("graph: mergeBranches called with stray already on d's path")
}

// CheckAncestorProperty verifies the §2 requirement that every copy-graph
// edge u→v has u as a proper tree ancestor of v. It returns the first
// violating edge, or nil.
func CheckAncestorProperty(g *CopyGraph, t *Tree) *Edge {
	for _, e := range g.Edges() {
		if !t.IsAncestor(e.From, e.To) {
			bad := e
			return &bad
		}
	}
	return nil
}

// SubtreeCopyItems computes, for every site, the set of items that have a
// copy (primary or secondary) at the site or at any of its tree
// descendants. DAG(WT) uses this to decide which children are "relevant"
// for a secondary subtransaction (§2): a child is relevant iff it or one
// of its descendants replicates an updated item.
func SubtreeCopyItems(t *Tree, p *model.Placement) []map[model.ItemID]bool {
	out := make([]map[model.ItemID]bool, t.N)
	var fill func(v model.SiteID) map[model.ItemID]bool
	fill = func(v model.SiteID) map[model.ItemID]bool {
		set := make(map[model.ItemID]bool)
		for _, it := range p.CopiesAt(v) {
			set[it] = true
		}
		for _, c := range t.Children(v) {
			for it := range fill(c) {
				set[it] = true
			}
		}
		out[v] = set
		return set
	}
	for _, r := range t.Roots() {
		fill(r)
	}
	return out
}
