// Package graph implements the copy-graph machinery of the paper: building
// the copy graph from a data placement, DAG tests and topological orders,
// backedge-set computation (the minimal sets of §4 and the weighted
// feedback-arc-set heuristic of §4.2), and construction of the propagation
// tree T with the ancestor property required by the DAG(WT) protocol (§2).
package graph

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Edge is a directed copy-graph edge: some item's primary copy is at From
// and a secondary copy is at To.
type Edge struct {
	From, To model.SiteID
}

func (e Edge) String() string { return fmt.Sprintf("s%d->s%d", e.From, e.To) }

// CopyGraph is the directed graph whose vertices are sites and whose edge
// si→sj says that site si is the primary of at least one item replicated
// at sj. Weights count how many items induce each edge (used by the
// weighted feedback-arc-set heuristic).
type CopyGraph struct {
	N      int // number of sites
	adj    [][]model.SiteID
	weight map[Edge]int
}

// New returns an empty copy graph over n sites.
func New(n int) *CopyGraph {
	return &CopyGraph{N: n, adj: make([][]model.SiteID, n), weight: make(map[Edge]int)}
}

// FromPlacement builds the copy graph induced by a data placement.
func FromPlacement(p *model.Placement) *CopyGraph {
	g := New(p.NumSites)
	for i := 0; i < p.NumItems; i++ {
		from := p.Primary[i]
		for _, to := range p.Replicas[i] {
			g.AddEdge(from, to)
		}
	}
	return g
}

// AddEdge inserts (or re-weights) the edge from→to. Self-loops are ignored:
// a site is never its own replica.
func (g *CopyGraph) AddEdge(from, to model.SiteID) {
	if from == to {
		return
	}
	e := Edge{from, to}
	if g.weight[e] == 0 {
		g.adj[from] = append(g.adj[from], to)
	}
	g.weight[e]++
}

// HasEdge reports whether the edge from→to exists.
func (g *CopyGraph) HasEdge(from, to model.SiteID) bool { return g.weight[Edge{from, to}] > 0 }

// Weight returns the number of items inducing edge e (0 if absent).
func (g *CopyGraph) Weight(e Edge) int { return g.weight[e] }

// Children returns the out-neighbours of site s, sorted ascending.
func (g *CopyGraph) Children(s model.SiteID) []model.SiteID {
	out := append([]model.SiteID(nil), g.adj[s]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Parents returns the in-neighbours of site s, sorted ascending.
func (g *CopyGraph) Parents(s model.SiteID) []model.SiteID {
	var out []model.SiteID
	for u := 0; u < g.N; u++ {
		if g.HasEdge(model.SiteID(u), s) {
			out = append(out, model.SiteID(u))
		}
	}
	return out
}

// Edges returns every edge, sorted by (From, To).
func (g *CopyGraph) Edges() []Edge {
	var out []Edge
	for e := range g.weight {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// NumEdges returns the number of distinct edges.
func (g *CopyGraph) NumEdges() int { return len(g.weight) }

// Without returns a copy of g with the given edges removed. Weights of the
// surviving edges are preserved.
func (g *CopyGraph) Without(remove []Edge) *CopyGraph {
	rm := make(map[Edge]bool, len(remove))
	for _, e := range remove {
		rm[e] = true
	}
	out := New(g.N)
	for e, w := range g.weight {
		if rm[e] {
			continue
		}
		out.adj[e.From] = append(out.adj[e.From], e.To)
		out.weight[e] = w
	}
	return out
}

// IsDAG reports whether the graph is acyclic.
func (g *CopyGraph) IsDAG() bool {
	_, ok := g.TopoOrder()
	return ok
}

// TopoOrder returns a topological order of the sites (smallest-ID-first
// tie-break, so the order is deterministic) and true, or nil and false if
// the graph has a cycle. When the graph is a DAG this order serves as the
// total order s1 < s2 < ... < sm of §3.1.
func (g *CopyGraph) TopoOrder() ([]model.SiteID, bool) {
	indeg := make([]int, g.N)
	for e := range g.weight {
		indeg[e.To]++
	}
	// Kahn's algorithm with a sorted frontier for determinism.
	var frontier []model.SiteID
	for v := 0; v < g.N; v++ {
		if indeg[v] == 0 {
			frontier = append(frontier, model.SiteID(v))
		}
	}
	var order []model.SiteID
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		v := frontier[0]
		frontier = frontier[1:]
		order = append(order, v)
		for _, w := range g.adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				frontier = append(frontier, w)
			}
		}
	}
	if len(order) != g.N {
		return nil, false
	}
	return order, true
}

// Sources returns the sites with no parents. In a DAG these are the sites
// that drive epoch advancement in the DAG(T) protocol (§3.3).
func (g *CopyGraph) Sources() []model.SiteID {
	indeg := make([]int, g.N)
	for e := range g.weight {
		indeg[e.To]++
	}
	var out []model.SiteID
	for v := 0; v < g.N; v++ {
		if indeg[v] == 0 {
			out = append(out, model.SiteID(v))
		}
	}
	return out
}

// Reachable returns the set of sites reachable from s (excluding s itself
// unless s lies on a cycle through s).
func (g *CopyGraph) Reachable(s model.SiteID) map[model.SiteID]bool {
	seen := make(map[model.SiteID]bool)
	var stack []model.SiteID
	stack = append(stack, g.adj[s]...)
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		stack = append(stack, g.adj[v]...)
	}
	return seen
}

// Ancestors returns, for every site, the set of its copy-graph ancestors
// (sites from which it is reachable). O(V·E); fine at site counts the
// paper considers (3–15) and acceptable far beyond.
func (g *CopyGraph) Ancestors() []map[model.SiteID]bool {
	anc := make([]map[model.SiteID]bool, g.N)
	for v := 0; v < g.N; v++ {
		anc[v] = make(map[model.SiteID]bool)
	}
	for u := 0; u < g.N; u++ {
		for v := range g.Reachable(model.SiteID(u)) {
			anc[v][model.SiteID(u)] = true
		}
	}
	return anc
}
