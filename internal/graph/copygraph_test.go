package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// paperGraph builds the 3-site copy graph of Example 1.1: item a primary
// at s0 replicated at s1 and s2; item b primary at s1 replicated at s2.
func paperGraph(t *testing.T) (*CopyGraph, *model.Placement) {
	t.Helper()
	p := model.NewPlacement(3, 2)
	p.Primary = []model.SiteID{0, 1}
	p.Replicas = [][]model.SiteID{{1, 2}, {2}}
	if err := p.Finish(); err != nil {
		t.Fatal(err)
	}
	return FromPlacement(p), p
}

func TestFromPlacement(t *testing.T) {
	g, _ := paperGraph(t)
	want := []Edge{{0, 1}, {0, 2}, {1, 2}}
	got := g.Edges()
	if len(got) != len(want) {
		t.Fatalf("edges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("edges = %v, want %v", got, want)
		}
	}
	if g.Weight(Edge{0, 1}) != 1 || g.Weight(Edge{0, 2}) != 1 {
		t.Error("edge weights should count inducing items")
	}
}

func TestEdgeWeightAccumulates(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	if w := g.Weight(Edge{0, 1}); w != 3 {
		t.Errorf("weight = %d, want 3", w)
	}
	if n := g.NumEdges(); n != 1 {
		t.Errorf("NumEdges = %d, want 1", n)
	}
}

func TestSelfLoopIgnored(t *testing.T) {
	g := New(2)
	g.AddEdge(1, 1)
	if g.NumEdges() != 0 {
		t.Error("self loop should be ignored")
	}
}

func TestTopoOrder(t *testing.T) {
	g, _ := paperGraph(t)
	order, ok := g.TopoOrder()
	if !ok {
		t.Fatal("paper graph is a DAG")
	}
	pos := map[model.SiteID]int{}
	for i, s := range order {
		pos[s] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("edge %v violates topo order %v", e, order)
		}
	}
}

func TestTopoOrderDetectsCycle(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	if _, ok := g.TopoOrder(); ok {
		t.Error("cycle not detected")
	}
	if g.IsDAG() {
		t.Error("IsDAG true on a cycle")
	}
}

func TestSourcesAndParents(t *testing.T) {
	g, _ := paperGraph(t)
	src := g.Sources()
	if len(src) != 1 || src[0] != 0 {
		t.Errorf("sources = %v, want [0]", src)
	}
	par := g.Parents(2)
	if len(par) != 2 || par[0] != 0 || par[1] != 1 {
		t.Errorf("parents(2) = %v, want [0 1]", par)
	}
	if ch := g.Children(0); len(ch) != 2 {
		t.Errorf("children(0) = %v", ch)
	}
}

func TestReachableAndAncestors(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	reach := g.Reachable(0)
	if !reach[1] || !reach[2] || reach[3] || reach[0] {
		t.Errorf("Reachable(0) = %v", reach)
	}
	anc := g.Ancestors()
	if !anc[2][0] || !anc[2][1] || len(anc[0]) != 0 || len(anc[3]) != 0 {
		t.Errorf("Ancestors = %v", anc)
	}
}

func TestWithout(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	h := g.Without([]Edge{{2, 0}})
	if h.HasEdge(2, 0) || !h.HasEdge(0, 1) {
		t.Error("Without removed the wrong edges")
	}
	if !h.IsDAG() {
		t.Error("removal should break the cycle")
	}
	// Original untouched.
	if !g.HasEdge(2, 0) {
		t.Error("Without mutated the receiver")
	}
}

// randomGraph builds a pseudo-random directed graph for property tests.
func randomGraph(rng *rand.Rand, maxN int) *CopyGraph {
	n := 2 + rng.Intn(maxN-1)
	g := New(n)
	edges := rng.Intn(3 * n)
	for i := 0; i < edges; i++ {
		g.AddEdge(model.SiteID(rng.Intn(n)), model.SiteID(rng.Intn(n)))
	}
	return g
}

func TestTopoOrderPropertyRandomDAGs(t *testing.T) {
	// Property: for random graphs restricted to forward edges (hence
	// DAGs), TopoOrder succeeds and respects every edge.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := New(n)
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u < v {
				g.AddEdge(model.SiteID(u), model.SiteID(v))
			}
		}
		order, ok := g.TopoOrder()
		if !ok {
			return false
		}
		pos := make([]int, n)
		for i, s := range order {
			pos[s] = i
		}
		for _, e := range g.Edges() {
			if pos[e.From] >= pos[e.To] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
