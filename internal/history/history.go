// Package history records every committed read and write in the
// distributed system and checks global serializability after a run.
//
// The check implements the correctness criterion of the paper's model:
// each site runs strict 2PL, so each local schedule serializes in commit
// order; the global execution over *logical* transactions is serializable
// iff the union of the per-copy conflict orders is acyclic. We derive
// those orders from version numbers: every committed write installs
// version v of a copy, every read observes some version, and the induced
// edges are
//
//	writer(v)  -> writer(v+1)   (ww, per copy)
//	writer(v)  -> reader of v   (wr)
//	reader(v)  -> writer(v+1)   (rw)
//
// A cycle among logical transactions certifies a non-serializable
// execution (this is how the Example 1.1 anomaly shows up for the naive
// lazy protocol); acyclicity certifies serializability with respect to
// the version order the protocols actually produced.
package history

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
)

// copyKey identifies one physical copy.
type copyKey struct {
	Site model.SiteID
	Item model.ItemID
}

// ReadObs is one committed read observation.
type ReadObs struct {
	Site    model.SiteID
	Item    model.ItemID
	Version uint64
	Reader  model.TxnID
}

// Recorder accumulates observations from every site of a run. The zero
// Recorder is not usable; call NewRecorder. A nil *Recorder is a valid
// no-op sink, so benchmarks can disable recording entirely.
type Recorder struct {
	mu     sync.Mutex
	reads  []ReadObs
	writes map[copyKey][]model.TxnID // index = version number - 1
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{writes: make(map[copyKey][]model.TxnID)}
}

// Read records that reader observed the given version of item's copy at
// site. Version 0 is the initial database state.
func (r *Recorder) Read(site model.SiteID, item model.ItemID, version uint64, reader model.TxnID) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.reads = append(r.reads, ReadObs{site, item, version, reader})
	r.mu.Unlock()
}

// Write records that writer installed the given version (>= 1) of item's
// copy at site. Versions may be reported out of order across goroutines;
// they are slotted by number.
func (r *Recorder) Write(site model.SiteID, item model.ItemID, version uint64, writer model.TxnID) {
	if r == nil {
		return
	}
	if version == 0 {
		panic("history: committed writes start at version 1")
	}
	k := copyKey{site, item}
	r.mu.Lock()
	ws := r.writes[k]
	for uint64(len(ws)) < version {
		ws = append(ws, model.TxnID{})
	}
	ws[version-1] = writer
	r.writes[k] = ws
	r.mu.Unlock()
}

// NumReads returns the count of recorded reads.
func (r *Recorder) NumReads() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.reads)
}

// Graph is the conflict graph over logical transactions.
type Graph struct {
	adj map[model.TxnID]map[model.TxnID]bool
}

func (g *Graph) addEdge(from, to model.TxnID) {
	if from == to || from.Zero() || to.Zero() {
		return
	}
	if g.adj[from] == nil {
		g.adj[from] = make(map[model.TxnID]bool)
	}
	g.adj[from][to] = true
}

// Edges returns the number of distinct edges.
func (g *Graph) Edges() int {
	n := 0
	for _, m := range g.adj {
		n += len(m)
	}
	return n
}

// BuildGraph derives the conflict graph from the recorded observations.
func (r *Recorder) BuildGraph() *Graph {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := &Graph{adj: make(map[model.TxnID]map[model.TxnID]bool)}
	for _, ws := range r.writes {
		for i := 1; i < len(ws); i++ {
			g.addEdge(ws[i-1], ws[i])
		}
	}
	for _, ro := range r.reads {
		ws := r.writes[copyKey{ro.Site, ro.Item}]
		if ro.Version > 0 && int(ro.Version) <= len(ws) {
			g.addEdge(ws[ro.Version-1], ro.Reader) // wr
		}
		if int(ro.Version) < len(ws) {
			g.addEdge(ro.Reader, ws[ro.Version]) // rw: next writer
		}
	}
	return g
}

// FindCycle returns a cycle in the graph as a transaction sequence
// (first == last), or nil if the graph is acyclic.
func (g *Graph) FindCycle() []model.TxnID {
	const (
		white = iota
		grey
		black
	)
	color := make(map[model.TxnID]int)
	parent := make(map[model.TxnID]model.TxnID)
	var cycle []model.TxnID

	var nodes []model.TxnID
	for n := range g.adj {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].Site != nodes[j].Site {
			return nodes[i].Site < nodes[j].Site
		}
		return nodes[i].Seq < nodes[j].Seq
	})

	var visit func(u model.TxnID) bool
	visit = func(u model.TxnID) bool {
		color[u] = grey
		for v := range g.adj[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if visit(v) {
					return true
				}
			case grey:
				// Reconstruct u -> ... -> v cycle.
				cycle = []model.TxnID{v}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				cycle = append(cycle, v)
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, n := range nodes {
		if color[n] == white && visit(n) {
			return cycle
		}
	}
	return nil
}

// CheckSerializable builds the conflict graph and returns an error
// describing a cycle if the recorded execution was not serializable.
func (r *Recorder) CheckSerializable() error {
	if r == nil {
		return nil
	}
	if cyc := r.BuildGraph().FindCycle(); cyc != nil {
		return fmt.Errorf("history: serialization cycle %v", cyc)
	}
	return nil
}

// Involving returns a formatted dump of every recorded observation that
// mentions one of the given transactions: each write with its copy and
// version slot, and each read with the version it observed. Debug helper
// for explaining a serialization cycle.
func (r *Recorder) Involving(tids ...model.TxnID) []string {
	if r == nil {
		return nil
	}
	want := make(map[model.TxnID]bool, len(tids))
	for _, t := range tids {
		want[t] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for k, ws := range r.writes {
		for i, w := range ws {
			if want[w] {
				out = append(out, fmt.Sprintf("write s%d item%d v%d by %v", k.Site, k.Item, i+1, w))
			}
		}
	}
	for _, ro := range r.reads {
		if want[ro.Reader] {
			out = append(out, fmt.Sprintf("read  s%d item%d v%d by %v", ro.Site, ro.Item, ro.Version, ro.Reader))
		}
	}
	sort.Strings(out)
	return out
}

// WriteHistory returns the writer of each installed version (index =
// version-1) of item's copy at site. Debug helper.
func (r *Recorder) WriteHistory(site model.SiteID, item model.ItemID) []model.TxnID {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]model.TxnID(nil), r.writes[copyKey{site, item}]...)
}
