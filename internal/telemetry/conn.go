package telemetry

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/comm"
)

// Conn is the wire Sink: one TCP connection from a publisher to an
// aggregator, carrying telemetry envelopes in the comm message framing.
// It is deliberately dumb — no buffering, no retry. A failed send means
// the connection is dead; the Publisher closes it and redials on its
// next cycle, resending full (non-delta) state.
type Conn struct {
	mu sync.Mutex
	c  net.Conn
	w  *comm.MsgWriter
}

// Dial connects to an aggregator. proc is the publishing process's name,
// stamped (via ChannelSpan) on every envelope this connection sends.
func Dial(addr, proc string) (*Conn, error) {
	RegisterPayloads()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("telemetry: dial %s: %w", addr, err)
	}
	_ = proc // the name rides in each Frame; kept in the signature for future handshakes
	return &Conn{c: c, w: comm.NewMsgWriter(c)}, nil
}

// SendFrame implements Sink: it writes one envelope to the wire.
func (c *Conn) SendFrame(f Frame) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.c == nil {
		return fmt.Errorf("telemetry: connection closed")
	}
	_ = c.c.SetWriteDeadline(time.Now().Add(10 * time.Second))
	if _, err := c.w.WriteMsg(envelope(f)); err != nil {
		return fmt.Errorf("telemetry: send %s frame: %w", f.Kind, err)
	}
	return nil
}

// Close implements Sink.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.c == nil {
		return nil
	}
	err := c.c.Close()
	c.c = nil
	return err
}
