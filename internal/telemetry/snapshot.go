package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"

	"repro/internal/contend"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/watch"
)

// ProcInfo summarizes one publishing process in a ClusterSnapshot.
type ProcInfo struct {
	Proc     string         `json:"proc"`
	Protocol string         `json:"protocol"`
	Sites    []model.SiteID `json:"sites"`
	Frames   uint64         `json:"frames"`
	Gaps     uint64         `json:"gaps,omitempty"`
	Dropped  uint64         `json:"dropped_events,omitempty"`
	AgeMS    int64          `json:"age_ms"`
}

// ProtocolStat is per-protocol cluster throughput.
type ProtocolStat struct {
	Protocol  string `json:"protocol"`
	Committed int64  `json:"committed"`
	Aborted   int64  `json:"aborted"`
	// CommitPerSec is the commit rate over the interval since the
	// previous Snapshot call (since aggregator start on the first).
	CommitPerSec float64 `json:"commit_per_sec"`
}

// SiteRow is one site's merged view, re-keyed from its hosting
// process's metrics.
type SiteRow struct {
	Site              model.SiteID `json:"site"`
	Proc              string       `json:"proc"`
	Protocol          string       `json:"protocol"`
	Committed         int64        `json:"committed"`
	Aborted           int64        `json:"aborted"`
	Applied           int64        `json:"applied"`
	Forwarded         int64        `json:"forwarded"`
	RemoteReads       int64        `json:"remote_reads,omitempty"`
	QueueDepth        int64        `json:"queue_depth"`
	VersionLag        int64        `json:"version_lag"`
	OldestUnappliedMS int64        `json:"oldest_unapplied_ms"`
}

// EdgeRow is one copy-graph edge's federated in-flight state.
type EdgeRow struct {
	From     model.SiteID `json:"from"`
	To       model.SiteID `json:"to"`
	InFlight int          `json:"in_flight"`
	OldestMS int64        `json:"oldest_ms"`
}

// ProcAlert attributes a watchdog alert to its reporting process.
type ProcAlert struct {
	Proc  string      `json:"proc"`
	Alert watch.Alert `json:"alert"`
}

// SpanRender is one transaction's reconstructed cross-process span
// tree, rendered byte-stably (trace.SpanTree.Structure).
type SpanRender struct {
	TID       string `json:"tid"`
	Structure string `json:"structure"`
}

// ClusterSnapshot is the aggregator's point-in-time cluster view — the
// document repltop renders (and emits verbatim with -json).
type ClusterSnapshot struct {
	Procs          []ProcInfo                `json:"procs"`
	Protocols      []ProtocolStat            `json:"protocols"`
	Sites          []SiteRow                 `json:"sites"`
	Edges          []EdgeRow                 `json:"edges,omitempty"`
	Phases         map[string]PhaseQuantiles `json:"phases,omitempty"`
	Alerts         []ProcAlert               `json:"alerts,omitempty"`
	MaxStalenessMS int64                     `json:"max_staleness_ms"`
	SpanTrees      int                       `json:"span_trees"`
	SpanProblems   int                       `json:"span_problems"`
	RecentSpans    []SpanRender              `json:"recent_spans,omitempty"`
	// HotItems is the cluster-wide contention heat table (per-proc
	// FrameHeat tables merged, hottest first); AbortReasons the summed
	// abort root-cause breakdown. Part of the contention observatory
	// (docs/OBSERVABILITY.md).
	HotItems     []contend.HeatEntry `json:"hot_items,omitempty"`
	AbortReasons map[string]uint64   `json:"abort_reasons,omitempty"`
	// Freshness is the cluster-wide replica-staleness and read-
	// certificate view (per-proc FrameFresh summaries merged per site:
	// counts sum, quantiles take the max, same pessimistic discipline as
	// the phase merge). Part of the freshness observatory
	// (docs/OBSERVABILITY.md).
	Freshness []FreshRow `json:"freshness,omitempty"`
}

// FreshRow is one site's merged freshness view.
type FreshRow struct {
	Site          model.SiteID `json:"site"`
	Applies       uint64       `json:"applies"`
	VersionLagP95 uint64       `json:"version_lag_p95"`
	TimeLagP95US  uint64       `json:"time_lag_p95_us"`
	ReadsFresh    uint64       `json:"reads_fresh"`
	ReadsStale    uint64       `json:"reads_stale"`
	ReadLagP95US  uint64       `json:"read_lag_p95_us"`
}

// hotItemsShown bounds the merged heat table a snapshot carries — the
// console panel and the -json document both want the head, not a
// million-item dump.
const hotItemsShown = 10

// Snapshot computes the current cluster view. Commit rates are measured
// between consecutive Snapshot calls, so a renderer polling at a fixed
// interval sees interval rates.
func (a *Aggregator) Snapshot() ClusterSnapshot {
	now := time.Now()
	a.mu.Lock()

	var snap ClusterSnapshot

	// Per-proc rollup plus per-site re-keying of each proc's metrics.
	// Hello announcements own site attribution: a watchdog observes its
	// *peers* too (repl_watch_version_lag{site=peer}), so a site-labeled
	// series alone does not prove the proc hosts the site. Procs are
	// walked in name order so unannounced sites attribute
	// deterministically.
	procNames := make([]string, 0, len(a.procs))
	for proc := range a.procs {
		procNames = append(procNames, proc)
	}
	sort.Strings(procNames)
	owner := make(map[model.SiteID]string)
	for _, proc := range procNames {
		for _, s := range a.procs[proc].hello.Sites {
			if _, taken := owner[s]; !taken {
				owner[s] = proc
			}
		}
	}

	sites := make(map[model.SiteID]*SiteRow)
	committedByProto := make(map[string]int64)
	abortedByProto := make(map[string]int64)
	phases := make(map[string]PhaseQuantiles)
	var heatTables [][]contend.HeatEntry
	var freshRows map[model.SiteID]*FreshRow
	for _, proc := range procNames {
		ps := a.procs[proc]
		info := ProcInfo{
			Proc:     proc,
			Protocol: ps.hello.Protocol,
			Sites:    append([]model.SiteID(nil), ps.hello.Sites...),
			Frames:   ps.frames,
			Gaps:     ps.gaps,
			Dropped:  ps.dropped,
			AgeMS:    now.Sub(ps.lastSeen).Milliseconds(),
		}
		sort.Slice(info.Sites, func(i, j int) bool { return info.Sites[i] < info.Sites[j] })
		snap.Procs = append(snap.Procs, info)

		row := func(site model.SiteID) *SiteRow {
			r := sites[site]
			if r == nil {
				rowProc, rowProto := proc, ps.hello.Protocol
				if own, ok := owner[site]; ok {
					//lint:allow guardedby the row closure only runs inside Snapshot's critical section; the analyzer cannot see through the variable-bound call
					rowProc, rowProto = own, a.procs[own].hello.Protocol
				}
				r = &SiteRow{Site: site, Proc: rowProc, Protocol: rowProto}
				sites[site] = r
			}
			return r
		}
		for _, s := range ps.hello.Sites {
			row(s)
		}
		for key, v := range ps.metrics {
			family, labels := parseSeries(key)
			siteLabel, ok := labels["site"]
			if !ok {
				continue
			}
			n, err := strconv.Atoi(siteLabel)
			if err != nil {
				continue
			}
			r := row(model.SiteID(n))
			// Only the hosting proc's engine counters fill a row's
			// activity columns; the watch gauges merge as max across
			// observers (a site is as stale as anyone can see it is).
			hosts := r.Proc == proc
			switch family {
			case "repl_txn_committed_total":
				if hosts {
					r.Committed = v
					committedByProto[r.Protocol] += v
				}
			case "repl_txn_aborted_total":
				if hosts {
					r.Aborted = v
					abortedByProto[r.Protocol] += v
				}
			case "repl_secondary_applied_total":
				if hosts {
					r.Applied = v
				}
			case "repl_secondary_forwarded_total":
				if hosts {
					r.Forwarded = v
				}
			case "repl_remote_reads_total":
				if hosts {
					r.RemoteReads = v
				}
			case "repl_queue_depth":
				if hosts {
					r.QueueDepth += v
				}
			case "repl_watch_version_lag":
				if v > r.VersionLag {
					r.VersionLag = v
				}
			case "repl_watch_oldest_unapplied_ms":
				if v > r.OldestUnappliedMS {
					r.OldestUnappliedMS = v
				}
			}
		}

		// Phase heat merges pessimistically: counts sum, quantiles take
		// the cluster max — a hot phase anywhere shows hot.
		for name, q := range ps.phases {
			m := phases[name]
			m.Count += q.Count
			m.MeanUS = maxf(m.MeanUS, q.MeanUS)
			m.P50US = maxf(m.P50US, q.P50US)
			m.P95US = maxf(m.P95US, q.P95US)
			m.P99US = maxf(m.P99US, q.P99US)
			m.MaxUS = maxf(m.MaxUS, q.MaxUS)
			phases[name] = m
		}
		for _, al := range ps.alerts {
			snap.Alerts = append(snap.Alerts, ProcAlert{Proc: proc, Alert: al})
		}
		if ps.summary.MaxStalenessMs > snap.MaxStalenessMS {
			snap.MaxStalenessMS = ps.summary.MaxStalenessMs
		}
		if len(ps.heat) > 0 {
			heatTables = append(heatTables, ps.heat)
		}
		for reason, n := range ps.aborts {
			if snap.AbortReasons == nil {
				snap.AbortReasons = make(map[string]uint64)
			}
			snap.AbortReasons[reason] += n
		}
		if ps.fresh != nil {
			if freshRows == nil {
				freshRows = make(map[model.SiteID]*FreshRow)
			}
			for _, sf := range ps.fresh.Sites {
				fr := freshRows[sf.Site]
				if fr == nil {
					fr = &FreshRow{Site: sf.Site}
					freshRows[sf.Site] = fr
				}
				fr.Applies += sf.Applies
				fr.ReadsFresh += sf.ReadsFresh
				fr.ReadsStale += sf.ReadsStale
				fr.VersionLagP95 = max(fr.VersionLagP95, sf.VersionLag.P95)
				fr.TimeLagP95US = max(fr.TimeLagP95US, sf.TimeLagUS.P95)
				fr.ReadLagP95US = max(fr.ReadLagP95US, sf.ReadTimeLagUS.P95)
			}
		}
	}
	snap.HotItems = contend.MergeHeat(heatTables, hotItemsShown)
	for _, sid := range sortedSiteIDs(freshRows) {
		snap.Freshness = append(snap.Freshness, *freshRows[sid])
	}
	if len(phases) > 0 {
		snap.Phases = phases
	}

	// Protocol throughput: interval commit rate between snapshots.
	elapsed := now.Sub(a.lastSnapAt)
	if a.lastSnapAt.IsZero() {
		elapsed = now.Sub(a.start)
	}
	if a.lastCommitted == nil {
		a.lastCommitted = make(map[string]int64)
	}
	for proto, committed := range committedByProto {
		rate := 0.0
		if secs := elapsed.Seconds(); secs > 0 {
			rate = float64(committed-a.lastCommitted[proto]) / secs
		}
		snap.Protocols = append(snap.Protocols, ProtocolStat{
			Protocol:     proto,
			Committed:    committed,
			Aborted:      abortedByProto[proto],
			CommitPerSec: rate,
		})
		a.lastCommitted[proto] = committed
	}
	a.lastSnapAt = now

	// Federated edges and the staleness they imply.
	for e, m := range a.inflight {
		if len(m) == 0 {
			continue
		}
		row := EdgeRow{From: e.From, To: e.To, InFlight: len(m)}
		for _, since := range m {
			if age := now.Sub(since).Milliseconds(); age > row.OldestMS {
				row.OldestMS = age
			}
		}
		if row.OldestMS > snap.MaxStalenessMS {
			snap.MaxStalenessMS = row.OldestMS
		}
		snap.Edges = append(snap.Edges, row)
	}

	events := append([]trace.Event(nil), a.events...)
	recent := append([]model.TxnID(nil), a.recent...)
	a.mu.Unlock()

	// Deterministic ordering everywhere a map fed the slice.
	sort.Slice(snap.Procs, func(i, j int) bool { return snap.Procs[i].Proc < snap.Procs[j].Proc })
	sort.Slice(snap.Protocols, func(i, j int) bool { return snap.Protocols[i].Protocol < snap.Protocols[j].Protocol })
	for _, r := range sortedSiteIDs(sites) {
		snap.Sites = append(snap.Sites, *sites[r])
	}
	sort.Slice(snap.Edges, func(i, j int) bool {
		if snap.Edges[i].From != snap.Edges[j].From {
			return snap.Edges[i].From < snap.Edges[j].From
		}
		return snap.Edges[i].To < snap.Edges[j].To
	})
	sort.Slice(snap.Alerts, func(i, j int) bool {
		if snap.Alerts[i].Proc != snap.Alerts[j].Proc {
			return snap.Alerts[i].Proc < snap.Alerts[j].Proc
		}
		return snap.Alerts[i].Alert.Raised.Before(snap.Alerts[j].Alert.Raised)
	})

	// Span federation: rebuild trees outside the lock (Build is O(events)).
	trees := trace.BuildSpanTrees(events)
	snap.SpanTrees = len(trees)
	snap.SpanProblems = len(trace.VerifySpans(events))
	const showSpans = 8
	startIdx := len(recent) - showSpans
	if startIdx < 0 {
		startIdx = 0
	}
	for _, tid := range recent[startIdx:] {
		t, ok := trees[tid]
		if !ok {
			continue
		}
		snap.RecentSpans = append(snap.RecentSpans, SpanRender{
			TID:       fmt.Sprintf("s%d.%d", tid.Site, tid.Seq),
			Structure: t.Structure(),
		})
	}
	return snap
}

// Render writes the snapshot as the fixed-width text console repltop
// displays.
func (s *ClusterSnapshot) Render(w io.Writer) {
	fmt.Fprintf(w, "cluster telemetry — %d proc(s), %d site(s), max staleness %dms\n",
		len(s.Procs), len(s.Sites), s.MaxStalenessMS)

	if len(s.Procs) > 0 {
		fmt.Fprintf(w, "\n%-12s %-10s %-14s %8s %6s %8s %7s\n",
			"PROC", "PROTOCOL", "SITES", "FRAMES", "GAPS", "DROPPED", "AGE")
		for _, p := range s.Procs {
			fmt.Fprintf(w, "%-12s %-10s %-14s %8d %6d %8d %6dms\n",
				p.Proc, p.Protocol, siteList(p.Sites), p.Frames, p.Gaps, p.Dropped, p.AgeMS)
		}
	}

	if len(s.Protocols) > 0 {
		fmt.Fprintf(w, "\n%-10s %10s %8s %12s\n", "PROTOCOL", "COMMITTED", "ABORTED", "COMMIT/S")
		for _, p := range s.Protocols {
			fmt.Fprintf(w, "%-10s %10d %8d %12.1f\n", p.Protocol, p.Committed, p.Aborted, p.CommitPerSec)
		}
	}

	if len(s.Sites) > 0 {
		fmt.Fprintf(w, "\n%-5s %-12s %9s %7s %8s %9s %7s %6s %10s\n",
			"SITE", "PROC", "COMMITTED", "ABORTED", "APPLIED", "FORWARDED", "QUEUED", "LAG", "OLDEST")
		for _, r := range s.Sites {
			fmt.Fprintf(w, "s%-4d %-12s %9d %7d %8d %9d %7d %6d %8dms\n",
				r.Site, r.Proc, r.Committed, r.Aborted, r.Applied, r.Forwarded,
				r.QueueDepth, r.VersionLag, r.OldestUnappliedMS)
		}
	}

	if len(s.Edges) > 0 {
		fmt.Fprintf(w, "\n%-10s %9s %10s\n", "EDGE", "IN-FLIGHT", "OLDEST")
		for _, e := range s.Edges {
			fmt.Fprintf(w, "s%d -> s%-3d %9d %8dms\n", e.From, e.To, e.InFlight, e.OldestMS)
		}
	}

	if len(s.Phases) > 0 {
		names := make([]string, 0, len(s.Phases))
		for n := range s.Phases {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "\n%-14s %10s %10s %10s %10s %10s\n",
			"PHASE", "COUNT", "MEAN", "P95", "P99", "MAX")
		for _, n := range names {
			q := s.Phases[n]
			fmt.Fprintf(w, "%-14s %10d %9.0fµ %9.0fµ %9.0fµ %9.0fµ\n",
				n, q.Count, q.MeanUS, q.P95US, q.P99US, q.MaxUS)
		}
	}

	if len(s.HotItems) > 0 {
		fmt.Fprintf(w, "\nHOT ITEMS\n%-8s %9s %8s %8s %10s %8s %10s %6s\n",
			"ITEM", "ACQUIRED", "WAITED", "FAILED", "WAIT", "MAX", "QPEAK", "SITES")
		for _, h := range s.HotItems {
			fmt.Fprintf(w, "x[%-5d] %9d %8d %8d %8dms %6dms %10d %6d\n",
				h.Item, h.Acquired, h.Waited, h.Failures(),
				h.WaitNS/int64(time.Millisecond), h.MaxWaitNS/int64(time.Millisecond),
				h.QueuePeak, h.Sites)
		}
	}

	if len(s.AbortReasons) > 0 {
		reasons := make([]string, 0, len(s.AbortReasons))
		for r := range s.AbortReasons {
			reasons = append(reasons, r)
		}
		sort.Slice(reasons, func(i, j int) bool {
			if s.AbortReasons[reasons[i]] != s.AbortReasons[reasons[j]] {
				return s.AbortReasons[reasons[i]] > s.AbortReasons[reasons[j]]
			}
			return reasons[i] < reasons[j]
		})
		fmt.Fprintf(w, "\nABORT REASONS\n")
		for _, r := range reasons {
			fmt.Fprintf(w, "  %-14s %d\n", r, s.AbortReasons[r])
		}
	}

	if len(s.Freshness) > 0 {
		fmt.Fprintf(w, "\nFRESHNESS\n%-6s %9s %9s %12s %9s %9s %12s\n",
			"SITE", "APPLIES", "VLAG P95", "TLAG P95", "FRESH", "STALE", "RLAG P95")
		for _, f := range s.Freshness {
			fmt.Fprintf(w, "s%-5d %9d %9d %12s %9d %9d %12s\n",
				f.Site, f.Applies, f.VersionLagP95, usDur(f.TimeLagP95US),
				f.ReadsFresh, f.ReadsStale, usDur(f.ReadLagP95US))
		}
	}

	fmt.Fprintf(w, "\nspans: %d tree(s), %d problem(s)\n", s.SpanTrees, s.SpanProblems)
	if len(s.Alerts) > 0 {
		fmt.Fprintf(w, "\nALERTS\n")
		for _, pa := range s.Alerts {
			fmt.Fprintf(w, "  [%s] %s site=s%d peer=s%d age=%s %s\n",
				pa.Proc, pa.Alert.Kind, pa.Alert.Site, pa.Alert.Peer,
				pa.Alert.Age.Truncate(time.Millisecond), pa.Alert.Detail)
		}
	}
	if len(s.RecentSpans) > 0 {
		fmt.Fprintf(w, "\nRECENT SPANS\n")
		for _, sp := range s.RecentSpans {
			fmt.Fprintf(w, "  txn %s\n", sp.TID)
			for _, line := range splitLines(sp.Structure) {
				fmt.Fprintf(w, "    %s\n", line)
			}
		}
	}
}

func siteList(sites []model.SiteID) string {
	out := ""
	for i, s := range sites {
		if i > 0 {
			out += ","
		}
		out += "s" + strconv.Itoa(int(s))
	}
	return out
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

// usDur renders a µs quantity as a rounded duration string.
func usDur(us uint64) string {
	return (time.Duration(us) * time.Microsecond).Round(time.Microsecond).String()
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
