package telemetry

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/comm"
	"repro/internal/contend"
	"repro/internal/fresh"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/watch"
)

const (
	// maxEvents caps the merged span-event store; past it the oldest
	// events are dropped (span trees of long-gone transactions decay
	// first, since the store is arrival-ordered).
	maxEvents = 1 << 18
	// maxTombstones caps the out-of-order bookkeeping of the federated
	// staleness view; overflow clears the sets (worst case: a transient
	// phantom in-flight entry, never unbounded memory).
	maxTombstones = 1 << 16
	// maxRecentTIDs caps how many distinct transactions are remembered
	// for span-trace display, newest last.
	maxRecentTIDs = 64
)

// procState is everything the aggregator knows about one publishing
// process.
type procState struct {
	hello    Hello
	seq      uint64 // highest frame sequence seen
	frames   uint64 // frames received
	gaps     uint64 // sequence discontinuities (lost frames or restarts)
	dropped  uint64 // publisher-reported buffer-overflow drops
	metrics  map[string]int64
	phases   map[string]PhaseQuantiles
	alerts   []watch.Alert
	summary  watch.Summary
	heat     []contend.HeatEntry
	aborts   map[string]uint64
	fresh    *fresh.Summary
	lastSeen time.Time
}

// edgeKey identifies one copy-graph propagation edge.
type edgeKey struct {
	From, To model.SiteID
}

// siteTID identifies one secondary subtransaction's arrival at a site.
type siteTID struct {
	Site model.SiteID
	TID  model.TxnID
}

// Aggregator merges telemetry streams from N processes into one cluster
// view: per-proc metrics re-keyed by site, a single merged span-event
// stream (deterministic span lineage makes cross-process trees stitch
// themselves — see trace.BuildSpanTrees), and a federated staleness
// view replaying each process's forwarded/applied events, which no
// single in-process watchdog can compute once the copy graph spans
// processes.
//
// It is also a Sink (SendFrame ingests locally), so a single-process
// deployment can wire Publisher→Aggregator→repltop with no sockets.
type Aggregator struct {
	mu    sync.Mutex
	procs map[string]*procState // repl:guardedby(mu)

	events   []trace.Event        // repl:guardedby(mu)
	evDrop   uint64               // events dropped by the maxEvents cap // repl:guardedby(mu)
	recent   []model.TxnID        // repl:guardedby(mu)
	recentIn map[model.TxnID]bool // repl:guardedby(mu)

	// Federated staleness: outstanding forwarded-but-unapplied
	// subtransactions per edge, stamped with aggregator receipt time.
	// Frames from different connections interleave arbitrarily, so an
	// apply may be ingested before its forward: tombstones remember
	// applies (and aborts) that arrived early.
	inflight    map[edgeKey]map[model.TxnID]time.Time // repl:guardedby(mu)
	appliedTomb map[siteTID]struct{}                  // repl:guardedby(mu)
	abortedTomb map[model.TxnID]struct{}              // repl:guardedby(mu)

	// Rate bookkeeping for Snapshot.
	lastSnapAt    time.Time        // repl:guardedby(mu)
	lastCommitted map[string]int64 // per protocol // repl:guardedby(mu)

	start time.Time

	ln          net.Listener // repl:guardedby(mu)
	wg          sync.WaitGroup
	closed      bool // repl:guardedby(mu)
	activeConns int  // repl:guardedby(mu)
	totalConns  int  // repl:guardedby(mu)
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{
		procs:       make(map[string]*procState),
		recentIn:    make(map[model.TxnID]bool),
		inflight:    make(map[edgeKey]map[model.TxnID]time.Time),
		appliedTomb: make(map[siteTID]struct{}),
		abortedTomb: make(map[model.TxnID]struct{}),
		start:       time.Now(),
	}
}

// Listen starts accepting publisher connections on addr (":0" picks a
// port) and returns the bound address.
func (a *Aggregator) Listen(addr string) (string, error) {
	RegisterPayloads()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("telemetry: aggregator closed")
	}
	a.ln = ln
	a.mu.Unlock()
	a.wg.Add(1)
	go a.accept(ln)
	return ln.Addr().String(), nil
}

func (a *Aggregator) accept(ln net.Listener) {
	defer a.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		a.mu.Lock()
		if a.closed {
			a.mu.Unlock()
			c.Close()
			return
		}
		a.activeConns++
		a.totalConns++
		a.mu.Unlock()
		a.wg.Add(1)
		go a.serve(c)
	}
}

func (a *Aggregator) serve(c net.Conn) {
	defer a.wg.Done()
	defer func() {
		c.Close()
		a.mu.Lock()
		a.activeConns--
		a.mu.Unlock()
	}()
	mr := comm.NewMsgReader(c)
	for {
		msg, err := mr.ReadMsg()
		if err != nil {
			return // clean close, peer death, or our own Close
		}
		if msg.Kind != MessageKind {
			continue // foreign traffic; telemetry ports only speak telemetry
		}
		f, ok := msg.Payload.(Frame)
		if !ok {
			continue
		}
		a.Ingest(f)
	}
}

// ConnCounts reports (active, total-ever) publisher connections —
// repltop's -once mode exits once every publisher has connected and
// disconnected.
func (a *Aggregator) ConnCounts() (active, total int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.activeConns, a.totalConns
}

// SendFrame implements Sink for in-process wiring: the frame is
// ingested directly, no wire involved.
func (a *Aggregator) SendFrame(f Frame) error {
	a.Ingest(f)
	return nil
}

// Close stops the listener and drops all connections. Ingested state
// remains readable.
func (a *Aggregator) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	ln := a.ln
	a.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	// Connections unblock because serve's reads fail once peers close;
	// closing the listener stops new ones. Force the stragglers by
	// waiting with the listener gone — publisher Stop closes its end.
	a.wg.Wait()
	return nil
}

// Ingest merges one frame into the cluster view. Safe for concurrent
// use (each wire connection calls it from its own goroutine).
func (a *Aggregator) Ingest(f Frame) {
	if f.Proc == "" {
		return
	}
	now := time.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	ps := a.procs[f.Proc]
	if ps == nil {
		ps = &procState{metrics: make(map[string]int64)}
		a.procs[f.Proc] = ps
	}
	ps.frames++
	if f.Seq != ps.seq+1 && ps.seq != 0 && f.Seq > ps.seq+1 {
		ps.gaps++
	}
	if f.Seq > ps.seq {
		ps.seq = f.Seq
	}
	ps.lastSeen = now

	switch f.Kind {
	case FrameHello:
		if f.Hello != nil {
			ps.hello = *f.Hello
		}
	case FrameMetrics:
		for k, v := range f.Metrics {
			ps.metrics[k] = v // absolute values: replay-safe
		}
	case FrameSpans:
		if f.Dropped > ps.dropped {
			ps.dropped = f.Dropped
		}
		a.ingestEvents(f.Events, now)
	case FramePhases:
		ps.phases = f.Phases
	case FrameAlerts:
		if f.Alerts != nil {
			ps.alerts = f.Alerts.Active
			ps.summary = f.Alerts.Summary
		}
	case FrameHeat:
		ps.heat = f.Heat // absolute table: replay-safe
	case FrameAborts:
		ps.aborts = f.Aborts // absolute counts: replay-safe
	case FrameFresh:
		ps.fresh = f.Fresh // absolute summary: replay-safe
	}
}

// ingestEvents appends span events to the merged stream and replays
// them into the federated staleness view. Caller holds a.mu.
func (a *Aggregator) ingestEvents(events []trace.Event, now time.Time) {
	for _, ev := range events {
		a.events = append(a.events, ev)
		if !ev.TID.Zero() && !a.recentIn[ev.TID] {
			a.recentIn[ev.TID] = true
			a.recent = append(a.recent, ev.TID)
			if len(a.recent) > maxRecentTIDs {
				delete(a.recentIn, a.recent[0])
				a.recent = a.recent[1:]
			}
		}
		a.federate(ev, now)
	}
	if len(a.events) > maxEvents {
		over := len(a.events) - maxEvents
		a.evDrop += uint64(over)
		a.events = append([]trace.Event(nil), a.events[over:]...)
	}
}

// federate mirrors watch.Watchdog.Ingest's outstanding bookkeeping, but
// per edge, across processes, and tolerant of cross-connection
// reordering (an apply can be ingested before its forward). Caller
// holds a.mu.
func (a *Aggregator) federate(ev trace.Event, now time.Time) {
	switch ev.Kind {
	case trace.SecondaryForwarded:
		if ev.TID.Zero() {
			return
		}
		if _, aborted := a.abortedTomb[ev.TID]; aborted {
			return
		}
		key := siteTID{Site: ev.Peer, TID: ev.TID}
		if _, done := a.appliedTomb[key]; done {
			delete(a.appliedTomb, key)
			return
		}
		e := edgeKey{From: ev.Site, To: ev.Peer}
		m := a.inflight[e]
		if m == nil {
			m = make(map[model.TxnID]time.Time)
			a.inflight[e] = m
		}
		m[ev.TID] = now
	case trace.SecondaryApplied, trace.BackedgeCommit:
		if ev.TID.Zero() {
			return
		}
		found := false
		for e, m := range a.inflight {
			if e.To == ev.Site {
				if _, ok := m[ev.TID]; ok {
					delete(m, ev.TID)
					found = true
				}
			}
		}
		if !found {
			a.appliedTomb[siteTID{Site: ev.Site, TID: ev.TID}] = struct{}{}
			if len(a.appliedTomb) > maxTombstones {
				a.appliedTomb = make(map[siteTID]struct{})
			}
		}
	case trace.TxnAbort:
		if ev.TID.Zero() {
			return
		}
		for _, m := range a.inflight {
			delete(m, ev.TID)
		}
		a.abortedTomb[ev.TID] = struct{}{}
		if len(a.abortedTomb) > maxTombstones {
			a.abortedTomb = make(map[model.TxnID]struct{})
		}
	}
}

// Events returns a copy of the merged span-event stream, in arrival
// order.
func (a *Aggregator) Events() []trace.Event {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]trace.Event(nil), a.events...)
}

// SpanTrees reconstructs the cross-process span trees from the merged
// stream.
func (a *Aggregator) SpanTrees() map[model.TxnID]*trace.SpanTree {
	return trace.BuildSpanTrees(a.Events())
}
