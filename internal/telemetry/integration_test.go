package telemetry_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sort"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/watch"
	"repro/internal/workload"
)

// proc is one simulated process of a multi-process deployment: a group
// of sites over real TCP sockets with one shared recorder, registry,
// watchdog, and telemetry publisher — exactly replnode's wiring, two
// sites per process instead of one.
type proc struct {
	name    string
	sites   []model.SiteID
	rec     *trace.Recorder
	reg     *obs.Registry
	wd      *watch.Watchdog
	pub     *telemetry.Publisher
	engines map[model.SiteID]core.Engine
	trs     []*comm.TCPTransport
}

func (p *proc) stop() {
	for _, e := range p.engines {
		e.Stop()
	}
	p.wd.Stop()
	p.pub.Stop()
	for _, tr := range p.trs {
		tr.Close()
	}
}

// reservePorts grabs n distinct loopback ports by listening and
// immediately closing; the tiny reuse window is fine for a local test.
func reservePorts(t *testing.T, n int) []string {
	t.Helper()
	out := make([]string, n)
	for i := range out {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		out[i] = ln.Addr().String()
		ln.Close()
	}
	return out
}

// TestCrossProcessFederation runs one 4-site DAG(WT) cluster split
// across two simulated processes over TCP, streams both processes'
// telemetry into one aggregator, and asserts the aggregator's view:
// cross-process span trees byte-identical to the ground truth built
// from the merged in-process recorders, a converged per-site staleness
// table, and a repltop-shaped JSON snapshot.
func TestCrossProcessFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("real sockets and multi-hundred-ms drain")
	}
	const nSites = 4

	wl := workload.Default()
	wl.Sites = nSites
	wl.Items = 40
	wl.Seed = 11
	wl.ReplicationProb = 0.6 // dense copies: plenty of propagation
	wl.SiteProb = 0.6
	wl.BackedgeProb = 0 // DAG(WT) needs a DAG copy graph
	wl.ThreadsPerSite = 1
	wl.TxnsPerThread = 8
	wl.ReadOpProb = 0.3
	wl.ReadTxnProb = 0.2

	placement, err := wl.GeneratePlacement()
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromPlacement(placement)
	order := make([]model.SiteID, nSites)
	for i := range order {
		order[i] = model.SiteID(i)
	}
	backs := graph.OrderBackedges(g, order)
	if len(backs) > 0 {
		t.Fatalf("placement has %d backedges; want a DAG (BackedgeProb 0)", len(backs))
	}
	tree := graph.BuildChain(order)

	agg := telemetry.NewAggregator()
	aggAddr, err := agg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	core.RegisterPayloads()
	addrs := reservePorts(t, nSites)
	addrMap := make(map[model.SiteID]string, nSites)
	for i, a := range addrs {
		addrMap[model.SiteID(i)] = a
	}

	groups := [][]model.SiteID{{0, 1}, {2, 3}}
	procs := make([]*proc, len(groups))
	for gi, sites := range groups {
		p := &proc{
			name:    fmt.Sprintf("proc-%c", 'a'+gi),
			sites:   sites,
			rec:     trace.NewRecorder(),
			reg:     obs.NewRegistry(),
			engines: make(map[model.SiteID]core.Engine),
		}
		p.wd = watch.New(watch.Options{StalenessDeadline: 24 * time.Hour})
		p.wd.SetObs(p.reg)
		p.wd.SetTrace(p.rec)
		p.rec.AddSink(p.wd.Ingest)

		collector := metrics.NewCollector(false)
		pub, err := telemetry.NewPublisher(telemetry.Options{
			Proc:       p.name,
			Addr:       aggAddr,
			Interval:   50 * time.Millisecond,
			SpanBuffer: 65536,
		})
		if err != nil {
			t.Fatal(err)
		}
		pub.SetObs(p.reg)
		pub.SetWatch(p.wd)
		pub.SetReport(func() metrics.Report { return collector.Snapshot(1) })
		pub.Announce(core.DAGWT.String(), sites)
		p.rec.AddSink(pub.Ingest)
		p.pub = pub

		shared := &core.SharedConfig{
			Placement:    placement,
			Graph:        g,
			Order:        order,
			Tree:         tree,
			SubtreeItems: graph.SubtreeCopyItems(tree, placement),
			Backedges:    map[graph.Edge]bool{},
			Params:       core.DefaultParams(),
			Metrics:      collector,
			Trace:        p.rec,
			Obs:          p.reg,
			Watch:        p.wd,
		}
		for _, s := range sites {
			tr, err := comm.NewTCPTransport(s, addrMap)
			if err != nil {
				t.Fatal(err)
			}
			p.trs = append(p.trs, tr)
			e, err := core.New(core.DAGWT, shared, s, tr)
			if err != nil {
				t.Fatal(err)
			}
			p.engines[s] = e
		}
		procs[gi] = p
	}
	for _, p := range procs {
		for _, e := range p.engines {
			e.Start()
		}
		p.wd.Start()
		p.pub.Start()
	}
	defer func() {
		for _, p := range procs {
			p.stop()
		}
	}()

	// Drive the workload: every site runs its own client thread inside
	// its hosting "process".
	for _, p := range procs {
		for _, s := range p.sites {
			gen := workload.NewTxnGen(wl, placement, s, wl.Seed+int64(s)*1000+7)
			eng := p.engines[s]
			for i := 0; i < wl.TxnsPerThread; i++ {
				_ = eng.Execute(gen.Next())
			}
		}
	}

	// Drain: wait until the cluster quiesces AND the aggregator's view
	// stops moving (every forwarded subtransaction applied, publisher
	// cycles flushed).
	// Ground truth mirrors what the publishers ship: the span-carrying
	// subset of each process's recorder (span-less events — phase
	// latencies, watchdog noise — travel as quantiles and alert frames).
	groundEvents := func() []trace.Event {
		var evs []trace.Event
		for _, p := range procs {
			for _, ev := range p.rec.Snapshot() {
				if ev.Span != 0 {
					evs = append(evs, ev)
				}
			}
		}
		return evs
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		for _, p := range procs {
			_ = p.pub.Flush()
		}
		snap := agg.Snapshot()
		if len(snap.Edges) == 0 && len(agg.Events()) == len(groundEvents()) && len(snap.Sites) == nSites {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("aggregator never converged: edges=%v aggEvents=%d groundEvents=%d sites=%d",
				snap.Edges, len(agg.Events()), len(groundEvents()), len(snap.Sites))
		}
		time.Sleep(50 * time.Millisecond)
	}

	// --- Span federation: the aggregator's trees must be byte-identical
	// to the ground truth reconstructed from the merged in-process
	// recorders. ---
	ground := trace.BuildSpanTrees(groundEvents())
	fed := agg.SpanTrees()
	if len(fed) != len(ground) || len(fed) == 0 {
		t.Fatalf("federated %d span trees, ground truth has %d", len(fed), len(ground))
	}
	crossProc := 0
	for tid, gt := range ground {
		ft, ok := fed[tid]
		if !ok {
			t.Fatalf("transaction %v missing from federated trees", tid)
		}
		if got, want := ft.Structure(), gt.Structure(); got != want {
			t.Fatalf("federated tree for %v differs\n--- federated ---\n%s\n--- ground ---\n%s", tid, got, want)
		}
		// Count trees whose spans touch sites hosted by different procs:
		// those only reconstruct because the streams merged.
		sites := map[model.SiteID]bool{}
		for _, ev := range groundEvents() {
			if ev.TID == tid && ev.Span != 0 {
				sites[ev.Site] = true
			}
		}
		if (sites[0] || sites[1]) && (sites[2] || sites[3]) {
			crossProc++
		}
	}
	if crossProc == 0 {
		t.Fatalf("no span tree crossed the process boundary; federation untested (trees=%d)", len(ground))
	}
	if problems := trace.VerifySpans(agg.Events()); len(problems) != 0 {
		t.Fatalf("federated stream fails span verification: %v", problems)
	}

	// --- Merged staleness/metrics table. ---
	snap := agg.Snapshot()
	if snap.SpanProblems != 0 {
		t.Fatalf("snapshot reports %d span problems", snap.SpanProblems)
	}
	var totalCommitted, totalApplied int64
	procOf := map[model.SiteID]string{0: "proc-a", 1: "proc-a", 2: "proc-b", 3: "proc-b"}
	for i, row := range snap.Sites {
		if row.Site != model.SiteID(i) {
			t.Fatalf("site rows out of order: %+v", snap.Sites)
		}
		if row.Proc != procOf[row.Site] {
			t.Fatalf("site %d attributed to %q, want %q", row.Site, row.Proc, procOf[row.Site])
		}
		if row.Protocol != core.DAGWT.String() {
			t.Fatalf("site %d protocol %q, want %q", row.Site, row.Protocol, core.DAGWT.String())
		}
		totalCommitted += row.Committed
		totalApplied += row.Applied
	}
	if totalCommitted == 0 {
		t.Fatal("no commits visible in the merged site table")
	}
	if totalApplied == 0 {
		t.Fatal("no secondary applies visible: propagation left no trace in the merged table")
	}
	if len(snap.Procs) != 2 {
		t.Fatalf("procs = %+v, want proc-a and proc-b", snap.Procs)
	}
	sort.Slice(snap.Protocols, func(i, j int) bool { return snap.Protocols[i].Protocol < snap.Protocols[j].Protocol })
	if len(snap.Protocols) != 1 || snap.Protocols[0].Committed != totalCommitted {
		t.Fatalf("protocol rollup %+v, want one dagwt row with %d commits", snap.Protocols, totalCommitted)
	}

	// --- The same snapshot must render as repltop -json emits it. ---
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(snap); err != nil {
		t.Fatal(err)
	}
	var decoded telemetry.ClusterSnapshot
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot does not round-trip JSON: %v", err)
	}
	if len(decoded.Sites) != nSites || decoded.Sites[3].Proc != "proc-b" {
		t.Fatalf("decoded snapshot lost the site table: %+v", decoded.Sites)
	}
	var text bytes.Buffer
	snap.Render(&text)
	if !bytes.Contains(text.Bytes(), []byte("proc-a")) || !bytes.Contains(text.Bytes(), []byte(core.DAGWT.String())) {
		t.Fatalf("console render missing cluster content:\n%s", text.String())
	}
}
