package telemetry

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/contend"
	"repro/internal/fresh"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/watch"
)

// Options configures a Publisher. Exactly one of Addr and Sink selects
// the destination.
type Options struct {
	// Proc is this process's stable name; it keys every aggregator-side
	// series, so each publisher in a cluster needs a distinct one.
	Proc string
	// Addr, when set, is the aggregator's TCP address. The publisher
	// owns the connection: it dials lazily, and after a send failure it
	// redials on the next cycle and resends a full (non-delta) state.
	Addr string
	// Sink, when Addr is empty, receives frames directly — the in-proc
	// path (an *Aggregator is itself a Sink). The publisher does not
	// close a provided sink.
	Sink Sink
	// Interval is the publish period (default 250ms).
	Interval time.Duration
	// SpanBuffer caps the span-event ring between cycles (default 8192,
	// negative disables event shipping). Overflow drops the oldest
	// events and counts them, so a stalled aggregator degrades span
	// federation, never the publishing process.
	SpanBuffer int
}

// Sink consumes frames. Implementations: *Conn (wire) and *Aggregator
// (in-proc).
type Sink interface {
	// SendFrame delivers one frame; its error means the frame (and, on
	// the wire, possibly the connection) was lost.
	SendFrame(f Frame) error
	Close() error
}

// pubObs holds the publisher's own health series, registered into the
// same registry it snapshots — so telemetry overhead and loss are
// visible through the plane itself.
type pubObs struct {
	frames *obs.Counter // repl_telemetry_frames_total
	errs   *obs.Counter // repl_telemetry_send_errors_total
	drops  *obs.Counter // repl_telemetry_events_dropped_total
}

// Publisher streams one process's observability state: delta-encoded
// registry snapshots, span-carrying trace events (install Ingest with
// trace.Recorder.AddSink), phase-latency quantiles, and watchdog alerts.
// Wire it with the Set* methods before Start; all methods are safe for
// concurrent use.
type Publisher struct {
	opts Options

	// pubMu serializes publish cycles (ticker vs. explicit Flush); mu
	// guards the event ring and delta state and is never held across a
	// send or a snapshot of another subsystem.
	pubMu sync.Mutex
	mu    sync.Mutex

	reg    *obs.Registry              // repl:guardedby(mu)
	po     pubObs                     // repl:guardedby(mu)
	wd     *watch.Watchdog            // repl:guardedby(mu)
	report func() metrics.Report      // repl:guardedby(mu)
	heat   func() []contend.HeatEntry // repl:guardedby(mu)
	aborts func() map[string]uint64   // repl:guardedby(mu)
	freshp func() *fresh.Summary      // repl:guardedby(mu)
	hello  Hello                      // repl:guardedby(mu)

	buf      []trace.Event    // repl:guardedby(mu)
	bufStart int              // repl:guardedby(mu)
	bufN     int              // repl:guardedby(mu)
	dropped  uint64           // repl:guardedby(mu)
	last     map[string]int64 // repl:guardedby(mu)
	seq      uint64           // repl:guardedby(mu)

	// The connection is owned by the publish cycle, which pubMu
	// serializes; mu is additionally held on the mutating accesses so
	// readers inside a cycle see a consistent (sink, owned) pair.
	sink  Sink // active destination; owned (closable) iff dialed from Addr // repl:guardedby(pubMu)
	owned bool // repl:guardedby(pubMu)

	stop chan struct{}
	done chan struct{}
}

// NewPublisher returns a stopped publisher.
//
//lint:allow guardedby construction is single-threaded; the publish loop and trace sinks that share the ring only exist after Start
func NewPublisher(o Options) (*Publisher, error) {
	if o.Proc == "" {
		return nil, fmt.Errorf("telemetry: Options.Proc is required")
	}
	if o.Addr == "" && o.Sink == nil {
		return nil, fmt.Errorf("telemetry: one of Options.Addr or Options.Sink is required")
	}
	if o.Interval <= 0 {
		o.Interval = 250 * time.Millisecond
	}
	if o.SpanBuffer == 0 {
		o.SpanBuffer = 8192
	}
	p := &Publisher{opts: o, hello: Hello{Proc: o.Proc}}
	if o.SpanBuffer > 0 {
		p.buf = make([]trace.Event, o.SpanBuffer)
	}
	if o.Addr == "" {
		p.sink = o.Sink
	}
	return p, nil
}

// SetObs installs the registry whose snapshots are delta-shipped; the
// publisher registers its own repl_telemetry_* series into it.
func (p *Publisher) SetObs(r *obs.Registry) {
	if p == nil || r == nil {
		return
	}
	p.mu.Lock()
	p.reg = r
	p.po = pubObs{
		frames: r.Counter("repl_telemetry_frames_total"),
		errs:   r.Counter("repl_telemetry_send_errors_total"),
		drops:  r.Counter("repl_telemetry_events_dropped_total"),
	}
	p.mu.Unlock()
}

// SetWatch installs the watchdog whose alerts are shipped.
func (p *Publisher) SetWatch(w *watch.Watchdog) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.wd = w
	p.mu.Unlock()
}

// SetReport installs the probe supplying the process's metrics.Report,
// from which the phase-latency quantiles are taken.
func (p *Publisher) SetReport(fn func() metrics.Report) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.report = fn
	p.mu.Unlock()
}

// SetContention installs the contention probes: heat supplies the
// process's merged per-item heat table (contend.BuildHeat over its
// sites) and aborts its cumulative abort-reason breakdown. Either may be
// nil; both must return absolute values (frames carry state, not
// deltas, so replay is harmless).
func (p *Publisher) SetContention(heat func() []contend.HeatEntry, aborts func() map[string]uint64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.heat = heat
	p.aborts = aborts
	p.mu.Unlock()
}

// SetFresh installs the freshness probe supplying the process's current
// fresh.Summary (cluster.FreshSummary). Like the contention probes it
// must return absolute state, so replayed frames are harmless.
func (p *Publisher) SetFresh(fn func() *fresh.Summary) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.freshp = fn
	p.mu.Unlock()
}

// Announce sets the protocol and hosted sites carried in every hello
// frame.
func (p *Publisher) Announce(protocol string, sites []model.SiteID) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.hello.Protocol = protocol
	p.hello.Sites = append([]model.SiteID(nil), sites...)
	p.mu.Unlock()
}

// Ingest buffers one span-carrying trace event for the next cycle.
// Install it with rec.AddSink(p.Ingest) — alongside, not instead of, the
// watchdog's sink. Span-less events (phase latencies, watchdog alerts)
// are skipped: phases ship as quantiles and alerts as alert frames.
func (p *Publisher) Ingest(ev trace.Event) {
	if p == nil || ev.Span == 0 {
		return
	}
	p.mu.Lock()
	if p.buf != nil {
		if p.bufN == len(p.buf) {
			p.bufStart = (p.bufStart + 1) % len(p.buf)
			p.bufN--
			p.dropped++
			p.po.drops.Inc()
		}
		p.buf[(p.bufStart+p.bufN)%len(p.buf)] = ev
		p.bufN++
	}
	p.mu.Unlock()
}

// Start launches the periodic publish loop.
func (p *Publisher) Start() {
	if p == nil || p.stop != nil {
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.loop()
}

// Stop ends the loop, publishes one final cycle (so the last deltas and
// span events reach the aggregator), and closes an owned connection.
func (p *Publisher) Stop() {
	if p == nil {
		return
	}
	if p.stop != nil {
		close(p.stop)
		<-p.done
		p.stop = nil
	}
	//lint:allow senderr final flush on shutdown: the error is already counted in repl_telemetry_send_errors_total
	_ = p.Flush()
	p.pubMu.Lock()
	if p.owned && p.sink != nil {
		p.sink.Close()
		p.sink = nil
	}
	p.pubMu.Unlock()
}

func (p *Publisher) loop() {
	defer close(p.done)
	t := time.NewTicker(p.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			//lint:allow senderr periodic publish: the error is counted and the next tick redials
			_ = p.Flush()
		case <-p.stop:
			return
		}
	}
}

// Flush runs one publish cycle synchronously: hello, metrics delta, span
// batch, phase quantiles, alerts. On a send failure the cycle stops, the
// owned connection is discarded (the next cycle redials), undelivered
// state is retained, and the error is returned after being counted.
func (p *Publisher) Flush() error {
	if p == nil {
		return nil
	}
	p.pubMu.Lock()
	defer p.pubMu.Unlock()

	// Gather subsystem state outside p.mu (the registry and watchdog
	// have their own locks).
	p.mu.Lock()
	reg, wd, report := p.reg, p.wd, p.report
	heatFn, abortsFn, freshFn := p.heat, p.aborts, p.freshp
	hello := p.hello
	hello.Sites = append([]model.SiteID(nil), p.hello.Sites...)
	p.mu.Unlock()

	var cur map[string]int64
	if reg != nil {
		cur = reg.Snapshot()
	}
	var rep *metrics.Report
	if report != nil {
		r := report()
		rep = &r
	}
	var alerts *AlertFrame
	if wd != nil {
		alerts = &AlertFrame{Active: wd.Active(), Summary: wd.Summarize()}
	}
	var heat []contend.HeatEntry
	if heatFn != nil {
		heat = heatFn()
	}
	var aborts map[string]uint64
	if abortsFn != nil {
		aborts = abortsFn()
	}
	var freshSum *fresh.Summary
	if freshFn != nil {
		freshSum = freshFn()
	}

	// Assemble the cycle's frames under p.mu.
	p.mu.Lock()
	frames := []Frame{{Kind: FrameHello, Hello: &hello}}
	var delta map[string]int64
	if cur != nil {
		delta = make(map[string]int64, 8)
		for k, v := range cur {
			if old, ok := p.last[k]; !ok || old != v {
				delta[k] = v
			}
		}
		if len(delta) > 0 {
			frames = append(frames, Frame{Kind: FrameMetrics, Metrics: delta})
		}
	}
	var events []trace.Event
	if p.bufN > 0 {
		events = make([]trace.Event, 0, p.bufN)
		for i := 0; i < p.bufN; i++ {
			events = append(events, p.buf[(p.bufStart+i)%len(p.buf)])
		}
		p.bufN = 0
		p.bufStart = 0
		frames = append(frames, Frame{Kind: FrameSpans, Events: events, Dropped: p.dropped})
	}
	if rep != nil && len(rep.Phases) > 0 {
		q := make(map[string]PhaseQuantiles, len(rep.Phases))
		for name, ps := range rep.Phases {
			q[name] = PhaseQuantiles{
				Count:  ps.Count,
				MeanUS: us(ps.Mean), P50US: us(ps.P50), P95US: us(ps.P95),
				P99US: us(ps.P99), MaxUS: us(ps.Max),
			}
		}
		frames = append(frames, Frame{Kind: FramePhases, Phases: q})
	}
	if alerts != nil {
		frames = append(frames, Frame{Kind: FrameAlerts, Alerts: alerts})
	}
	if len(heat) > 0 {
		frames = append(frames, Frame{Kind: FrameHeat, Heat: heat})
	}
	if len(aborts) > 0 {
		frames = append(frames, Frame{Kind: FrameAborts, Aborts: aborts})
	}
	if freshSum != nil && len(freshSum.Sites) > 0 {
		frames = append(frames, Frame{Kind: FrameFresh, Fresh: freshSum})
	}
	for i := range frames {
		p.seq++
		frames[i].Proc = p.opts.Proc
		frames[i].Seq = p.seq
	}
	po := p.po
	p.mu.Unlock()

	// Deliver outside both subsystem state and the ring lock.
	sink, err := p.ensureSink()
	if err == nil {
		for _, f := range frames {
			if err = sink.SendFrame(f); err != nil {
				break
			}
			po.frames.Inc()
		}
	}

	p.mu.Lock()
	if err == nil {
		if cur != nil {
			p.last = cur
		}
	} else {
		po.errs.Inc()
		// Re-buffer the undelivered span events (newest survive if the
		// ring overflows) and force a full metrics resync: p.last stays
		// as acknowledged, so every since-changed series ships again.
		p.mu.Unlock()
		for _, ev := range events {
			p.Ingest(ev)
		}
		p.mu.Lock()
		p.dropSink()
	}
	p.mu.Unlock()
	return err
}

// ensureSink returns the active sink, dialing the aggregator in Addr
// mode when no connection is up.
func (p *Publisher) ensureSink() (Sink, error) {
	p.mu.Lock()
	s := p.sink
	p.mu.Unlock()
	if s != nil {
		return s, nil
	}
	c, err := Dial(p.opts.Addr, p.opts.Proc)
	if err != nil {
		p.mu.Lock()
		p.po.errs.Inc()
		p.mu.Unlock()
		return nil, err
	}
	p.mu.Lock()
	p.sink, p.owned = c, true
	// A fresh connection means a possibly fresh aggregator: resend the
	// whole registry, not a delta against state the old connection saw.
	p.last = nil
	p.mu.Unlock()
	return c, nil
}

// dropSink discards a broken owned connection; caller holds p.mu.
func (p *Publisher) dropSink() {
	if p.owned && p.sink != nil {
		p.sink.Close()
		p.sink = nil
		p.owned = false
	}
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
