// Package telemetry is the cluster telemetry plane (docs/OBSERVABILITY.md):
// the instrument that makes a multi-process deployment observable as one
// cluster. Every observability layer built so far — the trace recorder,
// the live obs registry, the watchdog — sees a single address space, but
// the paper's deployment model (§5: one DataBlitz process per site) and
// the ROADMAP's sharded-copy-graph runs host sites across N processes,
// where no process can answer "which replica is stale and why".
//
// The plane has two halves:
//
//   - a Publisher embedded in each process, streaming delta-encoded
//     registry snapshots, span-carrying trace events, phase-latency
//     quantiles, and watchdog alerts as Frames;
//   - an Aggregator merging the streams: it re-keys per-site series,
//     stitches cross-process span trees back together (deterministic
//     SpanID lineage means merging the raw event streams suffices —
//     trace.BuildSpanTrees needs no per-process namespace), and runs a
//     federated staleness view no single watchdog can compute.
//
// Frames travel inside the same gob comm.Message framing the protocol
// sockets use (comm.MsgWriter/MsgReader), on dedicated connections, with
// MessageKind and a fixed auxiliary span context marking the traffic as
// telemetry rather than protocol work.
package telemetry

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/comm"
	"repro/internal/contend"
	"repro/internal/fresh"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/watch"
)

// MessageKind is the comm.Message.Kind of telemetry envelopes. Protocol
// engines allocate small positive kinds; this sits far outside their
// range so a telemetry frame that strays onto a protocol connection is
// recognizably foreign.
const MessageKind = 0x7e1e

// channelSpanSalt roots the auxiliary span ids that mark telemetry
// traffic (see ChannelSpan).
const channelSpanSalt = 0x7e1e7e1e

// ChannelSpan returns the span context stamped on every telemetry
// envelope a process sends: a fixed auxiliary span derived from the
// process name, with no transaction attached. It exists so telemetry
// traffic is distinguishable from protocol traffic anywhere a
// comm.Message is observed; the zero TID keeps these spans out of every
// span tree (trace.BuildSpanTrees ignores zero-TID events).
func ChannelSpan(proc string) model.SpanContext {
	h := fnv.New64a()
	h.Write([]byte(proc))
	return model.SpanContext{Parent: model.AuxSpan(model.SpanID(channelSpanSalt), h.Sum64())}
}

// FrameKind discriminates the telemetry frame payloads.
type FrameKind uint8

const (
	// FrameHello announces the publishing process: its name, protocol,
	// and hosted sites. Sent first and then re-sent every cycle — it is
	// idempotent, so an aggregator that joins (or a connection that
	// re-establishes) mid-run self-heals without a handshake.
	FrameHello FrameKind = iota + 1
	// FrameMetrics carries a delta-encoded registry snapshot: only the
	// series that changed since the last acknowledged-sent frame, each
	// with its absolute value (not an increment), so a lost or replayed
	// frame can never corrupt aggregator state.
	FrameMetrics
	// FrameSpans batches span-carrying trace events for cross-process
	// span-tree federation and the aggregator's staleness bookkeeping.
	FrameSpans
	// FramePhases carries the per-phase latency quantiles of the
	// process's metrics.Report.
	FramePhases
	// FrameAlerts carries the process watchdog's active alerts and its
	// running summary.
	FrameAlerts
	// FrameHeat carries the process's merged per-item contention heat
	// table (contend.BuildHeat over its sites), absolute counters — like
	// FrameMetrics, a replayed frame cannot corrupt aggregator state.
	FrameHeat
	// FrameAborts carries the process's abort root-cause breakdown,
	// reason name → cumulative count, absolute values.
	FrameAborts
	// FrameFresh carries the process's freshness summary — per-site
	// staleness distributions and read-certificate tallies
	// (fresh.Summary). Absolute like FrameMetrics, so replay is harmless.
	FrameFresh

	frameKindEnd
)

var frameKindNames = [frameKindEnd]string{
	FrameHello:   "hello",
	FrameMetrics: "metrics",
	FrameSpans:   "spans",
	FramePhases:  "phases",
	FrameAlerts:  "alerts",
	FrameHeat:    "heat",
	FrameAborts:  "aborts",
	FrameFresh:   "fresh",
}

func (k FrameKind) String() string {
	if k > 0 && k < frameKindEnd {
		return frameKindNames[k]
	}
	return fmt.Sprintf("FrameKind(%d)", uint8(k))
}

// Hello identifies a publishing process.
type Hello struct {
	// Proc is the process's stable display name (replnode uses
	// "site<N>"); it keys all aggregator state, so two publishers must
	// not share one.
	Proc string
	// Protocol is the engine protocol the process runs.
	Protocol string
	// Sites are the site ids hosted by the process.
	Sites []model.SiteID
}

// PhaseQuantiles is one phase's latency summary in microseconds,
// mirroring metrics.PhaseStats in a wire-friendly flat form.
type PhaseQuantiles struct {
	Count  uint64  `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P95US  float64 `json:"p95_us"`
	P99US  float64 `json:"p99_us"`
	MaxUS  float64 `json:"max_us"`
}

// AlertFrame is one process's watchdog state.
type AlertFrame struct {
	Active  []watch.Alert
	Summary watch.Summary
}

// Frame is one telemetry message. Exactly the field selected by Kind is
// populated; the rest stay zero (gob omits them cheaply).
type Frame struct {
	// Proc names the publishing process (matches Hello.Proc).
	Proc string
	// Seq increments per frame sent by the publisher, so gaps are
	// observable downstream.
	Seq  uint64
	Kind FrameKind

	Hello *Hello // FrameHello
	// Metrics holds changed series with absolute values (FrameMetrics),
	// keyed by the obs.Registry.Snapshot rendering.
	Metrics map[string]int64
	// Events are span-carrying trace events (FrameSpans); Dropped is the
	// cumulative count of events lost to publisher buffer overflow.
	Events  []trace.Event
	Dropped uint64
	// Phases maps metrics.Phase names to quantiles (FramePhases).
	Phases map[string]PhaseQuantiles
	Alerts *AlertFrame // FrameAlerts
	// Heat is the process's contention heat table (FrameHeat); Aborts its
	// abort-reason breakdown (FrameAborts). Both absolute, not deltas.
	Heat   []contend.HeatEntry
	Aborts map[string]uint64
	// Fresh is the process's freshness summary (FrameFresh), absolute.
	Fresh *fresh.Summary
}

var registerOnce sync.Once

// RegisterPayloads registers the telemetry frame types for gob encoding.
// Called by every wire endpoint (Dial, Listen); safe to call repeatedly.
func RegisterPayloads() {
	registerOnce.Do(func() {
		comm.RegisterPayload(Frame{})
	})
}

// envelope wraps a frame for the wire. Telemetry connections are not
// site-to-site edges, so both endpoints are NoSite.
func envelope(f Frame) comm.Message {
	return comm.Message{
		From:    model.NoSite,
		To:      model.NoSite,
		Kind:    MessageKind,
		Span:    ChannelSpan(f.Proc),
		Payload: f,
	}
}

// parseSeries splits a rendered series key (`family{k="v",...}`, the
// obs.Registry.Snapshot form) into its family and labels. Keys without
// labels return an empty map; the `:count`/`:sum_ns` histogram suffixes
// stay attached to the family.
func parseSeries(key string) (family string, labels map[string]string) {
	labels = map[string]string{}
	open := strings.IndexByte(key, '{')
	if open < 0 {
		return key, labels
	}
	close := strings.LastIndexByte(key, '}')
	if close < open {
		return key, labels
	}
	family = key[:open] + key[close+1:]
	for _, part := range strings.Split(key[open+1:close], ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			continue
		}
		if u, err := strconv.Unquote(v); err == nil {
			labels[k] = u
		}
	}
	return family, labels
}

// sortedSiteIDs returns m's keys ascending.
func sortedSiteIDs[V any](m map[model.SiteID]V) []model.SiteID {
	out := make([]model.SiteID, 0, len(m))
	for s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
