package telemetry

import (
	"strings"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/trace"
)

func TestChannelSpanStableAndDistinct(t *testing.T) {
	a1 := ChannelSpan("proc-a")
	a2 := ChannelSpan("proc-a")
	b := ChannelSpan("proc-b")
	if a1 != a2 {
		t.Fatalf("ChannelSpan not deterministic: %+v vs %+v", a1, a2)
	}
	if a1 == b {
		t.Fatalf("ChannelSpan collision between distinct procs")
	}
	if !a1.TID.Zero() {
		t.Fatalf("ChannelSpan must carry no transaction, got TID %+v", a1.TID)
	}
	if a1.Parent == 0 {
		t.Fatalf("ChannelSpan parent must be nonzero")
	}
}

func TestFrameKindString(t *testing.T) {
	for k, want := range map[FrameKind]string{
		FrameHello: "hello", FrameMetrics: "metrics", FrameSpans: "spans",
		FramePhases: "phases", FrameAlerts: "alerts",
	} {
		if got := k.String(); got != want {
			t.Errorf("FrameKind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := FrameKind(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown kind renders as %q", got)
	}
}

func TestParseSeries(t *testing.T) {
	cases := []struct {
		key    string
		family string
		labels map[string]string
	}{
		{"repl_txn_committed_total", "repl_txn_committed_total", map[string]string{}},
		{`repl_txn_committed_total{site="3"}`, "repl_txn_committed_total", map[string]string{"site": "3"}},
		{`repl_comm_bytes_total{from="0",to="1"}`, "repl_comm_bytes_total", map[string]string{"from": "0", "to": "1"}},
		{`repl_apply_seconds{site="2"}:count`, "repl_apply_seconds:count", map[string]string{"site": "2"}},
	}
	for _, c := range cases {
		fam, labels := parseSeries(c.key)
		if fam != c.family {
			t.Errorf("parseSeries(%q) family = %q, want %q", c.key, fam, c.family)
		}
		if len(labels) != len(c.labels) {
			t.Errorf("parseSeries(%q) labels = %v, want %v", c.key, labels, c.labels)
			continue
		}
		for k, v := range c.labels {
			if labels[k] != v {
				t.Errorf("parseSeries(%q) label %s = %q, want %q", c.key, k, labels[k], v)
			}
		}
	}
}

// TestPublisherDeltaEncoding drives a publisher into an in-proc
// aggregator and checks the metrics frames are true deltas with
// absolute values.
func TestPublisherDeltaEncoding(t *testing.T) {
	agg := NewAggregator()
	p, err := NewPublisher(Options{Proc: "p1", Sink: agg, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	p.SetObs(reg)
	p.Announce("dagwt", []model.SiteID{0, 1})

	c := reg.Counter("repl_txn_committed_total", obs.Label{Key: "site", Value: "0"})
	c.Inc()
	if err := p.Flush(); err != nil {
		t.Fatalf("flush 1: %v", err)
	}
	snap := agg.Snapshot()
	if len(snap.Sites) != 2 {
		t.Fatalf("sites = %+v, want 2 rows (announced 0,1)", snap.Sites)
	}
	if snap.Sites[0].Committed != 1 {
		t.Fatalf("site 0 committed = %d, want 1", snap.Sites[0].Committed)
	}

	// A quiet cycle must not resend the unchanged series.
	framesBefore := agg.procs["p1"].frames
	if err := p.Flush(); err != nil {
		t.Fatalf("flush 2: %v", err)
	}
	// hello always ships; metrics shipped only repl_telemetry_frames_total
	// (the publisher's own counters moved). The committed series must not
	// be among the delta.
	agg.mu.Lock()
	got := agg.procs["p1"].frames - framesBefore
	agg.mu.Unlock()
	if got > 2 {
		t.Fatalf("quiet cycle sent %d frames, want <=2 (hello + own-counter delta)", got)
	}

	c.Add(4)
	if err := p.Flush(); err != nil {
		t.Fatalf("flush 3: %v", err)
	}
	if s := agg.Snapshot(); s.Sites[0].Committed != 5 {
		t.Fatalf("after delta, committed = %d, want 5 (absolute value)", s.Sites[0].Committed)
	}
}

// TestPublisherSpanRing checks overflow drops oldest and counts drops.
func TestPublisherSpanRing(t *testing.T) {
	agg := NewAggregator()
	p, err := NewPublisher(Options{Proc: "p1", Sink: agg, Interval: time.Hour, SpanBuffer: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		tid := model.TxnID{Site: 0, Seq: uint64(i + 1)}
		p.Ingest(trace.Event{
			Kind: trace.TxnCommit, Site: 0, Peer: model.NoSite, TID: tid,
			Span: model.RootSpan(tid),
		})
	}
	// Span-less events must be filtered out, not buffered.
	p.Ingest(trace.Event{Kind: trace.PhaseLatency, Site: 0, Phase: "apply"})
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	evs := agg.Events()
	if len(evs) != 4 {
		t.Fatalf("aggregator holds %d events, want 4 (ring size)", len(evs))
	}
	if evs[0].TID.Seq != 3 || evs[3].TID.Seq != 6 {
		t.Fatalf("ring kept seqs %d..%d, want newest 3..6", evs[0].TID.Seq, evs[3].TID.Seq)
	}
	agg.mu.Lock()
	dropped := agg.procs["p1"].dropped
	agg.mu.Unlock()
	if dropped != 2 {
		t.Fatalf("reported drops = %d, want 2", dropped)
	}
}

// TestFederationReordering checks the aggregator's staleness view
// tolerates applies arriving before their forwards (cross-connection
// interleaving) and aborts clearing in-flight state.
func TestFederationReordering(t *testing.T) {
	agg := NewAggregator()
	tid := model.TxnID{Site: 0, Seq: 1}
	fwd := trace.Event{Kind: trace.SecondaryForwarded, Site: 0, Peer: 1, TID: tid, Span: model.RootSpan(tid)}
	app := trace.Event{Kind: trace.SecondaryApplied, Site: 1, Peer: 0, TID: tid, Span: model.RootSpan(tid)}

	// In-order: forward then apply leaves nothing in flight.
	agg.Ingest(Frame{Proc: "a", Seq: 1, Kind: FrameSpans, Events: []trace.Event{fwd}})
	if s := agg.Snapshot(); len(s.Edges) != 1 || s.Edges[0].InFlight != 1 {
		t.Fatalf("after forward: edges = %+v, want one edge with 1 in flight", s.Edges)
	}
	agg.Ingest(Frame{Proc: "b", Seq: 1, Kind: FrameSpans, Events: []trace.Event{app}})
	if s := agg.Snapshot(); len(s.Edges) != 0 {
		t.Fatalf("after apply: edges = %+v, want none", s.Edges)
	}

	// Reordered: apply (from proc b's stream) before forward.
	tid2 := model.TxnID{Site: 0, Seq: 2}
	fwd2, app2 := fwd, app
	fwd2.TID, app2.TID = tid2, tid2
	fwd2.Span, app2.Span = model.RootSpan(tid2), model.RootSpan(tid2)
	agg.Ingest(Frame{Proc: "b", Seq: 2, Kind: FrameSpans, Events: []trace.Event{app2}})
	agg.Ingest(Frame{Proc: "a", Seq: 2, Kind: FrameSpans, Events: []trace.Event{fwd2}})
	if s := agg.Snapshot(); len(s.Edges) != 0 {
		t.Fatalf("reordered apply+forward left edges %+v, want none", s.Edges)
	}

	// Abort clears everything for the transaction, in either order.
	tid3 := model.TxnID{Site: 0, Seq: 3}
	fwd3 := fwd
	fwd3.TID, fwd3.Span = tid3, model.RootSpan(tid3)
	abort := trace.Event{Kind: trace.TxnAbort, Site: 0, Peer: model.NoSite, TID: tid3, Span: model.RootSpan(tid3)}
	agg.Ingest(Frame{Proc: "a", Seq: 3, Kind: FrameSpans, Events: []trace.Event{fwd3, abort}})
	if s := agg.Snapshot(); len(s.Edges) != 0 {
		t.Fatalf("abort left edges %+v, want none", s.Edges)
	}
}

// TestWireRoundTrip runs a publisher over a real TCP connection into a
// listening aggregator.
func TestWireRoundTrip(t *testing.T) {
	agg := NewAggregator()
	addr, err := agg.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Close()

	p, err := NewPublisher(Options{Proc: "wire1", Addr: addr, Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	p.SetObs(reg)
	p.Announce("psl", []model.SiteID{2})
	reg.Counter("repl_txn_committed_total", obs.Label{Key: "site", Value: "2"}).Add(7)

	tid := model.TxnID{Site: 2, Seq: 1}
	p.Ingest(trace.Event{Kind: trace.TxnCommit, Site: 2, Peer: model.NoSite, TID: tid, Span: model.RootSpan(tid)})
	if err := p.Flush(); err != nil {
		t.Fatalf("flush over wire: %v", err)
	}
	p.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		s := agg.Snapshot()
		if len(s.Sites) == 1 && s.Sites[0].Committed == 7 && len(agg.Events()) == 1 {
			if s.Sites[0].Proc != "wire1" || s.Sites[0].Protocol != "psl" {
				t.Fatalf("site row %+v, want proc wire1 protocol psl", s.Sites[0])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("aggregator never converged: %+v events=%d", s, len(agg.Events()))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSnapshotRender smoke-checks the text console rendering.
func TestSnapshotRender(t *testing.T) {
	agg := NewAggregator()
	agg.Ingest(Frame{Proc: "a", Seq: 1, Kind: FrameHello, Hello: &Hello{Proc: "a", Protocol: "dagt", Sites: []model.SiteID{0}}})
	agg.Ingest(Frame{Proc: "a", Seq: 2, Kind: FrameMetrics, Metrics: map[string]int64{
		`repl_txn_committed_total{site="0"}`: 11,
	}})
	var sb strings.Builder
	s := agg.Snapshot()
	s.Render(&sb)
	out := sb.String()
	for _, want := range []string{"dagt", "s0", "11", "PROTOCOL", "SITE"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
