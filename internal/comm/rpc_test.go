package comm

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

// rpcPair wires a client and server RPC over one in-memory transport:
// site 1 doubles the int payload of every request, after an optional
// per-request delay.
func rpcPair(t *testing.T, serveDelay func(reqID uint64) time.Duration) (*RPC, *MemTransport) {
	t.Helper()
	tr := NewMemTransport(0)
	t.Cleanup(func() { tr.Close() })
	client := NewRPC(0, tr)
	server := NewRPC(1, tr)
	tr.Register(1, func(m Message) {
		if m.IsResp {
			return
		}
		var d time.Duration
		if serveDelay != nil {
			d = serveDelay(m.ReqID)
		}
		// Reply off the delivery goroutine so a slow request does not
		// head-of-line block later requests on the same edge.
		go func() {
			if d > 0 {
				time.Sleep(d)
			}
			server.Reply(m, m.Payload.(int)*2)
		}()
	})
	tr.Register(0, func(m Message) {
		if m.IsResp {
			client.HandleResponse(m)
		}
	})
	return client, tr
}

func TestRPCRoundTripAndRemoteError(t *testing.T) {
	client, _ := rpcPair(t, nil)
	resp, err := client.Call(1, 1, 21, time.Second)
	if err != nil || resp.(int) != 42 {
		t.Fatalf("got %v, %v", resp, err)
	}
}

// TestRPCLateResponseCounted is the regression test for the
// response-channel race: a response that arrives after the caller timed
// out must be observed through the late hook, never silently lost — on
// both paths: HandleResponse finding no pending entry, and the buffered
// race-window response drained by Call's deferred cleanup.
func TestRPCLateResponseCounted(t *testing.T) {
	var late atomic.Int64
	client, _ := rpcPair(t, func(uint64) time.Duration { return 60 * time.Millisecond })
	client.SetLateHook(func(from model.SiteID, kind int) {
		if from != 1 {
			t.Errorf("late response from s%d, want s1", from)
		}
		late.Add(1)
	})
	_, err := client.Call(1, 1, 7, 5*time.Millisecond)
	if !errors.Is(err, ErrRPCTimeout) {
		t.Fatalf("want timeout, got %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for late.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := late.Load(); got != 1 {
		t.Fatalf("late responses counted: %d, want 1", got)
	}
}

// TestRPCLateResponseRaceWindow hammers the exact race: responses landing
// concurrently with the caller's timeout-path cleanup. Every response must
// be accounted for — delivered to a caller or counted late — under -race.
func TestRPCLateResponseRaceWindow(t *testing.T) {
	var late atomic.Int64
	var ok atomic.Int64
	client, _ := rpcPair(t, func(uint64) time.Duration { return time.Millisecond })
	client.SetLateHook(func(model.SiteID, int) { late.Add(1) })
	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Timeout straddles the server delay so both outcomes occur.
			if _, err := client.Call(1, 1, 1, time.Millisecond); err == nil {
				ok.Add(1)
			}
		}()
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for ok.Load()+late.Load() < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := ok.Load() + late.Load(); got != n {
		t.Fatalf("accounted for %d/%d responses (ok=%d late=%d)", got, n, ok.Load(), late.Load())
	}
}

func TestRPCCallRetrySucceedsAfterTimeouts(t *testing.T) {
	var calls atomic.Int64
	client, _ := rpcPair(t, func(uint64) time.Duration {
		// The first two attempts dawdle past the per-attempt timeout; the
		// third answers promptly.
		if calls.Add(1) <= 2 {
			return 80 * time.Millisecond
		}
		return 0
	})
	resp, err := client.CallRetry(1, 1, 5, 20*time.Millisecond, 3)
	if err != nil {
		t.Fatalf("CallRetry: %v", err)
	}
	if resp.(int) != 10 {
		t.Fatalf("got %v", resp)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
}

func TestRPCCallRetryExhaustsAttempts(t *testing.T) {
	client, _ := rpcPair(t, func(uint64) time.Duration { return 50 * time.Millisecond })
	_, err := client.CallRetry(1, 1, 5, 5*time.Millisecond, 2)
	if !errors.Is(err, ErrRPCTimeout) {
		t.Fatalf("want wrapped timeout, got %v", err)
	}
}

func TestRPCCallRetryStopsOnRemoteError(t *testing.T) {
	tr := NewMemTransport(0)
	defer tr.Close()
	client := NewRPC(0, tr)
	server := NewRPC(1, tr)
	var calls atomic.Int64
	tr.Register(1, func(m Message) {
		if !m.IsResp {
			calls.Add(1)
			server.ReplyError(m, errors.New("no"))
		}
	})
	tr.Register(0, func(m Message) {
		if m.IsResp {
			client.HandleResponse(m)
		}
	})
	_, err := client.CallRetry(1, 1, 5, time.Second, 3)
	var re RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("want RemoteError, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("remote error retried: %d calls, want 1", got)
	}
}
