package comm

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/model"
)

// TCPTransport carries messages over real sockets, one outbound TCP
// connection per destination site, gob-encoded. TCP's in-order delivery
// gives the per-pair FIFO guarantee the protocols require while a
// connection lives; connections are established lazily, persist, and are
// re-dialed with backoff when they break (§5's socket usage, hardened for
// networks that actually fail). Note the limits of that hardening: bytes
// in flight when a connection dies are gone, and a message split across
// the break is lost — reconnection restores connectivity, not the
// exactly-once FIFO contract. Deployments that must not lose messages
// run Reliable on top (see reliable.go), which retransmits across the
// reconnect. Register payload types with RegisterPayload before use.
type TCPTransport struct {
	site  model.SiteID
	addrs map[model.SiteID]string // site -> host:port

	// Timeouts, settable before traffic starts via SetTimeouts.
	dialTimeout   time.Duration // one connect attempt
	writeTimeout  time.Duration // one message write
	reconnectWait time.Duration // total redial budget per Send

	mu      sync.Mutex
	ln      net.Listener
	conns   map[model.SiteID]*tcpConn
	raws    []net.Conn
	handler Handler
	stats   Stats
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
}

// tcpConn is the outbound state for one destination: the socket and the
// message-stream writer bound to it (see stream.go), so Send can report
// the exact bytes each message put on the wire. Its mutex serializes
// writes and reconnects per destination, so a stalled or re-dialing peer
// never blocks sends to the others.
type tcpConn struct {
	mu   sync.Mutex
	c    net.Conn
	w    *MsgWriter
	ever bool // a connection has existed before (re-dials count as reconnects)
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// ReconnectStats is the optional Stats extension transports call when
// they re-establish a broken connection.
type ReconnectStats interface {
	// CommReconnect is called once per successful re-dial of the from→to
	// edge.
	CommReconnect(from, to model.SiteID)
}

// RegisterPayload registers a payload type for gob encoding. Call once per
// concrete payload type, before any Send.
func RegisterPayload(v any) { gob.Register(v) }

// NewTCPTransport creates a transport for one site. addrs maps every site
// (including this one) to its listen address. The listener starts
// immediately; Register installs the handler that receives inbound
// messages.
func NewTCPTransport(site model.SiteID, addrs map[model.SiteID]string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addrs[site])
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addrs[site], err)
	}
	t := &TCPTransport{
		site:          site,
		addrs:         addrs,
		dialTimeout:   5 * time.Second,
		writeTimeout:  10 * time.Second,
		reconnectWait: 3 * time.Second,
		ln:            ln,
		conns:         make(map[model.SiteID]*tcpConn),
		done:          make(chan struct{}),
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// SetTimeouts overrides the connection-management timeouts: dial bounds
// one connect attempt, write bounds one message write, reconnect is the
// total redial budget a single Send will spend on a down peer before
// giving up (zero keeps the current value). Call before traffic starts.
func (t *TCPTransport) SetTimeouts(dial, write, reconnect time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if dial > 0 {
		t.dialTimeout = dial
	}
	if write > 0 {
		t.writeTimeout = write
	}
	if reconnect > 0 {
		t.reconnectWait = reconnect
	}
}

// Addr returns the transport's bound listen address (useful when the
// configured address used port 0).
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) accept() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return
		}
		t.raws = append(t.raws, c)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serve(c)
	}
}

func (t *TCPTransport) serve(c net.Conn) {
	defer t.wg.Done()
	mr := NewMsgReader(c)
	for {
		msg, err := mr.ReadMsg()
		if err != nil {
			t.mu.Lock()
			closed := t.closed
			t.mu.Unlock()
			if !closed && err != io.EOF && !errors.Is(err, net.ErrClosed) {
				// A mid-stream break (peer crash, killed connection) ends
				// this inbound stream; the peer re-dials and a fresh serve
				// goroutine takes over. Only truly unexpected errors are
				// worth surfacing.
				fmt.Printf("comm: tcp decode from peer: %v\n", err)
			}
			return
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			h(msg)
		}
	}
}

// Register implements Transport. Only this transport's own site may be
// registered.
func (t *TCPTransport) Register(site model.SiteID, h Handler) {
	if site != t.site {
		panic("comm: TCPTransport handles a single site")
	}
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// SetStats installs the transport activity observer (nil disables). Call
// before traffic starts. Sent messages report exact wire bytes; the
// latency samples are local send latency (encode + write), since one-way
// transit cannot be measured without synchronized clocks. A Stats that
// also implements ReconnectStats receives re-dial events.
func (t *TCPTransport) SetStats(s Stats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats = s
}

func (t *TCPTransport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// Send implements Transport. A broken connection is re-dialed with
// backoff (bounded by the reconnect budget) and the message re-encoded on
// the fresh connection, so a killed socket costs at most the messages
// already in flight, never the edge.
func (t *TCPTransport) Send(msg Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	if _, ok := t.addrs[msg.To]; !ok {
		t.mu.Unlock()
		return fmt.Errorf("comm: unknown site s%d", msg.To)
	}
	tc, ok := t.conns[msg.To]
	if !ok {
		tc = &tcpConn{}
		t.conns[msg.To] = tc
	}
	stats := t.stats
	t.mu.Unlock()

	tc.mu.Lock()
	defer tc.mu.Unlock()
	for attempt := 0; ; attempt++ {
		if t.isClosed() {
			return ErrClosed
		}
		if tc.c == nil {
			if err := t.redial(tc, msg.To, stats); err != nil {
				return err
			}
		}
		start := time.Now()
		if t.writeTimeout > 0 {
			_ = tc.c.SetWriteDeadline(time.Now().Add(t.writeTimeout))
		}
		n, err := tc.w.WriteMsg(msg)
		if err == nil {
			if stats != nil {
				stats.CommSent(msg.From, msg.To, n)
				stats.CommLatency(msg.From, msg.To, time.Since(start))
			}
			return nil
		}
		// The connection is broken (peer died, deadline hit): discard it.
		// One fresh dial-and-retry per Send; beyond that the caller (or
		// the Reliable sublayer) owns recovery.
		tc.c.Close()
		tc.c = nil
		if t.isClosed() {
			return ErrClosed
		}
		if attempt >= 1 {
			return fmt.Errorf("comm: send to s%d: %w", msg.To, err)
		}
	}
}

// redial (re-)establishes tc's connection with exponential backoff inside
// the reconnect budget. The caller holds tc.mu.
func (t *TCPTransport) redial(tc *tcpConn, to model.SiteID, stats Stats) error {
	addr := t.addrs[to]
	backoff := 10 * time.Millisecond
	deadline := time.Now().Add(t.reconnectWait)
	for {
		c, err := net.DialTimeout("tcp", addr, t.dialTimeout)
		if err == nil {
			t.mu.Lock()
			if t.closed {
				t.mu.Unlock()
				c.Close()
				return ErrClosed
			}
			t.raws = append(t.raws, c)
			t.mu.Unlock()
			tc.c, tc.w = c, NewMsgWriter(c)
			if tc.ever {
				if rs, ok := stats.(ReconnectStats); ok {
					rs.CommReconnect(t.site, to)
				}
			}
			tc.ever = true
			return nil
		}
		if t.isClosed() {
			return ErrClosed
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("comm: dial s%d at %s: %w", to, addr, err)
		}
		select {
		case <-time.After(backoff):
		case <-t.done:
			return ErrClosed
		}
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// Close implements Transport. Every open connection is closed, which also
// unblocks any Send stuck in a write or a redial wait; those Sends return
// ErrClosed.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.done)
	t.ln.Close()
	for _, c := range t.raws {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
