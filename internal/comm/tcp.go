package comm

import (
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/model"
)

// TCPTransport carries messages over real sockets, one outbound TCP
// connection per destination site, gob-encoded. TCP's in-order delivery
// gives the per-pair FIFO guarantee the protocols require; connections are
// established lazily and persist, matching the prototype's socket usage
// (§5). Register payload types with RegisterPayload before use.
type TCPTransport struct {
	site  model.SiteID
	addrs map[model.SiteID]string // site -> host:port

	mu      sync.Mutex
	ln      net.Listener
	conns   map[model.SiteID]*tcpConn
	raws    []net.Conn
	handler Handler
	stats   Stats
	closed  bool
	wg      sync.WaitGroup
}

// tcpConn pairs an outbound encoder with the counting writer underneath
// it, so Send can report the exact bytes each message put on the wire.
type tcpConn struct {
	enc *gob.Encoder
	cw  *countWriter
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// RegisterPayload registers a payload type for gob encoding. Call once per
// concrete payload type, before any Send.
func RegisterPayload(v any) { gob.Register(v) }

// NewTCPTransport creates a transport for one site. addrs maps every site
// (including this one) to its listen address. The listener starts
// immediately; Register installs the handler that receives inbound
// messages.
func NewTCPTransport(site model.SiteID, addrs map[model.SiteID]string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addrs[site])
	if err != nil {
		return nil, fmt.Errorf("comm: listen %s: %w", addrs[site], err)
	}
	t := &TCPTransport{
		site:  site,
		addrs: addrs,
		ln:    ln,
		conns: make(map[model.SiteID]*tcpConn),
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Addr returns the transport's bound listen address (useful when the
// configured address used port 0).
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

func (t *TCPTransport) accept() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			c.Close()
			return
		}
		t.raws = append(t.raws, c)
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serve(c)
	}
}

func (t *TCPTransport) serve(c net.Conn) {
	defer t.wg.Done()
	dec := gob.NewDecoder(c)
	for {
		var msg Message
		if err := dec.Decode(&msg); err != nil {
			if err != io.EOF {
				t.mu.Lock()
				closed := t.closed
				t.mu.Unlock()
				if !closed {
					// Peer failure: the model assumes reliable delivery, so
					// surface loudly rather than silently dropping.
					fmt.Printf("comm: tcp decode from peer: %v\n", err)
				}
			}
			return
		}
		t.mu.Lock()
		h := t.handler
		t.mu.Unlock()
		if h != nil {
			h(msg)
		}
	}
}

// Register implements Transport. Only this transport's own site may be
// registered.
func (t *TCPTransport) Register(site model.SiteID, h Handler) {
	if site != t.site {
		panic("comm: TCPTransport handles a single site")
	}
	t.mu.Lock()
	t.handler = h
	t.mu.Unlock()
}

// SetStats installs the transport activity observer (nil disables). Call
// before traffic starts. Sent messages report exact wire bytes; the
// latency samples are local send latency (encode + write), since one-way
// transit cannot be measured without synchronized clocks.
func (t *TCPTransport) SetStats(s Stats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats = s
}

// Send implements Transport.
func (t *TCPTransport) Send(msg Message) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return ErrClosed
	}
	tc, ok := t.conns[msg.To]
	if !ok {
		addr, ok := t.addrs[msg.To]
		if !ok {
			return fmt.Errorf("comm: unknown site s%d", msg.To)
		}
		c, err := net.Dial("tcp", addr)
		if err != nil {
			return fmt.Errorf("comm: dial s%d at %s: %w", msg.To, addr, err)
		}
		t.raws = append(t.raws, c)
		cw := &countWriter{w: c}
		tc = &tcpConn{enc: gob.NewEncoder(cw), cw: cw}
		t.conns[msg.To] = tc
	}
	before := tc.cw.n
	start := time.Now()
	if err := tc.enc.Encode(msg); err != nil {
		delete(t.conns, msg.To)
		return fmt.Errorf("comm: send to s%d: %w", msg.To, err)
	}
	if t.stats != nil {
		t.stats.CommSent(msg.From, msg.To, int(tc.cw.n-before))
		t.stats.CommLatency(msg.From, msg.To, time.Since(start))
	}
	return nil
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.ln.Close()
	for _, c := range t.raws {
		c.Close()
	}
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
