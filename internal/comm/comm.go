// Package comm provides the inter-site messaging substrate. The paper's
// prototype ran sites over 10 Mbit ethernet using TCP sockets (§5); the
// protocols only require that the network "delivers messages reliably and
// in FIFO order between any two sites" (§1.1). Two transports implement
// that contract:
//
//   - MemTransport: in-process delivery with configurable per-edge latency
//     (default 0.15 ms, the paper's measured ethernet latency), used by
//     the simulation harness;
//   - TCPTransport: real sockets with length-prefixed gob frames, used by
//     cmd/replnode for multi-process deployments.
//
// An RPC helper layers request/reply (needed by the PSL protocol's remote
// reads and the BackEdge protocol's two-phase commit) on top of the
// one-way transport.
package comm

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/model"
)

// Message is one unit of inter-site communication.
type Message struct {
	From, To model.SiteID
	Kind     int    // protocol-defined discriminator
	ReqID    uint64 // nonzero for RPC requests/responses
	IsResp   bool
	// Span is the causal span context of the sending work; the zero
	// value means unattributed (docs/OBSERVABILITY.md).
	Span model.SpanContext
	// SentAt, when non-zero, is the sender's wall-clock send stamp;
	// receivers turn it into a transport-phase latency sample
	// (metrics.PhaseTransport). Engines stamp it only on one-way
	// propagation traffic — RPC round trips are attributed as whole
	// phases (vote/decision/remote read) instead.
	SentAt  time.Time
	Payload any
}

// Handler consumes delivered messages. Handlers must not block for long:
// blocking work (lock waits, transaction execution) belongs in queues or
// spawned goroutines, or FIFO delivery from the sender stalls.
type Handler func(Message)

// Transport delivers messages reliably and in FIFO order between each
// ordered pair of sites.
type Transport interface {
	// Send enqueues msg for delivery to msg.To. It never blocks on the
	// receiver.
	Send(msg Message) error
	// Register installs the handler for a site. Must be called for every
	// site before any Send targets it.
	Register(site model.SiteID, h Handler)
	// Close shuts the transport down; pending messages may be dropped.
	Close() error
}

// ErrClosed is returned by Send after Close.
var ErrClosed = errors.New("comm: transport closed")

// Stats observes transport activity for the live metrics registry.
// Implementations must be safe for concurrent use and cheap: the
// callbacks run on the send path and the delivery goroutines. A nil
// Stats disables observation.
type Stats interface {
	// CommSent is called once per message handed to the transport, with
	// the message's wire size in bytes (exact for TCP, approximated via
	// PayloadSizer for the in-process transport).
	CommSent(from, to model.SiteID, bytes int)
	// CommLatency reports one per-edge latency sample: transit latency
	// (send to handler invocation) on the in-process transport, local
	// send latency (encode + write) on TCP. Negative means unknown.
	CommLatency(from, to model.SiteID, d time.Duration)
}

// PayloadSizer lets protocol payloads report their approximate wire size
// so the in-process transport can account bytes without serializing.
type PayloadSizer interface{ WireSize() int }

// Per-message envelope overhead (From/To/Kind/ReqID/IsResp plus framing),
// and the fallback payload estimate for payloads that do not implement
// PayloadSizer (all such payloads are small fixed-size structs).
const (
	msgHeaderSize      = 32
	defaultPayloadSize = 48
	// spanWireSize is the extra envelope cost of a non-zero span context
	// (txn id + parent span + hop count, gob-framed).
	spanWireSize = 24
)

func msgWireSize(m Message) int {
	n := msgHeaderSize
	if !m.Span.Zero() {
		n += spanWireSize
	}
	if s, ok := m.Payload.(PayloadSizer); ok {
		return n + s.WireSize()
	}
	return n + defaultPayloadSize
}

// sleepFloor is the shortest delay worth sleeping for; see deliver.
const sleepFloor = 500 * time.Microsecond

type pair struct{ from, to model.SiteID }

type timedMsg struct {
	msg  Message
	sent time.Time
	due  time.Time
}

// MemTransport is the in-process transport. Each ordered site pair gets a
// dedicated delivery goroutine reading a FIFO queue; a message becomes
// deliverable Latency after it was sent, and deliveries pipeline (latency
// delays each message but does not serialize throughput).
type MemTransport struct {
	mu       sync.Mutex
	handlers map[model.SiteID]Handler
	chans    map[pair]chan timedMsg
	latency  time.Duration
	jitter   time.Duration
	edgeLat  map[pair]time.Duration
	rng      *rand.Rand
	stats    Stats
	closed   bool
	done     chan struct{}
	wg       sync.WaitGroup
}

// NewMemTransport returns an in-process transport with the given default
// one-way latency.
func NewMemTransport(latency time.Duration) *MemTransport {
	return &MemTransport{
		handlers: make(map[model.SiteID]Handler),
		chans:    make(map[pair]chan timedMsg),
		latency:  latency,
		edgeLat:  make(map[pair]time.Duration),
		rng:      rand.New(rand.NewSource(1)),
		done:     make(chan struct{}),
	}
}

// SetEdgeLatency overrides the latency of one directed edge; tests use it
// to force message races (e.g. reproducing Example 1.1).
func (t *MemTransport) SetEdgeLatency(from, to model.SiteID, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.edgeLat[pair{from, to}] = d
}

// SetJitter adds a uniform random extra delay in [0, j) to every message.
// Per-pair FIFO order is preserved regardless: each delivery goroutine
// consumes its queue in send order and only ever delays, never reorders.
func (t *MemTransport) SetJitter(j time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.jitter = j
}

// SetSeed reseeds the jitter RNG (the default seed is 1). The jitter
// stream is drawn under the transport lock in Send order, so a fixed seed
// yields the same delay sequence whenever the send order is the same —
// deterministic for single-sender tests, best-effort for concurrent ones.
func (t *MemTransport) SetSeed(seed int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rng = rand.New(rand.NewSource(seed))
}

// delayFor computes one message's delivery delay on edge p: the edge
// override if present (else the default latency), plus one jitter draw.
// The caller holds t.mu — the single RNG stream is part of the seeded
// determinism contract above.
func (t *MemTransport) delayFor(p pair) time.Duration {
	lat := t.latency
	if d, ok := t.edgeLat[p]; ok {
		lat = d
	}
	if t.jitter > 0 {
		lat += time.Duration(t.rng.Int63n(int64(t.jitter)))
	}
	return lat
}

// SetStats installs the transport activity observer (nil disables). Call
// before traffic starts.
func (t *MemTransport) SetStats(s Stats) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats = s
}

// Register implements Transport.
func (t *MemTransport) Register(site model.SiteID, h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handlers[site] = h
}

// Send implements Transport.
func (t *MemTransport) Send(msg Message) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	p := pair{msg.From, msg.To}
	ch, ok := t.chans[p]
	if !ok {
		ch = make(chan timedMsg, 4096)
		t.chans[p] = ch
		t.wg.Add(1)
		go t.deliver(p, ch)
	}
	lat := t.delayFor(p)
	stats := t.stats
	t.mu.Unlock()
	if stats != nil {
		stats.CommSent(msg.From, msg.To, msgWireSize(msg))
	}
	now := time.Now()
	// Block if the queue is full (reliable delivery, never drop), but give
	// up if the transport shuts down meanwhile.
	select {
	case ch <- timedMsg{msg: msg, sent: now, due: now.Add(lat)}:
		return nil
	case <-t.done:
		return ErrClosed
	}
}

func (t *MemTransport) deliver(p pair, ch chan timedMsg) {
	defer t.wg.Done()
	for {
		var tm timedMsg
		select {
		case tm = <-ch:
		case <-t.done:
			return
		}
		// time.Sleep/After have a millisecond-scale floor on many kernels,
		// which would inflate the paper's 0.15 ms ethernet latency ~8x and
		// distort every protocol's messaging cost. Sub-floor delays are
		// therefore approximated by the goroutine handoff itself (~0.1 ms
		// on a loaded box); only delays that a sleep can actually resolve
		// are slept.
		if d := time.Until(tm.due); d > sleepFloor {
			select {
			case <-time.After(d):
			case <-t.done:
				return
			}
		}
		t.mu.Lock()
		h := t.handlers[p.to]
		stats := t.stats
		t.mu.Unlock()
		if h == nil {
			panic(fmt.Sprintf("comm: no handler registered for site %d", p.to))
		}
		if stats != nil {
			stats.CommLatency(p.from, p.to, time.Since(tm.sent))
		}
		h(tm.msg)
	}
}

// Close implements Transport. In-flight messages are dropped.
func (t *MemTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	close(t.done)
	t.mu.Unlock()
	t.wg.Wait()
	return nil
}
