package comm

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/model"
)

// recordingStats is a test double for the Stats observer.
type recordingStats struct {
	mu       sync.Mutex
	sent     int
	bytes    int
	latSeen  int
	lastFrom model.SiteID
	lastTo   model.SiteID
}

func (s *recordingStats) CommSent(from, to model.SiteID, bytes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sent++
	s.bytes += bytes
	s.lastFrom, s.lastTo = from, to
}

func (s *recordingStats) CommLatency(from, to model.SiteID, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d >= 0 {
		s.latSeen++
	}
}

type sizedPayload struct{ N int }

func (p sizedPayload) WireSize() int { return p.N }

func TestMemTransportStats(t *testing.T) {
	tr := NewMemTransport(time.Millisecond)
	defer tr.Close()
	stats := &recordingStats{}
	tr.SetStats(stats)

	var delivered atomic.Int32
	done := make(chan struct{})
	tr.Register(1, func(m Message) {
		if delivered.Add(1) == 2 {
			close(done)
		}
	})
	if err := tr.Send(Message{From: 0, To: 1, Kind: 1, Payload: sizedPayload{N: 100}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send(Message{From: 0, To: 1, Kind: 1, Payload: "unsized"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("messages not delivered")
	}
	stats.mu.Lock()
	defer stats.mu.Unlock()
	if stats.sent != 2 {
		t.Fatalf("sent = %d", stats.sent)
	}
	// Sized payload: header + 100; unsized: header + default estimate.
	if want := (msgHeaderSize + 100) + (msgHeaderSize + defaultPayloadSize); stats.bytes != want {
		t.Fatalf("bytes = %d, want %d", stats.bytes, want)
	}
	if stats.latSeen != 2 {
		t.Fatalf("latency samples = %d", stats.latSeen)
	}
	if stats.lastFrom != 0 || stats.lastTo != 1 {
		t.Fatalf("edge = %d->%d", stats.lastFrom, stats.lastTo)
	}
}

func TestTCPTransportStats(t *testing.T) {
	RegisterPayload(sizedPayload{})
	addrs := map[model.SiteID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	t0, err := NewTCPTransport(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer t0.Close()
	addrs[0] = t0.Addr()
	t1, err := NewTCPTransport(1, map[model.SiteID]string{0: t0.Addr(), 1: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer t1.Close()
	addrs[1] = t1.Addr()
	t0.addrs[1] = t1.Addr()

	stats := &recordingStats{}
	t0.SetStats(stats)

	got := make(chan Message, 1)
	t1.Register(1, func(m Message) { got <- m })
	if err := t0.Send(Message{From: 0, To: 1, Kind: 7, Payload: sizedPayload{N: 5}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Kind != 7 {
			t.Fatalf("kind = %d", m.Kind)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("message not delivered")
	}
	stats.mu.Lock()
	defer stats.mu.Unlock()
	if stats.sent != 1 || stats.bytes == 0 {
		t.Fatalf("sent=%d bytes=%d; TCP must report exact nonzero wire bytes", stats.sent, stats.bytes)
	}
	if stats.latSeen != 1 {
		t.Fatalf("latency samples = %d", stats.latSeen)
	}
}
