package comm

import (
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

// captureTransport is a scripted inner transport for driving Reliable's
// receive path directly: it records outgoing acks and delivers nothing on
// its own, so the fuzzer controls exactly which envelopes arrive when.
type captureTransport struct {
	mu       sync.Mutex
	handlers map[model.SiteID]Handler
	acks     []uint64
}

func newCaptureTransport() *captureTransport {
	return &captureTransport{handlers: make(map[model.SiteID]Handler)}
}

func (c *captureTransport) Send(m Message) error {
	if m.Kind == kindRelAck {
		c.mu.Lock()
		c.acks = append(c.acks, m.Payload.(RelAckPayload).Cum)
		c.mu.Unlock()
	}
	return nil
}

func (c *captureTransport) Register(site model.SiteID, h Handler) {
	c.mu.Lock()
	c.handlers[site] = h
	c.mu.Unlock()
}

func (c *captureTransport) Close() error { return nil }

func (c *captureTransport) deliver(site model.SiteID, m Message) {
	c.mu.Lock()
	h := c.handlers[site]
	c.mu.Unlock()
	h(m)
}

// FuzzReliableReorder feeds a window of sequenced envelopes to a Reliable
// receiver in an adversarial arrival order — drops (phase one never
// delivers some), duplicates, and arbitrary reordering, with a full
// in-order retransmission pass afterwards — and asserts the exactly-once
// FIFO contract: the application handler sees the window as a gap-free
// in-order prefix at every point, every message exactly once, and the
// cumulative acks never run ahead of what was delivered.
func FuzzReliableReorder(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add([]byte{7, 6, 5, 4, 3, 2, 1, 0})
	f.Add([]byte{0, 0, 0, 2, 2, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, order []byte) {
		const window = 8
		inner := newCaptureTransport()
		// Retransmission timers are irrelevant here (the fuzz input plays
		// the retransmissions); park them out of the way.
		r := NewReliable(inner, ReliableConfig{RTO: time.Hour, Tick: time.Hour})
		defer r.Close()

		var got []uint64
		r.Register(1, func(m Message) {
			got = append(got, m.Payload.(uint64))
		})

		envelope := func(seq uint64) Message {
			return Message{
				From: 0, To: 1, Kind: kindRelData,
				Payload: RelDataPayload{
					Seq: seq,
					Msg: Message{From: 0, To: 1, Kind: 7, Payload: seq},
				},
			}
		}
		checkPrefix := func(when string) {
			for i, seq := range got {
				if seq != uint64(i+1) {
					t.Fatalf("%s: delivery %d is seq %d; handler output %v is not a gap-free in-order prefix", when, i, seq, got)
				}
			}
		}

		// Phase one: the fuzzer's arrival order. A byte maps to one of the
		// window's sequence numbers; repeats are duplicates, absent values
		// are drops.
		for _, b := range order {
			inner.deliver(1, envelope(uint64(b%window)+1))
			checkPrefix("after adversarial arrival")
		}
		// Phase two: the retransmission pass fills every gap.
		for seq := uint64(1); seq <= window; seq++ {
			inner.deliver(1, envelope(seq))
		}
		checkPrefix("after retransmission pass")
		if len(got) != window {
			t.Fatalf("handler saw %d deliveries, want exactly %d: %v", len(got), window, got)
		}

		// Acks are cumulative and never overtake delivery: each ack covers
		// a prefix the handler had already seen when it was emitted, and
		// the final ack covers the whole window.
		inner.mu.Lock()
		acks := append([]uint64(nil), inner.acks...)
		inner.mu.Unlock()
		var hi uint64
		for _, cum := range acks {
			if cum > uint64(window) {
				t.Fatalf("ack %d exceeds the window", cum)
			}
			if cum > hi {
				hi = cum
			}
		}
		if hi != window {
			t.Fatalf("final cumulative ack is %d, want %d", hi, window)
		}
	})
}
