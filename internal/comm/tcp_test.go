package comm

import (
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

type tcpPayload struct{ N int }

func init() { RegisterPayload(tcpPayload{}) }

// tcpPair starts two TCP transports on loopback and returns them.
func tcpPair(t *testing.T) (*TCPTransport, *TCPTransport) {
	t.Helper()
	// Bootstrap: bind both listeners on port 0, then teach each the
	// other's real address.
	addrs := map[model.SiteID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	a, err := NewTCPTransport(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPTransport(1, addrs)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.addrs = map[model.SiteID]string{0: a.Addr(), 1: b.Addr()}
	b.addrs = map[model.SiteID]string{0: a.Addr(), 1: b.Addr()}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := tcpPair(t)
	got := make(chan Message, 1)
	b.Register(1, func(m Message) { got <- m })
	a.Register(0, func(Message) {})
	if err := a.Send(Message{From: 0, To: 1, Kind: 3, Payload: tcpPayload{N: 9}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Kind != 3 || m.Payload.(tcpPayload).N != 9 {
			t.Errorf("got %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestTCPFIFO(t *testing.T) {
	a, b := tcpPair(t)
	const n = 200
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	b.Register(1, func(m Message) {
		mu.Lock()
		got = append(got, m.Payload.(tcpPayload).N)
		if len(got) == n {
			close(done)
		}
		mu.Unlock()
	})
	a.Register(0, func(Message) {})
	for i := 0; i < n; i++ {
		if err := a.Send(Message{From: 0, To: 1, Payload: tcpPayload{N: i}}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d/%d delivered", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reordered at %d: %d", i, v)
		}
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, b := tcpPair(t)
	fromA := make(chan Message, 1)
	fromB := make(chan Message, 1)
	a.Register(0, func(m Message) { fromB <- m })
	b.Register(1, func(m Message) { fromA <- m })
	_ = a.Send(Message{From: 0, To: 1, Payload: tcpPayload{N: 1}})
	_ = b.Send(Message{From: 1, To: 0, Payload: tcpPayload{N: 2}})
	select {
	case <-fromA:
	case <-time.After(2 * time.Second):
		t.Fatal("a->b lost")
	}
	select {
	case <-fromB:
	case <-time.After(2 * time.Second):
		t.Fatal("b->a lost")
	}
}

func TestTCPSendToUnknownSite(t *testing.T) {
	a, _ := tcpPair(t)
	if err := a.Send(Message{From: 0, To: 9}); err == nil {
		t.Error("send to unknown site succeeded")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	addrs := map[model.SiteID]string{0: "127.0.0.1:0"}
	tr, err := NewTCPTransport(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	_ = tr.Close()
	if err := tr.Send(Message{From: 0, To: 0}); err != ErrClosed {
		t.Errorf("want ErrClosed, got %v", err)
	}
}

func TestTCPRegisterWrongSitePanics(t *testing.T) {
	a, _ := tcpPair(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.Register(5, func(Message) {})
}
