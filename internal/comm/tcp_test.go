package comm

import (
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

type tcpPayload struct{ N int }

func init() { RegisterPayload(tcpPayload{}) }

// tcpPair starts two TCP transports on loopback and returns them.
func tcpPair(t *testing.T) (*TCPTransport, *TCPTransport) {
	t.Helper()
	// Bootstrap: bind both listeners on port 0, then teach each the
	// other's real address.
	addrs := map[model.SiteID]string{0: "127.0.0.1:0", 1: "127.0.0.1:0"}
	a, err := NewTCPTransport(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewTCPTransport(1, addrs)
	if err != nil {
		a.Close()
		t.Fatal(err)
	}
	a.addrs = map[model.SiteID]string{0: a.Addr(), 1: b.Addr()}
	b.addrs = map[model.SiteID]string{0: a.Addr(), 1: b.Addr()}
	t.Cleanup(func() { a.Close(); b.Close() })
	return a, b
}

func TestTCPRoundTrip(t *testing.T) {
	a, b := tcpPair(t)
	got := make(chan Message, 1)
	b.Register(1, func(m Message) { got <- m })
	a.Register(0, func(Message) {})
	if err := a.Send(Message{From: 0, To: 1, Kind: 3, Payload: tcpPayload{N: 9}}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Kind != 3 || m.Payload.(tcpPayload).N != 9 {
			t.Errorf("got %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestTCPFIFO(t *testing.T) {
	a, b := tcpPair(t)
	const n = 200
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	b.Register(1, func(m Message) {
		mu.Lock()
		got = append(got, m.Payload.(tcpPayload).N)
		if len(got) == n {
			close(done)
		}
		mu.Unlock()
	})
	a.Register(0, func(Message) {})
	for i := 0; i < n; i++ {
		if err := a.Send(Message{From: 0, To: 1, Payload: tcpPayload{N: i}}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("only %d/%d delivered", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reordered at %d: %d", i, v)
		}
	}
}

func TestTCPBidirectional(t *testing.T) {
	a, b := tcpPair(t)
	fromA := make(chan Message, 1)
	fromB := make(chan Message, 1)
	a.Register(0, func(m Message) { fromB <- m })
	b.Register(1, func(m Message) { fromA <- m })
	_ = a.Send(Message{From: 0, To: 1, Payload: tcpPayload{N: 1}})
	_ = b.Send(Message{From: 1, To: 0, Payload: tcpPayload{N: 2}})
	select {
	case <-fromA:
	case <-time.After(2 * time.Second):
		t.Fatal("a->b lost")
	}
	select {
	case <-fromB:
	case <-time.After(2 * time.Second):
		t.Fatal("b->a lost")
	}
}

func TestTCPSendToUnknownSite(t *testing.T) {
	a, _ := tcpPair(t)
	if err := a.Send(Message{From: 0, To: 9}); err == nil {
		t.Error("send to unknown site succeeded")
	}
}

func TestTCPSendAfterClose(t *testing.T) {
	addrs := map[model.SiteID]string{0: "127.0.0.1:0"}
	tr, err := NewTCPTransport(0, addrs)
	if err != nil {
		t.Fatal(err)
	}
	_ = tr.Close()
	if err := tr.Send(Message{From: 0, To: 0}); err != ErrClosed {
		t.Errorf("want ErrClosed, got %v", err)
	}
}

// killInbound closes every raw connection currently accepted by tr,
// breaking its peers' outbound streams mid-run.
func killInbound(tr *TCPTransport) int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	n := 0
	for _, c := range tr.raws {
		c.Close()
		n++
	}
	return n
}

// reconCounter records reconnect events (implements Stats + ReconnectStats).
type reconCounter struct {
	mu sync.Mutex
	n  int
}

func (r *reconCounter) CommSent(model.SiteID, model.SiteID, int)              {}
func (r *reconCounter) CommLatency(model.SiteID, model.SiteID, time.Duration) {}
func (r *reconCounter) CommReconnect(model.SiteID, model.SiteID) {
	r.mu.Lock()
	r.n++
	r.mu.Unlock()
}
func (r *reconCounter) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

func TestTCPReconnectAfterKilledConnection(t *testing.T) {
	a, b := tcpPair(t)
	var rc reconCounter
	a.SetStats(&rc)
	var mu sync.Mutex
	var got []int
	b.Register(1, func(m Message) {
		mu.Lock()
		got = append(got, m.Payload.(tcpPayload).N)
		mu.Unlock()
	})
	a.Register(0, func(Message) {})
	if err := a.Send(Message{From: 0, To: 1, Payload: tcpPayload{N: 0}}); err != nil {
		t.Fatal(err)
	}
	killInbound(b)
	// Keep sending: the first write(s) into the dead socket surface an
	// error inside Send, which re-dials and re-encodes. Later messages
	// must flow again.
	deadline := time.Now().Add(5 * time.Second)
	for i := 1; rc.count() == 0 && time.Now().Before(deadline); i++ {
		_ = a.Send(Message{From: 0, To: 1, Payload: tcpPayload{N: i}})
		time.Sleep(5 * time.Millisecond)
	}
	if rc.count() == 0 {
		t.Fatal("no reconnect observed after killing the connection")
	}
	// Post-reconnect the edge works: a fresh sentinel must arrive.
	if err := a.Send(Message{From: 0, To: 1, Payload: tcpPayload{N: 999999}}); err != nil {
		t.Fatal(err)
	}
	okBy := time.Now().Add(5 * time.Second)
	for time.Now().Before(okBy) {
		mu.Lock()
		n := len(got)
		last := -1
		if n > 0 {
			last = got[n-1]
		}
		mu.Unlock()
		if last == 999999 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("edge dead after reconnect: sentinel never delivered")
}

// TestReliableOverTCPSurvivesKilledConnection is the no-loss guarantee:
// TCP reconnection restores the edge, and the Reliable sublayer's
// retransmission recovers the messages that died with the old socket, so
// the receiver observes every message exactly once, in order.
func TestReliableOverTCPSurvivesKilledConnection(t *testing.T) {
	RegisterReliablePayloads()
	a, b := tcpPair(t)
	a.SetTimeouts(time.Second, time.Second, 2*time.Second)
	ra := NewReliable(a, ReliableConfig{RTO: 30 * time.Millisecond})
	rb := NewReliable(b, ReliableConfig{RTO: 30 * time.Millisecond})
	t.Cleanup(func() { ra.Close(); rb.Close() })

	const n = 200
	var mu sync.Mutex
	var got []int
	done := make(chan struct{})
	rb.Register(1, func(m Message) {
		mu.Lock()
		got = append(got, m.Payload.(tcpPayload).N)
		if len(got) == n {
			close(done)
		}
		mu.Unlock()
	})
	ra.Register(0, func(Message) {})

	for i := 0; i < n; i++ {
		if i == n/2 {
			killInbound(b) // the stream dies mid-run, in-flight bytes and all
		}
		if err := ra.Send(Message{From: 0, To: 1, Payload: tcpPayload{N: i}}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		mu.Lock()
		defer mu.Unlock()
		t.Fatalf("only %d/%d delivered after killed connection", len(got), n)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("delivered %d, want exactly %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reordered or lost at %d: got %d", i, v)
		}
	}
}

// TestTCPSendDuringCloseNeverSucceedsAfterClose audits every Send path
// against Close: once Close returns, every Send must yield ErrClosed —
// including Sends parked in the redial backoff for a down peer.
func TestTCPSendDuringCloseNeverSucceedsAfterClose(t *testing.T) {
	// A dead peer: listener opened and immediately closed, so dials fail.
	deadLn, err := NewTCPTransport(1, map[model.SiteID]string{1: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := deadLn.Addr()
	deadLn.Close()

	tr, err := NewTCPTransport(0, map[model.SiteID]string{0: "127.0.0.1:0", 1: deadAddr})
	if err != nil {
		t.Fatal(err)
	}
	tr.SetTimeouts(100*time.Millisecond, 0, 30*time.Second)
	tr.Register(0, func(Message) {})

	started := make(chan struct{})
	result := make(chan error, 1)
	go func() {
		close(started)
		// Parks in the redial backoff loop (the peer is down and the
		// reconnect budget is huge); Close must eject it with ErrClosed.
		result <- tr.Send(Message{From: 0, To: 1})
	}()
	<-started
	time.Sleep(50 * time.Millisecond)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-result:
		if err != ErrClosed {
			t.Errorf("in-flight Send during Close: want ErrClosed, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Send still blocked after Close")
	}
	if err := tr.Send(Message{From: 0, To: 1}); err != ErrClosed {
		t.Errorf("Send after Close: want ErrClosed, got %v", err)
	}
}

func TestTCPRegisterWrongSitePanics(t *testing.T) {
	a, _ := tcpPair(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a.Register(5, func(Message) {})
}
