package comm

import (
	"sync/atomic"
	"testing"
	"time"
)

func BenchmarkMemTransportThroughput(b *testing.B) {
	tr := NewMemTransport(0)
	defer tr.Close()
	var delivered atomic.Int64
	tr.Register(1, func(Message) { delivered.Add(1) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Send(Message{From: 0, To: 1, Kind: i}); err != nil {
			b.Fatal(err)
		}
	}
	for delivered.Load() < int64(b.N) {
		time.Sleep(time.Millisecond)
	}
}

func BenchmarkRPCRoundTrip(b *testing.B) {
	tr := NewMemTransport(0)
	defer tr.Close()
	server := NewRPC(1, tr)
	client := NewRPC(0, tr)
	tr.Register(1, func(m Message) { server.Reply(m, m.Payload) })
	tr.Register(0, func(m Message) { client.HandleResponse(m) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(1, 1, i, 5*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}
